// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment generator and reports the
// headline quantities as custom metrics, so `go test -bench=.` produces the
// full paper-versus-measured record (EXPERIMENTS.md is derived from it).
//
// All benchmarks share one experiment suite: every workload executes at most
// once functionally (whole application) and once on the timing simulator
// (bounded to a fixed warp-instruction window, like the paper's GPGPU-Sim
// runs), regardless of how many artifacts are generated.
package critload_test

import (
	"fmt"
	"sync"
	"testing"

	"critload/internal/cache"
	"critload/internal/experiments"
	"critload/internal/gpu"
	"critload/internal/isa"
	"critload/internal/profiler"
	"critload/internal/stats"
	"critload/internal/workloads"
)

// benchWindow bounds each timing run, mirroring the paper's bounded
// simulation window.
const benchWindow = 300_000

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite returns the process-wide experiment suite.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.Options{
			Seed:         1,
			MaxWarpInsts: benchWindow,
		})
	})
	return suite
}

// meanBy averages a per-workload metric over a category.
func meanBy[T any](rows []T, cat workloads.Category, catOf func(T) workloads.Category, val func(T) float64) float64 {
	var sum float64
	var n int
	for _, r := range rows {
		if catOf(r) == cat {
			sum += val(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func BenchmarkTable1_AppCharacteristics(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatalf("rows = %d, want 15", len(rows))
		}
		var frac float64
		for _, r := range rows {
			frac += r.LoadFraction
		}
		b.ReportMetric(100*frac/float64(len(rows)), "avg_load_pct")
	}
}

func BenchmarkTable3_ProfilerCounters(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		var gld, miss uint64
		for _, name := range workloads.Names() {
			run, err := s.Timing(name)
			if err != nil {
				b.Fatal(err)
			}
			c := profiler.Read(run.Col)
			gld += c[profiler.GldRequest]
			miss += c[profiler.L1GlobalLoadMiss]
		}
		b.ReportMetric(float64(gld), "gld_request_total")
		b.ReportMetric(float64(miss), "l1_load_miss_total")
	}
}

func BenchmarkFigure1_LoadClassification(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		graphDet := meanBy(rows, workloads.Graph,
			func(r experiments.Fig1Row) workloads.Category { return r.Category },
			func(r experiments.Fig1Row) float64 { return r.Det })
		linearDet := meanBy(rows, workloads.Linear,
			func(r experiments.Fig1Row) workloads.Category { return r.Category },
			func(r experiments.Fig1Row) float64 { return r.Det })
		// Paper: graph apps stay majority-deterministic on average; linear
		// algebra is almost fully deterministic.
		b.ReportMetric(100*graphDet, "graph_det_pct")
		b.ReportMetric(100*linearDet, "linear_det_pct")
	}
}

func BenchmarkFigure2_RequestsPerWarp(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		var nSum, dSum float64
		var nCnt int
		for _, r := range rows {
			if r.LoadWarpsByCat[stats.NonDet] > 0 {
				nSum += r.ReqPerWarp[stats.NonDet]
				dSum += r.ReqPerWarp[stats.Det]
				nCnt++
			}
		}
		if nCnt == 0 {
			b.Fatal("no workloads with non-deterministic loads")
		}
		// Paper: non-deterministic loads generate several times more
		// requests per warp (bfs ~26, spmv ~6) than deterministic ones (~1-2).
		b.ReportMetric(nSum/float64(nCnt), "nondet_req_per_warp")
		b.ReportMetric(dSum/float64(nCnt), "det_req_per_warp")
	}
}

func BenchmarkFigure3_L1CycleBreakdown(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		var rsrv, hit float64
		for _, r := range rows {
			rsrv += r.Fractions[cache.RsrvFailTag] + r.Fractions[cache.RsrvFailMSHR] + r.Fractions[cache.RsrvFailICNT]
			hit += r.Fractions[cache.Hit]
		}
		n := float64(len(rows))
		// Paper: ~70% of L1 cycles wasted on reservation failures, with tag
		// failures the dominant class.
		b.ReportMetric(100*rsrv/n, "rsrv_fail_pct")
		b.ReportMetric(100*hit/n, "hit_pct")
	}
}

func BenchmarkFigure4_UnitIdleFractions(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		var sp, sfu, ldst float64
		for _, r := range rows {
			sp += 1 - r.Idle[isa.UnitSP]
			sfu += 1 - r.Idle[isa.UnitSFU]
			ldst += 1 - r.Idle[isa.UnitLDST]
		}
		n := float64(len(rows))
		// Paper: LD/ST busy 54.4% on average vs SP 9.3% and SFU 11.5%.
		b.ReportMetric(100*ldst/n, "ldst_busy_pct")
		b.ReportMetric(100*sp/n, "sp_busy_pct")
		b.ReportMetric(100*sfu/n, "sfu_busy_pct")
	}
}

func BenchmarkFigure5_Turnaround(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		var nSum, dSum float64
		var nCnt, dCnt int
		for _, r := range rows {
			if r.Ops[stats.NonDet] > 0 {
				nSum += r.Total[stats.NonDet]
				nCnt++
			}
			if r.Ops[stats.Det] > 0 {
				dSum += r.Total[stats.Det]
				dCnt++
			}
		}
		// Paper: non-deterministic loads take substantially longer end to end.
		b.ReportMetric(nSum/float64(max(nCnt, 1)), "nondet_turnaround_cyc")
		b.ReportMetric(dSum/float64(max(dCnt, 1)), "det_turnaround_cyc")
	}
}

func BenchmarkFigure6_TurnaroundVsRequests(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		series, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		// Slope proxy: mean turnaround at the largest bucket over the
		// smallest, for the busiest non-deterministic load.
		var growth float64
		var cnt int
		for _, sr := range series {
			if !sr.NonDet || len(sr.Points) < 2 {
				continue
			}
			first, last := sr.Points[0], sr.Points[len(sr.Points)-1]
			if first.MeanTurnaround > 0 {
				growth += last.MeanTurnaround / first.MeanTurnaround
				cnt++
			}
		}
		if cnt == 0 {
			b.Fatal("no non-deterministic series")
		}
		b.ReportMetric(growth/float64(cnt), "turnaround_growth_x")
	}
}

func BenchmarkFigure7_GapBreakdown(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Buckets) == 0 {
			b.Fatal("no buckets")
		}
		last := res.Buckets[len(res.Buckets)-1]
		// Paper: the L2-icnt arrival spread grows with the request count
		// while the common latency stays flat.
		b.ReportMetric(last.Common, "common_cyc")
		b.ReportMetric(last.GapL2Icnt, "gap_l2_icnt_cyc")
		b.ReportMetric(float64(last.NReq), "max_requests")
	}
}

func BenchmarkFigure8_MissRatios(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		var l1, l2 float64
		var n int
		for _, r := range rows {
			if r.L1Acc[stats.Det] == 0 {
				continue
			}
			l1 += r.L1Miss[stats.Det]
			l2 += r.L2Miss[stats.Det]
			n++
		}
		// Paper: L1 miss ratios exceed 50% in most cases for both classes.
		b.ReportMetric(100*l1/float64(max(n, 1)), "det_l1_miss_pct")
		b.ReportMetric(100*l2/float64(max(n, 1)), "det_l2_miss_pct")
	}
}

func BenchmarkFigure9_SharedVsGlobal(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		image := meanBy(rows, workloads.Image,
			func(r experiments.Fig9Row) workloads.Category { return r.Category },
			func(r experiments.Fig9Row) float64 { return r.SharedPerGlobal })
		graph := meanBy(rows, workloads.Graph,
			func(r experiments.Fig9Row) workloads.Category { return r.Category },
			func(r experiments.Fig9Row) float64 { return r.SharedPerGlobal })
		// Paper: image apps use shared memory ~2.5× per global load; the
		// other categories barely use it.
		b.ReportMetric(image, "image_shared_per_global")
		b.ReportMetric(graph, "graph_shared_per_global")
	}
}

func BenchmarkFigure10_ColdMiss(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		var cold float64
		graphAcc := meanBy(rows, workloads.Graph,
			func(r experiments.Fig10Row) workloads.Category { return r.Category },
			func(r experiments.Fig10Row) float64 { return r.AccessPerBlock })
		for _, r := range rows {
			cold += r.ColdMissRatio
		}
		// Paper: cold misses are only 16% on average; graph apps re-access
		// each block ~18 times.
		b.ReportMetric(100*cold/float64(len(rows)), "avg_cold_miss_pct")
		b.ReportMetric(graphAcc, "graph_access_per_block")
	}
}

func BenchmarkFigure11_InterCTASharing(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		var blockRatio, accessRatio float64
		for _, r := range rows {
			blockRatio += r.SharedBlockRatio
			accessRatio += r.SharedAccessRatio
		}
		n := float64(len(rows))
		// Paper: 28.7% of blocks are shared by multiple CTAs but they draw
		// 50.9% of all accesses.
		b.ReportMetric(100*blockRatio/n, "shared_block_pct")
		b.ReportMetric(100*accessRatio/n, "shared_access_pct")
	}
}

func BenchmarkFigure12_CTADistance(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		// Fraction of cross-CTA sharing at distance 1 for the linear apps
		// (the paper's dominant bar in Fig 12a).
		var d1 float64
		var n int
		for _, r := range rows {
			if r.Category != workloads.Linear {
				continue
			}
			for _, bin := range r.Bins {
				if bin.Distance == 1 {
					d1 += bin.Fraction
				}
			}
			n++
		}
		b.ReportMetric(100*d1/float64(max(n, 1)), "linear_dist1_pct")
	}
}

func BenchmarkAblation_CTAScheduling(b *testing.B) {
	opts := experiments.Options{
		Workloads:    []string{"2mm", "bfs", "sssp"},
		Seed:         1,
		MaxWarpInsts: benchWindow,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationCTAScheduling(opts)
		if err != nil {
			b.Fatal(err)
		}
		var hitGain float64
		for _, r := range rows {
			hitGain += r.VariantL1Hit - r.BaseL1Hit
		}
		b.ReportMetric(100*hitGain/float64(len(rows)), "clustered_l1_hit_gain_pct")
	}
}

func BenchmarkAblation_WarpScheduler(b *testing.B) {
	opts := experiments.Options{
		Workloads:    []string{"bfs", "sssp", "spmv"},
		Seed:         1,
		MaxWarpInsts: benchWindow,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWarpScheduler(opts)
		if err != nil {
			b.Fatal(err)
		}
		var speedup float64
		for _, r := range rows {
			speedup += float64(r.BaseCycles) / float64(max64(r.VariantCycles, 1))
		}
		b.ReportMetric(speedup/float64(len(rows)), "gto_speedup_x")
	}
}

func BenchmarkAblation_NonDetL1Bypass(b *testing.B) {
	opts := experiments.Options{
		Workloads:    []string{"bfs", "spmv"},
		Seed:         1,
		MaxWarpInsts: benchWindow,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationNonDetBypass(opts)
		if err != nil {
			b.Fatal(err)
		}
		var hitGain, speedup float64
		for _, r := range rows {
			hitGain += r.VariantL1Hit - r.BaseL1Hit
			speedup += float64(r.BaseCycles) / float64(max64(r.VariantCycles, 1))
		}
		n := float64(len(rows))
		b.ReportMetric(100*hitGain/n, "bypass_l1_hit_gain_pct")
		b.ReportMetric(speedup/n, "bypass_speedup_x")
	}
}

func BenchmarkAblation_NextLinePrefetch(b *testing.B) {
	opts := experiments.Options{
		Workloads:    []string{"2mm", "bfs"},
		Seed:         1,
		MaxWarpInsts: benchWindow,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationNextLinePrefetch(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			metric := r.Name + "_prefetch_speedup_x"
			b.ReportMetric(float64(r.BaseCycles)/float64(max64(r.VariantCycles, 1)), metric)
		}
	}
}

func BenchmarkAblation_SemiGlobalL2(b *testing.B) {
	opts := experiments.Options{
		Workloads:    []string{"2mm", "bfs"},
		Seed:         1,
		MaxWarpInsts: benchWindow,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSemiGlobalL2(opts)
		if err != nil {
			b.Fatal(err)
		}
		var speedup float64
		for _, r := range rows {
			speedup += float64(r.BaseCycles) / float64(max64(r.VariantCycles, 1))
		}
		b.ReportMetric(speedup/float64(len(rows)), "semi_l2_speedup_x")
	}
}

// BenchmarkEngine measures raw simulator throughput on the tracked baseline
// cases (experiments.BenchCases), once per cycle engine. The fastforward
// variants exercise event-horizon skipping plus the pooled hot path; the
// naive variants are the serial one-cycle-at-a-time oracle; the parallel
// variants run the phase-barrier engine (fast-forward composed in) at four
// workers, and the adaptive variants add the occupancy-driven controller
// (the production parallel configuration, which demotes to the serial loop
// body on a one-core host). cmd/bench runs the same cases to regenerate
// BENCH_sim.json.
func BenchmarkEngine(b *testing.B) {
	for _, c := range experiments.BenchCases() {
		for _, eng := range []struct {
			name     string
			ff       bool
			parallel bool
			adaptive bool
		}{
			{"fastforward", true, false, false},
			{"naive", false, false, false},
			{"parallel-4w", true, true, false},
			{"adaptive-4w", true, true, true},
		} {
			c, eng := c, eng
			b.Run(fmt.Sprintf("%s-%d/%s", c.Name, c.Size, eng.name), func(b *testing.B) {
				cfg := gpu.DefaultConfig()
				cfg.FastForward = eng.ff
				cfg.Parallel = eng.parallel
				cfg.Adaptive = eng.adaptive
				cfg.Workers = 4
				b.ReportAllocs()
				var cycles int64
				var insts uint64
				for i := 0; i < b.N; i++ {
					run, err := experiments.RunTiming(c.Name, experiments.Options{
						Size: c.Size, Seed: 1, GPU: &cfg,
					})
					if err != nil {
						b.Fatal(err)
					}
					cycles, insts = run.Cycles, run.Col.WarpInsts
				}
				perRun := b.Elapsed().Seconds() / float64(b.N)
				if perRun > 0 {
					b.ReportMetric(float64(cycles)/perRun, "cycles/sec")
					b.ReportMetric(float64(insts)/perRun, "warpinsts/sec")
				}
			})
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
