// Command bench regenerates BENCH_sim.json, the tracked simulator
// performance baseline: for every baseline case it runs the timing model
// under all three cycle engines — event-horizon fast-forwarding, the naive
// serial loop, and the phase-barrier parallel engine (adaptive controller
// on, its production configuration) — and records wall time, simulated
// cycles per second, warp instructions per second and heap traffic. The
// parallel engine is measured at every worker count in the -workers list,
// with the host's GOMAXPROCS and CPU count recorded alongside, so a
// baseline from a many-core box documents scaling and one from a one-core
// box documents the adaptive demotion floor. It refuses to write a baseline
// in which the engines disagree on the simulated work, printing the exact
// diverging statistics, so the numbers are always for byte-identical
// simulations.
//
// Usage:
//
//	bench                    # write BENCH_sim.json in the working directory
//	bench -o /tmp/b.json     # write elsewhere
//	bench -runs 5            # best-of-5 wall times per engine
//	bench -workers 4,8       # parallel-engine rows at 4 and 8 workers; the
//	                         # first value is the primary row
//	bench -check             # compare against the committed baseline instead
//	                         # of writing: exit 1 if any engine's geomean
//	                         # cycles/sec regressed more than -check-tolerance,
//	                         # or the parallel engine fell below
//	                         # -min-parallel-speedup vs fast-forward (skipped
//	                         # when the host has fewer CPUs than workers)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"critload/internal/experiments"
	"critload/internal/gpu"
)

// parallelRow is one extra parallel-engine measurement from the worker
// matrix (the first -workers value backs caseResult.Parallel instead).
type parallelRow struct {
	Workers     int                           `json:"workers"`
	Measurement experiments.EngineMeasurement `json:"measurement"`
	// SpeedupVsFFX is this row over the plain fast-forward engine.
	SpeedupVsFFX float64 `json:"speedup_vs_ff_x"`
}

type caseResult struct {
	Workload    string `json:"workload"`
	Size        int    `json:"size"`
	MemoryBound bool   `json:"memory_bound"`
	// Simulated work, identical for all engines by construction.
	Cycles      int64                         `json:"cycles"`
	WarpInsts   uint64                        `json:"warp_insts"`
	FastForward experiments.EngineMeasurement `json:"fastforward"`
	Naive       experiments.EngineMeasurement `json:"naive"`
	Parallel    experiments.EngineMeasurement `json:"parallel"`
	// SpeedupX is fast-forward over naive; ParallelSpeedupX is the parallel
	// engine (fast-forward and the adaptive controller composed in) over
	// plain fast-forward, at the primary worker count.
	SpeedupX         float64 `json:"speedup_x"`
	ParallelSpeedupX float64 `json:"parallel_speedup_x"`
	// ParallelRows holds the measurements at the remaining -workers values,
	// the workers×cores scaling matrix.
	ParallelRows []parallelRow `json:"parallel_rows,omitempty"`
}

type summary struct {
	GeomeanSpeedupX            float64 `json:"geomean_speedup_x"`
	MemoryBoundGeomeanSpeedupX float64 `json:"memory_bound_geomean_speedup_x"`
	GeomeanParallelSpeedupX    float64 `json:"geomean_parallel_speedup_x"`
	// MemoryBoundGeomeanParallelSpeedupX carries the multi-core acceptance
	// criterion: parallel vs FF on the memory-bound rows.
	MemoryBoundGeomeanParallelSpeedupX float64 `json:"memory_bound_geomean_parallel_speedup_x"`
	MaxMallocsPerKCycleFF              float64 `json:"max_mallocs_per_kcycle_fastforward"`
}

type baseline struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// GoMaxProcs and NumCPU pin the host parallelism the parallel rows were
	// measured under — a 1-CPU baseline documents the adaptive demotion
	// floor, not scaling.
	GoMaxProcs      int          `json:"gomaxprocs"`
	NumCPU          int          `json:"num_cpu"`
	Seed            int64        `json:"seed"`
	Runs            int          `json:"runs"`
	ParallelWorkers int          `json:"parallel_workers"`
	WorkerMatrix    []int        `json:"worker_matrix"`
	Workloads       []caseResult `json:"workloads"`
	Summary         summary      `json:"summary"`
}

// longRunSeconds is the wall time past which a case is measured once.
// Best-of-N exists to beat scheduler noise on sub-second runs; a run this
// long averages that noise away by itself, and repeating the 4x/8x
// memory-bound rows would multiply the regression job's cost for no
// precision gain.
const longRunSeconds = 10.0

// measureBest takes the best (minimum-wall-time) of up to n independent
// runs; heap counters come from the same best run so the row is
// self-consistent. Runs past longRunSeconds are not repeated.
func measureBest(n int, measure func() (experiments.EngineMeasurement, error)) (experiments.EngineMeasurement, error) {
	var best experiments.EngineMeasurement
	for i := 0; i < n; i++ {
		m, err := measure()
		if err != nil {
			return best, err
		}
		if i == 0 || m.WallSeconds < best.WallSeconds {
			best = m
		}
		if m.WallSeconds >= longRunSeconds {
			break
		}
	}
	return best, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// parseWorkers turns the -workers comma list into worker counts; the first
// entry is the primary row.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers list")
	}
	return out, nil
}

// describeDivergence re-runs the engines once through the experiments layer
// so a refused baseline names the exact diverging statistics instead of a
// bare cycle count. Errors from the reruns are folded into the report.
func describeDivergence(c experiments.BenchCase, seed int64, workers int) string {
	serialCfg := gpu.DefaultConfig()
	serialCfg.FastForward = false
	ffCfg := gpu.DefaultConfig()
	parCfg := gpu.DefaultConfig()
	parCfg.Parallel = true
	parCfg.Workers = workers
	parCfg.Adaptive = true

	labels := []string{"naive", "fastforward", "parallel"}
	runs := make([]*experiments.Run, 0, 3)
	for i, cfg := range []gpu.Config{serialCfg, ffCfg, parCfg} {
		cfg := cfg
		r, err := experiments.RunTiming(c.Name, experiments.Options{Size: c.Size, Seed: seed, GPU: &cfg})
		if err != nil {
			return fmt.Sprintf("  %s rerun failed: %v", labels[i], err)
		}
		runs = append(runs, r)
	}
	out := ""
	for _, d := range experiments.DiffEngineRuns(labels, runs) {
		out += "  " + d + "\n"
	}
	if out == "" {
		out = "  (divergence did not reproduce on rerun)\n"
	}
	return out + "  naive:       " + experiments.DescribeRun(runs[0]) +
		"\n  fastforward: " + experiments.DescribeRun(runs[1]) +
		"\n  parallel:    " + experiments.DescribeRun(runs[2])
}

// measureAll produces the full baseline in memory; shared by the write and
// -check paths. workerList[0] is the primary parallel row; the rest fill
// the scaling matrix.
func measureAll(seed int64, runs int, workerList []int) (baseline, error) {
	b := baseline{
		Schema:          "critload/bench_sim/v3",
		GoVersion:       runtime.Version(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Seed:            seed,
		Runs:            runs,
		ParallelWorkers: workerList[0],
		WorkerMatrix:    workerList,
	}
	var all, memBound, parAll, parMemBound []float64
	for _, c := range experiments.BenchCases() {
		c := c
		ff, err := measureBest(runs, func() (experiments.EngineMeasurement, error) {
			return experiments.MeasureEngine(c, seed, true)
		})
		if err != nil {
			return b, err
		}
		naive, err := measureBest(runs, func() (experiments.EngineMeasurement, error) {
			return experiments.MeasureEngine(c, seed, false)
		})
		if err != nil {
			return b, err
		}
		if ff.Cycles != naive.Cycles || ff.WarpInsts != naive.WarpInsts {
			return b, fmt.Errorf("%s/%d: engines diverge (naive %d cycles / %d insts, fastforward %d / %d); baseline not written\n%s",
				c.Name, c.Size, naive.Cycles, naive.WarpInsts, ff.Cycles, ff.WarpInsts,
				describeDivergence(c, seed, workerList[0]))
		}
		r := caseResult{
			Workload: c.Name, Size: c.Size, MemoryBound: c.MemoryBound,
			Cycles: ff.Cycles, WarpInsts: ff.WarpInsts,
			FastForward: ff, Naive: naive,
		}
		if ff.WallSeconds > 0 {
			r.SpeedupX = naive.WallSeconds / ff.WallSeconds
		}
		for i, workers := range workerList {
			workers := workers
			par, err := measureBest(runs, func() (experiments.EngineMeasurement, error) {
				return experiments.MeasureParallel(c, seed, workers)
			})
			if err != nil {
				return b, err
			}
			if par.Cycles != naive.Cycles || par.WarpInsts != naive.WarpInsts {
				return b, fmt.Errorf("%s/%d: parallel/%dw diverges (naive %d cycles / %d insts, parallel %d / %d); baseline not written\n%s",
					c.Name, c.Size, workers, naive.Cycles, naive.WarpInsts, par.Cycles, par.WarpInsts,
					describeDivergence(c, seed, workers))
			}
			speedup := 0.0
			if par.WallSeconds > 0 {
				speedup = ff.WallSeconds / par.WallSeconds
			}
			if i == 0 {
				r.Parallel = par
				r.ParallelSpeedupX = speedup
			} else {
				r.ParallelRows = append(r.ParallelRows, parallelRow{
					Workers: workers, Measurement: par, SpeedupVsFFX: speedup,
				})
			}
		}
		all = append(all, r.SpeedupX)
		parAll = append(parAll, r.ParallelSpeedupX)
		if c.MemoryBound {
			memBound = append(memBound, r.SpeedupX)
			parMemBound = append(parMemBound, r.ParallelSpeedupX)
		}
		if r.FastForward.MallocsPerKCycle > b.Summary.MaxMallocsPerKCycleFF {
			b.Summary.MaxMallocsPerKCycleFF = r.FastForward.MallocsPerKCycle
		}
		b.Workloads = append(b.Workloads, r)
		fmt.Fprintf(os.Stderr, "bench: %-5s %9d cycles (%4.1f%% skipped)  ff %6.2f Mcyc/s  naive %6.2f Mcyc/s  par/%dw %6.2f Mcyc/s  speedup %.2fx  par %.2fx\n",
			c.Name, r.Cycles, 100*float64(ff.SkippedCycles)/float64(r.Cycles),
			ff.CyclesPerSec/1e6, naive.CyclesPerSec/1e6, workerList[0], r.Parallel.CyclesPerSec/1e6,
			r.SpeedupX, r.ParallelSpeedupX)
	}
	b.Summary.GeomeanSpeedupX = geomean(all)
	b.Summary.MemoryBoundGeomeanSpeedupX = geomean(memBound)
	b.Summary.GeomeanParallelSpeedupX = geomean(parAll)
	b.Summary.MemoryBoundGeomeanParallelSpeedupX = geomean(parMemBound)
	return b, nil
}

// engineGeomeans reduces a baseline to one throughput number per engine: the
// geomean of cycles-per-second across all cases.
func engineGeomeans(b baseline) map[string]float64 {
	per := map[string][]float64{}
	for _, r := range b.Workloads {
		for name, m := range map[string]experiments.EngineMeasurement{
			"fastforward": r.FastForward, "naive": r.Naive, "parallel": r.Parallel,
		} {
			if m.CyclesPerSec > 0 {
				per[name] = append(per[name], m.CyclesPerSec)
			}
		}
	}
	out := map[string]float64{}
	for name, xs := range per {
		out[name] = geomean(xs)
	}
	return out
}

// check measures afresh and fails if any engine's geomean cycles/sec fell
// more than tolerance below the committed baseline, or the parallel engine's
// geomean speedup vs fast-forward fell below minParSpeedup. The speedup
// assertion is skipped — with a message, not a failure — when the host has
// fewer CPUs than the primary worker count: a 1-core runner cannot exhibit
// multi-core scaling, and failing there would only measure the runner.
// Engines absent from the committed file (older schemas) are skipped, so
// -check works across schema bumps without a flag day.
func check(path string, seed int64, runs int, workerList []int, tolerance, minParSpeedup float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading committed baseline: %w", err)
	}
	var committed baseline
	if err := json.Unmarshal(buf, &committed); err != nil {
		return fmt.Errorf("parsing committed baseline %s: %w", path, err)
	}
	fresh, err := measureAll(seed, runs, workerList)
	if err != nil {
		return err
	}
	want, got := engineGeomeans(committed), engineGeomeans(fresh)
	failed := false
	for _, name := range []string{"naive", "fastforward", "parallel"} {
		w, ok := want[name]
		if !ok || w <= 0 {
			fmt.Fprintf(os.Stderr, "bench-check: %-11s no committed measurement, skipped\n", name)
			continue
		}
		g := got[name]
		ratio := g / w
		status := "ok"
		if ratio < 1-tolerance {
			status = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "bench-check: %-11s committed %8.2f Mcyc/s, now %8.2f Mcyc/s (%+.1f%%) %s\n",
			name, w/1e6, g/1e6, 100*(ratio-1), status)
	}
	if minParSpeedup > 0 {
		if cpus := runtime.NumCPU(); cpus < workerList[0] {
			fmt.Fprintf(os.Stderr, "bench-check: parallel-speedup floor skipped: %d CPUs < %d workers (adaptive demotion expected, not scaling)\n",
				cpus, workerList[0])
		} else if s := fresh.Summary.GeomeanParallelSpeedupX; s < minParSpeedup {
			fmt.Fprintf(os.Stderr, "bench-check: parallel geomean speedup %.2fx vs fastforward, floor %.2fx REGRESSED\n",
				s, minParSpeedup)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "bench-check: parallel geomean speedup %.2fx vs fastforward (floor %.2fx) ok\n",
				s, minParSpeedup)
		}
	}
	if failed {
		return fmt.Errorf("throughput regressed vs %s", path)
	}
	return nil
}

func run(out string, seed int64, runs int, workerList []int) error {
	b, err := measureAll(seed, runs, workerList)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output path for the baseline (or the committed baseline with -check)")
	seed := flag.Int64("seed", 1, "input generation seed")
	runs := flag.Int("runs", 3, "independent runs per engine; best wall time is kept")
	workers := flag.String("workers", "4", "comma-separated worker counts for the parallel-engine rows; first is the primary row")
	doCheck := flag.Bool("check", false, "compare against the committed baseline instead of writing")
	tolerance := flag.Float64("check-tolerance", 0.25, "allowed fractional geomean cycles/sec regression under -check")
	minParSpeedup := flag.Float64("min-parallel-speedup", 0.9, "under -check, minimum parallel-vs-fastforward geomean speedup; 0 disables, skipped when NumCPU < workers")
	flag.Parse()
	workerList, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *doCheck {
		err = check(*out, *seed, *runs, workerList, *tolerance, *minParSpeedup)
	} else {
		err = run(*out, *seed, *runs, workerList)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
