// Command bench regenerates BENCH_sim.json, the tracked simulator
// performance baseline: for every baseline case it runs the timing model
// under both cycle engines — event-horizon fast-forwarding and the naive
// serial loop — and records wall time, simulated cycles per second, warp
// instructions per second and heap traffic. It refuses to write a baseline
// in which the two engines disagree on the simulated cycle count, so the
// numbers are always for byte-identical simulations.
//
// Usage:
//
//	bench                    # write BENCH_sim.json in the working directory
//	bench -o /tmp/b.json     # write elsewhere
//	bench -runs 5            # best-of-5 wall times per engine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"critload/internal/experiments"
)

type caseResult struct {
	Workload    string `json:"workload"`
	Size        int    `json:"size"`
	MemoryBound bool   `json:"memory_bound"`
	// Simulated work, identical for both engines by construction.
	Cycles      int64                         `json:"cycles"`
	WarpInsts   uint64                        `json:"warp_insts"`
	FastForward experiments.EngineMeasurement `json:"fastforward"`
	Naive       experiments.EngineMeasurement `json:"naive"`
	SpeedupX    float64                       `json:"speedup_x"`
}

type summary struct {
	GeomeanSpeedupX            float64 `json:"geomean_speedup_x"`
	MemoryBoundGeomeanSpeedupX float64 `json:"memory_bound_geomean_speedup_x"`
	MaxMallocsPerKCycleFF      float64 `json:"max_mallocs_per_kcycle_fastforward"`
}

type baseline struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	Seed      int64        `json:"seed"`
	Runs      int          `json:"runs"`
	Workloads []caseResult `json:"workloads"`
	Summary   summary      `json:"summary"`
}

// measureBest takes the best (minimum-wall-time) of n independent runs; heap
// counters come from the same best run so the row is self-consistent.
func measureBest(c experiments.BenchCase, seed int64, ff bool, n int) (experiments.EngineMeasurement, error) {
	var best experiments.EngineMeasurement
	for i := 0; i < n; i++ {
		m, err := experiments.MeasureEngine(c, seed, ff)
		if err != nil {
			return best, err
		}
		if i == 0 || m.WallSeconds < best.WallSeconds {
			best = m
		}
	}
	return best, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

func run(out string, seed int64, runs int) error {
	b := baseline{
		Schema:    "critload/bench_sim/v1",
		GoVersion: runtime.Version(),
		Seed:      seed,
		Runs:      runs,
	}
	var all, memBound []float64
	for _, c := range experiments.BenchCases() {
		ff, err := measureBest(c, seed, true, runs)
		if err != nil {
			return err
		}
		naive, err := measureBest(c, seed, false, runs)
		if err != nil {
			return err
		}
		if ff.Cycles != naive.Cycles || ff.WarpInsts != naive.WarpInsts {
			return fmt.Errorf("%s: engines diverge (fastforward %d cycles / %d insts, naive %d / %d); baseline not written",
				c.Name, ff.Cycles, ff.WarpInsts, naive.Cycles, naive.WarpInsts)
		}
		r := caseResult{
			Workload: c.Name, Size: c.Size, MemoryBound: c.MemoryBound,
			Cycles: ff.Cycles, WarpInsts: ff.WarpInsts,
			FastForward: ff, Naive: naive,
		}
		if ff.WallSeconds > 0 {
			r.SpeedupX = naive.WallSeconds / ff.WallSeconds
		}
		all = append(all, r.SpeedupX)
		if c.MemoryBound {
			memBound = append(memBound, r.SpeedupX)
		}
		if r.FastForward.MallocsPerKCycle > b.Summary.MaxMallocsPerKCycleFF {
			b.Summary.MaxMallocsPerKCycleFF = r.FastForward.MallocsPerKCycle
		}
		b.Workloads = append(b.Workloads, r)
		fmt.Fprintf(os.Stderr, "bench: %-5s %9d cycles (%4.1f%% skipped)  ff %6.2f Mcyc/s  naive %6.2f Mcyc/s  speedup %.2fx\n",
			c.Name, r.Cycles, 100*float64(ff.SkippedCycles)/float64(r.Cycles),
			ff.CyclesPerSec/1e6, naive.CyclesPerSec/1e6, r.SpeedupX)
	}
	b.Summary.GeomeanSpeedupX = geomean(all)
	b.Summary.MemoryBoundGeomeanSpeedupX = geomean(memBound)

	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output path for the baseline")
	seed := flag.Int64("seed", 1, "input generation seed")
	runs := flag.Int("runs", 3, "independent runs per engine; best wall time is kept")
	flag.Parse()
	if err := run(*out, *seed, *runs); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
