package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
	"critload/pkg/client"
)

// Operation names. These are the soak's logical ops, not the client's
// wire-level op names: one "simulate" spans a job submit plus its polls.
const (
	opClassify = "classify"
	opBatch    = "classify_batch"
	opSimulate = "simulate"
	opFamily   = "family"
)

// soakOps is the canonical op order for reports.
var soakOps = []string{opClassify, opBatch, opSimulate, opFamily}

// linKernel is the classify payload: the canonical single-kernel linear
// indexing example used across the repo's tests — small enough that a soak
// measures HTTP and classification overhead, not parsing bulk.
const linKernel = `
.kernel lin
.param .u32 a
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [a];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    exit;
`

// gatherKernel is a second classify payload with an indirect (data-dependent)
// load, so batches exercise both classification outcomes.
const gatherKernel = `
.kernel gather
.param .u32 idx
.param .u32 data
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [idx];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    ld.param.u32 %r7, [data];
    shl.u32      %r8, %r6, 2;
    add.u32      %r9, %r7, %r8;
    ld.global.u32 %r10, [%r9];
    exit;
`

// familyCycle is the rotation of family specs the family op classifies:
// every shipped family at least once, knobs varied so the daemon lowers a
// fresh kernel rather than replaying one memoized spec. Kept small — the op
// measures the synthesize-and-classify path, not kgen throughput.
var familyCycle = []client.FamilySpec{
	{Name: "stream", Knobs: map[string]int{"loads": 2, "size": 128}},
	{Name: "indirect-chase", Knobs: map[string]int{"depth": 2, "width": 2, "size": 128}},
	{Name: "shared-tile", Knobs: map[string]int{"fanout": 3, "size": 128}},
	{Name: "atomic-contend", Knobs: map[string]int{"spread": 1, "size": 128}},
	{Name: "mixed-dn", Knobs: map[string]int{"loads": 4, "dn": 50, "size": 128}},
	{Name: "stream", Knobs: map[string]int{"loads": 6, "stride": 4, "size": 256}},
	{Name: "mixed-dn", Knobs: map[string]int{"loads": 6, "dn": 100, "size": 128}},
}

// simSeedCycle is how many distinct simulate specs each worker rotates
// through. Small enough that the daemon's result cache converges, so the
// simulate op measures the submit/poll/cache path at soak rates rather
// than queueing thousands of distinct simulations.
const simSeedCycle = 8

// mix is the operation mix by weight. Weights need not sum to 1; picks are
// proportional.
type mix struct {
	Classify float64 `json:"classify"`
	Batch    float64 `json:"batch"`
	Simulate float64 `json:"simulate"`
	Family   float64 `json:"family"`
}

// parseMix parses "classify=0.6,batch=0.2,simulate=0.1,family=0.1". Omitted
// ops get weight 0; unknown ops, negative weights and an all-zero mix are
// errors.
func parseMix(s string) (mix, error) {
	var m mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return m, fmt.Errorf("mix weight in %q: %v", part, err)
		}
		if w < 0 {
			return m, fmt.Errorf("mix weight in %q is negative", part)
		}
		switch strings.TrimSpace(name) {
		case "classify":
			m.Classify = w
		case "batch":
			m.Batch = w
		case "simulate":
			m.Simulate = w
		case "family":
			m.Family = w
		default:
			return m, fmt.Errorf("unknown mix op %q (want classify, batch, simulate or family)", name)
		}
	}
	if m.Classify+m.Batch+m.Simulate+m.Family <= 0 {
		return m, errors.New("mix has no positive weights")
	}
	return m, nil
}

// pick selects one op proportionally to the mix weights.
func (m mix) pick(r *rand.Rand) string {
	x := r.Float64() * (m.Classify + m.Batch + m.Simulate + m.Family)
	switch {
	case x < m.Classify:
		return opClassify
	case x < m.Classify+m.Batch:
		return opBatch
	case x < m.Classify+m.Batch+m.Simulate:
		return opSimulate
	default:
		return opFamily
	}
}

// loadConfig shapes one soak run.
type loadConfig struct {
	Workers     int
	Duration    time.Duration
	Mix         mix
	BatchSize   int
	SimWorkload string
	SimSize     int
	Seed        int64
	ReportEvery time.Duration
}

// opCounter is one op's live counters, shared across workers.
type opCounter struct {
	count  atomic.Int64
	errors atomic.Int64
}

// runner drives cfg.Workers goroutines against one shared client.
type runner struct {
	cfg    loadConfig
	client *client.Client
	log    io.Writer
	counts map[string]*opCounter
}

func newRunner(cfg loadConfig, c *client.Client, log io.Writer) *runner {
	counts := make(map[string]*opCounter, len(soakOps))
	for _, op := range soakOps {
		counts[op] = &opCounter{}
	}
	return &runner{cfg: cfg, client: c, log: log, counts: counts}
}

// run soaks for cfg.Duration and returns the merged report.
func (r *runner) run(ctx context.Context) (*soakReport, error) {
	soakCtx, cancel := context.WithTimeout(ctx, r.cfg.Duration)
	defer cancel()

	reportDone := make(chan struct{})
	if r.cfg.ReportEvery > 0 {
		go func() {
			defer close(reportDone)
			r.reportLoop(soakCtx)
		}()
	} else {
		close(reportDone)
	}

	start := time.Now()
	results := make(chan map[string][]float64, r.cfg.Workers)
	for i := 0; i < r.cfg.Workers; i++ {
		go r.worker(soakCtx, i, results)
	}
	merged := make(map[string][]float64, len(soakOps))
	for i := 0; i < r.cfg.Workers; i++ {
		for op, samples := range <-results {
			merged[op] = append(merged[op], samples...)
		}
	}
	elapsed := time.Since(start)
	cancel()
	<-reportDone
	return r.report(merged, elapsed), nil
}

// worker loops op picks until the soak context expires, accumulating its
// latency samples locally (no cross-worker contention on the hot path).
func (r *runner) worker(ctx context.Context, id int, out chan<- map[string][]float64) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(id)*9973))
	samples := make(map[string][]float64, len(soakOps))
	for n := 0; ; n++ {
		if ctx.Err() != nil {
			break
		}
		op := r.cfg.Mix.pick(rng)
		start := time.Now()
		err := r.doOp(ctx, op, n)
		if err != nil && ctx.Err() != nil {
			// The soak deadline tore this op mid-flight; that is shutdown,
			// not a server failure — don't count it either way.
			break
		}
		c := r.counts[op]
		c.count.Add(1)
		if err != nil {
			c.errors.Add(1)
		}
		samples[op] = append(samples[op], time.Since(start).Seconds())
	}
	out <- samples
}

func (r *runner) doOp(ctx context.Context, op string, n int) error {
	switch op {
	case opClassify:
		_, err := r.client.Classify(ctx, linKernel)
		return err
	case opBatch:
		items := make([]client.BatchItem, r.cfg.BatchSize)
		for i := range items {
			src := linKernel
			if i%2 == 1 {
				src = gatherKernel
			}
			items[i] = client.BatchItem{PTX: src}
		}
		res, err := r.client.ClassifyBatch(ctx, items)
		if err != nil {
			return err
		}
		if res.Failed > 0 {
			return fmt.Errorf("batch: %d/%d items failed", res.Failed, len(items))
		}
		return nil
	case opSimulate:
		job, err := r.client.RunJob(ctx, client.JobSpec{
			Workload: r.cfg.SimWorkload,
			Mode:     "functional",
			Size:     r.cfg.SimSize,
			Seed:     r.cfg.Seed + int64(n%simSeedCycle),
		})
		if err != nil {
			return err
		}
		return job.Err()
	case opFamily:
		spec := familyCycle[n%len(familyCycle)]
		res, err := r.client.ClassifyFamily(ctx, spec)
		if err != nil {
			return err
		}
		if len(res.Kernels) != 1 {
			return fmt.Errorf("family %s: %d kernels, want 1", spec.Name, len(res.Kernels))
		}
		return nil
	}
	return fmt.Errorf("unknown op %q", op)
}

// reportLoop prints a live SLO line every ReportEvery: interval QPS, the
// cumulative error rate, and the classify hot path's running p50/p99.
func (r *runner) reportLoop(ctx context.Context) {
	t := time.NewTicker(r.cfg.ReportEvery)
	defer t.Stop()
	start := time.Now()
	var last int64
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var total, errs int64
		for _, c := range r.counts {
			total += c.count.Load()
			errs += c.errors.Load()
		}
		qps := float64(total-last) / r.cfg.ReportEvery.Seconds()
		last = total
		errRate := 0.0
		if total > 0 {
			errRate = float64(errs) / float64(total)
		}
		cl := r.client.Stats()[opClassify]
		fmt.Fprintf(r.log, "soak: t=%3.0fs qps=%7.0f err=%.2f%% classify p50=%.2fms p99=%.2fms breaker=%s\n",
			time.Since(start).Seconds(), qps, 100*errRate, cl.P50Millis, cl.P99Millis,
			r.client.BreakerState())
	}
}

// startLocalDaemon brings up a real critloadd API server on a loopback
// port, optionally wrapped in a fault injector, and returns its base URL
// and a shutdown func.
func startLocalDaemon(workers int, latency time.Duration, errRate float64, seed int64) (string, func(), error) {
	mgr, err := jobs.NewManager(jobs.Config{Workers: workers, Runner: server.SimRunner()})
	if err != nil {
		return "", nil, err
	}
	var h http.Handler = server.New(mgr)
	if latency > 0 || errRate > 0 {
		h = &faultInjector{next: h, latency: latency, rate: errRate,
			rng: rand.New(rand.NewSource(seed))}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// faultInjector adds fixed latency and a fraction of injected 503s in
// front of the daemon, so a soak can exercise the client's retry, backoff
// and breaker machinery against a server that is actually misbehaving.
type faultInjector struct {
	next    http.Handler
	latency time.Duration
	rate    float64

	mu  sync.Mutex
	rng *rand.Rand
}

func (f *faultInjector) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if f.latency > 0 {
		time.Sleep(f.latency)
	}
	if f.rate > 0 {
		f.mu.Lock()
		roll := f.rng.Float64()
		f.mu.Unlock()
		if roll < f.rate {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"injected fault"}`)
			return
		}
	}
	f.next.ServeHTTP(w, req)
}
