// Command critload-bench soaks a critloadd daemon through the native
// client (pkg/client): N workers drive a configurable mix of classify,
// batch-classify, simulate and family (synthesize-and-classify) operations
// for a fixed duration, with optional injected latency and error faults,
// and report the sustained QPS, exact latency quantiles and error rate per
// operation.
//
// With no -addr it spins up an in-process daemon on a loopback port, so
// the numbers measure the full HTTP stack (client pool, server, JSON)
// without network noise — that is the tracked BENCH_soak.json baseline.
//
// Usage:
//
//	critload-bench                          # 10s soak, write BENCH_soak.json
//	critload-bench -addr localhost:8321     # soak a running daemon instead
//	critload-bench -workers 16 -duration 30s
//	critload-bench -mix classify=1          # single-op soak
//	critload-bench -inject-errors 0.05      # 5% injected 503s (in-process
//	                                        # only) to exercise client retry
//	critload-bench -check -duration 5s      # compare a fresh soak against the
//	                                        # committed baseline: exit 1 if any
//	                                        # op's QPS regressed more than
//	                                        # -check-tolerance or the error
//	                                        # rate exceeds -max-error-rate
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"critload/pkg/client"
)

func main() {
	addr := flag.String("addr", "",
		"daemon address to soak (empty = start an in-process daemon)")
	workers := flag.Int("workers", 8, "concurrent load workers")
	duration := flag.Duration("duration", 10*time.Second, "soak duration")
	mixSpec := flag.String("mix", "classify=0.55,batch=0.25,simulate=0.1,family=0.1",
		"operation mix as weight pairs (classify, batch, simulate, family)")
	batchSize := flag.Int("batch-size", 16, "kernels per batch-classify request")
	simWorkload := flag.String("sim-workload", "2mm", "workload for simulate ops")
	simSize := flag.Int("sim-size", 32, "input size for simulate ops")
	seed := flag.Int64("seed", 1, "base seed for op selection and simulate jobs")
	daemonWorkers := flag.Int("daemon-workers", 0,
		"in-process daemon pool size (0 = one per CPU; ignored with -addr)")
	injectLatency := flag.Duration("inject-latency", 0,
		"added per-request latency in the in-process daemon (ignored with -addr)")
	injectErrors := flag.Float64("inject-errors", 0,
		"fraction of in-process daemon requests answered 503 (ignored with -addr)")
	reportEvery := flag.Duration("report-interval", 2*time.Second,
		"live report interval (0 disables)")
	out := flag.String("o", "BENCH_soak.json",
		"output path for the baseline (or the committed baseline with -check)")
	doCheck := flag.Bool("check", false,
		"compare against the committed baseline instead of writing")
	tolerance := flag.Float64("check-tolerance", 0.5,
		"allowed fractional per-op QPS regression under -check")
	maxErrorRate := flag.Float64("max-error-rate", 0.01,
		"overall error-rate ceiling under -check")
	flag.Parse()

	if err := run(options{
		addr: *addr, workers: *workers, duration: *duration, mixSpec: *mixSpec,
		batchSize: *batchSize, simWorkload: *simWorkload, simSize: *simSize,
		seed: *seed, daemonWorkers: *daemonWorkers,
		injectLatency: *injectLatency, injectErrors: *injectErrors,
		reportEvery: *reportEvery, out: *out,
		check: *doCheck, tolerance: *tolerance, maxErrorRate: *maxErrorRate,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "critload-bench:", err)
		os.Exit(1)
	}
}

type options struct {
	addr          string
	workers       int
	duration      time.Duration
	mixSpec       string
	batchSize     int
	simWorkload   string
	simSize       int
	seed          int64
	daemonWorkers int
	injectLatency time.Duration
	injectErrors  float64
	reportEvery   time.Duration
	out           string
	check         bool
	tolerance     float64
	maxErrorRate  float64
}

func run(o options) error {
	var committed *soakReport
	if o.check {
		buf, err := os.ReadFile(o.out)
		if err != nil {
			return fmt.Errorf("reading committed baseline: %w", err)
		}
		committed = &soakReport{}
		if err := json.Unmarshal(buf, committed); err != nil {
			return fmt.Errorf("parsing committed baseline %s: %w", o.out, err)
		}
		if committed.Schema != soakSchema {
			return fmt.Errorf("committed baseline %s has schema %q, want %q",
				o.out, committed.Schema, soakSchema)
		}
		// Measure what the baseline measured: adopt its shape, keeping only
		// the caller's (usually shorter) duration. QPS is a rate, so a short
		// run compares fairly against a long one.
		o.workers = committed.Workers
		o.batchSize = committed.BatchSize
		o.simWorkload = committed.SimWorkload
		o.simSize = committed.SimSize
		o.seed = committed.Seed
		o.injectLatency = time.Duration(committed.InjectedLatencyMillis) * time.Millisecond
		o.injectErrors = committed.InjectedErrorRate
		o.mixSpec = fmt.Sprintf("classify=%g,batch=%g,simulate=%g,family=%g",
			committed.Mix.Classify, committed.Mix.Batch, committed.Mix.Simulate,
			committed.Mix.Family)
		fmt.Fprintf(os.Stderr, "soak-check: adopting committed shape: %d workers, mix %s, batch %d, sim %s/%d\n",
			o.workers, o.mixSpec, o.batchSize, o.simWorkload, o.simSize)
	}

	m, err := parseMix(o.mixSpec)
	if err != nil {
		return err
	}
	if o.workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", o.workers)
	}
	if o.duration <= 0 {
		return fmt.Errorf("duration must be positive, got %v", o.duration)
	}

	baseURL := o.addr
	if baseURL == "" {
		url, shutdown, err := startLocalDaemon(o.daemonWorkers, o.injectLatency, o.injectErrors, o.seed)
		if err != nil {
			return fmt.Errorf("starting in-process daemon: %w", err)
		}
		defer shutdown()
		baseURL = url
	} else if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}

	c, err := client.New(client.Config{BaseURL: baseURL})
	if err != nil {
		return err
	}
	defer c.Close()

	r := newRunner(loadConfig{
		Workers: o.workers, Duration: o.duration, Mix: m, BatchSize: o.batchSize,
		SimWorkload: o.simWorkload, SimSize: o.simSize, Seed: o.seed,
		ReportEvery: o.reportEvery,
	}, c, os.Stderr)
	rep, err := r.run(context.Background())
	if err != nil {
		return err
	}
	rep.InjectedLatencyMillis = o.injectLatency.Milliseconds()
	rep.InjectedErrorRate = o.injectErrors
	printSummary(os.Stderr, rep)

	if o.check {
		return checkAgainst(committed, rep, o.tolerance, o.maxErrorRate, os.Stderr)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(o.out, append(buf, '\n'), 0o644)
}
