package main

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"critload/pkg/client"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("classify=0.55,batch=0.25,simulate=0.1,family=0.1")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	if m.Classify != 0.55 || m.Batch != 0.25 || m.Simulate != 0.1 || m.Family != 0.1 {
		t.Fatalf("parseMix = %+v", m)
	}

	m, err = parseMix("classify=1")
	if err != nil {
		t.Fatalf("single-op mix: %v", err)
	}
	if m.Classify != 1 || m.Batch != 0 || m.Simulate != 0 {
		t.Fatalf("single-op mix = %+v", m)
	}

	for _, bad := range []string{
		"",             // no weights at all
		"classify=0",   // all-zero
		"classify=-1",  // negative
		"classify",     // not name=weight
		"classify=x",   // non-numeric
		"frobnicate=1", // unknown op
		"classify=0,batch=0,simulate=0,family=0",
	} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) succeeded, want error", bad)
		}
	}
}

func TestMixPickProportions(t *testing.T) {
	m := mix{Classify: 0.5, Batch: 0.5}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[m.pick(rng)]++
	}
	if counts[opSimulate] != 0 {
		t.Fatalf("zero-weight op picked %d times", counts[opSimulate])
	}
	if counts[opClassify] < 4500 || counts[opClassify] > 5500 {
		t.Fatalf("50%% op picked %d/10000 times", counts[opClassify])
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	xs := []float64{1, 2, 3, 4, 5}
	if q := quantile(xs, 0.5); q != 3 {
		t.Fatalf("median of 1..5 = %v, want 3", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Fatalf("p100 = %v, want 5", q)
	}
	if q := quantile(xs, 0.25); q != 2 {
		t.Fatalf("p25 = %v, want 2", q)
	}
}

func reportWith(qps map[string]float64, errRate float64) *soakReport {
	rep := &soakReport{Schema: soakSchema, Ops: map[string]opReport{}}
	for op, q := range qps {
		rep.Ops[op] = opReport{Count: int64(q * 10), QPS: q}
	}
	rep.Total.ErrorRate = errRate
	return rep
}

func TestCheckAgainst(t *testing.T) {
	committed := reportWith(map[string]float64{
		opClassify: 1000, opBatch: 100, opSimulate: 50,
	}, 0)

	var buf bytes.Buffer
	fresh := reportWith(map[string]float64{
		opClassify: 900, opBatch: 95, opSimulate: 60,
	}, 0.001)
	if err := checkAgainst(committed, fresh, 0.5, 0.01, &buf); err != nil {
		t.Fatalf("within tolerance: %v\n%s", err, buf.String())
	}

	buf.Reset()
	slow := reportWith(map[string]float64{
		opClassify: 400, opBatch: 95, opSimulate: 60,
	}, 0)
	if err := checkAgainst(committed, slow, 0.5, 0.01, &buf); err == nil {
		t.Fatalf("60%% QPS drop passed check:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("check output names no regression:\n%s", buf.String())
	}

	buf.Reset()
	flaky := reportWith(map[string]float64{
		opClassify: 1000, opBatch: 100, opSimulate: 50,
	}, 0.05)
	if err := checkAgainst(committed, flaky, 0.5, 0.01, &buf); err == nil {
		t.Fatalf("5%% error rate passed a 1%% ceiling:\n%s", buf.String())
	}

	// An op missing from the committed file is skipped, not failed.
	buf.Reset()
	partial := reportWith(map[string]float64{opClassify: 1000}, 0)
	if err := checkAgainst(partial, fresh, 0.5, 0.01, &buf); err != nil {
		t.Fatalf("partial baseline: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Fatalf("partial baseline output lacks skip note:\n%s", buf.String())
	}
}

// TestSoakSmoke runs the full pipeline briefly — in-process daemon with
// fault injection, all three ops — and sanity-checks the report.
func TestSoakSmoke(t *testing.T) {
	url, shutdown, err := startLocalDaemon(2, time.Millisecond, 0.05, 1)
	if err != nil {
		t.Fatalf("startLocalDaemon: %v", err)
	}
	defer shutdown()

	c, err := client.New(client.Config{
		BaseURL:        url,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	defer c.Close()

	var log bytes.Buffer
	r := newRunner(loadConfig{
		Workers:   4,
		Duration:  500 * time.Millisecond,
		Mix:       mix{Classify: 0.4, Batch: 0.25, Simulate: 0.15, Family: 0.2},
		BatchSize: 4, SimWorkload: "2mm", SimSize: 16, Seed: 1,
		ReportEvery: 100 * time.Millisecond,
	}, c, &log)
	rep, err := r.run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	if rep.Schema != soakSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	for _, op := range soakOps {
		o, ok := rep.Ops[op]
		if !ok || o.Count == 0 {
			t.Fatalf("op %s recorded no completions: %+v", op, rep.Ops)
		}
		if o.QPS <= 0 || o.P99Millis < o.P50Millis || o.MaxMillis < o.P99Millis {
			t.Fatalf("op %s has inconsistent stats: %+v", op, o)
		}
	}
	if rep.Total.QPS <= 0 {
		t.Fatalf("total QPS = %v", rep.Total.QPS)
	}
	// 5% injected 503s must be absorbed by client retries, not surface as
	// soak errors — that is the whole point of the retry layer.
	if rep.Total.ErrorRate > 0.01 {
		t.Fatalf("error rate %.2f%% with retries enabled", 100*rep.Total.ErrorRate)
	}
	if !strings.Contains(log.String(), "qps=") {
		t.Fatalf("no live report lines:\n%s", log.String())
	}

	var sum bytes.Buffer
	printSummary(&sum, rep)
	if !strings.Contains(sum.String(), "classify_batch") {
		t.Fatalf("summary lacks per-op rows:\n%s", sum.String())
	}
}
