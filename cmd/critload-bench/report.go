package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// soakSchema versions the BENCH_soak.json shape.
const soakSchema = "critload/bench_soak/v1"

// opReport is one operation's soak outcome. Quantiles are exact (computed
// from every recorded sample, not histogram estimates).
type opReport struct {
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	Retries    int64   `json:"retries"`
	QPS        float64 `json:"qps"`
	ErrorRate  float64 `json:"error_rate"`
	P50Millis  float64 `json:"p50_millis"`
	P99Millis  float64 `json:"p99_millis"`
	MeanMillis float64 `json:"mean_millis"`
	MaxMillis  float64 `json:"max_millis"`
}

// soakReport is the full BENCH_soak.json artifact: the soak's shape (so
// -check can reproduce it) plus per-op and total outcomes.
type soakReport struct {
	Schema                string              `json:"schema"`
	GoVersion             string              `json:"go_version"`
	Workers               int                 `json:"workers"`
	DurationSeconds       float64             `json:"duration_seconds"`
	Mix                   mix                 `json:"mix"`
	BatchSize             int                 `json:"batch_size"`
	SimWorkload           string              `json:"sim_workload"`
	SimSize               int                 `json:"sim_size"`
	Seed                  int64               `json:"seed"`
	InjectedLatencyMillis int64               `json:"injected_latency_millis"`
	InjectedErrorRate     float64             `json:"injected_error_rate"`
	Ops                   map[string]opReport `json:"ops"`
	Total                 totalReport         `json:"total"`
}

type totalReport struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"`
	ErrorRate float64 `json:"error_rate"`
}

// quantile reads the exact p-quantile from a sorted sample slice by linear
// interpolation between the straddling order statistics.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(idx)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// clientRetryOps maps each soak op to the client wire ops whose retries it
// spans: a simulate is one submit plus its long polls.
var clientRetryOps = map[string][]string{
	opClassify: {"classify"},
	opBatch:    {"classify_batch"},
	opSimulate: {"job_submit", "job_wait"},
	opFamily:   {"classify_family"},
}

// report folds the merged per-worker samples and the shared counters into
// the final artifact.
func (r *runner) report(samples map[string][]float64, elapsed time.Duration) *soakReport {
	rep := &soakReport{
		Schema:          soakSchema,
		GoVersion:       runtime.Version(),
		Workers:         r.cfg.Workers,
		DurationSeconds: elapsed.Seconds(),
		Mix:             r.cfg.Mix,
		BatchSize:       r.cfg.BatchSize,
		SimWorkload:     r.cfg.SimWorkload,
		SimSize:         r.cfg.SimSize,
		Seed:            r.cfg.Seed,
		Ops:             make(map[string]opReport, len(soakOps)),
	}
	clientStats := r.client.Stats()
	for _, op := range soakOps {
		c := r.counts[op]
		o := opReport{Count: c.count.Load(), Errors: c.errors.Load()}
		if o.Count == 0 {
			continue
		}
		for _, wire := range clientRetryOps[op] {
			o.Retries += clientStats[wire].Retries
		}
		o.QPS = float64(o.Count) / elapsed.Seconds()
		o.ErrorRate = float64(o.Errors) / float64(o.Count)
		xs := samples[op]
		sort.Float64s(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		if len(xs) > 0 {
			o.MeanMillis = sum / float64(len(xs)) * 1e3
			o.MaxMillis = xs[len(xs)-1] * 1e3
			o.P50Millis = quantile(xs, 0.50) * 1e3
			o.P99Millis = quantile(xs, 0.99) * 1e3
		}
		rep.Ops[op] = o
		rep.Total.Count += o.Count
		rep.Total.Errors += o.Errors
	}
	rep.Total.QPS = float64(rep.Total.Count) / elapsed.Seconds()
	if rep.Total.Count > 0 {
		rep.Total.ErrorRate = float64(rep.Total.Errors) / float64(rep.Total.Count)
	}
	return rep
}

// printSummary writes the human-readable end-of-soak table.
func printSummary(w io.Writer, rep *soakReport) {
	fmt.Fprintf(w, "soak: %d workers, %.1fs, %.0f QPS total, %.2f%% errors\n",
		rep.Workers, rep.DurationSeconds, rep.Total.QPS, 100*rep.Total.ErrorRate)
	for _, op := range soakOps {
		o, ok := rep.Ops[op]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "soak: %-14s %8d ops %8.0f QPS  p50 %7.2fms  p99 %7.2fms  max %8.2fms  %d errors  %d retries\n",
			op, o.Count, o.QPS, o.P50Millis, o.P99Millis, o.MaxMillis, o.Errors, o.Retries)
	}
}

// checkAgainst fails when any op present in the committed baseline lost
// more than tolerance of its QPS, or the fresh overall error rate exceeds
// maxErrorRate. Ops absent from the committed file are skipped, so -check
// keeps working across mix changes without a flag day.
func checkAgainst(committed, fresh *soakReport, tolerance, maxErrorRate float64, w io.Writer) error {
	failed := false
	for _, op := range soakOps {
		want, ok := committed.Ops[op]
		if !ok || want.QPS <= 0 {
			fmt.Fprintf(w, "soak-check: %-14s no committed measurement, skipped\n", op)
			continue
		}
		got := fresh.Ops[op]
		ratio := got.QPS / want.QPS
		status := "ok"
		if ratio < 1-tolerance {
			status = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(w, "soak-check: %-14s committed %8.0f QPS, now %8.0f QPS (%+.1f%%) %s\n",
			op, want.QPS, got.QPS, 100*(ratio-1), status)
	}
	if fresh.Total.ErrorRate > maxErrorRate {
		fmt.Fprintf(w, "soak-check: error rate %.2f%% exceeds ceiling %.2f%%\n",
			100*fresh.Total.ErrorRate, 100*maxErrorRate)
		failed = true
	}
	if failed {
		return fmt.Errorf("soak regressed more than %.0f%% (or error ceiling breached) vs baseline", 100*tolerance)
	}
	return nil
}
