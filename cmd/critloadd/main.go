// Command critloadd serves the paper's classification-and-simulation
// pipeline over HTTP: synchronous PTX load classification, asynchronous
// functional/timing simulation jobs on a bounded worker pool, a
// content-addressed result cache, Prometheus metrics and structured access
// logs with per-request IDs. See docs/SERVICE.md for the API contract and
// the operating guide.
//
// Usage:
//
//	critloadd                         # listen on :8321, one worker per CPU
//	critloadd -addr :9000 -workers 4  # custom bind and pool size
//	critloadd -cache 1024 -queue 512  # larger result cache and job queue
//	critloadd -cache-dir /var/cache/critload   # on-disk checkpoint store so
//	                                  # jobs with reuse_checkpoints warm-start
//	critloadd -log-format json        # machine-readable logs
//	critloadd -pprof localhost:6060   # expose net/http/pprof separately
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"critload/internal/checkpoint"
	"critload/internal/jobs"
	"critload/internal/obsv"
	"critload/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per CPU)")
	queue := flag.Int("queue", jobs.DefaultQueueDepth, "job queue depth")
	cacheEntries := flag.Int("cache", jobs.DefaultCacheEntries,
		"result cache entries (negative disables caching)")
	cacheDir := flag.String("cache-dir", "",
		"on-disk cache directory; checkpoints live under <cache-dir>/checkpoints (empty disables checkpoint reuse)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", 1<<30,
		"eviction budget in bytes for the on-disk cache directory (0 = unbounded)")
	grace := flag.Duration("grace", 30*time.Second,
		"shutdown grace period for draining running jobs")
	idleTimeout := flag.Duration("idle-timeout", defaultIdleTimeout,
		"reap keep-alive connections idle this long (0 disables reaping)")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	flag.Parse()

	log := obsv.NewLogger(os.Stderr, *logFormat, obsv.ParseLevel(*logLevel))
	if err := run(log, *addr, *pprofAddr, *cacheDir, *workers, *queue, *cacheEntries,
		*cacheDiskBytes, *grace, *idleTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "critloadd:", err)
		os.Exit(1)
	}
}

func run(log *slog.Logger, addr, pprofAddr, cacheDir string, workers, queue, cacheEntries int,
	cacheDiskBytes int64, grace, idleTimeout time.Duration) error {
	var ckpts *checkpoint.Store
	if cacheDir != "" {
		var err error
		ckpts, err = checkpoint.Open(filepath.Join(cacheDir, "checkpoints"), cacheDiskBytes)
		if err != nil {
			return fmt.Errorf("opening checkpoint store: %w", err)
		}
		log.Info("checkpoint store open", "dir", ckpts.Dir(), "budget_bytes", cacheDiskBytes)
	}
	mgr, err := jobs.NewManager(jobs.Config{
		Workers:      workers,
		QueueDepth:   queue,
		CacheEntries: cacheEntries,
		Runner:       server.SimRunnerWith(ckpts),
	})
	if err != nil {
		return err
	}

	httpSrv := newAPIServer(addr,
		server.New(mgr, server.WithLogger(log), server.WithCheckpoints(ckpts)), idleTimeout)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if pprofAddr != "" {
		pprofSrv := pprofServer(pprofAddr)
		defer pprofSrv.Close()
		go func() {
			log.Info("pprof listening", "addr", pprofAddr)
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof server", "error", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", addr, "workers", workers, "queue", queue, "cache", cacheEntries)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the pool;
	// running jobs get the full grace period before their contexts are
	// cancelled.
	log.Info("shutting down, draining jobs", "grace", grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := mgr.Close(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("draining jobs: %w", err)
	}
	log.Info("drained")
	return nil
}

// defaultIdleTimeout reaps keep-alive connections that have sat idle for
// two minutes. Before it existed, a soak's worth of pooled client
// connections (or a slow leak of abandoned ones) accumulated unboundedly —
// each holding a file descriptor and a read buffer for the daemon's
// lifetime.
const defaultIdleTimeout = 2 * time.Minute

// newAPIServer builds the public API's http.Server with its timeout
// policy:
//
//   - ReadHeaderTimeout bounds a slow-loris header dribble.
//   - ReadTimeout bounds reading one full request (headers + the ≤4 MiB
//     body). It does not bound handler execution: net/http clears the read
//     deadline once the handler takes over the connection's background
//     read.
//   - IdleTimeout reaps parked keep-alive connections between requests.
//   - WriteTimeout deliberately stays 0: GET /v1/jobs/{id}?wait_ms=N holds
//     the response open for a caller-chosen long-poll window, and a write
//     deadline would sever those (and slow multi-minute simulate results)
//     mid-response. Job wall time is bounded per job via timeout_ms
//     instead.
func newAPIServer(addr string, h http.Handler, idleTimeout time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       idleTimeout,
	}
}

// pprofServer builds the profiling endpoint on its own mux and listener so
// the profiler is never exposed on the public API address.
func pprofServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
}
