// Command critloadd serves the paper's classification-and-simulation
// pipeline over HTTP: synchronous PTX load classification, asynchronous
// functional/timing simulation jobs on a bounded worker pool, a
// content-addressed result cache, Prometheus metrics and structured access
// logs with per-request IDs. See docs/SERVICE.md for the API contract and
// the operating guide.
//
// Usage:
//
//	critloadd                         # listen on :8321, one worker per CPU
//	critloadd -addr :9000 -workers 4  # custom bind and pool size
//	critloadd -cache 1024 -queue 512  # larger result cache and job queue
//	critloadd -cache-dir /var/cache/critload   # on-disk checkpoint store so
//	                                  # jobs with reuse_checkpoints warm-start
//	critloadd -data-dir /var/lib/critload      # durable job tier: journal +
//	                                  # result store, crash recovery on start
//	critloadd -log-format json        # machine-readable logs
//	critloadd -pprof localhost:6060   # expose net/http/pprof separately
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"critload/internal/daemon"
	"critload/internal/jobs"
	"critload/internal/obsv"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	addrFile := flag.String("addr-file", "",
		"write the bound listen address to this file once serving (for harnesses using :0)")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per CPU)")
	queue := flag.Int("queue", jobs.DefaultQueueDepth, "job queue depth")
	cacheEntries := flag.Int("cache", jobs.DefaultCacheEntries,
		"result cache entries (negative disables caching)")
	cacheDir := flag.String("cache-dir", "",
		"on-disk cache directory; checkpoints live under <cache-dir>/checkpoints (empty disables checkpoint reuse)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", 1<<30,
		"eviction budget in bytes for the on-disk cache directory (0 = unbounded)")
	dataDir := flag.String("data-dir", "",
		"durable state directory; the job journal lives under <data-dir>/journal and results under <data-dir>/results (empty disables durability)")
	dataDiskBytes := flag.Int64("data-disk-bytes", 1<<30,
		"eviction budget in bytes for the on-disk result store (0 = unbounded)")
	grace := flag.Duration("grace", 30*time.Second,
		"shutdown grace period for draining running jobs")
	idleTimeout := flag.Duration("idle-timeout", daemon.DefaultIdleTimeout,
		"reap keep-alive connections idle this long (0 disables reaping)")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	err := daemon.Run(ctx, daemon.Config{
		Addr:           *addr,
		AddrFile:       *addrFile,
		PprofAddr:      *pprofAddr,
		Workers:        *workers,
		Queue:          *queue,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		CacheDiskBytes: *cacheDiskBytes,
		DataDir:        *dataDir,
		DataDiskBytes:  *dataDiskBytes,
		Grace:          *grace,
		IdleTimeout:    *idleTimeout,
		Log:            obsv.NewLogger(os.Stderr, *logFormat, obsv.ParseLevel(*logLevel)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "critloadd:", err)
		os.Exit(1)
	}
}
