// Command critloadd serves the paper's classification-and-simulation
// pipeline over HTTP: synchronous PTX load classification, asynchronous
// functional/timing simulation jobs on a bounded worker pool, a
// content-addressed result cache, and text metrics. See docs/SERVICE.md for
// the API contract.
//
// Usage:
//
//	critloadd                         # listen on :8321, one worker per CPU
//	critloadd -addr :9000 -workers 4  # custom bind and pool size
//	critloadd -cache 1024 -queue 512  # larger result cache and job queue
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per CPU)")
	queue := flag.Int("queue", jobs.DefaultQueueDepth, "job queue depth")
	cacheEntries := flag.Int("cache", jobs.DefaultCacheEntries,
		"result cache entries (negative disables caching)")
	grace := flag.Duration("grace", 30*time.Second,
		"shutdown grace period for draining running jobs")
	flag.Parse()

	if err := run(*addr, *workers, *queue, *cacheEntries, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "critloadd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, cacheEntries int, grace time.Duration) error {
	mgr, err := jobs.NewManager(jobs.Config{
		Workers:      workers,
		QueueDepth:   queue,
		CacheEntries: cacheEntries,
		Runner:       server.SimRunner(),
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           server.New(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("critloadd: listening on %s (%d workers)", addr, workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the pool;
	// running jobs get the full grace period before their contexts are
	// cancelled.
	log.Printf("critloadd: shutting down, draining jobs (grace %s)", grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		log.Printf("critloadd: http shutdown: %v", err)
	}
	if err := mgr.Close(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("draining jobs: %w", err)
	}
	log.Printf("critloadd: drained")
	return nil
}
