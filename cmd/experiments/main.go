// Command experiments regenerates the paper's tables and figures from the
// simulator. One shared suite runs each workload at most once functionally
// and once under the timing model; every artifact is then derived from those
// runs, as in the paper's methodology.
//
// Usage:
//
//	experiments                       # everything, text tables
//	experiments -artifact fig5        # a single figure
//	experiments -markdown             # markdown tables (EXPERIMENTS.md input)
//	experiments -size-scale small     # reduced inputs for a quick pass
//	experiments -parallel 8           # warm the suite on 8 workers first
//	experiments -cpuprofile cpu.prof  # profile the sweep (go tool pprof)
//	experiments -checkpoint-dir ""    # disable incremental warm starts
//	experiments -artifact warmstart -warmstart-out BENCH_warmstart.json
//	                                  # record the incremental-sweep measurement
//	experiments -artifact warmstart -warmstart-check BENCH_warmstart.json
//	                                  # regenerate and compare it exactly
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"

	"critload/internal/cache"
	"critload/internal/checkpoint"
	"critload/internal/experiments"
	"critload/internal/isa"
	"critload/internal/profiler"
	"critload/internal/report"
	"critload/internal/stats"
)

var markdown bool

func emit(t *report.Table) {
	if markdown {
		fmt.Println(t.Markdown())
	} else {
		fmt.Println(t)
	}
}

// checkpointBudgetBytes caps the shared on-disk checkpoint store; LRU
// eviction keeps the directory under it across invocations.
const checkpointBudgetBytes = 4 << 30

func main() {
	artifact := flag.String("artifact", "all",
		"artifact to regenerate: all, table1, table3, fig1..fig12, ablation, warmstart")
	seed := flag.Int64("seed", 1, "input generation seed")
	maxInsts := flag.Uint64("max-insts", 400_000,
		"timing-window warp-instruction budget per workload (0 = complete runs)")
	md := flag.Bool("markdown", false, "emit markdown tables")
	parallel := flag.Int("parallel", 0,
		"workers executing the sweep concurrently (0 = serial, -1 = one per CPU)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	ckptDir := flag.String("checkpoint-dir", filepath.Join(os.TempDir(), "critload-checkpoints"),
		"checkpoint store so repeated sweeps warm-start instead of re-simulating (empty disables)")
	warmOut := flag.String("warmstart-out", "",
		"with -artifact warmstart: also write the report JSON to this path")
	warmCheck := flag.String("warmstart-check", "",
		"with -artifact warmstart: regenerate and compare against this committed report instead of writing")
	flag.Parse()
	markdown = *md

	// The sweep runs inside a function returning error so the deferred
	// profile writers always flush; os.Exit here would skip them.
	var err error
	if strings.ToLower(*artifact) == "warmstart" {
		err = warmstart(*warmOut, *warmCheck, *seed)
	} else {
		err = sweep(strings.ToLower(*artifact), *ckptDir, *seed, *maxInsts, *parallel,
			*cpuProfile, *memProfile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func sweep(artifact, ckptDir string, seed int64, maxInsts uint64, parallel int, cpuProfile, memProfile string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		// Written on the way out so the profile covers the whole sweep; a
		// final GC makes the live-heap numbers meaningful.
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	opts := experiments.Options{Seed: seed, MaxWarpInsts: maxInsts}
	if ckptDir != "" {
		store, err := checkpoint.Open(ckptDir, checkpointBudgetBytes)
		if err != nil {
			return fmt.Errorf("checkpoint store: %w", err)
		}
		opts.Checkpoints = store
	}
	suite := experiments.NewSuite(opts)
	if parallel != 0 {
		// Warm the suite's run caches through the worker pool; the
		// generators below then emit in their usual serial order, so the
		// output is byte-identical to a serial sweep no matter in which
		// order the workloads finish.
		fn, tm := runsNeeded(artifact)
		if err := suite.Warm(context.Background(), parallel, fn, tm); err != nil {
			return fmt.Errorf("warm: %w", err)
		}
	}
	return run(suite, artifact)
}

// runsNeeded reports which engines an artifact draws on, so -parallel warms
// neither more nor less than the serial sweep would execute.
func runsNeeded(artifact string) (functional, timing bool) {
	fnArtifacts := map[string]bool{
		"table1": true, "fig1": true, "fig2": true, "fig9": true,
		"fig10": true, "fig11": true, "fig12": true,
		// table3 resolves its column order through Table I.
		"table3": true,
	}
	tmArtifacts := map[string]bool{
		"fig3": true, "fig4": true, "fig5": true, "fig6": true,
		"fig7": true, "fig8": true, "table3": true,
	}
	if artifact == "all" {
		return true, true
	}
	return fnArtifacts[artifact], tmArtifacts[artifact]
}

func run(s *experiments.Suite, artifact string) error {
	type gen struct {
		name string
		fn   func(*experiments.Suite) error
	}
	gens := []gen{
		{"table1", table1}, {"fig1", fig1}, {"fig2", fig2}, {"fig3", fig3},
		{"fig4", fig4}, {"fig5", fig5}, {"fig6", fig6}, {"fig7", fig7},
		{"fig8", fig8}, {"fig9", fig9}, {"fig10", fig10}, {"fig11", fig11},
		{"fig12", fig12}, {"table3", table3}, {"ablation", ablation},
	}
	found := false
	for _, g := range gens {
		if artifact == "all" || artifact == g.name {
			found = true
			if err := g.fn(s); err != nil {
				return fmt.Errorf("%s: %w", g.name, err)
			}
		}
	}
	if !found {
		return fmt.Errorf("unknown artifact %q", artifact)
	}
	return nil
}

func table1(s *experiments.Suite) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	t := report.New("Table I — application characteristics",
		"name", "category", "data set", "CTAs", "threads/CTA",
		"warp insts", "global loads", "load fraction")
	for _, r := range rows {
		t.Add(r.Name, r.Category, r.DataSet, r.CTAs, r.ThreadsPerCTA,
			r.TotalInsts, r.GlobalLoads, report.Pct(r.LoadFraction))
	}
	emit(t)
	return nil
}

func fig1(s *experiments.Suite) error {
	rows, err := s.Figure1()
	if err != nil {
		return err
	}
	t := report.New("Figure 1 — deterministic / non-deterministic load distribution",
		"name", "category", "deterministic", "non-deterministic")
	for _, r := range rows {
		t.Add(r.Name, r.Category, report.Pct(r.Det), report.Pct(r.NonDet))
	}
	emit(t)
	return nil
}

func fig2(s *experiments.Suite) error {
	rows, err := s.Figure2()
	if err != nil {
		return err
	}
	t := report.New("Figure 2 — memory requests per warp and per active thread",
		"name", "req/warp (N)", "req/warp (D)", "req/thread (N)", "req/thread (D)")
	for _, r := range rows {
		t.Add(r.Name, r.ReqPerWarp[stats.NonDet], r.ReqPerWarp[stats.Det],
			r.ReqPerThread[stats.NonDet], r.ReqPerThread[stats.Det])
	}
	emit(t)
	return nil
}

func fig3(s *experiments.Suite) error {
	rows, err := s.Figure3()
	if err != nil {
		return err
	}
	t := report.New("Figure 3 — breakdown of L1 data cache cycles",
		"name", "hit", "hit-reserved", "miss", "rsrv-fail tags", "rsrv-fail MSHRs", "rsrv-fail icnt")
	for _, r := range rows {
		t.Add(r.Name,
			report.Pct(r.Fractions[cache.Hit]), report.Pct(r.Fractions[cache.HitReserved]),
			report.Pct(r.Fractions[cache.Miss]), report.Pct(r.Fractions[cache.RsrvFailTag]),
			report.Pct(r.Fractions[cache.RsrvFailMSHR]), report.Pct(r.Fractions[cache.RsrvFailICNT]))
	}
	emit(t)
	return nil
}

func fig4(s *experiments.Suite) error {
	rows, err := s.Figure4()
	if err != nil {
		return err
	}
	t := report.New("Figure 4 — fraction of idle cycles per function unit",
		"name", "SP idle", "SFU idle", "LD/ST idle")
	for _, r := range rows {
		t.Add(r.Name, report.Pct(r.Idle[isa.UnitSP]), report.Pct(r.Idle[isa.UnitSFU]),
			report.Pct(r.Idle[isa.UnitLDST]))
	}
	emit(t)
	return nil
}

func fig5(s *experiments.Suite) error {
	rows, err := s.Figure5()
	if err != nil {
		return err
	}
	t := report.New("Figure 5 — load turnaround decomposition (mean cycles)",
		"name", "cat", "unloaded", "rsrv prev warps", "rsrv current", "L2/DRAM waste", "total")
	for _, r := range rows {
		for c := stats.Category(0); c < stats.NumCats; c++ {
			if r.Ops[c] == 0 {
				continue
			}
			t.Add(r.Name, c, r.Unloaded[c], r.RsrvPrev[c], r.RsrvCurr[c], r.MemSys[c], r.Total[c])
		}
	}
	emit(t)
	return nil
}

func fig6(s *experiments.Suite) error {
	series, err := s.Figure6()
	if err != nil {
		return err
	}
	t := report.New("Figure 6 — turnaround vs generated requests (busiest loads)",
		"workload", "PC", "class", "requests", "mean turnaround", "ops")
	for _, sr := range series {
		cls := "D"
		if sr.NonDet {
			cls = "N"
		}
		for _, p := range sr.Points {
			t.Add(sr.Workload, fmt.Sprintf("0x%03x", sr.PC), cls, p.NReq, p.MeanTurnaround, p.Ops)
		}
	}
	emit(t)
	return nil
}

func fig7(s *experiments.Suite) error {
	res, err := s.Figure7()
	if err != nil {
		return err
	}
	t := report.New(
		fmt.Sprintf("Figure 7 — gap breakdown for %s PC 0x%03x (non-deterministic)", res.Workload, res.PC),
		"requests", "common latency", "gap at L1D", "gap at icnt-L2", "gap at L2-icnt", "total", "ops")
	for _, b := range res.Buckets {
		t.Add(b.NReq, b.Common, b.GapL1D, b.GapIcntL2, b.GapL2Icnt, b.Total, b.Ops)
	}
	emit(t)
	return nil
}

func fig8(s *experiments.Suite) error {
	rows, err := s.Figure8()
	if err != nil {
		return err
	}
	t := report.New("Figure 8 — L1 and L2 miss ratios per category",
		"name", "L1 miss (N)", "L1 miss (D)", "L2 miss (N)", "L2 miss (D)")
	for _, r := range rows {
		t.Add(r.Name,
			report.Pct(r.L1Miss[stats.NonDet]), report.Pct(r.L1Miss[stats.Det]),
			report.Pct(r.L2Miss[stats.NonDet]), report.Pct(r.L2Miss[stats.Det]))
	}
	emit(t)
	return nil
}

func fig9(s *experiments.Suite) error {
	rows, err := s.Figure9()
	if err != nil {
		return err
	}
	t := report.New("Figure 9 — shared memory loads per global memory load",
		"name", "category", "shared/global", "shared loads", "global loads")
	for _, r := range rows {
		t.Add(r.Name, r.Category, r.SharedPerGlobal, r.SharedLoads, r.GlobalLoads)
	}
	emit(t)
	return nil
}

func fig10(s *experiments.Suite) error {
	rows, err := s.Figure10()
	if err != nil {
		return err
	}
	t := report.New("Figure 10 — cold miss ratio and accesses per 128B block",
		"name", "category", "cold miss ratio", "accesses/block", "distinct blocks")
	for _, r := range rows {
		t.Add(r.Name, r.Category, report.Pct(r.ColdMissRatio), r.AccessPerBlock, r.DistinctBlocks)
	}
	emit(t)
	return nil
}

func fig11(s *experiments.Suite) error {
	rows, err := s.Figure11()
	if err != nil {
		return err
	}
	t := report.New("Figure 11 — data space accessed by multiple CTAs",
		"name", "shared-block ratio", "shared-access ratio", "mean CTAs/shared block")
	for _, r := range rows {
		t.Add(r.Name, report.Pct(r.SharedBlockRatio), report.Pct(r.SharedAccessRatio), r.MeanCTAsPerShared)
	}
	emit(t)
	return nil
}

func fig12(s *experiments.Suite) error {
	rows, err := s.Figure12()
	if err != nil {
		return err
	}
	t := report.New("Figure 12 — CTA distance frequency for shared blocks (top 6 distances)",
		"name", "category", "distance:fraction ...")
	for _, r := range rows {
		bins := r.Bins
		// Report the dominant distances.
		top := bins
		if len(top) > 6 {
			// Bins are distance-sorted; pick the six largest by count.
			top = append([]stats.DistanceBin(nil), bins...)
			for i := 0; i < 6; i++ {
				for j := i + 1; j < len(top); j++ {
					if top[j].Count > top[i].Count {
						top[i], top[j] = top[j], top[i]
					}
				}
			}
			top = top[:6]
		}
		var parts []string
		for _, b := range top {
			parts = append(parts, fmt.Sprintf("%d:%.2f", b.Distance, b.Fraction))
		}
		t.Add(r.Name, r.Category, strings.Join(parts, " "))
	}
	emit(t)
	return nil
}

func table3(s *experiments.Suite) error {
	t := report.New("Table III — profiler counters per workload",
		append([]string{"counter"}, s.Opts.Workloads...)...)
	names := s.Opts.Workloads
	if len(names) == 0 {
		// Full sweep: one column per workload in Table I order.
		rows, err := s.Table1()
		if err != nil {
			return err
		}
		for _, r := range rows {
			names = append(names, r.Name)
		}
		t = report.New("Table III — profiler counters per workload",
			append([]string{"counter"}, names...)...)
	}
	counters := map[string]profiler.Counters{}
	for _, n := range names {
		run, err := s.Timing(n)
		if err != nil {
			return err
		}
		counters[n] = profiler.Read(run.Col)
	}
	for _, c := range profiler.Names() {
		cells := []any{c}
		for _, n := range names {
			cells = append(cells, counters[n][c])
		}
		t.Add(cells...)
	}
	emit(t)
	return nil
}

// The recorded warm-start sweep: sssp has the densest kernel-launch boundary
// sequence of the graph workloads (26 boundaries at this size), so the swept
// late parameter — the measurement-window budget — leaves long shared
// prefixes for checkpoints to collapse. Budget 0 is the complete run.
const (
	warmStartWorkload = "sssp"
	warmStartSize     = 1024
)

var warmStartBudgets = []uint64{28_000, 42_000, 56_000, 0}

// warmstart measures the incremental sweep from an empty store (a shared
// store would make point one warm and the report irreproducible), prints it,
// and optionally records it to, or checks it against, a committed JSON file.
// The ≥50%-skipped acceptance bar is enforced on every regeneration.
func warmstart(outPath, checkPath string, seed int64) error {
	dir, err := os.MkdirTemp("", "critload-warmstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.Open(dir, 0)
	if err != nil {
		return err
	}
	rep, err := experiments.MeasureWarmStart(warmStartWorkload, warmStartSize, seed, warmStartBudgets, store)
	if err != nil {
		return err
	}

	t := report.New(
		fmt.Sprintf("Warm-start sweep — %s size %d, measurement-window budget as the late parameter",
			rep.Workload, rep.Size),
		"max warp insts", "cycles", "warp insts", "resumed at boundary", "cycles inherited", "cycles simulated")
	for _, p := range rep.Points {
		budget := "complete"
		if p.MaxWarpInsts > 0 {
			budget = fmt.Sprint(p.MaxWarpInsts)
		}
		t.Add(budget, p.Cycles, p.WarpInsts, p.WarmStartIndex, p.WarmStartCycles, p.SimulatedCycles)
	}
	emit(t)
	fmt.Printf("warm starts skipped %d of %d simulated cycles (%.1f%%)\n",
		rep.CyclesSkipped, rep.TotalCycles, 100*rep.SkippedFraction)

	if rep.SkippedFraction < 0.5 {
		return fmt.Errorf("warm starts skipped only %.1f%% of simulated cycles, want >= 50%%",
			100*rep.SkippedFraction)
	}
	if checkPath != "" {
		buf, err := os.ReadFile(checkPath)
		if err != nil {
			return fmt.Errorf("reading committed report: %w", err)
		}
		var committed experiments.WarmStartReport
		if err := json.Unmarshal(buf, &committed); err != nil {
			return fmt.Errorf("parsing committed report %s: %w", checkPath, err)
		}
		// Every field is deterministic, so the comparison is exact.
		if !reflect.DeepEqual(&committed, rep) {
			fresh, _ := json.Marshal(rep)
			return fmt.Errorf("regenerated warm-start report differs from %s:\n%s", checkPath, fresh)
		}
		fmt.Printf("warmstart-check: %s reproduced exactly\n", checkPath)
	}
	if outPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func ablation(s *experiments.Suite) error {
	ctaRows, err := experiments.AblationCTAScheduling(s.Opts)
	if err != nil {
		return err
	}
	t := report.New("Section X.B ablation — round-robin vs clustered CTA scheduling",
		"name", "RR cycles", "clustered cycles", "RR L1 hit", "clustered L1 hit")
	for _, r := range ctaRows {
		t.Add(r.Name, r.BaseCycles, r.VariantCycles, report.Pct(r.BaseL1Hit), report.Pct(r.VariantL1Hit))
	}
	emit(t)

	warpRows, err := experiments.AblationWarpScheduler(s.Opts)
	if err != nil {
		return err
	}
	t2 := report.New("Section X.A ablation — LRR vs GTO warp scheduling",
		"name", "LRR cycles", "GTO cycles", "LRR turnaround", "GTO turnaround")
	for _, r := range warpRows {
		t2.Add(r.Name, r.BaseCycles, r.VariantCycles, r.BaseTurnaround, r.VariantTurnaround)
	}
	emit(t2)
	return nil
}
