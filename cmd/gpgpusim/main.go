// Command gpgpusim runs one of the Table I workloads on the cycle-level GPU
// simulator (Tesla C2050 configuration of Table II) and reports the paper's
// per-category statistics plus the Table III profiler counters.
//
// Usage:
//
//	gpgpusim -workload bfs
//	gpgpusim -workload spmv -size 8192 -max-insts 500000
//	gpgpusim -workload 2mm -functional -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"critload/internal/cache"
	"critload/internal/experiments"
	"critload/internal/gpu"
	"critload/internal/isa"
	"critload/internal/profiler"
	"critload/internal/report"
	"critload/internal/sm"
	"critload/internal/stats"
	"critload/internal/trace"
)

func main() {
	workload := flag.String("workload", "", "workload to run (see loadclass -list)")
	size := flag.Int("size", 0, "problem size override (0 = workload default)")
	seed := flag.Int64("seed", 1, "input generation seed")
	maxInsts := flag.Uint64("max-insts", 0, "stop the timing window after this many warp instructions (0 = complete run)")
	functional := flag.Bool("functional", false, "run on the functional emulator instead of the timing model")
	verify := flag.Bool("verify", false, "check results against the CPU reference (complete runs only)")
	ctaPolicy := flag.String("cta-policy", "rr", "CTA scheduler: rr (round-robin) or clustered")
	warpPolicy := flag.String("warp-policy", "lrr", "warp scheduler: lrr or gto")
	tracePath := flag.String("trace", "", "write a per-request CSV trace to this file (timing runs only)")
	flag.Parse()

	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*workload, *size, *seed, *maxInsts, *functional, *verify, *ctaPolicy, *warpPolicy, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "gpgpusim:", err)
		os.Exit(1)
	}
}

func run(name string, size int, seed int64, maxInsts uint64, functional, verify bool, ctaPolicy, warpPolicy, tracePath string) error {
	cfg := gpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000_000
	switch ctaPolicy {
	case "rr":
		cfg.CTAPolicy = gpu.CTARoundRobin
	case "clustered":
		cfg.CTAPolicy = gpu.CTAClustered
	default:
		return fmt.Errorf("unknown CTA policy %q", ctaPolicy)
	}
	switch warpPolicy {
	case "lrr":
		cfg.SM.Policy = sm.LRR
	case "gto":
		cfg.SM.Policy = sm.GTO
	default:
		return fmt.Errorf("unknown warp policy %q", warpPolicy)
	}
	opts := experiments.Options{Size: size, Seed: seed, MaxWarpInsts: maxInsts, GPU: &cfg}
	var tracer *trace.Buffer
	if tracePath != "" {
		if functional {
			return fmt.Errorf("-trace requires a timing run")
		}
		tracer = trace.NewBuffer(1 << 21)
		opts.Tracer = tracer
	}

	var r *experiments.Run
	var err error
	if functional {
		r, err = experiments.RunFunctional(name, opts)
	} else {
		r, err = experiments.RunTiming(name, opts)
	}
	if err != nil {
		return err
	}
	if tracer != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tracer.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace: %d requests written to %s (%d dropped)\n",
			tracer.Len(), tracePath, tracer.Dropped())
	}
	if verify {
		if maxInsts > 0 {
			return fmt.Errorf("-verify requires a complete run (-max-insts 0)")
		}
		if err := r.Instance.Verify(); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Println("verification: OK")
	}
	printRun(name, r, functional)
	return nil
}

func printRun(name string, r *experiments.Run, functional bool) {
	col := r.Col
	fmt.Printf("workload %s (%s): %s\n", name, r.Workload.Category, r.Workload.Description)
	fmt.Printf("  warp instructions: %d  thread instructions: %d\n", col.WarpInsts, col.ThreadInsts)
	if !functional {
		fmt.Printf("  cycles: %d  IPC: %.2f (warp insts/cycle)\n",
			r.Cycles, float64(col.WarpInsts)/float64(max64(r.Cycles, 1)))
	}

	t := report.New("per-category load behaviour", "metric", "deterministic", "non-deterministic")
	t.Add("global load warps", col.GLoadWarps[stats.Det], col.GLoadWarps[stats.NonDet])
	t.Add("memory requests", col.Requests[stats.Det], col.Requests[stats.NonDet])
	t.Add("requests / warp", col.RequestsPerWarp(stats.Det), col.RequestsPerWarp(stats.NonDet))
	t.Add("requests / active thread", col.RequestsPerActiveThread(stats.Det), col.RequestsPerActiveThread(stats.NonDet))
	if !functional {
		t.Add("L1 miss ratio", stats.MissRatio(col.L1Miss[stats.Det], col.L1Acc[stats.Det]),
			stats.MissRatio(col.L1Miss[stats.NonDet], col.L1Acc[stats.NonDet]))
		t.Add("L2 miss ratio", stats.MissRatio(col.L2Miss[stats.Det], col.L2Acc[stats.Det]),
			stats.MissRatio(col.L2Miss[stats.NonDet], col.L2Acc[stats.NonDet]))
		t.Add("mean turnaround (cycles)", col.Turnaround[stats.Det].MeanTotal(), col.Turnaround[stats.NonDet].MeanTotal())
	}
	fmt.Print(t)

	if !functional {
		bd := col.L1CycleBreakdown()
		bt := report.New("L1 cache cycle breakdown", "outcome", "fraction")
		for o := cache.Outcome(0); o < cache.NumOutcomes; o++ {
			bt.Add(o.String(), report.Pct(bd[o]))
		}
		fmt.Print(bt)

		ut := report.New("function unit occupancy", "unit", "idle fraction")
		for u := isa.FuncUnit(0); u < isa.NumFuncUnits; u++ {
			ut.Add(u.String(), report.Pct(col.UnitIdleFraction(u)))
		}
		fmt.Print(ut)
	}

	fmt.Println("profiler counters (Table III):")
	fmt.Print(profiler.Read(col))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
