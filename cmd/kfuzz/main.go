// Command kfuzz runs long offline differential-fuzzing campaigns over
// generated PTX kernels: every seed flows through the five difftest oracles
// (classification, functional, timing, parallel, checkpoint/resume), and any
// divergence is shrunk to a minimal reproducing kernel and written out as a
// replayable case.
//
// Typical uses:
//
//	kfuzz -seeds 100000                 # fixed-size campaign
//	kfuzz -duration 30m                 # time-boxed campaign
//	kfuzz -replay internal/difftest/testdata/regressions
//	kfuzz -emit-corpus 12 -out internal/difftest/testdata/corpus
//	kfuzz -seeds 50 -plant              # validate the pipeline end to end
//
// Exit status is 0 for a clean campaign and 1 when any divergence was found
// (or any replayed case failed).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"critload/internal/difftest"
	"critload/internal/gpu"
	"critload/internal/kgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seeds      = flag.Int64("seeds", 1000, "number of generator seeds to check")
		start      = flag.Int64("start", 1, "first seed of the campaign")
		duration   = flag.Duration("duration", 0, "stop after this wall-clock time (overrides -seeds)")
		out        = flag.String("out", "internal/difftest/testdata/regressions", "directory for shrunk findings / emitted corpus")
		emitCorpus = flag.Int("emit-corpus", 0, "emit this many generated cases to -out and exit")
		replay     = flag.String("replay", "", "replay a saved case (.ptx/.json) or a directory of cases and exit")
		plant      = flag.Bool("plant", false, "inject a known engine-behavior flip (SP latency) to validate the find→shrink pipeline")
		verbose    = flag.Bool("v", false, "log every seed")
	)
	flag.Parse()

	opts := difftest.Options{}
	if *plant {
		opts.GPUB = func() gpu.Config {
			cfg := gpu.DefaultConfig()
			cfg.SM.SPLatency++
			return cfg
		}
	}

	if *emitCorpus > 0 {
		return emit(*start, *emitCorpus, *out)
	}
	if *replay != "" {
		return replayPath(*replay, opts)
	}
	return campaign(*start, *seeds, *duration, *out, opts, *verbose)
}

// emit writes a deterministic corpus of generated cases.
func emit(start int64, n int, out string) int {
	for seed := start; seed < start+int64(n); seed++ {
		c, err := kgen.Build(kgen.Generate(seed, kgen.DefaultConfig()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "kfuzz: seed %d: %v\n", seed, err)
			return 1
		}
		if err := c.Save(out); err != nil {
			fmt.Fprintf(os.Stderr, "kfuzz: save: %v\n", err)
			return 1
		}
		fmt.Printf("emitted %s (%d insts, %d labeled loads)\n", c.Name, len(c.Kernel.Insts), len(c.Want))
	}
	return 0
}

// replayPath re-checks saved cases.
func replayPath(path string, opts difftest.Options) int {
	var files []string
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		matches, err := filepath.Glob(filepath.Join(path, "*.ptx"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "kfuzz: %v\n", err)
			return 1
		}
		files = matches
	} else {
		files = []string{path}
	}
	if len(files) == 0 {
		fmt.Fprintf(os.Stderr, "kfuzz: no cases under %s\n", path)
		return 1
	}
	failed := 0
	for _, f := range files {
		c, err := kgen.LoadCase(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kfuzz: %s: %v\n", f, err)
			failed++
			continue
		}
		rep := difftest.Check(c, opts)
		if rep.Failed() {
			failed++
			fmt.Printf("FAIL %s\n", c.Name)
			for _, d := range rep.Divergences {
				fmt.Printf("  %s\n", d)
			}
		} else {
			fmt.Printf("ok   %s (det=%d nondet=%d)\n", c.Name, rep.Det, rep.NonDet)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// campaign sweeps seeds, shrinking and saving every divergence.
func campaign(start, seeds int64, duration time.Duration, out string, opts difftest.Options, verbose bool) int {
	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
		seeds = 1 << 62
	}
	findings := 0
	lastLog := time.Now()
	var checked int64
	for seed := start; seed < start+seeds; seed++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		checked++
		c, err := kgen.Build(kgen.Generate(seed, kgen.DefaultConfig()))
		if err != nil {
			fmt.Printf("FINDING seed %d: generator failed to build: %v\n", seed, err)
			findings++
			continue
		}
		rep := difftest.Check(c, opts)
		if verbose {
			fmt.Printf("seed %d: %d insts, det=%d nondet=%d, divergences=%d\n",
				seed, len(c.Kernel.Insts), rep.Det, rep.NonDet, len(rep.Divergences))
		}
		if rep.Failed() {
			findings++
			fmt.Printf("FINDING seed %d:\n", seed)
			for _, d := range rep.Divergences {
				fmt.Printf("  %s\n", d)
			}
			saveFinding(seed, c, opts, out)
		}
		if time.Since(lastLog) > 10*time.Second {
			lastLog = time.Now()
			fmt.Printf("... %d seeds checked, %d findings\n", checked, findings)
		}
	}
	fmt.Printf("campaign done: %d seeds checked, %d findings\n", checked, findings)
	if findings > 0 {
		return 1
	}
	return 0
}

// saveFinding shrinks the failing seed to a minimal program and writes the
// case plus a human-readable report next to it.
func saveFinding(seed int64, c *kgen.Case, opts difftest.Options, out string) {
	fails := func(q *kgen.Prog) bool {
		qc, err := kgen.Build(q)
		if err != nil {
			return false
		}
		return difftest.Check(qc, opts).Failed()
	}
	minProg := difftest.Shrink(c.Prog, fails, 0)
	minCase, err := kgen.Build(minProg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kfuzz: shrunk program does not build: %v\n", err)
		minCase = c
	}
	if err := minCase.Save(out); err != nil {
		fmt.Fprintf(os.Stderr, "kfuzz: save finding: %v\n", err)
		return
	}
	rep := difftest.Check(minCase, opts)
	report := fmt.Sprintf("seed %d shrunk from %d to %d ops\n", seed, len(c.Prog.Ops), len(minProg.Ops))
	for _, d := range rep.Divergences {
		report += "  " + d.String() + "\n"
	}
	path := filepath.Join(out, minCase.Name+".report.txt")
	if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "kfuzz: write report: %v\n", err)
	}
	fmt.Printf("  shrunk to %d ops, saved as %s\n", len(minProg.Ops), minCase.Name)
}
