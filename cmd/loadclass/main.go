// Command loadclass classifies the global loads of PTX-subset kernels as
// deterministic or non-deterministic using the paper's backward dataflow
// analysis. It accepts either a source file or the name of one of the
// built-in Table I workloads.
//
// Usage:
//
//	loadclass -file kernel.ptx
//	loadclass -workload bfs
//	loadclass -list
package main

import (
	"flag"
	"fmt"
	"os"

	"critload/internal/dataflow"
	_ "critload/internal/families" // register family: workload names
	"critload/internal/ptx"
	"critload/internal/report"
	"critload/internal/workloads"
)

func main() {
	file := flag.String("file", "", "PTX-subset source file to classify")
	workload := flag.String("workload", "", "built-in workload whose kernels to classify")
	list := flag.Bool("list", false, "list built-in workloads")
	verbose := flag.Bool("v", false, "print address roots for every load")
	flag.Parse()

	if err := run(*file, *workload, *list, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "loadclass:", err)
		os.Exit(1)
	}
}

func run(file, workload string, list, verbose bool) error {
	switch {
	case list:
		t := report.New("Built-in workloads", "name", "category", "description")
		for _, w := range workloads.All() {
			t.Add(w.Name, w.Category, w.Description)
		}
		fmt.Print(t)
		return nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		prog, err := ptx.Parse(string(src))
		if err != nil {
			return err
		}
		return classifyProgram(prog, verbose)
	case workload != "":
		w, ok := workloads.Get(workload)
		if !ok {
			return fmt.Errorf("unknown workload %q (try -list)", workload)
		}
		inst, err := w.Setup(workloads.Params{})
		if err != nil {
			return err
		}
		return classifyProgram(inst.Prog, verbose)
	default:
		flag.Usage()
		return fmt.Errorf("one of -file, -workload or -list is required")
	}
}

func classifyProgram(prog *ptx.Program, verbose bool) error {
	for _, k := range prog.Kernels {
		res := dataflow.Classify(k)
		det, nondet := res.Counts()
		fmt.Printf("kernel %s: %d global loads (%d deterministic, %d non-deterministic)\n",
			k.Name, len(res.Loads), det, nondet)
		for _, l := range res.Loads {
			fmt.Printf("  PC 0x%03x  %-17s  %s\n", l.PC, l.Class, k.Insts[l.InstIndex])
			if verbose {
				for _, r := range l.Roots {
					if r.Name != "" {
						fmt.Printf("      root: %s (%s)\n", r.Kind, r.Name)
					} else {
						fmt.Printf("      root: %s\n", r.Kind)
					}
				}
			}
		}
	}
	return nil
}
