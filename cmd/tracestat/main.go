// Command tracestat summarizes a per-request CSV trace produced by
// `gpgpusim -trace`: per-PC request counts and latencies (the offline view
// behind Figures 6 and 7), per-category aggregates, and the service-level
// mix.
//
// Usage:
//
//	gpgpusim -workload bfs -trace bfs.csv
//	tracestat bfs.csv
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"critload/internal/report"
)

type row struct {
	kernel   string
	pc       uint32
	nonDet   bool
	serviced string
	latency  int64
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracestat <trace.csv>")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	rows, err := parse(f)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("trace is empty")
	}

	perPC(rows)
	perCategory(rows)
	serviceMix(rows)
	return nil
}

// parse reads the CSV emitted by trace.Buffer.WriteCSV.
func parse(f *os.File) ([]row, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows []row
	var cols map[string]int
	for lineNo := 1; sc.Scan(); lineNo++ {
		fields := strings.Split(sc.Text(), ",")
		if lineNo == 1 {
			cols = map[string]int{}
			for i, h := range fields {
				cols[h] = i
			}
			for _, need := range []string{"kernel", "pc", "nondet", "serviced", "latency"} {
				if _, ok := cols[need]; !ok {
					return nil, fmt.Errorf("missing column %q", need)
				}
			}
			continue
		}
		if len(fields) < len(cols) {
			return nil, fmt.Errorf("line %d: %d fields, want %d", lineNo, len(fields), len(cols))
		}
		pc, err := strconv.ParseUint(strings.TrimPrefix(fields[cols["pc"]], "0x"), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad pc: %v", lineNo, err)
		}
		lat, err := strconv.ParseInt(fields[cols["latency"]], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad latency: %v", lineNo, err)
		}
		rows = append(rows, row{
			kernel:   fields[cols["kernel"]],
			pc:       uint32(pc),
			nonDet:   fields[cols["nondet"]] == "1",
			serviced: fields[cols["serviced"]],
			latency:  lat,
		})
	}
	return rows, sc.Err()
}

func perPC(rows []row) {
	type key struct {
		kernel string
		pc     uint32
	}
	type agg struct {
		nonDet   bool
		n        int
		totalLat int64
		maxLat   int64
	}
	m := map[key]*agg{}
	for _, r := range rows {
		k := key{r.kernel, r.pc}
		a := m[k]
		if a == nil {
			a = &agg{nonDet: r.nonDet}
			m[k] = a
		}
		a.n++
		a.totalLat += r.latency
		if r.latency > a.maxLat {
			a.maxLat = r.latency
		}
	}
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m[keys[i]].n > m[keys[j]].n })

	t := report.New("per-PC request profile (by request count)",
		"kernel", "PC", "class", "requests", "mean latency", "max latency")
	for _, k := range keys {
		a := m[k]
		cls := "D"
		if a.nonDet {
			cls = "N"
		}
		t.Add(k.kernel, fmt.Sprintf("0x%03x", k.pc), cls, a.n,
			float64(a.totalLat)/float64(a.n), a.maxLat)
	}
	fmt.Print(t)
}

func perCategory(rows []row) {
	var n [2]int
	var lat [2]int64
	for _, r := range rows {
		i := 0
		if r.nonDet {
			i = 1
		}
		n[i]++
		lat[i] += r.latency
	}
	t := report.New("per-category aggregate", "class", "requests", "mean latency")
	for i, cls := range []string{"deterministic", "non-deterministic"} {
		if n[i] == 0 {
			continue
		}
		t.Add(cls, n[i], float64(lat[i])/float64(n[i]))
	}
	fmt.Print(t)
}

func serviceMix(rows []row) {
	mix := map[string]int{}
	for _, r := range rows {
		mix[r.serviced]++
	}
	levels := make([]string, 0, len(mix))
	for l := range mix {
		levels = append(levels, l)
	}
	sort.Strings(levels)
	t := report.New("service level mix", "level", "requests", "fraction")
	for _, l := range levels {
		t.Add(l, mix[l], report.Pct(float64(mix[l])/float64(len(rows))))
	}
	fmt.Print(t)
}
