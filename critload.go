// Package critload is the public entry point of the reproduction of
// "Revealing Critical Loads and Hidden Data Locality in GPGPU Applications"
// (Koo, Jeon, Annavaram — IISWC 2015).
//
// It exposes three capabilities:
//
//   - Load classification: parse a PTX-subset kernel and label every global
//     load deterministic or non-deterministic by backward dataflow analysis
//     (the paper's core contribution). See Classify.
//
//   - Simulation: run any of the fifteen Table I workloads on the functional
//     emulator or on the cycle-level GPU timing model with the Tesla C2050
//     configuration of Table II. See RunWorkload.
//
//   - Experiments: regenerate every table and figure of the paper's
//     evaluation. See NewSuite and the experiments package's generators.
package critload

import (
	"fmt"

	"critload/internal/dataflow"
	"critload/internal/emu"
	"critload/internal/experiments"
	"critload/internal/gpu"
	"critload/internal/mem"
	"critload/internal/profiler"
	"critload/internal/ptx"
	"critload/internal/sm"
	"critload/internal/stats"
	"critload/internal/workloads"
)

// Re-exported classification types.
type (
	// Class is the paper's two-way load classification.
	Class = dataflow.Class
	// LoadInfo is one global load's classification with its address roots.
	LoadInfo = dataflow.LoadInfo
	// ClassificationResult holds the classification of one kernel.
	ClassificationResult = dataflow.Result
)

// Classification outcomes.
const (
	Deterministic    = dataflow.Deterministic
	NonDeterministic = dataflow.NonDeterministic
)

// Re-exported experiment types.
type (
	// ExperimentOptions configures experiment sweeps.
	ExperimentOptions = experiments.Options
	// Suite caches one run per workload across table/figure generators.
	Suite = experiments.Suite
	// Run bundles one workload execution's statistics.
	Run = experiments.Run
	// Collector is the statistics collector underlying every figure.
	Collector = stats.Collector
	// GPUConfig is the timing simulator's device configuration.
	GPUConfig = gpu.Config
	// ProfilerCounters are the Table III hardware-profiler counters.
	ProfilerCounters = profiler.Counters
)

// DefaultGPUConfig returns the Table II (Tesla C2050) configuration.
func DefaultGPUConfig() GPUConfig { return gpu.DefaultConfig() }

// NewSuite builds an experiment suite; see the experiments package for the
// per-table and per-figure generators available on it.
func NewSuite(opts ExperimentOptions) *Suite { return experiments.NewSuite(opts) }

// Classify parses PTX-subset source and classifies every global load of
// every kernel in it.
func Classify(src string) (map[string]*ClassificationResult, error) {
	prog, err := ptx.Parse(src)
	if err != nil {
		return nil, err
	}
	return dataflow.ClassifyProgram(prog), nil
}

// ClassifyKernel parses source containing a single kernel and classifies it.
func ClassifyKernel(src string) (*ClassificationResult, error) {
	prog, err := ptx.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Kernels) != 1 {
		return nil, fmt.Errorf("critload: source has %d kernels, want 1", len(prog.Kernels))
	}
	return dataflow.Classify(prog.Kernels[0]), nil
}

// Workloads returns the fifteen benchmark names in Table I order.
func Workloads() []string { return workloads.Names() }

// ClassifyWorkload classifies every kernel of a built-in workload.
func ClassifyWorkload(name string) (map[string]*ClassificationResult, error) {
	w, ok := workloads.Get(name)
	if !ok {
		return nil, fmt.Errorf("critload: unknown workload %q", name)
	}
	inst, err := w.Setup(workloads.Params{})
	if err != nil {
		return nil, err
	}
	return dataflow.ClassifyProgram(inst.Prog), nil
}

// WorkloadInfo describes one registered benchmark.
type WorkloadInfo struct {
	Name        string
	Category    string
	Description string
	DataSet     string
}

// WorkloadCatalog returns metadata for every registered benchmark.
func WorkloadCatalog() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workloads.All() {
		out = append(out, WorkloadInfo{
			Name:        w.Name,
			Category:    w.Category.String(),
			Description: w.Description,
			DataSet:     w.DataSet,
		})
	}
	return out
}

// RunMode selects the execution engine for RunWorkload.
type RunMode int

// Run modes.
const (
	// Functional runs on the emulator only: fast, exact results, no timing.
	Functional RunMode = iota
	// Timing runs on the cycle-level GPU model (Table II configuration).
	Timing
)

// RunOptions configures RunWorkload.
type RunOptions struct {
	Mode RunMode
	// Size overrides the workload's default problem size (0 = default).
	Size int
	Seed int64
	// MaxWarpInsts bounds timing runs like the paper's simulation window
	// (0 = run to completion).
	MaxWarpInsts uint64
	// GPU overrides the timing configuration (nil = Table II defaults).
	GPU *GPUConfig
	// Verify checks device results against the CPU reference after the run
	// (functional mode only: truncated timing runs leave partial state).
	Verify bool
}

// RunWorkload executes one of the Table I benchmarks and returns its
// statistics.
func RunWorkload(name string, opts RunOptions) (*Run, error) {
	eopts := experiments.Options{
		Size: opts.Size, Seed: opts.Seed,
		MaxWarpInsts: opts.MaxWarpInsts, GPU: opts.GPU,
	}
	var run *Run
	var err error
	if opts.Mode == Timing {
		run, err = experiments.RunTiming(name, eopts)
	} else {
		run, err = experiments.RunFunctional(name, eopts)
	}
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		if opts.Mode == Timing && opts.MaxWarpInsts > 0 {
			return nil, fmt.Errorf("critload: cannot verify a truncated timing run")
		}
		if err := run.Instance.Verify(); err != nil {
			return nil, fmt.Errorf("critload: %s verification failed: %w", name, err)
		}
	}
	return run, nil
}

// ReadProfiler extracts the Table III profiler counters from a run.
func ReadProfiler(r *Run) ProfilerCounters { return profiler.Read(r.Col) }

// Memory is the simulated global-memory space used to stage kernel inputs.
type Memory = mem.Memory

// Simulate assembles the given PTX-subset source and launches the single
// kernel it contains on the timing simulator (Table II configuration). The
// setup callback allocates and initializes device buffers and returns the
// kernel parameter words (typically the buffer base addresses). It returns
// the device memory (for reading results) and the collected statistics.
func Simulate(src string, gridX, blockX int, setup func(m *Memory) []uint32) (*Memory, *Collector, error) {
	prog, err := ptx.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if len(prog.Kernels) != 1 {
		return nil, nil, fmt.Errorf("critload: source has %d kernels, want 1", len(prog.Kernels))
	}
	col := stats.New()
	cfg := gpu.DefaultConfig()
	cfg.MaxCycles = 200_000_000
	g, err := gpu.New(cfg, nil, col)
	if err != nil {
		return nil, nil, err
	}
	var params []uint32
	if setup != nil {
		params = setup(g.Mem)
	}
	l := &emu.Launch{
		Kernel: prog.Kernels[0],
		Grid:   emu.Dim1(gridX),
		Block:  emu.Dim1(blockX),
		Params: params,
	}
	if err := g.LaunchKernel(l); err != nil {
		return nil, nil, err
	}
	return g.Mem, col, nil
}

// SMDefaultConfig returns the per-SM configuration of Table II, exposed for
// ablations that vary scheduler policy or cache geometry.
func SMDefaultConfig() sm.Config { return sm.DefaultConfig() }
