package critload_test

import (
	"strings"
	"testing"

	"critload"
)

const exampleSrc = `
.kernel gather
.param .u32 idx
.param .u32 b
.param .u32 out
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    shl.u32      %r3, %r2, 2;
    ld.param.u32 %r4, [idx];
    add.u32      %r5, %r4, %r3;
    ld.global.u32 %r6, [%r5];
    ld.param.u32 %r7, [b];
    shl.u32      %r8, %r6, 2;
    add.u32      %r9, %r7, %r8;
    ld.global.u32 %r10, [%r9];
    ld.param.u32 %r11, [out];
    add.u32      %r12, %r11, %r3;
    st.global.u32 [%r12], %r10;
    exit;
`

func TestClassifyKernelFacade(t *testing.T) {
	res, err := critload.ClassifyKernel(exampleSrc)
	if err != nil {
		t.Fatalf("ClassifyKernel: %v", err)
	}
	det, nondet := res.Counts()
	if det != 1 || nondet != 1 {
		t.Errorf("counts = %d/%d, want 1/1", det, nondet)
	}
	if res.Loads[0].Class != critload.Deterministic ||
		res.Loads[1].Class != critload.NonDeterministic {
		t.Errorf("classes = %v/%v", res.Loads[0].Class, res.Loads[1].Class)
	}
}

func TestClassifyRejectsBadSource(t *testing.T) {
	if _, err := critload.ClassifyKernel("not ptx"); err == nil {
		t.Errorf("garbage accepted")
	}
	if _, err := critload.ClassifyKernel(".kernel a\nexit;\n.kernel b\nexit;"); err == nil ||
		!strings.Contains(err.Error(), "want 1") {
		t.Errorf("multi-kernel source accepted: %v", err)
	}
}

func TestWorkloadCatalog(t *testing.T) {
	names := critload.Workloads()
	if len(names) != 15 {
		t.Fatalf("workloads = %d, want 15", len(names))
	}
	cat := critload.WorkloadCatalog()
	if len(cat) != 15 {
		t.Fatalf("catalog = %d", len(cat))
	}
	counts := map[string]int{}
	for _, w := range cat {
		counts[w.Category]++
		if w.Description == "" || w.DataSet == "" {
			t.Errorf("%s: incomplete metadata", w.Name)
		}
	}
	if counts["linear"] != 5 || counts["image"] != 5 || counts["graph"] != 5 {
		t.Errorf("category counts = %v", counts)
	}
}

func TestClassifyWorkload(t *testing.T) {
	res, err := critload.ClassifyWorkload("bfs")
	if err != nil {
		t.Fatalf("ClassifyWorkload: %v", err)
	}
	k1, ok := res["bfs_k1"]
	if !ok {
		t.Fatalf("bfs_k1 missing: %v", res)
	}
	_, nondet := k1.Counts()
	if nondet != 2 {
		t.Errorf("bfs_k1 non-det loads = %d, want 2 (edges, visited)", nondet)
	}
	if _, err := critload.ClassifyWorkload("nope"); err == nil {
		t.Errorf("unknown workload accepted")
	}
}

func TestRunWorkloadFunctionalWithVerify(t *testing.T) {
	run, err := critload.RunWorkload("spmv", critload.RunOptions{
		Mode: critload.Functional, Size: 1024, Seed: 3, Verify: true,
	})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if run.Col.WarpInsts == 0 {
		t.Errorf("no instructions recorded")
	}
}

func TestRunWorkloadTimingProfiler(t *testing.T) {
	run, err := critload.RunWorkload("spmv", critload.RunOptions{
		Mode: critload.Timing, Size: 2048, Seed: 3,
	})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if run.Cycles == 0 {
		t.Errorf("no cycles recorded")
	}
	c := critload.ReadProfiler(run)
	if c["gld_request"] == 0 {
		t.Errorf("profiler counters empty: %v", c)
	}
}

func TestRunWorkloadRejectsVerifyOnTruncatedTiming(t *testing.T) {
	_, err := critload.RunWorkload("spmv", critload.RunOptions{
		Mode: critload.Timing, Size: 2048, MaxWarpInsts: 100, Verify: true,
	})
	if err == nil {
		t.Errorf("truncated verify accepted")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	const n = 512
	var outBase uint32
	memory, col, err := critload.Simulate(exampleSrc, n/64, 64, func(m *critload.Memory) []uint32 {
		idx := make([]uint32, n)
		b := make([]uint32, n)
		for i := range idx {
			idx[i] = uint32((i + 1) % n)
			b[i] = uint32(2 * i)
		}
		idxB := m.AllocU32s(idx)
		bB := m.AllocU32s(b)
		outBase = m.Alloc(4 * n)
		return []uint32{idxB, bB, outBase}
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	// out[i] = b[(i+1)%n] = 2*((i+1)%n)
	for i := 0; i < n; i++ {
		want := uint32(2 * ((i + 1) % n))
		if got := memory.Read32(outBase + uint32(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	if col.GLoadWarps[0] == 0 || col.GLoadWarps[1] == 0 {
		t.Errorf("category counts missing: %v", col.GLoadWarps)
	}
}

func TestDefaultGPUConfigMatchesTableII(t *testing.T) {
	cfg := critload.DefaultGPUConfig()
	if cfg.NumSMs != 14 {
		t.Errorf("NumSMs = %d, want 14", cfg.NumSMs)
	}
	if cfg.SM.L1.Bytes != 16*1024 || cfg.SM.L1.MSHREntries != 64 {
		t.Errorf("L1 config = %+v", cfg.SM.L1)
	}
	if cfg.L2.HitLatency != 120 {
		t.Errorf("ROP latency = %d, want 120", cfg.L2.HitLatency)
	}
	if cfg.DRAM.AccessLatency != 100 {
		t.Errorf("DRAM latency = %d, want 100", cfg.DRAM.AccessLatency)
	}
	if total := cfg.L2.Bytes * cfg.NumPartitions; total != 768*1024 {
		t.Errorf("total L2 = %d, want 768 KiB", total)
	}
	smCfg := critload.SMDefaultConfig()
	if smCfg.SharedMemBytes != 48*1024 {
		t.Errorf("shared memory = %d, want 48 KiB", smCfg.SharedMemBytes)
	}
}
