// Criticalloads walks through the paper's central claim — non-deterministic
// loads are the critical loads — on bfs: it decomposes load turnaround times
// (Fig 5), plots turnaround against the number of generated requests for the
// busiest load PCs (Fig 6), and breaks the growth down into the paper's gap
// components (Fig 7).
package main

import (
	"fmt"
	"log"

	"critload"
	"critload/internal/experiments"
	"critload/internal/stats"
)

func main() {
	suite := critload.NewSuite(experiments.Options{
		Workloads: []string{"bfs"}, Size: 8192, Seed: 21,
	})

	fig5, err := suite.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	r := fig5[0]
	fmt.Println("=== Fig 5: turnaround decomposition (mean cycles per load warp) ===")
	for _, cat := range []stats.Category{stats.NonDet, stats.Det} {
		label := "deterministic    "
		if cat == stats.NonDet {
			label = "non-deterministic"
		}
		fmt.Printf("%s: unloaded %5.0f | prev-warp rsrv fails %5.0f | own rsrv fails %5.0f | L2/DRAM waste %5.0f | total %5.0f\n",
			label, r.Unloaded[cat], r.RsrvPrev[cat], r.RsrvCurr[cat], r.MemSys[cat], r.Total[cat])
	}

	fig6, err := suite.Figure6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig 6: turnaround vs generated requests (busiest bfs loads) ===")
	for _, s := range fig6 {
		cls := "D"
		if s.NonDet {
			cls = "N"
		}
		fmt.Printf("PC 0x%03x (%s):", s.PC, cls)
		for _, p := range s.Points {
			if p.Ops < 4 {
				continue // skip noisy buckets
			}
			fmt.Printf("  %dreq→%.0fcyc", p.NReq, p.MeanTurnaround)
		}
		fmt.Println()
	}

	fig7, err := suite.Figure7()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Fig 7: gap breakdown for the hottest non-deterministic load (PC 0x%03x) ===\n", fig7.PC)
	fmt.Println("requests | common | gap@L1D | gap@icnt-L2 | gap@L2-icnt")
	for _, b := range fig7.Buckets {
		if b.Ops < 4 {
			continue
		}
		fmt.Printf("%8d | %6.0f | %7.0f | %11.0f | %11.0f\n",
			b.NReq, b.Common, b.GapL1D, b.GapIcntL2, b.GapL2Icnt)
	}
	fmt.Println("\nThe deterministic load stays flat; the non-deterministic load's")
	fmt.Println("turnaround grows with its request count — the paper's critical loads.")
}
