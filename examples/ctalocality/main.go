// Ctalocality reproduces the paper's "hidden data locality" story (Sections
// IX and X.B): it measures inter-CTA sharing of 128-byte blocks and CTA
// distance histograms for a dense and a graph workload, then runs the
// round-robin vs clustered CTA-scheduler ablation the paper proposes.
package main

import (
	"fmt"
	"log"

	"critload"
	"critload/internal/experiments"
)

func main() {
	for _, name := range []string{"2mm", "bfs"} {
		analyze(name)
		fmt.Println()
	}
	ablation()
}

func analyze(name string) {
	fmt.Printf("=== inter-CTA locality: %s ===\n", name)
	size := 0
	if name == "2mm" {
		size = 96 // keep the dense run short; locality shape is size-invariant
	} else {
		size = 8192
	}
	run, err := critload.RunWorkload(name, critload.RunOptions{
		Mode: critload.Functional, Size: size, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	b := run.Col.Blocks()
	fmt.Printf("distinct 128B blocks:        %d\n", b.DistinctBlocks)
	fmt.Printf("cold miss ratio:             %.1f%%   (Fig 10: low — data is reused)\n", 100*b.ColdMissRatio)
	fmt.Printf("mean accesses per block:     %.1f\n", b.MeanAccessPerBlock)
	fmt.Printf("blocks shared by >=2 CTAs:   %.1f%% of blocks, %.1f%% of accesses (Fig 11)\n",
		100*b.SharedBlockRatio, 100*b.SharedAccessRatio)
	fmt.Printf("mean CTAs per shared block:  %.1f\n", b.MeanCTAsPerShared)

	fmt.Println("CTA distance histogram (Fig 12, top 5):")
	bins := run.Col.CTADistanceHistogram()
	// Pick the five most frequent distances.
	for i := 0; i < 5 && i < len(bins); i++ {
		best := i
		for j := i + 1; j < len(bins); j++ {
			if bins[j].Count > bins[best].Count {
				best = j
			}
		}
		bins[i], bins[best] = bins[best], bins[i]
		fmt.Printf("  distance %4d: %.1f%% of cross-CTA accesses\n",
			bins[i].Distance, 100*bins[i].Fraction)
	}
}

func ablation() {
	fmt.Println("=== Section X.B ablation: CTA scheduling ===")
	rows, err := experiments.AblationCTAScheduling(experiments.Options{
		Workloads: []string{"2mm", "bfs"},
		Size:      0, Seed: 11, MaxWarpInsts: 300_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%-5s round-robin: %8d cycles, L1 hit %.1f%%   clustered: %8d cycles, L1 hit %.1f%%\n",
			r.Name, r.BaseCycles, 100*r.BaseL1Hit, r.VariantCycles, 100*r.VariantL1Hit)
	}
	fmt.Println("(clustered scheduling places neighbouring CTAs on the same SM so the")
	fmt.Println(" inter-CTA sharing at distance 1 turns into private-L1 hits)")
}
