// Graphexplorer runs the two frontier-based graph workloads the paper leans
// on (bfs — the paper's Code 1 — and sssp) end to end: functional runs with
// result verification, the dataflow classification of every kernel, and a
// timing run showing the deterministic / non-deterministic behaviour split.
package main

import (
	"fmt"
	"log"

	"critload"
)

func main() {
	for _, name := range []string{"bfs", "sssp"} {
		explore(name)
		fmt.Println()
	}
}

func explore(name string) {
	fmt.Printf("=== %s ===\n", name)

	// Functional run with CPU-reference verification: the simulator computes
	// real distances, not a synthetic trace.
	fn, err := critload.RunWorkload(name, critload.RunOptions{
		Mode: critload.Functional, Size: 8192, Seed: 42, Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional: %d warp instructions, results verified against CPU reference\n",
		fn.Col.WarpInsts)

	// Static classification of every kernel in the workload.
	classes, err := critload.ClassifyWorkload(name)
	if err != nil {
		log.Fatal(err)
	}
	for kernel, res := range classes {
		d, n := res.Counts()
		fmt.Printf("kernel %-12s: %d deterministic, %d non-deterministic load PCs\n", kernel, d, n)
	}

	det, nondet := fn.Col.GLoadWarps[0], fn.Col.GLoadWarps[1]
	total := det + nondet
	fmt.Printf("dynamic load split: %.1f%% deterministic, %.1f%% non-deterministic\n",
		100*float64(det)/float64(total), 100*float64(nondet)/float64(total))

	// Timing run: the paper's Figures 2 and 5 in miniature.
	tm, err := critload.RunWorkload(name, critload.RunOptions{
		Mode: critload.Timing, Size: 8192, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing: %d cycles on 14 SMs (Table II configuration)\n", tm.Cycles)
	fmt.Printf("  requests/warp:   D %.2f   N %.2f\n",
		tm.Col.RequestsPerWarp(0), tm.Col.RequestsPerWarp(1))
	fmt.Printf("  mean turnaround: D %.0f    N %.0f cycles\n",
		tm.Col.Turnaround[0].MeanTotal(), tm.Col.Turnaround[1].MeanTotal())
	fmt.Printf("  L1 miss ratio:   D %.2f   N %.2f\n",
		missRatio(tm.Col.L1Miss[0], tm.Col.L1Acc[0]),
		missRatio(tm.Col.L1Miss[1], tm.Col.L1Acc[1]))

	counters := critload.ReadProfiler(tm)
	fmt.Printf("  profiler: gld_request=%d l1_global_load_miss=%d\n",
		counters["gld_request"], counters["l1_global_load_miss"])
}

func missRatio(miss, acc uint64) float64 {
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}
