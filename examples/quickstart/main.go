// Quickstart: write a small kernel in the PTX-subset assembly, classify its
// loads with the paper's backward dataflow analysis, run it on the timing
// simulator, and read back both the computed results and the per-category
// memory statistics.
package main

import (
	"fmt"
	"log"

	"critload"
)

// gatherSrc reads idx[i] with a deterministic (thread-indexed) load and
// b[idx[i]] with a non-deterministic (data-dependent) one — the minimal
// example of the paper's two load classes.
const gatherSrc = `
.kernel gather
.param .u32 idx
.param .u32 b
.param .u32 out
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // i
    shl.u32      %r3, %r2, 2;
    ld.param.u32 %r4, [idx];
    add.u32      %r5, %r4, %r3;
    ld.global.u32 %r6, [%r5];             // idx[i]   — deterministic
    ld.param.u32 %r7, [b];
    shl.u32      %r8, %r6, 2;
    add.u32      %r9, %r7, %r8;
    ld.global.u32 %r10, [%r9];            // b[idx[i]] — non-deterministic
    ld.param.u32 %r11, [out];
    add.u32      %r12, %r11, %r3;
    st.global.u32 [%r12], %r10;
    exit;
`

func main() {
	// 1. Classify the kernel's loads.
	res, err := critload.ClassifyKernel(gatherSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("load classification (backward dataflow analysis):")
	for _, l := range res.Loads {
		fmt.Printf("  PC 0x%03x: %s\n", l.PC, l.Class)
	}

	// 2. Run it on the cycle-level simulator (Tesla C2050 configuration).
	const n = 4096
	var outBase uint32
	memory, col, err := critload.Simulate(gatherSrc, n/256, 256, func(m *critload.Memory) []uint32 {
		idx := make([]uint32, n)
		b := make([]uint32, n)
		for i := range idx {
			idx[i] = uint32((i * 769) % n) // scattered gather pattern
			b[i] = uint32(3 * i)
		}
		idxB := m.AllocU32s(idx)
		bB := m.AllocU32s(b)
		outBase = m.Alloc(4 * n)
		return []uint32{idxB, bB, outBase}
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The values are functionally exact...
	fmt.Printf("\nout[0..3] = %v (values computed by the emulator)\n",
		memory.ReadU32s(outBase, 4))

	// 4. ...and the statistics show the paper's disparity: the scattered
	// non-deterministic gather generates far more memory requests per warp
	// than the unit-stride deterministic load.
	fmt.Printf("\nrequests per warp:  deterministic %.2f   non-deterministic %.2f\n",
		col.RequestsPerWarp(0), col.RequestsPerWarp(1))
	fmt.Printf("mean turnaround:    deterministic %.0f cyc  non-deterministic %.0f cyc\n",
		col.Turnaround[0].MeanTotal(), col.Turnaround[1].MeanTotal())
}
