// Example service is a minimal critloadd client. By default it starts an
// in-process service on an ephemeral port (so the example is self-contained);
// point -addr at a running daemon to use it instead:
//
//	go run ./examples/service
//	go run ./cmd/critloadd &  &&  go run ./examples/service -addr localhost:8321
//
// It classifies a small kernel, submits the same timing job twice, and shows
// the second submission answered from the content-addressed result cache.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"critload/internal/jobs"
	"critload/internal/server"
)

const kernel = `
.kernel lin
.param .u32 a
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [a];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    exit;
`

func main() {
	addr := flag.String("addr", "", "address of a running critloadd (empty = start in-process)")
	flag.Parse()
	if err := run(*addr); err != nil {
		log.Fatal(err)
	}
}

func run(addr string) error {
	if addr == "" {
		// Self-contained mode: serve the API in-process.
		mgr, err := jobs.NewManager(jobs.Config{Runner: server.SimRunner()})
		if err != nil {
			return err
		}
		defer mgr.Close(context.Background())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go http.Serve(ln, server.New(mgr))
		addr = ln.Addr().String()
		fmt.Printf("started in-process service on %s\n\n", addr)
	}
	base := "http://" + addr

	// 1. Synchronous classification.
	resp, err := http.Post(base+"/v1/classify", "text/plain", strings.NewReader(kernel))
	if err != nil {
		return err
	}
	var classified server.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&classified); err != nil {
		return err
	}
	resp.Body.Close()
	for _, k := range classified.Kernels {
		fmt.Printf("kernel %s: %d deterministic, %d non-deterministic loads\n",
			k.Name, k.Deterministic, k.NonDeterministic)
	}

	// 2. Submit a timing job, poll to completion, read Table III counters.
	submit := func() (jobs.JobInfo, error) {
		body, _ := json.Marshal(map[string]any{
			"workload": "2mm", "mode": "timing", "size": 32, "seed": 1,
			"max_warp_insts": 20000,
		})
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return jobs.JobInfo{}, err
		}
		defer resp.Body.Close()
		var info jobs.JobInfo
		return info, json.NewDecoder(resp.Body).Decode(&info)
	}
	info, err := submit()
	if err != nil {
		return err
	}
	fmt.Printf("\nsubmitted job %s (state %s)\n", info.ID, info.State)

	var final struct {
		jobs.JobInfo
		Result server.RunResult `json:"result"`
	}
	for !final.State.Terminal() {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait_ms=30000", base, info.ID))
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&final)
		resp.Body.Close()
		if err != nil {
			return err
		}
	}
	if final.State != jobs.StateDone {
		return fmt.Errorf("job ended %s: %s", final.State, final.Error)
	}
	fmt.Printf("done in %d ms, %d cycles\n", final.WallMillis, final.Result.Cycles)
	fmt.Printf("gld_request=%d l1_hit=%d l1_miss=%d\n",
		final.Result.Counters["gld_request"],
		final.Result.Counters["l1_global_load_hit"],
		final.Result.Counters["l1_global_load_miss"])

	// 3. The same spec again: answered from the result cache, no simulation.
	again, err := submit()
	if err != nil {
		return err
	}
	fmt.Printf("\nresubmitted: state %s, cache_hit=%v\n", again.State, again.CacheHit)
	return nil
}
