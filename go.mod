module critload

go 1.22
