// Package cache models the GPU's set-associative caches with the exact
// access semantics the paper measures (Figure 3): a lookup either hits, hits
// a reserved (in-flight) line, misses after reserving a tag + MSHR entry +
// interconnect slot, or fails one of the three reservations and must retry.
package cache

import (
	"fmt"

	"critload/internal/memreq"
)

// Config sizes one cache instance.
type Config struct {
	Bytes       int // total capacity
	LineBytes   int // line size (128 in the paper's configuration)
	Ways        int // associativity
	MSHREntries int // distinct outstanding miss blocks
	MSHRTargets int // merged requests per MSHR entry
	HitLatency  int64
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Bytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	lines := c.Bytes / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	if c.MSHREntries <= 0 || c.MSHRTargets <= 0 {
		return fmt.Errorf("cache: non-positive MSHR config %+v", c)
	}
	return nil
}

// Outcome is the result of one cache access attempt.
type Outcome uint8

// Access outcomes, matching the categories of Figure 3.
const (
	Hit Outcome = iota
	HitReserved
	Miss
	RsrvFailTag  // no evictable way: all candidate lines are in flight
	RsrvFailMSHR // MSHR entries exhausted, or merge-target list full
	RsrvFailICNT // downstream injection (interconnect / DRAM queue) refused
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{
	Hit: "hit", HitReserved: "hit-reserved", Miss: "miss",
	RsrvFailTag: "rsrv-fail-tag", RsrvFailMSHR: "rsrv-fail-mshr",
	RsrvFailICNT: "rsrv-fail-icnt",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Accepted reports whether the access was taken by the cache (no retry
// needed).
func (o Outcome) Accepted() bool { return o == Hit || o == HitReserved || o == Miss }

// IsReservationFail reports whether the outcome is one of the three
// reservation failures.
func (o Outcome) IsReservationFail() bool {
	return o == RsrvFailTag || o == RsrvFailMSHR || o == RsrvFailICNT
}

type lineState uint8

const (
	invalid lineState = iota
	valid
	reserved // tag allocated, data in flight
)

type line struct {
	tag     uint32 // block address
	state   lineState
	lastUse int64
}

type mshrEntry struct {
	targets []*memreq.Request
}

// Cache is one cache instance (used for both L1D and L2 slices).
type Cache struct {
	cfg     Config
	numSets int
	sets    [][]line
	mshr    map[uint32]*mshrEntry

	// entryFree recycles MSHR entries (and their target slices) so the
	// steady-state miss path allocates nothing; lastFill holds the most
	// recently filled entry back for one Fill so the slice Fill returned
	// stays valid while the caller iterates it.
	entryFree []*mshrEntry
	lastFill  *mshrEntry

	// Aggregate statistics (monotonic counters).
	Accesses  [NumOutcomes]uint64
	FillCount uint64
}

// New builds a cache; the configuration must be valid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.Bytes / cfg.LineBytes / cfg.Ways
	c := &Cache{
		cfg:     cfg,
		numSets: numSets,
		sets:    make([][]line, numSets),
		mshr:    make(map[uint32]*mshrEntry, cfg.MSHREntries),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// MustNew builds a cache or panics; for static configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() int64 { return c.cfg.HitLatency }

func (c *Cache) setIndex(block uint32) int {
	return int(block/uint32(c.cfg.LineBytes)) % c.numSets
}

// Access attempts one (load-class) request against the cache. For misses,
// tryInject is called after tag and MSHR reservations succeed; it must
// atomically claim the downstream slot and return whether it did. On any
// reservation failure the cache state is unchanged and the caller must retry
// in a later cycle.
func (c *Cache) Access(r *memreq.Request, now int64, tryInject func() bool) Outcome {
	if r.Block%uint32(c.cfg.LineBytes) != 0 {
		panic(fmt.Sprintf("cache: unaligned block address %#x", r.Block))
	}
	set := c.sets[c.setIndex(r.Block)]

	// Tag probe.
	for i := range set {
		ln := &set[i]
		if ln.state == invalid || ln.tag != r.Block {
			continue
		}
		if ln.state == valid {
			ln.lastUse = now
			c.Accesses[Hit]++
			return Hit
		}
		// Line is reserved: merge into the MSHR entry if space remains.
		e := c.mshr[r.Block]
		if e == nil {
			// A reserved line must have an MSHR entry; a missing one is a
			// simulator bug worth failing loudly on.
			panic(fmt.Sprintf("cache: reserved line %#x without MSHR entry", r.Block))
		}
		if len(e.targets) >= c.cfg.MSHRTargets {
			c.Accesses[RsrvFailMSHR]++
			return RsrvFailMSHR
		}
		e.targets = append(e.targets, r)
		c.Accesses[HitReserved]++
		return HitReserved
	}

	// Miss: find a victim way (invalid first, else LRU among valid lines;
	// reserved lines cannot be evicted — that is the tag reservation fail).
	victim := -1
	var oldest int64 = 1<<63 - 1
	for i := range set {
		switch set[i].state {
		case invalid:
			victim = i
			oldest = -1 // settled
		case valid:
			if set[i].lastUse < oldest {
				victim = i
				oldest = set[i].lastUse
			}
		}
	}
	if victim < 0 {
		c.Accesses[RsrvFailTag]++
		return RsrvFailTag
	}
	if len(c.mshr) >= c.cfg.MSHREntries {
		c.Accesses[RsrvFailMSHR]++
		return RsrvFailMSHR
	}
	if tryInject != nil && !tryInject() {
		c.Accesses[RsrvFailICNT]++
		return RsrvFailICNT
	}
	set[victim] = line{tag: r.Block, state: reserved, lastUse: now}
	var e *mshrEntry
	if n := len(c.entryFree); n > 0 {
		e = c.entryFree[n-1]
		c.entryFree[n-1] = nil
		c.entryFree = c.entryFree[:n-1]
		e.targets = append(e.targets[:0], r)
	} else {
		e = &mshrEntry{targets: []*memreq.Request{r}}
	}
	c.mshr[r.Block] = e
	c.Accesses[Miss]++
	return Miss
}

// Fill completes an outstanding miss for block: the reserved line becomes
// valid and all merged requests are returned (primary miss first). Filling a
// block with no outstanding reservation is a simulator bug.
//
// The returned slice aliases recycled MSHR storage and is valid only until
// the next Fill on this cache; callers must finish iterating (or copy)
// before triggering another fill.
func (c *Cache) Fill(block uint32, now int64) []*memreq.Request {
	e, ok := c.mshr[block]
	if !ok {
		panic(fmt.Sprintf("cache: fill of %#x without MSHR entry", block))
	}
	delete(c.mshr, block)
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].state == reserved && set[i].tag == block {
			set[i].state = valid
			set[i].lastUse = now
			c.FillCount++
			// Recycle the previously filled entry; e itself is held back so
			// e.targets survives until the caller finishes with it.
			if c.lastFill != nil {
				c.entryFree = append(c.entryFree, c.lastFill)
			}
			c.lastFill = e
			return e.targets
		}
	}
	panic(fmt.Sprintf("cache: fill of %#x with MSHR entry but no reserved line", block))
}

// Contains reports whether block is present and valid (a testing aid).
func (c *Cache) Contains(block uint32) bool {
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].state == valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// PendingMisses returns the number of allocated MSHR entries.
func (c *Cache) PendingMisses() int { return len(c.mshr) }

// InvalidateAll clears the cache contents but keeps in-flight reservations;
// used between kernel launches where GPUs flush L1.
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].state == valid {
				c.sets[s][w].state = invalid
			}
		}
	}
}
