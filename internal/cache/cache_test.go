package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"critload/internal/memreq"
)

func smallCfg() Config {
	return Config{
		Bytes: 1024, LineBytes: 128, Ways: 2, // 4 sets × 2 ways
		MSHREntries: 4, MSHRTargets: 2, HitLatency: 10,
	}
}

func req(block uint32) *memreq.Request {
	return &memreq.Request{Block: block, Kind: memreq.Load}
}

func alwaysInject() bool { return true }
func neverInject() bool  { return false }

func TestMissThenFillThenHit(t *testing.T) {
	c := MustNew(smallCfg())
	r := req(0x1000)
	if o := c.Access(r, 0, alwaysInject); o != Miss {
		t.Fatalf("first access = %v, want miss", o)
	}
	targets := c.Fill(0x1000, 50)
	if len(targets) != 1 || targets[0] != r {
		t.Fatalf("fill targets = %v", targets)
	}
	if o := c.Access(req(0x1000), 60, alwaysInject); o != Hit {
		t.Errorf("post-fill access = %v, want hit", o)
	}
	if !c.Contains(0x1000) {
		t.Errorf("Contains(0x1000) = false after fill")
	}
}

func TestHitReservedMergesIntoMSHR(t *testing.T) {
	c := MustNew(smallCfg())
	r1, r2 := req(0x1000), req(0x1000)
	if o := c.Access(r1, 0, alwaysInject); o != Miss {
		t.Fatalf("r1 = %v", o)
	}
	if o := c.Access(r2, 1, alwaysInject); o != HitReserved {
		t.Fatalf("r2 = %v, want hit-reserved", o)
	}
	// Target list is now full (MSHRTargets=2): a third access must fail.
	if o := c.Access(req(0x1000), 2, alwaysInject); o != RsrvFailMSHR {
		t.Errorf("r3 = %v, want rsrv-fail-mshr", o)
	}
	targets := c.Fill(0x1000, 100)
	if len(targets) != 2 || targets[0] != r1 || targets[1] != r2 {
		t.Errorf("fill returned %d targets, primary first? %v", len(targets), targets[0] == r1)
	}
}

func TestRsrvFailTagWhenAllWaysInFlight(t *testing.T) {
	c := MustNew(smallCfg())
	// Set index = (block/128) % 4. Blocks mapping to set 0: 0, 512, 1024...
	if o := c.Access(req(0), 0, alwaysInject); o != Miss {
		t.Fatalf("miss 1 = %v", o)
	}
	if o := c.Access(req(512), 0, alwaysInject); o != Miss {
		t.Fatalf("miss 2 = %v", o)
	}
	// Both ways of set 0 reserved: a third distinct block in set 0 cannot
	// allocate a tag.
	if o := c.Access(req(1024), 0, alwaysInject); o != RsrvFailTag {
		t.Errorf("third = %v, want rsrv-fail-tag", o)
	}
	// After one fill the way becomes evictable.
	c.Fill(0, 10)
	if o := c.Access(req(1024), 20, alwaysInject); o != Miss {
		t.Errorf("after fill = %v, want miss", o)
	}
}

func TestRsrvFailMSHRWhenEntriesExhausted(t *testing.T) {
	cfg := smallCfg()
	cfg.MSHREntries = 2
	c := MustNew(cfg)
	// Two misses to different sets allocate both MSHR entries.
	if o := c.Access(req(0), 0, alwaysInject); o != Miss {
		t.Fatal(o)
	}
	if o := c.Access(req(128), 0, alwaysInject); o != Miss {
		t.Fatal(o)
	}
	if o := c.Access(req(256), 0, alwaysInject); o != RsrvFailMSHR {
		t.Errorf("third miss = %v, want rsrv-fail-mshr", o)
	}
	if c.PendingMisses() != 2 {
		t.Errorf("PendingMisses = %d, want 2", c.PendingMisses())
	}
}

func TestRsrvFailICNTLeavesStateUnchanged(t *testing.T) {
	c := MustNew(smallCfg())
	if o := c.Access(req(0x2000), 0, neverInject); o != RsrvFailICNT {
		t.Fatalf("access = %v, want rsrv-fail-icnt", o)
	}
	if c.PendingMisses() != 0 {
		t.Errorf("MSHR allocated despite injection failure")
	}
	// Retry succeeds once injection is possible.
	if o := c.Access(req(0x2000), 1, alwaysInject); o != Miss {
		t.Errorf("retry = %v, want miss", o)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(smallCfg())
	// Fill both ways of set 0 with valid lines.
	for i, b := range []uint32{0, 512} {
		c.Access(req(b), int64(i), alwaysInject)
		c.Fill(b, int64(i)+1)
	}
	// Touch block 0 so 512 becomes LRU.
	c.Access(req(0), 100, alwaysInject)
	// New block in set 0 evicts 512.
	if o := c.Access(req(1024), 200, alwaysInject); o != Miss {
		t.Fatalf("miss expected, got %v", o)
	}
	c.Fill(1024, 201)
	if !c.Contains(0) || c.Contains(512) || !c.Contains(1024) {
		t.Errorf("LRU eviction wrong: 0=%v 512=%v 1024=%v",
			c.Contains(0), c.Contains(512), c.Contains(1024))
	}
}

func TestInvalidateAllKeepsReservations(t *testing.T) {
	c := MustNew(smallCfg())
	c.Access(req(0), 0, alwaysInject)
	c.Fill(0, 1)
	c.Access(req(128), 2, alwaysInject) // in flight
	c.InvalidateAll()
	if c.Contains(0) {
		t.Errorf("valid line survived InvalidateAll")
	}
	// The in-flight line must still fill without panicking.
	targets := c.Fill(128, 10)
	if len(targets) != 1 {
		t.Errorf("reserved line lost by InvalidateAll")
	}
}

func TestOutcomeCounters(t *testing.T) {
	c := MustNew(smallCfg())
	c.Access(req(0), 0, alwaysInject) // miss
	c.Access(req(0), 1, alwaysInject) // hit-reserved
	c.Fill(0, 2)
	c.Access(req(0), 3, alwaysInject) // hit
	c.Access(req(0), 4, alwaysInject) // hit again
	if c.Accesses[Miss] != 1 || c.Accesses[HitReserved] != 1 || c.Accesses[Hit] != 2 {
		t.Errorf("counters = %v", c.Accesses)
	}
	if c.FillCount != 1 {
		t.Errorf("FillCount = %d", c.FillCount)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Bytes: 1000, LineBytes: 128, Ways: 3, MSHREntries: 1, MSHRTargets: 1},
		{Bytes: 1024, LineBytes: 128, Ways: 2, MSHREntries: 0, MSHRTargets: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
	if _, err := New(smallCfg()); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// Property test: under random accesses and fills, MSHR count never exceeds
// the configured entries, every accepted miss is eventually fillable, and
// accepted outcomes never exceed the invariants of the structure.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Bytes: 2048, LineBytes: 128, Ways: 1 + rng.Intn(4),
			MSHREntries: 1 + rng.Intn(6), MSHRTargets: 1 + rng.Intn(3),
			HitLatency: 1,
		}
		for (cfg.Bytes/cfg.LineBytes)%cfg.Ways != 0 {
			cfg.Ways = 1 + rng.Intn(4)
		}
		c := MustNew(cfg)
		var inflight []uint32
		for step := 0; step < 500; step++ {
			if len(inflight) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(inflight))
				b := inflight[i]
				inflight = append(inflight[:i], inflight[i+1:]...)
				if got := c.Fill(b, int64(step)); len(got) == 0 {
					return false // fill must return at least the primary miss
				}
				continue
			}
			b := uint32(rng.Intn(16)) * 128
			o := c.Access(req(b), int64(step), alwaysInject)
			if o == Miss {
				inflight = append(inflight, b)
			}
			if c.PendingMisses() > cfg.MSHREntries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
