package cache

import "critload/internal/checkpoint"

// snapTag marks one cache section of a checkpoint payload.
const snapTag = 0x43414348 // "CACH"

// Snapshot serializes the tag arrays (including LRU timestamps — future
// eviction decisions depend on them exactly) and the outcome counters. It is
// only valid at a kernel-launch boundary, where no miss is in flight: a
// reserved line or MSHR entry would reference pool-owned requests whose
// identity cannot survive serialization, so snapshotting mid-flight is a
// caller bug worth failing loudly on.
func (c *Cache) Snapshot(w *checkpoint.Writer) {
	if len(c.mshr) != 0 {
		panic("cache: snapshot with in-flight misses")
	}
	w.Tag(snapTag)
	w.Int(c.numSets)
	w.Int(c.cfg.Ways)
	for s := range c.sets {
		for i := range c.sets[s] {
			ln := &c.sets[s][i]
			w.U32(ln.tag)
			w.U8(uint8(ln.state))
			w.I64(ln.lastUse)
		}
	}
	for o := range c.Accesses {
		w.U64(c.Accesses[o])
	}
	w.U64(c.FillCount)
}

// Restore loads a snapshot taken from an identically-configured cache. The
// receiver must itself be at a boundary (no in-flight misses).
func (c *Cache) Restore(r *checkpoint.Reader) error {
	if len(c.mshr) != 0 {
		return errActive(r)
	}
	r.Tag(snapTag)
	numSets, ways := r.Int(), r.Int()
	if r.Err() == nil && (numSets != c.numSets || ways != c.cfg.Ways) {
		r.Failf("cache: snapshot geometry %d sets × %d ways does not match %d × %d",
			numSets, ways, c.numSets, c.cfg.Ways)
	}
	if err := r.Err(); err != nil {
		return err
	}
	for s := range c.sets {
		for i := range c.sets[s] {
			tag := r.U32()
			state := lineState(r.U8())
			lastUse := r.I64()
			if r.Err() == nil && state == reserved {
				r.Failf("cache: snapshot holds a reserved line for block %#x", tag)
			}
			c.sets[s][i] = line{tag: tag, state: state, lastUse: lastUse}
		}
	}
	for o := range c.Accesses {
		c.Accesses[o] = r.U64()
	}
	c.FillCount = r.U64()
	return r.Err()
}

func errActive(r *checkpoint.Reader) error {
	r.Failf("cache: restore with in-flight misses")
	return r.Err()
}
