package cache

import (
	"bytes"
	"strings"
	"testing"

	"critload/internal/checkpoint"
)

func snapConfig() Config {
	return Config{Bytes: 1024, LineBytes: 128, Ways: 2, MSHREntries: 4, MSHRTargets: 4, HitLatency: 18}
}

func snapBytes(t *testing.T, c *Cache) []byte {
	t.Helper()
	w := checkpoint.NewWriter()
	c.Snapshot(w)
	return w.Bytes()
}

// TestSnapshotRoundTrip checks that restoring a snapshot into a fresh,
// identically-configured cache reproduces it byte for byte: tags, line
// states, LRU timestamps and outcome counters all survive.
func TestSnapshotRoundTrip(t *testing.T) {
	src, err := New(snapConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.sets[0][0] = line{tag: 0x80, state: valid, lastUse: 7}
	src.sets[0][1] = line{tag: 0x200, state: valid, lastUse: 9}
	src.sets[3][1] = line{tag: 0x380, state: valid, lastUse: 3}
	src.Accesses[Hit] = 5
	src.Accesses[Miss] = 2
	src.FillCount = 2

	b1 := snapBytes(t, src)
	dst, err := New(snapConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := dst.Restore(checkpoint.NewReader(b1)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b2 := snapBytes(t, dst); !bytes.Equal(b1, b2) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(b1), len(b2))
	}
	if dst.Accesses[Hit] != 5 || dst.Accesses[Miss] != 2 || dst.FillCount != 2 {
		t.Errorf("counters not restored: %v fills %d", dst.Accesses, dst.FillCount)
	}
	if dst.sets[0][1] != (line{tag: 0x200, state: valid, lastUse: 9}) {
		t.Errorf("line not restored: %+v", dst.sets[0][1])
	}
}

// TestSnapshotPanicsWithInflightMiss checks the boundary invariant: a cache
// with a live MSHR entry refuses to serialize.
func TestSnapshotPanicsWithInflightMiss(t *testing.T) {
	c, err := New(snapConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.mshr[0x80] = &mshrEntry{}
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot of a busy cache did not panic")
		}
	}()
	c.Snapshot(checkpoint.NewWriter())
}

// TestRestoreRejections covers the refusal paths: a busy receiver, a
// geometry mismatch, a payload holding a reserved line, and truncation.
func TestRestoreRejections(t *testing.T) {
	src, err := New(snapConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	good := snapBytes(t, src)

	busy, _ := New(snapConfig())
	busy.mshr[0x80] = &mshrEntry{}
	if err := busy.Restore(checkpoint.NewReader(good)); err == nil || !strings.Contains(err.Error(), "in-flight") {
		t.Errorf("busy restore: %v", err)
	}

	narrow := snapConfig()
	narrow.Ways = 4
	mismatched, err := New(narrow)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mismatched.Restore(checkpoint.NewReader(good)); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Errorf("geometry mismatch: %v", err)
	}

	src.sets[1][0] = line{tag: 0x180, state: reserved, lastUse: 1}
	withReserved := snapBytes(t, src)
	dst, _ := New(snapConfig())
	if err := dst.Restore(checkpoint.NewReader(withReserved)); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("reserved-line payload: %v", err)
	}

	dst2, _ := New(snapConfig())
	if err := dst2.Restore(checkpoint.NewReader(good[:len(good)-4])); err == nil {
		t.Error("truncated payload accepted")
	}
}
