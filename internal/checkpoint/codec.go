// Package checkpoint serializes full simulator state at kernel-launch
// boundaries and stores the snapshots in an on-disk content-addressed store,
// so sweeps that share a run prefix (ablations, figure reproductions, budget
// scans) resume from the longest checkpointed prefix instead of re-simulating
// from cycle 0.
//
// The codec is deliberately dumb: fixed-width little-endian fields behind a
// sticky-error Writer/Reader pair, with section tags so a layout drift fails
// loudly at the first misaligned field instead of producing silently wrong
// state. Determinism is load-bearing — the store is content-addressed and the
// difftest oracle compares resumed runs byte-for-byte — so every map is
// serialized in sorted key order and nil-versus-empty map distinctions are
// encoded explicitly.
package checkpoint

import (
	"encoding/binary"
	"fmt"
)

// Writer serializes fields into an in-memory buffer. It never fails: all
// inputs are simulator-owned state, so there is nothing to validate on the
// way out.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Tag writes a section marker; Reader.Tag verifies it, so a component whose
// layout drifted out of sync with its decoder fails at the section boundary.
func (w *Writer) Tag(id uint32) { w.U32(id) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes a platform int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// I32 writes an int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// Blob writes a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Int(len(b))
	w.buf = append(w.buf, b...)
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Int(len(s))
	w.buf = append(w.buf, s...)
}

// Reader decodes a Writer's output with a sticky error: after the first
// failure every accessor returns a zero value and Err reports the cause, so
// decoders read straight through without per-field error plumbing.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps an encoded buffer.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Failf records a decoder-level validation failure (bad counts, geometry
// mismatches); like any codec error it is sticky.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.Failf("checkpoint: truncated input at offset %d (want %d bytes, have %d)",
			r.off, n, r.Remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Tag verifies a section marker written by Writer.Tag.
func (r *Reader) Tag(id uint32) {
	at := r.off
	if got := r.U32(); r.err == nil && got != id {
		r.Failf("checkpoint: section tag mismatch at offset %d: got %#x, want %#x", at, got, id)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads a platform int.
func (r *Reader) Int() int { return int(r.I64()) }

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// Count reads a non-negative element count for a sequence whose elements
// occupy at least minBytes each, rejecting counts the remaining input cannot
// possibly hold — the guard that keeps a corrupt length from turning into a
// huge allocation.
func (r *Reader) Count(minBytes int) int {
	at := r.off
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > r.Remaining()/minBytes {
		r.Failf("checkpoint: implausible count %d at offset %d (%d bytes remain)",
			n, at, r.Remaining())
		return 0
	}
	return n
}

// Blob reads a length-prefixed byte slice. The result is a fresh copy, never
// an alias of the input buffer, so restored state can be mutated even when
// one payload is restored more than once.
func (r *Reader) Blob() []byte {
	n := r.Count(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.Count(1)
	b := r.take(n)
	return string(b)
}

// Close verifies the input was fully consumed and returns the sticky error.
func (r *Reader) Close() error {
	if r.err == nil && r.Remaining() != 0 {
		r.Failf("checkpoint: %d trailing bytes after decode", r.Remaining())
	}
	return r.err
}
