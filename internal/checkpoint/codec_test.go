package checkpoint

import (
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Tag(0xCAFE)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(-7)
	w.I32(-1)
	w.Blob([]byte{1, 2, 3})
	w.Str("kernel_main")

	r := NewReader(w.Bytes())
	r.Tag(0xCAFE)
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round-trip failed")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.I32(); got != -1 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.Blob(); string(got) != "\x01\x02\x03" {
		t.Errorf("Blob = %v", got)
	}
	if got := r.Str(); got != "kernel_main" {
		t.Errorf("Str = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReaderTagMismatch(t *testing.T) {
	w := NewWriter()
	w.Tag(1)
	r := NewReader(w.Bytes())
	r.Tag(2)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "tag mismatch") {
		t.Fatalf("want tag mismatch error, got %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64() // truncated
	if r.Err() == nil {
		t.Fatal("want truncation error")
	}
	first := r.Err()
	// Every later accessor returns zero values and keeps the first error.
	if got := r.U32(); got != 0 {
		t.Errorf("post-error U32 = %d", got)
	}
	if got := r.Blob(); got != nil {
		t.Errorf("post-error Blob = %v", got)
	}
	if r.Err() != first {
		t.Errorf("error not sticky: %v", r.Err())
	}
}

func TestReaderRejectsImplausibleCount(t *testing.T) {
	w := NewWriter()
	w.Int(1 << 40) // claims a huge sequence with no bytes behind it
	r := NewReader(w.Bytes())
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("Count accepted %d with err %v", n, r.Err())
	}
}

func TestReaderCloseFlagsTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U32(1)
	w.U32(2)
	r := NewReader(w.Bytes())
	_ = r.U32()
	if err := r.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestBlobDoesNotAliasInput(t *testing.T) {
	w := NewWriter()
	w.Blob([]byte{9, 9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Blob()
	got[0] = 1
	r2 := NewReader(buf)
	if again := r2.Blob(); again[0] != 9 {
		t.Fatal("Blob aliases the input buffer")
	}
}
