package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Version identifies the on-disk format AND the component snapshot layout.
// Bump it whenever any Snapshot encoding changes; files written by a
// different version are treated as absent (cold start), never decoded.
const Version = 1

// magic opens every checkpoint file.
const magic = "CRITCKPT"

// fileExt is the checkpoint file suffix.
const fileExt = ".ckpt"

// Sentinel errors for file validation; both cause the store to drop the file
// and fall back to an earlier boundary or a cold start.
var (
	// ErrCorrupt marks a truncated or bit-flipped checkpoint file.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	// ErrVersion marks a file written by a different codec version.
	ErrVersion = errors.New("checkpoint: codec version mismatch")
	// ErrNotFound marks a missing checkpoint.
	ErrNotFound = errors.New("checkpoint: not found")
)

// Key identifies a run prefix: a SHA-256 over the canonical description of
// everything that determines simulated state at a boundary (workload, size,
// seed, architectural configuration) — and nothing that provably cannot
// (engine selection, run-length budgets).
type Key [sha256.Size]byte

// KeyOf hashes canonical key material.
func KeyOf(material []byte) Key { return sha256.Sum256(material) }

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Meta describes one stored snapshot.
type Meta struct {
	// Index is the kernel-launch boundary: the number of launches completed
	// before the snapshot was taken (always ≥ 1; the boundary before the
	// first launch is the initial state and never stored).
	Index int
	// Cycle is the simulated cycle count at the boundary.
	Cycle int64
	// SkippedCycles is the portion of Cycle the fast-forward engine skipped.
	SkippedCycles int64
	// WarpInsts is the warp-instruction count at the boundary; checkpoint
	// validity against a MaxWarpInsts budget is checked at load time.
	WarpInsts uint64
}

// Stats is a point-in-time snapshot of store effectiveness counters, exported
// on the service's /metrics endpoint as critloadd_checkpoint_*.
type Stats struct {
	Hits          uint64 // Best calls that returned a usable checkpoint
	Misses        uint64 // Best calls that found nothing usable
	Saves         uint64 // snapshots written
	Evictions     uint64 // files removed by the byte budget
	Dropped       uint64 // corrupt/mismatched files deleted on read
	CyclesSkipped int64  // simulated cycles inherited via warm starts
	Files         int    // checkpoint files currently on disk
	Bytes         int64  // bytes currently on disk
}

// Store is an on-disk content-addressed checkpoint store. Files are flat:
// <key-hex>.k<index>.ckpt, written atomically (temp file + rename) and
// evicted least-recently-used against a byte budget (reads refresh mtime).
// It is safe for concurrent use by multiple goroutines; concurrent processes
// sharing a directory are safe too, because every write is an atomic rename
// and every read validates integrity.
type Store struct {
	dir    string
	budget int64 // bytes; <=0 disables eviction

	mu            sync.Mutex
	hits          uint64
	misses        uint64
	saves         uint64
	evictions     uint64
	dropped       uint64
	cyclesSkipped int64
}

// Open creates (if needed) and opens a store directory. budgetBytes bounds
// the on-disk footprint; <= 0 means unlimited.
func Open(dir string, budgetBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	return &Store{dir: dir, budget: budgetBytes}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func fileName(key Key, index int) string {
	return fmt.Sprintf("%s.k%06d%s", key, index, fileExt)
}

// parseIndex extracts the boundary index from a file name produced by
// fileName; ok is false for foreign files.
func parseIndex(name string, key Key) (int, bool) {
	prefix := key.String() + ".k"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, fileExt) {
		return 0, false
	}
	idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), fileExt))
	if err != nil || idx < 0 {
		return 0, false
	}
	return idx, true
}

// encodeFile frames a snapshot payload: magic, version, meta, payload, and a
// trailing SHA-256 over everything before it.
func encodeFile(m Meta, payload []byte) []byte {
	buf := make([]byte, 0, len(magic)+4+8*4+len(payload)+sha256.Size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Index))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Cycle))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.SkippedCycles))
	buf = binary.LittleEndian.AppendUint64(buf, m.WarpInsts)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decodeFile validates a framed checkpoint file and returns its meta and
// payload. The integrity hash is checked before anything else is trusted;
// the version check runs after it so ErrVersion is only reported for files
// that are intact but foreign.
func decodeFile(b []byte) (Meta, []byte, error) {
	headerLen := len(magic) + 4 + 8*5
	if len(b) < headerLen+sha256.Size {
		return Meta{}, nil, fmt.Errorf("%w: %d bytes is shorter than any valid file", ErrCorrupt, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return Meta{}, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, sum := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if got := sha256.Sum256(body); string(got[:]) != string(sum) {
		return Meta{}, nil, fmt.Errorf("%w: integrity hash mismatch", ErrCorrupt)
	}
	off := len(magic)
	if v := binary.LittleEndian.Uint32(b[off:]); v != Version {
		return Meta{}, nil, fmt.Errorf("%w: file version %d, codec version %d", ErrVersion, v, Version)
	}
	off += 4
	var m Meta
	m.Index = int(binary.LittleEndian.Uint64(b[off:]))
	m.Cycle = int64(binary.LittleEndian.Uint64(b[off+8:]))
	m.SkippedCycles = int64(binary.LittleEndian.Uint64(b[off+16:]))
	m.WarpInsts = binary.LittleEndian.Uint64(b[off+24:])
	payloadLen := binary.LittleEndian.Uint64(b[off+32:])
	off += 40
	if payloadLen != uint64(len(body)-off) {
		return Meta{}, nil, fmt.Errorf("%w: payload length %d does not match file size", ErrCorrupt, payloadLen)
	}
	return m, body[off:], nil
}

// Save writes one snapshot atomically. Saving an index that already exists is
// a no-op: checkpoints are content-addressed, so an existing file for the
// same (key, index) necessarily holds identical state.
func (s *Store) Save(key Key, m Meta, payload []byte) error {
	if m.Index < 1 {
		return fmt.Errorf("checkpoint: refusing to save boundary index %d (initial state is never stored)", m.Index)
	}
	path := filepath.Join(s.dir, fileName(key, m.Index))
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*"+fileExt+".partial")
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encodeFile(m, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	s.mu.Lock()
	s.saves++
	s.mu.Unlock()
	s.evict(path)
	return nil
}

// Has reports whether a checkpoint exists for (key, index); it does not
// validate the file (Load and Best do).
func (s *Store) Has(key Key, index int) bool {
	_, err := os.Stat(filepath.Join(s.dir, fileName(key, index)))
	return err == nil
}

// Load reads and validates one checkpoint. Corrupt or version-mismatched
// files are deleted so they are never retried, and the matching sentinel
// error is returned.
func (s *Store) Load(key Key, index int) (Meta, []byte, error) {
	path := filepath.Join(s.dir, fileName(key, index))
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Meta{}, nil, ErrNotFound
		}
		return Meta{}, nil, fmt.Errorf("checkpoint: load: %w", err)
	}
	m, payload, err := decodeFile(b)
	if err != nil {
		os.Remove(path)
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		return Meta{}, nil, err
	}
	if m.Index != index {
		os.Remove(path)
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		return Meta{}, nil, fmt.Errorf("%w: file named k%06d holds index %d", ErrCorrupt, index, m.Index)
	}
	// Refresh mtime so LRU eviction tracks use, not just creation.
	now := time.Now()
	os.Chtimes(path, now, now)
	return m, payload, nil
}

// Best returns the deepest valid checkpoint for the key that a run with the
// given budgets can resume from: the snapshot's prefix must not have tripped
// either limit, i.e. WarpInsts strictly below maxWarpInsts (when set) and
// Cycle strictly below maxCycles (when set). Invalid files encountered on the
// way down are dropped; deeper checkpoints that merely exceed the budgets are
// left in place for future, larger-budget runs.
func (s *Store) Best(key Key, maxWarpInsts uint64, maxCycles int64) (Meta, []byte, bool) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		s.note(&s.misses)
		return Meta{}, nil, false
	}
	var indices []int
	for _, e := range entries {
		if idx, ok := parseIndex(e.Name(), key); ok {
			indices = append(indices, idx)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(indices)))
	for _, idx := range indices {
		m, payload, err := s.Load(key, idx)
		if err != nil {
			continue // dropped if invalid; just missing if raced
		}
		if maxWarpInsts > 0 && m.WarpInsts >= maxWarpInsts {
			continue
		}
		if maxCycles > 0 && m.Cycle >= maxCycles {
			continue
		}
		s.note(&s.hits)
		return m, payload, true
	}
	s.note(&s.misses)
	return Meta{}, nil, false
}

// NoteWarmStart records that a run resumed from a checkpoint, inheriting the
// given number of simulated cycles instead of re-simulating them.
func (s *Store) NoteWarmStart(cycles int64) {
	s.mu.Lock()
	s.cyclesSkipped += cycles
	s.mu.Unlock()
}

func (s *Store) note(counter *uint64) {
	s.mu.Lock()
	*counter++
	s.mu.Unlock()
}

// Stats returns current counters plus an on-disk scan.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Hits: s.hits, Misses: s.misses, Saves: s.saves,
		Evictions: s.evictions, Dropped: s.dropped,
		CyclesSkipped: s.cyclesSkipped,
	}
	s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return st
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), fileExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st.Files++
		st.Bytes += info.Size()
	}
	return st
}

// evict removes least-recently-used checkpoint files until the directory fits
// the byte budget, never removing the just-written file.
func (s *Store) evict(keep string) {
	if s.budget <= 0 {
		return
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var total int64
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), fileExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{
			path: filepath.Join(s.dir, e.Name()), size: info.Size(), mtime: info.ModTime(),
		})
		total += info.Size()
	}
	if total <= s.budget {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.budget {
			return
		}
		if f.path == keep {
			continue
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.note(&s.evictions)
		}
	}
}
