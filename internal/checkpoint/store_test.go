package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf([]byte("workload=2mm size=32 seed=7"))
	meta := Meta{Index: 3, Cycle: 12345, SkippedCycles: 1000, WarpInsts: 678}
	payload := []byte("snapshot-bytes")
	if err := s.Save(key, meta, payload); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key, 3) {
		t.Fatal("Has(3) = false after Save")
	}
	if s.Has(key, 2) {
		t.Fatal("Has(2) = true without a save")
	}
	m, p, err := s.Load(key, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m != meta || !bytes.Equal(p, payload) {
		t.Fatalf("Load = %+v %q, want %+v %q", m, p, meta, payload)
	}
	if _, _, err := s.Load(key, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(9) = %v, want ErrNotFound", err)
	}
}

func TestStoreRejectsIndexZero(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	if err := s.Save(testKey(1), Meta{Index: 0}, nil); err == nil {
		t.Fatal("Save(index 0) succeeded; the initial state must never be stored")
	}
}

func TestStoreBestPicksDeepestValid(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	key := testKey(2)
	for i, m := range []Meta{
		{Index: 1, Cycle: 100, WarpInsts: 10},
		{Index: 2, Cycle: 200, WarpInsts: 20},
		{Index: 3, Cycle: 300, WarpInsts: 30},
	} {
		if err := s.Save(key, m, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Unlimited budgets: deepest wins.
	m, _, ok := s.Best(key, 0, 0)
	if !ok || m.Index != 3 {
		t.Fatalf("Best(0,0) = %+v ok=%v, want index 3", m, ok)
	}
	// A warp-instruction budget of 25 invalidates index 3 (30 ≥ 25) but not 2.
	m, _, ok = s.Best(key, 25, 0)
	if !ok || m.Index != 2 {
		t.Fatalf("Best(25,0) = %+v ok=%v, want index 2", m, ok)
	}
	// Budget equal to a boundary's count invalidates that boundary (strict <).
	m, _, ok = s.Best(key, 20, 0)
	if !ok || m.Index != 1 {
		t.Fatalf("Best(20,0) = %+v ok=%v, want index 1", m, ok)
	}
	// A cycle limit below every boundary: cold start.
	if _, _, ok := s.Best(key, 0, 50); ok {
		t.Fatal("Best with tiny cycle limit returned a checkpoint")
	}
	// A different key: cold start.
	if _, _, ok := s.Best(testKey(3), 0, 0); ok {
		t.Fatal("Best under a foreign key returned a checkpoint")
	}
	st := s.Stats()
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 3 hits / 2 misses", st)
	}
}

// corruptFile flips one byte inside the payload region of a stored file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-40] ^= 0xFF // inside payload (ahead of the 32-byte hash)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDropsCorruptFilesAndFallsBack(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	key := testKey(4)
	good := []byte("good-payload-good-payload-good-payload")
	bad := []byte("bad-payload-bad-payload-bad-payload-bad")
	if err := s.Save(key, Meta{Index: 1, Cycle: 10}, good); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(key, Meta{Index: 2, Cycle: 20}, bad); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(s.Dir(), fileName(key, 2)))

	// Best must skip the corrupt deepest file and land on index 1.
	m, p, ok := s.Best(key, 0, 0)
	if !ok || m.Index != 1 || !bytes.Equal(p, good) {
		t.Fatalf("Best over corrupt store = %+v ok=%v", m, ok)
	}
	// The corrupt file was deleted, not left to poison future loads.
	if s.Has(key, 2) {
		t.Fatal("corrupt file survived Best")
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestStoreDropsTruncatedFiles(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	key := testKey(5)
	if err := s.Save(key, Meta{Index: 1, Cycle: 10}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), fileName(key, 1))
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(key, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load truncated = %v, want ErrCorrupt", err)
	}
	if _, _, ok := s.Best(key, 0, 0); ok {
		t.Fatal("Best returned a truncated checkpoint")
	}
}

// sealVersion rewrites a framed file's version field and re-seals the
// integrity hash, simulating an intact file written by a different codec.
func sealVersion(b []byte, v uint32) []byte {
	binary.LittleEndian.PutUint32(b[len(magic):], v)
	sum := sha256.Sum256(b[:len(b)-sha256.Size])
	copy(b[len(b)-sha256.Size:], sum[:])
	return b
}

func TestStoreDropsVersionMismatch(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	key := testKey(6)
	path := filepath.Join(s.Dir(), fileName(key, 1))
	sealed := sealVersion(encodeFile(Meta{Index: 1, Cycle: 10}, []byte("payload")), Version+1)
	if err := os.WriteFile(path, sealed, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.Load(key, 1); !errors.Is(err, ErrVersion) {
		t.Fatalf("Load future-version = %v, want ErrVersion", err)
	}
	if s.Has(key, 1) {
		t.Fatal("version-mismatched file survived Load")
	}
}

func TestStoreEvictsLRUOverBudget(t *testing.T) {
	payload := make([]byte, 1024)
	// Budget fits roughly two files (payload + ~120 bytes of framing each).
	s, err := Open(t.TempDir(), 2400)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(7)
	for i := 1; i <= 3; i++ {
		if err := s.Save(key, Meta{Index: i, Cycle: int64(i)}, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is well-defined on coarse filesystems.
		now := time.Now().Add(time.Duration(i) * time.Second)
		os.Chtimes(filepath.Join(s.Dir(), fileName(key, i)), now, now)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with 3×~1.1KB files under a 2.4KB budget: %+v", st)
	}
	if st.Bytes > 2400 {
		t.Fatalf("store over budget after eviction: %+v", st)
	}
	// The newest file must survive.
	if !s.Has(key, 3) {
		t.Fatal("most recent checkpoint was evicted")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, _ := Open(t.TempDir(), 64*1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := testKey(byte(g % 3))
			for i := 1; i <= 20; i++ {
				m := Meta{Index: i, Cycle: int64(100 * i), WarpInsts: uint64(10 * i)}
				if err := s.Save(key, m, []byte(fmt.Sprintf("payload-%d-%d", g, i))); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
				if m, _, ok := s.Best(key, 0, 0); ok && m.Index < 1 {
					t.Errorf("Best returned index %d", m.Index)
					return
				}
				s.NoteWarmStart(int64(i))
				_ = s.Stats()
			}
		}(g)
	}
	wg.Wait()
}
