package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"critload/internal/emu"
	"critload/internal/mem"
)

func TestFullyCoalescedWarp(t *testing.T) {
	var addrs [emu.WarpSize]uint32
	for l := range addrs {
		addrs[l] = 0x1000 + uint32(4*l) // 32 × 4B = one 128B block
	}
	acc := Coalesce(emu.FullMask, &addrs)
	if len(acc) != 1 {
		t.Fatalf("accesses = %d, want 1", len(acc))
	}
	if acc[0].Block != 0x1000 || acc[0].Lanes != emu.FullMask {
		t.Errorf("access = %+v", acc[0])
	}
	if acc[0].LaneCount() != 32 {
		t.Errorf("LaneCount = %d, want 32", acc[0].LaneCount())
	}
}

func TestStridedTwoBlocks(t *testing.T) {
	var addrs [emu.WarpSize]uint32
	for l := range addrs {
		addrs[l] = 0x2000 + uint32(8*l) // 8B stride: 256B = 2 blocks
	}
	acc := Coalesce(emu.FullMask, &addrs)
	if len(acc) != 2 {
		t.Fatalf("accesses = %d, want 2", len(acc))
	}
	if acc[0].Block != 0x2000 || acc[1].Block != 0x2080 {
		t.Errorf("blocks = %#x,%#x", acc[0].Block, acc[1].Block)
	}
}

func TestFullyDivergentAddresses(t *testing.T) {
	var addrs [emu.WarpSize]uint32
	for l := range addrs {
		addrs[l] = uint32(l) * 4096 // every lane a distinct block
	}
	acc := Coalesce(emu.FullMask, &addrs)
	if len(acc) != 32 {
		t.Fatalf("accesses = %d, want 32", len(acc))
	}
}

func TestInactiveLanesIgnored(t *testing.T) {
	var addrs [emu.WarpSize]uint32
	for l := range addrs {
		addrs[l] = uint32(l) * 4096
	}
	acc := Coalesce(0x5, &addrs) // lanes 0 and 2 only
	if len(acc) != 2 {
		t.Fatalf("accesses = %d, want 2", len(acc))
	}
	if acc[0].Lanes != 1 || acc[1].Lanes != 4 {
		t.Errorf("lane masks = %#x,%#x", acc[0].Lanes, acc[1].Lanes)
	}
}

func TestEmptyMask(t *testing.T) {
	var addrs [emu.WarpSize]uint32
	if acc := Coalesce(0, &addrs); acc != nil {
		t.Errorf("Coalesce(0) = %v, want nil", acc)
	}
	if n := Count(0, &addrs); n != 0 {
		t.Errorf("Count(0) = %d, want 0", n)
	}
}

func TestSameAddressAllLanes(t *testing.T) {
	var addrs [emu.WarpSize]uint32
	for l := range addrs {
		addrs[l] = 0x7777
	}
	acc := Coalesce(emu.FullMask, &addrs)
	if len(acc) != 1 || acc[0].Lanes != emu.FullMask {
		t.Errorf("broadcast access = %+v", acc)
	}
}

// Properties checked with testing/quick: (1) Count agrees with len(Coalesce),
// (2) lane masks partition the exec mask, (3) every lane's address falls in
// its access's block, (4) access count never exceeds active lanes.
func TestQuickCoalesceInvariants(t *testing.T) {
	f := func(exec uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var addrs [emu.WarpSize]uint32
		for l := range addrs {
			addrs[l] = uint32(rng.Intn(1 << 20))
		}
		acc := Coalesce(exec, &addrs)
		if Count(exec, &addrs) != len(acc) {
			return false
		}
		var union uint32
		for _, a := range acc {
			if a.Lanes&union != 0 {
				return false // overlap
			}
			union |= a.Lanes
			for l := 0; l < emu.WarpSize; l++ {
				if a.Lanes&(1<<l) != 0 && mem.BlockAddr(addrs[l]) != a.Block {
					return false
				}
			}
		}
		if union != exec {
			return false
		}
		active := 0
		for m := exec; m != 0; m &= m - 1 {
			active++
		}
		return len(acc) <= active
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
