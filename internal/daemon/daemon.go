// Package daemon is critloadd's composition root: it wires the checkpoint
// store, the durable job tier (write-ahead journal + on-disk result
// store), the jobs manager, and the HTTP servers into one Run function.
// It lives in a package of its own — rather than in cmd/critloadd — so
// the crash-recovery harness can run a real daemon in a forked test
// binary and kill it at arbitrary points.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"critload/internal/checkpoint"
	"critload/internal/jobs"
	"critload/internal/server"
)

// DefaultIdleTimeout reaps keep-alive connections that have sat idle for
// two minutes. Before it existed, a soak's worth of pooled client
// connections (or a slow leak of abandoned ones) accumulated unboundedly —
// each holding a file descriptor and a read buffer for the daemon's
// lifetime.
const DefaultIdleTimeout = 2 * time.Minute

// Config is everything critloadd's flags select.
type Config struct {
	// Addr is the API listen address (e.g. ":8321"; ":0" for ephemeral).
	Addr string
	// AddrFile, when set, receives the bound listen address (atomically,
	// temp file + rename) once the listener is up. Harnesses starting the
	// daemon on an ephemeral port poll it to discover where to connect.
	AddrFile string
	// PprofAddr serves net/http/pprof on its own listener (empty disables).
	PprofAddr string

	// Workers, Queue and CacheEntries size the jobs manager.
	Workers, Queue, CacheEntries int

	// CacheDir holds the checkpoint store under <CacheDir>/checkpoints
	// (empty disables checkpoint reuse); CacheDiskBytes is its eviction
	// budget (0 = unbounded).
	CacheDir       string
	CacheDiskBytes int64

	// DataDir enables the durable job tier: the write-ahead journal lives
	// under <DataDir>/journal and the content-addressed result store under
	// <DataDir>/results. On startup the journal is replayed — jobs that
	// were queued or running when the last process died are completed from
	// the store or re-enqueued. Empty disables durability.
	DataDir string
	// DataDiskBytes is the result store's eviction budget (0 = unbounded).
	DataDiskBytes int64

	// Grace bounds the shutdown drain; IdleTimeout reaps idle keep-alive
	// connections (0 disables reaping).
	Grace       time.Duration
	IdleTimeout time.Duration

	// Log receives the daemon's structured logs (nil discards).
	Log *slog.Logger
}

// Run builds the daemon from cfg, serves until ctx is cancelled (or the
// listener fails), then drains and shuts down. It owns every component's
// lifecycle; the caller owns signal handling via ctx.
func Run(ctx context.Context, cfg Config) error {
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	var ckpts *checkpoint.Store
	if cfg.CacheDir != "" {
		var err error
		ckpts, err = checkpoint.Open(filepath.Join(cfg.CacheDir, "checkpoints"), cfg.CacheDiskBytes)
		if err != nil {
			return fmt.Errorf("opening checkpoint store: %w", err)
		}
		log.Info("checkpoint store open", "dir", ckpts.Dir(), "budget_bytes", cfg.CacheDiskBytes)
	}

	mcfg := jobs.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.Queue,
		CacheEntries: cfg.CacheEntries,
		Runner:       server.SimRunnerWith(ckpts),
	}
	if cfg.DataDir != "" {
		results, err := jobs.OpenResultStore(filepath.Join(cfg.DataDir, "results"), cfg.DataDiskBytes)
		if err != nil {
			return fmt.Errorf("opening result store: %w", err)
		}
		mcfg.Results = results
		mcfg.JournalDir = filepath.Join(cfg.DataDir, "journal")
		log.Info("durable tier enabled", "data_dir", cfg.DataDir, "result_budget_bytes", cfg.DataDiskBytes)
	}
	mgr, err := jobs.NewManager(mcfg)
	if err != nil {
		return err
	}
	if rec := mgr.Recovery(); rec.Enabled {
		log.Info("journal replayed",
			"records", rec.Records, "jobs", rec.Jobs, "requeued", rec.Requeued,
			"completed_from_store", rec.CompletedFromStore,
			"results_missing", rec.ResultsMissing, "unrecoverable", rec.Unrecoverable,
			"truncated_bytes", rec.TruncatedBytes, "dropped_segments", rec.DroppedSegments)
	}

	httpSrv := NewAPIServer(cfg.Addr,
		server.New(mgr, server.WithLogger(log), server.WithCheckpoints(ckpts)), cfg.IdleTimeout)
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.Grace)
		defer cancel()
		mgr.Close(drainCtx)
		return fmt.Errorf("listen %s: %w", cfg.Addr, err)
	}
	if cfg.AddrFile != "" {
		if err := writeAddrFile(cfg.AddrFile, ln.Addr().String()); err != nil {
			ln.Close()
			return err
		}
	}

	if cfg.PprofAddr != "" {
		pprofSrv := PprofServer(cfg.PprofAddr)
		defer pprofSrv.Close()
		go func() {
			log.Info("pprof listening", "addr", cfg.PprofAddr)
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof server", "error", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", ln.Addr().String(),
			"workers", cfg.Workers, "queue", cfg.Queue, "cache", cfg.CacheEntries)
		errCh <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the pool;
	// running jobs get the full grace period before their contexts are
	// cancelled. Manager.Close also compacts and closes the journal, so
	// the next start replays a minimal log.
	log.Info("shutting down, draining jobs", "grace", cfg.Grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), cfg.Grace)
	defer cancel()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := mgr.Close(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("draining jobs: %w", err)
	}
	log.Info("drained")
	return nil
}

// writeAddrFile publishes the bound address atomically so a poller never
// reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return fmt.Errorf("writing addr file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("writing addr file: %w", err)
	}
	return nil
}

// NewAPIServer builds the public API's http.Server with its timeout
// policy:
//
//   - ReadHeaderTimeout bounds a slow-loris header dribble.
//   - ReadTimeout bounds reading one full request (headers + the ≤4 MiB
//     body). It does not bound handler execution: net/http clears the read
//     deadline once the handler takes over the connection's background
//     read.
//   - IdleTimeout reaps parked keep-alive connections between requests.
//   - WriteTimeout deliberately stays 0: GET /v1/jobs/{id}?wait_ms=N holds
//     the response open for a caller-chosen long-poll window, and a write
//     deadline would sever those (and slow multi-minute simulate results)
//     mid-response. Job wall time is bounded per job via timeout_ms
//     instead.
func NewAPIServer(addr string, h http.Handler, idleTimeout time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       idleTimeout,
	}
}

// PprofServer builds the profiling endpoint on its own mux and listener so
// the profiler is never exposed on the public API address.
func PprofServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
}
