package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
)

// startAPIServer serves the real API through newAPIServer (the production
// timeout policy) on an ephemeral port. A nil runner selects the real
// simulation runner.
func startAPIServer(t *testing.T, idleTimeout time.Duration, runner jobs.Runner) string {
	t.Helper()
	if runner == nil {
		runner = server.SimRunner()
	}
	mgr, err := jobs.NewManager(jobs.Config{Workers: 1, Runner: runner})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := NewAPIServer("", server.New(mgr), idleTimeout)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return ln.Addr().String()
}

// roundTrip performs one HTTP/1.1 keep-alive request on a raw connection
// and consumes the full response, leaving the connection idle.
func roundTrip(t *testing.T, conn net.Conn, rd *bufio.Reader, addr string) {
	t.Helper()
	req := "GET /healthz HTTP/1.1\r\nHost: " + addr + "\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatalf("writing request: %v", err)
	}
	resp, err := http.ReadResponse(rd, nil)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over raw conn = %d / %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz body = %q", body)
	}
}

// TestIdleConnectionReaped is the regression test for the unbounded
// keep-alive accumulation bug: with only ReadHeaderTimeout set, a
// keep-alive connection that went quiet was held open forever. With
// IdleTimeout, the server must close it shortly after it goes idle.
func TestIdleConnectionReaped(t *testing.T) {
	addr := startAPIServer(t, 200*time.Millisecond, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	roundTrip(t, conn, rd, addr)

	// The connection is now idle. The server owes us a close (EOF on read)
	// within the idle timeout plus slack.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := rd.ReadByte(); err != io.EOF {
		t.Fatalf("idle connection read = %v after %v, want EOF (server-side reap)",
			err, time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("reap took %v, want within the idle timeout's order", elapsed)
	}
}

// TestKeepAliveSurvivesWithinIdleWindow is the counterpart: a connection
// that keeps making requests inside the idle window is never reaped, so
// the pool reuse the native client depends on still works.
func TestKeepAliveSurvivesWithinIdleWindow(t *testing.T) {
	addr := startAPIServer(t, time.Second, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	for i := 0; i < 5; i++ {
		roundTrip(t, conn, rd, addr)
		time.Sleep(50 * time.Millisecond)
	}
}

// TestLongPollOutlivesIdleTimeout pins the WriteTimeout-stays-0 rationale:
// the idle and read deadlines apply between and while reading requests, not
// to a handler holding the response open — a long poll several times longer
// than the idle timeout must complete normally, not be severed. This guards
// against someone "completing" the timeout set with a WriteTimeout (or
// misapplying IdleTimeout) and breaking long polls.
func TestLongPollOutlivesIdleTimeout(t *testing.T) {
	release := make(chan struct{})
	runner := func(ctx context.Context, spec jobs.Spec) (any, error) {
		select {
		case <-release:
			return map[string]string{"ok": "true"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	addr := startAPIServer(t, 200*time.Millisecond, runner)

	body := strings.NewReader(`{"workload":"bfs","mode":"functional"}`)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()

	// Release the job partway through a 2s long poll — well past the 200ms
	// idle timeout — and require the poll to deliver the terminal snapshot.
	go func() {
		time.Sleep(700 * time.Millisecond)
		close(release)
	}()
	start := time.Now()
	resp2, err := http.Get("http://" + addr + "/v1/jobs/" + submitted.ID + "?wait_ms=2000")
	if err != nil {
		t.Fatalf("long poll severed after %v: %v", time.Since(start), err)
	}
	defer resp2.Body.Close()
	var polled struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&polled); err != nil {
		t.Fatalf("decode poll: %v", err)
	}
	if polled.State != "done" {
		t.Fatalf("long poll state = %q after %v, want done", polled.State, time.Since(start))
	}
}
