// Package dataflow implements the paper's load-classification analysis: a
// backward walk over register definitions (reaching-definitions dataflow plus
// taint propagation) that labels every global load instruction as
// deterministic or non-deterministic.
//
// A load is deterministic when its effective address derives only from
// parameterized data — kernel parameters (ld.param), special registers
// (thread/CTA ids and dimensions), constant-space loads and immediates. It is
// non-deterministic when any contributing definition is a data load
// (ld.global, ld.local, ld.shared, ld.tex) or an atomic return value, i.e.
// the address depends on values read from memory at run time.
package dataflow

import (
	"fmt"
	"sort"

	"critload/internal/isa"
	"critload/internal/ptx"
)

// Class is the paper's two-way load classification.
type Class uint8

// Classification outcomes.
const (
	Deterministic Class = iota
	NonDeterministic
)

func (c Class) String() string {
	if c == Deterministic {
		return "deterministic"
	}
	return "non-deterministic"
}

// RootKind describes one primitive source feeding an address computation.
type RootKind uint8

// Root kinds, from parameterized (deterministic) to data-dependent.
const (
	RootParam      RootKind = iota // ld.param
	RootSpecialReg                 // %tid, %ctaid, ...
	RootImmediate
	RootConstLoad // ld.const
	RootDataLoad  // ld.global/.local/.shared/.tex
	RootAtomic    // atom return value
	RootUndefined // use of a register with no reaching definition
)

var rootNames = map[RootKind]string{
	RootParam: "param", RootSpecialReg: "sreg", RootImmediate: "imm",
	RootConstLoad: "const", RootDataLoad: "data-load", RootAtomic: "atomic",
	RootUndefined: "undef",
}

func (r RootKind) String() string { return rootNames[r] }

// Taints reports whether this root makes a dependent load non-deterministic.
func (r RootKind) Taints() bool { return r == RootDataLoad || r == RootAtomic }

// Root is one primitive contributor to a load's address, with its origin.
type Root struct {
	Kind RootKind
	Inst int    // defining instruction index (-1 for immediates/undef)
	Name string // parameter name or special-register name when applicable
}

// LoadInfo is the classification result for one global load instruction.
type LoadInfo struct {
	InstIndex int
	PC        uint32
	Class     Class
	Roots     []Root // deduplicated primitive sources of the address
}

// Result holds the classification of every global load in a kernel.
type Result struct {
	Kernel *ptx.Kernel
	Loads  []LoadInfo
	byIdx  map[int]int
}

// Load returns the classification record for the global load at instruction
// index i.
func (r *Result) Load(i int) (LoadInfo, bool) {
	j, ok := r.byIdx[i]
	if !ok {
		return LoadInfo{}, false
	}
	return r.Loads[j], true
}

// ClassOf returns the class of the global load at instruction index i.
// Non-load instructions report Deterministic, false.
func (r *Result) ClassOf(i int) (Class, bool) {
	li, ok := r.Load(i)
	return li.Class, ok
}

// Counts returns the number of deterministic and non-deterministic global
// loads (static counts).
func (r *Result) Counts() (det, nondet int) {
	for _, l := range r.Loads {
		if l.Class == Deterministic {
			det++
		} else {
			nondet++
		}
	}
	return det, nondet
}

// String renders a per-PC classification table.
func (r *Result) String() string {
	s := fmt.Sprintf("kernel %s: %d global loads\n", r.Kernel.Name, len(r.Loads))
	for _, l := range r.Loads {
		s += fmt.Sprintf("  PC 0x%03x  %-18s  %s\n", l.PC, l.Class, r.Kernel.Insts[l.InstIndex])
	}
	return s
}

// Classify runs the analysis on kernel k.
func Classify(k *ptx.Kernel) *Result {
	a := newAnalysis(k)
	a.solveReaching()
	a.propagateTaint()

	res := &Result{Kernel: k, byIdx: map[int]int{}}
	for _, idx := range k.GlobalLoads() {
		li := a.classifyLoad(idx)
		res.byIdx[idx] = len(res.Loads)
		res.Loads = append(res.Loads, li)
	}
	return res
}

// ClassifyProgram classifies every kernel of a program.
func ClassifyProgram(p *ptx.Program) map[string]*Result {
	out := make(map[string]*Result, len(p.Kernels))
	for _, k := range p.Kernels {
		out[k.Name] = Classify(k)
	}
	return out
}

// ---------------------------------------------------------------------------
// Reaching definitions + taint fixpoint
// ---------------------------------------------------------------------------

// A definition is an instruction that writes a general register or a
// predicate register. Definitions are numbered densely; predicates live in
// the same def space to keep a single bitset.
type analysis struct {
	k    *ptx.Kernel
	cfg  *ptx.CFG
	defs []defSite // defID -> site
	// defsOfReg[r] / defsOfPred[p]: defIDs writing that register.
	defsOfReg  [][]int
	defsOfPred [][]int
	words      int
	// Per block bitsets.
	gen, kill, in, out []bitset
	// reachingAt[i] is the reaching-def bitset immediately before inst i.
	reachingAt []bitset
	// tainted[d] reports whether def d transitively depends on a data load.
	tainted []bool
}

type defSite struct {
	inst int
	reg  int
	pred bool
}

type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int)         { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)       { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i int) bool    { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) copyFrom(o bitset) { copy(b, o) }
func (b bitset) orInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func newAnalysis(k *ptx.Kernel) *analysis {
	a := &analysis{
		k:          k,
		cfg:        k.CFG(),
		defsOfReg:  make([][]int, k.NumRegs),
		defsOfPred: make([][]int, k.NumPreds),
	}
	for i, in := range k.Insts {
		if r := in.DefReg(); r >= 0 {
			id := len(a.defs)
			a.defs = append(a.defs, defSite{inst: i, reg: r})
			a.defsOfReg[r] = append(a.defsOfReg[r], id)
		}
		if p := in.DefPred(); p >= 0 {
			id := len(a.defs)
			a.defs = append(a.defs, defSite{inst: i, reg: p, pred: true})
			a.defsOfPred[p] = append(a.defsOfPred[p], id)
		}
	}
	a.words = (len(a.defs) + 63) / 64
	if a.words == 0 {
		a.words = 1
	}
	return a
}

// solveReaching computes classic reaching definitions at instruction
// granularity. Guarded (predicated) instructions are *may* definitions: they
// generate their def but do not kill previous ones, which is the conservative
// treatment required for classification soundness.
func (a *analysis) solveReaching() {
	nb := len(a.cfg.Blocks)
	a.gen = make([]bitset, nb)
	a.kill = make([]bitset, nb)
	a.in = make([]bitset, nb)
	a.out = make([]bitset, nb)
	for b := 0; b < nb; b++ {
		a.gen[b] = newBitset(a.words)
		a.kill[b] = newBitset(a.words)
		a.in[b] = newBitset(a.words)
		a.out[b] = newBitset(a.words)
	}

	// Build GEN/KILL per block by forward scan.
	defIDsAt := make(map[int][]int, len(a.defs)) // inst -> defIDs
	for id, d := range a.defs {
		defIDsAt[d.inst] = append(defIDsAt[d.inst], id)
	}
	allOf := func(d defSite) []int {
		if d.pred {
			return a.defsOfPred[d.reg]
		}
		return a.defsOfReg[d.reg]
	}
	for _, blk := range a.cfg.Blocks {
		g, kl := a.gen[blk.ID], a.kill[blk.ID]
		for i := blk.Start; i < blk.End; i++ {
			inst := a.k.Insts[i]
			for _, id := range defIDsAt[i] {
				d := a.defs[id]
				if !inst.Guard.Active() {
					// Strong update: kill all other defs of this register.
					for _, o := range allOf(d) {
						if o != id {
							kl.set(o)
							g.clear(o)
						}
					}
				}
				g.set(id)
				kl.clear(id)
			}
		}
	}

	// Iterate IN/OUT to fixpoint.
	changed := true
	tmp := newBitset(a.words)
	for changed {
		changed = false
		for _, blk := range a.cfg.Blocks {
			in := a.in[blk.ID]
			for _, p := range blk.Pred {
				if in.orInto(a.out[p]) {
					changed = true
				}
			}
			tmp.copyFrom(in)
			tmp.andNot(a.kill[blk.ID])
			if a.out[blk.ID].orInto(tmp) {
				changed = true
			}
			if a.out[blk.ID].orInto(a.gen[blk.ID]) {
				changed = true
			}
		}
	}

	// Per-instruction reaching sets by forward scan within each block.
	n := len(a.k.Insts)
	a.reachingAt = make([]bitset, n)
	cur := newBitset(a.words)
	for _, blk := range a.cfg.Blocks {
		cur.copyFrom(a.in[blk.ID])
		for i := blk.Start; i < blk.End; i++ {
			a.reachingAt[i] = newBitset(a.words)
			a.reachingAt[i].copyFrom(cur)
			inst := a.k.Insts[i]
			for _, id := range defIDsAt[i] {
				d := a.defs[id]
				if !inst.Guard.Active() {
					for _, o := range allOf(d) {
						if o != id {
							cur.clear(o)
						}
					}
				}
				cur.set(id)
			}
		}
	}
}

// rootOf returns the primitive root kind if the defining instruction is a
// leaf of the dependency chain, or ok=false for pass-through arithmetic.
func rootOf(in *isa.Instruction) (RootKind, string, bool) {
	switch in.Op {
	case isa.OpLd:
		switch in.Space {
		case isa.SpaceParam:
			return RootParam, in.Srcs[0].Param, true
		case isa.SpaceConst:
			return RootConstLoad, "", true
		default:
			return RootDataLoad, "", true
		}
	case isa.OpAtom:
		return RootAtomic, "", true
	case isa.OpMov:
		if in.Srcs[0].Kind == isa.OpdSReg {
			return RootSpecialReg, in.Srcs[0].SReg.String(), true
		}
		if in.Srcs[0].Kind == isa.OpdImm || in.Srcs[0].Kind == isa.OpdFImm {
			return RootImmediate, "", true
		}
	}
	return 0, "", false
}

// propagateTaint computes, for every definition, whether it transitively
// depends on a data load, as the least fixpoint of
//
//	tainted(d) = isDataLoadDef(d) OR ∃ use-source s of d's instruction,
//	             ∃ def d' of s reaching d's instruction: tainted(d')
//
// solved with a forward worklist over the def→use-def edges.
func (a *analysis) propagateTaint() {
	a.tainted = make([]bool, len(a.defs))
	// dependsOn[d] = defIDs feeding def d's instruction sources.
	dependsOn := make([][]int, len(a.defs))
	feeds := make([][]int, len(a.defs)) // inverse edges
	for id, d := range a.defs {
		in := a.k.Insts[d.inst]
		if kind, _, isRoot := rootOf(in); isRoot {
			if kind.Taints() {
				a.tainted[id] = true
			}
			continue // leaf: no incoming dependencies
		}
		for _, src := range a.sourceDefs(d.inst) {
			dependsOn[id] = append(dependsOn[id], src)
			feeds[src] = append(feeds[src], id)
		}
	}
	work := make([]int, 0, len(a.defs))
	for id, t := range a.tainted {
		if t {
			work = append(work, id)
		}
	}
	for len(work) > 0 {
		d := work[len(work)-1]
		work = work[:len(work)-1]
		for _, u := range feeds[d] {
			if !a.tainted[u] {
				a.tainted[u] = true
				work = append(work, u)
			}
		}
	}
}

// sourceDefs returns the defIDs reaching instruction i that define any of its
// source registers or predicates (including the guard predicate, which is a
// value dependence for predicated writes, and the guard of selp-like ops).
func (a *analysis) sourceDefs(i int) []int {
	in := a.k.Insts[i]
	reach := a.reachingAt[i]
	var out []int
	seen := map[int]bool{}
	addReg := func(r int) {
		for _, id := range a.defsOfReg[r] {
			if reach.get(id) && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	addPred := func(p int) {
		for _, id := range a.defsOfPred[p] {
			if reach.get(id) && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	var regs []int
	for _, r := range in.SourceRegs(regs) {
		addReg(r)
	}
	for s := 0; s < in.NSrc; s++ {
		if in.Srcs[s].Kind == isa.OpdPred {
			addPred(in.Srcs[s].Reg)
		}
	}
	if in.Guard.Active() {
		addPred(in.Guard.Reg)
	}
	return out
}

// classifyLoad performs the backward walk from the address register of the
// global load at instruction idx, collecting primitive roots and the final
// class.
func (a *analysis) classifyLoad(idx int) LoadInfo {
	in := a.k.Insts[idx]
	li := LoadInfo{InstIndex: idx, PC: in.PC, Class: Deterministic}

	addrReg, ok := in.AddrReg()
	if !ok {
		// Absolute-address load: a pure immediate address is deterministic.
		li.Roots = append(li.Roots, Root{Kind: RootImmediate, Inst: -1})
		return li
	}

	// Seed: defs of the address register reaching the load.
	reach := a.reachingAt[idx]
	var stack []int
	seen := map[int]bool{}
	found := false
	for _, id := range a.defsOfReg[addrReg] {
		if reach.get(id) {
			stack = append(stack, id)
			seen[id] = true
			found = true
		}
	}
	if !found {
		li.Roots = append(li.Roots, Root{Kind: RootUndefined, Inst: -1})
		return li
	}

	rootSeen := map[Root]bool{}
	addRoot := func(r Root) {
		if !rootSeen[r] {
			rootSeen[r] = true
			li.Roots = append(li.Roots, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := a.defs[id]
		din := a.k.Insts[d.inst]
		if a.tainted[id] {
			li.Class = NonDeterministic
		}
		if kind, name, isRoot := rootOf(din); isRoot {
			addRoot(Root{Kind: kind, Inst: d.inst, Name: name})
			continue
		}
		// Pass-through: note immediate sources and keep walking.
		for s := 0; s < din.NSrc; s++ {
			if din.Srcs[s].Kind == isa.OpdImm || din.Srcs[s].Kind == isa.OpdFImm {
				addRoot(Root{Kind: RootImmediate, Inst: -1})
			}
			if din.Srcs[s].Kind == isa.OpdSReg {
				addRoot(Root{Kind: RootSpecialReg, Inst: d.inst, Name: din.Srcs[s].SReg.String()})
			}
		}
		for _, src := range a.sourceDefs(d.inst) {
			if !seen[src] {
				seen[src] = true
				stack = append(stack, src)
			}
		}
	}
	sort.Slice(li.Roots, func(x, y int) bool {
		if li.Roots[x].Kind != li.Roots[y].Kind {
			return li.Roots[x].Kind < li.Roots[y].Kind
		}
		return li.Roots[x].Inst < li.Roots[y].Inst
	})
	return li
}
