package dataflow

import (
	"testing"

	"critload/internal/ptx"
)

// classify parses a single-kernel source and classifies its loads.
func classify(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Classify(prog.Kernels[0])
}

// classes returns the class of each global load in program order.
func classes(r *Result) []Class {
	out := make([]Class, len(r.Loads))
	for i, l := range r.Loads {
		out[i] = l.Class
	}
	return out
}

func TestClassifyLinearIndexing(t *testing.T) {
	// a[tid] with tid = ctaid*ntid + tid.x: the paper's canonical
	// deterministic load.
	r := classify(t, `
.kernel lin
.param .u32 a
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [a];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    exit;
`)
	if got := classes(r); len(got) != 1 || got[0] != Deterministic {
		t.Errorf("classes = %v, want [deterministic]", got)
	}
	// Roots should include the param and the special registers.
	roots := r.Loads[0].Roots
	var haveParam, haveSreg bool
	for _, rt := range roots {
		if rt.Kind == RootParam && rt.Name == "a" {
			haveParam = true
		}
		if rt.Kind == RootSpecialReg {
			haveSreg = true
		}
	}
	if !haveParam || !haveSreg {
		t.Errorf("roots = %+v, want param 'a' and special registers", roots)
	}
}

func TestClassifyIndirectLoad(t *testing.T) {
	// b[a[tid]]: the inner load is deterministic, the outer one is not.
	r := classify(t, `
.kernel ind
.param .u32 a
.param .u32 b
    mov.u32      %r0, %tid.x;
    ld.param.u32 %r1, [a];
    shl.u32      %r2, %r0, 2;
    add.u32      %r3, %r1, %r2;
    ld.global.u32 %r4, [%r3];    // a[tid]: deterministic
    ld.param.u32 %r5, [b];
    shl.u32      %r6, %r4, 2;
    add.u32      %r7, %r5, %r6;
    ld.global.u32 %r8, [%r7];    // b[a[tid]]: non-deterministic
    exit;
`)
	want := []Class{Deterministic, NonDeterministic}
	got := classes(r)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("classes = %v, want %v", got, want)
	}
	// The non-deterministic load must report a data-load root.
	var haveDataRoot bool
	for _, rt := range r.Loads[1].Roots {
		if rt.Kind == RootDataLoad {
			haveDataRoot = true
		}
	}
	if !haveDataRoot {
		t.Errorf("roots of indirect load = %+v, want data-load root", r.Loads[1].Roots)
	}
}

func TestClassifyBFSKernel(t *testing.T) {
	// The paper's Code 1 pattern: mask/nodes loads deterministic, the
	// edge-indexed loads non-deterministic.
	r := classify(t, `
.kernel bfs_step
.param .u32 g_mask
.param .u32 g_nodes
.param .u32 g_edges
.param .u32 g_visited
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [g_mask];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];               // D: mask[tid]
    ld.param.u32 %r8, [g_nodes];
    add.u32      %r9, %r8, %r5;
    ld.global.u32 %r10, [%r9];              // D: nodes[tid].start
    ld.global.u32 %r11, [%r9+4];            // D: nodes[tid].count
    add.u32      %r12, %r10, %r11;
LOOP:
    setp.ge.u32  %p2, %r10, %r12;
@%p2 bra EXIT;
    ld.param.u32 %r13, [g_edges];
    shl.u32      %r14, %r10, 2;
    add.u32      %r15, %r13, %r14;
    ld.global.u32 %r16, [%r15];             // N: edges[i], i from loaded start
    ld.param.u32 %r17, [g_visited];
    shl.u32      %r18, %r16, 2;
    add.u32      %r19, %r17, %r18;
    ld.global.u32 %r20, [%r19];             // N: visited[id]
    add.u32      %r10, %r10, 1;
    bra LOOP;
EXIT:
    exit;
`)
	want := []Class{Deterministic, Deterministic, Deterministic, NonDeterministic, NonDeterministic}
	got := classes(r)
	if len(got) != len(want) {
		t.Fatalf("classes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("load %d (PC 0x%x): %v, want %v", i, r.Loads[i].PC, got[i], want[i])
		}
	}
	det, nondet := r.Counts()
	if det != 3 || nondet != 2 {
		t.Errorf("Counts = %d,%d want 3,2", det, nondet)
	}
}

func TestClassifyLoopInductionStaysDeterministic(t *testing.T) {
	// An induction variable seeded from tid and incremented in a loop must
	// remain deterministic even though its defs form a cycle.
	r := classify(t, `
.kernel loopdet
.param .u32 a
    mov.u32      %r0, %tid.x;
    ld.param.u32 %r1, [a];
LOOP:
    shl.u32      %r2, %r0, 2;
    add.u32      %r3, %r1, %r2;
    ld.global.u32 %r4, [%r3];   // a[i]: deterministic for every iteration
    add.u32      %r0, %r0, 32;
    setp.lt.u32  %p0, %r0, 4096;
@%p0 bra LOOP;
    exit;
`)
	if got := classes(r); len(got) != 1 || got[0] != Deterministic {
		t.Errorf("classes = %v, want [deterministic]", got)
	}
}

func TestClassifyLoopCarriedPointerChase(t *testing.T) {
	// Pointer chasing: p = load(p) in a loop. The load's address depends on
	// its own previous result — non-deterministic via the loop-carried def.
	r := classify(t, `
.kernel chase
.param .u32 head
    ld.param.u32 %r0, [head];
LOOP:
    ld.global.u32 %r0, [%r0];   // p = *p
    setp.ne.u32  %p0, %r0, 0;
@%p0 bra LOOP;
    exit;
`)
	if got := classes(r); len(got) != 1 || got[0] != NonDeterministic {
		t.Errorf("classes = %v, want [non-deterministic]", got)
	}
}

func TestClassifySharedLoadTaints(t *testing.T) {
	// Addresses computed from shared-memory loads are non-deterministic
	// (the paper lists ld.shared among the tainting loads).
	r := classify(t, `
.kernel sh
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    ld.shared.u32 %r2, [%r1];
    ld.param.u32 %r3, [a];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    exit;
`)
	if got := classes(r); len(got) != 1 || got[0] != NonDeterministic {
		t.Errorf("classes = %v, want [non-deterministic]", got)
	}
}

func TestClassifyConstLoadDoesNotTaint(t *testing.T) {
	r := classify(t, `
.kernel cst
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    ld.const.u32 %r2, [%r1];
    ld.param.u32 %r3, [a];
    add.u32      %r4, %r3, %r2;
    ld.global.u32 %r5, [%r4];
    exit;
`)
	if got := classes(r); len(got) != 1 || got[0] != Deterministic {
		t.Errorf("classes = %v, want [deterministic]", got)
	}
}

func TestClassifyAtomicTaints(t *testing.T) {
	r := classify(t, `
.kernel at
.param .u32 a
.param .u32 ctr
    ld.param.u32 %r0, [ctr];
    atom.global.add.u32 %r1, [%r0], 1;
    ld.param.u32 %r2, [a];
    shl.u32      %r3, %r1, 2;
    add.u32      %r4, %r2, %r3;
    ld.global.u32 %r5, [%r4];   // indexed by atomic ticket: non-deterministic
    exit;
`)
	if got := classes(r); len(got) != 1 || got[0] != NonDeterministic {
		t.Errorf("classes = %v, want [non-deterministic]", got)
	}
}

func TestClassifyPredicatedDefsMerge(t *testing.T) {
	// One reaching def is tainted, the other is not: the load must be
	// classified non-deterministic (may-analysis).
	r := classify(t, `
.kernel phi
.param .u32 a
.param .u32 b
    mov.u32      %r0, %tid.x;
    setp.lt.u32  %p0, %r0, 16;
    ld.param.u32 %r1, [a];
    ld.param.u32 %r2, [b];
    shl.u32      %r3, %r0, 2;
    add.u32      %r4, %r1, %r3;
@%p0 ld.global.u32 %r5, [%r4];  // may define %r5 with loaded data
@!%p0 mov.u32    %r5, %r0;      // or with tid
    shl.u32      %r6, %r5, 2;
    add.u32      %r7, %r2, %r6;
    ld.global.u32 %r8, [%r7];   // depends on maybe-loaded %r5
    exit;
`)
	got := classes(r)
	if len(got) != 2 {
		t.Fatalf("loads = %d, want 2", len(got))
	}
	if got[0] != Deterministic {
		t.Errorf("guarded a[tid] load = %v, want deterministic", got[0])
	}
	if got[1] != NonDeterministic {
		t.Errorf("merged-def load = %v, want non-deterministic", got[1])
	}
}

func TestClassifyKillRestoresDeterminism(t *testing.T) {
	// A register is first defined by a data load but then strongly
	// overwritten with a parameterized value before the address use: the
	// old def must not reach the load.
	r := classify(t, `
.kernel kill
.param .u32 a
    ld.param.u32 %r1, [a];
    ld.global.u32 %r0, [%r1];   // load (deterministic itself)
    mov.u32      %r0, %tid.x;   // strong overwrite kills the loaded def
    shl.u32      %r2, %r0, 2;
    add.u32      %r3, %r1, %r2;
    ld.global.u32 %r4, [%r3];
    exit;
`)
	got := classes(r)
	if len(got) != 2 || got[1] != Deterministic {
		t.Errorf("classes = %v, want second load deterministic", got)
	}
}

func TestClassifyAbsoluteAddressLoad(t *testing.T) {
	r := classify(t, `
.kernel abs
    ld.global.u32 %r0, [65536];
    exit;
`)
	got := classes(r)
	if len(got) != 1 || got[0] != Deterministic {
		t.Errorf("classes = %v, want [deterministic]", got)
	}
	if len(r.Loads[0].Roots) != 1 || r.Loads[0].Roots[0].Kind != RootImmediate {
		t.Errorf("roots = %+v, want [imm]", r.Loads[0].Roots)
	}
}

func TestClassifyUndefinedAddress(t *testing.T) {
	r := classify(t, `
.kernel undef
    ld.global.u32 %r0, [%r9];
    exit;
`)
	got := classes(r)
	if len(got) != 1 {
		t.Fatalf("loads = %d, want 1", len(got))
	}
	if len(r.Loads[0].Roots) != 1 || r.Loads[0].Roots[0].Kind != RootUndefined {
		t.Errorf("roots = %+v, want [undef]", r.Loads[0].Roots)
	}
}

func TestClassifyProgramCoversAllKernels(t *testing.T) {
	prog, err := ptx.Parse(`
.kernel k1
.param .u32 a
    ld.param.u32 %r0, [a];
    ld.global.u32 %r1, [%r0];
    exit;
.kernel k2
    exit;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res := ClassifyProgram(prog)
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if len(res["k1"].Loads) != 1 || len(res["k2"].Loads) != 0 {
		t.Errorf("load counts wrong: k1=%d k2=%d", len(res["k1"].Loads), len(res["k2"].Loads))
	}
}

func TestResultStringIncludesPCs(t *testing.T) {
	r := classify(t, `
.kernel s
.param .u32 a
    ld.param.u32 %r0, [a];
    ld.global.u32 %r1, [%r0];
    exit;
`)
	s := r.String()
	if s == "" || len(r.Loads) != 1 {
		t.Fatalf("unexpected result %q", s)
	}
}
