package dataflow

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"critload/internal/ptx"
)

// genProgram builds a random straight-line kernel: a pool of registers is
// initialized from parameterized sources, then arithmetic ops mix them, with
// optional data loads whose results may or may not feed the final load's
// address register.
func genProgram(rng *rand.Rand, withDataLoad bool) (string, bool) {
	var b strings.Builder
	b.WriteString(".kernel rndk\n.param .u32 base\n")
	nRegs := 4 + rng.Intn(6)
	// Initialize each register from a deterministic source.
	for r := 0; r < nRegs; r++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "mov.u32 %%r%d, %%tid.x;\n", r)
		case 1:
			fmt.Fprintf(&b, "mov.u32 %%r%d, %d;\n", r, rng.Intn(100))
		default:
			fmt.Fprintf(&b, "ld.param.u32 %%r%d, [base];\n", r)
		}
	}
	// A data load may taint one register.
	tainted := -1
	if withDataLoad {
		tainted = rng.Intn(nRegs)
		fmt.Fprintf(&b, "ld.param.u32 %%r%d, [base];\n", nRegs) // address source
		fmt.Fprintf(&b, "ld.global.u32 %%r%d, [%%r%d];\n", tainted, nRegs)
	}
	// Random arithmetic propagates values (and taint) around.
	taintSet := map[int]bool{}
	if tainted >= 0 {
		taintSet[tainted] = true
	}
	ops := []string{"add", "sub", "mul", "and", "or", "xor", "min", "max"}
	for i := 0; i < 10+rng.Intn(10); i++ {
		d, a, bb := rng.Intn(nRegs), rng.Intn(nRegs), rng.Intn(nRegs)
		fmt.Fprintf(&b, "%s.u32 %%r%d, %%r%d, %%r%d;\n", ops[rng.Intn(len(ops))], d, a, bb)
		taintSet[d] = taintSet[a] || taintSet[bb]
	}
	// The final load uses a random register as its address.
	addr := rng.Intn(nRegs)
	fmt.Fprintf(&b, "ld.global.u32 %%r%d, [%%r%d];\nexit;\n", nRegs+1, addr)
	return b.String(), taintSet[addr]
}

// TestQuickClassifierMatchesReferenceTaint cross-checks the dataflow
// classifier against an independent straight-line taint interpreter on
// randomly generated programs.
func TestQuickClassifierMatchesReferenceTaint(t *testing.T) {
	f := func(seed int64, withLoad bool) bool {
		rng := rand.New(rand.NewSource(seed))
		src, wantTainted := genProgram(rng, withLoad)
		prog, err := ptx.Parse(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		res := Classify(prog.Kernels[0])
		// The final load is the last classified load.
		last := res.Loads[len(res.Loads)-1]
		got := last.Class == NonDeterministic
		if got != wantTainted {
			t.Logf("mismatch (want tainted=%v):\n%s", wantTainted, src)
		}
		return got == wantTainted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickNoDataLoadNeverNonDet: a program without any data load can never
// produce a non-deterministic classification.
func TestQuickNoDataLoadNeverNonDet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, _ := genProgram(rng, false)
		prog, err := ptx.Parse(src)
		if err != nil {
			return false
		}
		res := Classify(prog.Kernels[0])
		for _, l := range res.Loads {
			if l.Class == NonDeterministic {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
