package difftest

import (
	"testing"

	"critload/internal/checkpoint"
	"critload/internal/experiments"
	"critload/internal/gpu"
	"critload/internal/workloads"
)

// ckptSmokeSizes mirrors the experiments package's timing smoke sizes: the
// smallest problem per workload that still exercises multiple CTAs and, for
// the iterative workloads, multiple kernel launches.
var ckptSmokeSizes = map[string]int{
	"2mm": 32, "gaus": 24, "grm": 24, "lu": 24, "spmv": 1024,
	"htw": 32, "mriq": 256, "dwt": 64, "bpr": 512, "srad": 32,
	"bfs": 1024, "sssp": 512, "ccl": 512, "mst": 256, "mis": 512,
}

// ckptEngines are the three cycle engines the fifth oracle must hold across.
var ckptEngines = []struct {
	name string
	cfg  func() gpu.Config
}{
	{"serial", func() gpu.Config {
		cfg := gpu.DefaultConfig()
		cfg.FastForward = false
		return cfg
	}},
	{"ff", gpu.DefaultConfig},
	{"parallel", func() gpu.Config {
		cfg := gpu.DefaultConfig()
		cfg.Parallel = true
		cfg.Workers = 4
		return cfg
	}},
}

// TestCheckpointResumeMatchesColdAllWorkloads is the workload-scale half of
// the fifth oracle: for every workload, a serial cold run populates a
// checkpoint store, then each engine re-runs warm from those checkpoints and
// must reproduce its own cold run byte-for-byte (collector, cycle counts,
// verified outputs). Sharing one store across engines also proves checkpoints
// written by one engine restore correctly under another — the prefix key
// deliberately ignores engine selection.
func TestCheckpointResumeMatchesColdAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep; skipped in -short mode")
	}
	for _, name := range workloads.Names() {
		size, ok := ckptSmokeSizes[name]
		if !ok {
			t.Fatalf("no smoke size for workload %q", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			store, err := checkpoint.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			base := experiments.Options{Size: size, Seed: 7}

			// Populate the store with a serial cold run.
			seedOpts := base
			seedCfg := ckptEngines[0].cfg()
			seedOpts.GPU = &seedCfg
			seedOpts.Checkpoints = store
			seeded, err := experiments.RunTiming(name, seedOpts)
			if err != nil {
				t.Fatalf("seeding run: %v", err)
			}
			if seeded.WarmStartIndex != 0 {
				t.Fatalf("seeding run warm-started at %d over an empty store", seeded.WarmStartIndex)
			}

			for _, eng := range ckptEngines {
				eng := eng
				t.Run(eng.name, func(t *testing.T) {
					cold := base
					cfg := eng.cfg()
					cold.GPU = &cfg
					ref, err := experiments.RunTiming(name, cold)
					if err != nil {
						t.Fatalf("cold run: %v", err)
					}

					warm := cold
					warm.Checkpoints = store
					got, err := experiments.RunTiming(name, warm)
					if err != nil {
						t.Fatalf("warm run: %v", err)
					}
					if got.WarmStartIndex < 1 {
						t.Fatalf("warm run did not resume (WarmStartIndex = %d)", got.WarmStartIndex)
					}
					if got.WarmStartCycles <= 0 {
						t.Fatalf("warm run inherited %d cycles", got.WarmStartCycles)
					}
					if diffs := experiments.DiffRuns(ref, got); len(diffs) > 0 {
						t.Fatalf("warm run diverges from cold:\n%s", diffs[0])
					}
					if err := got.Instance.Verify(); err != nil {
						t.Fatalf("warm run failed verification: %v", err)
					}
				})
			}

			if st := store.Stats(); st.Hits == 0 || st.CyclesSkipped == 0 {
				t.Fatalf("store never warm-started a run: %+v", st)
			}
		})
	}
}
