package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"critload/internal/dataflow"
	"critload/internal/kgen"
)

// replayDir runs every committed case under dir through the four oracles.
// Returns how many cases ran and the class totals.
func replayDir(t *testing.T, dir string) (n, det, nondet int) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.ptx"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			c, err := kgen.LoadCase(f)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			rep := Check(c, Options{})
			for _, d := range rep.Divergences {
				t.Errorf("%s", d)
			}
		})
		c, err := kgen.LoadCase(f)
		if err != nil {
			continue
		}
		n++
		for _, cls := range c.Want {
			if cls == dataflow.Deterministic {
				det++
			} else {
				nondet++
			}
		}
	}
	return n, det, nondet
}

// TestCorpusReplay replays the committed regression corpus on plain
// `go test`, so tier-1 catches oracle regressions without any fuzzing. The
// corpus is decoupled from the generator: cases are reparsed from their
// .ptx/.json pair, so they stay valid as the generator evolves.
func TestCorpusReplay(t *testing.T) {
	n, det, nondet := replayDir(t, filepath.Join("testdata", "corpus"))
	if n < 10 {
		t.Fatalf("committed corpus has %d cases; want at least 10", n)
	}
	if det == 0 || nondet == 0 {
		t.Errorf("corpus ground truth must cover both classes, got det=%d nondet=%d", det, nondet)
	}
}

// TestRegressionReplay replays shrunk findings from past fuzz campaigns
// (none is also fine — an empty directory means no bug has ever escaped).
func TestRegressionReplay(t *testing.T) {
	dir := filepath.Join("testdata", "regressions")
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		t.Skip("no regressions directory")
	}
	replayDir(t, dir)
}
