// Package difftest is the differential-testing harness over generated
// kernels (internal/kgen). Every case runs through four independent
// oracles:
//
//  1. classification — dataflow.Classify must reproduce the generator's
//     ground-truth D/N label for every global load;
//  2. functional — the emulator must produce identical final memory across
//     repeated runs, and all timing engines must leave memory in the same
//     state the emulator does;
//  3. timing — the fast-forward and serial cycle engines must produce
//     byte-identical statistics collectors and cycle counts (the PR 3
//     comparator, via experiments.DiffRuns);
//  4. parallel — the phase-barrier parallel engine must match engine A the
//     same way, so every fuzzed kernel also exercises the concurrent cycle
//     loop;
//  5. checkpoint — snapshotting the device at a kernel-launch boundary,
//     restoring into a fresh device, and resuming must be byte-identical
//     (collector, cycle counts, final memory) to simulating straight
//     through, so every fuzzed kernel also exercises the serialization
//     contract of internal/checkpoint.
//
// A clean Check means all five agree; any Divergence is a bug in exactly
// one of the generator, the classifier, the emulator, a cycle engine, or
// the checkpoint codec — which is the point.
package difftest

import (
	"fmt"
	"sort"

	"critload/internal/dataflow"
	"critload/internal/emu"
	"critload/internal/experiments"
	"critload/internal/gpu"
	"critload/internal/kgen"
	"critload/internal/stats"
)

// DefaultMaxCycles bounds each timing run; generated kernels finish in a few
// thousand cycles, so hitting this is itself a livelock bug.
const DefaultMaxCycles = 2_000_000

// DefaultMaxWarpInsts bounds each functional run the same way.
const DefaultMaxWarpInsts = 4_000_000

// Options configures a differential check.
type Options struct {
	// GPUA and GPUB build the two timing configurations to compare.
	// Defaults: A = serial loop, B = fast-forward, both Table II.
	GPUA, GPUB func() gpu.Config
	// GPUP builds the parallel-engine configuration for the fourth oracle.
	// Default: fast-forward + Parallel at 4 workers. SkipParallel drops the
	// oracle entirely (for callers that only study the serial engines).
	GPUP         func() gpu.Config
	SkipParallel bool
	// GPUAd builds the adaptive-engine variant of the fourth oracle.
	// Default: the parallel configuration plus the adaptive controller with
	// the negative-threshold test hook, so fuzzed kernels drive the
	// phase-fusion and inline/pooled transitions on any host instead of
	// demoting to the (already covered) serial loop body. SkipParallel
	// drops this variant too.
	GPUAd func() gpu.Config
	// SkipCheckpoint drops the fifth oracle (snapshot/restore byte-identity),
	// for callers that only study the live engines.
	SkipCheckpoint bool
	// MaxCycles overrides DefaultMaxCycles (0 = default).
	MaxCycles int64
	// MaxWarpInsts overrides DefaultMaxWarpInsts for emulator runs.
	MaxWarpInsts uint64
}

func (o Options) gpuA() gpu.Config {
	if o.GPUA != nil {
		return o.GPUA()
	}
	cfg := gpu.DefaultConfig()
	cfg.FastForward = false
	return cfg
}

func (o Options) gpuB() gpu.Config {
	if o.GPUB != nil {
		return o.GPUB()
	}
	return gpu.DefaultConfig()
}

func (o Options) gpuP() gpu.Config {
	if o.GPUP != nil {
		return o.GPUP()
	}
	cfg := gpu.DefaultConfig()
	cfg.Parallel = true
	cfg.Workers = 4
	return cfg
}

func (o Options) gpuAd() gpu.Config {
	if o.GPUAd != nil {
		return o.GPUAd()
	}
	cfg := o.gpuP()
	cfg.Adaptive = true
	cfg.AdaptiveThreshold = -4
	return cfg
}

func (o Options) maxCycles() int64 {
	if o.MaxCycles > 0 {
		return o.MaxCycles
	}
	return DefaultMaxCycles
}

func (o Options) maxWarpInsts() uint64 {
	if o.MaxWarpInsts > 0 {
		return o.MaxWarpInsts
	}
	return DefaultMaxWarpInsts
}

// Divergence is one oracle disagreement.
type Divergence struct {
	Oracle string // "classify", "functional", "timing", "parallel" or "checkpoint"
	Detail string
}

func (d Divergence) String() string { return d.Oracle + ": " + d.Detail }

// Report is the outcome of one differential check.
type Report struct {
	Case        *kgen.Case
	Divergences []Divergence
	// Det and NonDet count the ground-truth classes of the case.
	Det, NonDet int
}

// Failed reports whether any oracle disagreed.
func (r *Report) Failed() bool { return len(r.Divergences) > 0 }

func (r *Report) add(oracle, format string, args ...any) {
	r.Divergences = append(r.Divergences, Divergence{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

// Check runs a case through all five oracles.
func Check(c *kgen.Case, opts Options) *Report {
	rep := &Report{Case: c}
	for _, cls := range c.Want {
		if cls == dataflow.Deterministic {
			rep.Det++
		} else {
			rep.NonDet++
		}
	}

	// Oracle 1: classification.
	got := map[int]dataflow.Class{}
	for _, li := range dataflow.Classify(c.Kernel).Loads {
		got[li.InstIndex] = li.Class
	}
	idxs := map[int]bool{}
	for i := range got {
		idxs[i] = true
	}
	for i := range c.Want {
		idxs[i] = true
	}
	ordered := make([]int, 0, len(idxs))
	for i := range idxs {
		ordered = append(ordered, i)
	}
	sort.Ints(ordered)
	for _, i := range ordered {
		w, wok := c.Want[i]
		g, gok := got[i]
		switch {
		case !wok:
			rep.add("classify", "inst %d: classifier found a load the generator did not label", i)
		case !gok:
			rep.add("classify", "inst %d: generator labeled a load the classifier did not find", i)
		case w != g:
			rep.add("classify", "inst %d (%s): generator built %v, classifier says %v",
				i, c.Kernel.Insts[i], w, g)
		}
	}

	// Oracle 2a: functional determinism of the emulator itself.
	snapRef, err := runEmu(c, opts)
	if err != nil {
		rep.add("functional", "emulator run: %v", err)
		return rep
	}
	snap2, err := runEmu(c, opts)
	if err != nil {
		rep.add("functional", "emulator rerun: %v", err)
		return rep
	}
	if d := diffSnapshots(snapRef, snap2); d != "" {
		rep.add("functional", "emulator disagrees with itself across runs: %s", d)
	}

	// Oracle 3 (+2b): the two timing engines against each other and —
	// functionally — against the emulator.
	runA, snapA, errA := runTiming(c, opts.gpuA(), opts.maxCycles())
	runB, snapB, errB := runTiming(c, opts.gpuB(), opts.maxCycles())
	if errA != nil || errB != nil {
		if fmt.Sprint(errA) != fmt.Sprint(errB) {
			rep.add("timing", "engines disagree on errors: A=%v B=%v", errA, errB)
		} else {
			rep.add("timing", "both engines failed: %v", errA)
		}
		return rep
	}
	for _, d := range experiments.DiffRuns(runA, runB) {
		rep.add("timing", "%s", d)
	}
	if d := diffSnapshots(snapRef, snapA); d != "" {
		rep.add("functional", "engine A memory differs from emulator: %s", d)
	}
	if d := diffSnapshots(snapRef, snapB); d != "" {
		rep.add("functional", "engine B memory differs from emulator: %s", d)
	}

	// Oracle 4: the parallel phase-barrier engine against engine A, plus its
	// final memory against the emulator — once in the plain configuration and
	// once with the adaptive controller, so both the always-pooled and the
	// fused/inline/pooled cycle paths see every fuzzed kernel.
	if !opts.SkipParallel {
		for _, v := range []struct {
			name string
			cfg  gpu.Config
		}{{"parallel", opts.gpuP()}, {"adaptive", opts.gpuAd()}} {
			runP, snapP, errP := runTiming(c, v.cfg, opts.maxCycles())
			if errP != nil {
				// Engine A succeeded (errors returned above), so any parallel
				// failure is a divergence on its own.
				rep.add("parallel", "%s engine failed where A succeeded: %v", v.name, errP)
				return rep
			}
			for _, d := range experiments.DiffRuns(runA, runP) {
				rep.add("parallel", "%s: %s", v.name, d)
			}
			if d := diffSnapshots(snapRef, snapP); d != "" {
				rep.add("parallel", "%s engine memory differs from emulator: %s", v.name, d)
			}
		}
	}

	// Oracle 5: checkpoint/restore. Launch the kernel twice so the second
	// launch starts from non-trivial persistent state (warm caches, open DRAM
	// rows, accumulated statistics). The resumed variant snapshots the device
	// after launch one, restores into a brand-new device over a fresh
	// environment, and runs launch two there; it must be byte-identical —
	// collector, cycle counts, final memory — to running both launches
	// straight through.
	if !opts.SkipCheckpoint {
		runS, snapS, errS := runTimingResumed(c, opts.gpuB(), opts.maxCycles(), false)
		runR, snapR, errR := runTimingResumed(c, opts.gpuB(), opts.maxCycles(), true)
		if errS != nil || errR != nil {
			if fmt.Sprint(errS) != fmt.Sprint(errR) {
				rep.add("checkpoint", "straight-through and resumed runs disagree on errors: %v vs %v", errS, errR)
			}
			// Identical errors mean the double launch hit a shared limit the
			// same way on both paths — not a checkpoint divergence.
			return rep
		}
		for _, d := range experiments.DiffRuns(runS, runR) {
			rep.add("checkpoint", "%s", d)
		}
		if d := diffSnapshots(snapS, snapR); d != "" {
			rep.add("checkpoint", "resumed-run memory differs from straight-through: %s", d)
		}
	}
	return rep
}

// runEmu executes the case on the functional emulator and returns the
// mutable-memory snapshot.
func runEmu(c *kgen.Case, opts Options) ([]uint32, error) {
	env := c.NewEnv()
	res, err := emu.Run(&emu.Env{Mem: env.Mem, Launch: env.Launch},
		emu.RunOptions{MaxWarpInsts: opts.maxWarpInsts()})
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		return nil, fmt.Errorf("run exceeded %d warp instructions", opts.maxWarpInsts())
	}
	return env.Snapshot(), nil
}

// runTiming executes the case on one cycle engine.
func runTiming(c *kgen.Case, cfg gpu.Config, maxCycles int64) (*experiments.Run, []uint32, error) {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = maxCycles
	}
	env := c.NewEnv()
	col := stats.New()
	g, err := gpu.New(cfg, env.Mem, col)
	if err != nil {
		return nil, nil, err
	}
	if err := g.LaunchKernel(env.Launch); err != nil {
		return nil, nil, err
	}
	r := &experiments.Run{Col: col, Cycles: g.Cycle(), SkippedCycles: g.SkippedCycles}
	return r, env.Snapshot(), nil
}

// runTimingResumed executes the case's kernel twice on one logical device.
// With resume=false both launches run on the same GPU; with resume=true the
// device state is serialized after the first launch and restored into a fresh
// GPU over a fresh environment before the second. Both variants get doubled
// cycle headroom since two launches share one cycle counter.
func runTimingResumed(c *kgen.Case, cfg gpu.Config, maxCycles int64, resume bool) (*experiments.Run, []uint32, error) {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2 * maxCycles
	}
	env := c.NewEnv()
	col := stats.New()
	g, err := gpu.New(cfg, env.Mem, col)
	if err != nil {
		return nil, nil, err
	}
	if err := g.LaunchKernel(env.Launch); err != nil {
		return nil, nil, err
	}
	if resume {
		blob, err := g.Snapshot()
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot: %w", err)
		}
		env2 := c.NewEnv()
		col2 := stats.New()
		g2, err := gpu.New(cfg, env2.Mem, col2)
		if err != nil {
			return nil, nil, err
		}
		if err := g2.Restore(blob); err != nil {
			return nil, nil, fmt.Errorf("restore: %w", err)
		}
		env, col, g = env2, col2, g2
	}
	if err := g.LaunchKernel(env.Launch); err != nil {
		return nil, nil, err
	}
	r := &experiments.Run{Col: col, Cycles: g.Cycle(), SkippedCycles: g.SkippedCycles}
	return r, env.Snapshot(), nil
}

// diffSnapshots compares two mutable-memory snapshots, reporting the first
// few differing words.
func diffSnapshots(a, b []uint32) string {
	if len(a) != len(b) {
		return fmt.Sprintf("snapshot sizes differ: %d vs %d words", len(a), len(b))
	}
	var diffs []string
	for i := range a {
		if a[i] != b[i] {
			diffs = append(diffs, fmt.Sprintf("word %d: %#x vs %#x", i, a[i], b[i]))
			if len(diffs) == 4 {
				diffs = append(diffs, "...")
				break
			}
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	s := diffs[0]
	for _, d := range diffs[1:] {
		s += ", " + d
	}
	return s
}
