package difftest

import (
	"testing"

	"critload/internal/kgen"
)

// FuzzKernelDifferential feeds generator seeds through the full three-oracle
// check. The seed corpus doubles as a quick differential test on plain
// `go test`; under -fuzz the engine explores the seed space guided by
// coverage of the generator, emulator, both cycle engines and the
// classifier.
func FuzzKernelDifferential(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	// A few spicier corners: large magnitudes and sign boundaries.
	f.Add(int64(-1))
	f.Add(int64(1) << 62)
	f.Add(int64(-1) << 62)
	f.Fuzz(func(t *testing.T, seed int64) {
		c, err := kgen.Build(kgen.Generate(seed, kgen.DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d: generator must always build: %v", seed, err)
		}
		rep := Check(c, Options{})
		if rep.Failed() {
			for _, d := range rep.Divergences {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("kernel:\n%s", c.Kernel.Disassemble())
		}
	})
}
