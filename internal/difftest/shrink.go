package difftest

import (
	"critload/internal/kgen"
)

// Shrink greedily minimizes a failing program: it deletes op chunks in
// decreasing sizes (ddmin-style), repairing each candidate back to a
// well-formed program, and keeps any candidate on which stillFails holds.
// The returned program is 1-minimal up to Repair: deleting any single
// further op makes the failure disappear (or the repair re-grows the list).
//
// stillFails must be deterministic; maxChecks bounds how many candidate
// programs are evaluated (0 = a generous default), since each check can
// involve four engine runs.
func Shrink(p *kgen.Prog, stillFails func(*kgen.Prog) bool, maxChecks int) *kgen.Prog {
	if maxChecks <= 0 {
		maxChecks = 2000
	}
	checks := 0
	tryFails := func(q *kgen.Prog) bool {
		if checks >= maxChecks {
			return false
		}
		checks++
		return stillFails(q)
	}

	cur := kgen.Repair(p)
	if !tryFails(cur) {
		// Repair changed behavior (or the failure was flaky): fall back to
		// the original, unshrunk program.
		return p
	}
	for improved := true; improved; {
		improved = false
		for chunk := len(cur.Ops); chunk >= 1 && !improved; chunk = chunk / 2 {
			for lo := 0; lo+chunk <= len(cur.Ops); lo++ {
				cand := cur.Clone()
				cand.Ops = append(append([]kgen.Op(nil), cand.Ops[:lo]...), cand.Ops[lo+chunk:]...)
				cand = kgen.Repair(cand)
				if len(cand.Ops) >= len(cur.Ops) {
					continue
				}
				if tryFails(cand) {
					cur = cand
					improved = true
					break
				}
			}
		}
		if checks >= maxChecks {
			break
		}
	}
	return cur
}
