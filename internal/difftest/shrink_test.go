package difftest

import (
	"testing"

	"critload/internal/gpu"
	"critload/internal/kgen"
)

// plantedOptions builds a deliberately broken engine pair: engine B runs
// with a different SP latency, so any kernel — even an empty one, whose
// prologue still issues ALU instructions — diverges on the timing oracle.
// This stands in for a real engine bug with a known, always-reproducible
// signature.
func plantedOptions() Options {
	return Options{
		GPUB: func() gpu.Config {
			cfg := gpu.DefaultConfig()
			cfg.SM.SPLatency++
			return cfg
		},
	}
}

// TestShrinkPlantedDivergence verifies the whole find→shrink pipeline on an
// artificially injected engine-behavior flip: the shrinker must drive the
// failing program down to (near) nothing while the divergence persists.
func TestShrinkPlantedDivergence(t *testing.T) {
	opts := plantedOptions()
	p := kgen.Generate(42, kgen.DefaultConfig())
	fails := func(q *kgen.Prog) bool {
		c, err := kgen.Build(q)
		if err != nil {
			return false
		}
		return Check(c, opts).Failed()
	}
	if !fails(p) {
		t.Fatalf("planted divergence did not fire on the original program")
	}
	shrunk := Shrink(p, fails, 0)
	if !fails(shrunk) {
		t.Fatalf("shrunk program no longer fails")
	}
	if len(shrunk.Ops) > 1 {
		t.Errorf("expected a (near-)empty minimal program, got %d ops: %v",
			len(shrunk.Ops), shrunk.Ops)
	}
	if len(shrunk.Ops) >= len(p.Ops) {
		t.Errorf("shrinker made no progress: %d -> %d ops", len(p.Ops), len(shrunk.Ops))
	}
}

// TestShrinkPreservesLoadDependentDivergence plants a flip that only fires
// when the kernel issues global loads (a bigger L1 makes every load-bearing
// kernel diverge), so the shrinker must keep a load alive while discarding
// everything else.
func TestShrinkPreservesLoadDependentDivergence(t *testing.T) {
	opts := Options{
		GPUB: func() gpu.Config {
			cfg := gpu.DefaultConfig()
			cfg.SM.L1.HitLatency++
			return cfg
		},
	}
	p := kgen.Generate(43, kgen.DefaultConfig())
	fails := func(q *kgen.Prog) bool {
		c, err := kgen.Build(q)
		if err != nil {
			return false
		}
		return Check(c, opts).Failed()
	}
	if !fails(p) {
		t.Fatalf("planted load-latency divergence did not fire")
	}
	shrunk := Shrink(p, fails, 0)
	if !fails(shrunk) {
		t.Fatalf("shrunk program no longer fails")
	}
	if len(shrunk.Ops) > 2 {
		t.Errorf("expected a minimal load-bearing program, got %d ops: %v",
			len(shrunk.Ops), shrunk.Ops)
	}
	loads := 0
	c, err := kgen.Build(shrunk)
	if err != nil {
		t.Fatalf("shrunk program does not build: %v", err)
	}
	for _, in := range c.Kernel.Insts {
		if in.IsGlobalLoad() {
			loads++
		}
	}
	if loads == 0 {
		t.Errorf("shrunk kernel lost its global load; the divergence driver is gone")
	}
}
