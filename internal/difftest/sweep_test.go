package difftest

import (
	"testing"

	"critload/internal/kgen"
)

// TestHundredKernelSweep is the headline acceptance check: one hundred
// seeded kernels through all four oracles, zero divergences, and — asserted
// per kernel, not assumed — ground truth covering both load classes.
func TestHundredKernelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is not a -short test")
	}
	opts := Options{}
	for seed := int64(1); seed <= 100; seed++ {
		c, err := kgen.Build(kgen.Generate(seed, kgen.DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := Check(c, opts)
		if rep.Det == 0 || rep.NonDet == 0 {
			t.Errorf("seed %d: ground truth must cover both classes, got det=%d nondet=%d",
				seed, rep.Det, rep.NonDet)
		}
		if rep.Failed() {
			t.Errorf("seed %d diverges:", seed)
			for _, d := range rep.Divergences {
				t.Errorf("  %s", d)
			}
			t.Logf("kernel:\n%s", c.Kernel.Disassemble())
		}
	}
}
