// Package dram models one GDDR5-like memory channel per memory partition: a
// finite request queue, banked storage with open-row policy, an FR-FCFS
// (row-hit-first) scheduler, and an unloaded access latency matching the
// paper's Table II configuration. Contention here produces the "wasted
// cycles in L2 and DRAMs" component of the paper's turnaround decomposition.
package dram

import (
	"fmt"
	"math"

	"critload/internal/memreq"
)

// Config sizes one DRAM channel.
type Config struct {
	AccessLatency  int64 // unloaded access latency (Table II: 100 cycles)
	BurstCycles    int64 // bank/data-bus occupancy per 128-byte access
	RowMissPenalty int64 // extra occupancy on a row-buffer miss
	Banks          int
	RowBytes       int // bytes covered by one open row within a bank
	QueueCap       int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.AccessLatency <= 0 || c.BurstCycles <= 0 || c.Banks <= 0 ||
		c.RowBytes <= 0 || c.QueueCap <= 0 || c.RowMissPenalty < 0 {
		return fmt.Errorf("dram: bad config %+v", c)
	}
	return nil
}

// DefaultConfig returns the Table II-derived channel configuration.
func DefaultConfig() Config {
	return Config{
		AccessLatency:  100,
		BurstCycles:    8,
		RowMissPenalty: 30,
		Banks:          16,
		RowBytes:       2048,
		QueueCap:       32,
	}
}

// DoneFunc receives a completed request.
type DoneFunc func(r *memreq.Request, now int64)

type bank struct {
	busyUntil int64
	openRow   int64 // -1 = closed
}

type inflight struct {
	req     *memreq.Request
	readyAt int64
}

// queued is one waiting request with its enqueue cycle, replacing the
// per-request map the controller used to carry for the wait statistic.
type queued struct {
	req *memreq.Request
	at  int64
}

// Controller is one memory channel's controller.
type Controller struct {
	cfg      Config
	queue    []queued
	banks    []bank
	inflight []inflight
	done     DoneFunc
	// release, when set, receives write-through stores as they issue: a
	// store's lifetime ends at the bank (no reply is modeled), so the owner
	// can recycle the request. See memreq.Pool.
	release func(r *memreq.Request)

	// Statistics.
	Serviced  uint64
	RowHits   uint64
	RowMisses uint64
	TotalWait int64 // accumulated queue wait (issue - enqueue)
}

// New builds a controller delivering completions via done.
func New(cfg Config, done DoneFunc) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if done == nil {
		return nil, fmt.Errorf("dram: nil done callback")
	}
	c := &Controller{cfg: cfg, done: done}
	c.banks = make([]bank, cfg.Banks)
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	return c, nil
}

// SetReleaser installs a hook receiving store requests at issue time, when
// their lifecycle ends (nil disables). Read-class requests are never passed
// to it; they retire through the reply path. The hook runs inside Step: under
// the parallel cycle engine that is the concurrent partition phase, so hooks
// must touch only partition-owned state (the gpu layer stages the pool
// release there and drains it on the serial merge phase).
func (c *Controller) SetReleaser(release func(r *memreq.Request)) { c.release = release }

// MustNew builds a controller or panics; for static configurations.
func MustNew(cfg Config, done DoneFunc) *Controller {
	c, err := New(cfg, done)
	if err != nil {
		panic(err)
	}
	return c
}

// CanAccept reports whether the request queue has room; this backs the L2's
// miss-injection check.
func (c *Controller) CanAccept() bool { return len(c.queue) < c.cfg.QueueCap }

// Enqueue adds a request; callers must check CanAccept first.
func (c *Controller) Enqueue(r *memreq.Request, now int64) {
	if !c.CanAccept() {
		panic("dram: enqueue on full queue")
	}
	c.queue = append(c.queue, queued{req: r, at: now})
}

func (c *Controller) bankAndRow(block uint32) (int, int64) {
	line := int64(block) / 128
	b := int(line) % c.cfg.Banks
	row := int64(block) / int64(c.cfg.RowBytes) / int64(c.cfg.Banks)
	return b, row
}

// Step advances the channel one cycle: completes finished accesses and
// issues at most one queued request, preferring row-buffer hits (FR-FCFS).
func (c *Controller) Step(now int64) {
	// Deliver completions.
	kept := c.inflight[:0]
	for _, f := range c.inflight {
		if f.readyAt <= now {
			c.done(f.req, now)
		} else {
			kept = append(kept, f)
		}
	}
	c.inflight = kept

	if len(c.queue) == 0 {
		return
	}
	// First ready row-hit, else first ready request (FCFS fallback).
	pick := -1
	for i := range c.queue {
		b, row := c.bankAndRow(c.queue[i].req.Block)
		if c.banks[b].busyUntil > now {
			continue
		}
		if c.banks[b].openRow == row {
			pick = i
			break
		}
		if pick < 0 {
			pick = i
		}
	}
	if pick < 0 {
		return
	}
	q := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	r := q.req
	b, row := c.bankAndRow(r.Block)
	occupancy := c.cfg.BurstCycles
	latency := c.cfg.AccessLatency
	if c.banks[b].openRow == row {
		c.RowHits++
	} else {
		c.RowMisses++
		occupancy += c.cfg.RowMissPenalty
		latency += c.cfg.RowMissPenalty
	}
	c.banks[b].openRow = row
	c.banks[b].busyUntil = now + occupancy
	c.Serviced++
	c.TotalWait += now - q.at

	if r.Kind == memreq.Store {
		// Writes complete silently once issued; the bank occupancy above is
		// their entire cost, and the request's lifetime ends here.
		if c.release != nil {
			c.release(r)
		}
		return
	}
	c.inflight = append(c.inflight, inflight{req: r, readyAt: now + latency})
}

// NextEvent reports the earliest cycle after now at which the channel can
// make progress — the earliest in-flight completion, or the first cycle a
// queued request's bank is free — or math.MaxInt64 when it is empty. The
// contract (docs/PERFORMANCE.md) assumes the channel was just stepped at now
// and nothing is enqueued before the reported cycle.
func (c *Controller) NextEvent(now int64) int64 {
	horizon := int64(math.MaxInt64)
	for i := range c.inflight {
		t := c.inflight[i].readyAt
		if t <= now {
			t = now + 1
		}
		if t < horizon {
			horizon = t
		}
	}
	for i := range c.queue {
		b, _ := c.bankAndRow(c.queue[i].req.Block)
		t := c.banks[b].busyUntil
		if t <= now {
			t = now + 1
		}
		if t < horizon {
			horizon = t
		}
	}
	return horizon
}

// Pending reports queued plus in-flight requests, a quiescence check.
func (c *Controller) Pending() int { return len(c.queue) + len(c.inflight) }
