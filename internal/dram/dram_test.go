package dram

import (
	"testing"

	"critload/internal/memreq"
)

type completion struct {
	req *memreq.Request
	at  int64
}

func newCtl(t *testing.T, cfg Config) (*Controller, *[]completion) {
	t.Helper()
	var done []completion
	c := MustNew(cfg, func(r *memreq.Request, now int64) {
		done = append(done, completion{r, now})
	})
	return c, &done
}

func run(c *Controller, from, to int64) {
	for cyc := from; cyc <= to; cyc++ {
		c.Step(cyc)
	}
}

func TestUnloadedLatency(t *testing.T) {
	cfg := DefaultConfig()
	c, done := newCtl(t, cfg)
	r := &memreq.Request{Block: 0, Kind: memreq.Load}
	c.Enqueue(r, 0)
	run(c, 0, 300)
	if len(*done) != 1 {
		t.Fatalf("completions = %d, want 1", len(*done))
	}
	got := (*done)[0].at
	// First access is a row miss: latency + row-miss penalty.
	want := cfg.AccessLatency + cfg.RowMissPenalty
	if got != want {
		t.Errorf("completion at %d, want %d", got, want)
	}
}

func TestRowHitFasterThanRowMiss(t *testing.T) {
	cfg := DefaultConfig()
	c, done := newCtl(t, cfg)
	// Same row: second access is a row hit.
	c.Enqueue(&memreq.Request{Block: 0, Kind: memreq.Load}, 0)
	run(c, 0, 0)
	c.Enqueue(&memreq.Request{Block: 0, Kind: memreq.Load}, 1)
	run(c, 1, 500)
	if len(*done) != 2 {
		t.Fatalf("completions = %d, want 2", len(*done))
	}
	if c.RowHits != 1 || c.RowMisses != 1 {
		t.Errorf("row hits/misses = %d/%d, want 1/1", c.RowHits, c.RowMisses)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	cfg := DefaultConfig()
	c, done := newCtl(t, cfg)
	// Two different rows of the same bank (bank = (block/128) % 16):
	// block 0 and block 128*16 share bank 0.
	sameBank := uint32(128 * cfg.Banks)
	c.Enqueue(&memreq.Request{Block: 0, Kind: memreq.Load}, 0)
	c.Enqueue(&memreq.Request{Block: sameBank * 4, Kind: memreq.Load}, 0)
	run(c, 0, 500)
	if len(*done) != 2 {
		t.Fatalf("completions = %d, want 2", len(*done))
	}
	gap := (*done)[1].at - (*done)[0].at
	if gap < cfg.BurstCycles {
		t.Errorf("same-bank accesses completed %d apart, want >= burst %d", gap, cfg.BurstCycles)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	cfg := DefaultConfig()
	c, done := newCtl(t, cfg)
	// Banks 0 and 1: overlapping service; completions 1 cycle apart
	// (controller issues one command per cycle).
	c.Enqueue(&memreq.Request{Block: 0, Kind: memreq.Load}, 0)
	c.Enqueue(&memreq.Request{Block: 128, Kind: memreq.Load}, 0)
	run(c, 0, 500)
	if len(*done) != 2 {
		t.Fatalf("completions = %d, want 2", len(*done))
	}
	gap := (*done)[1].at - (*done)[0].at
	if gap > 2 {
		t.Errorf("different-bank accesses completed %d apart, want <= 2", gap)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := DefaultConfig()
	c, done := newCtl(t, cfg)
	// Open row 0 of bank 0.
	first := &memreq.Request{ID: 1, Block: 0, Kind: memreq.Load}
	c.Enqueue(first, 0)
	run(c, 0, 0) // issues; bank 0 busy
	// Queue: a row-miss to bank 0 (next row: banks × rowBytes away) ahead of
	// a row-hit to bank 0.
	miss := &memreq.Request{ID: 2, Block: uint32(cfg.Banks * cfg.RowBytes), Kind: memreq.Load}
	hit := &memreq.Request{ID: 3, Block: 0, Kind: memreq.Load} // open row → row hit
	c.Enqueue(miss, 1)
	c.Enqueue(hit, 1)
	run(c, 1, 1000)
	if len(*done) != 3 {
		t.Fatalf("completions = %d, want 3", len(*done))
	}
	// The row-hit request must be serviced before the older row-miss.
	var order []uint64
	for _, d := range *done {
		order = append(order, d.req.ID)
	}
	if order[1] != 3 {
		t.Errorf("service order = %v, want row-hit #3 before row-miss #2", order)
	}
}

func TestWritesCompleteSilently(t *testing.T) {
	cfg := DefaultConfig()
	c, done := newCtl(t, cfg)
	c.Enqueue(&memreq.Request{Block: 0, Kind: memreq.Store}, 0)
	run(c, 0, 300)
	if len(*done) != 0 {
		t.Errorf("store produced %d completions, want 0", len(*done))
	}
	if c.Serviced != 1 {
		t.Errorf("Serviced = %d, want 1", c.Serviced)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", c.Pending())
	}
}

func TestQueueCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCap = 2
	c, _ := newCtl(t, cfg)
	c.Enqueue(&memreq.Request{Block: 0}, 0)
	c.Enqueue(&memreq.Request{Block: 128}, 0)
	if c.CanAccept() {
		t.Errorf("CanAccept true at capacity")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Enqueue on full queue did not panic")
		}
	}()
	c.Enqueue(&memreq.Request{Block: 256}, 0)
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Errorf("zero config accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Errorf("nil done accepted")
	}
}
