package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"critload/internal/memreq"
)

// Property: under random load, every accepted read eventually completes with
// latency ≥ the unloaded access latency, writes never produce completions,
// and the queue never exceeds its capacity.
func TestQuickControllerConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.QueueCap = 1 + rng.Intn(16)

		enqueued := map[*memreq.Request]int64{}
		completed := map[*memreq.Request]int64{}
		var reads, writes int
		c := MustNew(cfg, func(r *memreq.Request, now int64) {
			if _, dup := completed[r]; dup {
				t.Fatalf("duplicate completion")
			}
			completed[r] = now
		})

		for cyc := int64(0); cyc < 400; cyc++ {
			for tries := rng.Intn(3); tries > 0; tries-- {
				if !c.CanAccept() {
					break
				}
				kind := memreq.Load
				if rng.Intn(4) == 0 {
					kind = memreq.Store
				}
				r := &memreq.Request{
					Block: uint32(rng.Intn(1<<16)) * 128,
					Kind:  kind,
				}
				c.Enqueue(r, cyc)
				enqueued[r] = cyc
				if kind == memreq.Load {
					reads++
				} else {
					writes++
				}
			}
			c.Step(cyc)
		}
		// Drain.
		for cyc := int64(400); cyc < 200000 && c.Pending() > 0; cyc++ {
			c.Step(cyc)
		}
		if c.Pending() != 0 {
			return false
		}
		if len(completed) != reads {
			return false // every read completes exactly once, writes never
		}
		for r, done := range completed {
			if done-enqueued[r] < cfg.AccessLatency {
				return false
			}
		}
		return int(c.Serviced) == reads+writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
