package dram

import "critload/internal/checkpoint"

// snapTag marks one DRAM channel section of a checkpoint payload.
const snapTag = 0x4452414D // "DRAM"

// Snapshot serializes the channel's persistent state: per-bank busy horizons
// and open rows (bank occupancy from the last launch's stores can extend past
// a kernel boundary, and the open row decides future row hits), plus the
// service statistics. Queued or in-flight requests cannot be serialized —
// they are pool-owned — so snapshotting a non-drained channel is a caller
// bug.
func (c *Controller) Snapshot(w *checkpoint.Writer) {
	if c.Pending() != 0 {
		panic("dram: snapshot with pending requests")
	}
	w.Tag(snapTag)
	w.Int(len(c.banks))
	for i := range c.banks {
		w.I64(c.banks[i].busyUntil)
		w.I64(c.banks[i].openRow)
	}
	w.U64(c.Serviced)
	w.U64(c.RowHits)
	w.U64(c.RowMisses)
	w.I64(c.TotalWait)
}

// Restore loads a snapshot into an identically-configured, drained channel.
func (c *Controller) Restore(r *checkpoint.Reader) error {
	if c.Pending() != 0 {
		r.Failf("dram: restore with pending requests")
		return r.Err()
	}
	r.Tag(snapTag)
	if n := r.Int(); r.Err() == nil && n != len(c.banks) {
		r.Failf("dram: snapshot has %d banks, channel has %d", n, len(c.banks))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for i := range c.banks {
		c.banks[i].busyUntil = r.I64()
		c.banks[i].openRow = r.I64()
	}
	c.Serviced = r.U64()
	c.RowHits = r.U64()
	c.RowMisses = r.U64()
	c.TotalWait = r.I64()
	return r.Err()
}
