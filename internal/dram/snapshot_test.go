package dram

import (
	"bytes"
	"strings"
	"testing"

	"critload/internal/checkpoint"
	"critload/internal/memreq"
)

func discard(r *memreq.Request, now int64) {}

func snapBytes(t *testing.T, c *Controller) []byte {
	t.Helper()
	w := checkpoint.NewWriter()
	c.Snapshot(w)
	return w.Bytes()
}

// TestSnapshotRoundTrip checks that bank busy horizons, open rows and the
// service statistics survive a restore into a fresh channel byte for byte.
func TestSnapshotRoundTrip(t *testing.T) {
	src, err := New(DefaultConfig(), discard)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src.banks[0] = bank{busyUntil: 117, openRow: 3}
	src.banks[5] = bank{busyUntil: 42, openRow: 9}
	src.Serviced = 12
	src.RowHits = 7
	src.RowMisses = 5
	src.TotalWait = 88

	b1 := snapBytes(t, src)
	dst, err := New(DefaultConfig(), discard)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := dst.Restore(checkpoint.NewReader(b1)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b2 := snapBytes(t, dst); !bytes.Equal(b1, b2) {
		t.Fatalf("re-snapshot differs")
	}
	if dst.banks[0] != (bank{busyUntil: 117, openRow: 3}) || dst.banks[15].openRow != -1 {
		t.Errorf("banks not restored: %+v", dst.banks[0])
	}
	if dst.Serviced != 12 || dst.RowHits != 7 || dst.RowMisses != 5 || dst.TotalWait != 88 {
		t.Errorf("stats not restored")
	}
}

// TestSnapshotPanicsWithPending checks the drain invariant.
func TestSnapshotPanicsWithPending(t *testing.T) {
	c, err := New(DefaultConfig(), discard)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.queue = append(c.queue, queued{})
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot of a non-drained channel did not panic")
		}
	}()
	c.Snapshot(checkpoint.NewWriter())
}

// TestRestoreRejections covers the refusal paths: pending requests on the
// receiver, a bank-count mismatch, and truncation.
func TestRestoreRejections(t *testing.T) {
	src, err := New(DefaultConfig(), discard)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	good := snapBytes(t, src)

	busy, _ := New(DefaultConfig(), discard)
	busy.inflight = append(busy.inflight, inflight{})
	if err := busy.Restore(checkpoint.NewReader(good)); err == nil || !strings.Contains(err.Error(), "pending") {
		t.Errorf("busy restore: %v", err)
	}

	cfg := DefaultConfig()
	cfg.Banks = 8
	mismatched, err := New(cfg, discard)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mismatched.Restore(checkpoint.NewReader(good)); err == nil || !strings.Contains(err.Error(), "banks") {
		t.Errorf("bank mismatch: %v", err)
	}

	dst, _ := New(DefaultConfig(), discard)
	if err := dst.Restore(checkpoint.NewReader(good[:len(good)-2])); err == nil {
		t.Error("truncated payload accepted")
	}
}
