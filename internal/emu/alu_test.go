package emu

import (
	"math"
	"testing"

	"critload/internal/mem"
	"critload/internal/ptx"
)

// runScalar executes a single-warp kernel and returns the first lane's value
// of the register written by `st.global.u32 [out], %rX` at address out.
func runScalar(t *testing.T, body string, params ...uint32) uint32 {
	t.Helper()
	src := ".kernel scalar\n.param .u32 out\n" + body + `
    ld.param.u32 %r30, [out];
    st.global.u32 [%r30], %r29;
    exit;
`
	prog, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, src)
	}
	m := mem.New()
	out := m.Alloc(4)
	l := &Launch{
		Kernel: prog.Kernels[0], Grid: Dim1(1), Block: Dim1(1),
		Params: append([]uint32{out}, params...),
	}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m.Read32(out)
}

func TestIntegerALUSemantics(t *testing.T) {
	cases := []struct {
		name, body string
		want       uint32
	}{
		{"add wrap", "mov.u32 %r0, 0xffffffff;\nadd.u32 %r29, %r0, 2;", 1},
		{"sub", "mov.u32 %r0, 5;\nsub.u32 %r29, %r0, 9;", uint32(0xfffffffc)},
		{"mul low", "mov.u32 %r0, 0x10000;\nmul.u32 %r29, %r0, %r0;", 0},
		{"mul.hi unsigned", "mov.u32 %r0, 0x10000;\nmul.hi.u32 %r29, %r0, %r0;", 1},
		{"mad", "mov.u32 %r0, 3;\nmad.u32 %r29, %r0, %r0, 1;", 10},
		{"div unsigned", "mov.u32 %r0, 17;\ndiv.u32 %r29, %r0, 5;", 3},
		{"div by zero", "mov.u32 %r0, 17;\nmov.u32 %r1, 0;\ndiv.u32 %r29, %r0, %r1;", 0},
		{"div signed", "mov.u32 %r0, -17;\ndiv.s32 %r29, %r0, 5;", uint32(0xfffffffd)}, // -3
		{"rem", "mov.u32 %r0, 17;\nrem.u32 %r29, %r0, 5;", 2},
		{"min signed", "mov.u32 %r0, -2;\nmov.u32 %r1, 1;\nmin.s32 %r29, %r0, %r1;", uint32(0xfffffffe)},
		{"min unsigned", "mov.u32 %r0, -2;\nmov.u32 %r1, 1;\nmin.u32 %r29, %r0, %r1;", 1},
		{"max signed", "mov.u32 %r0, -2;\nmov.u32 %r1, 1;\nmax.s32 %r29, %r0, %r1;", 1},
		{"abs", "mov.u32 %r0, -7;\nabs.s32 %r29, %r0;", 7},
		{"neg", "mov.u32 %r0, 7;\nneg.s32 %r29, %r0;", uint32(0xfffffff9)},
		{"and", "mov.u32 %r0, 0xf0;\nand.u32 %r29, %r0, 0x3c;", 0x30},
		{"or", "mov.u32 %r0, 0xf0;\nor.u32 %r29, %r0, 0x0f;", 0xff},
		{"xor", "mov.u32 %r0, 0xff;\nxor.u32 %r29, %r0, 0x0f;", 0xf0},
		{"not", "mov.u32 %r0, 0;\nnot.u32 %r29, %r0;", 0xffffffff},
		{"shl", "mov.u32 %r0, 1;\nshl.u32 %r29, %r0, 33;", 2}, // shift amount masked to 5 bits
		{"shr logical", "mov.u32 %r0, 0x80000000;\nshr.u32 %r29, %r0, 4;", 0x08000000},
		{"shr arithmetic", "mov.u32 %r0, 0x80000000;\nshr.s32 %r29, %r0, 4;", 0xf8000000},
		{"selp true", "setp.lt.u32 %p0, 1, 2;\nselp.u32 %r29, 11, 22, %p0;", 11},
		{"selp false", "setp.gt.u32 %p0, 1, 2;\nselp.u32 %r29, 11, 22, %p0;", 22},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runScalar(t, c.body); got != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestFloatALUSemantics(t *testing.T) {
	f := func(v float32) uint32 { return math.Float32bits(v) }
	cases := []struct {
		name, body string
		want       uint32
	}{
		{"fadd", "mov.f32 %r0, 1.5;\nadd.f32 %r29, %r0, 0.25;", f(1.75)},
		{"fmul", "mov.f32 %r0, 3.0;\nmul.f32 %r29, %r0, 0.5;", f(1.5)},
		{"fdiv", "mov.f32 %r0, 1.0;\ndiv.f32 %r29, %r0, 4.0;", f(0.25)},
		{"fmad", "mov.f32 %r0, 2.0;\nmad.f32 %r29, %r0, 3.0, 1.0;", f(7)},
		{"sqrt", "mov.f32 %r0, 9.0;\nsqrt.f32 %r29, %r0;", f(3)},
		{"rcp", "mov.f32 %r0, 4.0;\nrcp.f32 %r29, %r0;", f(0.25)},
		{"rsqrt", "mov.f32 %r0, 4.0;\nrsqrt.f32 %r29, %r0;", f(0.5)},
		{"ex2", "mov.f32 %r0, 3.0;\nex2.f32 %r29, %r0;", f(8)},
		{"lg2", "mov.f32 %r0, 8.0;\nlg2.f32 %r29, %r0;", f(3)},
		{"fneg", "mov.f32 %r0, 2.5;\nneg.f32 %r29, %r0;", f(-2.5)},
		{"fabs", "mov.f32 %r0, -2.5;\nabs.f32 %r29, %r0;", f(2.5)},
		{"fmin", "mov.f32 %r0, -1.0;\nmov.f32 %r1, 2.0;\nmin.f32 %r29, %r0, %r1;", f(-1)},
		{"cvt u32→f32", "mov.u32 %r0, 7;\ncvt.f32.u32 %r29, %r0;", f(7)},
		{"cvt s32→f32", "mov.u32 %r0, -7;\ncvt.f32.s32 %r29, %r0;", f(-7)},
		{"cvt f32→u32", "mov.f32 %r0, 7.9;\ncvt.u32.f32 %r29, %r0;", 7},
		{"cvt f32→s32", "mov.f32 %r0, -7.9;\ncvt.s32.f32 %r29, %r0;", uint32(0xfffffff9)},
		{"cvt f32→u32 negative clamps", "mov.f32 %r0, -3.0;\ncvt.u32.f32 %r29, %r0;", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runScalar(t, c.body); got != c.want {
				t.Errorf("got %#x (%v), want %#x (%v)",
					got, math.Float32frombits(got), c.want, math.Float32frombits(c.want))
			}
		})
	}
}

func TestComparisonSemantics(t *testing.T) {
	// Each case sets %r29 to 1 when the comparison holds.
	cases := []struct {
		name, body string
		want       uint32
	}{
		{"eq", "setp.eq.u32 %p0, 5, 5;\nselp.u32 %r29, 1, 0, %p0;", 1},
		{"ne", "setp.ne.u32 %p0, 5, 5;\nselp.u32 %r29, 1, 0, %p0;", 0},
		{"lt signed", "mov.u32 %r0, -1;\nsetp.lt.s32 %p0, %r0, 0;\nselp.u32 %r29, 1, 0, %p0;", 1},
		{"lt unsigned wrap", "mov.u32 %r0, -1;\nsetp.lt.u32 %p0, %r0, 0;\nselp.u32 %r29, 1, 0, %p0;", 0},
		{"le", "setp.le.u32 %p0, 5, 5;\nselp.u32 %r29, 1, 0, %p0;", 1},
		{"gt float", "mov.f32 %r0, 1.5;\nmov.f32 %r1, 1.0;\nsetp.gt.f32 %p0, %r0, %r1;\nselp.u32 %r29, 1, 0, %p0;", 1},
		{"ge", "setp.ge.u32 %p0, 4, 5;\nselp.u32 %r29, 1, 0, %p0;", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runScalar(t, c.body); got != c.want {
				t.Errorf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestAtomicVariants(t *testing.T) {
	cases := []struct {
		name string
		atom string
		init uint32
		arg  uint32
		want uint32 // final memory value
	}{
		{"add", "add", 10, 5, 15},
		{"min", "min", 10, 5, 5},
		{"max", "max", 10, 5, 10},
		{"exch", "exch", 10, 5, 5},
		{"or", "or", 0xf0, 0x0f, 0xff},
		{"and", "and", 0xf0, 0x3c, 0x30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := `
.kernel at
.param .u32 target
.param .u32 arg
    ld.param.u32 %r0, [target];
    ld.param.u32 %r1, [arg];
    atom.global.` + c.atom + `.u32 %r2, [%r0], %r1;
    exit;
`
			prog, err := ptx.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			m := mem.New()
			target := m.Alloc(4)
			m.Write32(target, c.init)
			l := &Launch{Kernel: prog.Kernels[0], Grid: Dim1(1), Block: Dim1(1),
				Params: []uint32{target, c.arg}}
			if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
				t.Fatal(err)
			}
			if got := m.Read32(target); got != c.want {
				t.Errorf("memory = %d, want %d", got, c.want)
			}
		})
	}
}

func TestAtomicCAS(t *testing.T) {
	src := `
.kernel cas
.param .u32 target
    ld.param.u32 %r0, [target];
    atom.global.cas.u32 %r1, [%r0], 10, 99;    // matches: swap to 99
    atom.global.cas.u32 %r2, [%r0], 10, 55;    // no match: stays 99
    exit;
`
	prog, err := ptx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	target := m.Alloc(4)
	m.Write32(target, 10)
	l := &Launch{Kernel: prog.Kernels[0], Grid: Dim1(1), Block: Dim1(1), Params: []uint32{target}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := m.Read32(target); got != 99 {
		t.Errorf("memory = %d, want 99", got)
	}
}
