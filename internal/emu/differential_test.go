package emu

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"critload/internal/isa"
	"critload/internal/mem"
	"critload/internal/ptx"
)

// This file cross-checks the warp-level SIMT execution (reconvergence stack,
// predication, divergence) against an independent per-thread scalar
// interpreter on randomly generated kernels. For kernels without shared
// memory, barriers or cross-thread memory communication, executing each
// thread in isolation must produce exactly the same architectural results
// as the lock-step warp execution.

// scalarThread interprets a kernel for one thread, sequentially.
type scalarThread struct {
	k     *ptx.Kernel
	l     *Launch
	cta   Dim3
	ctaID int
	tid   Dim3
	lane  int
	warp  int
	regs  []uint32
	preds []bool
	out   map[uint32]uint32 // global stores
}

func (s *scalarThread) sreg(r isa.SpecialReg) uint32 {
	switch r {
	case isa.SrTidX:
		return uint32(s.tid.X)
	case isa.SrTidY:
		return uint32(s.tid.Y)
	case isa.SrTidZ:
		return uint32(s.tid.Z)
	case isa.SrNTidX:
		return uint32(s.l.Block.X)
	case isa.SrNTidY:
		return uint32(s.l.Block.Y)
	case isa.SrNTidZ:
		return uint32(s.l.Block.Z)
	case isa.SrCtaIdX:
		return uint32(s.cta.X)
	case isa.SrCtaIdY:
		return uint32(s.cta.Y)
	case isa.SrCtaIdZ:
		return uint32(s.cta.Z)
	case isa.SrNCtaIdX:
		return uint32(s.l.Grid.X)
	case isa.SrNCtaIdY:
		return uint32(s.l.Grid.Y)
	case isa.SrNCtaIdZ:
		return uint32(s.l.Grid.Z)
	case isa.SrLaneId:
		return uint32(s.lane)
	case isa.SrWarpId:
		return uint32(s.warp)
	}
	return 0
}

func (s *scalarThread) value(o isa.Operand) uint32 {
	switch o.Kind {
	case isa.OpdReg:
		return s.regs[o.Reg]
	case isa.OpdImm:
		return uint32(int32(o.Imm))
	case isa.OpdSReg:
		return s.sreg(o.SReg)
	case isa.OpdPred:
		if s.preds[o.Reg] {
			return 1
		}
		return 0
	}
	return 0
}

// run executes up to maxSteps instructions; it returns false on overrun.
func (s *scalarThread) run(m *mem.Memory, maxSteps int) bool {
	pc := 0
	for steps := 0; steps < maxSteps; steps++ {
		if pc >= len(s.k.Insts) {
			return true
		}
		in := s.k.Insts[pc]
		exec := true
		if in.Guard.Active() {
			exec = s.preds[in.Guard.Reg] != in.Guard.Negate
		}
		if !exec {
			pc++
			continue
		}
		switch in.Op {
		case isa.OpExit, isa.OpRet:
			return true
		case isa.OpBra:
			pc = in.Targ
			continue
		case isa.OpSetp:
			a, b := s.value(in.Srcs[0]), s.value(in.Srcs[1])
			s.preds[in.Dst.Reg] = compare(in.Type, in.Cmp, a, b)
		case isa.OpSelp:
			if s.preds[in.Srcs[2].Reg] {
				s.regs[in.Dst.Reg] = s.value(in.Srcs[0])
			} else {
				s.regs[in.Dst.Reg] = s.value(in.Srcs[1])
			}
		case isa.OpLd:
			switch in.Space {
			case isa.SpaceParam:
				off, _ := s.k.ParamOffset(in.Srcs[0].Param)
				s.regs[in.Dst.Reg] = s.l.Params[(off+int(in.Srcs[0].Imm))/4]
			case isa.SpaceGlobal:
				addr := s.regs[in.Srcs[0].Reg] + uint32(int32(in.Srcs[0].Imm))
				// Threads only read their initial input region in generated
				// kernels, so the pristine memory is the right source.
				s.regs[in.Dst.Reg] = m.Read32(addr)
			}
		case isa.OpSt:
			addr := s.regs[in.Srcs[0].Reg] + uint32(int32(in.Srcs[0].Imm))
			s.out[addr] = s.value(in.Srcs[1])
		default:
			// Reuse the warp ALU by evaluating through a scratch warp? The
			// scalar interpreter re-implements only the ops the generator
			// emits.
			a := s.value(in.Srcs[0])
			var b uint32
			if in.NSrc > 1 {
				b = s.value(in.Srcs[1])
			}
			var v uint32
			switch in.Op {
			case isa.OpMov:
				v = a
			case isa.OpAdd:
				v = a + b
			case isa.OpSub:
				v = a - b
			case isa.OpMul:
				v = a * b
			case isa.OpMad:
				v = a*b + s.value(in.Srcs[2])
			case isa.OpAnd:
				v = a & b
			case isa.OpOr:
				v = a | b
			case isa.OpXor:
				v = a ^ b
			case isa.OpShl:
				v = a << (b & 31)
			case isa.OpShr:
				v = a >> (b & 31)
			case isa.OpMin:
				v = minByType(in.Type, a, b)
			case isa.OpMax:
				v = maxByType(in.Type, a, b)
			default:
				v = a
			}
			s.regs[in.Dst.Reg] = v
		}
		pc++
	}
	return false
}

// genDivergentKernel builds a random kernel with nested data-dependent
// branches, a bounded loop, predicated instructions, and a final store of a
// hash register to out[gtid].
func genDivergentKernel(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString(".kernel diffk\n.param .u32 out\n.param .u32 in\n")
	// Global thread id in %r0; input value in %r1; hash accumulator %r2.
	b.WriteString(`    mov.u32 %r10, %ctaid.x;
    mov.u32 %r11, %ntid.x;
    mad.u32 %r0, %r10, %r11, %tid.x;
    shl.u32 %r12, %r0, 2;
    ld.param.u32 %r13, [in];
    add.u32 %r14, %r13, %r12;
    ld.global.u32 %r1, [%r14];
    mov.u32 %r2, 0;
`)
	label := 0
	newLabel := func() string { label++; return fmt.Sprintf("L%d", label) }

	var emitBlock func(depth int)
	emitBlock = func(depth int) {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch choice := rng.Intn(6); {
			case choice < 3 || depth >= 3:
				// Arithmetic on the hash register.
				ops := []string{"add", "xor", "mul", "sub", "or"}
				op := ops[rng.Intn(len(ops))]
				src := []string{"%r0", "%r1", fmt.Sprintf("%d", rng.Intn(1<<16))}[rng.Intn(3)]
				fmt.Fprintf(&b, "    %s.u32 %%r2, %%r2, %s;\n", op, src)
				fmt.Fprintf(&b, "    add.u32 %%r2, %%r2, %d;\n", rng.Intn(97))
			case choice == 3:
				// Predicated instruction.
				fmt.Fprintf(&b, "    setp.lt.u32 %%p0, %%r1, %d;\n", rng.Intn(1<<20))
				fmt.Fprintf(&b, "@%%p0 add.u32 %%r2, %%r2, %d;\n", rng.Intn(1<<10))
				fmt.Fprintf(&b, "@!%%p0 xor.u32 %%r2, %%r2, %d;\n", rng.Intn(1<<10))
			case choice == 4:
				// Data-dependent if/else diamond.
				thenL, joinL := newLabel(), newLabel()
				bit := uint32(1) << rng.Intn(8)
				fmt.Fprintf(&b, "    and.u32 %%r3, %%r1, %d;\n", bit)
				fmt.Fprintf(&b, "    setp.ne.u32 %%p1, %%r3, 0;\n")
				fmt.Fprintf(&b, "@%%p1 bra %s;\n", thenL)
				emitBlock(depth + 1)
				fmt.Fprintf(&b, "    bra %s;\n", joinL)
				fmt.Fprintf(&b, "%s:\n", thenL)
				emitBlock(depth + 1)
				fmt.Fprintf(&b, "%s:\n", joinL)
			default:
				// Bounded divergent loop: trip count = (input & 7) + 1.
				loopL := newLabel()
				fmt.Fprintf(&b, "    and.u32 %%r4, %%r1, 7;\n")
				fmt.Fprintf(&b, "    add.u32 %%r4, %%r4, 1;\n")
				fmt.Fprintf(&b, "    mov.u32 %%r5, 0;\n")
				fmt.Fprintf(&b, "%s:\n", loopL)
				fmt.Fprintf(&b, "    add.u32 %%r2, %%r2, %%r5;\n")
				fmt.Fprintf(&b, "    add.u32 %%r5, %%r5, 1;\n")
				fmt.Fprintf(&b, "    setp.lt.u32 %%p2, %%r5, %%r4;\n")
				fmt.Fprintf(&b, "@%%p2 bra %s;\n", loopL)
			}
		}
	}
	emitBlock(0)
	b.WriteString(`    ld.param.u32 %r20, [out];
    add.u32 %r21, %r20, %r12;
    st.global.u32 [%r21], %r2;
    exit;
`)
	return b.String()
}

// TestQuickSIMTMatchesScalarReference executes random divergent kernels both
// on the warp-level emulator and thread-by-thread on the scalar reference,
// comparing every output element.
func TestQuickSIMTMatchesScalarReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genDivergentKernel(rng)
		prog, err := ptx.Parse(src)
		if err != nil {
			t.Fatalf("generated kernel does not parse: %v\n%s", err, src)
		}
		k := prog.Kernels[0]

		const nThreads = 96 // 2 CTAs of 48: partial warps included
		const block = 48
		input := make([]uint32, nThreads)
		for i := range input {
			input[i] = rng.Uint32()
		}

		// SIMT execution.
		m := mem.New()
		inB := m.AllocU32s(input)
		outB := m.Alloc(4 * nThreads)
		l := &Launch{Kernel: k, Grid: Dim1(nThreads / block), Block: Dim1(block),
			Params: []uint32{outB, inB}}
		if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
			t.Fatalf("SIMT run: %v\n%s", err, src)
		}

		// Scalar reference, thread by thread against pristine inputs.
		ref := mem.New()
		refIn := ref.AllocU32s(input)
		if refIn != inB {
			t.Fatalf("allocator divergence")
		}
		ok := true
		for gtid := 0; gtid < nThreads; gtid++ {
			st := &scalarThread{
				k: k, l: l,
				cta:   Dim3{X: gtid / block, Y: 0, Z: 0},
				ctaID: gtid / block,
				tid:   Dim3{X: gtid % block, Y: 0, Z: 0},
				lane:  (gtid % block) % WarpSize,
				warp:  (gtid % block) / WarpSize,
				regs:  make([]uint32, k.NumRegs),
				preds: make([]bool, k.NumPreds),
				out:   map[uint32]uint32{},
			}
			if !st.run(ref, 100000) {
				t.Fatalf("scalar reference did not terminate\n%s", src)
			}
			want := st.out[outB+uint32(4*gtid)]
			got := m.Read32(outB + uint32(4*gtid))
			if got != want {
				t.Logf("thread %d: SIMT %#x != scalar %#x (seed %d)\n%s", gtid, got, want, seed, src)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
