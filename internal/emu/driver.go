package emu

import (
	"fmt"

	"critload/internal/isa"
)

// StepListener observes every executed warp instruction. The Step value is
// only valid for the duration of the call.
type StepListener func(ctaID int, w *Warp, s *Step)

// RunOptions controls a functional kernel run.
type RunOptions struct {
	// Listener, when non-nil, receives every executed step.
	Listener StepListener
	// MaxWarpInsts aborts the run after this many warp instructions
	// (0 = unlimited). Used to bound simulation the way the paper bounds
	// GPGPU-Sim runs to the first billion instructions.
	MaxWarpInsts uint64
}

// RunResult summarizes a functional run.
type RunResult struct {
	WarpInsts    uint64 // warp-level instructions executed
	ThreadInsts  uint64 // thread-level instructions (sum of exec-lane counts)
	GlobalLoads  uint64 // warp-level ld.global instructions
	SharedLoads  uint64 // warp-level ld.shared instructions
	GlobalStores uint64
	Truncated    bool // true when MaxWarpInsts stopped the run early
}

// Add accumulates another result (for multi-launch workloads).
func (r *RunResult) Add(o RunResult) {
	r.WarpInsts += o.WarpInsts
	r.ThreadInsts += o.ThreadInsts
	r.GlobalLoads += o.GlobalLoads
	r.SharedLoads += o.SharedLoads
	r.GlobalStores += o.GlobalStores
	r.Truncated = r.Truncated || o.Truncated
}

// Run functionally executes the launch to completion: CTAs run sequentially,
// warps within a CTA are interleaved in round-robin slices so that barrier
// semantics hold.
func Run(env *Env, opts RunOptions) (RunResult, error) {
	var res RunResult
	l := env.Launch
	if err := l.Validate(); err != nil {
		return res, err
	}
	nCTA := l.Grid.Count()
	for id := 0; id < nCTA; id++ {
		cta := NewCTA(l, id)
		if err := runCTA(env, cta, opts, &res); err != nil {
			return res, fmt.Errorf("emu: CTA %d: %w", id, err)
		}
		if res.Truncated {
			return res, nil
		}
	}
	return res, nil
}

// warpSlice is the number of instructions a warp may run before the driver
// rotates to the next warp; small enough to interleave warps realistically,
// large enough to keep driver overhead low.
const warpSlice = 64

func runCTA(env *Env, cta *CTA, opts RunOptions, res *RunResult) error {
	for {
		progressed := false
		for _, w := range cta.Warps {
			if w.Done() || w.AtBarrier {
				continue
			}
			for i := 0; i < warpSlice; i++ {
				if w.Done() || w.AtBarrier {
					break
				}
				step, err := w.Execute(env)
				if err != nil {
					return err
				}
				progressed = true
				record(env, cta, w, &step, opts, res)
				if opts.MaxWarpInsts > 0 && res.WarpInsts >= opts.MaxWarpInsts {
					res.Truncated = true
					return nil
				}
			}
		}
		if cta.Done() {
			return nil
		}
		if cta.barrierReady() {
			cta.ReleaseBarrier()
			continue
		}
		if !progressed {
			return fmt.Errorf("deadlock: no warp can progress")
		}
	}
}

func record(env *Env, cta *CTA, w *Warp, step *Step, opts RunOptions, res *RunResult) {
	res.WarpInsts++
	res.ThreadInsts += uint64(step.ExecCount())
	in := step.Inst
	switch {
	case in.IsGlobalLoad():
		res.GlobalLoads++
	case in.IsSharedLoad():
		res.SharedLoads++
	case in.Op == isa.OpSt && in.Space == isa.SpaceGlobal:
		res.GlobalStores++
	}
	if opts.Listener != nil {
		opts.Listener(cta.ID, w, step)
	}
}
