// Package emu is the functional SIMT emulator for the PTX-subset ISA. It
// executes kernels warp by warp with a reconvergence-stack divergence model,
// producing per-instruction execution records that both the statistics
// collectors and the timing simulator consume. Values are computed here —
// the timing simulator only models latency on top (execution-driven
// simulation, as in GPGPU-Sim).
package emu

import (
	"fmt"
	"math/bits"

	"critload/internal/isa"
	"critload/internal/mem"
	"critload/internal/ptx"
)

// WarpSize is the number of SIMT lanes per warp.
const WarpSize = 32

// FullMask is the active mask with all lanes on.
const FullMask = uint32(0xffffffff)

// Dim3 is a three-dimensional launch extent or coordinate.
type Dim3 struct {
	X, Y, Z int
}

// Dim1 returns a one-dimensional Dim3.
func Dim1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// Dim2 returns a two-dimensional Dim3.
func Dim2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Count returns the total number of elements in the extent.
func (d Dim3) Count() int { return d.X * d.Y * d.Z }

func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// Launch describes one kernel launch: grid and block extents plus the
// parameter values (each parameter is one 32-bit word, typically a device
// pointer or a scalar).
type Launch struct {
	Kernel *ptx.Kernel
	Grid   Dim3
	Block  Dim3
	Params []uint32
}

// Validate checks that the launch matches the kernel's parameter list and
// hardware limits.
func (l *Launch) Validate() error {
	if l.Kernel == nil {
		return fmt.Errorf("emu: launch without kernel")
	}
	if len(l.Params) != len(l.Kernel.Params) {
		return fmt.Errorf("emu: kernel %s expects %d params, launch has %d",
			l.Kernel.Name, len(l.Kernel.Params), len(l.Params))
	}
	if l.Grid.Count() <= 0 || l.Block.Count() <= 0 {
		return fmt.Errorf("emu: empty grid or block")
	}
	if l.Block.Count() > 1536 {
		return fmt.Errorf("emu: block of %d threads exceeds the 1536-thread SM limit", l.Block.Count())
	}
	return nil
}

// WarpsPerCTA returns the number of warps needed for one thread block.
func (l *Launch) WarpsPerCTA() int {
	return (l.Block.Count() + WarpSize - 1) / WarpSize
}

// CTACoord converts a linearized CTA id back to grid coordinates.
func (l *Launch) CTACoord(id int) Dim3 {
	x := id % l.Grid.X
	y := (id / l.Grid.X) % l.Grid.Y
	z := id / (l.Grid.X * l.Grid.Y)
	return Dim3{X: x, Y: y, Z: z}
}

// Env bundles the state a warp needs to execute: the global memory, the
// parameter space, and the CTA's shared memory.
type Env struct {
	Mem    *mem.Memory
	Launch *Launch
}

// CTA is one cooperative thread array in flight.
type CTA struct {
	ID     int // linearized CTA id: x + y*gridX + z*gridX*gridY
	Coord  Dim3
	Shared []byte
	Warps  []*Warp
}

// NewCTA instantiates the CTA with the given linear id, creating its warps
// and shared memory.
func NewCTA(l *Launch, id int) *CTA {
	shBytes := l.Kernel.SharedBytes
	c := &CTA{ID: id, Coord: l.CTACoord(id), Shared: make([]byte, shBytes)}
	nWarp := l.WarpsPerCTA()
	for w := 0; w < nWarp; w++ {
		c.Warps = append(c.Warps, newWarp(l, c, w))
	}
	return c
}

// Done reports whether every warp of the CTA has exited.
func (c *CTA) Done() bool {
	for _, w := range c.Warps {
		if !w.Done() {
			return false
		}
	}
	return true
}

// barrierReady reports whether every live warp is waiting at the barrier.
func (c *CTA) barrierReady() bool {
	for _, w := range c.Warps {
		if !w.Done() && !w.AtBarrier {
			return false
		}
	}
	return true
}

// ReleaseBarrier clears the barrier flag on all warps; callers must first
// check barrierReady.
func (c *CTA) ReleaseBarrier() {
	for _, w := range c.Warps {
		w.AtBarrier = false
	}
}

// stackEntry is one SIMT reconvergence-stack entry.
type stackEntry struct {
	pc   int    // next instruction index for this entry
	rpc  int    // reconvergence instruction index (pop when pc == rpc)
	mask uint32 // lanes executing under this entry
}

// Warp holds the architectural state of one warp.
type Warp struct {
	CTA       *CTA
	Index     int // warp index within the CTA
	AtBarrier bool

	kernel *ptx.Kernel
	regs   []uint32 // numRegs × WarpSize, laid out reg-major
	preds  []uint32 // one lane-bitmask per predicate register
	stack  []stackEntry
	// laneTid[l] is the linear thread id within the block of lane l, or -1
	// for lanes beyond the block size.
	laneTid [WarpSize]int
	// InstructionsExecuted counts warp-level instructions retired.
	InstructionsExecuted uint64
}

func newWarp(l *Launch, c *CTA, index int) *Warp {
	k := l.Kernel
	w := &Warp{
		CTA:    c,
		Index:  index,
		kernel: k,
		regs:   make([]uint32, k.NumRegs*WarpSize),
		preds:  make([]uint32, k.NumPreds),
	}
	blockThreads := l.Block.Count()
	var mask uint32
	for lane := 0; lane < WarpSize; lane++ {
		t := index*WarpSize + lane
		if t < blockThreads {
			w.laneTid[lane] = t
			mask |= 1 << lane
		} else {
			w.laneTid[lane] = -1
		}
	}
	w.stack = append(w.stack, stackEntry{pc: 0, rpc: len(k.Insts), mask: mask})
	return w
}

// Done reports whether the warp has no live lanes left.
func (w *Warp) Done() bool {
	w.normalize()
	return len(w.stack) == 0
}

// PC returns the current instruction index, or -1 when done.
func (w *Warp) PC() int {
	w.normalize()
	if len(w.stack) == 0 {
		return -1
	}
	return w.stack[len(w.stack)-1].pc
}

// ActiveMask returns the current top-of-stack active mask.
func (w *Warp) ActiveMask() uint32 {
	w.normalize()
	if len(w.stack) == 0 {
		return 0
	}
	return w.stack[len(w.stack)-1].mask
}

// NextInst returns the instruction the warp will execute next, or nil when
// the warp has finished.
func (w *Warp) NextInst() *isa.Instruction {
	pc := w.PC()
	if pc < 0 {
		return nil
	}
	return w.kernel.Insts[pc]
}

// normalize pops reconverged or empty stack entries.
func (w *Warp) normalize() {
	for len(w.stack) > 0 {
		top := &w.stack[len(w.stack)-1]
		if top.mask == 0 || top.pc == top.rpc || top.pc >= len(w.kernel.Insts) {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

// Reg returns the value of general register r in lane l.
func (w *Warp) Reg(r, l int) uint32 { return w.regs[r*WarpSize+l] }

// SetReg sets general register r in lane l.
func (w *Warp) SetReg(r, l int, v uint32) { w.regs[r*WarpSize+l] = v }

// Pred returns predicate register p in lane l.
func (w *Warp) Pred(p, l int) bool { return w.preds[p]&(1<<l) != 0 }

// SetPred sets predicate register p in lane l.
func (w *Warp) SetPred(p, l int, v bool) {
	if v {
		w.preds[p] |= 1 << l
	} else {
		w.preds[p] &^= 1 << l
	}
}

// LaneThread returns the (x,y,z) thread coordinate of lane l, or ok=false
// for lanes beyond the block extent.
func (w *Warp) LaneThread(l *Launch, lane int) (Dim3, bool) {
	t := w.laneTid[lane]
	if t < 0 {
		return Dim3{}, false
	}
	x := t % l.Block.X
	y := (t / l.Block.X) % l.Block.Y
	z := t / (l.Block.X * l.Block.Y)
	return Dim3{X: x, Y: y, Z: z}, true
}

func (w *Warp) sregValue(l *Launch, sr isa.SpecialReg, lane int) uint32 {
	tc, _ := w.LaneThread(l, lane)
	switch sr {
	case isa.SrTidX:
		return uint32(tc.X)
	case isa.SrTidY:
		return uint32(tc.Y)
	case isa.SrTidZ:
		return uint32(tc.Z)
	case isa.SrNTidX:
		return uint32(l.Block.X)
	case isa.SrNTidY:
		return uint32(l.Block.Y)
	case isa.SrNTidZ:
		return uint32(l.Block.Z)
	case isa.SrCtaIdX:
		return uint32(w.CTA.Coord.X)
	case isa.SrCtaIdY:
		return uint32(w.CTA.Coord.Y)
	case isa.SrCtaIdZ:
		return uint32(w.CTA.Coord.Z)
	case isa.SrNCtaIdX:
		return uint32(l.Grid.X)
	case isa.SrNCtaIdY:
		return uint32(l.Grid.Y)
	case isa.SrNCtaIdZ:
		return uint32(l.Grid.Z)
	case isa.SrLaneId:
		return uint32(lane)
	case isa.SrWarpId:
		return uint32(w.Index)
	}
	return 0
}

// Step is the record of one executed warp instruction, consumed by the
// statistics collectors and the timing simulator.
type Step struct {
	Inst *isa.Instruction
	// Active is the SIMT active mask before applying the guard predicate.
	Active uint32
	// Exec is the set of lanes that actually executed (guard applied). For
	// memory instructions these are the lanes that generate accesses.
	Exec uint32
	// Addrs holds per-lane effective byte addresses for memory operations
	// (valid for lanes set in Exec).
	Addrs [WarpSize]uint32
	// Mem marks global/shared/local/tex data-space memory operations.
	Mem bool
	// Barrier marks bar.sync execution: the warp must block until release.
	Barrier bool
	// Exited marks that the warp fully retired with this instruction.
	Exited bool
}

// ActiveCount returns the number of pre-guard active lanes.
func (s *Step) ActiveCount() int { return bits.OnesCount32(s.Active) }

// ExecCount returns the number of lanes that executed.
func (s *Step) ExecCount() int { return bits.OnesCount32(s.Exec) }
