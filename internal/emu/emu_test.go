package emu

import (
	"math"
	"testing"

	"critload/internal/isa"
	"critload/internal/mem"
	"critload/internal/ptx"
)

func mustKernel(t *testing.T, src, name string) *ptx.Kernel {
	t.Helper()
	prog, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k, ok := prog.Kernel(name)
	if !ok {
		t.Fatalf("kernel %s missing", name)
	}
	return k
}

const vecAddSrc = `
.kernel vecadd
.param .u32 a
.param .u32 b
.param .u32 c
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    shl.u32      %r4, %r2, 2;
    ld.param.u32 %r5, [a];
    add.u32      %r6, %r5, %r4;
    ld.global.u32 %r7, [%r6];
    ld.param.u32 %r8, [b];
    add.u32      %r9, %r8, %r4;
    ld.global.u32 %r10, [%r9];
    add.u32      %r11, %r7, %r10;
    ld.param.u32 %r12, [c];
    add.u32      %r13, %r12, %r4;
    st.global.u32 [%r13], %r11;
EXIT:
    exit;
`

func TestVecAdd(t *testing.T) {
	k := mustKernel(t, vecAddSrc, "vecadd")
	m := mem.New()
	const n = 1000 // not a multiple of the block size: exercises the guard
	a := make([]uint32, n)
	b := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i)
		b[i] = uint32(3 * i)
	}
	aBase := m.AllocU32s(a)
	bBase := m.AllocU32s(b)
	cBase := m.Alloc(4 * n)

	l := &Launch{
		Kernel: k,
		Grid:   Dim1((n + 255) / 256),
		Block:  Dim1(256),
		Params: []uint32{aBase, bBase, cBase, n},
	}
	env := &Env{Mem: m, Launch: l}
	res, err := Run(env, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := m.Read32(cBase + uint32(4*i)); got != uint32(4*i) {
			t.Fatalf("c[%d] = %d, want %d", i, got, 4*i)
		}
	}
	// Out-of-range threads must not write past the array.
	if got := m.Read32(cBase + 4*n); got != 0 {
		t.Errorf("c[n] = %d, want 0 (guard failed)", got)
	}
	if res.GlobalLoads == 0 || res.GlobalStores == 0 {
		t.Errorf("load/store counts = %d/%d, want nonzero", res.GlobalLoads, res.GlobalStores)
	}
}

const divergeSrc = `
.kernel diverge
.param .u32 out
    mov.u32      %r0, %tid.x;
    setp.lt.u32  %p0, %r0, 10;
@%p0 bra THEN;
    mov.u32      %r1, 200;   // lanes 10..31
    bra JOIN;
THEN:
    mov.u32      %r1, 100;   // lanes 0..9
JOIN:
    ld.param.u32 %r2, [out];
    shl.u32      %r3, %r0, 2;
    add.u32      %r4, %r2, %r3;
    st.global.u32 [%r4], %r1;
    exit;
`

func TestDivergenceReconverges(t *testing.T) {
	k := mustKernel(t, divergeSrc, "diverge")
	m := mem.New()
	out := m.Alloc(4 * 32)
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(32), Params: []uint32{out}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(200)
		if i < 10 {
			want = 100
		}
		if got := m.Read32(out + uint32(4*i)); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

const loopSumSrc = `
.kernel loopsum
.param .u32 out
.param .u32 n
    mov.u32      %r0, 0;     // i
    mov.u32      %r1, 0;     // acc
    ld.param.u32 %r2, [n];
LOOP:
    setp.ge.u32  %p0, %r0, %r2;
@%p0 bra DONE;
    add.u32      %r1, %r1, %r0;
    add.u32      %r0, %r0, 1;
    bra LOOP;
DONE:
    mov.u32      %r3, %tid.x;
    ld.param.u32 %r4, [out];
    shl.u32      %r5, %r3, 2;
    add.u32      %r6, %r4, %r5;
    st.global.u32 [%r6], %r1;
    exit;
`

func TestLoopExecution(t *testing.T) {
	k := mustKernel(t, loopSumSrc, "loopsum")
	m := mem.New()
	out := m.Alloc(4 * 32)
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(32), Params: []uint32{out, 100}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := uint32(100 * 99 / 2)
	for i := 0; i < 32; i++ {
		if got := m.Read32(out + uint32(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// Per-lane divergent trip counts: lane l loops l+1 times.
const divergentLoopSrc = `
.kernel dloop
.param .u32 out
    mov.u32      %r0, %tid.x;
    mov.u32      %r1, 0;       // counter
LOOP:
    add.u32      %r1, %r1, 1;
    setp.le.u32  %p0, %r1, %r0;
@%p0 bra LOOP;
    ld.param.u32 %r2, [out];
    shl.u32      %r3, %r0, 2;
    add.u32      %r4, %r2, %r3;
    st.global.u32 [%r4], %r1;
    exit;
`

func TestDivergentLoopTripCounts(t *testing.T) {
	k := mustKernel(t, divergentLoopSrc, "dloop")
	m := mem.New()
	out := m.Alloc(4 * 32)
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(32), Params: []uint32{out}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 32; i++ {
		if got := m.Read32(out + uint32(4*i)); got != uint32(i+1) {
			t.Errorf("out[%d] = %d, want %d", i, got, i+1)
		}
	}
}

// Shared-memory block reduction with barriers: each CTA sums its 64 inputs.
const reduceSrc = `
.kernel reduce
.param .u32 in
.param .u32 out
    mov.u32      %r0, %tid.x;
    mov.u32      %r1, %ctaid.x;
    mov.u32      %r2, %ntid.x;
    mad.u32      %r3, %r1, %r2, %r0;  // global index
    ld.param.u32 %r4, [in];
    shl.u32      %r5, %r3, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];
    shl.u32      %r8, %r0, 2;
    st.shared.u32 [%r8], %r7;
    bar.sync;
    mov.u32      %r9, 32;             // stride
STRIDE:
    setp.eq.u32  %p0, %r9, 0;
@%p0 bra WRITE;
    setp.ge.u32  %p1, %r0, %r9;
@%p1 bra SKIP;
    shl.u32      %r10, %r9, 2;
    add.u32      %r11, %r8, %r10;
    ld.shared.u32 %r12, [%r11];
    ld.shared.u32 %r13, [%r8];
    add.u32      %r14, %r12, %r13;
    st.shared.u32 [%r8], %r14;
SKIP:
    bar.sync;
    shr.u32      %r9, %r9, 1;
    bra STRIDE;
WRITE:
    setp.ne.u32  %p2, %r0, 0;
@%p2 bra EXIT;
    ld.shared.u32 %r15, [0];
    ld.param.u32 %r16, [out];
    shl.u32      %r17, %r1, 2;
    add.u32      %r18, %r16, %r17;
    st.global.u32 [%r18], %r15;
EXIT:
    exit;
`

func TestSharedReductionWithBarriers(t *testing.T) {
	prog, err := ptx.Parse(".shared 256\n" + reduceSrc)
	// .shared before .kernel is invalid; construct properly instead.
	if err == nil {
		t.Fatalf("expected .shared outside kernel to fail")
	}
	prog, err = ptx.Parse(reduceSrc + "\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	k.SharedBytes = 64 * 4

	m := mem.New()
	const ctas = 4
	in := make([]uint32, 64*ctas)
	var want [ctas]uint32
	for i := range in {
		in[i] = uint32(i % 7)
		want[i/64] += in[i]
	}
	inBase := m.AllocU32s(in)
	outBase := m.Alloc(4 * ctas)
	l := &Launch{Kernel: k, Grid: Dim1(ctas), Block: Dim1(64), Params: []uint32{inBase, outBase}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for c := 0; c < ctas; c++ {
		if got := m.Read32(outBase + uint32(4*c)); got != want[c] {
			t.Errorf("out[%d] = %d, want %d", c, got, want[c])
		}
	}
}

const saxpySrc = `
.kernel saxpy
.param .u32 x
.param .u32 y
.param .f32 alpha
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    shl.u32      %r3, %r2, 2;
    ld.param.u32 %r4, [x];
    add.u32      %r5, %r4, %r3;
    ld.global.f32 %r6, [%r5];
    ld.param.u32 %r7, [y];
    add.u32      %r8, %r7, %r3;
    ld.global.f32 %r9, [%r8];
    ld.param.f32 %r10, [alpha];
    mad.f32      %r11, %r10, %r6, %r9;
    st.global.f32 [%r8], %r11;
    exit;
`

func TestSaxpyFloat(t *testing.T) {
	k := mustKernel(t, saxpySrc, "saxpy")
	m := mem.New()
	const n = 128
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i) * 0.5
		y[i] = float32(i)
	}
	xb := m.AllocF32s(x)
	yb := m.AllocF32s(y)
	alpha := float32(2.0)
	l := &Launch{
		Kernel: k, Grid: Dim1(n / 32), Block: Dim1(32),
		Params: []uint32{xb, yb, math.Float32bits(alpha)},
	}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		want := alpha*x[i] + y[i]
		if got := m.ReadF32(yb + uint32(4*i)); got != want {
			t.Errorf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAtomicsAccumulate(t *testing.T) {
	src := `
.kernel count
.param .u32 ctr
    ld.param.u32 %r0, [ctr];
    atom.global.add.u32 %r1, [%r0], 1;
    exit;
`
	k := mustKernel(t, src, "count")
	m := mem.New()
	ctr := m.Alloc(4)
	l := &Launch{Kernel: k, Grid: Dim1(8), Block: Dim1(64), Params: []uint32{ctr}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := m.Read32(ctr); got != 8*64 {
		t.Errorf("counter = %d, want %d", got, 8*64)
	}
}

func TestPartialWarpAndMultiDimBlocks(t *testing.T) {
	src := `
.kernel coords
.param .u32 out
    mov.u32      %r0, %tid.x;
    mov.u32      %r1, %tid.y;
    mov.u32      %r2, %ntid.x;
    mad.u32      %r3, %r1, %r2, %r0;  // linear tid
    mov.u32      %r4, %ctaid.y;
    mov.u32      %r5, 1000;
    mul.u32      %r6, %r4, %r5;
    add.u32      %r7, %r6, %r3;
    ld.param.u32 %r8, [out];
    shl.u32      %r9, %r3, 2;
    mov.u32      %r10, %ntid.y;
    mul.u32      %r11, %r2, %r10;
    mul.u32      %r12, %r11, 4;
    mov.u32      %r13, %ctaid.x;
    mov.u32      %r14, %nctaid.y;
    mad.u32      %r15, %r13, %r14, %r4; // linear cta
    mul.u32      %r16, %r15, %r12;
    add.u32      %r17, %r8, %r16;
    add.u32      %r18, %r17, %r9;
    st.global.u32 [%r18], %r7;
    exit;
`
	k := mustKernel(t, src, "coords")
	m := mem.New()
	block := Dim2(5, 3) // 15 threads: one partial warp
	grid := Dim2(2, 2)
	out := m.Alloc(uint32(4 * block.Count() * grid.Count()))
	l := &Launch{Kernel: k, Grid: grid, Block: block, Params: []uint32{out}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Spot check: CTA (x=1,y=0) linear = 1*2+0 = 2; thread (x=4,y=2)
	// linear tid = 2*5+4 = 14; value = ctaid.y*1000 + 14 = 14.
	cta := 2
	addr := out + uint32(cta*block.Count()*4) + uint32(14*4)
	if got := m.Read32(addr); got != 14 {
		t.Errorf("coords value = %d, want 14", got)
	}
}

func TestMaxWarpInstsTruncates(t *testing.T) {
	k := mustKernel(t, loopSumSrc, "loopsum")
	m := mem.New()
	out := m.Alloc(4 * 32)
	l := &Launch{Kernel: k, Grid: Dim1(4), Block: Dim1(32), Params: []uint32{out, 1000000}}
	res, err := Run(&Env{Mem: m, Launch: l}, RunOptions{MaxWarpInsts: 500})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Truncated {
		t.Errorf("run not truncated")
	}
	if res.WarpInsts < 500 || res.WarpInsts > 500+warpSlice {
		t.Errorf("WarpInsts = %d, want ~500", res.WarpInsts)
	}
}

func TestListenerSeesLoadAddresses(t *testing.T) {
	k := mustKernel(t, vecAddSrc, "vecadd")
	m := mem.New()
	const n = 64
	aBase := m.AllocU32s(make([]uint32, n))
	bBase := m.AllocU32s(make([]uint32, n))
	cBase := m.Alloc(4 * n)
	l := &Launch{Kernel: k, Grid: Dim1(2), Block: Dim1(32), Params: []uint32{aBase, bBase, cBase, n}}

	var loadSteps int
	var sawCoalesced bool
	listener := func(ctaID int, w *Warp, s *Step) {
		if !s.Inst.IsGlobalLoad() {
			return
		}
		loadSteps++
		// All 32 lanes active, consecutive addresses.
		if s.ExecCount() == 32 {
			ok := true
			for lane := 1; lane < 32; lane++ {
				if s.Addrs[lane] != s.Addrs[0]+uint32(4*lane) {
					ok = false
				}
			}
			if ok {
				sawCoalesced = true
			}
		}
	}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{Listener: listener}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if loadSteps != 4 { // 2 loads × 2 CTAs × 1 warp each... (2 warps per CTA of 32 threads? block=32 → 1 warp) = 2 loads × 2 CTAs
		t.Logf("loadSteps = %d", loadSteps)
	}
	if !sawCoalesced {
		t.Errorf("expected fully coalesced load addresses")
	}
}

func TestLaunchValidate(t *testing.T) {
	k := mustKernel(t, vecAddSrc, "vecadd")
	bad := []*Launch{
		{Kernel: k, Grid: Dim1(1), Block: Dim1(32), Params: []uint32{1, 2}},      // wrong param count
		{Kernel: k, Grid: Dim1(0), Block: Dim1(32), Params: make([]uint32, 4)},   // empty grid
		{Kernel: k, Grid: Dim1(1), Block: Dim1(2048), Params: make([]uint32, 4)}, // block too large
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("launch %d validated unexpectedly", i)
		}
	}
}

func TestGuardedExitRetiresLanes(t *testing.T) {
	// Lanes < 16 exit early; the rest write 7.
	src := `
.kernel gexit
.param .u32 out
    mov.u32      %r0, %tid.x;
    setp.lt.u32  %p0, %r0, 16;
@%p0 exit;
    ld.param.u32 %r1, [out];
    shl.u32      %r2, %r0, 2;
    add.u32      %r3, %r1, %r2;
    st.global.u32 [%r3], 7;
    exit;
`
	k := mustKernel(t, src, "gexit")
	m := mem.New()
	out := m.Alloc(4 * 32)
	l := &Launch{Kernel: k, Grid: Dim1(1), Block: Dim1(32), Params: []uint32{out}}
	if _, err := Run(&Env{Mem: m, Launch: l}, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(0)
		if i >= 16 {
			want = 7
		}
		if got := m.Read32(out + uint32(4*i)); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestStepMasksExposeActiveCounts(t *testing.T) {
	var s Step
	s.Active = 0xff
	s.Exec = 0x0f
	if s.ActiveCount() != 8 || s.ExecCount() != 4 {
		t.Errorf("counts = %d/%d, want 8/4", s.ActiveCount(), s.ExecCount())
	}
}

func TestUnitAssignment(t *testing.T) {
	prog, err := ptx.Parse(`
.kernel u
    mov.u32 %r0, 1;
    cvt.f32.u32 %r1, %r0;
    sqrt.f32 %r2, %r1;
    ld.global.u32 %r3, [65536];
    exit;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	if k.Insts[0].Unit() != isa.UnitSP {
		t.Errorf("mov unit = %v", k.Insts[0].Unit())
	}
	if k.Insts[2].Unit() != isa.UnitSFU {
		t.Errorf("sqrt unit = %v", k.Insts[2].Unit())
	}
	if k.Insts[3].Unit() != isa.UnitLDST {
		t.Errorf("ld unit = %v", k.Insts[3].Unit())
	}
}
