package emu

import (
	"fmt"
	"math"

	"critload/internal/isa"
)

// Execute runs the warp's next instruction against env, updating register
// state, memory, and the SIMT stack, and returns the execution record.
// Calling Execute on a finished warp is a programming error and returns an
// error.
func (w *Warp) Execute(env *Env) (Step, error) {
	w.normalize()
	if len(w.stack) == 0 {
		return Step{}, fmt.Errorf("emu: execute on finished warp")
	}
	top := &w.stack[len(w.stack)-1]
	pc := top.pc
	in := w.kernel.Insts[pc]
	active := top.mask

	exec := active
	if in.Guard.Active() {
		bits := w.preds[in.Guard.Reg]
		if in.Guard.Negate {
			bits = ^bits
		}
		exec &= bits
	}

	step := Step{Inst: in, Active: active, Exec: exec}
	w.InstructionsExecuted++

	switch in.Op {
	case isa.OpBra:
		w.execBranch(in, pc, active, exec)
		return step, nil
	case isa.OpExit, isa.OpRet:
		w.execExit(exec) // removes exec lanes from every stack entry
		// Guard-false lanes, if any, continue at the next instruction.
		if t := lastEntry(w.stack); t != nil && t.pc == pc && t.mask != 0 {
			t.pc++
		}
		w.normalize()
		step.Exited = w.DoneNoNormalize()
		return step, nil
	case isa.OpBar:
		w.AtBarrier = true
		step.Barrier = true
		top.pc++
		return step, nil
	}

	var err error
	switch in.Op {
	case isa.OpLd:
		err = w.execLoad(env, in, exec, &step)
	case isa.OpSt:
		err = w.execStore(env, in, exec, &step)
	case isa.OpAtom:
		err = w.execAtomic(env, in, exec, &step)
	default:
		w.execALU(env, in, exec)
	}
	if err != nil {
		return step, fmt.Errorf("emu: %s (PC 0x%x): %w", in, in.PC, err)
	}
	top.pc++
	return step, nil
}

func lastEntry(s []stackEntry) *stackEntry {
	if len(s) == 0 {
		return nil
	}
	return &s[len(s)-1]
}

// DoneNoNormalize reports warp completion without mutating the stack; used
// right after normalize.
func (w *Warp) DoneNoNormalize() bool { return len(w.stack) == 0 }

func (w *Warp) execBranch(in *isa.Instruction, pc int, active, exec uint32) {
	taken := exec
	fall := active &^ taken
	top := &w.stack[len(w.stack)-1]
	switch {
	case taken == 0:
		top.pc = pc + 1
	case fall == 0:
		top.pc = in.Targ
	default:
		rpc := w.kernel.ReconvergencePC(pc)
		// Current entry becomes the reconvergence continuation with the
		// union mask; execute the two sides under fresh entries.
		top.pc = rpc
		w.stack = append(w.stack,
			stackEntry{pc: pc + 1, rpc: rpc, mask: fall},
			stackEntry{pc: in.Targ, rpc: rpc, mask: taken},
		)
	}
}

func (w *Warp) execExit(exec uint32) {
	for i := range w.stack {
		w.stack[i].mask &^= exec
	}
}

func (w *Warp) execLoad(env *Env, in *isa.Instruction, exec uint32, step *Step) error {
	src := in.Srcs[0]
	dst := in.Dst.Reg
	switch in.Space {
	case isa.SpaceParam:
		off, ok := w.kernel.ParamOffset(src.Param)
		if !ok {
			return fmt.Errorf("unknown param %q", src.Param)
		}
		byteOff := off + int(src.Imm)
		if byteOff%4 != 0 || byteOff/4 >= len(env.Launch.Params) {
			return fmt.Errorf("param access [%s+%d] out of range", src.Param, src.Imm)
		}
		v := env.Launch.Params[byteOff/4]
		for lane := 0; lane < WarpSize; lane++ {
			if exec&(1<<lane) != 0 {
				w.SetReg(dst, lane, v)
			}
		}
		return nil
	case isa.SpaceGlobal, isa.SpaceConst, isa.SpaceTex:
		step.Mem = in.Space != isa.SpaceConst
		for lane := 0; lane < WarpSize; lane++ {
			if exec&(1<<lane) == 0 {
				continue
			}
			addr := w.effAddr(src, lane)
			step.Addrs[lane] = addr
			w.SetReg(dst, lane, env.Mem.Read32(addr))
		}
		return nil
	case isa.SpaceShared:
		step.Mem = true
		for lane := 0; lane < WarpSize; lane++ {
			if exec&(1<<lane) == 0 {
				continue
			}
			addr := w.effAddr(src, lane)
			step.Addrs[lane] = addr
			v, err := w.sharedRead(addr)
			if err != nil {
				return err
			}
			w.SetReg(dst, lane, v)
		}
		return nil
	default:
		return fmt.Errorf("unsupported load space %s", in.Space)
	}
}

func (w *Warp) execStore(env *Env, in *isa.Instruction, exec uint32, step *Step) error {
	addrOpd := in.Srcs[0]
	valOpd := in.Srcs[1]
	switch in.Space {
	case isa.SpaceGlobal:
		step.Mem = true
		for lane := 0; lane < WarpSize; lane++ {
			if exec&(1<<lane) == 0 {
				continue
			}
			addr := w.effAddr(addrOpd, lane)
			step.Addrs[lane] = addr
			env.Mem.Write32(addr, w.value(env, valOpd, lane))
		}
		return nil
	case isa.SpaceShared:
		step.Mem = true
		for lane := 0; lane < WarpSize; lane++ {
			if exec&(1<<lane) == 0 {
				continue
			}
			addr := w.effAddr(addrOpd, lane)
			step.Addrs[lane] = addr
			if err := w.sharedWrite(addr, w.value(env, valOpd, lane)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported store space %s", in.Space)
	}
}

func (w *Warp) execAtomic(env *Env, in *isa.Instruction, exec uint32, step *Step) error {
	if in.Space != isa.SpaceGlobal {
		return fmt.Errorf("atomics supported on global memory only")
	}
	step.Mem = true
	dst := in.Dst.Reg
	for lane := 0; lane < WarpSize; lane++ {
		if exec&(1<<lane) == 0 {
			continue
		}
		addr := w.effAddr(in.Srcs[0], lane)
		step.Addrs[lane] = addr
		old := env.Mem.Read32(addr)
		b := w.value(env, in.Srcs[1], lane)
		var nv uint32
		switch in.Atom {
		case isa.AtomAdd:
			nv = old + b
		case isa.AtomMin:
			nv = minByType(in.Type, old, b)
		case isa.AtomMax:
			nv = maxByType(in.Type, old, b)
		case isa.AtomExch:
			nv = b
		case isa.AtomOr:
			nv = old | b
		case isa.AtomAnd:
			nv = old & b
		case isa.AtomCAS:
			c := w.value(env, in.Srcs[2], lane)
			if old == b {
				nv = c
			} else {
				nv = old
			}
		default:
			return fmt.Errorf("unsupported atomic %s", in.Atom)
		}
		env.Mem.Write32(addr, nv)
		if in.Dst.Kind == isa.OpdReg {
			w.SetReg(dst, lane, old)
		}
	}
	return nil
}

func (w *Warp) sharedRead(addr uint32) (uint32, error) {
	sh := w.CTA.Shared
	if int(addr)+4 > len(sh) {
		return 0, fmt.Errorf("shared read at %d beyond %d bytes", addr, len(sh))
	}
	return uint32(sh[addr]) | uint32(sh[addr+1])<<8 | uint32(sh[addr+2])<<16 | uint32(sh[addr+3])<<24, nil
}

func (w *Warp) sharedWrite(addr uint32, v uint32) error {
	sh := w.CTA.Shared
	if int(addr)+4 > len(sh) {
		return fmt.Errorf("shared write at %d beyond %d bytes", addr, len(sh))
	}
	sh[addr] = byte(v)
	sh[addr+1] = byte(v >> 8)
	sh[addr+2] = byte(v >> 16)
	sh[addr+3] = byte(v >> 24)
	return nil
}

// effAddr computes a lane's effective address for a memory operand.
func (w *Warp) effAddr(o isa.Operand, lane int) uint32 {
	if o.Reg < 0 {
		return uint32(o.Imm)
	}
	return w.Reg(o.Reg, lane) + uint32(int32(o.Imm))
}

// value evaluates a non-memory source operand in a lane.
func (w *Warp) value(env *Env, o isa.Operand, lane int) uint32 {
	switch o.Kind {
	case isa.OpdReg:
		return w.Reg(o.Reg, lane)
	case isa.OpdImm:
		return uint32(int32(o.Imm))
	case isa.OpdFImm:
		return math.Float32bits(float32(o.FImm))
	case isa.OpdSReg:
		return w.sregValue(env.Launch, o.SReg, lane)
	case isa.OpdPred:
		if w.Pred(o.Reg, lane) {
			return 1
		}
		return 0
	}
	return 0
}

func (w *Warp) execALU(env *Env, in *isa.Instruction, exec uint32) {
	for lane := 0; lane < WarpSize; lane++ {
		if exec&(1<<lane) == 0 {
			continue
		}
		switch in.Op {
		case isa.OpSetp:
			a := w.value(env, in.Srcs[0], lane)
			b := w.value(env, in.Srcs[1], lane)
			w.SetPred(in.Dst.Reg, lane, compare(in.Type, in.Cmp, a, b))
		case isa.OpSelp:
			a := w.value(env, in.Srcs[0], lane)
			b := w.value(env, in.Srcs[1], lane)
			p := in.Srcs[2]
			v := b
			if p.Kind == isa.OpdPred && w.Pred(p.Reg, lane) {
				v = a
			}
			w.SetReg(in.Dst.Reg, lane, v)
		default:
			w.SetReg(in.Dst.Reg, lane, w.alu(env, in, lane))
		}
	}
}

func (w *Warp) alu(env *Env, in *isa.Instruction, lane int) uint32 {
	val := func(i int) uint32 { return w.value(env, in.Srcs[i], lane) }
	t := in.Type
	switch in.Op {
	case isa.OpMov:
		return val(0)
	case isa.OpAdd:
		if t.Float() {
			return fbits(ffrom(val(0)) + ffrom(val(1)))
		}
		return val(0) + val(1)
	case isa.OpSub:
		if t.Float() {
			return fbits(ffrom(val(0)) - ffrom(val(1)))
		}
		return val(0) - val(1)
	case isa.OpMul:
		if t.Float() {
			return fbits(ffrom(val(0)) * ffrom(val(1)))
		}
		return val(0) * val(1)
	case isa.OpMulHi:
		if t.Signed() {
			return uint32(uint64(int64(int32(val(0)))*int64(int32(val(1)))) >> 32)
		}
		return uint32((uint64(val(0)) * uint64(val(1))) >> 32)
	case isa.OpMad:
		if t.Float() {
			return fbits(ffrom(val(0))*ffrom(val(1)) + ffrom(val(2)))
		}
		return val(0)*val(1) + val(2)
	case isa.OpDiv:
		if t.Float() {
			return fbits(ffrom(val(0)) / ffrom(val(1)))
		}
		b := val(1)
		if b == 0 {
			return 0
		}
		if t.Signed() {
			return uint32(int32(val(0)) / int32(b))
		}
		return val(0) / b
	case isa.OpRem:
		b := val(1)
		if b == 0 {
			return 0
		}
		if t.Signed() {
			return uint32(int32(val(0)) % int32(b))
		}
		return val(0) % b
	case isa.OpMin:
		return minByType(t, val(0), val(1))
	case isa.OpMax:
		return maxByType(t, val(0), val(1))
	case isa.OpAbs:
		if t.Float() {
			return fbits(float32(math.Abs(float64(ffrom(val(0))))))
		}
		v := int32(val(0))
		if v < 0 {
			v = -v
		}
		return uint32(v)
	case isa.OpNeg:
		if t.Float() {
			return fbits(-ffrom(val(0)))
		}
		return uint32(-int32(val(0)))
	case isa.OpAnd:
		return val(0) & val(1)
	case isa.OpOr:
		return val(0) | val(1)
	case isa.OpXor:
		return val(0) ^ val(1)
	case isa.OpNot:
		return ^val(0)
	case isa.OpShl:
		return val(0) << (val(1) & 31)
	case isa.OpShr:
		if t.Signed() {
			return uint32(int32(val(0)) >> (val(1) & 31))
		}
		return val(0) >> (val(1) & 31)
	case isa.OpCvt:
		return convert(in.Type, in.SrcType, val(0))
	case isa.OpSqrt:
		return fbits(float32(math.Sqrt(float64(ffrom(val(0))))))
	case isa.OpRsqrt:
		return fbits(float32(1 / math.Sqrt(float64(ffrom(val(0))))))
	case isa.OpRcp:
		return fbits(1 / ffrom(val(0)))
	case isa.OpSin:
		return fbits(float32(math.Sin(float64(ffrom(val(0))))))
	case isa.OpCos:
		return fbits(float32(math.Cos(float64(ffrom(val(0))))))
	case isa.OpEx2:
		return fbits(float32(math.Exp2(float64(ffrom(val(0))))))
	case isa.OpLg2:
		return fbits(float32(math.Log2(float64(ffrom(val(0))))))
	case isa.OpNop:
		return 0
	}
	return 0
}

func ffrom(bits uint32) float32 { return math.Float32frombits(bits) }
func fbits(f float32) uint32    { return math.Float32bits(f) }

func convert(dst, src isa.DType, v uint32) uint32 {
	switch {
	case dst == src:
		return v
	case dst.Float() && src == isa.S32:
		return fbits(float32(int32(v)))
	case dst.Float():
		return fbits(float32(v))
	case src.Float() && dst == isa.S32:
		return uint32(int32(ffrom(v)))
	case src.Float():
		f := ffrom(v)
		if f < 0 {
			return 0
		}
		return uint32(f)
	default:
		return v
	}
}

func compare(t isa.DType, c isa.CmpOp, a, b uint32) bool {
	var lt, eq bool
	switch {
	case t.Float():
		fa, fb := ffrom(a), ffrom(b)
		lt, eq = fa < fb, fa == fb
	case t.Signed():
		lt, eq = int32(a) < int32(b), a == b
	default:
		lt, eq = a < b, a == b
	}
	switch c {
	case isa.CmpEQ:
		return eq
	case isa.CmpNE:
		return !eq
	case isa.CmpLT:
		return lt
	case isa.CmpLE:
		return lt || eq
	case isa.CmpGT:
		return !lt && !eq
	case isa.CmpGE:
		return !lt
	}
	return false
}

func minByType(t isa.DType, a, b uint32) uint32 {
	switch {
	case t.Float():
		if ffrom(a) < ffrom(b) {
			return a
		}
		return b
	case t.Signed():
		if int32(a) < int32(b) {
			return a
		}
		return b
	default:
		if a < b {
			return a
		}
		return b
	}
}

func maxByType(t isa.DType, a, b uint32) uint32 {
	switch {
	case t.Float():
		if ffrom(a) > ffrom(b) {
			return a
		}
		return b
	case t.Signed():
		if int32(a) > int32(b) {
			return a
		}
		return b
	default:
		if a > b {
			return a
		}
		return b
	}
}
