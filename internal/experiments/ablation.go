package experiments

import (
	"critload/internal/gpu"
	"critload/internal/sm"
	"critload/internal/stats"
	"critload/internal/workloads"
)

// AblationRow compares one workload under two configurations.
type AblationRow struct {
	Name     string
	Category workloads.Category
	// Baseline / variant cycle counts and L1 hit ratios.
	BaseCycles, VariantCycles         int64
	BaseL1Hit, VariantL1Hit           float64
	BaseTurnaround, VariantTurnaround float64
}

func l1HitRatio(col *stats.Collector) float64 {
	acc := col.L1Acc[stats.Det] + col.L1Acc[stats.NonDet]
	miss := col.L1Miss[stats.Det] + col.L1Miss[stats.NonDet]
	if acc == 0 {
		return 0
	}
	return 1 - float64(miss)/float64(acc)
}

func meanTurnaround(col *stats.Collector) float64 {
	t := col.Turnaround[stats.Det]
	n := col.Turnaround[stats.NonDet]
	ops := t.Ops + n.Ops
	if ops == 0 {
		return 0
	}
	return float64(t.Total+n.Total) / float64(ops)
}

// AblationCTAScheduling compares the hardware round-robin CTA scheduler with
// the clustered scheduler from Section X.B (neighbouring CTAs on the same SM
// to convert inter-CTA sharing into L1 hits).
func AblationCTAScheduling(opts Options) ([]AblationRow, error) {
	base := opts.gpuConfig()
	base.CTAPolicy = gpu.CTARoundRobin
	variant := base
	variant.CTAPolicy = gpu.CTAClustered
	return compare(opts, base, variant)
}

// AblationWarpScheduler compares the loose-round-robin warp scheduler with
// greedy-then-oldest, the kind of instruction-aware specialization
// Section X.A motivates.
func AblationWarpScheduler(opts Options) ([]AblationRow, error) {
	base := opts.gpuConfig()
	base.SM.Policy = sm.LRR
	variant := base
	variant.SM.Policy = sm.GTO
	return compare(opts, base, variant)
}

// AblationNonDetBypass compares the baseline L1 with the Section X.A
// instruction-specific optimization that routes non-deterministic loads
// around the L1, freeing its tags and MSHRs for deterministic loads.
func AblationNonDetBypass(opts Options) ([]AblationRow, error) {
	base := opts.gpuConfig()
	base.SM.NonDetBypassL1 = false
	variant := base
	variant.SM.NonDetBypassL1 = true
	return compare(opts, base, variant)
}

// AblationNextLinePrefetch compares the baseline with a next-line L1
// prefetcher, the kind of application-oblivious mechanism the paper argues
// should instead be instruction-aware: it helps unit-stride deterministic
// streams and pollutes the cache for non-deterministic ones.
func AblationNextLinePrefetch(opts Options) ([]AblationRow, error) {
	base := opts.gpuConfig()
	base.SM.PrefetchNextLine = false
	variant := base
	variant.SM.PrefetchNextLine = true
	return compare(opts, base, variant)
}

// AblationSemiGlobalL2 compares the unified L2 of Table II with the
// Section X.C semi-global organization (L2 slice groups private to SM
// clusters).
func AblationSemiGlobalL2(opts Options) ([]AblationRow, error) {
	base := opts.gpuConfig()
	base.L2Clusters = 0
	variant := base
	variant.L2Clusters = 2
	return compare(opts, base, variant)
}

func compare(opts Options, base, variant gpu.Config) ([]AblationRow, error) {
	var rows []AblationRow
	err := runAll(opts, func(name string) error {
		bOpts := opts
		bOpts.GPU = &base
		bRun, err := RunTiming(name, bOpts)
		if err != nil {
			return err
		}
		vOpts := opts
		vOpts.GPU = &variant
		vRun, err := RunTiming(name, vOpts)
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Name:              name,
			Category:          bRun.Workload.Category,
			BaseCycles:        bRun.Cycles,
			VariantCycles:     vRun.Cycles,
			BaseL1Hit:         l1HitRatio(bRun.Col),
			VariantL1Hit:      l1HitRatio(vRun.Col),
			BaseTurnaround:    meanTurnaround(bRun.Col),
			VariantTurnaround: meanTurnaround(vRun.Col),
		})
		return nil
	})
	return rows, err
}
