package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"critload/internal/gpu"
	"critload/internal/workloads"
)

// BenchCase is one workload/size pair of the tracked performance baseline
// (BENCH_sim.json). The base sizes are chosen so the naive serial engine
// finishes each case in seconds — the baseline is re-measured on every
// change, and the same cases back BenchmarkEngine in bench_test.go. The 4x
// and 8x variants of the memory-bound pair deliberately run minutes on the
// serial engine: they are the long-run targets where engine overheads
// amortize (the parallel-crossover question) and where checkpoint reuse has
// real prefixes to skip; cmd/bench measures anything past its long-run
// cutoff once instead of best-of-N.
type BenchCase struct {
	Name string
	Size int
	// MemoryBound marks the cases the fast-forward acceptance criterion is
	// judged on: long DRAM stalls are where event-horizon skipping pays.
	MemoryBound bool
}

// BenchCases returns the baseline workload set: compute-bound controls where
// skipping cannot pay, one throughput-bound graph traversal whose per-cycle
// L1 retries are irreducible under byte-identity (every attempt mutates the
// Figure 3 outcome counters, pinning the horizon), and memory-latency-bound
// cases where most cycles are pure memory waits and event-horizon skipping
// dominates. The MemoryBound rows carry the ≥2x acceptance criterion.
func BenchCases() []BenchCase {
	return []BenchCase{
		{Name: "2mm", Size: 32, MemoryBound: false},
		{Name: "srad", Size: 32, MemoryBound: false},
		{Name: "bfs", Size: 256, MemoryBound: false},
		{Name: "spmv", Size: 64, MemoryBound: true},
		// At 4x/8x, spmv stops being latency-bound: enough rows keep the
		// LD/ST and partition queues busy that most cycles retry a head
		// access and pin the horizon (skipped fraction falls from ~69% to
		// ~17%), so these rows are long-run targets, not part of the
		// fast-forward acceptance geomean.
		{Name: "spmv", Size: 256, MemoryBound: false},
		{Name: "spmv", Size: 512, MemoryBound: false},
		{Name: "grm", Size: 48, MemoryBound: true},
		{Name: "grm", Size: 64, MemoryBound: true},
		{Name: "grm", Size: 192, MemoryBound: true},
		// grm crosses over later than spmv — 4x is still latency-bound
		// (63% skipped) — but at 8x occupancy is high enough that retry
		// traffic pins the horizon too (44.9% skipped).
		{Name: "grm", Size: 384, MemoryBound: false},
	}
}

// EngineMeasurement is one engine's cost running one BenchCase.
type EngineMeasurement struct {
	WallSeconds float64 `json:"wall_seconds"`
	Cycles      int64   `json:"cycles"`
	// SkippedCycles is how many of Cycles the engine fast-forwarded over
	// (0 for the naive engine by construction).
	SkippedCycles   int64   `json:"skipped_cycles"`
	WarpInsts       uint64  `json:"warp_insts"`
	CyclesPerSec    float64 `json:"cycles_per_sec"`
	WarpInstsPerSec float64 `json:"warp_insts_per_sec"`
	// Heap traffic for the whole run (input generation included, identical
	// for both engines), from runtime.MemStats deltas.
	Mallocs          uint64  `json:"mallocs"`
	AllocBytes       uint64  `json:"alloc_bytes"`
	MallocsPerKCycle float64 `json:"mallocs_per_kcycle"`
}

// MeasureEngine runs one baseline case on the chosen engine and reports wall
// time, simulation throughput and heap traffic for the simulation alone:
// workload input generation happens outside the measured window. Each call
// builds a fresh GPU and workload instance, so successive measurements are
// independent.
func MeasureEngine(c BenchCase, seed int64, fastForward bool) (EngineMeasurement, error) {
	cfg := gpu.DefaultConfig()
	cfg.FastForward = fastForward
	return MeasureEngineConfig(c, seed, cfg)
}

// MeasureParallel measures the parallel phase-barrier engine (composed with
// fast-forward and the adaptive controller, its production configuration) at
// the given worker count. On a host without a core per worker the adaptive
// controller demotes to the serial loop body, so this row degrades to ~FF
// throughput instead of measuring barrier overhead the host cannot hide.
func MeasureParallel(c BenchCase, seed int64, workers int) (EngineMeasurement, error) {
	cfg := gpu.DefaultConfig()
	cfg.Parallel = true
	cfg.Workers = workers
	cfg.Adaptive = true
	return MeasureEngineConfig(c, seed, cfg)
}

// MeasureEngineConfig is the engine-agnostic measurement core: it runs one
// baseline case under an arbitrary device configuration.
func MeasureEngineConfig(c BenchCase, seed int64, cfg gpu.Config) (EngineMeasurement, error) {
	opts := Options{Size: c.Size, Seed: seed, GPU: &cfg}

	w, ok := workloads.Get(c.Name)
	if !ok {
		return EngineMeasurement{}, fmt.Errorf("bench: unknown workload %q", c.Name)
	}
	inst, err := w.Setup(workloads.Params{Size: c.Size, Seed: seed})
	if err != nil {
		return EngineMeasurement{}, fmt.Errorf("bench %s setup: %w", c.Name, err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	run, err := runTimingInst(context.Background(), w, inst, opts)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return EngineMeasurement{}, fmt.Errorf("bench %s (fastforward=%v parallel=%v): %w",
			c.Name, cfg.FastForward, cfg.Parallel, err)
	}

	m := EngineMeasurement{
		WallSeconds:   wall,
		Cycles:        run.Cycles,
		SkippedCycles: run.SkippedCycles,
		WarpInsts:     run.Col.WarpInsts,
		Mallocs:       after.Mallocs - before.Mallocs,
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
	}
	if wall > 0 {
		m.CyclesPerSec = float64(run.Cycles) / wall
		m.WarpInstsPerSec = float64(run.Col.WarpInsts) / wall
	}
	if run.Cycles > 0 {
		m.MallocsPerKCycle = 1000 * float64(m.Mallocs) / float64(run.Cycles)
	}
	return m, nil
}
