package experiments

import (
	"testing"

	"critload/internal/checkpoint"
	"critload/internal/gpu"
)

// TestPrefixKeyInvariants pins the prefix-key contract: engine selection and
// run-length budgets must not split the keyspace (all engines are
// byte-identical and budget validity is checked at load time), while anything
// architectural must.
func TestPrefixKeyInvariants(t *testing.T) {
	base := gpu.DefaultConfig()
	ref := prefixKey("2mm", 32, 7, base)

	neutral := map[string]func(*gpu.Config){
		"fastforward": func(c *gpu.Config) { c.FastForward = !c.FastForward },
		"parallel":    func(c *gpu.Config) { c.Parallel = true; c.Workers = 8 },
		"max-cycles":  func(c *gpu.Config) { c.MaxCycles = 123 },
		"max-insts":   func(c *gpu.Config) { c.MaxWarpInsts = 456 },
	}
	for name, mutate := range neutral {
		cfg := base
		mutate(&cfg)
		if prefixKey("2mm", 32, 7, cfg) != ref {
			t.Errorf("%s changed the prefix key; sweeps over it cannot share checkpoints", name)
		}
	}

	distinct := map[string]checkpoint.Key{
		"workload": prefixKey("lu", 32, 7, base),
		"size":     prefixKey("2mm", 64, 7, base),
		"seed":     prefixKey("2mm", 32, 8, base),
	}
	archCfg := base
	archCfg.NumSMs++
	distinct["arch"] = prefixKey("2mm", 32, 7, archCfg)
	for name, k := range distinct {
		if k == ref {
			t.Errorf("%s did not change the prefix key; foreign state could be restored", name)
		}
	}
}

// TestWarmStartFallsBackOnCorruptPayload proves the never-poison contract: a
// structurally intact store entry whose payload is not a device snapshot must
// degrade the run to a cold start that still produces correct results.
func TestWarmStartFallsBackOnCorruptPayload(t *testing.T) {
	ref, err := RunTiming("gaus", Options{Size: 24, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	store, err := checkpoint.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Size: 24, Seed: 7, Checkpoints: store}
	key := prefixKey("gaus", 24, 7, opts.gpuConfig())
	if err := store.Save(key, checkpoint.Meta{Index: 1, Cycle: 10, WarpInsts: 10},
		[]byte("not a device snapshot")); err != nil {
		t.Fatal(err)
	}

	got, err := RunTiming("gaus", opts)
	if err != nil {
		t.Fatalf("run with poisoned store: %v", err)
	}
	if got.WarmStartIndex != 0 {
		t.Fatalf("run warm-started from a corrupt payload (index %d)", got.WarmStartIndex)
	}
	if diffs := DiffRuns(ref, got); len(diffs) > 0 {
		t.Fatalf("cold fallback diverges from reference:\n%s", diffs[0])
	}
	if err := got.Instance.Verify(); err != nil {
		t.Fatalf("cold fallback failed verification: %v", err)
	}
}

// TestWarmStartRespectsBudgets proves load-time validity: a checkpoint deeper
// than the run's instruction budget must not be restored, and a tighter
// budget reproduces the cold run of that budget exactly.
func TestWarmStartRespectsBudgets(t *testing.T) {
	store, err := checkpoint.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Populate from a complete run.
	full, err := RunTiming("srad", Options{Size: 32, Seed: 7, Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Saves == 0 {
		t.Fatalf("complete run saved nothing: %+v", st)
	}

	// A budget below the first boundary: nothing to resume from.
	budget := uint64(100)
	ref, err := RunTiming("srad", Options{Size: 32, Seed: 7, MaxWarpInsts: budget})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTiming("srad", Options{Size: 32, Seed: 7, MaxWarpInsts: budget, Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmStartIndex != 0 {
		t.Fatalf("tiny budget warm-started at %d; checkpoint deeper than the window", got.WarmStartIndex)
	}
	if diffs := DiffRuns(ref, got); len(diffs) > 0 {
		t.Fatalf("budgeted run with store diverges:\n%s", diffs[0])
	}

	// A mid-run budget: resume is allowed but only from a boundary strictly
	// inside the window, and the result still matches the budgeted cold run.
	budget = full.Col.WarpInsts / 2
	ref, err = RunTiming("srad", Options{Size: 32, Seed: 7, MaxWarpInsts: budget})
	if err != nil {
		t.Fatal(err)
	}
	got, err = RunTiming("srad", Options{Size: 32, Seed: 7, MaxWarpInsts: budget, Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmStartIndex > 0 && got.WarmStartCycles >= ref.Cycles {
		t.Fatalf("resumed past the measurement window: inherited %d of %d cycles",
			got.WarmStartCycles, ref.Cycles)
	}
	if diffs := DiffRuns(ref, got); len(diffs) > 0 {
		t.Fatalf("mid-budget run with store diverges:\n%s", diffs[0])
	}
}
