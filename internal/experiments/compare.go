package experiments

import (
	"fmt"
	"reflect"
)

// DescribeRun summarizes the collector counters most likely to diverge
// between two engines, so a determinism failure points at the broken
// subsystem instead of a bare "not equal".
func DescribeRun(r *Run) string {
	c := r.Col
	return fmt.Sprintf(
		"cycles=%d gpuCycles=%d smCycles=%d unitBusy=%v warpInsts=%d l1Outcomes=%v l2Acc=%v l2Miss=%v turnaround=%+v",
		r.Cycles, c.GPUCycles, c.SMCycles, c.UnitBusy, c.WarpInsts,
		c.L1Outcomes, c.L2Acc, c.L2Miss, c.Turnaround)
}

// DiffEngineRuns compares N runs of the same work executed by different
// engines against the first run (the oracle), labelling each divergence with
// the engine names. An empty slice means every run is byte-identical to the
// oracle. labels and runs must be the same length, with at least the oracle.
func DiffEngineRuns(labels []string, runs []*Run) []string {
	if len(labels) != len(runs) || len(runs) == 0 {
		return []string{fmt.Sprintf("DiffEngineRuns: %d labels for %d runs", len(labels), len(runs))}
	}
	var diffs []string
	for i := 1; i < len(runs); i++ {
		for _, d := range DiffRuns(runs[0], runs[i]) {
			diffs = append(diffs, fmt.Sprintf("%s vs %s: %s", labels[0], labels[i], d))
		}
	}
	return diffs
}

// DiffRuns compares two runs of the same work executed by different engines
// (or by the same engine twice) and returns human-readable differences; an
// empty slice means the runs are byte-identical. This is the PR 3
// fast-forward-versus-serial contract, packaged so the differential-testing
// harness and the determinism tests share one comparator.
func DiffRuns(a, b *Run) []string {
	var diffs []string
	if a.Cycles != b.Cycles {
		diffs = append(diffs, fmt.Sprintf("cycle counts diverge: %d vs %d", a.Cycles, b.Cycles))
	}
	if !reflect.DeepEqual(a.Col, b.Col) {
		diffs = append(diffs, fmt.Sprintf("statistics collectors diverge:\n  a: %s\n  b: %s",
			DescribeRun(a), DescribeRun(b)))
	}
	return diffs
}
