package experiments

import (
	"reflect"
	"testing"

	"critload/internal/gpu"
	"critload/internal/stats"
)

// describe summarizes the collector counters most likely to diverge, so a
// determinism failure points at the broken subsystem instead of a bare
// "not equal".
func describe(t *testing.T, label string, r *Run) {
	t.Helper()
	c := r.Col
	t.Logf("%s: cycles=%d gpuCycles=%d smCycles=%d unitBusy=%v warpInsts=%d",
		label, r.Cycles, c.GPUCycles, c.SMCycles, c.UnitBusy, c.WarpInsts)
	t.Logf("%s: l1Outcomes=%v l2Acc=%v l2Miss=%v turnaround=%+v",
		label, c.L1Outcomes, c.L2Acc, c.L2Miss, c.Turnaround)
}

// TestFastForwardMatchesSerialLoop is the fast-forward engine's core
// contract: for every workload, event-horizon skipping must produce a
// byte-identical statistics collector and the same cycle count as the
// naive one-cycle-at-a-time loop it replaces.
func TestFastForwardMatchesSerialLoop(t *testing.T) {
	for name, size := range timingSmokeSizes {
		name, size := name, size
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serialCfg := gpu.DefaultConfig()
			serialCfg.FastForward = false

			fast, err := RunTiming(name, Options{Size: size, Seed: 7})
			if err != nil {
				t.Fatalf("fast-forward run: %v", err)
			}
			serial, err := RunTiming(name, Options{Size: size, Seed: 7, GPU: &serialCfg})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if fast.Cycles != serial.Cycles {
				t.Errorf("cycles diverge: fast-forward %d, serial %d", fast.Cycles, serial.Cycles)
			}
			if !reflect.DeepEqual(fast.Col, serial.Col) {
				t.Errorf("statistics diverge between fast-forward and serial engines")
				describe(t, "fast-forward", fast)
				describe(t, "serial", serial)
			}
		})
	}
}

// TestTimingRunsAreDeterministic re-runs a compute-bound, a memory-bound and
// an irregular workload and requires identical statistics: the simulator has
// no hidden nondeterminism (map iteration, pooling artifacts, timers).
func TestTimingRunsAreDeterministic(t *testing.T) {
	for _, name := range []string{"2mm", "spmv", "bfs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts := Options{Size: timingSmokeSizes[name], Seed: 11}
			first, err := RunTiming(name, opts)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := RunTiming(name, opts)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if first.Cycles != second.Cycles {
				t.Errorf("cycles diverge across runs: %d vs %d", first.Cycles, second.Cycles)
			}
			if !reflect.DeepEqual(first.Col, second.Col) {
				t.Errorf("statistics diverge across identical runs")
				describe(t, "first", first)
				describe(t, "second", second)
			}
			if first.Col.Turnaround[stats.Det].Ops+first.Col.Turnaround[stats.NonDet].Ops == 0 {
				t.Errorf("no turnarounds recorded; determinism check is vacuous")
			}
		})
	}
}
