package experiments

import (
	"testing"

	"critload/internal/gpu"
	"critload/internal/stats"
)

// TestFastForwardMatchesSerialLoop is the fast-forward engine's core
// contract: for every workload, event-horizon skipping must produce a
// byte-identical statistics collector and the same cycle count as the
// naive one-cycle-at-a-time loop it replaces.
func TestFastForwardMatchesSerialLoop(t *testing.T) {
	for name, size := range timingSmokeSizes {
		name, size := name, size
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serialCfg := gpu.DefaultConfig()
			serialCfg.FastForward = false

			fast, err := RunTiming(name, Options{Size: size, Seed: 7})
			if err != nil {
				t.Fatalf("fast-forward run: %v", err)
			}
			serial, err := RunTiming(name, Options{Size: size, Seed: 7, GPU: &serialCfg})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			for _, d := range DiffRuns(fast, serial) {
				t.Errorf("fast-forward vs serial: %s", d)
			}
		})
	}
}

// TestTimingRunsAreDeterministic re-runs a compute-bound, a memory-bound and
// an irregular workload and requires identical statistics: the simulator has
// no hidden nondeterminism (map iteration, pooling artifacts, timers).
func TestTimingRunsAreDeterministic(t *testing.T) {
	for _, name := range []string{"2mm", "spmv", "bfs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts := Options{Size: timingSmokeSizes[name], Seed: 11}
			first, err := RunTiming(name, opts)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := RunTiming(name, opts)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			for _, d := range DiffRuns(first, second) {
				t.Errorf("repeat run: %s", d)
			}
			if first.Col.Turnaround[stats.Det].Ops+first.Col.Turnaround[stats.NonDet].Ops == 0 {
				t.Errorf("no turnarounds recorded; determinism check is vacuous")
			}
		})
	}
}
