// Package experiments reproduces every table and figure of the paper's
// evaluation: it runs the fifteen workloads on the functional emulator
// (whole-application statistics: Table I, Fig 1, 2, 9, 10, 11, 12) and on
// the timing simulator (microarchitectural statistics: Fig 3, 4, 5, 6, 7, 8),
// and exposes one generator per artifact.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"critload/internal/checkpoint"
	"critload/internal/dataflow"
	"critload/internal/emu"
	_ "critload/internal/families" // register family: workload names

	"critload/internal/gpu"
	"critload/internal/sm"
	"critload/internal/stats"
	"critload/internal/workloads"
)

// Options configures an experiment sweep.
type Options struct {
	// Workloads to run; empty = all fifteen.
	Workloads []string
	// Size overrides each workload's default problem size (0 = default).
	Size int
	// Seed drives input generation.
	Seed int64
	// MaxWarpInsts bounds each timing run, mirroring the paper's
	// first-billion-instructions simulation window (0 = run to completion).
	MaxWarpInsts uint64
	// MaxCycles bounds each timing run's cycle count
	// (0 = DefaultMaxCycles), so service jobs can tighten the livelock
	// safety net.
	MaxCycles int64
	// GPU is the device configuration for timing runs; zero value = Table II.
	GPU *gpu.Config
	// Tracer, when non-nil, receives every completed memory request of
	// timing runs (see the trace package).
	Tracer sm.Tracer
	// Checkpoints, when non-nil, enables incremental simulation for timing
	// runs: each run resumes from the deepest valid checkpoint sharing its
	// prefix key and saves a checkpoint at every kernel-launch boundary it
	// simulates. Results are byte-identical to cold runs (the difftest fifth
	// oracle enforces it); any checkpoint problem falls back to a cold run.
	// Ignored while a Tracer is installed — a warm start would skip the
	// prefix's trace entries.
	Checkpoints *checkpoint.Store
	// Progress, when non-nil, receives a heartbeat at every kernel-launch
	// boundary: the simulated cycle count so far (always 0 for functional
	// runs, which have no clock) and warp instructions executed. The
	// service layer forwards it to jobs.ReportProgress so a long run's
	// position is visible on its API snapshot.
	Progress func(cycles int64, warpInsts uint64)
}

func (o Options) names() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workloads.Names()
}

// DefaultMaxCycles is the timing-run cycle bound applied when Options
// leaves MaxCycles zero: generous enough for complete paper-scale runs,
// finite so a livelocked simulation cannot hang a sweep.
const DefaultMaxCycles = 500_000_000

func (o Options) gpuConfig() gpu.Config {
	cfg := gpu.DefaultConfig()
	if o.GPU != nil {
		cfg = *o.GPU
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultMaxCycles
	}
	if o.MaxCycles > 0 {
		cfg.MaxCycles = o.MaxCycles
	}
	return cfg
}

// Run bundles the statistics of one workload execution.
type Run struct {
	Workload *workloads.Workload
	Instance *workloads.Instance
	Col      *stats.Collector
	Cycles   int64
	// SkippedCycles is the portion of Cycles the fast-forward engine jumped
	// over instead of stepping (always 0 for functional and serial runs).
	SkippedCycles int64
	// WarmStartIndex is the kernel-launch boundary this run resumed from
	// (0 = cold start); set only when Options.Checkpoints is enabled.
	WarmStartIndex int
	// WarmStartCycles is the number of simulated cycles inherited from the
	// checkpoint instead of re-simulated (0 for cold starts).
	WarmStartCycles int64
	// PhaseStats carries the parallel engine's phase diagnostics (fusion and
	// adaptive-controller decisions); zero for the serial engines. Like
	// SkippedCycles it is informational and excluded from byte-identity
	// comparisons.
	PhaseStats gpu.PhaseStats
}

// suiteCall is one singleflight execution slot: the first caller runs the
// workload, every concurrent caller blocks on done and shares the result.
type suiteCall struct {
	done chan struct{}
	r    *Run
	err  error
}

// Suite caches one functional and one timing run per workload so that the
// table/figure generators sharing it run each application once, the way one
// profiling session feeds many plots in the paper. It is safe for concurrent
// use: simultaneous requests for the same workload are deduplicated, so a
// parallel sweep never simulates an application twice.
type Suite struct {
	Opts Options

	mu sync.Mutex
	fn map[string]*suiteCall
	tm map[string]*suiteCall
}

// NewSuite builds an empty suite over the given options.
func NewSuite(opts Options) *Suite {
	return &Suite{Opts: opts, fn: map[string]*suiteCall{}, tm: map[string]*suiteCall{}}
}

// share runs exec(name) at most once per key concurrently: the first caller
// executes, later callers wait and share. A failed call is forgotten so a
// later retry is possible, but concurrent waiters observe the same error.
func (s *Suite) share(ctx context.Context, m map[string]*suiteCall, name string,
	exec func(context.Context, string, Options) (*Run, error)) (*Run, error) {
	s.mu.Lock()
	if c, ok := m[name]; ok {
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.r, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &suiteCall{done: make(chan struct{})}
	m[name] = c
	s.mu.Unlock()

	c.r, c.err = exec(ctx, name, s.Opts)
	if c.err != nil {
		s.mu.Lock()
		delete(m, name)
		s.mu.Unlock()
	}
	close(c.done)
	return c.r, c.err
}

// Functional returns the cached functional run of a workload, executing it
// on first use.
func (s *Suite) Functional(name string) (*Run, error) {
	return s.FunctionalCtx(context.Background(), name)
}

// FunctionalCtx is Functional with cancellation between kernel launches.
func (s *Suite) FunctionalCtx(ctx context.Context, name string) (*Run, error) {
	return s.share(ctx, s.fn, name, RunFunctionalCtx)
}

// Timing returns the cached timing run of a workload, executing it on first
// use.
func (s *Suite) Timing(name string) (*Run, error) {
	return s.TimingCtx(context.Background(), name)
}

// TimingCtx is Timing with cancellation between kernel launches.
func (s *Suite) TimingCtx(ctx context.Context, name string) (*Run, error) {
	return s.share(ctx, s.tm, name, RunTimingCtx)
}

// classifiers builds a per-kernel classifier map for an instance.
func classifiers(inst *workloads.Instance) map[string]stats.Classifier {
	out := make(map[string]stats.Classifier, len(inst.Prog.Kernels))
	for _, k := range inst.Prog.Kernels {
		res := dataflow.Classify(k)
		out[k.Name] = func(pc uint32) bool {
			li, ok := res.Load(int(pc) / 8)
			return ok && li.Class == dataflow.NonDeterministic
		}
	}
	return out
}

// RunFunctional executes a workload on the functional emulator, collecting
// whole-application statistics. MaxWarpInsts is deliberately ignored here:
// the paper's profiler-based measurements cover complete runs, and the
// functional figures (Table I, Fig 1-2, 9-12) depend on full coverage.
func RunFunctional(name string, opts Options) (*Run, error) {
	return RunFunctionalCtx(context.Background(), name, opts)
}

// RunFunctionalCtx is RunFunctional with cooperative cancellation: the run
// stops with ctx's error at the next kernel-launch boundary once ctx is
// cancelled or past its deadline.
func RunFunctionalCtx(ctx context.Context, name string, opts Options) (*Run, error) {
	w, ok := workloads.Get(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	inst, err := w.Setup(workloads.Params{Size: opts.Size, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s setup: %w", name, err)
	}
	col := stats.New()
	class := classifiers(inst)
	var current stats.Classifier
	listener := func(ctaID int, warp *emu.Warp, s *emu.Step) {
		col.ObserveStep(ctaID, s, current)
	}
	inner := workloads.FunctionalExecutor(inst.Mem, listener, 0)
	exec := func(l *emu.Launch) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if opts.Progress != nil {
			opts.Progress(0, col.WarpInsts)
		}
		current = class[l.Kernel.Name]
		return inner(l)
	}
	if err := inst.Run(exec); err != nil {
		return nil, fmt.Errorf("experiments: %s run: %w", name, err)
	}
	if opts.Progress != nil {
		opts.Progress(0, col.WarpInsts)
	}
	return &Run{Workload: w, Instance: inst, Col: col}, nil
}

// RunTiming executes a workload on the cycle-level GPU simulator. When the
// warp-instruction budget is exhausted, remaining launches are skipped (the
// statistics window closes, exactly like the paper's bounded GPGPU-Sim runs).
func RunTiming(name string, opts Options) (*Run, error) {
	return RunTimingCtx(context.Background(), name, opts)
}

// RunTimingCtx is RunTiming with cooperative cancellation at kernel-launch
// boundaries, mirroring RunFunctionalCtx.
func RunTimingCtx(ctx context.Context, name string, opts Options) (*Run, error) {
	w, ok := workloads.Get(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	inst, err := w.Setup(workloads.Params{Size: opts.Size, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s setup: %w", name, err)
	}
	return runTimingInst(ctx, w, inst, opts)
}

// runTimingInst simulates an already-built instance; split from RunTimingCtx
// so the benchmark harness can time the simulation alone, excluding input
// generation. With a checkpoint store configured it takes the incremental
// path; any warm-start failure (corrupt blob, diverged launch sequence) is
// recovered by re-running cold from a fresh instance, so checkpoints can cost
// time but never poison a result.
func runTimingInst(ctx context.Context, w *workloads.Workload, inst *workloads.Instance, opts Options) (*Run, error) {
	if opts.Checkpoints != nil && opts.Tracer == nil {
		run, err := runTimingCheckpointed(ctx, w, inst, opts)
		var ws *warmStartError
		if err == nil || !errors.As(err, &ws) {
			return run, err
		}
		inst2, serr := w.Setup(workloads.Params{Size: opts.Size, Seed: opts.Seed})
		if serr != nil {
			return nil, fmt.Errorf("experiments: %s re-setup after failed warm start: %w", w.Name, serr)
		}
		inst = inst2
	}
	return runTimingCold(ctx, w, inst, opts)
}

// runTimingCold is the straight-through timing run: no checkpoint use.
func runTimingCold(ctx context.Context, w *workloads.Workload, inst *workloads.Instance, opts Options) (*Run, error) {
	col := stats.New()
	cfg := opts.gpuConfig()
	cfg.MaxWarpInsts = opts.MaxWarpInsts
	g := gpu.MustNew(cfg, inst.Mem, col)
	if opts.Tracer != nil {
		g.SetTracer(opts.Tracer)
	}
	exec := func(l *emu.Launch) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if opts.Progress != nil {
			opts.Progress(g.Cycle(), col.WarpInsts)
		}
		if opts.MaxWarpInsts > 0 && col.WarpInsts >= opts.MaxWarpInsts {
			return nil // budget exhausted: close the measurement window
		}
		return g.LaunchKernel(l)
	}
	if err := inst.Run(exec); err != nil {
		return nil, fmt.Errorf("experiments: %s timing run: %w", w.Name, err)
	}
	if opts.Progress != nil {
		opts.Progress(g.Cycle(), col.WarpInsts)
	}
	return &Run{Workload: w, Instance: inst, Col: col, Cycles: g.Cycle(),
		SkippedCycles: g.SkippedCycles, PhaseStats: g.Phases}, nil
}

// runAll maps fn over the selected workloads.
func runAll(opts Options, fn func(name string) error) error {
	for _, name := range opts.names() {
		if err := fn(name); err != nil {
			return err
		}
	}
	return nil
}
