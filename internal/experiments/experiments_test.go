package experiments

import (
	"testing"

	"critload/internal/cache"
	"critload/internal/isa"
	"critload/internal/memreq"
	"critload/internal/stats"
	"critload/internal/workloads"
)

// tinyOpts runs a quick subset at reduced scale for unit testing.
func tinyOpts(names ...string) Options {
	return Options{
		Workloads:    names,
		Size:         0, // workload-specific defaults are small enough per workload below
		Seed:         7,
		MaxWarpInsts: 60_000,
	}
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	rows, err := Table1(Options{Workloads: []string{"2mm", "bfs"}, Size: 0, Seed: 1,
		MaxWarpInsts: 0})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TotalInsts == 0 || r.GlobalLoads == 0 {
			t.Errorf("%s: empty counts %+v", r.Name, r)
		}
		if r.LoadFraction <= 0 || r.LoadFraction >= 1 {
			t.Errorf("%s: load fraction %v", r.Name, r.LoadFraction)
		}
	}
	// 2mm's load fraction should land near the paper's 18.1% (our kernels
	// are leaner than nvcc output, so exact density differs).
	if rows[0].LoadFraction < 0.08 || rows[0].LoadFraction > 0.30 {
		t.Errorf("2mm load fraction %v, want near the paper's 0.18", rows[0].LoadFraction)
	}
}

func TestFigure1GraphAppsHaveNonDetLoads(t *testing.T) {
	rows, err := Figure1(Options{Workloads: []string{"lu", "bfs"}, Size: 0, Seed: 2})
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	byName := map[string]Fig1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if lu := byName["lu"]; lu.NonDet != 0 || lu.Det != 1 {
		t.Errorf("lu split = %+v, want all deterministic", lu)
	}
	bfs := byName["bfs"]
	if bfs.NonDet <= 0.05 {
		t.Errorf("bfs non-det fraction = %v, want substantial", bfs.NonDet)
	}
	// The paper: even in graph apps more than ~50%% of load warps are
	// deterministic on average; bfs specifically stays majority-det.
	if bfs.Det < 0.5 {
		t.Errorf("bfs det fraction = %v, implausibly low", bfs.Det)
	}
}

func TestFigure2NonDetGeneratesMoreRequests(t *testing.T) {
	rows, err := Figure2(Options{Workloads: []string{"bfs"}, Seed: 3})
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	r := rows[0]
	if r.ReqPerWarp[stats.NonDet] <= r.ReqPerWarp[stats.Det] {
		t.Errorf("bfs requests/warp: nondet %v <= det %v",
			r.ReqPerWarp[stats.NonDet], r.ReqPerWarp[stats.Det])
	}
	if r.ReqPerThread[stats.NonDet] <= r.ReqPerThread[stats.Det] {
		t.Errorf("bfs requests/thread: nondet %v <= det %v",
			r.ReqPerThread[stats.NonDet], r.ReqPerThread[stats.Det])
	}
}

func TestFigure3BreakdownSumsToOne(t *testing.T) {
	rows, err := Figure3(Options{Workloads: []string{"spmv"}, Size: 8192, Seed: 3})
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	r := rows[0]
	var sum float64
	for _, f := range r.Fractions {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
	if r.Attempts == 0 {
		t.Errorf("no L1 attempts recorded")
	}
	_ = cache.NumOutcomes
}

func TestFigure4LDSTBusiestOnMemoryBoundApp(t *testing.T) {
	// A complete run at moderate scale so the frontier actually grows.
	rows, err := Figure4(Options{Workloads: []string{"bfs"}, Size: 8192, Seed: 3})
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	r := rows[0]
	for u := isa.FuncUnit(0); u < isa.NumFuncUnits; u++ {
		if r.Idle[u] < 0 || r.Idle[u] > 1 {
			t.Errorf("idle[%v] = %v out of range", u, r.Idle[u])
		}
	}
	// The paper: LD/ST is busier (less idle) than SP and SFU.
	if r.Idle[isa.UnitLDST] >= r.Idle[isa.UnitSP] {
		t.Errorf("LD/ST idle %v >= SP idle %v, want LD/ST busier",
			r.Idle[isa.UnitLDST], r.Idle[isa.UnitSP])
	}
}

func TestFigure5NonDetTurnaroundLonger(t *testing.T) {
	rows, err := Figure5(Options{Workloads: []string{"bfs"}, Size: 8192, Seed: 3})
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	r := rows[0]
	if r.Ops[stats.Det] == 0 || r.Ops[stats.NonDet] == 0 {
		t.Fatalf("missing ops: %+v", r.Ops)
	}
	if r.Total[stats.NonDet] <= r.Total[stats.Det] {
		t.Errorf("nondet turnaround %v <= det %v", r.Total[stats.NonDet], r.Total[stats.Det])
	}
	// Components must add up to the total (within accumulation rounding).
	for c := stats.Category(0); c < stats.NumCats; c++ {
		sum := r.Unloaded[c] + r.RsrvPrev[c] + r.RsrvCurr[c] + r.MemSys[c]
		if sum > r.Total[c]+1 {
			t.Errorf("cat %v: components %v exceed total %v", c, sum, r.Total[c])
		}
	}
}

func TestFigure6TurnaroundGrowsWithRequests(t *testing.T) {
	series, err := Figure6(Options{Workloads: []string{"bfs"}, Size: 8192, Seed: 4})
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	var nd *Fig6Series
	for i := range series {
		if series[i].NonDet {
			nd = &series[i]
		}
	}
	if nd == nil || len(nd.Points) == 0 {
		t.Fatalf("no non-deterministic series: %+v", series)
	}
	// Non-deterministic loads vary their request count across instances.
	if len(nd.Points) < 2 {
		t.Errorf("nondet series has %d request-count buckets, want >= 2", len(nd.Points))
	}
	first, last := nd.Points[0], nd.Points[len(nd.Points)-1]
	if last.NReq > first.NReq && last.MeanTurnaround <= first.MeanTurnaround {
		t.Errorf("turnaround not increasing: %v@%d -> %v@%d",
			first.MeanTurnaround, first.NReq, last.MeanTurnaround, last.NReq)
	}
}

func TestFigure7GapBreakdown(t *testing.T) {
	res, err := Figure7(Options{Size: 8192, Seed: 5})
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if res.Workload != "bfs" || len(res.Buckets) == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	for _, b := range res.Buckets {
		if b.Common <= 0 {
			t.Errorf("bucket %d: zero common latency", b.NReq)
		}
		if b.Total < b.Common {
			t.Errorf("bucket %d: total %v < common %v", b.NReq, b.Total, b.Common)
		}
	}
}

func TestFigure8MissRatios(t *testing.T) {
	rows, err := Figure8(Options{Workloads: []string{"spmv"}, Size: 8192, Seed: 3})
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	r := rows[0]
	for c := stats.Category(0); c < stats.NumCats; c++ {
		if r.L1Miss[c] < 0 || r.L1Miss[c] > 1 || r.L2Miss[c] < 0 || r.L2Miss[c] > 1 {
			t.Errorf("cat %v: ratios out of range L1=%v L2=%v", c, r.L1Miss[c], r.L2Miss[c])
		}
	}
	// Streaming sparse data: the deterministic loads must miss substantially
	// in L1 (the paper reports >50%% for most apps).
	if r.L1Miss[stats.Det] < 0.2 {
		t.Errorf("spmv det L1 miss ratio %v suspiciously low", r.L1Miss[stats.Det])
	}
}

func TestFigure9ImageAppsUseSharedMemory(t *testing.T) {
	rows, err := Figure9(Options{Workloads: []string{"htw", "bfs"}, Seed: 6})
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["htw"].SharedPerGlobal <= 1 {
		t.Errorf("htw shared/global = %v, want > 1 (image apps are shared-heavy)",
			byName["htw"].SharedPerGlobal)
	}
	if byName["bfs"].SharedPerGlobal != 0 {
		t.Errorf("bfs shared/global = %v, want 0", byName["bfs"].SharedPerGlobal)
	}
}

func TestFigure10ColdMissesAreRare(t *testing.T) {
	rows, err := Figure10(Options{Workloads: []string{"2mm"}, Size: 48, Seed: 7})
	if err != nil {
		t.Fatalf("Figure10: %v", err)
	}
	r := rows[0]
	if r.ColdMissRatio <= 0 || r.ColdMissRatio >= 0.5 {
		t.Errorf("2mm cold-miss ratio = %v, want small but nonzero", r.ColdMissRatio)
	}
	if r.AccessPerBlock < 10 {
		t.Errorf("2mm accesses/block = %v, want heavy reuse", r.AccessPerBlock)
	}
}

func TestFigure11InterCTASharing(t *testing.T) {
	rows, err := Figure11(Options{Workloads: []string{"2mm", "bfs"}, Size: 0, Seed: 8})
	if err != nil {
		t.Fatalf("Figure11: %v", err)
	}
	for _, r := range rows {
		if r.SharedBlockRatio <= 0 {
			t.Errorf("%s: no inter-CTA shared blocks", r.Name)
		}
		if r.SharedAccessRatio < r.SharedBlockRatio {
			// The paper: shared blocks attract disproportionately many
			// accesses (50.9%% of accesses vs 28.7%% of blocks).
			t.Logf("%s: access ratio %v < block ratio %v", r.Name, r.SharedAccessRatio, r.SharedBlockRatio)
		}
		if r.Name == "2mm" && r.SharedBlockRatio < 0.9 {
			t.Errorf("2mm shared-block ratio = %v; paper: every block shared", r.SharedBlockRatio)
		}
	}
}

func TestFigure12NeighbourCTAsShareMost(t *testing.T) {
	rows, err := Figure12(Options{Workloads: []string{"2mm"}, Size: 48, Seed: 9})
	if err != nil {
		t.Fatalf("Figure12: %v", err)
	}
	bins := rows[0].Bins
	if len(bins) == 0 {
		t.Fatalf("no distance bins")
	}
	// Distance 1 must be the most frequent sharing distance for dense
	// matrix multiply (Fig 12a).
	best := bins[0]
	for _, b := range bins {
		if b.Count > best.Count {
			best = b
		}
	}
	if best.Distance != 1 {
		t.Errorf("dominant CTA distance = %d, want 1", best.Distance)
	}
}

func TestAblationsRun(t *testing.T) {
	rows, err := AblationCTAScheduling(Options{Workloads: []string{"2mm"}, Size: 32, Seed: 10, MaxWarpInsts: 50_000})
	if err != nil {
		t.Fatalf("AblationCTAScheduling: %v", err)
	}
	if len(rows) != 1 || rows[0].BaseCycles == 0 || rows[0].VariantCycles == 0 {
		t.Errorf("bad ablation rows %+v", rows)
	}
	rows, err = AblationWarpScheduler(Options{Workloads: []string{"bfs"}, Size: 512, Seed: 10, MaxWarpInsts: 50_000})
	if err != nil {
		t.Fatalf("AblationWarpScheduler: %v", err)
	}
	if len(rows) != 1 || rows[0].BaseCycles == 0 {
		t.Errorf("bad ablation rows %+v", rows)
	}
}

func TestExtensionAblations(t *testing.T) {
	opts := Options{Workloads: []string{"spmv"}, Size: 2048, Seed: 10}
	rows, err := AblationNonDetBypass(opts)
	if err != nil {
		t.Fatalf("AblationNonDetBypass: %v", err)
	}
	if len(rows) != 1 || rows[0].VariantCycles == 0 {
		t.Fatalf("bad rows %+v", rows)
	}
	// With spmv's non-deterministic gathers off the L1, the remaining
	// (deterministic) accesses see a different hit profile; the run must
	// stay functionally correct either way — compare() re-runs Setup, so
	// just check cycle counts moved at all or stayed positive.
	if rows[0].BaseCycles <= 0 || rows[0].VariantCycles <= 0 {
		t.Errorf("cycles = %+v", rows[0])
	}

	rows, err = AblationSemiGlobalL2(opts)
	if err != nil {
		t.Fatalf("AblationSemiGlobalL2: %v", err)
	}
	if len(rows) != 1 || rows[0].VariantCycles == 0 {
		t.Errorf("bad rows %+v", rows)
	}

	rows, err = AblationNextLinePrefetch(opts)
	if err != nil {
		t.Fatalf("AblationNextLinePrefetch: %v", err)
	}
	if len(rows) != 1 || rows[0].VariantCycles == 0 {
		t.Errorf("bad rows %+v", rows)
	}
}

func TestPrefetcherIssuesPrefetches(t *testing.T) {
	cfg := Options{}.gpuConfig()
	cfg.SM.PrefetchNextLine = true
	r, err := RunTiming("2mm", Options{Size: 32, Seed: 3, GPU: &cfg})
	if err != nil {
		t.Fatalf("RunTiming: %v", err)
	}
	if r.Col.Prefetches == 0 {
		t.Errorf("no prefetches issued on a streaming workload")
	}
}

func TestTracerReceivesRequests(t *testing.T) {
	tr := &countingTracer{}
	_, err := RunTiming("spmv", Options{Size: 1024, Seed: 3, Tracer: tr})
	if err != nil {
		t.Fatalf("RunTiming: %v", err)
	}
	if tr.n == 0 {
		t.Errorf("tracer saw no requests")
	}
}

type countingTracer struct{ n int }

func (c *countingTracer) Add(r *memreq.Request) { c.n++ }

func TestUnknownWorkloadErrors(t *testing.T) {
	if _, err := RunFunctional("nope", Options{}); err == nil {
		t.Errorf("RunFunctional accepted unknown workload")
	}
	if _, err := RunTiming("nope", Options{}); err == nil {
		t.Errorf("RunTiming accepted unknown workload")
	}
	_ = workloads.Names()
}
