package experiments

import (
	"fmt"
	"sort"

	"critload/internal/cache"
	"critload/internal/isa"
	"critload/internal/stats"
	"critload/internal/workloads"
)

// Table1Row is one application's row of Table I.
type Table1Row struct {
	Name          string
	Category      workloads.Category
	DataSet       string
	Description   string
	CTAs          int
	ThreadsPerCTA int
	TotalInsts    uint64
	GlobalLoads   uint64
	LoadFraction  float64
}

// Table1 reproduces Table I (application characteristics) from functional
// whole-application runs.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Functional(name)
		if err != nil {
			return err
		}
		gl := r.Col.GLoadWarps[stats.Det] + r.Col.GLoadWarps[stats.NonDet]
		row := Table1Row{
			Name:          name,
			Category:      r.Workload.Category,
			DataSet:       r.Workload.DataSet,
			Description:   r.Workload.Description,
			CTAs:          r.Instance.CTAs,
			ThreadsPerCTA: r.Instance.ThreadsPerCTA,
			TotalInsts:    r.Col.WarpInsts,
			GlobalLoads:   gl,
		}
		if row.TotalInsts > 0 {
			row.LoadFraction = float64(gl) / float64(row.TotalInsts)
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// Fig1Row is one bar of Figure 1: the deterministic / non-deterministic
// split of dynamic global-load warps.
type Fig1Row struct {
	Name     string
	Category workloads.Category
	Det      float64
	NonDet   float64
}

// Figure1 reproduces the load-classification distribution.
func (s *Suite) Figure1() ([]Fig1Row, error) {
	var rows []Fig1Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Functional(name)
		if err != nil {
			return err
		}
		det, nondet := r.Col.LoadFraction()
		rows = append(rows, Fig1Row{Name: name, Category: r.Workload.Category, Det: det, NonDet: nondet})
		return nil
	})
	return rows, err
}

// Fig2Row is one application's Figure 2 data: memory requests per warp and
// per active thread, for each category.
type Fig2Row struct {
	Name             string
	Category         workloads.Category
	ReqPerWarp       [stats.NumCats]float64
	ReqPerThread     [stats.NumCats]float64
	LoadWarpsByCat   [stats.NumCats]uint64
	RequestsByCat    [stats.NumCats]uint64
	ThreadLoadsByCat [stats.NumCats]uint64
}

// Figure2 reproduces requests per warp / active thread from functional runs
// (coalescing is scheduler independent).
func (s *Suite) Figure2() ([]Fig2Row, error) {
	var rows []Fig2Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Functional(name)
		if err != nil {
			return err
		}
		row := Fig2Row{Name: name, Category: r.Workload.Category}
		for c := stats.Category(0); c < stats.NumCats; c++ {
			row.ReqPerWarp[c] = r.Col.RequestsPerWarp(c)
			row.ReqPerThread[c] = r.Col.RequestsPerActiveThread(c)
			row.LoadWarpsByCat[c] = r.Col.GLoadWarps[c]
			row.RequestsByCat[c] = r.Col.Requests[c]
			row.ThreadLoadsByCat[c] = r.Col.GLoadThreads[c]
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// Fig3Row is one application's Figure 3 breakdown of L1 data-cache cycles.
type Fig3Row struct {
	Name     string
	Category workloads.Category
	// Fractions indexed by cache.Outcome (sums to 1 over all attempts).
	Fractions [cache.NumOutcomes]float64
	Attempts  uint64
}

// Figure3 reproduces the L1 cache-cycle breakdown from timing runs.
func (s *Suite) Figure3() ([]Fig3Row, error) {
	var rows []Fig3Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Timing(name)
		if err != nil {
			return err
		}
		row := Fig3Row{Name: name, Category: r.Workload.Category, Fractions: r.Col.L1CycleBreakdown()}
		for c := stats.Category(0); c < stats.NumCats; c++ {
			for o := 0; o < int(cache.NumOutcomes); o++ {
				row.Attempts += r.Col.L1Outcomes[c][o]
			}
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// Fig4Row is one application's Figure 4 data: idle fraction per unit.
type Fig4Row struct {
	Name     string
	Category workloads.Category
	Idle     [isa.NumFuncUnits]float64
}

// Figure4 reproduces the function-unit idle fractions from timing runs.
func (s *Suite) Figure4() ([]Fig4Row, error) {
	var rows []Fig4Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Timing(name)
		if err != nil {
			return err
		}
		row := Fig4Row{Name: name, Category: r.Workload.Category}
		for u := isa.FuncUnit(0); u < isa.NumFuncUnits; u++ {
			row.Idle[u] = r.Col.UnitIdleFraction(u)
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// Fig5Row is one application's Figure 5 turnaround decomposition per
// category (mean cycles per load warp).
type Fig5Row struct {
	Name     string
	Category workloads.Category
	// Per category: unloaded, reservation fails by previous warps,
	// reservation fails by the current warp, wasted in L2/DRAM/icnt.
	Unloaded [stats.NumCats]float64
	RsrvPrev [stats.NumCats]float64
	RsrvCurr [stats.NumCats]float64
	MemSys   [stats.NumCats]float64
	Total    [stats.NumCats]float64
	Ops      [stats.NumCats]uint64
}

// Figure5 reproduces the load turnaround decomposition from timing runs.
func (s *Suite) Figure5() ([]Fig5Row, error) {
	var rows []Fig5Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Timing(name)
		if err != nil {
			return err
		}
		row := Fig5Row{Name: name, Category: r.Workload.Category}
		for c := stats.Category(0); c < stats.NumCats; c++ {
			t := r.Col.Turnaround[c]
			row.Unloaded[c], row.RsrvPrev[c], row.RsrvCurr[c], row.MemSys[c] = t.Mean()
			row.Total[c] = t.MeanTotal()
			row.Ops[c] = t.Ops
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// Fig6Point is one (requests, mean turnaround) point of a Figure 6 series.
type Fig6Point struct {
	NReq           int
	MeanTurnaround float64
	Ops            uint64
}

// Fig6Series is one load instruction's turnaround-vs-requests curve.
type Fig6Series struct {
	Workload string
	Kernel   string
	PC       uint32
	NonDet   bool
	Points   []Fig6Point
}

// Figure6 reproduces turnaround time versus generated requests for the most
// frequently executed deterministic and non-deterministic loads of the
// selected workloads (the paper uses bfs, sssp and spmv).
func (s *Suite) Figure6() ([]Fig6Series, error) {
	opts := s.Opts
	if len(opts.Workloads) == 0 {
		opts.Workloads = []string{"bfs", "sssp", "spmv"}
	}
	var series []Fig6Series
	err := runAll(opts, func(name string) error {
		r, err := s.Timing(name)
		if err != nil {
			return err
		}
		series = append(series, topPCSeries(name, r, true)...)
		series = append(series, topPCSeries(name, r, false)...)
		return nil
	})
	return series, err
}

// topPCSeries extracts the busiest load of one class from a run.
func topPCSeries(name string, r *Run, nonDet bool) []Fig6Series {
	var best *stats.PCStats
	var bestOps uint64
	for _, p := range r.Col.PerPC {
		if p.NonDet != nonDet {
			continue
		}
		var ops uint64
		for _, g := range p.ByNReq {
			ops += g.Ops
		}
		if ops > bestOps {
			best, bestOps = p, ops
		}
	}
	if best == nil {
		return nil
	}
	s := Fig6Series{
		Workload: name, Kernel: best.Key.Kernel, PC: best.Key.PC, NonDet: nonDet,
	}
	for nreq, g := range best.ByNReq {
		if g.Ops == 0 {
			continue
		}
		s.Points = append(s.Points, Fig6Point{
			NReq:           nreq,
			MeanTurnaround: float64(g.Total) / float64(g.Ops),
			Ops:            g.Ops,
		})
	}
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].NReq < s.Points[j].NReq })
	return []Fig6Series{s}
}

// Fig7Bucket is one request-count bucket of the Figure 7 gap decomposition.
type Fig7Bucket struct {
	NReq      int
	Ops       uint64
	Common    float64 // unloaded latency of the slowest request
	GapL1D    float64 // waiting for L1 reservations
	GapIcntL2 float64 // queueing between L1 and L2
	GapL2Icnt float64 // response arrival spread
	Total     float64
}

// Fig7Result is the gap decomposition of one non-deterministic load.
type Fig7Result struct {
	Workload string
	Kernel   string
	PC       uint32
	Buckets  []Fig7Bucket
}

// Figure7 reproduces the per-request-count gap decomposition for the
// busiest non-deterministic load of bfs (the paper uses PC 0x110 of bfs).
func (s *Suite) Figure7() (*Fig7Result, error) {
	name := "bfs"
	if len(s.Opts.Workloads) == 1 {
		name = s.Opts.Workloads[0]
	}
	r, err := s.Timing(name)
	if err != nil {
		return nil, err
	}
	var best *stats.PCStats
	var bestOps uint64
	for _, p := range r.Col.PerPC {
		if !p.NonDet {
			continue
		}
		var ops uint64
		for _, g := range p.ByNReq {
			ops += g.Ops
		}
		if ops > bestOps {
			best, bestOps = p, ops
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: %s has no non-deterministic load", name)
	}
	res := &Fig7Result{Workload: name, Kernel: best.Key.Kernel, PC: best.Key.PC}
	for nreq, g := range best.ByNReq {
		if g.Ops == 0 {
			continue
		}
		n := float64(g.Ops)
		res.Buckets = append(res.Buckets, Fig7Bucket{
			NReq: nreq, Ops: g.Ops,
			Common:    float64(g.Common) / n,
			GapL1D:    float64(g.GapL1D) / n,
			GapIcntL2: float64(g.GapIcntL2) / n,
			GapL2Icnt: float64(g.GapL2Icnt) / n,
			Total:     float64(g.Total) / n,
		})
	}
	sort.Slice(res.Buckets, func(i, j int) bool { return res.Buckets[i].NReq < res.Buckets[j].NReq })
	return res, nil
}

// Fig8Row is one application's Figure 8 data: L1/L2 miss ratios per category.
type Fig8Row struct {
	Name     string
	Category workloads.Category
	L1Miss   [stats.NumCats]float64
	L2Miss   [stats.NumCats]float64
	L1Acc    [stats.NumCats]uint64
	L2Acc    [stats.NumCats]uint64
}

// Figure8 reproduces the per-category cache miss ratios from timing runs.
func (s *Suite) Figure8() ([]Fig8Row, error) {
	var rows []Fig8Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Timing(name)
		if err != nil {
			return err
		}
		row := Fig8Row{Name: name, Category: r.Workload.Category}
		for c := stats.Category(0); c < stats.NumCats; c++ {
			row.L1Miss[c] = stats.MissRatio(r.Col.L1Miss[c], r.Col.L1Acc[c])
			row.L2Miss[c] = stats.MissRatio(r.Col.L2Miss[c], r.Col.L2Acc[c])
			row.L1Acc[c] = r.Col.L1Acc[c]
			row.L2Acc[c] = r.Col.L2Acc[c]
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// Fig9Row is one application's Figure 9 data: shared loads per global load.
type Fig9Row struct {
	Name            string
	Category        workloads.Category
	SharedPerGlobal float64
	SharedLoads     uint64
	GlobalLoads     uint64
}

// Figure9 reproduces the shared-vs-global load ratio from functional runs
// (the paper collects it with the hardware profiler).
func (s *Suite) Figure9() ([]Fig9Row, error) {
	var rows []Fig9Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Functional(name)
		if err != nil {
			return err
		}
		gl := r.Col.GLoadWarps[stats.Det] + r.Col.GLoadWarps[stats.NonDet]
		row := Fig9Row{
			Name: name, Category: r.Workload.Category,
			SharedLoads: r.Col.SLoadWarps, GlobalLoads: gl,
		}
		if gl > 0 {
			row.SharedPerGlobal = float64(r.Col.SLoadWarps) / float64(gl)
		}
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

// Fig10Row is one application's Figure 10 data: cold-miss ratio and mean
// accesses per 128-byte block.
type Fig10Row struct {
	Name           string
	Category       workloads.Category
	ColdMissRatio  float64
	AccessPerBlock float64
	DistinctBlocks uint64
}

// Figure10 reproduces the cold-miss analysis from functional runs.
func (s *Suite) Figure10() ([]Fig10Row, error) {
	var rows []Fig10Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Functional(name)
		if err != nil {
			return err
		}
		b := r.Col.Blocks()
		rows = append(rows, Fig10Row{
			Name: name, Category: r.Workload.Category,
			ColdMissRatio:  b.ColdMissRatio,
			AccessPerBlock: b.MeanAccessPerBlock,
			DistinctBlocks: b.DistinctBlocks,
		})
		return nil
	})
	return rows, err
}

// Fig11Row is one application's Figure 11 data: inter-CTA sharing.
type Fig11Row struct {
	Name              string
	Category          workloads.Category
	SharedBlockRatio  float64 // blocks touched by ≥2 CTAs / all blocks
	SharedAccessRatio float64 // accesses to such blocks / all accesses
	MeanCTAsPerShared float64
}

// Figure11 reproduces the inter-CTA data-sharing analysis.
func (s *Suite) Figure11() ([]Fig11Row, error) {
	var rows []Fig11Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Functional(name)
		if err != nil {
			return err
		}
		b := r.Col.Blocks()
		rows = append(rows, Fig11Row{
			Name: name, Category: r.Workload.Category,
			SharedBlockRatio:  b.SharedBlockRatio,
			SharedAccessRatio: b.SharedAccessRatio,
			MeanCTAsPerShared: b.MeanCTAsPerShared,
		})
		return nil
	})
	return rows, err
}

// Fig12Row is one application's CTA-distance histogram (Figure 12 plots
// these grouped per category).
type Fig12Row struct {
	Name     string
	Category workloads.Category
	Bins     []stats.DistanceBin
}

// Figure12 reproduces the CTA-distance frequency histograms.
func (s *Suite) Figure12() ([]Fig12Row, error) {
	var rows []Fig12Row
	err := runAll(s.Opts, func(name string) error {
		r, err := s.Functional(name)
		if err != nil {
			return err
		}
		rows = append(rows, Fig12Row{
			Name: name, Category: r.Workload.Category,
			Bins: r.Col.CTADistanceHistogram(),
		})
		return nil
	})
	return rows, err
}

// ---------------------------------------------------------------------------
// One-shot wrappers: build a throwaway suite per call. Callers generating
// several artifacts should share a Suite so each workload runs once.
// ---------------------------------------------------------------------------

// Table1 reproduces Table I with a fresh suite.
func Table1(opts Options) ([]Table1Row, error) { return NewSuite(opts).Table1() }

// Figure1 reproduces Figure 1 with a fresh suite.
func Figure1(opts Options) ([]Fig1Row, error) { return NewSuite(opts).Figure1() }

// Figure2 reproduces Figure 2 with a fresh suite.
func Figure2(opts Options) ([]Fig2Row, error) { return NewSuite(opts).Figure2() }

// Figure3 reproduces Figure 3 with a fresh suite.
func Figure3(opts Options) ([]Fig3Row, error) { return NewSuite(opts).Figure3() }

// Figure4 reproduces Figure 4 with a fresh suite.
func Figure4(opts Options) ([]Fig4Row, error) { return NewSuite(opts).Figure4() }

// Figure5 reproduces Figure 5 with a fresh suite.
func Figure5(opts Options) ([]Fig5Row, error) { return NewSuite(opts).Figure5() }

// Figure6 reproduces Figure 6 with a fresh suite.
func Figure6(opts Options) ([]Fig6Series, error) { return NewSuite(opts).Figure6() }

// Figure7 reproduces Figure 7 with a fresh suite.
func Figure7(opts Options) (*Fig7Result, error) { return NewSuite(opts).Figure7() }

// Figure8 reproduces Figure 8 with a fresh suite.
func Figure8(opts Options) ([]Fig8Row, error) { return NewSuite(opts).Figure8() }

// Figure9 reproduces Figure 9 with a fresh suite.
func Figure9(opts Options) ([]Fig9Row, error) { return NewSuite(opts).Figure9() }

// Figure10 reproduces Figure 10 with a fresh suite.
func Figure10(opts Options) ([]Fig10Row, error) { return NewSuite(opts).Figure10() }

// Figure11 reproduces Figure 11 with a fresh suite.
func Figure11(opts Options) ([]Fig11Row, error) { return NewSuite(opts).Figure11() }

// Figure12 reproduces Figure 12 with a fresh suite.
func Figure12(opts Options) ([]Fig12Row, error) { return NewSuite(opts).Figure12() }
