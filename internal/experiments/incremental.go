package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"critload/internal/checkpoint"
	"critload/internal/emu"
	"critload/internal/gpu"
	"critload/internal/stats"
	"critload/internal/workloads"
)

// prefixKey derives the checkpoint store key for one run prefix: a SHA-256
// over canonical JSON of everything that determines simulated state at a
// kernel-launch boundary — workload identity, problem size, input seed, and
// the architectural configuration. Engine selection and run-length budgets
// are deliberately excluded via Config.Arch(): all engines are byte-identical
// by the differential-testing contract, and budget validity is checked at
// load time (Store.Best), so a sweep varying only those fields shares one
// prefix.
func prefixKey(workload string, size int, seed int64, cfg gpu.Config) checkpoint.Key {
	material, err := json.Marshal(struct {
		Schema   string     `json:"schema"`
		Workload string     `json:"workload"`
		Size     int        `json:"size"`
		Seed     int64      `json:"seed"`
		GPU      gpu.Config `json:"gpu"`
	}{
		Schema:   "critload/checkpoint-prefix/v1",
		Workload: workload,
		Size:     size,
		Seed:     seed,
		GPU:      cfg.Arch(),
	})
	if err != nil {
		// The config is plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("experiments: prefix key material: %v", err))
	}
	return checkpoint.KeyOf(material)
}

// warmStartError marks a failure attributable to the warm-start machinery
// (restore, functional replay, or a checkpoint deeper than the actual launch
// sequence). runTimingInst catches it and re-runs cold from a fresh instance,
// so a bad checkpoint can cost time but never poison a result.
type warmStartError struct {
	stage string
	err   error
}

func (e *warmStartError) Error() string {
	return fmt.Sprintf("warm start %s: %v", e.stage, e.err)
}

func (e *warmStartError) Unwrap() error { return e.err }

// runTimingCheckpointed is runTimingInst's incremental path: it resumes from
// the deepest valid checkpoint of this run's prefix key (if any) and saves a
// checkpoint at every kernel-launch boundary it simulates.
//
// The warm-start protocol rests on the boundary invariant (the GPU drains
// completely between launches, so a snapshot captures all persistent state)
// plus one wrinkle: workload host logic may read device memory between
// launches (the graph workloads' convergence flags), so skipped boundaries
// must still present faithful memory to the host. Each skipped launch is
// covered by restoring the checkpoint of the boundary it produces — exact
// timing-engine memory, so host control flow stays faithful even where
// concurrent atomics make memory scheduling-sensitive (mst's winner-takes-all
// merges differ between the functional emulator and the cycle engines). Only
// when an intermediate checkpoint is missing (evicted) does the launch fall
// back to a functional replay; should that replay steer the host off the
// recorded launch sequence, the run degrades to a cold start rather than
// resuming into a mismatched prefix.
func runTimingCheckpointed(ctx context.Context, w *workloads.Workload, inst *workloads.Instance, opts Options) (*Run, error) {
	store := opts.Checkpoints
	col := stats.New()
	cfg := opts.gpuConfig()
	cfg.MaxWarpInsts = opts.MaxWarpInsts
	key := prefixKey(w.Name, opts.Size, opts.Seed, cfg)
	target, blob, warm := store.Best(key, opts.MaxWarpInsts, cfg.MaxCycles)
	g := gpu.MustNew(cfg, inst.Mem, col)
	idx := 0 // kernel-launch boundary index: launches completed so far
	restored := false
	exec := func(l *emu.Launch) error {
		i := idx
		idx++
		if err := ctx.Err(); err != nil {
			return err
		}
		if warm && !restored {
			if i < target.Index {
				// Skip phase: restore the boundary this launch would produce,
				// so the host sees exact timing-engine memory between
				// launches. Bridge eviction holes with a functional replay
				// (no listener, no statistics) — memory stays correct for
				// every workload whose inter-launch reads are
				// schedule-insensitive, and the resume guard below catches
				// the rest.
				if _, b, err := store.Load(key, i+1); err == nil {
					if err := g.Restore(b); err != nil {
						return &warmStartError{stage: "restore", err: err}
					}
					return nil
				}
				if _, err := emu.Run(&emu.Env{Mem: inst.Mem, Launch: l}, emu.RunOptions{}); err != nil {
					return &warmStartError{stage: "replay", err: err}
				}
				return nil
			}
			if err := g.Restore(blob); err != nil {
				return &warmStartError{stage: "restore", err: err}
			}
			restored = true
			store.NoteWarmStart(target.Cycle)
		}
		if opts.Progress != nil {
			opts.Progress(g.Cycle(), col.WarpInsts)
		}
		if opts.MaxWarpInsts > 0 && col.WarpInsts >= opts.MaxWarpInsts {
			return nil // budget exhausted: close the measurement window
		}
		if err := g.LaunchKernel(l); err != nil {
			return err
		}
		// Save the boundary just reached. AtBoundary is false after a
		// budget hard stop (in-flight work frozen, not drained): such state
		// is engine-dependent and must never be checkpointed.
		if g.AtBoundary() && !store.Has(key, i+1) {
			if payload, err := g.Snapshot(); err == nil {
				_ = store.Save(key, checkpoint.Meta{
					Index:         i + 1,
					Cycle:         g.Cycle(),
					SkippedCycles: g.SkippedCycles,
					WarpInsts:     col.WarpInsts,
				}, payload)
			}
		}
		return nil
	}
	if err := inst.Run(exec); err != nil {
		var ws *warmStartError
		if errors.As(err, &ws) {
			return nil, err // pass through unwrapped for the cold fallback
		}
		return nil, fmt.Errorf("experiments: %s timing run: %w", w.Name, err)
	}
	if warm && !restored {
		// The checkpoint sits at the run's final boundary: every launch was
		// replayed functionally and the restore now yields the complete
		// result (collector, cycle counts, and memory all at end-of-run).
		if idx != target.Index {
			return nil, &warmStartError{stage: "resume", err: fmt.Errorf(
				"launch sequence ended at boundary %d before checkpoint %d", idx, target.Index)}
		}
		if err := g.Restore(blob); err != nil {
			return nil, &warmStartError{stage: "restore", err: err}
		}
		restored = true
		store.NoteWarmStart(target.Cycle)
	}
	if opts.Progress != nil {
		opts.Progress(g.Cycle(), col.WarpInsts)
	}
	run := &Run{Workload: w, Instance: inst, Col: col, Cycles: g.Cycle(),
		SkippedCycles: g.SkippedCycles}
	if restored {
		run.WarmStartIndex = target.Index
		run.WarmStartCycles = target.Cycle
	}
	return run, nil
}
