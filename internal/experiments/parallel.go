package experiments

import (
	"context"
	"errors"
	"sort"
	"sync"

	"critload/internal/jobs"
)

// Warm pre-executes the suite's selected workloads concurrently on a
// bounded worker pool, filling the functional and/or timing run caches.
// Generators called afterwards find every run already present and emit in
// their usual serial order, so a parallel sweep's output is byte-identical
// to a serial one — completion order never leaks into the artifacts.
//
// workers <= 0 selects one worker per CPU. Errors from all workloads are
// joined; the remaining runs still execute (a broken workload should not
// abort a 15-application sweep). Cancellation via ctx stops each run at its
// next kernel-launch boundary.
func (s *Suite) Warm(ctx context.Context, workers int, functional, timing bool) error {
	names := s.Opts.names()
	pool := jobs.NewPool(workers, 2*len(names))
	var (
		mu   sync.Mutex
		errs = map[string]error{}
	)
	record := func(name string, err error) {
		if err != nil {
			mu.Lock()
			errs[name] = err
			mu.Unlock()
		}
	}
	for _, name := range names {
		name := name
		if functional {
			pool.Submit(func() {
				_, err := s.FunctionalCtx(ctx, name)
				record("functional/"+name, err)
			})
		}
		if timing {
			pool.Submit(func() {
				_, err := s.TimingCtx(ctx, name)
				record("timing/"+name, err)
			})
		}
	}
	pool.Close()

	if len(errs) == 0 {
		return nil
	}
	// Deterministic error order regardless of completion order.
	keys := make([]string, 0, len(errs))
	for k := range errs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	joined := make([]error, 0, len(keys))
	for _, k := range keys {
		joined = append(joined, errs[k])
	}
	return errors.Join(joined...)
}
