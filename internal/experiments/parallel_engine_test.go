package experiments

import (
	"fmt"
	"testing"

	"critload/internal/gpu"
)

// parallelCfg builds a parallel-engine configuration; fast-forward stays on
// (the production composition: skip dead cycles, parallelize live ones).
func parallelCfg(workers int) gpu.Config {
	cfg := gpu.DefaultConfig()
	cfg.Parallel = true
	cfg.Workers = workers
	return cfg
}

// TestParallelEngineMatchesSerial is the parallel engine's core contract:
// for every workload and every worker count, the phase-barrier engine must
// produce a byte-identical statistics collector and the same cycle count as
// the naive serial loop. Run under -race this doubles as the data-race proof
// for the concurrent phases.
func TestParallelEngineMatchesSerial(t *testing.T) {
	for name, size := range timingSmokeSizes {
		name, size := name, size
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serialCfg := gpu.DefaultConfig()
			serialCfg.FastForward = false
			serial, err := RunTiming(name, Options{Size: size, Seed: 7, GPU: &serialCfg})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := parallelCfg(workers)
				par, err := RunTiming(name, Options{Size: size, Seed: 7, GPU: &cfg})
				if err != nil {
					t.Fatalf("parallel run (workers=%d): %v", workers, err)
				}
				for _, d := range DiffEngineRuns(
					[]string{"serial", fmt.Sprintf("parallel/%dw", workers)},
					[]*Run{serial, par}) {
					t.Errorf("%s", d)
				}
			}
		})
	}
}

// TestAdaptiveEngineMatchesSerial is the adaptive controller's contract: for
// every workload and worker count, the engine with occupancy-driven
// phase-fusion and inline/pooled selection must stay byte-identical to the
// naive serial loop. The negative threshold is the test hook — threshold 4
// with whole-engine demotion disabled — so the phase loop runs (and, under
// -race, proves its concurrency) even on a single-core host, and real
// workloads force promote/demote transitions mid-kernel as occupancy crosses
// the threshold. The probe asserts both decisions actually occurred.
func TestAdaptiveEngineMatchesSerial(t *testing.T) {
	for name, size := range timingSmokeSizes {
		name, size := name, size
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serialCfg := gpu.DefaultConfig()
			serialCfg.FastForward = false
			serial, err := RunTiming(name, Options{Size: size, Seed: 7, GPU: &serialCfg})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			var pooled, inline int64
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := parallelCfg(workers)
				cfg.Adaptive = true
				cfg.AdaptiveThreshold = -4
				par, err := RunTiming(name, Options{Size: size, Seed: 7, GPU: &cfg})
				if err != nil {
					t.Fatalf("adaptive run (workers=%d): %v", workers, err)
				}
				for _, d := range DiffEngineRuns(
					[]string{"serial", fmt.Sprintf("adaptive/%dw", workers)},
					[]*Run{serial, par}) {
					t.Errorf("%s", d)
				}
				if par.PhaseStats.Demoted {
					t.Errorf("workers=%d: demoted despite the negative-threshold hook", workers)
				}
				if workers > 1 {
					pooled += par.PhaseStats.PooledPhases
					inline += par.PhaseStats.InlinePhases
				}
			}
			if pooled == 0 || inline == 0 {
				t.Errorf("controller never transitioned on %s: pooled %d, inline %d", name, pooled, inline)
			}
		})
	}
}

// TestAdaptiveEngineDefaultPolicyMatchesFF checks the production adaptive
// configuration (default threshold, demotion allowed): whatever the host's
// core count, collectors must match the fast-forward engine bit for bit —
// on a single-core machine that path is the whole-engine demotion.
func TestAdaptiveEngineDefaultPolicyMatchesFF(t *testing.T) {
	for _, name := range []string{"spmv", "grm", "bfs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ff, err := RunTiming(name, Options{Size: timingSmokeSizes[name], Seed: 7})
			if err != nil {
				t.Fatalf("ff run: %v", err)
			}
			cfg := parallelCfg(4)
			cfg.Adaptive = true
			par, err := RunTiming(name, Options{Size: timingSmokeSizes[name], Seed: 7, GPU: &cfg})
			if err != nil {
				t.Fatalf("adaptive run: %v", err)
			}
			for _, d := range DiffEngineRuns([]string{"fastforward", "adaptive"}, []*Run{ff, par}) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestParallelEngineWithoutFastForward isolates the phase-barrier machinery
// from event-horizon skipping: with FastForward off, every cycle is stepped
// and the engines must still agree, so a divergence here cannot hide behind
// the skip logic.
func TestParallelEngineWithoutFastForward(t *testing.T) {
	for _, name := range []string{"2mm", "bfs", "sssp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serialCfg := gpu.DefaultConfig()
			serialCfg.FastForward = false
			serial, err := RunTiming(name, Options{Size: timingSmokeSizes[name], Seed: 3, GPU: &serialCfg})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			cfg := parallelCfg(4)
			cfg.FastForward = false
			par, err := RunTiming(name, Options{Size: timingSmokeSizes[name], Seed: 3, GPU: &cfg})
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			for _, d := range DiffEngineRuns([]string{"serial", "parallel-noff"}, []*Run{serial, par}) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestParallelEngineRunTwiceIdentity re-runs the parallel engine and demands
// identical collectors: no dependence on goroutine scheduling, worker
// interleaving, or map iteration survives the phase barriers.
func TestParallelEngineRunTwiceIdentity(t *testing.T) {
	for _, name := range []string{"spmv", "sssp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := parallelCfg(4)
			opts := Options{Size: timingSmokeSizes[name], Seed: 11, GPU: &cfg}
			first, err := RunTiming(name, opts)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := RunTiming(name, opts)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			for _, d := range DiffRuns(first, second) {
				t.Errorf("repeat run: %s", d)
			}
		})
	}
}

// TestParallelEngineBudgetWindow pins the bounded-window behaviour: the
// warp-instruction hard stop must freeze the statistics at the same cycle
// under both engines, since the budget check reads live shard collectors in
// the parallel engine.
func TestParallelEngineBudgetWindow(t *testing.T) {
	serialCfg := gpu.DefaultConfig()
	serialCfg.FastForward = false
	opts := Options{Size: timingSmokeSizes["bfs"], Seed: 7, MaxWarpInsts: 5000}
	optsSerial := opts
	optsSerial.GPU = &serialCfg
	serial, err := RunTiming("bfs", optsSerial)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	cfg := parallelCfg(4)
	optsPar := opts
	optsPar.GPU = &cfg
	par, err := RunTiming("bfs", optsPar)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	for _, d := range DiffEngineRuns([]string{"serial", "parallel"}, []*Run{serial, par}) {
		t.Errorf("%s", d)
	}
	if par.Col.WarpInsts < 5000 {
		t.Fatalf("budget window did not fill: %d warp insts", par.Col.WarpInsts)
	}
}
