package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSuiteConcurrentFunctionalDedup hammers one workload from many
// goroutines: the singleflight suite must execute it exactly once, so every
// caller observes the same *Run.
func TestSuiteConcurrentFunctionalDedup(t *testing.T) {
	s := NewSuite(Options{Size: 32, Seed: 1})
	const n = 8
	runs := make([]*Run, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			runs[i], errs[i] = s.Functional("2mm")
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if runs[i] != runs[0] {
			t.Fatalf("goroutine %d got a distinct run: the workload executed twice", i)
		}
	}
}

// TestSuiteConcurrentMixed exercises functional and timing dedup at once
// under the race detector.
func TestSuiteConcurrentMixed(t *testing.T) {
	s := NewSuite(Options{Size: 32, Seed: 2, MaxWarpInsts: 20_000})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := s.Functional("2mm"); err != nil {
				t.Errorf("Functional: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := s.Timing("2mm"); err != nil {
				t.Errorf("Timing: %v", err)
			}
		}()
	}
	wg.Wait()
}

// functionalArtifacts renders every functional figure/table of a suite into
// one comparable string.
func functionalArtifacts(t *testing.T, s *Suite) string {
	t.Helper()
	var out string
	add := func(name string, rows any, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out += fmt.Sprintf("== %s ==\n%+v\n", name, rows)
	}
	r1, err := s.Table1()
	add("table1", r1, err)
	f1, err := s.Figure1()
	add("fig1", f1, err)
	f2, err := s.Figure2()
	add("fig2", f2, err)
	f9, err := s.Figure9()
	add("fig9", f9, err)
	f10, err := s.Figure10()
	add("fig10", f10, err)
	f11, err := s.Figure11()
	add("fig11", f11, err)
	f12, err := s.Figure12()
	add("fig12", f12, err)
	return out
}

// TestWarmSweepMatchesSerial runs the full fifteen-workload functional sweep
// twice — once serially, once warmed through the worker pool — and requires
// byte-identical artifact output: completion order must never leak into the
// figures.
func TestWarmSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	opts := Options{Size: 64, Seed: 3}
	serial := functionalArtifacts(t, NewSuite(opts))

	warmed := NewSuite(opts)
	if err := warmed.Warm(context.Background(), 8, true, false); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	parallel := functionalArtifacts(t, warmed)

	if serial != parallel {
		t.Fatalf("parallel sweep output diverges from serial:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
}

// TestWarmTimingMatchesSerial does the same for a timing artifact on a
// restricted workload set.
func TestWarmTimingMatchesSerial(t *testing.T) {
	opts := Options{Workloads: []string{"2mm", "bfs"}, Size: 32, Seed: 4, MaxWarpInsts: 20_000}
	s1 := NewSuite(opts)
	rows1, err := s1.Figure3()
	if err != nil {
		t.Fatalf("serial Figure3: %v", err)
	}
	s2 := NewSuite(opts)
	if err := s2.Warm(context.Background(), 4, false, true); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	rows2, err := s2.Figure3()
	if err != nil {
		t.Fatalf("warmed Figure3: %v", err)
	}
	if got, want := fmt.Sprintf("%+v", rows2), fmt.Sprintf("%+v", rows1); got != want {
		t.Fatalf("warmed Figure3 = %s, want %s", got, want)
	}
}

func TestWarmReportsWorkloadErrors(t *testing.T) {
	s := NewSuite(Options{Workloads: []string{"2mm", "no-such-workload"}, Size: 32})
	err := s.Warm(context.Background(), 2, true, false)
	if err == nil {
		t.Fatal("Warm succeeded despite unknown workload")
	}
	// The healthy workload must still have been executed and cached.
	if _, err := s.Functional("2mm"); err != nil {
		t.Fatalf("Functional(2mm) after partial Warm: %v", err)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFunctionalCtx(ctx, "2mm", Options{Size: 32}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunFunctionalCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := RunTimingCtx(ctx, "2mm", Options{Size: 32}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTimingCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestOptionsMaxCycles(t *testing.T) {
	if got := (Options{}).gpuConfig().MaxCycles; got != DefaultMaxCycles {
		t.Errorf("default MaxCycles = %d, want %d", got, DefaultMaxCycles)
	}
	if got := (Options{MaxCycles: 1234}).gpuConfig().MaxCycles; got != 1234 {
		t.Errorf("explicit MaxCycles = %d, want 1234", got)
	}
	cfg := (Options{}).gpuConfig()
	cfg.MaxCycles = 77
	if got := (Options{GPU: &cfg}).gpuConfig().MaxCycles; got != 77 {
		t.Errorf("GPU-supplied MaxCycles = %d, want 77", got)
	}
	if got := (Options{GPU: &cfg, MaxCycles: 55}).gpuConfig().MaxCycles; got != 55 {
		t.Errorf("Options.MaxCycles should win over GPU config: got %d, want 55", got)
	}
}
