package experiments

import (
	"testing"

	"critload/internal/stats"
)

// timingSmokeSizes picks small problem sizes so every workload's complete
// timing run stays fast.
var timingSmokeSizes = map[string]int{
	"2mm": 32, "gaus": 24, "grm": 24, "lu": 24, "spmv": 1024,
	"htw": 32, "mriq": 256, "dwt": 64, "bpr": 512, "srad": 32,
	"bfs": 1024, "sssp": 512, "ccl": 512, "mst": 256, "mis": 512,
}

// TestTimingSmokeAllWorkloads runs every workload end to end on the timing
// simulator: all fifteen must complete (barriers, atomics, host loops and
// divergence all work under the cycle-level model) and produce load
// statistics.
func TestTimingSmokeAllWorkloads(t *testing.T) {
	for name, size := range timingSmokeSizes {
		name, size := name, size
		t.Run(name, func(t *testing.T) {
			r, err := RunTiming(name, Options{Size: size, Seed: 5})
			if err != nil {
				t.Fatalf("RunTiming: %v", err)
			}
			if r.Cycles == 0 {
				t.Fatalf("no cycles simulated")
			}
			loads := r.Col.GLoadWarps[stats.Det] + r.Col.GLoadWarps[stats.NonDet]
			if loads == 0 {
				t.Errorf("no global loads recorded")
			}
			if r.Col.Turnaround[stats.Det].Ops+r.Col.Turnaround[stats.NonDet].Ops == 0 {
				t.Errorf("no turnarounds recorded")
			}
			// Complete runs leave functionally correct results behind.
			if err := r.Instance.Verify(); err != nil {
				t.Errorf("verify after timing run: %v", err)
			}
		})
	}
}
