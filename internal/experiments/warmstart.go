package experiments

import (
	"fmt"

	"critload/internal/checkpoint"
)

// WarmStartPoint is one sweep point of a warm-start measurement: a timing run
// of the same (workload, size, seed) at one warp-instruction budget, sharing
// the sweep's checkpoint store.
type WarmStartPoint struct {
	// MaxWarpInsts is the point's measurement-window budget (the swept late
	// parameter; 0 = complete run).
	MaxWarpInsts uint64 `json:"max_warp_insts"`
	// Cycles and WarpInsts describe the simulated work at window close —
	// byte-identical to a cold run of the same budget by the difftest
	// fifth-oracle contract, so these numbers are deterministic.
	Cycles    int64  `json:"cycles"`
	WarpInsts uint64 `json:"warp_insts"`
	// WarmStartIndex is the kernel-launch boundary the run resumed from
	// (0 = cold), WarmStartCycles the cycles inherited instead of
	// re-simulated, and SimulatedCycles the remainder actually stepped.
	WarmStartIndex  int   `json:"warm_start_index"`
	WarmStartCycles int64 `json:"warm_start_cycles"`
	SimulatedCycles int64 `json:"simulated_cycles"`
}

// WarmStartReport records one incremental sweep: ≥2 budgets over one
// workload, each run warm-starting from the checkpoints its predecessors
// left behind. Every field is deterministic (no wall-clock measurements), so
// a committed report can be regenerated and compared exactly.
type WarmStartReport struct {
	Schema   string           `json:"schema"`
	Workload string           `json:"workload"`
	Size     int              `json:"size"`
	Seed     int64            `json:"seed"`
	Points   []WarmStartPoint `json:"points"`
	// TotalCycles is the work a cold sweep simulates (Σ Cycles); CyclesSkipped
	// is the portion the warm starts inherited (Σ WarmStartCycles); the
	// fraction is their ratio.
	TotalCycles     int64   `json:"total_cycles"`
	CyclesSkipped   int64   `json:"cycles_skipped"`
	SkippedFraction float64 `json:"skipped_fraction"`
}

// WarmStartSchema versions the report layout.
const WarmStartSchema = "critload/warmstart/v1"

// MeasureWarmStart runs the sweep: ascending warp-instruction budgets over
// one workload, all sharing one checkpoint store, exactly how a figure
// reproduction revisits a run while widening its measurement window. The
// first point is necessarily cold; each later point resumes from the deepest
// boundary inside its window, so the sweep's redundant prefix work collapses
// to checkpoint loads.
func MeasureWarmStart(name string, size int, seed int64, budgets []uint64, store *checkpoint.Store) (*WarmStartReport, error) {
	if len(budgets) < 2 {
		return nil, fmt.Errorf("experiments: a warm-start sweep needs at least 2 points, got %d", len(budgets))
	}
	rep := &WarmStartReport{Schema: WarmStartSchema, Workload: name, Size: size, Seed: seed}
	for _, b := range budgets {
		r, err := RunTiming(name, Options{Size: size, Seed: seed, MaxWarpInsts: b, Checkpoints: store})
		if err != nil {
			return nil, fmt.Errorf("experiments: warm-start sweep point %d: %w", b, err)
		}
		p := WarmStartPoint{
			MaxWarpInsts:    b,
			Cycles:          r.Cycles,
			WarpInsts:       r.Col.WarpInsts,
			WarmStartIndex:  r.WarmStartIndex,
			WarmStartCycles: r.WarmStartCycles,
			SimulatedCycles: r.Cycles - r.WarmStartCycles,
		}
		rep.Points = append(rep.Points, p)
		rep.TotalCycles += p.Cycles
		rep.CyclesSkipped += p.WarmStartCycles
	}
	if rep.TotalCycles > 0 {
		rep.SkippedFraction = float64(rep.CyclesSkipped) / float64(rep.TotalCycles)
	}
	return rep, nil
}
