package families

import (
	"critload/internal/isa"
	"critload/internal/kgen"
)

// ALU/compare selectors resolved once from the kgen pools, so builders name
// operations by opcode instead of by pool position.
var (
	aluAdd = kgen.AluIndex(isa.OpAdd)
	aluMul = kgen.AluIndex(isa.OpMul)
	aluXor = kgen.AluIndex(isa.OpXor)
)

// asm is a tiny op-list assembler. Every method returns the index of the op
// it appended, which is how later ops reference earlier values in kgen IR.
type asm struct {
	ops []kgen.Op
}

func (a *asm) emit(o kgen.Op) int {
	a.ops = append(a.ops, o)
	return len(a.ops) - 1
}

// alu appends alu(x, y). y < 0 uses imm as the second operand.
func (a *asm) alu(sel, x, y int, imm uint32) int {
	return a.emit(kgen.Op{Kind: kgen.KAlu, A: x, B: y, P: -1, Alu: sel, Imm: imm})
}

// loadG appends a global load of data array (bank&1) at index (x & mask);
// x < 0 indexes by the global thread id.
func (a *asm) loadG(x, bank int) int {
	return a.emit(kgen.Op{Kind: kgen.KLoadG, A: x, B: -1, P: -1, Imm: uint32(bank & 1)})
}

// xorInto folds v into acc (acc < 0 starts the chain).
func (a *asm) xorInto(acc, v int) int {
	if acc < 0 {
		return v
	}
	return a.alu(aluXor, acc, v, 0)
}

// store appends a store of x to the thread's output slot.
func (a *asm) store(x, slot int) {
	a.emit(kgen.Op{Kind: kgen.KStore, A: x, B: -1, P: -1, Imm: uint32(slot)})
}

func init() {
	register(&Family{
		Name: "stream",
		Description: "unit- or strided-stride streaming reads: every address is an " +
			"affine function of the thread id, so every load is deterministic (D)",
		Knobs: commonKnobs(
			Knob{Name: "loads", Description: "global loads per thread", Min: 1, Max: 8, Default: 4},
			Knob{Name: "stride", Description: "words between consecutive threads", Min: 1, Max: 64, Default: 1},
			Knob{Name: "trips", Description: "host-visible loop trips around the body", Min: 1, Max: kgen.MaxTrip, Default: 1},
		),
		build: func(v map[string]int) []kgen.Op {
			a := &asm{}
			// base = gtid * stride; each load reads base+i from alternating banks.
			base := a.alu(aluMul, -1, -1, uint32(v["stride"]))
			loop := v["trips"] > 1
			if loop {
				a.emit(kgen.Op{Kind: kgen.KLoop, A: -1, B: -1, P: -1, Imm: uint32(v["trips"] - 1)})
			}
			acc := -1
			for i := 0; i < v["loads"]; i++ {
				addr := a.alu(aluAdd, base, -1, uint32(i))
				acc = a.xorInto(acc, a.loadG(addr, i))
			}
			a.store(acc, 0)
			if loop {
				a.emit(kgen.Op{Kind: kgen.KEnd, A: -1, B: -1, P: -1})
			}
			return a.ops
		},
		expect: func(v map[string]int) (int, int) { return v["loads"], 0 },
	})

	register(&Family{
		Name: "indirect-chase",
		Description: "pointer-chase through loaded indices: one deterministic root " +
			"load per thread feeds width independent chains of depth dependent " +
			"loads, all non-deterministic (N)",
		Knobs: commonKnobs(
			Knob{Name: "depth", Description: "dependent loads per chain", Min: 1, Max: 4, Default: 2},
			Knob{Name: "width", Description: "independent chains per thread", Min: 1, Max: 4, Default: 2},
		),
		build: func(v map[string]int) []kgen.Op {
			a := &asm{}
			root := a.loadG(-1, 0) // D: indexed by gtid
			acc := -1
			for w := 0; w < v["width"]; w++ {
				cur := a.alu(aluAdd, root, -1, uint32(w)) // tainted per-chain offset
				for d := 0; d < v["depth"]; d++ {
					cur = a.loadG(cur, w+d) // N: address derives from loaded data
				}
				acc = a.xorInto(acc, cur)
			}
			a.store(acc, 0)
			return a.ops
		},
		expect: func(v map[string]int) (int, int) { return 1, v["width"] * v["depth"] },
	})

	register(&Family{
		Name: "shared-tile",
		Description: "tile exchange through shared memory: each thread publishes a " +
			"deterministic root load, and after the barrier reads fanout " +
			"neighbours' words to index non-deterministic global loads",
		Knobs: commonKnobs(
			Knob{Name: "fanout", Description: "neighbour words consumed after the barrier", Min: 1, Max: 8, Default: 4},
		),
		build: func(v map[string]int) []kgen.Op {
			a := &asm{}
			root := a.loadG(-1, 0) // D
			a.emit(kgen.Op{Kind: kgen.KShStore, A: root, B: -1, P: -1})
			a.emit(kgen.Op{Kind: kgen.KBar, A: -1, B: -1, P: -1})
			acc := -1
			for f := 1; f <= v["fanout"]; f++ {
				idx := a.alu(aluAdd, -1, -1, uint32(f)) // gtid+f: clean neighbour index
				sh := a.emit(kgen.Op{Kind: kgen.KShLoad, A: idx, B: -1, P: -1})
				acc = a.xorInto(acc, a.loadG(sh, f)) // N: address from shared data
			}
			a.store(acc, 0)
			return a.ops
		},
		expect: func(v map[string]int) (int, int) { return 1, v["fanout"] },
	})

	register(&Family{
		Name: "atomic-contend",
		Description: "atomic scratch contention: the volatile atomic return value " +
			"(schedule-dependent) indexes one non-deterministic probe load next " +
			"to one deterministic root load",
		Knobs: commonKnobs(
			Knob{Name: "spread", Description: "0: all threads hit one scratch word; 1: spread across the scratch array", Min: 0, Max: 1, Default: 0},
		),
		build: func(v map[string]int) []kgen.Op {
			a := &asm{}
			root := a.loadG(-1, 0) // D
			addr := -1             // gtid fallback → scratch[gtid & mask]
			if v["spread"] == 0 {
				addr = a.emit(kgen.Op{Kind: kgen.KImm, A: -1, B: -1, P: -1, Imm: 0})
			}
			old := a.emit(kgen.Op{Kind: kgen.KAtom, A: addr, B: -1, P: -1, Imm: 1})
			// Volatile values may feed load addresses (the legitimate N path)
			// but never stores — so the probe result stays unstored and the
			// output slot takes the calm root value.
			probe := a.alu(aluAdd, old, root, 0)
			a.loadG(probe, 1) // N: address depends on warp scheduling
			a.store(root, 0)
			return a.ops
		},
		expect: func(v map[string]int) (int, int) { return 1, 1 },
	})

	register(&Family{
		Name: "mixed-dn",
		Description: "controlled D/N mix: dn percent of the loads are affine in the " +
			"thread id (D), the rest form one dependent chain seeded by the " +
			"first deterministic load (N)",
		Knobs: commonKnobs(
			Knob{Name: "loads", Description: "total global loads per thread", Min: 2, Max: 12, Default: 8},
			Knob{Name: "dn", Description: "percent of loads that are deterministic (at least one always is)", Min: 0, Max: 100, Default: 50},
		),
		build: func(v map[string]int) []kgen.Op {
			det, nondet := mixedSplit(v)
			a := &asm{}
			first, acc := -1, -1
			for i := 0; i < det; i++ {
				addr := a.alu(aluAdd, -1, -1, uint32(i)) // gtid+i
				ld := a.loadG(addr, i)
				if first < 0 {
					first = ld
				}
				acc = a.xorInto(acc, ld)
			}
			cur := first
			for i := 0; i < nondet; i++ {
				cur = a.loadG(cur, i) // N: chained through loaded values
				acc = a.xorInto(acc, cur)
			}
			a.store(acc, 0)
			return a.ops
		},
		expect: mixedSplit,
	})
}

// mixedSplit computes the mixed-dn family's D/N partition: round(loads·dn%)
// deterministic loads, clamped so at least one D load exists to seed the
// dependent chain.
func mixedSplit(v map[string]int) (det, nondet int) {
	loads := v["loads"]
	det = (loads*v["dn"] + 50) / 100
	if det < 1 {
		det = 1
	}
	if det > loads {
		det = loads
	}
	return det, loads - det
}
