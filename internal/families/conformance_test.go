package families_test

import (
	"fmt"
	"testing"

	"critload/internal/difftest"
	"critload/internal/experiments"
	. "critload/internal/families"
)

// conformanceSpecs returns the knob points each family is gated on: the
// schema defaults plus hand-picked corners that change the D/N structure.
// Sizes are kept small so the full five-oracle difftest stays fast under
// -race in CI.
func conformanceSpecs(f *Family) []*Spec {
	small := map[string]int{"size": 128, "ctas": 2, "block": 32}
	corner := map[string]map[string]int{
		"stream":         {"loads": 8, "stride": 7, "trips": 3},
		"indirect-chase": {"depth": 4, "width": 3},
		"shared-tile":    {"fanout": 8},
		"atomic-contend": {"spread": 1},
		"mixed-dn":       {"loads": 12, "dn": 25},
	}
	specs := []*Spec{{Name: f.Name, Knobs: small}}
	knobs := map[string]int{}
	for k, v := range small {
		knobs[k] = v
	}
	for k, v := range corner[f.Name] {
		knobs[k] = v
	}
	specs = append(specs, &Spec{Name: f.Name, Knobs: knobs})
	if f.Name == "mixed-dn" {
		// The extreme mixes exercise the at-least-one-D clamp and the no-N
		// degenerate chain.
		specs = append(specs,
			&Spec{Name: f.Name, Knobs: map[string]int{"size": 128, "ctas": 2, "block": 32, "dn": 0}},
			&Spec{Name: f.Name, Knobs: map[string]int{"size": 128, "ctas": 2, "block": 32, "dn": 100}})
	}
	return specs
}

// TestFamilyConformance is the CI gate behind the family-conformance matrix
// job: for every shipped family, each conformance point must (1) carry the
// ground-truth D/N mix the family's schema promises, (2) pass all five
// difftest oracles — classifier vs ground truth, emulator determinism,
// fast-forward vs serial, parallel+adaptive vs serial, checkpoint/resume —
// and (3) run end-to-end through the workloads registry the way a job spec
// would, with the CPU-reference Verify green.
func TestFamilyConformance(t *testing.T) {
	for _, f := range List() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for _, spec := range conformanceSpecs(f) {
				name, err := spec.CanonicalName()
				if err != nil {
					t.Fatal(err)
				}
				t.Run(name, func(t *testing.T) {
					checkConformance(t, f, spec, name)
				})
			}
		})
	}
}

func checkConformance(t *testing.T, f *Family, spec *Spec, name string) {
	_, v, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantDet, wantNonDet := f.ExpectedClasses(v)
	rep := difftest.Check(c, difftest.Options{})
	if rep.Det != wantDet || rep.NonDet != wantNonDet {
		t.Errorf("ground truth D=%d N=%d, family schema promises D=%d N=%d",
			rep.Det, rep.NonDet, wantDet, wantNonDet)
	}
	if rep.Failed() {
		for _, d := range rep.Divergences {
			t.Errorf("oracle %s: %s", d.Oracle, d.Detail)
		}
		return
	}

	// Registry path: the canonical name must run like any Table I workload.
	run, err := experiments.RunFunctional(name, experiments.Options{})
	if err != nil {
		t.Fatalf("functional run: %v", err)
	}
	if err := run.Instance.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if run.Col.WarpInsts == 0 {
		t.Error("functional run executed no instructions")
	}
}

// TestFamilyExpectTotals cross-checks every family's expect function against
// a brute-force count over its knob grid corners, so the schema's promise
// and the builder's construction cannot drift apart silently.
func TestFamilyExpectTotals(t *testing.T) {
	for _, f := range List() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for _, spec := range conformanceSpecs(f) {
				_, v, err := spec.Resolve()
				if err != nil {
					t.Fatal(err)
				}
				det, nondet := f.ExpectedClasses(v)
				if det < 1 {
					t.Errorf("%v: expect promises %d deterministic loads; every family needs ≥1", v, det)
				}
				c, err := spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				if got := len(c.Want); got != det+nondet {
					t.Errorf("%v: lowered %d labeled loads, schema promises %d",
						v, got, det+nondet)
				}
			}
		})
	}
}

func ExampleSpec_CanonicalName() {
	name, _ := (&Spec{Name: "mixed-dn", Knobs: map[string]int{"dn": 75}}).CanonicalName()
	fmt.Println(name)
	// Output: family:mixed-dn?block=64&ctas=4&dn=75&loads=8&seed=1&size=256
}
