// Package families synthesizes parameterized workload *families* from the
// labeled IR of internal/kgen. Where the fifteen Table I workloads are fixed
// points in the paper's benchmark space, a family is a named generator —
// stream, indirect-chase, shared-tile, atomic-contend, mixed-dn — whose
// typed knobs (problem size, indirection depth, D/N mix, sharing fanout,
// contention, seed) sweep the *load-class* axes the paper's Table I insight
// actually varies over. Each family lowers deterministically to a PTX
// program plus by-construction ground-truth D/N labels for every global
// load, so the classifier and all three cycle engines can be checked
// against it the same way the fuzz harness checks generated kernels.
//
// A family instance is addressed by a canonical workload name,
//
//	family:<name>?<knob>=<value>&...
//
// with every knob present at its resolved value and knobs sorted by name,
// so identical instances always share one name — and therefore one job
// cache key, one checkpoint prefix, one journal identity. The package
// registers a workloads resolver at init time, which makes those names
// first-class simulate targets everywhere a Table I name is accepted.
package families

import (
	"fmt"
	"sort"

	"critload/internal/kgen"
)

// Knob is one typed family parameter. Values are integers; Pow2 constrains
// them to powers of two within [Min, Max].
type Knob struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Min         int    `json:"min"`
	Max         int    `json:"max"`
	Default     int    `json:"default"`
	Pow2        bool   `json:"pow2,omitempty"`
}

// validate checks one value against the knob's bounds.
func (k Knob) validate(v int) error {
	if v < k.Min || v > k.Max {
		return fmt.Errorf("knob %s=%d out of range [%d, %d]", k.Name, v, k.Min, k.Max)
	}
	if k.Pow2 && v&(v-1) != 0 {
		return fmt.Errorf("knob %s=%d must be a power of two", k.Name, v)
	}
	return nil
}

// Family is one registered workload family: a knob schema plus a builder
// that assembles the kgen IR op list from resolved knob values.
type Family struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Knobs       []Knob `json:"knobs"`

	// build assembles the IR body from resolved knob values. The returned
	// op list is normalized through kgen.Repair before lowering, so a
	// builder bug degrades to a still-valid (if unintended) program rather
	// than an unlowerable one; the golden corpus pins intent.
	build func(v map[string]int) []kgen.Op

	// expect returns the ground-truth load-class counts the builder
	// constructs for the given knobs — asserted by the conformance tests so
	// the family's *intent* (not just its labels) is pinned.
	expect func(v map[string]int) (det, nondet int)
}

// knob returns the schema entry by name.
func (f *Family) knob(name string) (Knob, bool) {
	for _, k := range f.Knobs {
		if k.Name == name {
			return k, true
		}
	}
	return Knob{}, false
}

// Defaults returns the family's knob values with every knob at its default.
func (f *Family) Defaults() map[string]int {
	v := make(map[string]int, len(f.Knobs))
	for _, k := range f.Knobs {
		v[k.Name] = k.Default
	}
	return v
}

// ExpectedClasses returns the ground-truth D/N load counts the family
// constructs for resolved knob values.
func (f *Family) ExpectedClasses(v map[string]int) (det, nondet int) {
	return f.expect(v)
}

var registry = map[string]*Family{}
var order []string

func register(f *Family) {
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("families: duplicate %q", f.Name))
	}
	sort.Slice(f.Knobs, func(i, j int) bool { return f.Knobs[i].Name < f.Knobs[j].Name })
	registry[f.Name] = f
	order = append(order, f.Name)
}

// Get returns a family by name.
func Get(name string) (*Family, bool) {
	f, ok := registry[name]
	return f, ok
}

// Names returns the family names in registration order.
func Names() []string {
	return append([]string(nil), order...)
}

// List returns every family in registration order.
func List() []*Family {
	out := make([]*Family, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// Knobs shared by every family: launch geometry, data footprint, input seed.
func commonKnobs(extra ...Knob) []Knob {
	base := []Knob{
		{Name: "size", Description: "words per data array (power of two)",
			Min: 64, Max: 4096, Default: 256, Pow2: true},
		{Name: "ctas", Description: "CTAs in the launch grid",
			Min: 1, Max: 16, Default: 4},
		{Name: "block", Description: "threads per CTA (32, 64 or 128)",
			Min: 32, Max: 128, Default: 64, Pow2: true},
		{Name: "seed", Description: "input-array and immediate seed",
			Min: 0, Max: 1 << 30, Default: 1},
	}
	return append(base, extra...)
}
