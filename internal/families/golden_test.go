package families

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"critload/internal/dataflow"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden family corpus under testdata/ from the current generators")

// goldenJSON pins everything about one family's default instance except the
// PTX text, which lives next to it in <family>.ptx.
type goldenJSON struct {
	Canonical string            `json:"canonical"`
	Kernel    string            `json:"kernel"`
	GridX     int               `json:"gridX"`
	BlockX    int               `json:"blockX"`
	DataWords int               `json:"dataWords"`
	Want      map[string]string `json:"want"` // instruction index → "D"/"N"
}

func goldenFor(t *testing.T, f *Family) (goldenJSON, string) {
	t.Helper()
	spec := &Spec{Name: f.Name}
	canonical, err := spec.CanonicalName()
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := goldenJSON{
		Canonical: canonical,
		Kernel:    c.Kernel.Name,
		GridX:     c.GridX,
		BlockX:    c.BlockX,
		DataWords: c.DataWords,
		Want:      map[string]string{},
	}
	for idx, cls := range c.Want {
		s := "D"
		if cls == dataflow.NonDeterministic {
			s = "N"
		}
		g.Want[strconv.Itoa(idx)] = s
	}
	return g, c.Kernel.Disassemble()
}

// TestGoldenCorpus replays the committed per-family corpus on plain go test:
// the lowered PTX bytes and the ground-truth labels of each family's default
// instance are pinned, so generator drift — a reordered op, a shifted
// register, a flipped label — fails locally before any CI sweep runs.
// Regenerate deliberately with: go test ./internal/families -run Golden -update-golden
func TestGoldenCorpus(t *testing.T) {
	for _, f := range List() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			g, ptxText := goldenFor(t, f)
			jsonPath := filepath.Join("testdata", f.Name+".json")
			ptxPath := filepath.Join("testdata", f.Name+".ptx")
			if *updateGolden {
				buf, err := json.MarshalIndent(&g, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(ptxPath, []byte(ptxText), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			wantPTX, err := os.ReadFile(ptxPath)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			if string(wantPTX) != ptxText {
				t.Errorf("lowered PTX drifted from %s (regenerate deliberately with -update-golden)", ptxPath)
			}
			buf, err := os.ReadFile(jsonPath)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			var want goldenJSON
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatal(err)
			}
			if g.Canonical != want.Canonical || g.Kernel != want.Kernel ||
				g.GridX != want.GridX || g.BlockX != want.BlockX || g.DataWords != want.DataWords {
				t.Errorf("instance metadata drifted: got %+v, golden %+v", g, want)
			}
			if len(g.Want) != len(want.Want) {
				t.Errorf("%d labeled loads, golden has %d", len(g.Want), len(want.Want))
			}
			keys := make([]string, 0, len(want.Want))
			for k := range want.Want {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if g.Want[k] != want.Want[k] {
					t.Errorf("load at instruction %s: class %q, golden %q", k, g.Want[k], want.Want[k])
				}
			}
		})
	}
}

// TestGoldenCorpusComplete fails when a family ships without a committed
// golden pair, so new families cannot skip the corpus.
func TestGoldenCorpusComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	for _, f := range List() {
		for _, ext := range []string{".json", ".ptx"} {
			p := filepath.Join("testdata", f.Name+ext)
			if _, err := os.Stat(p); err != nil {
				t.Errorf("family %s: missing golden file %s (run -update-golden and commit)", f.Name, p)
			}
		}
	}
}
