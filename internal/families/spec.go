package families

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"critload/internal/emu"
	"critload/internal/isa"
	"critload/internal/kgen"
	"critload/internal/ptx"
	"critload/internal/workloads"
)

// NamePrefix marks family-instance workload names.
const NamePrefix = "family:"

// Spec selects one family instance: a family name plus knob overrides.
// Omitted knobs take their schema defaults. This is the JSON shape the
// service accepts in classify requests and job specs.
type Spec struct {
	Name  string         `json:"name"`
	Knobs map[string]int `json:"knobs,omitempty"`
}

// Resolve validates the spec and returns the family plus the fully-resolved
// knob values (defaults filled in).
func (s *Spec) Resolve() (*Family, map[string]int, error) {
	f, ok := Get(s.Name)
	if !ok {
		return nil, nil, fmt.Errorf("families: unknown family %q (have: %s)",
			s.Name, strings.Join(Names(), ", "))
	}
	v := f.Defaults()
	for name, val := range s.Knobs {
		k, ok := f.knob(name)
		if !ok {
			return nil, nil, fmt.Errorf("families: %s has no knob %q", f.Name, name)
		}
		if err := k.validate(val); err != nil {
			return nil, nil, fmt.Errorf("families: %s: %w", f.Name, err)
		}
		v[name] = val
	}
	return f, v, nil
}

// Validate reports whether the spec names a known family with in-range knobs.
func (s *Spec) Validate() error {
	_, _, err := s.Resolve()
	return err
}

// CanonicalName returns the instance's canonical workload name:
// family:<name>?<knob>=<val>&... with every knob at its resolved value and
// knobs in sorted order, so identical instances always share one name — and
// therefore one job cache key, one checkpoint prefix, one journal identity.
func (s *Spec) CanonicalName() (string, error) {
	f, v, err := s.Resolve()
	if err != nil {
		return "", err
	}
	return canonicalName(f, v), nil
}

// canonicalName formats the canonical name from resolved values. Knob order
// is the schema order, which register() sorts by name.
func canonicalName(f *Family, v map[string]int) string {
	var b strings.Builder
	b.WriteString(NamePrefix)
	b.WriteString(f.Name)
	for i, k := range f.Knobs {
		if i == 0 {
			b.WriteByte('?')
		} else {
			b.WriteByte('&')
		}
		b.WriteString(k.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(v[k.Name]))
	}
	return b.String()
}

// IsFamilyName reports whether a workload name addresses a family instance.
func IsFamilyName(name string) bool {
	return strings.HasPrefix(name, NamePrefix)
}

// ParseName parses a family workload name ("family:<name>?<knob>=<val>&...")
// back into a Spec. The name need not be canonical — knobs may be partial or
// unordered; CanonicalName normalizes.
func ParseName(name string) (*Spec, error) {
	if !IsFamilyName(name) {
		return nil, fmt.Errorf("families: %q does not start with %q", name, NamePrefix)
	}
	base, query, _ := strings.Cut(strings.TrimPrefix(name, NamePrefix), "?")
	if base == "" {
		return nil, fmt.Errorf("families: empty family name in %q", name)
	}
	s := &Spec{Name: base}
	if query != "" {
		s.Knobs = map[string]int{}
		for _, kv := range strings.Split(query, "&") {
			k, val, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("families: bad knob setting %q in %q", kv, name)
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("families: knob %s: %v", k, err)
			}
			s.Knobs[k] = n
		}
	}
	return s, nil
}

// progSeed derives the kgen program seed from the family name and the seed
// knob, so two families at the same seed still see different input arrays.
func progSeed(family string, seed int) int64 {
	h := fnv.New64a()
	h.Write([]byte(family))
	return int64(h.Sum64() ^ uint64(seed)*0x9e3779b97f4a7c15)
}

// kernelName derives a PTX-identifier-safe kernel name from the canonical
// instance name: fam_<family>_<fnv32 of the canonical name>.
func kernelName(family, canonical string) string {
	h := fnv.New32a()
	h.Write([]byte(canonical))
	return fmt.Sprintf("fam_%s_%08x", strings.ReplaceAll(family, "-", "_"), h.Sum32())
}

// Build lowers the spec to a self-contained, ground-truth-labeled kgen case.
// The op list is passed through kgen.Repair (the identity on well-formed
// programs) before lowering, so the result is valid by construction.
func (s *Spec) Build() (*kgen.Case, error) {
	f, v, err := s.Resolve()
	if err != nil {
		return nil, err
	}
	canonical := canonicalName(f, v)
	p := kgen.Repair(&kgen.Prog{
		Seed:      progSeed(f.Name, v["seed"]),
		GridX:     v["ctas"],
		BlockX:    v["block"],
		DataWords: v["size"],
		AtomOp:    isa.AtomAdd,
		Ops:       f.build(v),
	})
	c, err := kgen.Build(p)
	if err != nil {
		return nil, fmt.Errorf("families: %s: %w", canonical, err)
	}
	name := kernelName(f.Name, canonical)
	c.Name, c.Kernel.Name = name, name
	return c, nil
}

// Workload adapts the spec to the workloads registry contract, so a family
// instance runs everywhere a Table I benchmark does: experiments, job specs,
// checkpointing, all three engines. Verify replays the case on the
// functional emulator from a fresh environment and compares snapshots —
// valid for any engine because generated kernels are race-free by
// construction (stores hit own slots; atomics are commutative).
func (s *Spec) Workload() (*workloads.Workload, error) {
	f, v, err := s.Resolve()
	if err != nil {
		return nil, err
	}
	canonical := canonicalName(f, v)
	w := &workloads.Workload{
		Name:        canonical,
		Category:    workloads.Synthetic,
		Description: f.Description,
		DataSet:     fmt.Sprintf("seeded synthetic arrays, %d words per bank", v["size"]),
	}
	w.Setup = func(p workloads.Params) (*workloads.Instance, error) {
		vv := make(map[string]int, len(v))
		for k, val := range v {
			vv[k] = val
		}
		if p.Size != 0 {
			sz, _ := f.knob("size")
			if err := sz.validate(p.Size); err != nil {
				return nil, fmt.Errorf("families: %s: size override: %w", f.Name, err)
			}
			vv["size"] = p.Size
		}
		if p.Seed != 0 {
			sk, _ := f.knob("seed")
			vv["seed"] = int(uint64(p.Seed) % uint64(sk.Max+1))
		}
		c, err := (&Spec{Name: f.Name, Knobs: vv}).Build()
		if err != nil {
			return nil, err
		}
		env := c.NewEnv()
		return &workloads.Instance{
			Workload:      w,
			Mem:           env.Mem,
			Prog:          &ptx.Program{Kernels: []*ptx.Kernel{c.Kernel}},
			MainKernel:    c.Kernel.Name,
			CTAs:          c.GridX,
			ThreadsPerCTA: c.BlockX,
			Run: func(exec workloads.Executor) error {
				return exec(env.Launch)
			},
			Verify: func() error {
				ref := c.NewEnv()
				if _, err := emu.Run(&emu.Env{Mem: ref.Mem, Launch: ref.Launch}, emu.RunOptions{}); err != nil {
					return fmt.Errorf("families: %s: reference run: %w", canonical, err)
				}
				got, want := env.Snapshot(), ref.Snapshot()
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("families: %s: mutable word %d = %#x, reference %#x",
							canonical, i, got[i], want[i])
					}
				}
				return nil
			},
		}, nil
	}
	return w, nil
}

func init() {
	// Family instance names resolve as workloads everywhere a Table I name
	// is accepted. Non-family names fall through untouched; malformed family
	// names resolve to nothing and surface as "unknown workload" upstream.
	workloads.RegisterResolver(func(name string) (*workloads.Workload, bool) {
		if !IsFamilyName(name) {
			return nil, false
		}
		spec, err := ParseName(name)
		if err != nil {
			return nil, false
		}
		w, err := spec.Workload()
		if err != nil {
			return nil, false
		}
		return w, true
	})
}
