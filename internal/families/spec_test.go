package families

import (
	"strings"
	"testing"

	"critload/internal/workloads"
)

func TestCanonicalNameRoundTrip(t *testing.T) {
	for _, f := range List() {
		s := &Spec{Name: f.Name}
		name, err := s.CanonicalName()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !strings.HasPrefix(name, NamePrefix+f.Name+"?") {
			t.Fatalf("%s: canonical name %q lacks prefix", f.Name, name)
		}
		// Parse → canonicalize must be a fixed point.
		back, err := ParseName(name)
		if err != nil {
			t.Fatalf("%s: parse %q: %v", f.Name, name, err)
		}
		name2, err := back.CanonicalName()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if name2 != name {
			t.Fatalf("%s: canonicalization not stable: %q then %q", f.Name, name, name2)
		}
		// Every knob appears exactly once.
		query := name[strings.IndexByte(name, '?')+1:]
		if got := len(strings.Split(query, "&")); got != len(f.Knobs) {
			t.Fatalf("%s: %d knobs in %q, schema has %d", f.Name, got, name, len(f.Knobs))
		}
	}
}

func TestPartialKnobsCanonicalize(t *testing.T) {
	s, err := ParseName("family:stream?loads=8")
	if err != nil {
		t.Fatal(err)
	}
	name, err := s.CanonicalName()
	if err != nil {
		t.Fatal(err)
	}
	want := "family:stream?block=64&ctas=4&loads=8&seed=1&size=256&stride=1&trips=1"
	if name != want {
		t.Fatalf("canonical = %q, want %q", name, want)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		want string // substring of the expected error; "" = valid
	}{
		{Spec{Name: "stream"}, ""},
		{Spec{Name: "nope"}, "unknown family"},
		{Spec{Name: "stream", Knobs: map[string]int{"bogus": 1}}, "no knob"},
		{Spec{Name: "stream", Knobs: map[string]int{"size": 100}}, "power of two"},
		{Spec{Name: "stream", Knobs: map[string]int{"size": 8192}}, "out of range"},
		{Spec{Name: "stream", Knobs: map[string]int{"loads": 0}}, "out of range"},
		{Spec{Name: "mixed-dn", Knobs: map[string]int{"dn": 101}}, "out of range"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		switch {
		case c.want == "" && err != nil:
			t.Errorf("%+v: unexpected error %v", c.spec, err)
		case c.want != "" && (err == nil || !strings.Contains(err.Error(), c.want)):
			t.Errorf("%+v: error %v, want substring %q", c.spec, err, c.want)
		}
	}
}

func TestWorkloadResolver(t *testing.T) {
	name := "family:indirect-chase?depth=1"
	w, ok := workloads.Get(name)
	if !ok {
		t.Fatalf("workloads.Get(%q) did not resolve", name)
	}
	if w.Category != workloads.Synthetic {
		t.Fatalf("category = %v, want synthetic", w.Category)
	}
	if !strings.HasPrefix(w.Name, "family:indirect-chase?") {
		t.Fatalf("resolved name %q not canonical", w.Name)
	}
	if _, ok := workloads.Get("family:nope"); ok {
		t.Fatal("unknown family resolved")
	}
	if _, ok := workloads.Get("family:stream?loads=banana"); ok {
		t.Fatal("malformed knob resolved")
	}
	if _, ok := workloads.Get("2mm"); !ok {
		t.Fatal("Table I workloads must still resolve")
	}
}
