package families_test

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"critload/internal/difftest"
	. "critload/internal/families"
)

// Sweep knobs, read from the environment so the nightly campaign can scale
// the run without a code change:
//
//	CRITLOAD_FAMILY_SWEEP_POINTS — random knob points per family (default 3)
//	CRITLOAD_FAMILY_SWEEP_SEED   — PRNG seed (default 1; nightly passes the run ID)
//	CRITLOAD_FAMILY_SWEEP_OUT    — directory for failing specs (default none)
func sweepConfig() (points int, seed int64, outDir string) {
	points, seed = 3, 1
	if s := os.Getenv("CRITLOAD_FAMILY_SWEEP_POINTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			points = n
		}
	}
	if s := os.Getenv("CRITLOAD_FAMILY_SWEEP_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = n
		}
	}
	return points, seed, os.Getenv("CRITLOAD_FAMILY_SWEEP_OUT")
}

// randKnobs draws one uniformly random in-range value per knob. Pow2 knobs
// draw a uniform exponent so small and large footprints are equally likely;
// the seed knob stays modest so failing specs print readably.
func randKnobs(rng *rand.Rand, f *Family) map[string]int {
	v := map[string]int{}
	for _, k := range f.Knobs {
		switch {
		case k.Name == "seed":
			v[k.Name] = rng.Intn(1 << 16)
		case k.Pow2:
			lo := bits.TrailingZeros(uint(k.Min))
			hi := bits.TrailingZeros(uint(k.Max))
			v[k.Name] = 1 << (lo + rng.Intn(hi-lo+1))
		default:
			v[k.Name] = k.Min + rng.Intn(k.Max-k.Min+1)
		}
	}
	return v
}

// TestFamilySweep is the nightly family campaign: randomized knob points per
// family, drawn from an externally supplied seed (the CI run ID), each
// checked against the full difftest oracle stack and the family's declared
// D/N mix. Failing specs are serialized to CRITLOAD_FAMILY_SWEEP_OUT so the
// workflow can upload them as artifacts and a developer can replay the exact
// instance. On plain go test the sweep stays small (3 points per family).
func TestFamilySweep(t *testing.T) {
	points, seed, outDir := sweepConfig()
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("sweep: %d points per family, seed %d", points, seed)
	for _, f := range List() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			// Per-family stream split from the campaign seed, so one family's
			// draw count never perturbs another's points.
			h := int64(0)
			for _, c := range f.Name {
				h = h*131 + int64(c)
			}
			rng := rand.New(rand.NewSource(seed ^ h))
			for i := 0; i < points; i++ {
				spec := &Spec{Name: f.Name, Knobs: randKnobs(rng, f)}
				name, err := spec.CanonicalName()
				if err != nil {
					t.Fatalf("point %d: %v", i, err)
				}
				if err := sweepOne(f, spec); err != nil {
					saveFailingSpec(t, outDir, spec, i)
					t.Errorf("%s: %v", name, err)
				}
			}
		})
	}
}

func sweepOne(f *Family, spec *Spec) error {
	_, v, err := spec.Resolve()
	if err != nil {
		return err
	}
	c, err := spec.Build()
	if err != nil {
		return err
	}
	rep := difftest.Check(c, difftest.Options{})
	det, nondet := f.ExpectedClasses(v)
	if rep.Det != det || rep.NonDet != nondet {
		return fmt.Errorf("ground truth D=%d N=%d, schema promises D=%d N=%d",
			rep.Det, rep.NonDet, det, nondet)
	}
	if rep.Failed() {
		return fmt.Errorf("%d oracle divergence(s), first: %s: %s",
			len(rep.Divergences), rep.Divergences[0].Oracle, rep.Divergences[0].Detail)
	}
	return nil
}

// saveFailingSpec writes the failing spec (and its lowered PTX when the
// build still succeeds) into outDir for artifact upload.
func saveFailingSpec(t *testing.T, outDir string, spec *Spec, i int) {
	if outDir == "" {
		return
	}
	base := filepath.Join(outDir, fmt.Sprintf("%s-%d", spec.Name, i))
	buf, err := json.MarshalIndent(spec, "", " ")
	if err == nil {
		err = os.WriteFile(base+".json", append(buf, '\n'), 0o644)
	}
	if err != nil {
		t.Logf("could not save failing spec: %v", err)
		return
	}
	if c, berr := spec.Build(); berr == nil {
		if werr := os.WriteFile(base+".ptx", []byte(c.Kernel.Disassemble()), 0o644); werr != nil {
			t.Logf("could not save failing PTX: %v", werr)
		}
	}
	t.Logf("failing spec saved to %s.json", base)
}
