package gpu

import (
	"testing"

	"critload/internal/mem"
	"critload/internal/stats"
)

func TestSemiGlobalL2PartitionMapping(t *testing.T) {
	cfg := testConfig()
	cfg.L2Clusters = 2
	g := MustNew(cfg, mem.New(), stats.New())
	b := (*backend)(g)

	// SMs 0-6 are cluster 0 (partitions 0-2), SMs 7-13 cluster 1 (3-5).
	for sm := 0; sm < cfg.NumSMs; sm++ {
		for blk := uint32(0); blk < 128*32; blk += 128 {
			p := b.PartitionOf(sm, blk)
			cluster := sm * 2 / cfg.NumSMs
			lo, hi := cluster*3, cluster*3+2
			if p < lo || p > hi {
				t.Fatalf("SM %d block %#x → partition %d, want in [%d,%d]", sm, blk, p, lo, hi)
			}
		}
	}
	// Same block, different clusters → different slices (duplication).
	if b.PartitionOf(0, 0) == b.PartitionOf(13, 0) {
		t.Errorf("clusters share a slice for the same block")
	}
}

func TestSemiGlobalL2RunsToCompletion(t *testing.T) {
	m := mem.New()
	const n = 2048
	aB := m.AllocU32s(make([]uint32, n))
	bB := m.AllocU32s(make([]uint32, n))
	cB := m.Alloc(4 * n)
	cfg := testConfig()
	cfg.L2Clusters = 3
	g := MustNew(cfg, m, stats.New())
	l := launchOf(t, vecAddSrc, "vecadd", n/256, 256, aB, bB, cB, n)
	if err := g.LaunchKernel(l); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := m.Read32(cB + uint32(4*i)); got != 0 {
			t.Fatalf("c[%d] = %d, want 0", i, got)
		}
	}
}

func TestL2ClusterValidation(t *testing.T) {
	cfg := testConfig()
	cfg.L2Clusters = 4 // does not divide 6 partitions
	if err := cfg.Validate(); err == nil {
		t.Errorf("invalid cluster count accepted")
	}
	cfg.L2Clusters = 3
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid cluster count rejected: %v", err)
	}
}

func TestNonDetBypassEndToEnd(t *testing.T) {
	m := mem.New()
	const n = 2048
	idx := make([]uint32, n)
	bv := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32((i * 577) % n)
		bv[i] = uint32(i + 7)
	}
	idxB, bB := m.AllocU32s(idx), m.AllocU32s(bv)
	outB := m.Alloc(4 * n)

	cfg := testConfig()
	cfg.SM.NonDetBypassL1 = true
	col := stats.New()
	g := MustNew(cfg, m, col)
	l := launchOf(t, gatherSrc, "gather", n/256, 256, idxB, bB, outB)
	if err := g.LaunchKernel(l); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	// Results still correct under the bypass.
	for i := 0; i < n; i++ {
		want := bv[idx[i]]
		if got := m.Read32(outB + uint32(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	// Non-deterministic accesses never allocated in the L1: they record as
	// misses but generate no hit-reserved merges on L1 lines.
	if col.L1Outcomes[stats.NonDet][1] != 0 { // cache.HitReserved
		t.Errorf("bypassed loads produced L1 hit-reserved outcomes")
	}
	if col.Turnaround[stats.NonDet].Ops == 0 {
		t.Errorf("no non-deterministic turnaround recorded")
	}
}
