// Package gpu wires the full device together: 14 SMs with private L1s, a
// request and a reply interconnection network, 6 memory partitions each with
// an L2 slice and a GDDR5-like channel, and a CTA scheduler (round-robin as
// on real hardware, or the clustered variant the paper's Section X.B
// proposes). Kernel launches run execution-driven: warps execute
// functionally at issue inside the SMs while this package models timing.
package gpu

import (
	"fmt"
	"math"

	"critload/internal/cache"
	"critload/internal/dataflow"
	"critload/internal/dram"
	"critload/internal/emu"
	"critload/internal/icnt"
	"critload/internal/mem"
	"critload/internal/memreq"
	"critload/internal/ptx"
	"critload/internal/sm"
	"critload/internal/stats"
)

// CTAPolicy selects how CTAs are distributed over SMs.
type CTAPolicy uint8

// CTA scheduling policies.
const (
	// CTARoundRobin assigns CTA i to SM (i mod numSMs), the baseline
	// hardware behaviour described in Section X.B.
	CTARoundRobin CTAPolicy = iota
	// CTAClustered assigns neighbouring CTAs to the same SM so adjacent
	// CTAs share the private L1, the paper's proposed alternative.
	CTAClustered
)

func (p CTAPolicy) String() string {
	if p == CTAClustered {
		return "clustered"
	}
	return "round-robin"
}

// Config is the whole-device configuration; defaults follow Table II.
type Config struct {
	NumSMs        int
	NumPartitions int
	SM            sm.Config
	L2            cache.Config // per partition slice
	ICNT          icnt.Config
	DRAM          dram.Config
	CTAPolicy     CTAPolicy
	// L2Clusters > 1 selects the semi-global L2 organization of Section
	// X.C: the L2 slices are split into that many groups, each private to a
	// cluster of SMs. Must divide NumPartitions. 0 or 1 keeps the unified
	// L2 of Table II.
	L2Clusters int
	// MaxCycles aborts a run that exceeds this cycle count (0 = unlimited);
	// a safety net against simulator livelock.
	MaxCycles int64
	// MaxWarpInsts stops issuing new CTAs after this many warp instructions
	// (0 = unlimited), mirroring the paper's first-billion-instruction
	// simulation window.
	MaxWarpInsts uint64
	// FastForward enables event-horizon skipping: when no component can make
	// progress, the engine jumps straight to the earliest future event
	// instead of ticking dead cycles one by one. Every statistic is
	// batch-accounted so results are byte-identical to the serial loop;
	// disabling it keeps the naive loop as a differential-testing oracle.
	// DefaultConfig enables it.
	FastForward bool
	// Parallel selects the phase-barrier parallel cycle engine: within each
	// simulated cycle, the SM memory pipelines and the memory partitions step
	// concurrently on a persistent worker pool, with interconnect injection
	// and all functional execution merged on serial phases so every artifact
	// stays byte-identical to the serial loop (see docs/PERFORMANCE.md). It
	// composes with FastForward: dead cycles are skipped, live ones are
	// parallelized.
	Parallel bool
	// Workers sizes the parallel engine's worker pool (0 = GOMAXPROCS,
	// capped at the SM count). Ignored unless Parallel is set; any value
	// produces identical results, by the engine's determinism contract.
	Workers int
	// Adaptive enables the parallel engine's occupancy-driven controller:
	// each cycle, a concurrent phase whose active-component count is below
	// the threshold runs inline on the engine goroutine instead of fanning
	// out to the pool, and a launch that can never profit from the pool
	// (one usable core) demotes to the serial/fast-forward loop body
	// outright. Decisions are pure functions of pre-phase simulated state,
	// so results stay byte-identical at every worker count. Ignored unless
	// Parallel is set.
	Adaptive bool
	// AdaptiveThreshold is the minimum number of non-quiet components in a
	// phase for it to be worth a pool fan-out (0 = default 3). A negative
	// value is a test hook: the magnitude is the threshold and whole-engine
	// demotion is disabled, forcing per-phase inline/pooled transitions to
	// exercise even on a single-core host.
	AdaptiveThreshold int
}

// DefaultConfig returns the Tesla C2050 configuration of Table II: 14 SMs,
// 16 KB L1 (128 B lines, 4-way, 64 MSHRs), 768 KB unified L2 in 6 slices
// (8-way, 32 MSHRs each), ROP (L2) latency 120, DRAM latency 100.
func DefaultConfig() Config {
	return Config{
		NumSMs:        14,
		NumPartitions: 6,
		SM:            sm.DefaultConfig(),
		L2: cache.Config{
			Bytes: 128 * 1024, LineBytes: 128, Ways: 8,
			MSHREntries: 32, MSHRTargets: 8, HitLatency: 120,
		},
		ICNT:        icnt.Config{Latency: 8, InputQueueCap: 8},
		DRAM:        dram.DefaultConfig(),
		FastForward: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumSMs <= 0 || c.NumPartitions <= 0 {
		return fmt.Errorf("gpu: bad dimensions %d SMs × %d partitions", c.NumSMs, c.NumPartitions)
	}
	if err := c.SM.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.ICNT.Validate(); err != nil {
		return err
	}
	if c.L2Clusters > 1 && c.NumPartitions%c.L2Clusters != 0 {
		return fmt.Errorf("gpu: %d L2 clusters do not divide %d partitions",
			c.L2Clusters, c.NumPartitions)
	}
	if c.Workers < 0 {
		return fmt.Errorf("gpu: negative worker count %d", c.Workers)
	}
	return c.DRAM.Validate()
}

// latencyModel derives the unloaded latencies of the three service levels
// from the configuration.
func (c Config) latencyModel() sm.LatencyModel {
	l1 := c.SM.L1.HitLatency
	l2 := l1 + 2*c.ICNT.Latency + c.L2.HitLatency
	return sm.LatencyModel{
		L1Hit: l1,
		L2Hit: l2,
		DRAM:  l2 + c.DRAM.AccessLatency,
		Icnt:  c.ICNT.Latency,
	}
}

// GPU is one simulated device.
type GPU struct {
	cfg   Config
	Mem   *mem.Memory
	Col   *stats.Collector
	sms   []*sm.SM
	parts []*partition

	reqNet   *icnt.Network
	replyNet *icnt.Network

	// pools recycles memory requests, one free list per SM so the parallel
	// engine's concurrent SM phase never contends on a shared list; requests
	// released downstream (write-through stores at the DRAM channel) are
	// routed back to the originating SM's pool. See memreq.Pool for the
	// ownership rules.
	pools []*memreq.Pool

	// Shard collectors, allocated only for the parallel engine: each SM and
	// each partition records into its own shard during the concurrent phases,
	// and mergeShards folds them into Col at every launch boundary. Nil under
	// the serial engines, whose components write Col directly.
	smCols   []*stats.Collector
	partCols []*stats.Collector

	// traced notes whether a Tracer is installed: trace order is globally
	// meaningful, so the parallel engine then steps SM memory pipelines
	// serially instead of concurrently.
	traced bool

	cycle int64

	// SkippedCycles counts cycles fast-forwarded over instead of stepped; a
	// diagnostic for skip effectiveness. It lives outside the Collector on
	// purpose: the serial oracle never skips, and the two engines' collectors
	// must stay byte-identical.
	SkippedCycles int64

	// Phases accumulates the parallel engine's phase diagnostics (fusion and
	// adaptive-controller decisions). Like SkippedCycles it lives outside the
	// Collector: engine mechanics must never leak into the statistics that
	// the byte-identity contract compares.
	Phases PhaseStats

	// pinHint is the component index (see nextEventOf) that most recently
	// pinned the horizon to now+1. Activity is phase-local, so rechecking it
	// first usually resolves the horizon with a single NextEvent call instead
	// of a full component scan. Purely an evaluation-order hint: the horizon
	// value is identical with or without it.
	pinHint int

	// Launch state.
	launch     *emu.Launch
	nextCTA    int
	liveCTAs   int
	stopIssue  bool // warp-instruction budget exhausted: no new CTAs
	classCache map[*ptx.Kernel]*dataflow.Result
}

// New builds a GPU over the given memory.
func New(cfg Config, memory *mem.Memory, col *stats.Collector) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if memory == nil {
		memory = mem.New()
	}
	if col == nil {
		col = stats.New()
	}
	g := &GPU{cfg: cfg, Mem: memory, Col: col, classCache: map[*ptx.Kernel]*dataflow.Result{}}

	g.reqNet = icnt.MustNew(cfg.NumSMs, cfg.NumPartitions, cfg.ICNT, g.deliverToPartition)
	g.replyNet = icnt.MustNew(cfg.NumPartitions, cfg.NumSMs, cfg.ICNT, g.deliverToSM)
	g.reqNet.SetFastForward(cfg.FastForward)
	g.replyNet.SetFastForward(cfg.FastForward)

	lat := cfg.latencyModel()
	for i := 0; i < cfg.NumSMs; i++ {
		smCol := col
		if cfg.Parallel {
			smCol = stats.New()
			g.smCols = append(g.smCols, smCol)
		}
		s, err := sm.New(i, cfg.SM, lat, (*backend)(g), smCol)
		if err != nil {
			return nil, err
		}
		g.pools = append(g.pools, &memreq.Pool{})
		s.SetPool(g.pools[i])
		s.SetFastForward(cfg.FastForward)
		g.sms = append(g.sms, s)
	}
	for i := 0; i < cfg.NumPartitions; i++ {
		partCol := col
		if cfg.Parallel {
			partCol = stats.New()
			g.partCols = append(g.partCols, partCol)
		}
		g.parts = append(g.parts, newPartition(i, g, partCol))
	}
	return g, nil
}

// MustNew builds a GPU or panics.
func MustNew(cfg Config, memory *mem.Memory, col *stats.Collector) *GPU {
	g, err := New(cfg, memory, col)
	if err != nil {
		panic(err)
	}
	return g
}

// Cycle returns the current simulation cycle.
func (g *GPU) Cycle() int64 { return g.cycle }

// SetTracer installs a per-request trace sink on every SM (nil disables).
// Trace entries appear in completion order, which is globally meaningful, so
// the parallel engine steps the SM memory pipelines serially while a tracer
// is installed; the trace and every statistic stay identical to a serial run.
func (g *GPU) SetTracer(t sm.Tracer) {
	g.traced = t != nil
	for _, s := range g.sms {
		s.SetTracer(t)
	}
}

// backend adapts *GPU to the sm.Backend interface without exporting the
// methods on GPU itself.
type backend GPU

func (b *backend) CanInject(smID int) bool { return b.reqNet.CanInject(smID) }

func (b *backend) Inject(r *memreq.Request, flits int64, now int64) {
	if !b.reqNet.Inject(r.SM, r.Partition, r, flits, now) {
		panic("gpu: Inject called without CanInject")
	}
}

func (b *backend) PartitionOf(smID int, block uint32) int {
	if b.cfg.L2Clusters > 1 {
		// Semi-global L2 (Section X.C): each SM cluster owns a group of L2
		// slices; blocks interleave within the group. Read-only data may be
		// duplicated across groups, exactly like private caches.
		per := b.cfg.NumPartitions / b.cfg.L2Clusters
		cluster := smID * b.cfg.L2Clusters / b.cfg.NumSMs
		return cluster*per + int(block/mem.BlockBytes)%per
	}
	return int(block/mem.BlockBytes) % b.cfg.NumPartitions
}

func (b *backend) CTAFinished(smID int, cta *emu.CTA) {
	g := (*GPU)(b)
	g.liveCTAs--
}

// deliverToPartition receives request-network packets at a partition.
func (g *GPU) deliverToPartition(p *icnt.Packet, now int64) {
	p.Req.ArrivedL2 = now
	g.parts[p.Dst].receive(p.Req)
}

// deliverToSM receives reply-network packets at an SM.
func (g *GPU) deliverToSM(p *icnt.Packet, now int64) {
	g.sms[p.Dst].HandleReply(p.Req, now)
}

// classify returns (caching) the dataflow classification of a kernel.
func (g *GPU) classify(k *ptx.Kernel) *dataflow.Result {
	r, ok := g.classCache[k]
	if !ok {
		r = dataflow.Classify(k)
		g.classCache[k] = r
	}
	return r
}

// Classifier returns a stats.Classifier for a kernel.
func (g *GPU) Classifier(k *ptx.Kernel) stats.Classifier {
	res := g.classify(k)
	return func(pc uint32) bool {
		li, ok := res.Load(int(pc) / 8)
		return ok && li.Class == dataflow.NonDeterministic
	}
}

// LaunchKernel runs one kernel launch to completion under the timing model.
func (g *GPU) LaunchKernel(l *emu.Launch) error {
	if err := l.Validate(); err != nil {
		return err
	}
	g.launch = l
	g.nextCTA = 0
	g.liveCTAs = 0
	env := &emu.Env{Mem: g.Mem, Launch: l}
	classifier := g.Classifier(l.Kernel)
	for _, s := range g.sms {
		s.SetKernel(env, l.Kernel.Name, classifier)
	}
	if g.cfg.MaxWarpInsts > 0 && g.Col.WarpInsts >= g.cfg.MaxWarpInsts {
		return nil // budget already exhausted by earlier launches
	}
	g.stopIssue = false
	if g.cfg.Parallel {
		return g.launchParallel(l)
	}
	return g.runSerialLoop(l)
}

// runSerialLoop is the serial/fast-forward cycle loop shared by the plain
// engines and the parallel engine's whole-launch demotion path. The budget
// check sums live shard collectors so the adaptive engine — whose SMs write
// shards — stops at exactly the cycle the serial loop would; without shards
// warpInstsTotal is just Col.WarpInsts.
func (g *GPU) runSerialLoop(l *emu.Launch) error {
	for {
		// Reply path first so fills release resources before new accesses.
		g.replyNet.Step(g.cycle)
		for _, p := range g.parts {
			p.step(g.cycle)
		}
		g.reqNet.Step(g.cycle)
		for _, s := range g.sms {
			if err := s.Step(g.cycle); err != nil {
				return err
			}
		}
		if !g.stopIssue {
			g.scheduleCTAs()
			if g.cfg.MaxWarpInsts > 0 && g.warpInstsTotal() >= g.cfg.MaxWarpInsts {
				// Hard stop, as GPGPU-Sim does at its instruction budget:
				// freeze statistics without draining in-flight work. The GPU
				// must not be asked to run further kernels after this.
				g.stopIssue = true
				g.cycle++
				g.Col.GPUCycles = g.cycle
				return nil
			}
		}
		g.cycle++
		g.Col.GPUCycles = g.cycle

		if g.done() {
			return nil
		}
		if g.cfg.MaxCycles > 0 && g.cycle >= g.cfg.MaxCycles {
			return fmt.Errorf("gpu: exceeded %d cycles (possible livelock) in kernel %s",
				g.cfg.MaxCycles, l.Kernel.Name)
		}
		if g.cfg.FastForward {
			// The cycle just stepped is g.cycle-1; if no component can make
			// progress before horizon h, cycles g.cycle..h-1 are dead and
			// only need their occupancy statistics accounted.
			if h := g.horizon(g.cycle - 1); h > g.cycle {
				if h == math.MaxInt64 && g.cfg.MaxCycles <= 0 {
					// The serial loop would spin forever here; failing loudly
					// is strictly more useful.
					return fmt.Errorf("gpu: no pending events with launch incomplete (livelock) in kernel %s",
						l.Kernel.Name)
				}
				if err := g.skipTo(h, l); err != nil {
					return err
				}
			}
		}
	}
}

// nextEventOf evaluates one component's NextEvent by flat index: the
// partitions, then the reply and request networks, then the SMs.
func (g *GPU) nextEventOf(i int, now int64) int64 {
	switch p := len(g.parts); {
	case i < p:
		return g.parts[i].nextEvent(now)
	case i == p:
		return g.replyNet.NextEvent(now)
	case i == p+1:
		return g.reqNet.NextEvent(now)
	default:
		return g.sms[i-p-2].NextEvent(now)
	}
}

// horizon returns the earliest cycle after now at which any component's
// observable state can change, assuming everything was just stepped at now.
// Every component clamps its report to now+1, so the first one answering
// now+1 decides the horizon; the pin hint is tried before the full scan
// because the same component tends to stay active across consecutive cycles.
func (g *GPU) horizon(now int64) int64 {
	if t := g.nextEventOf(g.pinHint, now); t <= now+1 {
		return t
	}
	h := int64(math.MaxInt64)
	for i, n := 0, len(g.parts)+2+len(g.sms); i < n; i++ {
		if t := g.nextEventOf(i, now); t < h {
			if h = t; h <= now+1 {
				g.pinHint = i
				return h
			}
		}
	}
	return h
}

// skipTo jumps the cycle counter from g.cycle to target, folding the skipped
// cycles' occupancy statistics in exactly as the serial loop's per-cycle
// stepping would have. When the window crosses MaxCycles it reproduces the
// serial loop's livelock error at the identical cycle count.
func (g *GPU) skipTo(target int64, l *emu.Launch) error {
	limited := false
	if g.cfg.MaxCycles > 0 && target >= g.cfg.MaxCycles {
		target = g.cfg.MaxCycles
		limited = true
	}
	if n := target - g.cycle; n > 0 {
		for _, s := range g.sms {
			s.AccountIdle(g.cycle, n)
		}
		g.SkippedCycles += n
		g.cycle = target
		g.Col.GPUCycles = g.cycle
	}
	if limited {
		return fmt.Errorf("gpu: exceeded %d cycles (possible livelock) in kernel %s",
			g.cfg.MaxCycles, l.Kernel.Name)
	}
	return nil
}

// done reports launch completion: every CTA issued and retired and the
// memory system drained.
func (g *GPU) done() bool {
	if !g.stopIssue && g.nextCTA < g.launch.Grid.Count() {
		return false
	}
	if g.liveCTAs > 0 {
		return false
	}
	if g.reqNet.Pending() > 0 || g.replyNet.Pending() > 0 {
		return false
	}
	for _, p := range g.parts {
		if !p.idle() {
			return false
		}
	}
	for _, s := range g.sms {
		if !s.Idle() {
			return false
		}
	}
	return true
}

// scheduleCTAs hands pending CTAs to SMs with free resources according to
// the CTA policy.
func (g *GPU) scheduleCTAs() {
	total := g.launch.Grid.Count()
	for g.nextCTA < total {
		smID := g.pickSM(g.nextCTA)
		if smID < 0 {
			return
		}
		g.sms[smID].LaunchCTA(g.launch, g.nextCTA)
		g.nextCTA++
		g.liveCTAs++
	}
}

// pickSM chooses the SM for the given CTA id, or -1 when no SM can accept.
func (g *GPU) pickSM(ctaID int) int {
	switch g.cfg.CTAPolicy {
	case CTAClustered:
		// Neighbouring CTAs go to the same SM: CTA i prefers SM
		// (i / clusterSize) mod numSMs, falling back to any free SM so the
		// device never sits idle.
		cluster := 2
		pref := (ctaID / cluster) % g.cfg.NumSMs
		if g.sms[pref].CanAccept(g.launch) {
			return pref
		}
		for i := 0; i < g.cfg.NumSMs; i++ {
			s := (pref + i) % g.cfg.NumSMs
			if g.sms[s].CanAccept(g.launch) {
				return s
			}
		}
		return -1
	default:
		// Hardware round-robin: prefer SM (ctaID mod numSMs), else the next
		// free one (GPUs refill greedily as CTAs finish).
		pref := ctaID % g.cfg.NumSMs
		for i := 0; i < g.cfg.NumSMs; i++ {
			s := (pref + i) % g.cfg.NumSMs
			if g.sms[s].CanAccept(g.launch) {
				return s
			}
		}
		return -1
	}
}
