package gpu

import (
	"testing"

	"critload/internal/cache"
	"critload/internal/emu"
	"critload/internal/isa"
	"critload/internal/mem"
	"critload/internal/ptx"
	"critload/internal/stats"
)

const vecAddSrc = `
.kernel vecadd
.param .u32 a
.param .u32 b
.param .u32 c
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    shl.u32      %r4, %r2, 2;
    ld.param.u32 %r5, [a];
    add.u32      %r6, %r5, %r4;
    ld.global.u32 %r7, [%r6];
    ld.param.u32 %r8, [b];
    add.u32      %r9, %r8, %r4;
    ld.global.u32 %r10, [%r9];
    add.u32      %r11, %r7, %r10;
    ld.param.u32 %r12, [c];
    add.u32      %r13, %r12, %r4;
    st.global.u32 [%r13], %r11;
EXIT:
    exit;
`

// gatherSrc loads b[idx[i]] — one deterministic and one non-deterministic
// load per thread.
const gatherSrc = `
.kernel gather
.param .u32 idx
.param .u32 b
.param .u32 out
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    shl.u32      %r3, %r2, 2;
    ld.param.u32 %r4, [idx];
    add.u32      %r5, %r4, %r3;
    ld.global.u32 %r6, [%r5];      // idx[i]: deterministic
    ld.param.u32 %r7, [b];
    shl.u32      %r8, %r6, 2;
    add.u32      %r9, %r7, %r8;
    ld.global.u32 %r10, [%r9];     // b[idx[i]]: non-deterministic
    ld.param.u32 %r11, [out];
    add.u32      %r12, %r11, %r3;
    st.global.u32 [%r12], %r10;
    exit;
`

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxCycles = 3_000_000
	return cfg
}

func launchOf(t *testing.T, src, name string, grid, block int, params ...uint32) *emu.Launch {
	t.Helper()
	prog, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k, ok := prog.Kernel(name)
	if !ok {
		t.Fatalf("kernel %q missing", name)
	}
	return &emu.Launch{Kernel: k, Grid: emu.Dim1(grid), Block: emu.Dim1(block), Params: params}
}

func TestTimingVecAddCorrectAndMeasured(t *testing.T) {
	m := mem.New()
	const n = 4096
	a := make([]uint32, n)
	b := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i)
		b[i] = uint32(2 * i)
	}
	aB, bB := m.AllocU32s(a), m.AllocU32s(b)
	cB := m.Alloc(4 * n)

	col := stats.New()
	g := MustNew(testConfig(), m, col)
	l := launchOf(t, vecAddSrc, "vecadd", n/256, 256, aB, bB, cB, n)
	if err := g.LaunchKernel(l); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := m.Read32(cB + uint32(4*i)); got != uint32(3*i) {
			t.Fatalf("c[%d] = %d, want %d", i, got, 3*i)
		}
	}
	if g.Cycle() <= 0 {
		t.Errorf("cycle count %d", g.Cycle())
	}
	// All loads are deterministic and fully coalesced: 1 request per warp.
	if col.GLoadWarps[stats.NonDet] != 0 {
		t.Errorf("non-deterministic loads = %d, want 0", col.GLoadWarps[stats.NonDet])
	}
	wantLoads := uint64(2 * n / 32) // 2 loads per warp of 32 threads
	if col.GLoadWarps[stats.Det] != wantLoads {
		t.Errorf("det load warps = %d, want %d", col.GLoadWarps[stats.Det], wantLoads)
	}
	if rpw := col.RequestsPerWarp(stats.Det); rpw != 1 {
		t.Errorf("requests/warp = %v, want 1 (fully coalesced)", rpw)
	}
	// Turnaround must have been recorded for every load warp.
	if col.Turnaround[stats.Det].Ops != wantLoads {
		t.Errorf("turnaround ops = %d, want %d", col.Turnaround[stats.Det].Ops, wantLoads)
	}
	if col.Turnaround[stats.Det].MeanTotal() < float64(g.cfg.SM.L1.HitLatency) {
		t.Errorf("mean turnaround %v below L1 hit latency", col.Turnaround[stats.Det].MeanTotal())
	}
}

func TestTimingGatherClassifiesAndDiverges(t *testing.T) {
	m := mem.New()
	const n = 2048
	idx := make([]uint32, n)
	bv := make([]uint32, n)
	// Scattered permutation-ish indices: every lane hits a distant block.
	for i := range idx {
		idx[i] = uint32((i * 577) % n)
		bv[i] = uint32(i + 7)
	}
	idxB, bB := m.AllocU32s(idx), m.AllocU32s(bv)
	outB := m.Alloc(4 * n)

	col := stats.New()
	g := MustNew(testConfig(), m, col)
	l := launchOf(t, gatherSrc, "gather", n/256, 256, idxB, bB, outB)
	if err := g.LaunchKernel(l); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	for i := 0; i < n; i++ {
		want := bv[idx[i]]
		if got := m.Read32(outB + uint32(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	// Both categories must be populated: idx[i] deterministic, b[idx[i]]
	// non-deterministic — and in equal warp counts.
	if col.GLoadWarps[stats.Det] == 0 || col.GLoadWarps[stats.NonDet] == 0 {
		t.Fatalf("load warps det=%d nondet=%d, want both nonzero",
			col.GLoadWarps[stats.Det], col.GLoadWarps[stats.NonDet])
	}
	if col.GLoadWarps[stats.Det] != col.GLoadWarps[stats.NonDet] {
		t.Errorf("det=%d nondet=%d load warps, want equal",
			col.GLoadWarps[stats.Det], col.GLoadWarps[stats.NonDet])
	}
	// The scattered gather must generate more requests per warp than the
	// sequential index load (the paper's central Fig 2 disparity).
	detRPW := col.RequestsPerWarp(stats.Det)
	nonRPW := col.RequestsPerWarp(stats.NonDet)
	if nonRPW <= detRPW {
		t.Errorf("requests/warp: nondet %v <= det %v, want strictly greater", nonRPW, detRPW)
	}
	// And its mean turnaround should be no better than the deterministic one.
	if col.Turnaround[stats.NonDet].MeanTotal() < col.Turnaround[stats.Det].MeanTotal() {
		t.Errorf("nondet turnaround %v < det %v",
			col.Turnaround[stats.NonDet].MeanTotal(), col.Turnaround[stats.Det].MeanTotal())
	}
}

func TestL1OutcomesAccumulate(t *testing.T) {
	m := mem.New()
	const n = 8192
	a := make([]uint32, n)
	aB := m.AllocU32s(a)
	bB := m.AllocU32s(a)
	cB := m.Alloc(4 * n)

	col := stats.New()
	g := MustNew(testConfig(), m, col)
	l := launchOf(t, vecAddSrc, "vecadd", n/256, 256, aB, bB, cB, n)
	if err := g.LaunchKernel(l); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	var total uint64
	for o := 0; o < int(cache.NumOutcomes); o++ {
		total += col.L1Outcomes[stats.Det][o]
	}
	if total == 0 {
		t.Fatalf("no L1 outcomes recorded")
	}
	bd := col.L1CycleBreakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v, want 1", sum)
	}
	// A streaming kernel over fresh data must miss in L1.
	if col.L1Miss[stats.Det] == 0 {
		t.Errorf("no L1 misses for streaming kernel")
	}
	// Unit occupancy recorded for every SM-cycle.
	if col.SMCycles == 0 {
		t.Errorf("no SM cycles recorded")
	}
	idleLDST := col.UnitIdleFraction(isa.UnitLDST)
	idleSP := col.UnitIdleFraction(isa.UnitSP)
	if idleLDST < 0 || idleLDST > 1 || idleSP < 0 || idleSP > 1 {
		t.Errorf("idle fractions out of range: LDST=%v SP=%v", idleLDST, idleSP)
	}
}

func TestCTAPoliciesBothComplete(t *testing.T) {
	for _, pol := range []CTAPolicy{CTARoundRobin, CTAClustered} {
		m := mem.New()
		const n = 2048
		aB := m.AllocU32s(make([]uint32, n))
		bB := m.AllocU32s(make([]uint32, n))
		cB := m.Alloc(4 * n)
		cfg := testConfig()
		cfg.CTAPolicy = pol
		g := MustNew(cfg, m, stats.New())
		l := launchOf(t, vecAddSrc, "vecadd", n/64, 64, aB, bB, cB, n)
		if err := g.LaunchKernel(l); err != nil {
			t.Fatalf("%v policy: %v", pol, err)
		}
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	m := mem.New()
	const n = 65536
	aB := m.AllocU32s(make([]uint32, n))
	bB := m.AllocU32s(make([]uint32, n))
	cB := m.Alloc(4 * n)
	cfg := testConfig()
	cfg.MaxCycles = 10 // absurdly small
	g := MustNew(cfg, m, stats.New())
	l := launchOf(t, vecAddSrc, "vecadd", n/256, 256, aB, bB, cB, n)
	if err := g.LaunchKernel(l); err == nil {
		t.Fatalf("expected MaxCycles error")
	}
}

func TestPartitionInterleaving(t *testing.T) {
	g := MustNew(testConfig(), mem.New(), stats.New())
	b := (*backend)(g)
	seen := map[int]bool{}
	for blk := uint32(0); blk < 128*64; blk += 128 {
		p := b.PartitionOf(0, blk)
		if p < 0 || p >= g.cfg.NumPartitions {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != g.cfg.NumPartitions {
		t.Errorf("only %d partitions used", len(seen))
	}
}
