package gpu

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"critload/internal/emu"
)

// This file is the parallel cycle engine (Config.Parallel): the serial
// loop's per-cycle body restructured into barrier phases over a persistent
// worker pool, so independent components step concurrently *inside* each
// simulated cycle while every artifact stays byte-identical to the serial
// loop. The phase structure mirrors the serial order exactly:
//
//	1. reply network delivery            — serial (mutates SMs); skipped when
//	   the network proves itself quiet (QuietAt)
//	2. memory partitions + DRAM          — PARALLEL (one worker per partition
//	   subset; reply injection staged per source, store releases staged)
//	   then the staged reply injections and releases merge serially
//	3. request network delivery          — serial (mutates partitions)
//	4. SM memory pipelines (StepMem)     — PARALLEL (one SM per worker subset;
//	   request injection staged per source) then the stages merge serially
//	5. SM instruction issue (StepIssue)  — serial, in SM-id order (functional
//	   execution reads and writes the shared simulated memory)
//	6. CTA scheduling, budget, horizon   — serial
//
// On the common path phases 2–4 FUSE into one barrier: when the request
// network reports QuietAt (its delivery scan would be a no-op), partitions
// and SM memory pipelines share a single concurrent phase — legal because
// the two sets never touch each other inside a cycle except through the
// networks, whose injections are staged per source either way. That takes
// the barriers per stepped cycle from three to one.
//
// Determinism rests on ownership: during a concurrent phase every component
// touches only its own state, its own statistics shard, its own request
// pool, and the per-source staging slots of a deferred-mode network. The
// serial merge points (icnt.CommitInjects in source order, drainReleases in
// partition order, mergeShards by commutative summation) reconstruct exactly
// the state the serial loop reaches. Functional execution — the only path
// that can read or write shared simulated memory, including atomics — is
// confined to the serial issue phase, so no memory value ever depends on
// goroutine scheduling.
//
// The adaptive controller (Config.Adaptive) layers engine auto-selection on
// top: each cycle it counts the non-quiet components of a concurrent phase
// and runs the phase inline on the engine goroutine when fewer than the
// threshold are active — a barrier costs more than a handful of quiet-check
// early returns — re-promoting to the pool the moment occupancy rises. A
// launch that can never profit from the pool (one usable core) demotes to
// the serial loop body outright. Every decision reads only pre-phase
// simulated state, never wall-clock or scheduling facts, so collectors stay
// byte-identical at any worker count.

// PhaseStats is the parallel engine's per-launch phase diagnostics: how many
// cycles were actually stepped, how many took the fused single-barrier path,
// and how the adaptive controller split concurrent phases between the pool
// and the engine goroutine. Purely informational — never part of the
// byte-identity contract.
type PhaseStats struct {
	// SteppedCycles counts cycles the phase loop executed (fast-forwarded
	// cycles are in GPU.SkippedCycles instead).
	SteppedCycles int64
	// FusedCycles counts stepped cycles that took the fused single-barrier
	// path (request network quiet, partitions and SMs in one phase).
	FusedCycles int64
	// PooledPhases counts concurrent phases fanned out to the worker pool.
	PooledPhases int64
	// InlinePhases counts concurrent phases the adaptive controller ran
	// inline on the engine goroutine because too few components were active.
	InlinePhases int64
	// Demoted reports that a launch ran on the serial loop body because the
	// adaptive controller saw no core for the pool to use.
	Demoted bool
}

// PhasePanicError is the panic value runPhase rethrows when a phase function
// panics inside a pool worker: the recovered value plus the worker's stack at
// the panic site. Without this containment the panic would kill the worker
// goroutine and the next barrier would wait forever (mirrors jobs.PanicError).
type PhasePanicError struct {
	// Worker is the pool worker index that panicked.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

func (e *PhasePanicError) Error() string {
	return fmt.Sprintf("gpu: parallel phase panicked on worker %d: %v\n%s", e.Worker, e.Value, e.Stack)
}

// stopParticipants is the participant count published by close(); no real
// phase can reach it (participants are capped at the SM count).
const stopParticipants = 1 << 30

// workerPool runs phases over a fixed set of persistent goroutines; workers
// are spawned once per launch and reused every cycle. Phases are announced
// through one atomic command word — (participants << 32) | sequence — and
// completion through an atomic countdown, so a phase costs two atomic writes
// and a handful of atomic reads instead of the 2·workers channel operations
// of the previous handoff design. Workers spin briefly on the command word
// before parking on a condition variable (the futex-style fallback), so an
// engine that issues phases back-to-back never pays a wake-up.
//
// Memory ordering: the engine writes fn, then stores cmd; a worker loads cmd
// (observing the new sequence number), then reads fn — the atomic pair gives
// the happens-before edge into the phase. The worker's pending.Add(-1) and
// the engine's pending.Load()==0 give the edge out of it.
type workerPool struct {
	n    int
	fn   func(worker int) // current phase body; published by the cmd store
	cmd  atomic.Uint64    // (participants << 32) | sequence
	spin int              // spin iterations before parking (0 on one core)

	pending atomic.Int32 // participants yet to finish the current phase
	parked  atomic.Bool  // engine is parked waiting for pending to drain

	mu       sync.Mutex
	cond     *sync.Cond
	sleepers int // workers parked on cond

	panics []*PhasePanicError // one slot per worker, collected after the barrier
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{n: n, panics: make([]*PhasePanicError, n)}
	p.cond = sync.NewCond(&p.mu)
	if runtime.GOMAXPROCS(0) > 1 {
		// Long enough to cover the engine's serial merge segments between
		// phases, short enough that a genuinely idle pool parks within tens
		// of microseconds.
		p.spin = 1 << 15
	}
	for w := 0; w < n; w++ {
		go p.worker(w)
	}
	return p
}

// worker is the persistent loop of one pool goroutine: watch the command
// word, run the published phase when the sequence number advances, spin then
// park while it does not.
func (p *workerPool) worker(w int) {
	last := uint32(0)
	for {
		c := p.cmd.Load()
		if uint32(c) == last {
			for i := 0; i < p.spin; i++ {
				if c = p.cmd.Load(); uint32(c) != last {
					break
				}
			}
			if uint32(c) == last {
				p.mu.Lock()
				for uint32(p.cmd.Load()) == last {
					p.sleepers++
					p.cond.Wait()
					p.sleepers--
				}
				p.mu.Unlock()
				continue
			}
		}
		last = uint32(c)
		k := int(c >> 32)
		if k >= stopParticipants {
			return
		}
		if w < k {
			p.runWorker(w)
		}
	}
}

// runWorker executes the current phase body on one worker, containing panics
// into the per-worker slot and always completing the countdown — a panicking
// phase must still release the barrier so the engine can rethrow it.
func (p *workerPool) runWorker(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[w] = &PhasePanicError{Worker: w, Value: r, Stack: debug.Stack()}
		}
		if p.pending.Add(-1) == 0 && p.parked.Load() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}()
	p.fn(w)
}

// runPhase runs f on workers 0..k-1 and blocks until all of them finish; f
// must partition its work by the worker index it receives, with stride k.
// k is clamped to the pool size; a single-participant phase runs inline on
// the caller (no barrier is cheaper than any barrier). If a worker panicked,
// the first panic (by worker index) is rethrown here as *PhasePanicError.
func (p *workerPool) runPhase(k int, f func(worker int)) {
	if k > p.n {
		k = p.n
	}
	if k <= 1 {
		f(0) // a caller-side panic propagates naturally
		return
	}
	p.fn = f
	p.pending.Store(int32(k))
	seq := uint32(p.cmd.Load()) + 1
	p.cmd.Store(uint64(k)<<32 | uint64(seq))
	p.mu.Lock()
	if p.sleepers > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.waitDone()
	p.fn = nil
	for w := 0; w < k; w++ {
		if pe := p.panics[w]; pe != nil {
			for i := w; i < k; i++ {
				p.panics[i] = nil
			}
			panic(pe)
		}
	}
}

// waitDone spins on the countdown, then parks on the condition variable; the
// last worker to finish wakes a parked engine (and only then — the parked
// flag keeps the uncontended fast path free of locks).
func (p *workerPool) waitDone() {
	for i := 0; i < p.spin; i++ {
		if p.pending.Load() == 0 {
			return
		}
	}
	p.mu.Lock()
	p.parked.Store(true)
	for p.pending.Load() != 0 {
		p.cond.Wait()
	}
	p.parked.Store(false)
	p.mu.Unlock()
}

// close terminates the workers; the pool must not be used afterwards. Safe
// to call with workers parked or spinning — runPhase has already drained any
// in-flight phase.
func (p *workerPool) close() {
	seq := uint32(p.cmd.Load()) + 1
	p.cmd.Store(uint64(stopParticipants)<<32 | uint64(seq))
	p.mu.Lock()
	if p.sleepers > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// workerCount resolves Config.Workers: 0 means GOMAXPROCS, and more workers
// than SMs buys nothing (partitions are fewer still; the per-phase
// participant counts clamp further, e.g. to the partition count).
func (g *GPU) workerCount() int {
	n := g.cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(g.sms) {
		n = len(g.sms)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// defaultAdaptiveThreshold is the active-component count below which a
// concurrent phase runs inline under the adaptive controller: stepping one
// or two live components costs less than any barrier.
const defaultAdaptiveThreshold = 3

// adaptivePolicy resolves Config.Adaptive/AdaptiveThreshold into the
// per-phase threshold (0 = controller off) and whether whole-engine demotion
// is allowed. A negative configured threshold is the test hook: magnitude
// with demotion disabled, so per-phase transitions exercise on any host.
func (g *GPU) adaptivePolicy() (thr int, demoteOK bool) {
	if !g.cfg.Adaptive {
		return 0, false
	}
	thr = g.cfg.AdaptiveThreshold
	switch {
	case thr == 0:
		thr = defaultAdaptiveThreshold
	case thr < 0:
		return -thr, false
	}
	return thr, true
}

// warpInstsTotal returns the device-wide warp-instruction count while shard
// collectors are live: the merged total from earlier launches plus the
// current launch's unmerged shards.
func (g *GPU) warpInstsTotal() uint64 {
	n := g.Col.WarpInsts
	for _, c := range g.smCols {
		n += c.WarpInsts
	}
	return n
}

// mergeShards folds every shard collector into the device collector and
// resets the shards; called at each launch boundary (including error exits),
// so between launches Col holds exactly what a serial run would.
func (g *GPU) mergeShards() {
	for _, c := range g.smCols {
		g.Col.Merge(c)
		c.Reset()
	}
	for _, c := range g.partCols {
		g.Col.Merge(c)
		c.Reset()
	}
}

// launchParallel runs one kernel launch under the phase-barrier parallel
// engine. The caller (LaunchKernel) has already validated the launch and
// installed the kernel context.
func (g *GPU) launchParallel(l *emu.Launch) error {
	workers := g.workerCount()
	thr, demoteOK := g.adaptivePolicy()
	if demoteOK && (workers == 1 || runtime.GOMAXPROCS(0) == 1) {
		// Whole-engine demotion: the pool could never run two phases bodies
		// at once, so every barrier would be pure overhead. The serial loop
		// body composes with the live shard collectors (its budget check
		// sums them), and mergeShards at the boundary leaves Col exactly as
		// a serial run would.
		g.Phases.Demoted = true
		defer g.mergeShards()
		return g.runSerialLoop(l)
	}

	pool := newWorkerPool(workers)
	defer pool.close()

	g.reqNet.SetDeferred(true)
	g.replyNet.SetDeferred(true)
	for _, p := range g.parts {
		p.deferRelease = true
	}
	defer func() {
		g.reqNet.SetDeferred(false)
		g.replyNet.SetDeferred(false)
		for _, p := range g.parts {
			p.drainReleases()
			p.deferRelease = false
		}
		g.mergeShards()
	}()

	// Trace order is completion order across the whole device; with a tracer
	// installed the SM memory phase steps serially so the trace (and the
	// pool-recycling order feeding it) matches the serial loop exactly.
	serialMem := g.traced
	frozen := make([]bool, len(g.sms))

	// Per-phase participant counts, and the phase bodies bound once per
	// launch (they read g.cycle and the frozen slice directly, so the cycle
	// loop allocates no closures).
	kp := workers
	if kp > len(g.parts) {
		kp = len(g.parts)
	}
	ks := workers // workerCount already capped at the SM count
	partPhase := func(w int) {
		now := g.cycle
		for i := w; i < len(g.parts); i += kp {
			g.parts[i].step(now)
		}
	}
	memPhase := func(w int) {
		now := g.cycle
		for i := w; i < len(g.sms); i += ks {
			frozen[i] = g.sms[i].StepMem(now)
		}
	}
	fusedPhase := func(w int) {
		now := g.cycle
		for i := w; i < len(g.parts); i += workers {
			g.parts[i].step(now)
		}
		for i := w; i < len(g.sms); i += workers {
			frozen[i] = g.sms[i].StepMem(now)
		}
	}

	for {
		now := g.cycle
		g.Phases.SteppedCycles++

		// Fusion legality is decided from pre-phase state: nothing before
		// the respective Step calls can enqueue an undeferred packet, so a
		// network quiet at the top of the cycle is still quiet when the
		// serial order would have scanned it.
		replyQuiet := g.replyNet.QuietAt(now)
		reqQuiet := g.reqNet.QuietAt(now)

		// Phase 1 (serial): reply delivery, which mutates SM state; a quiet
		// network's scan is a proven no-op and is elided.
		if !replyQuiet {
			g.replyNet.Step(now)
		}

		if reqQuiet && !serialMem {
			// Fused phases 2–4: request delivery would be a no-op, so the
			// partitions and the SM memory pipelines — which only interact
			// through the networks, and whose injections are staged per
			// source either way — share one concurrent phase and one
			// barrier. The serial merges land in the usual order after it.
			g.Phases.FusedCycles++
			if thr > 0 && g.activeParts(now)+g.activeSMs(now) < thr {
				g.Phases.InlinePhases++
				for _, p := range g.parts {
					p.step(now)
				}
				for i, s := range g.sms {
					frozen[i] = s.StepMem(now)
				}
			} else {
				g.Phases.PooledPhases++
				pool.runPhase(workers, fusedPhase)
			}
			g.replyNet.CommitInjects()
			for _, p := range g.parts {
				p.drainReleases()
			}
			g.reqNet.CommitInjects()
		} else {
			// Phase 2 (parallel): partitions — DRAM, L2 hits, reply staging,
			// request service — each touching only its own state and shard.
			if thr > 0 && g.activeParts(now) < thr {
				g.Phases.InlinePhases++
				for _, p := range g.parts {
					p.step(now)
				}
			} else {
				g.Phases.PooledPhases++
				pool.runPhase(kp, partPhase)
			}
			g.replyNet.CommitInjects()
			for _, p := range g.parts {
				p.drainReleases()
			}

			// Phase 3 (serial): request delivery, which mutates partitions.
			if !reqQuiet {
				g.reqNet.Step(now)
			}

			// Phase 4 (parallel): SM memory pipelines — completions, LD/ST
			// retries, L1 accesses, staged request injection. No functional
			// execution happens here (see SM.StepMem).
			if serialMem {
				for i, s := range g.sms {
					frozen[i] = s.StepMem(now)
				}
			} else if thr > 0 && g.activeSMs(now) < thr {
				g.Phases.InlinePhases++
				for i, s := range g.sms {
					frozen[i] = s.StepMem(now)
				}
			} else {
				g.Phases.PooledPhases++
				pool.runPhase(ks, memPhase)
			}
			g.reqNet.CommitInjects()
		}

		// Phase 5 (serial, SM-id order): instruction issue. Warps execute
		// functionally here — the only reads/writes of shared simulated
		// memory, in exactly the serial loop's order.
		for i, s := range g.sms {
			if frozen[i] {
				continue
			}
			if err := s.StepIssue(now); err != nil {
				return err
			}
		}

		// Phase 6 (serial): the loop tail, identical to the serial engine
		// except that the warp-instruction budget sums the live shards.
		if !g.stopIssue {
			g.scheduleCTAs()
			if g.cfg.MaxWarpInsts > 0 && g.warpInstsTotal() >= g.cfg.MaxWarpInsts {
				g.stopIssue = true
				g.cycle++
				g.Col.GPUCycles = g.cycle
				return nil
			}
		}
		g.cycle++
		g.Col.GPUCycles = g.cycle

		if g.done() {
			return nil
		}
		if g.cfg.MaxCycles > 0 && g.cycle >= g.cfg.MaxCycles {
			return fmt.Errorf("gpu: exceeded %d cycles (possible livelock) in kernel %s",
				g.cfg.MaxCycles, l.Kernel.Name)
		}
		if g.cfg.FastForward {
			if h := g.horizon(g.cycle - 1); h > g.cycle {
				if h == math.MaxInt64 && g.cfg.MaxCycles <= 0 {
					return fmt.Errorf("gpu: no pending events with launch incomplete (livelock) in kernel %s",
						l.Kernel.Name)
				}
				if err := g.skipTo(h, l); err != nil {
					return err
				}
			}
		}
	}
}

// activeParts counts partitions whose step(now) would do real work; the
// adaptive controller's occupancy probe for the partition phase.
func (g *GPU) activeParts(now int64) int {
	n := 0
	for _, p := range g.parts {
		if !p.quietAt(now) {
			n++
		}
	}
	return n
}

// activeSMs counts SMs whose StepMem(now) would do more than advance the
// occupancy counters; the adaptive controller's probe for the SM phase.
func (g *GPU) activeSMs(now int64) int {
	n := 0
	for _, s := range g.sms {
		if !s.MemQuietAt(now) {
			n++
		}
	}
	return n
}
