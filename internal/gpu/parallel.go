package gpu

import (
	"fmt"
	"math"
	"runtime"

	"critload/internal/emu"
)

// This file is the parallel cycle engine (Config.Parallel): the serial
// loop's per-cycle body restructured into barrier phases over a persistent
// worker pool, so independent components step concurrently *inside* each
// simulated cycle while every artifact stays byte-identical to the serial
// loop. The phase structure mirrors the serial order exactly:
//
//	1. reply network delivery            — serial (mutates SMs)
//	2. memory partitions + DRAM          — PARALLEL (one worker per partition
//	   subset; reply injection staged per source, store releases staged)
//	   then the staged reply injections and releases merge serially
//	3. request network delivery          — serial (mutates partitions)
//	4. SM memory pipelines (StepMem)     — PARALLEL (one SM per worker subset;
//	   request injection staged per source) then the stages merge serially
//	5. SM instruction issue (StepIssue)  — serial, in SM-id order (functional
//	   execution reads and writes the shared simulated memory)
//	6. CTA scheduling, budget, horizon   — serial
//
// Determinism rests on ownership: during a concurrent phase every component
// touches only its own state, its own statistics shard, its own request
// pool, and the per-source staging slots of a deferred-mode network. The
// serial merge points (icnt.CommitInjects in source order, drainReleases in
// partition order, mergeShards by commutative summation) reconstruct exactly
// the state the serial loop reaches. Functional execution — the only path
// that can read or write shared simulated memory, including atomics — is
// confined to the serial issue phase, so no memory value ever depends on
// goroutine scheduling.

// workerPool runs phases over a fixed set of persistent goroutines; workers
// are spawned once per launch and reused every cycle (no per-cycle spawning).
// Channel handoffs give the happens-before edges that make each phase a full
// barrier: work written before the phase is visible to workers, and worker
// writes are visible to the engine after the phase.
type workerPool struct {
	n    int
	work chan func(worker int)
	done chan struct{}
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{n: n, work: make(chan func(int)), done: make(chan struct{})}
	for w := 0; w < n; w++ {
		go func(w int) {
			for f := range p.work {
				f(w)
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// runPhase hands f to every worker and blocks until all of them finish; f
// must partition its work by the worker index it receives.
func (p *workerPool) runPhase(f func(worker int)) {
	for i := 0; i < p.n; i++ {
		p.work <- f
	}
	for i := 0; i < p.n; i++ {
		<-p.done
	}
}

// close terminates the workers; the pool must not be used afterwards.
func (p *workerPool) close() { close(p.work) }

// workerCount resolves Config.Workers: 0 means GOMAXPROCS, and more workers
// than SMs buys nothing (partitions are fewer still).
func (g *GPU) workerCount() int {
	n := g.cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(g.sms) {
		n = len(g.sms)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// warpInstsTotal returns the device-wide warp-instruction count while shard
// collectors are live: the merged total from earlier launches plus the
// current launch's unmerged shards.
func (g *GPU) warpInstsTotal() uint64 {
	n := g.Col.WarpInsts
	for _, c := range g.smCols {
		n += c.WarpInsts
	}
	return n
}

// mergeShards folds every shard collector into the device collector and
// resets the shards; called at each launch boundary (including error exits),
// so between launches Col holds exactly what a serial run would.
func (g *GPU) mergeShards() {
	for _, c := range g.smCols {
		g.Col.Merge(c)
		c.Reset()
	}
	for _, c := range g.partCols {
		g.Col.Merge(c)
		c.Reset()
	}
}

// launchParallel runs one kernel launch under the phase-barrier parallel
// engine. The caller (LaunchKernel) has already validated the launch and
// installed the kernel context.
func (g *GPU) launchParallel(l *emu.Launch) error {
	workers := g.workerCount()
	pool := newWorkerPool(workers)
	defer pool.close()

	g.reqNet.SetDeferred(true)
	g.replyNet.SetDeferred(true)
	for _, p := range g.parts {
		p.deferRelease = true
	}
	defer func() {
		g.reqNet.SetDeferred(false)
		g.replyNet.SetDeferred(false)
		for _, p := range g.parts {
			p.drainReleases()
			p.deferRelease = false
		}
		g.mergeShards()
	}()

	// Trace order is completion order across the whole device; with a tracer
	// installed the SM memory phase steps serially so the trace (and the
	// pool-recycling order feeding it) matches the serial loop exactly.
	serialMem := g.traced
	frozen := make([]bool, len(g.sms))

	for {
		// Phase 1 (serial): reply delivery, which mutates SM state.
		g.replyNet.Step(g.cycle)

		// Phase 2 (parallel): partitions — DRAM, L2 hits, reply staging,
		// request service — each touching only its own state and shard.
		pool.runPhase(func(w int) {
			for i := w; i < len(g.parts); i += workers {
				g.parts[i].step(g.cycle)
			}
		})
		g.replyNet.CommitInjects()
		for _, p := range g.parts {
			p.drainReleases()
		}

		// Phase 3 (serial): request delivery, which mutates partition state.
		g.reqNet.Step(g.cycle)

		// Phase 4 (parallel): SM memory pipelines — completions, LD/ST
		// retries, L1 accesses, staged request injection. No functional
		// execution happens here (see SM.StepMem).
		if serialMem {
			for i, s := range g.sms {
				frozen[i] = s.StepMem(g.cycle)
			}
		} else {
			pool.runPhase(func(w int) {
				for i := w; i < len(g.sms); i += workers {
					frozen[i] = g.sms[i].StepMem(g.cycle)
				}
			})
		}
		g.reqNet.CommitInjects()

		// Phase 5 (serial, SM-id order): instruction issue. Warps execute
		// functionally here — the only reads/writes of shared simulated
		// memory, in exactly the serial loop's order.
		for i, s := range g.sms {
			if frozen[i] {
				continue
			}
			if err := s.StepIssue(g.cycle); err != nil {
				return err
			}
		}

		// Phase 6 (serial): the loop tail, identical to the serial engine
		// except that the warp-instruction budget sums the live shards.
		if !g.stopIssue {
			g.scheduleCTAs()
			if g.cfg.MaxWarpInsts > 0 && g.warpInstsTotal() >= g.cfg.MaxWarpInsts {
				g.stopIssue = true
				g.cycle++
				g.Col.GPUCycles = g.cycle
				return nil
			}
		}
		g.cycle++
		g.Col.GPUCycles = g.cycle

		if g.done() {
			return nil
		}
		if g.cfg.MaxCycles > 0 && g.cycle >= g.cfg.MaxCycles {
			return fmt.Errorf("gpu: exceeded %d cycles (possible livelock) in kernel %s",
				g.cfg.MaxCycles, l.Kernel.Name)
		}
		if g.cfg.FastForward {
			if h := g.horizon(g.cycle - 1); h > g.cycle {
				if h == math.MaxInt64 && g.cfg.MaxCycles <= 0 {
					return fmt.Errorf("gpu: no pending events with launch incomplete (livelock) in kernel %s",
						l.Kernel.Name)
				}
				if err := g.skipTo(h, l); err != nil {
					return err
				}
			}
		}
	}
}
