package gpu

import (
	"runtime"
	"sync/atomic"
	"testing"

	"critload/internal/mem"
	"critload/internal/stats"
)

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted negative Workers")
	}
}

func TestWorkerCountResolution(t *testing.T) {
	cfg := testConfig()
	cfg.Parallel = true
	g := MustNew(cfg, mem.New(), stats.New())
	sms := len(g.sms)

	g.cfg.Workers = 0
	want := runtime.GOMAXPROCS(0)
	if want > sms {
		want = sms
	}
	if got := g.workerCount(); got != want {
		t.Errorf("Workers=0: workerCount = %d, want %d (GOMAXPROCS capped at %d SMs)", got, want, sms)
	}
	g.cfg.Workers = 2
	if got := g.workerCount(); got != 2 {
		t.Errorf("Workers=2: workerCount = %d", got)
	}
	g.cfg.Workers = sms + 100
	if got := g.workerCount(); got != sms {
		t.Errorf("Workers=%d: workerCount = %d, want cap %d", sms+100, got, sms)
	}
}

// TestWorkerPoolPhases checks the pool's barrier semantics: every worker runs
// each phase exactly once, phases never overlap, and worker indices partition
// the index space.
func TestWorkerPoolPhases(t *testing.T) {
	const n = 4
	pool := newWorkerPool(n)
	defer pool.close()

	var inFlight, maxInFlight, calls int64
	seen := make([]int64, n)
	for phase := 0; phase < 50; phase++ {
		pool.runPhase(func(w int) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&maxInFlight)
				if cur <= old || atomic.CompareAndSwapInt64(&maxInFlight, old, cur) {
					break
				}
			}
			atomic.AddInt64(&seen[w], 1)
			atomic.AddInt64(&calls, 1)
			atomic.AddInt64(&inFlight, -1)
		})
		// runPhase is a barrier: nothing may still be running here.
		if got := atomic.LoadInt64(&inFlight); got != 0 {
			t.Fatalf("phase %d: %d workers still in flight after runPhase returned", phase, got)
		}
	}
	if calls != 50*n {
		t.Fatalf("calls = %d, want %d", calls, 50*n)
	}
	for w, k := range seen {
		if k != 50 {
			t.Errorf("worker %d ran %d phases, want 50", w, k)
		}
	}
	if maxInFlight > n {
		t.Errorf("max in-flight %d exceeds pool size %d", maxInFlight, n)
	}
}

// TestParallelEngineRunsVecAdd: end-to-end smoke at the gpu layer — the
// parallel engine must produce the same result memory and collector as the
// serial loop on the vecadd kernel (the experiments layer covers the full
// workload matrix).
func TestParallelEngineRunsVecAdd(t *testing.T) {
	const n = 256
	run := func(cfg Config) (*stats.Collector, []uint32, int64) {
		m := mem.New()
		a, b, c := uint32(0x1000), uint32(0x5000), uint32(0x9000)
		for i := uint32(0); i < n; i++ {
			m.Write32(a+4*i, i)
			m.Write32(b+4*i, 2*i)
		}
		col := stats.New()
		g := MustNew(cfg, m, col)
		if err := g.LaunchKernel(launchOf(t, vecAddSrc, "vecadd", n/64, 64, a, b, c, n)); err != nil {
			t.Fatalf("LaunchKernel: %v", err)
		}
		out := make([]uint32, n)
		for i := uint32(0); i < n; i++ {
			out[i] = m.Read32(c + 4*i)
		}
		return col, out, g.Cycle()
	}

	serialCfg := testConfig()
	serialCfg.FastForward = false
	wantCol, wantOut, wantCycles := run(serialCfg)

	parCfg := testConfig()
	parCfg.Parallel = true
	parCfg.Workers = 3
	gotCol, gotOut, gotCycles := run(parCfg)

	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("out[%d] = %d, want %d", i, gotOut[i], wantOut[i])
		}
	}
	if gotCycles != wantCycles {
		t.Errorf("cycles = %d, want %d", gotCycles, wantCycles)
	}
	if gotCol.WarpInsts != wantCol.WarpInsts || gotCol.L1Outcomes != wantCol.L1Outcomes {
		t.Errorf("collector diverges: warpInsts %d/%d", gotCol.WarpInsts, wantCol.WarpInsts)
	}
}
