package gpu

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"critload/internal/mem"
	"critload/internal/stats"
)

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted negative Workers")
	}
}

func TestWorkerCountResolution(t *testing.T) {
	cfg := testConfig()
	cfg.Parallel = true
	g := MustNew(cfg, mem.New(), stats.New())
	sms := len(g.sms)

	g.cfg.Workers = 0
	want := runtime.GOMAXPROCS(0)
	if want > sms {
		want = sms
	}
	if got := g.workerCount(); got != want {
		t.Errorf("Workers=0: workerCount = %d, want %d (GOMAXPROCS capped at %d SMs)", got, want, sms)
	}
	g.cfg.Workers = 2
	if got := g.workerCount(); got != 2 {
		t.Errorf("Workers=2: workerCount = %d", got)
	}
	g.cfg.Workers = sms + 100
	if got := g.workerCount(); got != sms {
		t.Errorf("Workers=%d: workerCount = %d, want cap %d", sms+100, got, sms)
	}
}

// TestWorkerPoolPhases checks the pool's barrier semantics: every worker runs
// each phase exactly once, phases never overlap, and worker indices partition
// the index space.
func TestWorkerPoolPhases(t *testing.T) {
	const n = 4
	pool := newWorkerPool(n)
	defer pool.close()

	var inFlight, maxInFlight, calls int64
	seen := make([]int64, n)
	for phase := 0; phase < 50; phase++ {
		pool.runPhase(n, func(w int) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&maxInFlight)
				if cur <= old || atomic.CompareAndSwapInt64(&maxInFlight, old, cur) {
					break
				}
			}
			atomic.AddInt64(&seen[w], 1)
			atomic.AddInt64(&calls, 1)
			atomic.AddInt64(&inFlight, -1)
		})
		// runPhase is a barrier: nothing may still be running here.
		if got := atomic.LoadInt64(&inFlight); got != 0 {
			t.Fatalf("phase %d: %d workers still in flight after runPhase returned", phase, got)
		}
	}
	if calls != 50*n {
		t.Fatalf("calls = %d, want %d", calls, 50*n)
	}
	for w, k := range seen {
		if k != 50 {
			t.Errorf("worker %d ran %d phases, want 50", w, k)
		}
	}
	if maxInFlight > n {
		t.Errorf("max in-flight %d exceeds pool size %d", maxInFlight, n)
	}
}

// TestWorkerPoolClampsParticipants checks the per-phase participant count:
// a phase over fewer items than workers must only involve the first k
// workers (the old pool spun every worker on empty subsets), and a k beyond
// the pool size must clamp to it.
func TestWorkerPoolClampsParticipants(t *testing.T) {
	const n = 4
	pool := newWorkerPool(n)
	defer pool.close()

	var seen [n]int64
	for phase := 0; phase < 20; phase++ {
		pool.runPhase(2, func(w int) {
			atomic.AddInt64(&seen[w], 1)
		})
	}
	for w := 0; w < 2; w++ {
		if got := atomic.LoadInt64(&seen[w]); got != 20 {
			t.Errorf("participant worker %d ran %d phases, want 20", w, got)
		}
	}
	for w := 2; w < n; w++ {
		if got := atomic.LoadInt64(&seen[w]); got != 0 {
			t.Errorf("excluded worker %d ran %d phases, want 0", w, got)
		}
	}

	// k beyond the pool size clamps; every worker participates exactly once.
	seen = [n]int64{}
	pool.runPhase(n+5, func(w int) {
		atomic.AddInt64(&seen[w], 1)
	})
	for w := 0; w < n; w++ {
		if got := atomic.LoadInt64(&seen[w]); got != 1 {
			t.Errorf("clamped phase: worker %d ran %d times, want 1", w, got)
		}
	}

	// k <= 1 runs inline on the caller.
	var inline int64
	pool.runPhase(1, func(w int) {
		if w != 0 {
			t.Errorf("inline phase got worker index %d", w)
		}
		atomic.AddInt64(&inline, 1)
	})
	if inline != 1 {
		t.Errorf("inline phase ran %d times, want 1", inline)
	}
}

// TestWorkerPoolPanicPropagates is the satellite regression test: a panic
// inside a phase function must not kill the worker and deadlock the next
// barrier — it must surface to the runPhase caller as *PhasePanicError, and
// the pool must stay usable afterwards.
func TestWorkerPoolPanicPropagates(t *testing.T) {
	const n = 4
	pool := newWorkerPool(n)
	defer pool.close()

	caught := func() (pe *PhasePanicError) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			var ok bool
			if pe, ok = r.(*PhasePanicError); !ok {
				t.Fatalf("recovered %T (%v), want *PhasePanicError", r, r)
			}
		}()
		pool.runPhase(n, func(w int) {
			if w == 2 {
				panic("phase boom")
			}
		})
		return nil
	}()
	if caught == nil {
		t.Fatal("worker panic did not propagate out of runPhase")
	}
	if caught.Worker != 2 || caught.Value != "phase boom" {
		t.Errorf("panic = worker %d value %v, want worker 2 value \"phase boom\"", caught.Worker, caught.Value)
	}
	if len(caught.Stack) == 0 {
		t.Error("panic carries no stack")
	}

	// The barrier released and the slot cleared: the pool still works.
	var calls int64
	pool.runPhase(n, func(w int) { atomic.AddInt64(&calls, 1) })
	if calls != n {
		t.Errorf("post-panic phase ran %d workers, want %d", calls, n)
	}
}

// TestAdaptivePolicyResolution pins the Config → controller mapping: off
// unless Adaptive, default threshold 3, explicit thresholds honoured, and
// the negative test hook (magnitude, demotion disabled).
func TestAdaptivePolicyResolution(t *testing.T) {
	cfg := testConfig()
	cfg.Parallel = true
	g := MustNew(cfg, mem.New(), stats.New())

	if thr, _ := g.adaptivePolicy(); thr != 0 {
		t.Errorf("Adaptive off: threshold = %d, want 0", thr)
	}
	g.cfg.Adaptive = true
	if thr, demote := g.adaptivePolicy(); thr != defaultAdaptiveThreshold || !demote {
		t.Errorf("default policy = (%d, %v), want (%d, true)", thr, demote, defaultAdaptiveThreshold)
	}
	g.cfg.AdaptiveThreshold = 5
	if thr, demote := g.adaptivePolicy(); thr != 5 || !demote {
		t.Errorf("explicit policy = (%d, %v), want (5, true)", thr, demote)
	}
	g.cfg.AdaptiveThreshold = -4
	if thr, demote := g.adaptivePolicy(); thr != 4 || demote {
		t.Errorf("hook policy = (%d, %v), want (4, false)", thr, demote)
	}
}

// TestAdaptiveDemotesOnOneWorker: with one worker the pool can never overlap
// phase bodies, so the adaptive engine must run the serial loop body — and
// still match the plain parallel engine's artifacts exactly.
func TestAdaptiveDemotesOnOneWorker(t *testing.T) {
	const n = 256
	run := func(cfg Config) (*stats.Collector, int64, PhaseStats) {
		m := mem.New()
		a, b, c := uint32(0x1000), uint32(0x5000), uint32(0x9000)
		for i := uint32(0); i < n; i++ {
			m.Write32(a+4*i, i)
			m.Write32(b+4*i, 2*i)
		}
		col := stats.New()
		g := MustNew(cfg, m, col)
		if err := g.LaunchKernel(launchOf(t, vecAddSrc, "vecadd", n/64, 64, a, b, c, n)); err != nil {
			t.Fatalf("LaunchKernel: %v", err)
		}
		return col, g.Cycle(), g.Phases
	}

	base := testConfig()
	base.Parallel = true
	base.Workers = 1
	wantCol, wantCycles, _ := run(base)

	ad := base
	ad.Adaptive = true
	gotCol, gotCycles, phases := run(ad)

	if !phases.Demoted {
		t.Error("adaptive engine did not demote with Workers=1")
	}
	if phases.SteppedCycles != 0 || phases.PooledPhases != 0 {
		t.Errorf("demoted launch recorded phase-loop work: %+v", phases)
	}
	if gotCycles != wantCycles {
		t.Errorf("cycles = %d, want %d", gotCycles, wantCycles)
	}
	if gotCol.WarpInsts != wantCol.WarpInsts || gotCol.GPUCycles != wantCol.GPUCycles {
		t.Errorf("collector diverges: warpInsts %d/%d cycles %d/%d",
			gotCol.WarpInsts, wantCol.WarpInsts, gotCol.GPUCycles, wantCol.GPUCycles)
	}
}

// TestAdaptiveTransitionsExercisePool: the negative-threshold hook keeps the
// phase loop live on any host, and a real workload must drive the controller
// through both decisions — some phases pooled (occupancy at or above the
// threshold), some inline (below it) — plus fused cycles on the quiet path.
func TestAdaptiveTransitionsExercisePool(t *testing.T) {
	const n = 256
	m := mem.New()
	a, b, c := uint32(0x1000), uint32(0x5000), uint32(0x9000)
	for i := uint32(0); i < n; i++ {
		m.Write32(a+4*i, i)
		m.Write32(b+4*i, 2*i)
	}
	cfg := testConfig()
	cfg.Parallel = true
	cfg.Workers = 4
	cfg.Adaptive = true
	cfg.AdaptiveThreshold = -4 // exercise transitions even on one core
	g := MustNew(cfg, m, stats.New())
	if err := g.LaunchKernel(launchOf(t, vecAddSrc, "vecadd", n/64, 64, a, b, c, n)); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	p := g.Phases
	if p.Demoted {
		t.Fatal("negative threshold must disable whole-engine demotion")
	}
	if p.SteppedCycles == 0 {
		t.Fatal("phase loop never ran")
	}
	if p.PooledPhases == 0 || p.InlinePhases == 0 {
		t.Errorf("controller never transitioned: pooled %d, inline %d (stepped %d)",
			p.PooledPhases, p.InlinePhases, p.SteppedCycles)
	}
	if p.FusedCycles == 0 {
		t.Errorf("no fused cycles in %d stepped cycles", p.SteppedCycles)
	}
}

// BenchmarkPhaseBarrier isolates the cost of one runPhase round trip — the
// number the tentpole optimisation targets (the old channel-handoff pool
// paid 2·workers channel operations per phase).
func BenchmarkPhaseBarrier(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := newWorkerPool(workers)
			defer pool.close()
			var sink [16]int64
			fn := func(w int) { sink[w]++ }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.runPhase(workers, fn)
			}
		})
	}
}

// TestParallelEngineRunsVecAdd: end-to-end smoke at the gpu layer — the
// parallel engine must produce the same result memory and collector as the
// serial loop on the vecadd kernel (the experiments layer covers the full
// workload matrix).
func TestParallelEngineRunsVecAdd(t *testing.T) {
	const n = 256
	run := func(cfg Config) (*stats.Collector, []uint32, int64) {
		m := mem.New()
		a, b, c := uint32(0x1000), uint32(0x5000), uint32(0x9000)
		for i := uint32(0); i < n; i++ {
			m.Write32(a+4*i, i)
			m.Write32(b+4*i, 2*i)
		}
		col := stats.New()
		g := MustNew(cfg, m, col)
		if err := g.LaunchKernel(launchOf(t, vecAddSrc, "vecadd", n/64, 64, a, b, c, n)); err != nil {
			t.Fatalf("LaunchKernel: %v", err)
		}
		out := make([]uint32, n)
		for i := uint32(0); i < n; i++ {
			out[i] = m.Read32(c + 4*i)
		}
		return col, out, g.Cycle()
	}

	serialCfg := testConfig()
	serialCfg.FastForward = false
	wantCol, wantOut, wantCycles := run(serialCfg)

	parCfg := testConfig()
	parCfg.Parallel = true
	parCfg.Workers = 3
	gotCol, gotOut, gotCycles := run(parCfg)

	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("out[%d] = %d, want %d", i, gotOut[i], wantOut[i])
		}
	}
	if gotCycles != wantCycles {
		t.Errorf("cycles = %d, want %d", gotCycles, wantCycles)
	}
	if gotCol.WarpInsts != wantCol.WarpInsts || gotCol.L1Outcomes != wantCol.L1Outcomes {
		t.Errorf("collector diverges: warpInsts %d/%d", gotCol.WarpInsts, wantCol.WarpInsts)
	}
}
