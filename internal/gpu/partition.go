package gpu

import (
	"critload/internal/cache"
	"critload/internal/dram"
	"critload/internal/icnt"
	"critload/internal/memreq"
	"critload/internal/stats"
)

// partition is one memory partition: an L2 cache slice backed by one DRAM
// channel, fed by the request network and answering on the reply network.
type partition struct {
	id  int
	g   *GPU
	l2  *cache.Cache
	ch  *dram.Controller
	inQ []*memreq.Request // requests delivered by the request network

	// L2 hits completing after the L2 latency.
	hitQ []timedReq
	// Responses waiting to enter the reply network.
	replyQ []*memreq.Request
}

type timedReq struct {
	at  int64
	req *memreq.Request
}

func newPartition(id int, g *GPU) *partition {
	p := &partition{id: id, g: g, l2: cache.MustNew(g.cfg.L2)}
	p.ch = dram.MustNew(g.cfg.DRAM, p.dramDone)
	return p
}

// receive accepts a packet delivered by the request network.
func (p *partition) receive(r *memreq.Request) {
	p.inQ = append(p.inQ, r)
}

// dramDone handles a completed DRAM read: fill the L2 and queue replies for
// every merged request.
func (p *partition) dramDone(r *memreq.Request, now int64) {
	targets := p.l2.Fill(r.Block, now)
	for _, t := range targets {
		t.DoneL2 = now
		if t.Serviced == memreq.LvlNone {
			t.Serviced = memreq.LvlDRAM
		}
		p.replyQ = append(p.replyQ, t)
	}
}

// step advances the partition one cycle.
func (p *partition) step(now int64) {
	p.ch.Step(now)

	// L2 hits whose latency elapsed become replies.
	kept := p.hitQ[:0]
	for _, e := range p.hitQ {
		if e.at > now {
			kept = append(kept, e)
			continue
		}
		e.req.DoneL2 = now
		p.replyQ = append(p.replyQ, e.req)
	}
	p.hitQ = kept

	// Inject one reply per cycle into the reply network.
	if len(p.replyQ) > 0 {
		r := p.replyQ[0]
		if p.g.replyNet.Inject(p.id, r.SM, r, icnt.DataFlits, now) {
			p.replyQ = p.replyQ[1:]
		}
	}

	// Service one incoming request per cycle (head of line; reservation
	// failures leave it in place for retry).
	if len(p.inQ) == 0 {
		return
	}
	r := p.inQ[0]
	if r.Kind == memreq.Store {
		// Write-through: stores go straight to the DRAM channel.
		if p.ch.CanAccept() {
			p.ch.Enqueue(r, now)
			p.inQ = p.inQ[1:]
		}
		return
	}
	inject := func() bool {
		if !p.ch.CanAccept() {
			return false
		}
		p.ch.Enqueue(r, now)
		return true
	}
	outcome := p.l2.Access(r, now, inject)
	if r.Kind == memreq.Load && !r.Prefetch {
		p.g.Col.RecordL2Outcome(stats.CatOf(r.NonDet), outcome, p.id)
	}
	if !outcome.Accepted() {
		return // retry next cycle
	}
	if outcome == cache.Hit {
		r.Serviced = memreq.LvlL2
		p.hitQ = append(p.hitQ, timedReq{at: now + p.g.cfg.L2.HitLatency, req: r})
	}
	p.inQ = p.inQ[1:]
}

// idle reports whether the partition has no in-flight work.
func (p *partition) idle() bool {
	return len(p.inQ) == 0 && len(p.hitQ) == 0 && len(p.replyQ) == 0 &&
		p.ch.Pending() == 0 && p.l2.PendingMisses() == 0
}
