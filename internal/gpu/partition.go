package gpu

import (
	"critload/internal/cache"
	"critload/internal/dram"
	"critload/internal/icnt"
	"critload/internal/memreq"
	"critload/internal/ring"
	"critload/internal/stats"
)

// partition is one memory partition: an L2 cache slice backed by one DRAM
// channel, fed by the request network and answering on the reply network.
// All three internal queues are ring buffers: popping a head must not pin
// the rest of the backing array the way the `q = q[1:]` slice idiom does.
type partition struct {
	id int
	g  *GPU
	// col receives the partition's statistics: the device collector under
	// the serial engines, a private shard under the parallel engine (merged
	// at launch boundaries), so the concurrent partition phase never writes
	// shared state.
	col *stats.Collector
	l2  *cache.Cache
	ch  *dram.Controller
	inQ ring.Buffer[*memreq.Request] // requests delivered by the request network

	// L2 hits completing after the L2 latency; deadlines are monotonic (one
	// serviced access per cycle, constant latency), so the head is the
	// earliest.
	hitQ ring.Buffer[timedReq]
	// Responses waiting to enter the reply network.
	replyQ ring.Buffer[*memreq.Request]

	// Hoisted state for the L2 miss-injection hook: the request and cycle
	// travel through fields and a method value bound once at construction,
	// instead of a fresh closure per serviced access.
	injReq *memreq.Request
	injNow int64
	injFn  func() bool

	// Quiet cache, written only under the fast-forward engine (the naive
	// loop stays a dumb oracle: quiet then stays 0 and never gates anything).
	// It holds a conservative lower bound on the partition's next action,
	// computed after each step; receive invalidates it. A non-empty replyQ
	// pins it to now+1 because the reply network freeing an input slot is an
	// external wake this cache cannot see.
	quiet int64

	// Deferred-release staging for the parallel engine: while partitions
	// step concurrently, a write-through store retiring at the DRAM channel
	// must not touch its originating SM's request pool (another partition
	// could be releasing into the same pool). The release hook stages the
	// request here instead, and the engine drains the list on its serial
	// merge phase. Off (nil hook behaviour, direct Put) under the serial
	// engines.
	deferRelease bool
	released     []*memreq.Request
}

type timedReq struct {
	at  int64
	req *memreq.Request
}

func newPartition(id int, g *GPU, col *stats.Collector) *partition {
	p := &partition{id: id, g: g, col: col, l2: cache.MustNew(g.cfg.L2)}
	p.ch = dram.MustNew(g.cfg.DRAM, p.dramDone)
	// Write-through stores end their life at the DRAM bank; recycle them
	// into the originating SM's request pool there (staged first under the
	// parallel engine).
	p.ch.SetReleaser(p.release)
	p.injFn = p.tryEnqueueDRAM
	return p
}

// release recycles a request whose life ended at this partition's DRAM
// channel. Under the parallel engine the Put is deferred to the serial merge
// phase via drainReleases; the SM pools are single-owner structures and the
// partition phase runs all partitions concurrently.
func (p *partition) release(r *memreq.Request) {
	if p.deferRelease {
		p.released = append(p.released, r)
		return
	}
	p.g.pools[r.SM].Put(r)
}

// drainReleases performs the staged Puts; the engine calls it on the serial
// phase after the concurrent partition phase, in partition order.
func (p *partition) drainReleases() {
	for i, r := range p.released {
		p.g.pools[r.SM].Put(r)
		p.released[i] = nil
	}
	p.released = p.released[:0]
}

// receive accepts a packet delivered by the request network.
func (p *partition) receive(r *memreq.Request) {
	p.inQ.Push(r)
	p.quiet = 0
}

// dramDone handles a completed DRAM read: fill the L2 and queue replies for
// every merged request.
func (p *partition) dramDone(r *memreq.Request, now int64) {
	targets := p.l2.Fill(r.Block, now)
	for _, t := range targets {
		t.DoneL2 = now
		if t.Serviced == memreq.LvlNone {
			t.Serviced = memreq.LvlDRAM
		}
		p.replyQ.Push(t)
	}
}

// tryEnqueueDRAM atomically claims a DRAM queue slot for the request in
// p.injReq; it is the injection hook handed to the L2 on every miss.
func (p *partition) tryEnqueueDRAM() bool {
	if !p.ch.CanAccept() {
		return false
	}
	p.ch.Enqueue(p.injReq, p.injNow)
	return true
}

// step advances the partition one cycle. Under fast-forward a valid quiet
// cache elides the whole body: nothing can complete, retry, or inject before
// p.quiet, so skipping the scans is observably identical to running them —
// the same argument that lets the engine skip whole cycles. The cache is
// refreshed after every real step; receive (the only external input path)
// invalidates it.
func (p *partition) step(now int64) {
	if now < p.quiet {
		return
	}
	p.stepOnce(now)
	if p.g.cfg.FastForward {
		p.quiet = p.quietHorizon(now)
	}
}

// quietAt reports whether step(now) would return without doing anything: a
// valid quiet cache proves no completion, retry, or injection can happen at
// now. The parallel engine's adaptive controller counts quiet partitions to
// decide whether fanning the partition phase out to workers is worth the
// barrier. Only meaningful under fast-forward (p.quiet stays 0 otherwise).
func (p *partition) quietAt(now int64) bool {
	return now < p.quiet
}

func (p *partition) stepOnce(now int64) {
	p.ch.Step(now)

	// L2 hits whose latency elapsed become replies.
	for p.hitQ.Len() > 0 && p.hitQ.Peek().at <= now {
		e := p.hitQ.Pop()
		e.req.DoneL2 = now
		p.replyQ.Push(e.req)
	}

	// Inject one reply per cycle into the reply network.
	if p.replyQ.Len() > 0 {
		r := p.replyQ.Peek()
		if p.g.replyNet.Inject(p.id, r.SM, r, icnt.DataFlits, now) {
			p.replyQ.Pop()
		}
	}

	// Service one incoming request per cycle (head of line; reservation
	// failures leave it in place for retry).
	if p.inQ.Len() == 0 {
		return
	}
	r := p.inQ.Peek()
	if r.Kind == memreq.Store {
		// Write-through: stores go straight to the DRAM channel.
		if p.ch.CanAccept() {
			p.ch.Enqueue(r, now)
			p.inQ.Pop()
		}
		return
	}
	p.injReq, p.injNow = r, now
	outcome := p.l2.Access(r, now, p.injFn)
	if r.Kind == memreq.Load && !r.Prefetch {
		p.col.RecordL2Outcome(stats.CatOf(r.NonDet), outcome, p.id)
	}
	if !outcome.Accepted() {
		return // retry next cycle
	}
	if outcome == cache.Hit {
		r.Serviced = memreq.LvlL2
		p.hitQ.Push(timedReq{at: now + p.g.cfg.L2.HitLatency, req: r})
	}
	p.inQ.Pop()
}

// quietHorizon computes the value cached in p.quiet: a conservative lower
// bound on the partition's next action. It differs from nextEvent in one
// place — a pending reply pins it to now+1 outright, because whether the
// reply network can accept it later is external state the cache would not
// see change. nextEvent may instead lean on the reply network's own horizon
// for that case, since the engine takes the minimum across components.
func (p *partition) quietHorizon(now int64) int64 {
	if p.inQ.Len() > 0 || p.replyQ.Len() > 0 {
		return now + 1
	}
	horizon := p.ch.NextEvent(now)
	if p.hitQ.Len() > 0 {
		if t := p.hitQ.Peek().at; t < horizon {
			horizon = t
		}
	}
	if horizon <= now {
		horizon = now + 1
	}
	return horizon
}

// nextEvent reports the earliest cycle after now at which the partition's
// observable state (or a statistic it records) can change, assuming it was
// just stepped at now and nothing arrives before the reported cycle. A
// non-empty input queue pins the horizon to now+1: every retry of the head
// request mutates the L2 outcome counters.
func (p *partition) nextEvent(now int64) int64 {
	// A valid quiet cache is already a sound answer (it only ever
	// underestimates relative to this scan), so skip the re-scan.
	if p.quiet > now+1 {
		return p.quiet
	}
	if p.inQ.Len() > 0 {
		return now + 1
	}
	horizon := p.ch.NextEvent(now)
	if p.hitQ.Len() > 0 {
		if t := p.hitQ.Peek().at; t < horizon {
			horizon = t
		}
	}
	// A pending reply only matters when the network can take it; when the
	// input buffer is full, the reply network's own horizon covers the slot
	// freeing up.
	if p.replyQ.Len() > 0 && p.g.replyNet.CanInject(p.id) {
		return now + 1
	}
	if horizon <= now {
		horizon = now + 1
	}
	return horizon
}

// idle reports whether the partition has no in-flight work.
func (p *partition) idle() bool {
	return p.inQ.Len() == 0 && p.hitQ.Len() == 0 && p.replyQ.Len() == 0 &&
		p.ch.Pending() == 0 && p.l2.PendingMisses() == 0
}
