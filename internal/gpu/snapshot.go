package gpu

import (
	"fmt"

	"critload/internal/checkpoint"
)

// snapTag marks the device section of a checkpoint payload.
const snapTag = 0x47505530 // "GPU0"

// Arch returns the configuration with every field that provably cannot
// change simulated state cleared: the engine selection (serial, fast-forward
// and parallel engines are byte-identical by the differential-testing
// contract) and the run-length budgets (a checkpoint's validity against a
// budget is checked when it is loaded, not baked into its identity). Two
// configurations with equal Arch() produce identical state at every
// kernel-launch boundary, which is what makes Arch() the right ingredient
// for checkpoint prefix keys.
func (c Config) Arch() Config {
	c.FastForward = false
	c.Parallel = false
	c.Workers = 0
	c.MaxCycles = 0
	c.MaxWarpInsts = 0
	return c
}

// AtBoundary reports whether the device is at a kernel-launch boundary with
// all transient state drained: no live CTAs, both networks empty, every
// partition and SM idle. This holds before the first launch and after every
// LaunchKernel that ran to completion; it does not hold after a launch that
// hard-stopped on the warp-instruction budget (in-flight work is frozen, not
// drained).
func (g *GPU) AtBoundary() bool {
	if g.liveCTAs > 0 || g.reqNet.Pending() > 0 || g.replyNet.Pending() > 0 {
		return false
	}
	for _, p := range g.parts {
		if !p.idle() {
			return false
		}
	}
	for _, s := range g.sms {
		if !s.Idle() {
			return false
		}
	}
	return true
}

// Snapshot serializes the full device state at a kernel-launch boundary. The
// boundary invariant is what makes the payload closed: with every queue
// drained, the device's future behaviour is fully determined by the cycle
// counters, the cache arrays, the DRAM bank and network port horizons, the
// statistics collector, and the memory contents — all captured here. The
// request pools are deliberately absent: memreq.Pool.Get fully zeroes each
// request, so a pool restarting empty is observationally identical.
func (g *GPU) Snapshot() ([]byte, error) {
	if !g.AtBoundary() {
		return nil, fmt.Errorf("gpu: snapshot outside a kernel-launch boundary")
	}
	w := checkpoint.NewWriter()
	w.Tag(snapTag)
	w.Int(len(g.sms))
	w.Int(len(g.parts))
	w.I64(g.cycle)
	w.I64(g.SkippedCycles)
	w.Int(g.pinHint)
	g.Col.Snapshot(w)
	g.Mem.Snapshot(w)
	for _, s := range g.sms {
		s.Snapshot(w)
	}
	for _, p := range g.parts {
		p.l2.Snapshot(w)
		p.ch.Snapshot(w)
		w.I64(p.quiet)
	}
	g.reqNet.Snapshot(w)
	g.replyNet.Snapshot(w)
	return w.Bytes(), nil
}

// Restore loads a snapshot taken from a device with an equal Arch()
// configuration. The receiver must be at a boundary (fresh devices are). On
// error the device may be partially restored and must be discarded; callers
// that need to survive a failed restore re-run cold from a fresh device (see
// the experiments warm-start planner).
//
// Under the parallel engine the shard collectors are empty at every boundary
// (mergeShards folds and resets them), so restoring only the root collector
// is exact for all three engines.
func (g *GPU) Restore(payload []byte) error {
	if !g.AtBoundary() {
		return fmt.Errorf("gpu: restore outside a kernel-launch boundary")
	}
	r := checkpoint.NewReader(payload)
	r.Tag(snapTag)
	nSMs, nParts := r.Int(), r.Int()
	if r.Err() == nil && (nSMs != len(g.sms) || nParts != len(g.parts)) {
		r.Failf("gpu: snapshot is %d SMs × %d partitions, device is %d × %d",
			nSMs, nParts, len(g.sms), len(g.parts))
	}
	if err := r.Err(); err != nil {
		return err
	}
	g.cycle = r.I64()
	g.SkippedCycles = r.I64()
	g.pinHint = r.Int()
	if err := g.Col.Restore(r); err != nil {
		return err
	}
	if err := g.Mem.Restore(r); err != nil {
		return err
	}
	for _, s := range g.sms {
		if err := s.Restore(r); err != nil {
			return err
		}
	}
	for _, p := range g.parts {
		if err := p.l2.Restore(r); err != nil {
			return err
		}
		if err := p.ch.Restore(r); err != nil {
			return err
		}
		p.quiet = r.I64()
	}
	if err := g.reqNet.Restore(r); err != nil {
		return err
	}
	if err := g.replyNet.Restore(r); err != nil {
		return err
	}
	return r.Close()
}
