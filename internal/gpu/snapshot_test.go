package gpu

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"critload/internal/mem"
	"critload/internal/stats"
)

// vecAddDevice runs one vecadd launch on a fresh device and returns the
// device plus the launch ingredients needed to repeat the kernel.
func vecAddDevice(t *testing.T) (*GPU, *mem.Memory, *stats.Collector, []uint32) {
	t.Helper()
	m := mem.New()
	const n = 1024
	a := make([]uint32, n)
	b := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i)
		b[i] = uint32(2 * i)
	}
	aB, bB := m.AllocU32s(a), m.AllocU32s(b)
	cB := m.Alloc(4 * n)
	col := stats.New()
	g := MustNew(testConfig(), m, col)
	l := launchOf(t, vecAddSrc, "vecadd", n/256, 256, aB, bB, cB, n)
	if err := g.LaunchKernel(l); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	return g, m, col, []uint32{aB, bB, cB, n}
}

// TestDeviceSnapshotRoundTripAndResume checks the whole-device contract: a
// snapshot taken after a launch restores into a fresh device byte for byte,
// and resuming with a second launch on the restored device reproduces the
// straight-through run exactly — cycles, collector and memory.
func TestDeviceSnapshotRoundTripAndResume(t *testing.T) {
	g, m, col, params := vecAddDevice(t)
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	m2 := mem.New()
	col2 := stats.New()
	g2 := MustNew(testConfig(), m2, col2)
	if err := g2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	snap2, err := g2.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(snap), len(snap2))
	}

	// Resume: run the same kernel again on both devices.
	aB, bB, cB, n := params[0], params[1], params[2], params[3]
	for _, run := range []struct {
		g *GPU
	}{{g}, {g2}} {
		l := launchOf(t, vecAddSrc, "vecadd", int(n)/256, 256, aB, bB, cB, n)
		if err := run.g.LaunchKernel(l); err != nil {
			t.Fatalf("resume LaunchKernel: %v", err)
		}
	}
	if g.Cycle() != g2.Cycle() {
		t.Errorf("resumed cycle %d, straight-through %d", g2.Cycle(), g.Cycle())
	}
	if !reflect.DeepEqual(col, col2) {
		t.Errorf("resumed collector differs from straight-through")
	}
	for i := uint32(0); i < n; i++ {
		if got, want := m2.Read32(cB+4*i), m.Read32(cB+4*i); got != want {
			t.Fatalf("resumed c[%d] = %d, straight-through %d", i, got, want)
		}
	}
}

// TestArchClearsEngineAndBudgetFields checks the checkpoint-key ingredient:
// two configurations differing only in engine selection or run budgets have
// equal Arch().
func TestArchClearsEngineAndBudgetFields(t *testing.T) {
	base := DefaultConfig()
	varied := DefaultConfig()
	varied.FastForward = true
	varied.Parallel = true
	varied.Workers = 8
	varied.MaxCycles = 123
	varied.MaxWarpInsts = 456
	if base.Arch() != varied.Arch() {
		t.Errorf("Arch() differs across engine/budget fields:\n%+v\n%+v", base.Arch(), varied.Arch())
	}
	archDiff := DefaultConfig()
	archDiff.NumSMs = 7
	if base.Arch() == archDiff.Arch() {
		t.Error("Arch() hides an SM-count difference")
	}
}

// TestRestoreRejections covers the refusal paths: a geometry mismatch and a
// truncated payload.
func TestRestoreRejections(t *testing.T) {
	g, _, _, _ := vecAddDevice(t)
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	cfg := testConfig()
	cfg.NumSMs = 7
	mismatched := MustNew(cfg, mem.New(), stats.New())
	if err := mismatched.Restore(snap); err == nil || !strings.Contains(err.Error(), "SMs") {
		t.Errorf("SM-count mismatch: %v", err)
	}

	dst := MustNew(testConfig(), mem.New(), stats.New())
	if err := dst.Restore(snap[:len(snap)-16]); err == nil {
		t.Error("truncated payload accepted")
	}
}
