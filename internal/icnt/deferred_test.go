package icnt

import (
	"testing"

	"critload/internal/memreq"
)

// TestDeferredInjectMatchesDirect is the deferred-injection contract: staging
// the shared accounting and committing it must leave the network byte-
// equivalent — same occupancy, counters, and delivery schedule — to one whose
// sources injected directly.
func TestDeferredInjectMatchesDirect(t *testing.T) {
	cfg := Config{Latency: 4, InputQueueCap: 4}
	direct, directArr := collectNet(t, 3, 2, cfg)
	deferred, deferredArr := collectNet(t, 3, 2, cfg)
	deferred.SetDeferred(true)

	reqs := []struct{ src, dst int }{{0, 1}, {2, 0}, {0, 0}, {1, 1}}
	for _, x := range reqs {
		r := &memreq.Request{}
		if !direct.Inject(x.src, x.dst, r, ControlFlits, 0) {
			t.Fatalf("direct inject %v failed", x)
		}
		if !deferred.Inject(x.src, x.dst, r, ControlFlits, 0) {
			t.Fatalf("deferred inject %v failed", x)
		}
	}
	// Queues fill immediately in both modes (they are single-owner state);
	// only the shared accounting is staged.
	if got, want := deferred.QueueLen(0), direct.QueueLen(0); got != want {
		t.Fatalf("deferred QueueLen(0) = %d, want %d", got, want)
	}
	if deferred.Pending() != 0 || deferred.Injected != 0 {
		t.Fatalf("deferred mode leaked into shared counters before commit: pending=%d injected=%d",
			deferred.Pending(), deferred.Injected)
	}

	deferred.CommitInjects()
	if deferred.Pending() != direct.Pending() || deferred.Injected != direct.Injected {
		t.Fatalf("after commit: pending=%d/%d injected=%d/%d (deferred/direct)",
			deferred.Pending(), direct.Pending(), deferred.Injected, direct.Injected)
	}

	for cyc := int64(0); cyc < 30; cyc++ {
		direct.Step(cyc)
		deferred.Step(cyc)
	}
	if len(*directArr) != len(reqs) {
		t.Fatalf("direct delivered %d of %d", len(*directArr), len(reqs))
	}
	for i := range *directArr {
		if (*directArr)[i] != (*deferredArr)[i] {
			t.Fatalf("delivery %d at cycle %d (deferred) vs %d (direct)",
				i, (*deferredArr)[i], (*directArr)[i])
		}
	}
	if direct.Delivered != deferred.Delivered || direct.TotalDelay != deferred.TotalDelay {
		t.Fatalf("delivery stats diverge: delivered %d/%d delay %d/%d",
			deferred.Delivered, direct.Delivered, deferred.TotalDelay, direct.TotalDelay)
	}
}

// TestCommitResetsQuietCache: with fast-forward on, a commit must invalidate
// the quiet cache the way a direct injection does, or Step would sleep
// through the newly staged packets.
func TestCommitResetsQuietCache(t *testing.T) {
	n, arrivals := collectNet(t, 2, 2, Config{Latency: 2, InputQueueCap: 4})
	n.SetFastForward(true)
	r := &memreq.Request{}
	if !n.Inject(0, 0, r, ControlFlits, 0) {
		t.Fatal("warmup inject failed")
	}
	for cyc := int64(0); cyc <= 2; cyc++ {
		n.Step(cyc) // delivers at 2 and caches a far-future quietUntil
	}
	n.SetDeferred(true)
	if !n.Inject(1, 1, r, ControlFlits, 3) {
		t.Fatal("deferred inject failed")
	}
	n.CommitInjects()
	for cyc := int64(3); cyc <= 5; cyc++ {
		n.Step(cyc)
	}
	if len(*arrivals) != 2 {
		t.Fatalf("deliveries = %d, want 2 (quiet cache swallowed the committed packet)", len(*arrivals))
	}
	if (*arrivals)[1] != 5 {
		t.Errorf("committed packet arrived at %d, want 5", (*arrivals)[1])
	}
}

// TestSetDeferredOffCommitsOutstanding: leaving deferred mode must settle any
// stages so no injection is ever stranded.
func TestSetDeferredOffCommitsOutstanding(t *testing.T) {
	n, _ := collectNet(t, 2, 1, Config{Latency: 1, InputQueueCap: 4})
	n.SetDeferred(true)
	if !n.Inject(0, 0, &memreq.Request{}, ControlFlits, 0) {
		t.Fatal("inject failed")
	}
	n.SetDeferred(false)
	if n.Pending() != 1 || n.Injected != 1 {
		t.Fatalf("SetDeferred(false) stranded the stage: pending=%d injected=%d",
			n.Pending(), n.Injected)
	}
}
