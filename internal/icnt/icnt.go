// Package icnt models the on-chip interconnection network between the SMs
// and the memory partitions: finite per-source input buffers (whose
// exhaustion is the paper's "reservation fail by interconnection"), a fixed
// traversal latency, flit-serialized transfers, and per-port bandwidth of one
// packet in flight at a time. Two instances are used: the request network
// (SM → partition) and the reply network (partition → SM).
package icnt

import (
	"fmt"
	"math"

	"critload/internal/memreq"
	"critload/internal/ring"
)

// Config sizes one network instance.
type Config struct {
	Latency       int64 // traversal latency in cycles
	InputQueueCap int   // per-source input buffer slots
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Latency < 0 || c.InputQueueCap <= 0 {
		return fmt.Errorf("icnt: bad config %+v", c)
	}
	return nil
}

// ControlFlits is the size of an address-only packet (read request).
const ControlFlits = 1

// DataFlits is the size of a packet carrying one 128-byte block (read reply
// or write request).
const DataFlits = 4

// Packet is one message in flight.
type Packet struct {
	Req     *memreq.Request
	Src     int
	Dst     int
	Flits   int64
	readyAt int64 // earliest delivery cycle (injection + latency)
}

// DeliverFunc receives a packet at its destination. The *Packet points into
// network-owned scratch storage and is valid only for the duration of the
// call; callbacks must copy any fields they need to retain.
type DeliverFunc func(p *Packet, now int64)

// Network is a crossbar-style network with per-source FIFO input buffers.
// Input buffers are ring buffers holding packets by value, so steady-state
// traffic allocates nothing and popping the head never pins the whole
// backing array (the `q = q[1:]` retention the naive representation had).
type Network struct {
	cfg     Config
	numSrc  int
	numDst  int
	queues  []ring.Buffer[Packet]
	srcBusy []int64 // source port transmitting until this cycle
	dstBusy []int64 // destination port receiving until this cycle
	deliver DeliverFunc
	// pending counts queued packets across all sources, so stepping or
	// scanning an empty network is O(1) instead of a walk over every queue.
	pending int
	// Quiet cache, enabled only under the fast-forward engine (the naive
	// loop stays a dumb oracle): after a scan, quietUntil holds the earliest
	// cycle a delivery can happen — no head packet is ready and no port frees
	// before it — so Step returns immediately until then. An injection can
	// change the answer and resets it.
	fastForward bool
	quietUntil  int64
	// scratch carries the packet being delivered; handing callbacks a pointer
	// to this reusable slot (valid only for the duration of the call) keeps
	// delivery allocation-free now that queues store packets by value.
	scratch Packet

	// Deferred-injection mode, used by the parallel cycle engine while its
	// sources run concurrently: Inject pushes into the per-source queue as
	// usual (each source is owned by exactly one component, so the push is
	// race-free) but stages the shared accounting — pending, Injected,
	// quietUntil — in a per-source slot instead of mutating it in place.
	// CommitInjects folds the staged slots in ascending source order on the
	// engine's serial merge phase, leaving the network byte-identical to one
	// whose sources injected serially.
	deferred bool
	staged   []int // per-source injections since the last commit

	// Statistics.
	Injected   uint64
	Delivered  uint64
	TotalDelay int64 // accumulated (deliver - inject - latency) queueing delay
}

// New builds a network delivering packets via the given callback.
func New(numSrc, numDst int, cfg Config, deliver DeliverFunc) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSrc <= 0 || numDst <= 0 {
		return nil, fmt.Errorf("icnt: bad port counts %d×%d", numSrc, numDst)
	}
	if deliver == nil {
		return nil, fmt.Errorf("icnt: nil deliver callback")
	}
	return &Network{
		cfg: cfg, numSrc: numSrc, numDst: numDst,
		queues:  make([]ring.Buffer[Packet], numSrc),
		srcBusy: make([]int64, numSrc),
		dstBusy: make([]int64, numDst),
		deliver: deliver,
	}, nil
}

// MustNew builds a network or panics; for static configurations.
func MustNew(numSrc, numDst int, cfg Config, deliver DeliverFunc) *Network {
	n, err := New(numSrc, numDst, cfg, deliver)
	if err != nil {
		panic(err)
	}
	return n
}

// CanInject reports whether source src has a free input-buffer slot. This is
// the check behind the cache's RsrvFailICNT outcome.
func (n *Network) CanInject(src int) bool {
	return n.queues[src].Len() < n.cfg.InputQueueCap
}

// Inject enqueues a packet; it returns false when the input buffer is full.
func (n *Network) Inject(src, dst int, req *memreq.Request, flits int64, now int64) bool {
	if !n.CanInject(src) {
		return false
	}
	if dst < 0 || dst >= n.numDst {
		panic(fmt.Sprintf("icnt: bad destination %d", dst))
	}
	n.queues[src].Push(Packet{
		Req: req, Src: src, Dst: dst, Flits: flits,
		readyAt: now + n.cfg.Latency,
	})
	if n.deferred {
		n.staged[src]++
		return true
	}
	n.pending++
	n.quietUntil = 0
	n.Injected++
	return true
}

// SetDeferred switches the network into (or out of) deferred-injection mode.
// While deferred, concurrent sources may Inject — each touches only its own
// queue and staging slot — and the shared counters are settled by
// CommitInjects on the caller's serial phase. Leaving deferred mode commits
// any outstanding stages first.
func (n *Network) SetDeferred(on bool) {
	if n.deferred && !on {
		n.CommitInjects()
	}
	n.deferred = on
	if on && n.staged == nil {
		n.staged = make([]int, n.numSrc)
	}
}

// CommitInjects merges the injections staged since the last commit into the
// shared accounting, in ascending source order. It must be called from a
// single goroutine, after every concurrent injection phase has reached its
// barrier.
func (n *Network) CommitInjects() {
	for src := 0; src < len(n.staged); src++ {
		if k := n.staged[src]; k > 0 {
			n.staged[src] = 0
			n.pending += k
			n.Injected += uint64(k)
			n.quietUntil = 0
		}
	}
}

// SetFastForward enables the quiet cache that lets Step elide provably
// fruitless delivery scans; only the fast-forward engine turns it on, so the
// serial differential-testing oracle keeps scanning every cycle.
func (n *Network) SetFastForward(on bool) { n.fastForward = on }

// QuietAt reports whether Step(now) would return without delivering a packet
// or mutating any state: nothing is queued, or a valid quiet cache proves no
// head packet can move at now. This is the parallel engine's fusion-legality
// hook — a quiet network's serial delivery phase is a no-op, so the engine
// may skip it and fuse the concurrent phases on either side. Staged
// (deferred, uncommitted) injections are not covered; callers must commit
// before the next cycle's query, which the engine's serial merge phase does.
func (n *Network) QuietAt(now int64) bool {
	return n.pending == 0 || now < n.quietUntil
}

// Step advances the network one cycle: every source may deliver its head
// packet when its transmit port, the packet's destination port, and the
// traversal latency all allow it. Head-of-line blocking is intentional. The
// rotating arbitration start is derived from the cycle number — not from a
// per-Step counter — so skipping dead cycles cannot shift the round-robin
// phase relative to the serial loop.
func (n *Network) Step(now int64) {
	if n.pending == 0 {
		return
	}
	if now < n.quietUntil {
		return // no head packet ready and no port free before quietUntil
	}
	rr := int(now % int64(n.numSrc))
	for i := 0; i < n.numSrc; i++ {
		src := (rr + i) % n.numSrc
		q := &n.queues[src]
		if q.Len() == 0 {
			continue
		}
		p := q.Peek()
		if p.readyAt > now || n.srcBusy[src] > now || n.dstBusy[p.Dst] > now {
			continue
		}
		q.Pop()
		n.pending--
		n.srcBusy[src] = now + p.Flits
		n.dstBusy[p.Dst] = now + p.Flits
		n.Delivered++
		n.TotalDelay += now - p.readyAt
		n.scratch = p
		n.deliver(&n.scratch, now)
	}
	if n.fastForward {
		n.quietUntil = n.NextEvent(now)
	}
}

// NextEvent reports the earliest cycle after now at which the network can
// deliver a packet, or math.MaxInt64 when nothing is in flight. The contract
// (docs/PERFORMANCE.md) assumes the network was just stepped at now and that
// no new packets are injected before the reported cycle; under those
// conditions nothing observable happens at any cycle in (now, NextEvent).
func (n *Network) NextEvent(now int64) int64 {
	if n.pending == 0 {
		return math.MaxInt64
	}
	// A valid quiet cache is this function's own answer, computed when the
	// network was last scanned; nothing has changed since (injections reset
	// it), so skip the re-scan.
	if n.quietUntil > now+1 {
		return n.quietUntil
	}
	horizon := int64(math.MaxInt64)
	for src := 0; src < n.numSrc; src++ {
		q := &n.queues[src]
		if q.Len() == 0 {
			continue
		}
		p := q.Peek()
		t := p.readyAt
		if b := n.srcBusy[src]; b > t {
			t = b
		}
		if b := n.dstBusy[p.Dst]; b > t {
			t = b
		}
		if t <= now {
			t = now + 1
		}
		if t < horizon {
			horizon = t
		}
	}
	return horizon
}

// Pending returns the total number of queued packets, a quiescence check for
// the simulation main loop and tests.
func (n *Network) Pending() int { return n.pending }

// QueueLen returns the occupancy of one source queue.
func (n *Network) QueueLen(src int) int { return n.queues[src].Len() }
