// Package icnt models the on-chip interconnection network between the SMs
// and the memory partitions: finite per-source input buffers (whose
// exhaustion is the paper's "reservation fail by interconnection"), a fixed
// traversal latency, flit-serialized transfers, and per-port bandwidth of one
// packet in flight at a time. Two instances are used: the request network
// (SM → partition) and the reply network (partition → SM).
package icnt

import (
	"fmt"

	"critload/internal/memreq"
)

// Config sizes one network instance.
type Config struct {
	Latency       int64 // traversal latency in cycles
	InputQueueCap int   // per-source input buffer slots
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Latency < 0 || c.InputQueueCap <= 0 {
		return fmt.Errorf("icnt: bad config %+v", c)
	}
	return nil
}

// ControlFlits is the size of an address-only packet (read request).
const ControlFlits = 1

// DataFlits is the size of a packet carrying one 128-byte block (read reply
// or write request).
const DataFlits = 4

// Packet is one message in flight.
type Packet struct {
	Req     *memreq.Request
	Src     int
	Dst     int
	Flits   int64
	readyAt int64 // earliest delivery cycle (injection + latency)
}

// DeliverFunc receives a packet at its destination.
type DeliverFunc func(p *Packet, now int64)

// Network is a crossbar-style network with per-source FIFO input buffers.
type Network struct {
	cfg     Config
	numSrc  int
	numDst  int
	queues  [][]*Packet
	srcBusy []int64 // source port transmitting until this cycle
	dstBusy []int64 // destination port receiving until this cycle
	rr      int     // round-robin arbitration start
	deliver DeliverFunc

	// Statistics.
	Injected   uint64
	Delivered  uint64
	TotalDelay int64 // accumulated (deliver - inject - latency) queueing delay
}

// New builds a network delivering packets via the given callback.
func New(numSrc, numDst int, cfg Config, deliver DeliverFunc) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSrc <= 0 || numDst <= 0 {
		return nil, fmt.Errorf("icnt: bad port counts %d×%d", numSrc, numDst)
	}
	if deliver == nil {
		return nil, fmt.Errorf("icnt: nil deliver callback")
	}
	return &Network{
		cfg: cfg, numSrc: numSrc, numDst: numDst,
		queues:  make([][]*Packet, numSrc),
		srcBusy: make([]int64, numSrc),
		dstBusy: make([]int64, numDst),
		deliver: deliver,
	}, nil
}

// MustNew builds a network or panics; for static configurations.
func MustNew(numSrc, numDst int, cfg Config, deliver DeliverFunc) *Network {
	n, err := New(numSrc, numDst, cfg, deliver)
	if err != nil {
		panic(err)
	}
	return n
}

// CanInject reports whether source src has a free input-buffer slot. This is
// the check behind the cache's RsrvFailICNT outcome.
func (n *Network) CanInject(src int) bool {
	return len(n.queues[src]) < n.cfg.InputQueueCap
}

// Inject enqueues a packet; it returns false when the input buffer is full.
func (n *Network) Inject(src, dst int, req *memreq.Request, flits int64, now int64) bool {
	if !n.CanInject(src) {
		return false
	}
	if dst < 0 || dst >= n.numDst {
		panic(fmt.Sprintf("icnt: bad destination %d", dst))
	}
	n.queues[src] = append(n.queues[src], &Packet{
		Req: req, Src: src, Dst: dst, Flits: flits,
		readyAt: now + n.cfg.Latency,
	})
	n.Injected++
	return true
}

// Step advances the network one cycle: every source may deliver its head
// packet when its transmit port, the packet's destination port, and the
// traversal latency all allow it. Head-of-line blocking is intentional.
func (n *Network) Step(now int64) {
	for i := 0; i < n.numSrc; i++ {
		src := (n.rr + i) % n.numSrc
		q := n.queues[src]
		if len(q) == 0 {
			continue
		}
		p := q[0]
		if p.readyAt > now || n.srcBusy[src] > now || n.dstBusy[p.Dst] > now {
			continue
		}
		n.queues[src] = q[1:]
		n.srcBusy[src] = now + p.Flits
		n.dstBusy[p.Dst] = now + p.Flits
		n.Delivered++
		n.TotalDelay += now - p.readyAt
		n.deliver(p, now)
	}
	n.rr = (n.rr + 1) % n.numSrc
}

// Pending returns the total number of queued packets, a quiescence check for
// the simulation main loop and tests.
func (n *Network) Pending() int {
	total := 0
	for _, q := range n.queues {
		total += len(q)
	}
	return total
}

// QueueLen returns the occupancy of one source queue.
func (n *Network) QueueLen(src int) int { return len(n.queues[src]) }
