package icnt

import (
	"testing"

	"critload/internal/memreq"
)

func collectNet(t *testing.T, numSrc, numDst int, cfg Config) (*Network, *[]int64) {
	t.Helper()
	var arrivals []int64
	n := MustNew(numSrc, numDst, cfg, func(p *Packet, now int64) {
		arrivals = append(arrivals, now)
	})
	return n, &arrivals
}

func TestLatencyRespected(t *testing.T) {
	n, arrivals := collectNet(t, 2, 2, Config{Latency: 8, InputQueueCap: 4})
	r := &memreq.Request{Block: 0}
	if !n.Inject(0, 1, r, ControlFlits, 0) {
		t.Fatal("inject failed")
	}
	for cyc := int64(0); cyc < 20; cyc++ {
		n.Step(cyc)
	}
	if len(*arrivals) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*arrivals))
	}
	if (*arrivals)[0] != 8 {
		t.Errorf("arrival at %d, want 8", (*arrivals)[0])
	}
}

func TestInputBufferBackpressure(t *testing.T) {
	n, _ := collectNet(t, 1, 1, Config{Latency: 1, InputQueueCap: 2})
	r := &memreq.Request{}
	if !n.Inject(0, 0, r, 1, 0) || !n.Inject(0, 0, r, 1, 0) {
		t.Fatal("first two injections must succeed")
	}
	if n.CanInject(0) {
		t.Errorf("CanInject true with full buffer")
	}
	if n.Inject(0, 0, r, 1, 0) {
		t.Errorf("third injection succeeded on full buffer")
	}
	// Draining restores capacity.
	n.Step(1)
	if !n.CanInject(0) {
		t.Errorf("CanInject false after drain")
	}
}

// TestQuietAt pins the fusion-legality hook: quiet exactly when Step would
// be a no-op — empty network, or a valid quiet cache covering now — and not
// quiet the moment an injection lands or the cache expires.
func TestQuietAt(t *testing.T) {
	n, _ := collectNet(t, 2, 2, Config{Latency: 8, InputQueueCap: 4})
	n.SetFastForward(true)
	if !n.QuietAt(0) {
		t.Error("empty network not quiet")
	}
	r := &memreq.Request{}
	n.Inject(0, 1, r, ControlFlits, 0)
	if n.QuietAt(0) {
		t.Error("quiet right after injection (no cache computed yet)")
	}
	// A scan at 0 delivers nothing (latency 8) and caches quietUntil=8.
	n.Step(0)
	for cyc := int64(1); cyc < 8; cyc++ {
		if !n.QuietAt(cyc) {
			t.Errorf("not quiet at %d inside cached window", cyc)
		}
	}
	if n.QuietAt(8) {
		t.Error("quiet at the cached delivery cycle")
	}
	// A new injection invalidates the cache immediately.
	n.Step(1)
	n.Inject(1, 0, r, ControlFlits, 1)
	if n.QuietAt(2) {
		t.Error("quiet after a cache-invalidating injection")
	}
	// Without fast-forward no cache is ever written: a non-empty network is
	// never quiet, so the serial oracle's scans are all preserved.
	n2, _ := collectNet(t, 2, 2, Config{Latency: 8, InputQueueCap: 4})
	n2.Inject(0, 1, r, ControlFlits, 0)
	n2.Step(0)
	if n2.QuietAt(3) {
		t.Error("quiet without fast-forward cache")
	}
}

func TestFlitSerialization(t *testing.T) {
	// Two 4-flit packets from one source to one destination must be spaced
	// at least 4 cycles apart.
	n, arrivals := collectNet(t, 1, 1, Config{Latency: 0, InputQueueCap: 8})
	r := &memreq.Request{}
	n.Inject(0, 0, r, DataFlits, 0)
	n.Inject(0, 0, r, DataFlits, 0)
	for cyc := int64(0); cyc < 20; cyc++ {
		n.Step(cyc)
	}
	a := *arrivals
	if len(a) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(a))
	}
	if a[1]-a[0] < DataFlits {
		t.Errorf("packets spaced %d cycles, want >= %d", a[1]-a[0], DataFlits)
	}
}

func TestDestinationContention(t *testing.T) {
	// Two sources to one destination: second packet must wait for the
	// destination port.
	n, arrivals := collectNet(t, 2, 1, Config{Latency: 0, InputQueueCap: 8})
	r := &memreq.Request{}
	n.Inject(0, 0, r, 4, 0)
	n.Inject(1, 0, r, 4, 0)
	for cyc := int64(0); cyc < 20; cyc++ {
		n.Step(cyc)
	}
	a := *arrivals
	if len(a) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(a))
	}
	if a[1]-a[0] < 4 {
		t.Errorf("destination accepted two packets %d cycles apart", a[1]-a[0])
	}
}

func TestParallelDisjointPaths(t *testing.T) {
	// Distinct src→dst pairs do not interfere: both deliver at the same cycle.
	n, arrivals := collectNet(t, 2, 2, Config{Latency: 2, InputQueueCap: 8})
	r := &memreq.Request{}
	n.Inject(0, 0, r, 4, 0)
	n.Inject(1, 1, r, 4, 0)
	for cyc := int64(0); cyc <= 2; cyc++ {
		n.Step(cyc)
	}
	a := *arrivals
	if len(a) != 2 || a[0] != 2 || a[1] != 2 {
		t.Errorf("arrivals = %v, want [2 2]", a)
	}
}

func TestFIFOOrderPerSource(t *testing.T) {
	var order []uint64
	n := MustNew(1, 2, Config{Latency: 0, InputQueueCap: 8}, func(p *Packet, now int64) {
		order = append(order, p.Req.ID)
	})
	n.Inject(0, 0, &memreq.Request{ID: 1}, 1, 0)
	n.Inject(0, 1, &memreq.Request{ID: 2}, 1, 0)
	n.Inject(0, 0, &memreq.Request{ID: 3}, 1, 0)
	for cyc := int64(0); cyc < 10; cyc++ {
		n.Step(cyc)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("delivery order = %v, want [1 2 3]", order)
	}
}

func TestPendingAndStats(t *testing.T) {
	n, _ := collectNet(t, 2, 2, Config{Latency: 1, InputQueueCap: 4})
	r := &memreq.Request{}
	n.Inject(0, 0, r, 1, 0)
	n.Inject(1, 1, r, 1, 0)
	if n.Pending() != 2 || n.QueueLen(0) != 1 {
		t.Errorf("Pending = %d, QueueLen(0) = %d", n.Pending(), n.QueueLen(0))
	}
	for cyc := int64(0); cyc < 5; cyc++ {
		n.Step(cyc)
	}
	if n.Pending() != 0 {
		t.Errorf("Pending = %d after drain", n.Pending())
	}
	if n.Injected != 2 || n.Delivered != 2 {
		t.Errorf("stats = %d/%d, want 2/2", n.Injected, n.Delivered)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, 1, Config{Latency: 1, InputQueueCap: 1}, func(*Packet, int64) {}); err == nil {
		t.Errorf("zero sources accepted")
	}
	if _, err := New(1, 1, Config{Latency: -1, InputQueueCap: 1}, func(*Packet, int64) {}); err == nil {
		t.Errorf("negative latency accepted")
	}
	if _, err := New(1, 1, Config{Latency: 1, InputQueueCap: 1}, nil); err == nil {
		t.Errorf("nil deliver accepted")
	}
}
