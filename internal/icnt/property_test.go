package icnt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"critload/internal/memreq"
)

// Property: under random injection patterns, the network conserves packets
// (injected = delivered + pending), never delivers before inject+latency,
// and per-source delivery order is FIFO.
func TestQuickNetworkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Latency:       int64(rng.Intn(16)),
			InputQueueCap: 1 + rng.Intn(8),
		}
		numSrc := 1 + rng.Intn(6)
		numDst := 1 + rng.Intn(6)

		type stamp struct {
			src      int
			id       uint64
			injected int64
		}
		var delivered []stamp
		n := MustNew(numSrc, numDst, cfg, func(p *Packet, now int64) {
			delivered = append(delivered, stamp{src: p.Src, id: p.Req.ID})
		})

		injectTimes := map[uint64]int64{}
		var nextID uint64
		for cyc := int64(0); cyc < 300; cyc++ {
			// Random injections this cycle.
			for tries := rng.Intn(4); tries > 0; tries-- {
				src := rng.Intn(numSrc)
				if !n.CanInject(src) {
					continue
				}
				nextID++
				r := &memreq.Request{ID: nextID}
				if n.Inject(src, rng.Intn(numDst), r, int64(1+rng.Intn(4)), cyc) {
					injectTimes[r.ID] = cyc
				}
			}
			before := len(delivered)
			n.Step(cyc)
			// Latency respected: everything delivered this cycle was
			// injected at least Latency cycles ago.
			for _, d := range delivered[before:] {
				if cyc-injectTimes[d.id] < cfg.Latency {
					return false
				}
			}
		}
		// Drain.
		for cyc := int64(300); cyc < 1000 && n.Pending() > 0; cyc++ {
			n.Step(cyc)
		}
		if n.Pending() != 0 {
			return false
		}
		if uint64(len(delivered)) != n.Delivered || n.Injected != n.Delivered {
			return false
		}
		// FIFO per source.
		lastID := make(map[int]uint64)
		for _, d := range delivered {
			if d.id <= lastID[d.src] {
				return false
			}
			lastID[d.src] = d.id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
