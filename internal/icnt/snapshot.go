package icnt

import "critload/internal/checkpoint"

// snapTag marks one network section of a checkpoint payload.
const snapTag = 0x49434E54 // "ICNT"

// Snapshot serializes the network's persistent state: the per-port busy
// horizons (a flit transfer begun near the end of a launch can keep a port
// busy past the boundary, delaying the next launch's first packets), the
// quiet cache, and the traffic statistics. Packets in flight are pool-owned
// and cannot be serialized, so snapshotting a non-drained network is a
// caller bug.
func (n *Network) Snapshot(w *checkpoint.Writer) {
	if n.pending != 0 {
		panic("icnt: snapshot with packets in flight")
	}
	for _, k := range n.staged {
		if k != 0 {
			panic("icnt: snapshot with uncommitted staged injections")
		}
	}
	w.Tag(snapTag)
	w.Int(n.numSrc)
	w.Int(n.numDst)
	for _, t := range n.srcBusy {
		w.I64(t)
	}
	for _, t := range n.dstBusy {
		w.I64(t)
	}
	w.I64(n.quietUntil)
	w.U64(n.Injected)
	w.U64(n.Delivered)
	w.I64(n.TotalDelay)
}

// Restore loads a snapshot into an identically-sized, drained network.
func (n *Network) Restore(r *checkpoint.Reader) error {
	if n.pending != 0 {
		r.Failf("icnt: restore with packets in flight")
		return r.Err()
	}
	r.Tag(snapTag)
	src, dst := r.Int(), r.Int()
	if r.Err() == nil && (src != n.numSrc || dst != n.numDst) {
		r.Failf("icnt: snapshot is %d×%d ports, network is %d×%d", src, dst, n.numSrc, n.numDst)
	}
	if err := r.Err(); err != nil {
		return err
	}
	for i := range n.srcBusy {
		n.srcBusy[i] = r.I64()
	}
	for i := range n.dstBusy {
		n.dstBusy[i] = r.I64()
	}
	n.quietUntil = r.I64()
	n.Injected = r.U64()
	n.Delivered = r.U64()
	n.TotalDelay = r.I64()
	return r.Err()
}
