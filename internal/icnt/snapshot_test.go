package icnt

import (
	"bytes"
	"strings"
	"testing"

	"critload/internal/checkpoint"
)

func snapNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(4, 6, Config{Latency: 8, InputQueueCap: 4}, func(p *Packet, now int64) {})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func snapBytes(t *testing.T, n *Network) []byte {
	t.Helper()
	w := checkpoint.NewWriter()
	n.Snapshot(w)
	return w.Bytes()
}

// TestSnapshotRoundTrip checks that port busy horizons, the quiet cache and
// the traffic statistics survive a restore into a fresh network byte for
// byte.
func TestSnapshotRoundTrip(t *testing.T) {
	src := snapNet(t)
	src.srcBusy[1] = 33
	src.srcBusy[3] = 7
	src.dstBusy[5] = 91
	src.quietUntil = 120
	src.Injected = 44
	src.Delivered = 44
	src.TotalDelay = 13

	b1 := snapBytes(t, src)
	dst := snapNet(t)
	if err := dst.Restore(checkpoint.NewReader(b1)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b2 := snapBytes(t, dst); !bytes.Equal(b1, b2) {
		t.Fatalf("re-snapshot differs")
	}
	if dst.srcBusy[1] != 33 || dst.dstBusy[5] != 91 || dst.quietUntil != 120 {
		t.Errorf("horizons not restored: src %v dst %v quiet %d", dst.srcBusy, dst.dstBusy, dst.quietUntil)
	}
	if dst.Injected != 44 || dst.Delivered != 44 || dst.TotalDelay != 13 {
		t.Errorf("stats not restored")
	}
}

// TestSnapshotPanicsWithPackets checks the drain invariant.
func TestSnapshotPanicsWithPackets(t *testing.T) {
	n := snapNet(t)
	n.pending = 1
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot of a non-drained network did not panic")
		}
	}()
	n.Snapshot(checkpoint.NewWriter())
}

// TestSnapshotPanicsWithStagedInjections checks the parallel-engine commit
// invariant: uncommitted per-source staging refuses to serialize.
func TestSnapshotPanicsWithStagedInjections(t *testing.T) {
	n := snapNet(t)
	n.staged = make([]int, n.numSrc)
	n.staged[2] = 1
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot with staged injections did not panic")
		}
	}()
	n.Snapshot(checkpoint.NewWriter())
}

// TestRestoreRejections covers the refusal paths: packets in flight on the
// receiver, a port-count mismatch, and truncation.
func TestRestoreRejections(t *testing.T) {
	good := snapBytes(t, snapNet(t))

	busy := snapNet(t)
	busy.pending = 1
	if err := busy.Restore(checkpoint.NewReader(good)); err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Errorf("busy restore: %v", err)
	}

	mismatched, err := New(6, 4, Config{Latency: 8, InputQueueCap: 4}, func(p *Packet, now int64) {})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mismatched.Restore(checkpoint.NewReader(good)); err == nil || !strings.Contains(err.Error(), "ports") {
		t.Errorf("port mismatch: %v", err)
	}

	dst := snapNet(t)
	if err := dst.Restore(checkpoint.NewReader(good[:len(good)-1])); err == nil {
		t.Error("truncated payload accepted")
	}
}
