// Package isa defines the PTX-subset instruction set used by the load
// classifier and the GPU simulator. The subset keeps the address-producing
// instruction classes the IISWC'15 paper keys on — ld.param, special
// registers (thread/CTA ids and dimensions), and the data-load family
// (ld.global / ld.shared / ld.local) — plus enough integer, floating-point
// and control-flow operations to express the fifteen benchmark kernels.
package isa

import (
	"fmt"
	"strings"
)

// Opcode enumerates the operations of the PTX subset.
type Opcode uint8

// Opcode values. Arithmetic opcodes are type-polymorphic: the instruction's
// DType selects integer versus floating-point semantics.
const (
	OpNop Opcode = iota
	OpMov
	OpAdd
	OpSub
	OpMul   // low 32 bits for integers
	OpMulHi // high 32 bits of the 64-bit product
	OpMad   // d = a*b + c (low 32 bits for integers)
	OpDiv
	OpRem
	OpMin
	OpMax
	OpAbs
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	OpSetp // set predicate from comparison
	OpSelp // select by predicate
	OpCvt  // convert between types
	// Special-function-unit operations (transcendentals).
	OpSqrt
	OpRsqrt
	OpRcp
	OpSin
	OpCos
	OpEx2
	OpLg2
	// Memory operations.
	OpLd
	OpSt
	OpAtom
	// Control flow.
	OpBra
	OpBar // bar.sync
	OpExit
	OpRet

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	OpNop: "nop", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpMulHi: "mul.hi", OpMad: "mad", OpDiv: "div", OpRem: "rem",
	OpMin: "min", OpMax: "max", OpAbs: "abs", OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpSetp: "setp", OpSelp: "selp",
	OpCvt: "cvt", OpSqrt: "sqrt", OpRsqrt: "rsqrt", OpRcp: "rcp",
	OpSin: "sin", OpCos: "cos", OpEx2: "ex2", OpLg2: "lg2",
	OpLd: "ld", OpSt: "st", OpAtom: "atom",
	OpBra: "bra", OpBar: "bar.sync", OpExit: "exit", OpRet: "ret",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsSFU reports whether the opcode executes on the special function unit.
func (o Opcode) IsSFU() bool {
	switch o {
	case OpSqrt, OpRsqrt, OpRcp, OpSin, OpCos, OpEx2, OpLg2:
		return true
	}
	return false
}

// IsMemory reports whether the opcode is a memory operation (executes on the
// LD/ST unit).
func (o Opcode) IsMemory() bool {
	return o == OpLd || o == OpSt || o == OpAtom
}

// IsControl reports whether the opcode affects control flow.
func (o Opcode) IsControl() bool {
	return o == OpBra || o == OpExit || o == OpRet
}

// DType is the data type qualifier of an instruction (.u32, .s32, .f32, ...).
type DType uint8

// DType values.
const (
	U32 DType = iota
	S32
	F32
	B32 // untyped 32-bit bits
	Pred
	numDTypes
)

var dtypeNames = [numDTypes]string{U32: "u32", S32: "s32", F32: "f32", B32: "b32", Pred: "pred"}

func (t DType) String() string {
	if int(t) < len(dtypeNames) {
		return dtypeNames[t]
	}
	return fmt.Sprintf("t(%d)", uint8(t))
}

// Float reports whether the type has floating-point semantics.
func (t DType) Float() bool { return t == F32 }

// Signed reports whether the type has signed integer semantics.
func (t DType) Signed() bool { return t == S32 }

// MemSpace is the state space of a memory operation.
type MemSpace uint8

// Memory spaces. SpaceNone marks non-memory instructions.
const (
	SpaceNone MemSpace = iota
	SpaceGlobal
	SpaceShared
	SpaceLocal
	SpaceConst
	SpaceParam
	SpaceTex
	numSpaces
)

var spaceNames = [numSpaces]string{
	SpaceNone: "", SpaceGlobal: "global", SpaceShared: "shared",
	SpaceLocal: "local", SpaceConst: "const", SpaceParam: "param",
	SpaceTex: "tex",
}

func (s MemSpace) String() string {
	if int(s) < len(spaceNames) {
		return spaceNames[s]
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// IsDataLoadSpace reports whether a load from this space taints dataflow as
// non-deterministic per the paper's classification rule (ld.global, ld.local,
// ld.shared, ld.tex make the consumer non-deterministic; ld.param and
// ld.const do not).
func (s MemSpace) IsDataLoadSpace() bool {
	switch s {
	case SpaceGlobal, SpaceShared, SpaceLocal, SpaceTex:
		return true
	}
	return false
}

// CmpOp is the comparison operator of a setp instruction.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	numCmps
)

var cmpNames = [numCmps]string{CmpEQ: "eq", CmpNE: "ne", CmpLT: "lt", CmpLE: "le", CmpGT: "gt", CmpGE: "ge"}

func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// AtomOp is the operation of an atomic instruction.
type AtomOp uint8

// Atomic operations.
const (
	AtomAdd AtomOp = iota
	AtomMin
	AtomMax
	AtomExch
	AtomCAS
	AtomOr
	AtomAnd
	numAtoms
)

var atomNames = [numAtoms]string{AtomAdd: "add", AtomMin: "min", AtomMax: "max", AtomExch: "exch", AtomCAS: "cas", AtomOr: "or", AtomAnd: "and"}

func (a AtomOp) String() string {
	if int(a) < len(atomNames) {
		return atomNames[a]
	}
	return fmt.Sprintf("atom(%d)", uint8(a))
}

// SpecialReg identifies a read-only special register. All special registers
// are parameterized values in the paper's sense: they are fixed when a CTA is
// scheduled and never depend on loaded data.
type SpecialReg uint8

// Special registers.
const (
	SrTidX SpecialReg = iota
	SrTidY
	SrTidZ
	SrNTidX
	SrNTidY
	SrNTidZ
	SrCtaIdX
	SrCtaIdY
	SrCtaIdZ
	SrNCtaIdX
	SrNCtaIdY
	SrNCtaIdZ
	SrLaneId
	SrWarpId
	numSRegs
)

var sregNames = [numSRegs]string{
	SrTidX: "%tid.x", SrTidY: "%tid.y", SrTidZ: "%tid.z",
	SrNTidX: "%ntid.x", SrNTidY: "%ntid.y", SrNTidZ: "%ntid.z",
	SrCtaIdX: "%ctaid.x", SrCtaIdY: "%ctaid.y", SrCtaIdZ: "%ctaid.z",
	SrNCtaIdX: "%nctaid.x", SrNCtaIdY: "%nctaid.y", SrNCtaIdZ: "%nctaid.z",
	SrLaneId: "%laneid", SrWarpId: "%warpid",
}

func (r SpecialReg) String() string {
	if int(r) < len(sregNames) {
		return sregNames[r]
	}
	return fmt.Sprintf("%%sr(%d)", uint8(r))
}

// SpecialRegByName resolves a special-register name such as "%tid.x".
func SpecialRegByName(name string) (SpecialReg, bool) {
	for i, n := range sregNames {
		if n == name {
			return SpecialReg(i), true
		}
	}
	return 0, false
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	OpdNone  OperandKind = iota
	OpdReg               // general-purpose 32-bit register %rN
	OpdPred              // predicate register %pN
	OpdImm               // integer immediate
	OpdFImm              // floating-point immediate
	OpdSReg              // special register
	OpdMem               // memory operand [%rN + off]; Reg < 0 means absolute
	OpdParam             // parameter reference [name + off] (ld.param only)
)

// Operand is a single instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   int        // register index for OpdReg/OpdPred, base register for OpdMem (-1 = none)
	Imm   int64      // immediate value, or byte offset for OpdMem/OpdParam
	FImm  float64    // floating immediate for OpdFImm
	SReg  SpecialReg // for OpdSReg
	Param string     // parameter name for OpdParam
}

// Reg returns a register operand.
func Reg(i int) Operand { return Operand{Kind: OpdReg, Reg: i} }

// PredReg returns a predicate-register operand.
func PredReg(i int) Operand { return Operand{Kind: OpdPred, Reg: i} }

// Imm returns an integer immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OpdImm, Imm: v} }

// FImm returns a floating-point immediate operand.
func FImm(v float64) Operand { return Operand{Kind: OpdFImm, FImm: v} }

// SReg returns a special-register operand.
func SReg(r SpecialReg) Operand { return Operand{Kind: OpdSReg, SReg: r} }

// Mem returns a register-plus-offset memory operand.
func Mem(baseReg int, off int64) Operand {
	return Operand{Kind: OpdMem, Reg: baseReg, Imm: off}
}

// Param returns a parameter-space memory operand.
func Param(name string, off int64) Operand {
	return Operand{Kind: OpdParam, Reg: -1, Imm: off, Param: name}
}

func (o Operand) String() string {
	switch o.Kind {
	case OpdNone:
		return "_"
	case OpdReg:
		return fmt.Sprintf("%%r%d", o.Reg)
	case OpdPred:
		return fmt.Sprintf("%%p%d", o.Reg)
	case OpdImm:
		return fmt.Sprintf("%d", o.Imm)
	case OpdFImm:
		return fmt.Sprintf("%g", o.FImm)
	case OpdSReg:
		return o.SReg.String()
	case OpdMem:
		if o.Reg < 0 {
			return fmt.Sprintf("[%d]", o.Imm)
		}
		if o.Imm != 0 {
			return fmt.Sprintf("[%%r%d+%d]", o.Reg, o.Imm)
		}
		return fmt.Sprintf("[%%r%d]", o.Reg)
	case OpdParam:
		if o.Imm != 0 {
			return fmt.Sprintf("[%s+%d]", o.Param, o.Imm)
		}
		return fmt.Sprintf("[%s]", o.Param)
	}
	return "?"
}

// PredGuard is the optional @%p / @!%p guard on an instruction.
type PredGuard struct {
	Reg    int // predicate register index; <0 means no guard
	Negate bool
}

// NoGuard is the absent predicate guard.
var NoGuard = PredGuard{Reg: -1}

// Active reports whether a guard is present.
func (g PredGuard) Active() bool { return g.Reg >= 0 }

func (g PredGuard) String() string {
	if !g.Active() {
		return ""
	}
	if g.Negate {
		return fmt.Sprintf("@!%%p%d ", g.Reg)
	}
	return fmt.Sprintf("@%%p%d ", g.Reg)
}

// InstBytes is the architectural size of one instruction; PCs advance by
// this amount so per-PC statistics print as realistic byte addresses.
const InstBytes = 8

// Instruction is a single decoded PTX-subset instruction.
type Instruction struct {
	Index   int    // position within the kernel body
	PC      uint32 // Index * InstBytes
	Op      Opcode
	Type    DType
	SrcType DType    // cvt source type
	Space   MemSpace // ld/st/atom state space
	Cmp     CmpOp    // setp comparison
	Atom    AtomOp   // atom operation
	Guard   PredGuard
	Dst     Operand
	Dst2    Operand // second destination (atom with return not used; reserved)
	Srcs    [3]Operand
	NSrc    int
	Label   string // unresolved branch target
	Targ    int    // resolved branch target instruction index
}

// IsGlobalLoad reports whether the instruction is a load from global memory —
// the class of instructions the paper's study restricts its classification to.
func (in *Instruction) IsGlobalLoad() bool {
	return in.Op == OpLd && in.Space == SpaceGlobal
}

// IsSharedLoad reports whether the instruction is a load from shared memory.
func (in *Instruction) IsSharedLoad() bool {
	return in.Op == OpLd && in.Space == SpaceShared
}

// IsParamLoad reports whether the instruction is an ld.param.
func (in *Instruction) IsParamLoad() bool {
	return in.Op == OpLd && in.Space == SpaceParam
}

// DefReg returns the general register defined by the instruction, or -1.
func (in *Instruction) DefReg() int {
	if in.Op == OpSt || in.Op == OpBra || in.Op == OpBar || in.Op == OpExit || in.Op == OpRet || in.Op == OpNop {
		return -1
	}
	if in.Op == OpSetp {
		return -1 // defines a predicate, not a general register
	}
	if in.Dst.Kind == OpdReg {
		return in.Dst.Reg
	}
	return -1
}

// DefPred returns the predicate register defined, or -1.
func (in *Instruction) DefPred() int {
	if in.Op == OpSetp && in.Dst.Kind == OpdPred {
		return in.Dst.Reg
	}
	return -1
}

// SourceRegs appends the general-purpose source register indices of the
// instruction to dst and returns it. Memory operands contribute their base
// register; stores contribute the stored value register.
func (in *Instruction) SourceRegs(dst []int) []int {
	for i := 0; i < in.NSrc; i++ {
		s := in.Srcs[i]
		switch s.Kind {
		case OpdReg:
			dst = append(dst, s.Reg)
		case OpdMem:
			if s.Reg >= 0 {
				dst = append(dst, s.Reg)
			}
		}
	}
	return dst
}

// AddrReg returns the base register of the instruction's memory operand and
// true, if the instruction is a memory operation with a register-based
// address.
func (in *Instruction) AddrReg() (int, bool) {
	if !in.Op.IsMemory() {
		return -1, false
	}
	var m Operand
	if in.Op == OpLd || in.Op == OpAtom {
		m = in.Srcs[0]
	} else { // store: [addr], value
		m = in.Srcs[0]
	}
	if m.Kind == OpdMem && m.Reg >= 0 {
		return m.Reg, true
	}
	return -1, false
}

// String disassembles the instruction.
func (in *Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Guard.String())
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpLd, OpSt, OpAtom:
		b.WriteString(".")
		b.WriteString(in.Space.String())
		if in.Op == OpAtom {
			b.WriteString(".")
			b.WriteString(in.Atom.String())
		}
		b.WriteString(".")
		b.WriteString(in.Type.String())
	case OpSetp:
		b.WriteString(".")
		b.WriteString(in.Cmp.String())
		b.WriteString(".")
		b.WriteString(in.Type.String())
	case OpCvt:
		b.WriteString(".")
		b.WriteString(in.Type.String())
		b.WriteString(".")
		b.WriteString(in.SrcType.String())
	case OpBra, OpBar, OpExit, OpRet, OpNop:
		// no type suffix
	default:
		b.WriteString(".")
		b.WriteString(in.Type.String())
	}
	first := true
	writeOpd := func(o Operand) {
		if o.Kind == OpdNone {
			return
		}
		if first {
			b.WriteString(" ")
			first = false
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
	writeOpd(in.Dst)
	for i := 0; i < in.NSrc; i++ {
		writeOpd(in.Srcs[i])
	}
	if in.Op == OpBra {
		if first {
			b.WriteString(" ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(in.Label)
	}
	return b.String()
}

// FuncUnit identifies the execution unit an instruction dispatches to.
type FuncUnit uint8

// Function units within an SM.
const (
	UnitSP FuncUnit = iota
	UnitSFU
	UnitLDST
	NumFuncUnits
)

var unitNames = [NumFuncUnits]string{UnitSP: "SP", UnitSFU: "SFU", UnitLDST: "LD/ST"}

func (u FuncUnit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Unit returns the function unit the instruction executes on.
func (in *Instruction) Unit() FuncUnit {
	switch {
	case in.Op.IsMemory():
		return UnitLDST
	case in.Op.IsSFU():
		return UnitSFU
	case in.Op == OpDiv || in.Op == OpRem:
		if in.Type.Float() {
			return UnitSFU
		}
		return UnitSP
	default:
		return UnitSP
	}
}
