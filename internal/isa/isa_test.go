package isa

import "testing"

func TestOpcodeProperties(t *testing.T) {
	sfu := []Opcode{OpSqrt, OpRsqrt, OpRcp, OpSin, OpCos, OpEx2, OpLg2}
	for _, o := range sfu {
		if !o.IsSFU() {
			t.Errorf("%v not SFU", o)
		}
	}
	for _, o := range []Opcode{OpAdd, OpMul, OpLd, OpBra} {
		if o.IsSFU() {
			t.Errorf("%v wrongly SFU", o)
		}
	}
	for _, o := range []Opcode{OpLd, OpSt, OpAtom} {
		if !o.IsMemory() {
			t.Errorf("%v not memory", o)
		}
	}
	for _, o := range []Opcode{OpBra, OpExit, OpRet} {
		if !o.IsControl() {
			t.Errorf("%v not control", o)
		}
	}
}

func TestDataLoadSpaces(t *testing.T) {
	taint := []MemSpace{SpaceGlobal, SpaceShared, SpaceLocal, SpaceTex}
	for _, s := range taint {
		if !s.IsDataLoadSpace() {
			t.Errorf("%v should taint", s)
		}
	}
	for _, s := range []MemSpace{SpaceParam, SpaceConst, SpaceNone} {
		if s.IsDataLoadSpace() {
			t.Errorf("%v should not taint", s)
		}
	}
}

func TestSpecialRegByName(t *testing.T) {
	for i := SpecialReg(0); i < numSRegs; i++ {
		got, ok := SpecialRegByName(i.String())
		if !ok || got != i {
			t.Errorf("round-trip failed for %v", i)
		}
	}
	if _, ok := SpecialRegByName("%bogus"); ok {
		t.Errorf("bogus name resolved")
	}
}

func TestInstructionAccessors(t *testing.T) {
	ld := &Instruction{Op: OpLd, Space: SpaceGlobal, Dst: Reg(3), Guard: NoGuard}
	ld.Srcs[0] = Mem(5, 8)
	ld.NSrc = 1
	if !ld.IsGlobalLoad() || ld.IsSharedLoad() || ld.IsParamLoad() {
		t.Errorf("load kind predicates wrong")
	}
	if ld.DefReg() != 3 {
		t.Errorf("DefReg = %d", ld.DefReg())
	}
	if r, ok := ld.AddrReg(); !ok || r != 5 {
		t.Errorf("AddrReg = %d,%v", r, ok)
	}
	var buf []int
	srcs := ld.SourceRegs(buf)
	if len(srcs) != 1 || srcs[0] != 5 {
		t.Errorf("SourceRegs = %v", srcs)
	}

	st := &Instruction{Op: OpSt, Space: SpaceGlobal, Guard: NoGuard}
	st.Srcs[0] = Mem(1, 0)
	st.Srcs[1] = Reg(2)
	st.NSrc = 2
	if st.DefReg() != -1 {
		t.Errorf("store DefReg = %d", st.DefReg())
	}
	srcs = st.SourceRegs(nil)
	if len(srcs) != 2 {
		t.Errorf("store SourceRegs = %v", srcs)
	}

	setp := &Instruction{Op: OpSetp, Dst: PredReg(1), Guard: NoGuard}
	if setp.DefReg() != -1 || setp.DefPred() != 1 {
		t.Errorf("setp defs = %d/%d", setp.DefReg(), setp.DefPred())
	}
}

func TestUnitMapping(t *testing.T) {
	cases := []struct {
		in   Instruction
		want FuncUnit
	}{
		{Instruction{Op: OpAdd, Type: U32}, UnitSP},
		{Instruction{Op: OpSin, Type: F32}, UnitSFU},
		{Instruction{Op: OpDiv, Type: F32}, UnitSFU},
		{Instruction{Op: OpDiv, Type: U32}, UnitSP},
		{Instruction{Op: OpLd, Space: SpaceGlobal}, UnitLDST},
		{Instruction{Op: OpAtom, Space: SpaceGlobal}, UnitLDST},
	}
	for _, c := range cases {
		if got := c.in.Unit(); got != c.want {
			t.Errorf("%v unit = %v, want %v", c.in.Op, got, c.want)
		}
	}
}

func TestGuardString(t *testing.T) {
	g := PredGuard{Reg: 2}
	if g.String() != "@%p2 " {
		t.Errorf("guard = %q", g.String())
	}
	g.Negate = true
	if g.String() != "@!%p2 " {
		t.Errorf("negated guard = %q", g.String())
	}
	if NoGuard.String() != "" || NoGuard.Active() {
		t.Errorf("NoGuard wrong")
	}
}

func TestDisassemblyFormats(t *testing.T) {
	in := &Instruction{Op: OpMad, Type: F32, Dst: Reg(0), Guard: NoGuard}
	in.Srcs[0], in.Srcs[1], in.Srcs[2] = Reg(1), Reg(2), FImm(1.5)
	in.NSrc = 3
	if got := in.String(); got != "mad.f32 %r0, %r1, %r2, 1.5" {
		t.Errorf("disasm = %q", got)
	}
	cvt := &Instruction{Op: OpCvt, Type: F32, SrcType: U32, Dst: Reg(0), Guard: NoGuard}
	cvt.Srcs[0] = Reg(1)
	cvt.NSrc = 1
	if got := cvt.String(); got != "cvt.f32.u32 %r0, %r1" {
		t.Errorf("cvt disasm = %q", got)
	}
	atom := &Instruction{Op: OpAtom, Space: SpaceGlobal, Atom: AtomMin, Type: U32, Dst: Reg(0), Guard: NoGuard}
	atom.Srcs[0], atom.Srcs[1] = Mem(1, 0), Reg(2)
	atom.NSrc = 2
	if got := atom.String(); got != "atom.global.min.u32 %r0, [%r1], %r2" {
		t.Errorf("atom disasm = %q", got)
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{Reg(7), "%r7"},
		{PredReg(1), "%p1"},
		{Imm(-4), "-4"},
		{FImm(0.5), "0.5"},
		{SReg(SrTidX), "%tid.x"},
		{Mem(3, 8), "[%r3+8]"},
		{Mem(3, 0), "[%r3]"},
		{Mem(-1, 4096), "[4096]"},
		{Param("foo", 4), "[foo+4]"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("operand %+v = %q, want %q", c.o, got, c.want)
		}
	}
}
