package jobs

import (
	"errors"
	"fmt"
)

// MaxBatchItems bounds one batch request. The limit exists for the same
// reason maxRequestBytes does at the HTTP layer: a batch is a latency
// amortization, not a bulk-import channel, and a bounded batch keeps one
// request's worth of work proportionate to one scheduling decision.
const MaxBatchItems = 256

// Batch validation errors.
var (
	// ErrBatchEmpty rejects a batch with no items.
	ErrBatchEmpty = errors.New("jobs: batch has no items")
	// ErrBatchTooLarge rejects a batch beyond MaxBatchItems.
	ErrBatchTooLarge = fmt.Errorf("jobs: batch exceeds %d items", MaxBatchItems)
)

// ValidateBatchSize checks a batch's item count against the shared bounds.
// Both the server's batch handlers and pkg/client call it, so an oversized
// batch is rejected before it ever crosses the wire.
func ValidateBatchSize(n int) error {
	switch {
	case n == 0:
		return ErrBatchEmpty
	case n > MaxBatchItems:
		return ErrBatchTooLarge
	}
	return nil
}

// ValidateBatchIDs checks client-supplied item identifiers: IDs are
// optional (responses preserve request order, so position suffices), but a
// non-empty ID must be unique within the batch — duplicate IDs would make
// per-item results ambiguous to correlate.
func ValidateBatchIDs(ids []string) error {
	seen := make(map[string]struct{}, len(ids))
	for i, id := range ids {
		if id == "" {
			continue
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("jobs: duplicate batch item id %q (item %d)", id, i)
		}
		seen[id] = struct{}{}
	}
	return nil
}
