package jobs

import (
	"errors"
	"testing"
)

func TestValidateBatchSize(t *testing.T) {
	if err := ValidateBatchSize(0); !errors.Is(err, ErrBatchEmpty) {
		t.Errorf("ValidateBatchSize(0) = %v, want ErrBatchEmpty", err)
	}
	if err := ValidateBatchSize(1); err != nil {
		t.Errorf("ValidateBatchSize(1) = %v, want nil", err)
	}
	if err := ValidateBatchSize(MaxBatchItems); err != nil {
		t.Errorf("ValidateBatchSize(max) = %v, want nil", err)
	}
	if err := ValidateBatchSize(MaxBatchItems + 1); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("ValidateBatchSize(max+1) = %v, want ErrBatchTooLarge", err)
	}
}

func TestValidateBatchIDs(t *testing.T) {
	if err := ValidateBatchIDs([]string{"a", "b", ""}); err != nil {
		t.Errorf("unique ids = %v, want nil", err)
	}
	// Empty IDs may repeat: they mean "correlate by position".
	if err := ValidateBatchIDs([]string{"", "", ""}); err != nil {
		t.Errorf("empty ids = %v, want nil", err)
	}
	if err := ValidateBatchIDs([]string{"a", "b", "a"}); err == nil {
		t.Error("duplicate ids accepted, want error")
	}
}
