package jobs

import (
	"container/list"
	"sync"
)

// resultCache is a content-addressed LRU cache mapping a Spec's Key to the
// completed result of that simulation. Repeated sweeps over the same
// (workload, size, seed, budget, GPU config) tuples hit the cache instead of
// re-simulating.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
}

type cacheEntry struct {
	key Key
	val any
}

// newResultCache builds a cache holding up to capacity entries; capacity <= 0
// disables caching entirely (every lookup misses, every insert is dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: map[Key]*list.Element{}}
}

// get returns the cached result and marks it most recently used.
func (c *resultCache) get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// add inserts or refreshes a result, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) add(k Key, v any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
