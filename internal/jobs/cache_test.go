package jobs

import "testing"

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestResultCacheLRUEviction(t *testing.T) {
	tests := []struct {
		name    string
		cap     int
		ops     func(c *resultCache)
		present []byte
		absent  []byte
	}{
		{
			name: "evicts oldest beyond capacity",
			cap:  2,
			ops: func(c *resultCache) {
				c.add(key(1), 1)
				c.add(key(2), 2)
				c.add(key(3), 3)
			},
			present: []byte{2, 3},
			absent:  []byte{1},
		},
		{
			name: "get refreshes recency",
			cap:  2,
			ops: func(c *resultCache) {
				c.add(key(1), 1)
				c.add(key(2), 2)
				c.get(key(1)) // 2 is now the least recently used
				c.add(key(3), 3)
			},
			present: []byte{1, 3},
			absent:  []byte{2},
		},
		{
			name: "re-adding refreshes recency without growing",
			cap:  2,
			ops: func(c *resultCache) {
				c.add(key(1), 1)
				c.add(key(2), 2)
				c.add(key(1), 10)
				c.add(key(3), 3)
			},
			present: []byte{1, 3},
			absent:  []byte{2},
		},
		{
			name: "zero capacity disables caching",
			cap:  0,
			ops: func(c *resultCache) {
				c.add(key(1), 1)
			},
			absent: []byte{1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := newResultCache(tt.cap)
			tt.ops(c)
			if tt.cap > 0 && c.len() > tt.cap {
				t.Errorf("len = %d beyond capacity %d", c.len(), tt.cap)
			}
			for _, b := range tt.present {
				if _, ok := c.get(key(b)); !ok {
					t.Errorf("key %d missing, want present", b)
				}
			}
			for _, b := range tt.absent {
				if _, ok := c.get(key(b)); ok {
					t.Errorf("key %d present, want evicted", b)
				}
			}
		})
	}
}

func TestResultCacheUpdatesValue(t *testing.T) {
	c := newResultCache(4)
	c.add(key(1), "old")
	c.add(key(1), "new")
	v, ok := c.get(key(1))
	if !ok || v != "new" {
		t.Fatalf("get = %v, %v; want new, true", v, ok)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}
