package crashtest_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"critload/internal/jobs/crashtest"
	"critload/pkg/client"
)

// TestMain lets crashtest re-execute this binary as the daemon under test;
// in the parent process Main returns immediately and the tests run.
func TestMain(m *testing.M) {
	crashtest.Main()
	os.Exit(m.Run())
}

// testDir allocates one incarnation-chain's data dir. By default it is a
// plain t.TempDir; with CRITLOAD_CRASHTEST_DATA_ROOT set (the nightly
// campaign does), failing tests leave their journal and result store
// behind under that root for artifact upload, while passing tests still
// clean up.
func testDir(t *testing.T) string {
	root := os.Getenv("CRITLOAD_CRASHTEST_DATA_ROOT")
	if root == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, strings.ReplaceAll(t.Name(), "/", "_")+"-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// campaignSize reads the kill-point count: 5 under -short (the PR gate),
// 20 by default, or CRITLOAD_CRASHTEST_POINTS when the nightly campaign
// wants a longer sweep.
func campaignSize(t *testing.T) int {
	if v := os.Getenv("CRITLOAD_CRASHTEST_POINTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad CRITLOAD_CRASHTEST_POINTS %q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 5
	}
	return 20
}

// campaignSeed fixes the kill-delay sequence. The default is constant so a
// failure reproduces; the nightly campaign sets CRITLOAD_CRASHTEST_SEED to
// its run ID so successive nights explore different points (the seed is
// logged, so any night still reproduces).
func campaignSeed(t *testing.T) int64 {
	if v := os.Getenv("CRITLOAD_CRASHTEST_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CRITLOAD_CRASHTEST_SEED %q: %v", v, err)
		}
		return n
	}
	return 0xC0FFEE
}

// crashSpecs is the workload mix every incarnation is fed: timing jobs
// first (long enough to be mid-execution when the process dies) and a
// tail of functional jobs (fast, so some are done and some still queued
// at most kill points).
var crashSpecs = []client.JobSpec{
	{Workload: "srad", Mode: "timing", Size: 32, Seed: 7},
	{Workload: "2mm", Mode: "timing", Size: 32, Seed: 7},
	{Workload: "dwt", Mode: "timing", Size: 64, Seed: 7},
	{Workload: "bfs", Mode: "functional", Size: 1024, Seed: 7},
	{Workload: "sssp", Mode: "functional", Size: 512, Seed: 7},
	{Workload: "mis", Mode: "functional", Size: 512, Seed: 7},
	{Workload: "spmv", Mode: "functional", Size: 1024, Seed: 7},
	{Workload: "mst", Mode: "functional", Size: 256, Seed: 7},
}

var (
	coldOnce    sync.Once
	coldResults []json.RawMessage
)

// coldRun computes each spec's reference result once, on a pristine daemon
// that lives and dies cleanly — the oracle recovered results must match
// byte for byte.
func coldRun(t *testing.T) []json.RawMessage {
	t.Helper()
	coldOnce.Do(func() {
		d := crashtest.Start(t, t.TempDir())
		c := d.Client(t)
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()
		for _, spec := range crashSpecs {
			job, err := c.RunJob(ctx, spec)
			if err != nil {
				t.Fatalf("cold run %s/%s: %v", spec.Workload, spec.Mode, err)
			}
			if job.State != client.StateDone {
				t.Fatalf("cold run %s/%s ended %q: %s", spec.Workload, spec.Mode, job.State, job.Error)
			}
			coldResults = append(coldResults, job.Result)
		}
		d.Shutdown(t)
	})
	if len(coldResults) != len(crashSpecs) {
		t.Fatal("cold reference run failed earlier in this binary")
	}
	return coldResults
}

// ackedJob is one submission the first incarnation acknowledged (202 with
// an ID) before dying. Acknowledged is the durability contract: anything
// acked must survive the crash.
type ackedJob struct {
	spec int
	id   string
}

// submitUntilKilled feeds crashSpecs to the daemon from a goroutine,
// recording every acknowledged ID; submissions that error (e.g. the
// process died mid-request) are not acked and carry no promise.
func submitUntilKilled(c *client.Client) (<-chan struct{}, func() []ackedJob) {
	var mu sync.Mutex
	var acked []ackedJob
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for i, spec := range crashSpecs {
			job, err := c.SubmitJob(ctx, spec)
			if err != nil {
				return
			}
			mu.Lock()
			acked = append(acked, ackedJob{spec: i, id: job.ID})
			mu.Unlock()
		}
	}()
	return done, func() []ackedJob {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return acked
	}
}

// verifyRecovered asserts the durability contract against a restarted
// incarnation: every acked job still exists, reaches done, and its result
// is byte-identical to the cold reference.
func verifyRecovered(t *testing.T, d *crashtest.Daemon, acked []ackedJob, want []json.RawMessage) {
	t.Helper()
	c := d.Client(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	hs, err := c.HealthStatus(ctx)
	if err != nil {
		t.Fatalf("health after restart: %v", err)
	}
	if hs.Recovery == nil || !hs.Recovery.Enabled {
		t.Fatalf("restarted daemon reports no recovery block: %+v", hs)
	}
	if hs.Recovery.Unrecoverable != 0 {
		t.Fatalf("recovery lost %d jobs: %+v", hs.Recovery.Unrecoverable, *hs.Recovery)
	}

	for _, a := range acked {
		spec := crashSpecs[a.spec]
		if _, err := c.GetJob(ctx, a.id); err != nil {
			t.Fatalf("acked job %s (%s/%s) lost after crash: %v", a.id, spec.Workload, spec.Mode, err)
		}
		job, err := c.WaitJob(ctx, a.id, 0)
		if err != nil {
			t.Fatalf("waiting for recovered job %s (%s/%s): %v", a.id, spec.Workload, spec.Mode, err)
		}
		if job.State != client.StateDone {
			t.Fatalf("recovered job %s (%s/%s) ended %q: %s",
				a.id, spec.Workload, spec.Mode, job.State, job.Error)
		}
		if !bytes.Equal(job.Result, want[a.spec]) {
			t.Fatalf("recovered result for %s (%s/%s) diverges from cold run:\ncold: %s\ngot:  %s",
				a.id, spec.Workload, spec.Mode, want[a.spec], job.Result)
		}
	}
}

// TestCrashRecoveryRandomizedKills is the headline oracle: a daemon fed
// the workload mix is SIGKILLed after a randomized delay — sometimes
// mid-submission, sometimes mid-execution, sometimes after everything
// finished — and a second incarnation on the same data dir must recover
// every acknowledged job with a byte-identical result. The seed is fixed
// so a failing kill point reproduces.
func TestCrashRecoveryRandomizedKills(t *testing.T) {
	want := coldRun(t)
	points := campaignSize(t)
	seed := campaignSeed(t)
	t.Logf("campaign: %d kill points, seed %#x", points, seed)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < points; i++ {
		delay := time.Duration(rng.Int63n(int64(1500 * time.Millisecond)))
		t.Run(fmt.Sprintf("kill%02d_after_%s", i, delay.Round(time.Millisecond)), func(t *testing.T) {
			dir := testDir(t)
			d1 := crashtest.Start(t, dir)
			_, collect := submitUntilKilled(d1.Client(t))
			time.Sleep(delay)
			d1.Kill(t)
			acked := collect()

			d2 := crashtest.Start(t, dir)
			verifyRecovered(t, d2, acked, want)
			d2.Shutdown(t)
		})
	}
}

// TestCrashRecoveryTornTail pins the torn-write path end to end: garbage
// appended to the journal's newest segment (a crash mid-append writes
// exactly this) must be truncated on replay without losing any record
// fsync'd before it.
func TestCrashRecoveryTornTail(t *testing.T) {
	want := coldRun(t)
	dir := testDir(t)
	d1 := crashtest.Start(t, dir)
	_, collect := submitUntilKilled(d1.Client(t))
	time.Sleep(200 * time.Millisecond)
	d1.Kill(t)
	acked := collect()
	if len(acked) == 0 {
		t.Skip("no submissions acked before the kill; nothing to assert")
	}

	segs, err := filepath.Glob(filepath.Join(dir, "journal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments after acked submissions (err=%v)", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0x5a}, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := crashtest.Start(t, dir)
	verifyRecovered(t, d2, acked, want)
	d2.Shutdown(t)
}

// TestCrashRecoveryFullyCorruptJournal pins the degradation floor: when
// every journal segment is destroyed, the daemon must still start — with
// an empty queue and the corruption visible on /healthz — and serve new
// jobs, never refuse to boot.
func TestCrashRecoveryFullyCorruptJournal(t *testing.T) {
	dir := testDir(t)
	d1 := crashtest.Start(t, dir)
	c1 := d1.Client(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c1.RunJob(ctx, crashSpecs[3]); err != nil {
		t.Fatalf("seeding job: %v", err)
	}
	d1.Kill(t)

	segs, err := filepath.Glob(filepath.Join(dir, "journal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments to corrupt (err=%v)", err)
	}
	for _, seg := range segs {
		if err := os.WriteFile(seg, bytes.Repeat([]byte{0xff}, 256), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2 := crashtest.Start(t, dir)
	c2 := d2.Client(t)
	hs, err := c2.HealthStatus(ctx)
	if err != nil {
		t.Fatalf("health over corrupt journal: %v", err)
	}
	if hs.Recovery == nil || hs.Recovery.Jobs != 0 {
		t.Fatalf("fully corrupt journal should degrade to an empty queue, got %+v", hs.Recovery)
	}
	if hs.Recovery.DroppedSegments == 0 {
		t.Fatalf("corruption not surfaced on /healthz: %+v", *hs.Recovery)
	}
	job, err := c2.RunJob(ctx, crashSpecs[4])
	if err != nil || job.State != client.StateDone {
		t.Fatalf("daemon unusable after corrupt-journal start: %v / %+v", err, job)
	}
	d2.Shutdown(t)
}
