// Package crashtest runs a real critloadd daemon as a child process so
// tests can kill it — SIGKILL, no warning, no flushing — at arbitrary
// points and assert what the durable job tier recovers on restart.
//
// The child is the test binary itself, re-executed: TestMain of a test
// package using this harness must call Main first, which hijacks the
// process when the child marker is in the environment and runs the daemon
// instead of the tests. That keeps the harness dependency-free (no
// separate binary to build or locate) while still exercising the real
// composition root (internal/daemon.Run), the real HTTP surface, the real
// journal fsync path, and real process death.
package crashtest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"critload/internal/daemon"
	"critload/pkg/client"
)

// Environment keys wiring one child incarnation. The marker doubles as a
// guard: without it, Main is a no-op and the binary runs its tests.
const (
	envChild    = "CRITLOAD_CRASHTEST_CHILD"
	envDataDir  = "CRITLOAD_CRASHTEST_DATA_DIR"
	envAddrFile = "CRITLOAD_CRASHTEST_ADDR_FILE"
)

// Main hijacks the process when it is a re-executed crashtest child:
// it runs a durable daemon on the configured data dir until SIGTERM, then
// exits. Call it from TestMain before m.Run; in the parent process it
// returns immediately.
func Main() {
	if os.Getenv(envChild) == "" {
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	err := daemon.Run(ctx, daemon.Config{
		Addr:         "127.0.0.1:0",
		AddrFile:     os.Getenv(envAddrFile),
		DataDir:      os.Getenv(envDataDir),
		Workers:      2,
		Queue:        64,
		CacheEntries: 64,
		Grace:        30 * time.Second,
		IdleTimeout:  daemon.DefaultIdleTimeout,
		Log:          slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Daemon is one child incarnation of the durable daemon.
type Daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
	waited chan error // closed once Wait has reaped the child
	werr   error
}

// Start re-executes the test binary as a durable daemon rooted at dataDir
// and waits until it is serving. Every Start over the same dataDir replays
// whatever journal the previous incarnation left behind.
func Start(t *testing.T, dataDir string) *Daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("crashtest: locating test binary: %v", err)
	}
	addrFile := filepath.Join(dataDir, "addr")
	if err := os.Remove(addrFile); err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("crashtest: clearing addr file: %v", err)
	}

	d := &Daemon{stderr: &bytes.Buffer{}, waited: make(chan error, 1)}
	d.cmd = exec.Command(exe)
	d.cmd.Env = append(os.Environ(),
		envChild+"=1", envDataDir+"="+dataDir, envAddrFile+"="+addrFile)
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("crashtest: starting child: %v", err)
	}
	go func() { d.waited <- d.cmd.Wait() }()

	// The child publishes its ephemeral address atomically once listening;
	// recovery replay happens before that, so a visible addr file means the
	// daemon is fully open for business.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			d.addr = string(b)
			return d
		}
		select {
		case err := <-d.waited:
			t.Fatalf("crashtest: child exited before serving: %v\n%s", err, d.stderr.Bytes())
		default:
		}
		if time.Now().After(deadline) {
			d.Kill(t)
			t.Fatalf("crashtest: child never published an address\n%s", d.stderr.Bytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Addr is the daemon's bound listen address.
func (d *Daemon) Addr() string { return d.addr }

// Client builds a client for this incarnation with fast test retries.
func (d *Daemon) Client(t *testing.T) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		BaseURL:        "http://" + d.addr,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("crashtest: building client: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// Kill SIGKILLs the child — the crash under test: no signal handler runs,
// no buffer flushes, no journal compaction. Idempotent once reaped.
func (d *Daemon) Kill(t *testing.T) {
	t.Helper()
	select {
	case d.werr = <-d.waited:
		return // already exited
	default:
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("crashtest: SIGKILL: %v", err)
	}
	d.werr = <-d.waited
}

// Shutdown asks the child to stop cleanly (SIGTERM, which drains jobs and
// compacts the journal) and requires a zero exit.
func (d *Daemon) Shutdown(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("crashtest: SIGTERM: %v", err)
	}
	select {
	case err := <-d.waited:
		if err != nil {
			t.Fatalf("crashtest: clean shutdown exited with %v\n%s", err, d.stderr.Bytes())
		}
	case <-time.After(60 * time.Second):
		d.Kill(t)
		t.Fatalf("crashtest: child ignored SIGTERM for 60s\n%s", d.stderr.Bytes())
	}
}

// StderrTail returns the child's recent stderr for failure messages. Only
// safe after the child has been reaped (Kill or Shutdown).
func (d *Daemon) StderrTail(n int) string {
	b := d.stderr.Bytes()
	if len(b) > n {
		b = b[len(b)-n:]
	}
	return string(b)
}
