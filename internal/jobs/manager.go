package jobs

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"critload/internal/journal"
)

// Runner executes one spec and returns its result. Implementations must
// honour ctx: return promptly (with ctx.Err()) once it is cancelled or its
// deadline passes. The experiments-backed runner lives in internal/server;
// tests inject lightweight fakes. A runner that panics does not kill the
// worker: the manager recovers it into a *PanicError and fails the job.
// Runners may call ReportProgress(ctx, ...) to surface a heartbeat on the
// job's API snapshot.
type Runner func(ctx context.Context, spec Spec) (any, error)

// ExecutionObserver receives one callback per actual runner invocation with
// its wall-clock duration and outcome — the hook the service layer feeds
// its job-latency histograms from.
type ExecutionObserver func(spec Spec, wall time.Duration, err error)

// State is a job's lifecycle position. Transitions are strictly
// queued → running → {done, failed}; cancellation is reachable from queued
// and running.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transition is possible.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Manager errors.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound is returned for unknown job ids.
	ErrNotFound = errors.New("jobs: no such job")
)

// Config sizes a manager. Zero fields select the defaults; values beyond
// DefaultLimits are rejected, so a mistyped flag cannot allocate an
// unbounded queue or cache.
type Config struct {
	// Workers is the pool size (0 = runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the number of executions waiting for a worker
	// (0 = DefaultQueueDepth). Submissions beyond it fail fast with
	// ErrQueueFull rather than blocking the API.
	QueueDepth int
	// CacheEntries bounds the result cache (0 = DefaultCacheEntries,
	// < 0 disables caching).
	CacheEntries int
	// MaxJobs bounds retained job records; the oldest finished jobs are
	// forgotten beyond it (0 = DefaultMaxJobs).
	MaxJobs int
	// Runner executes specs. Required.
	Runner Runner

	// JournalDir enables the durable tier: every job transition is logged
	// to a write-ahead journal in this directory, replayed on the next
	// start to rebuild the queue after a crash. Empty disables journaling.
	JournalDir string
	// JournalSegmentBytes overrides the journal's segment rotation
	// threshold (0 = journal.DefaultSegmentBytes).
	JournalSegmentBytes int64
	// JournalNoSync disables fsync on journal appends. Tests only: it
	// trades away the durability the journal exists for.
	JournalNoSync bool
	// Results, when non-nil, backs the in-memory result cache with an
	// on-disk content-addressed store: completed results are persisted
	// before their journal record, cache misses fall through to disk, and
	// recovery serves replayed jobs from it instead of re-simulating.
	Results *ResultStore
}

// Default sizes.
const (
	DefaultQueueDepth   = 256
	DefaultCacheEntries = 512
	DefaultMaxJobs      = 4096
)

// Limits are safety upper bounds on a manager configuration.
type Limits struct {
	MaxWorkers      int
	MaxQueueDepth   int
	MaxCacheEntries int
	MaxJobs         int
}

// DefaultLimits is a conservative guard for service deployments.
var DefaultLimits = Limits{
	MaxWorkers:      4 * runtime.NumCPU(),
	MaxQueueDepth:   4096,
	MaxCacheEntries: 1 << 16,
	MaxJobs:         1 << 16,
}

// withDefaults resolves zero fields and checks the result against limits.
func (c Config) withDefaults(l Limits) (Config, error) {
	if c.Runner == nil {
		return c, fmt.Errorf("jobs: config has no runner")
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = DefaultMaxJobs
	}
	switch {
	case c.Workers < 0 || c.Workers > l.MaxWorkers:
		return c, fmt.Errorf("jobs: workers %d outside (0, %d]", c.Workers, l.MaxWorkers)
	case c.QueueDepth < 0 || c.QueueDepth > l.MaxQueueDepth:
		return c, fmt.Errorf("jobs: queue depth %d outside (0, %d]", c.QueueDepth, l.MaxQueueDepth)
	case c.CacheEntries > l.MaxCacheEntries:
		return c, fmt.Errorf("jobs: cache entries %d beyond %d", c.CacheEntries, l.MaxCacheEntries)
	case c.MaxJobs < 0 || c.MaxJobs > l.MaxJobs:
		return c, fmt.Errorf("jobs: max jobs %d outside (0, %d]", c.MaxJobs, l.MaxJobs)
	}
	return c, nil
}

// JobInfo is an immutable snapshot of one job, safe to hold across requests
// and to serialize for the API.
type JobInfo struct {
	ID       string    `json:"id"`
	Spec     Spec      `json:"spec"`
	Key      string    `json:"key"`
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	Created  time.Time `json:"created"`
	// Started and Finished are zero until the job reaches those states.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// QueuedMillis is the time spent waiting for a worker; WallMillis the
	// time spent executing.
	QueuedMillis int64 `json:"queued_millis"`
	WallMillis   int64 `json:"wall_millis"`
	// Progress is the runner's latest heartbeat, present only while the job
	// is running and the runner has reported.
	Progress *Progress `json:"progress,omitempty"`
	// Recovered marks a job rebuilt from the journal after a restart
	// rather than submitted through this process's API.
	Recovered bool `json:"recovered,omitempty"`
	Result    any  `json:"result,omitempty"`
}

// job is the mutable record behind a JobInfo; every field is guarded by the
// manager's mutex.
type job struct {
	id        string
	spec      Spec
	key       Key
	state     State
	err       error
	result    any
	cacheHit  bool
	recovered bool
	created   time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
	exec      *execution
}

func (j *job) infoLocked() JobInfo {
	info := JobInfo{
		ID: j.id, Spec: j.spec, Key: j.key.String(), State: j.state,
		CacheHit: j.cacheHit, Recovered: j.recovered, Created: j.created,
		Started: j.started, Finished: j.finished, Result: j.result,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		info.QueuedMillis = j.started.Sub(j.created).Milliseconds()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		info.WallMillis = j.finished.Sub(j.started).Milliseconds()
	}
	if j.state == StateRunning && j.exec != nil && j.exec.progress != nil {
		info.Progress = j.exec.progress.snapshot()
	}
	return info
}

// execution is one scheduled runner invocation; concurrent submissions of
// the same key attach to a single execution (singleflight) so the simulator
// runs each distinct spec at most once at a time.
type execution struct {
	spec     Spec
	key      Key
	ctx      context.Context
	cancel   context.CancelFunc
	started  bool
	progress *progressTracker // set when the execution starts
	jobs     []*job           // attached, in submission order
}

// Manager owns the job registry, the worker pool, the in-flight dedup table
// and the result cache.
type Manager struct {
	cfg     Config
	pool    *Pool
	cache   *resultCache
	results *ResultStore
	c       counters
	obs     atomic.Pointer[ExecutionObserver]

	mu            sync.Mutex
	journal       *journal.Journal
	journalClosed bool
	jobs          map[string]*job
	inflight      map[Key]*execution
	doneOrder     []string // finished job ids, oldest first, for retention
	nextID        int64
	closed        bool
	recovering    bool
	recovery      RecoveryInfo
}

// NewManager builds and starts a manager; callers must Close it. When
// cfg.JournalDir is set, the journal is replayed first: jobs that were
// terminal at the last shutdown are restored as history, jobs that were
// queued or running are completed from the result store when possible and
// re-enqueued otherwise — a corrupt journal degrades to a shorter replay
// (worst case an empty queue), never a failed start.
func NewManager(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults(DefaultLimits)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		pool:     NewPool(cfg.Workers, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheEntries),
		results:  cfg.Results,
		jobs:     map[string]*job{},
		inflight: map[Key]*execution{},
	}
	if cfg.JournalDir != "" {
		rs := newReplayState()
		jnl, err := journal.Open(cfg.JournalDir, journal.Options{
			SegmentBytes: cfg.JournalSegmentBytes, NoSync: cfg.JournalNoSync,
		}, rs.apply)
		if err != nil {
			m.pool.Close()
			return nil, fmt.Errorf("jobs: open journal: %w", err)
		}
		m.journal = jnl
		m.recover(rs)
	}
	return m, nil
}

// Journal returns the manager's write-ahead journal, or nil when the
// durable tier is disabled. The service layer reads its stats for /metrics.
func (m *Manager) Journal() *journal.Journal { return m.journal }

// Results returns the on-disk result store, or nil when none is configured.
func (m *Manager) Results() *ResultStore { return m.results }

// Recovery returns what the last startup replay did.
func (m *Manager) Recovery() RecoveryInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats { return m.c.snapshot() }

// SetExecutionObserver installs (or, with nil, removes) the callback that
// receives every runner invocation's duration and outcome. The service
// layer uses it to feed latency histograms; at most one observer is active.
func (m *Manager) SetExecutionObserver(fn ExecutionObserver) {
	if fn == nil {
		m.obs.Store(nil)
		return
	}
	m.obs.Store(&fn)
}

// Submit validates and enqueues a job, returning its initial snapshot. A
// cached result completes the job immediately; a matching in-flight
// execution is joined instead of re-simulated; otherwise the spec is queued
// on the pool, failing fast with ErrQueueFull when it is saturated.
//
// With journaling enabled the submission record is fsync'd before Submit
// returns: an acknowledged job survives a crash. A journal write failure
// therefore fails the Submit — durability the daemon cannot provide must
// not be silently promised.
func (m *Manager) Submit(spec Spec) (JobInfo, error) {
	if err := spec.Validate(); err != nil {
		return JobInfo{}, err
	}
	key := spec.Key()
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return JobInfo{}, fmt.Errorf("jobs: encoding spec: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobInfo{}, ErrClosed
	}
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("j%08d", m.nextID),
		spec:    spec,
		key:     key,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	if err := m.journalAppend(journal.Record{
		Type: journal.TypeSubmitted, At: j.created, ID: j.id, Data: specJSON,
	}, true); err != nil {
		return JobInfo{}, fmt.Errorf("jobs: journaling submission: %w", err)
	}

	if v, ok := m.cache.get(key); ok {
		m.registerLocked(j)
		m.c.cacheHits.Add(1)
		j.cacheHit = true
		m.finalizeLocked(j, StateDone, v, nil)
		return j.infoLocked(), nil
	}
	m.c.cacheMisses.Add(1)

	if e, ok := m.inflight[key]; ok {
		m.registerLocked(j)
		m.c.deduped.Add(1)
		j.exec = e
		e.jobs = append(e.jobs, j)
		if e.started {
			j.state = StateRunning
			j.started = time.Now()
			m.c.queued.Add(-1)
			m.c.running.Add(1)
			m.journalAppend(journal.Record{Type: journal.TypeStarted, At: j.started, ID: j.id}, false)
		}
		return j.infoLocked(), nil
	}

	// The in-memory cache missed; the on-disk store may still hold the
	// result from an earlier process.
	if v, ok := m.resultFromStore(key); ok {
		m.registerLocked(j)
		m.c.diskHits.Add(1)
		j.cacheHit = true
		m.finalizeLocked(j, StateDone, v, nil)
		return j.infoLocked(), nil
	}

	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if spec.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	e := &execution{spec: spec, key: key, ctx: ctx, cancel: cancel, jobs: []*job{j}}
	if err := m.pool.TrySubmit(func() { m.run(e) }); err != nil {
		cancel()
		// The submission record is already durable; mark the job cancelled
		// so a crash before the next compaction does not resurrect it.
		m.journalAppend(journal.Record{Type: journal.TypeCancelled, At: time.Now(), ID: j.id}, false)
		return JobInfo{}, err
	}
	j.exec = e
	m.inflight[key] = e
	m.registerLocked(j)
	return j.infoLocked(), nil
}

// resultFromStore fetches a completed result from the on-disk store,
// warming the in-memory cache on a hit. The raw stored JSON is returned:
// it re-serializes byte-identically to the original result.
func (m *Manager) resultFromStore(key Key) (any, bool) {
	if m.results == nil {
		return nil, false
	}
	raw, ok := m.results.Get(key)
	if !ok {
		return nil, false
	}
	m.cache.add(key, raw)
	return raw, true
}

// journalAppend writes one record when journaling is enabled. A failed
// synced append surfaces the error — the caller is about to acknowledge
// the transition as durable; a failed unsynced append is only counted.
func (m *Manager) journalAppend(r journal.Record, sync bool) error {
	if m.journal == nil {
		return nil
	}
	if err := m.journal.Append(r, sync); err != nil {
		m.c.journalErrors.Add(1)
		if sync {
			return err
		}
	}
	return nil
}

// registerLocked adds the job to the registry and the queued gauge (every
// job passes through queued, if only for an instant on a cache hit).
func (m *Manager) registerLocked(j *job) {
	m.jobs[j.id] = j
	m.c.submitted.Add(1)
	m.c.queued.Add(1)
}

// run executes one singleflight execution on a pool worker.
func (m *Manager) run(e *execution) {
	defer e.cancel()

	m.mu.Lock()
	if e.ctx.Err() != nil || len(e.jobs) == 0 {
		// Cancelled (or abandoned) while still queued: never invoke the
		// runner.
		delete(m.inflight, e.key)
		for _, j := range e.jobs {
			m.finalizeLocked(j, StateCancelled, nil, e.ctx.Err())
		}
		m.mu.Unlock()
		return
	}
	e.started = true
	now := time.Now()
	e.progress = newProgressTracker(now)
	if m.journal != nil {
		e.progress.onReport = m.progressJournalHook(e.jobs[0].id)
	}
	for _, j := range e.jobs {
		j.state = StateRunning
		j.started = now
		m.c.queued.Add(-1)
		m.c.running.Add(1)
		m.journalAppend(journal.Record{Type: journal.TypeStarted, At: now, ID: j.id}, false)
	}
	ctx, spec := withProgress(e.ctx, e.progress), e.spec
	m.mu.Unlock()

	m.c.executions.Add(1)
	t0 := time.Now()
	res, err := m.invoke(ctx, spec)
	wall := time.Since(t0)
	m.c.wallNanos.Add(uint64(wall))
	if obs := m.obs.Load(); obs != nil {
		(*obs)(spec, wall, err)
	}

	// Persist the result before the completed record is journalled (from
	// finalizeLocked below): a completed record must never refer to a
	// result the filesystem does not hold. On a store failure the record
	// is withheld (see journalTerminalLocked) so recovery re-runs the job.
	if err == nil && m.results != nil {
		if perr := m.results.Put(e.key, res); perr != nil {
			m.c.journalErrors.Add(1)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.inflight, e.key)
	if err == nil {
		m.cache.add(e.key, res)
	}
	for _, j := range e.jobs {
		switch {
		case err == nil:
			m.finalizeLocked(j, StateDone, res, nil)
		case errors.Is(err, context.Canceled):
			m.finalizeLocked(j, StateCancelled, nil, err)
		default:
			m.finalizeLocked(j, StateFailed, nil, err)
		}
	}
}

// invoke runs the configured runner with panic containment: a panicking
// simulation is recovered into a *PanicError (value + stack) so the worker
// survives and every attached job fails with a debuggable message instead
// of the panic unwinding the daemon.
func (m *Manager) invoke(ctx context.Context, spec Spec) (res any, err error) {
	defer func() {
		if v := recover(); v != nil {
			m.c.panics.Add(1)
			res, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return m.cfg.Runner(ctx, spec)
}

// finalizeLocked moves a job to a terminal state, settles the gauges, wakes
// waiters and trims the registry to the retention bound.
func (m *Manager) finalizeLocked(j *job, s State, res any, err error) {
	switch j.state {
	case StateQueued:
		m.c.queued.Add(-1)
	case StateRunning:
		m.c.running.Add(-1)
	}
	j.state = s
	j.result = res
	j.err = err
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	j.exec = nil
	close(j.done)
	switch s {
	case StateDone:
		m.c.completed.Add(1)
	case StateFailed:
		m.c.failed.Add(1)
	case StateCancelled:
		m.c.cancelled.Add(1)
	}
	m.journalTerminalLocked(j)
	m.doneOrder = append(m.doneOrder, j.id)
	for len(m.jobs) > m.cfg.MaxJobs && len(m.doneOrder) > 0 {
		delete(m.jobs, m.doneOrder[0])
		m.doneOrder = m.doneOrder[1:]
	}
}

// journalTerminalLocked records a job's terminal transition. Recovery
// writes its outcome through compaction instead, and a completed record is
// withheld when the result store failed to persist the result — replay
// then sees the job as still live and re-runs it, which is idempotent.
func (m *Manager) journalTerminalLocked(j *job) {
	if m.journal == nil || m.recovering {
		return
	}
	r := journal.Record{At: j.finished, ID: j.id}
	switch j.state {
	case StateDone:
		if m.results != nil && !m.results.Has(j.key) {
			return
		}
		r.Type = journal.TypeCompleted
	case StateFailed:
		r.Type = journal.TypeFailed
		if j.err != nil {
			r.Data = []byte(j.err.Error())
		}
	case StateCancelled:
		r.Type = journal.TypeCancelled
	default:
		return
	}
	m.journalAppend(r, true)
}

// journalProgressEvery throttles progressed records: heartbeats are
// write-buffer-only (never fsync'd) and purely diagnostic, so one every
// few seconds is plenty.
const journalProgressEvery = 5 * time.Second

// progressJournalHook returns the throttled heartbeat callback installed
// on an execution's progress tracker. The payload is the 16-byte
// little-endian (cycles, warp instructions) pair.
func (m *Manager) progressJournalHook(id string) func(int64, uint64) {
	var last atomic.Int64
	return func(cycles int64, warpInsts uint64) {
		now := time.Now()
		prev := last.Load()
		if now.UnixNano()-prev < int64(journalProgressEvery) || !last.CompareAndSwap(prev, now.UnixNano()) {
			return
		}
		var data [16]byte
		binary.LittleEndian.PutUint64(data[:8], uint64(cycles))
		binary.LittleEndian.PutUint64(data[8:], warpInsts)
		m.journalAppend(journal.Record{Type: journal.TypeProgressed, At: now, ID: id, Data: data[:]}, false)
	}
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (JobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return j.infoLocked(), nil
}

// Cancel detaches a job from its execution and marks it cancelled; when the
// last interested job cancels, the execution's context is cancelled too so
// a ctx-honouring runner stops mid-run. Cancelling a finished job is a
// no-op returning its final snapshot.
func (m *Manager) Cancel(id string) (JobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	if j.state.Terminal() {
		return j.infoLocked(), nil
	}
	if e := j.exec; e != nil {
		live := e.jobs[:0]
		for _, other := range e.jobs {
			if other != j {
				live = append(live, other)
			}
		}
		e.jobs = live
		if len(e.jobs) == 0 {
			e.cancel()
		}
	}
	m.finalizeLocked(j, StateCancelled, nil, context.Canceled)
	return j.infoLocked(), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires, then
// returns its snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (JobInfo, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobInfo{}, ErrNotFound
	}
	done := j.done
	m.mu.Unlock()
	select {
	case <-done:
		return m.Get(id)
	case <-ctx.Done():
		info, _ := m.Get(id)
		return info, ctx.Err()
	}
}

// Close stops accepting jobs and drains the pool: running and queued
// executions complete. If ctx expires first, every in-flight execution's
// context is cancelled and Close waits for the (now aborting) workers
// before returning ctx's error. With journaling enabled the drained
// journal is compacted to the retained jobs and closed, so the next start
// replays a minimal, clean log.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.pool.Close()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		m.mu.Lock()
		for _, e := range m.inflight {
			e.cancel()
		}
		m.mu.Unlock()
		<-drained
		err = ctx.Err()
	}
	m.closeJournal()
	return err
}

// closeJournal compacts the journal down to the retained jobs and closes
// it. Best-effort: a failed compaction leaves the full (still valid)
// history in place for the next replay.
func (m *Manager) closeJournal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil || m.journalClosed {
		return
	}
	m.journalClosed = true
	if err := m.journal.Compact(m.liveRecordsLocked()); err != nil {
		m.c.journalErrors.Add(1)
	}
	if err := m.journal.Close(); err != nil {
		m.c.journalErrors.Add(1)
	}
}

// liveRecordsLocked renders the retained jobs as the canonical record
// sequence a fresh journal needs: one submitted record per job plus its
// terminal (or started) record. Jobs already trimmed by retention are
// gone from the compacted journal too — retention is the contract.
func (m *Manager) liveRecordsLocked() []journal.Record {
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids) // ids are zero-padded: lexicographic == numeric
	recs := make([]journal.Record, 0, 2*len(ids))
	for _, id := range ids {
		j := m.jobs[id]
		specJSON, err := json.Marshal(j.spec)
		if err != nil {
			continue
		}
		recs = append(recs, journal.Record{
			Type: journal.TypeSubmitted, At: j.created, ID: id, Data: specJSON,
		})
		switch j.state {
		case StateDone:
			if m.results == nil || m.results.Has(j.key) {
				recs = append(recs, journal.Record{Type: journal.TypeCompleted, At: j.finished, ID: id})
			}
		case StateFailed:
			var msg []byte
			if j.err != nil {
				msg = []byte(j.err.Error())
			}
			recs = append(recs, journal.Record{Type: journal.TypeFailed, At: j.finished, ID: id, Data: msg})
		case StateCancelled:
			recs = append(recs, journal.Record{Type: journal.TypeCancelled, At: j.finished, ID: id})
		case StateRunning:
			recs = append(recs, journal.Record{Type: journal.TypeStarted, At: j.started, ID: id})
		}
	}
	return recs
}
