package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// instantRunner completes immediately, echoing the workload name.
func instantRunner(ctx context.Context, spec Spec) (any, error) {
	return spec.Workload + "-result", nil
}

// blockingRunner blocks until release is closed or ctx ends, recording the
// specs it actually executed.
type blockingRunner struct {
	release chan struct{}
	mu      sync.Mutex
	specs   []Spec
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, spec Spec) (any, error) {
	b.mu.Lock()
	b.specs = append(b.specs, spec)
	b.mu.Unlock()
	select {
	case <-b.release:
		return spec.Workload + "-result", nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *blockingRunner) executed() []Spec {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Spec(nil), b.specs...)
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func spec(workload string) Spec {
	return Spec{Workload: workload, Mode: ModeFunctional}
}

func TestJobLifecycleToDone(t *testing.T) {
	m := newManager(t, Config{Workers: 1, Runner: instantRunner})
	info, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if info.State != StateQueued && info.State != StateRunning && info.State != StateDone {
		t.Fatalf("initial state %q not a lifecycle state", info.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %q, want done", final.State)
	}
	if final.Result != "bfs-result" {
		t.Fatalf("result = %v, want bfs-result", final.Result)
	}
	if final.Created.IsZero() || final.Started.IsZero() || final.Finished.IsZero() {
		t.Fatalf("missing timestamps: %+v", final)
	}
	st := m.Stats()
	if st.Completed != 1 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats = %+v, want 1 completed and settled gauges", st)
	}
}

func TestJobFailureIsNotCached(t *testing.T) {
	boom := errors.New("boom")
	m := newManager(t, Config{Workers: 1, Runner: func(context.Context, Spec) (any, error) {
		return nil, boom
	}})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		info, err := m.Submit(spec("bfs"))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		final, err := m.Wait(ctx, info.ID)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if final.State != StateFailed || !strings.Contains(final.Error, "boom") {
			t.Fatalf("final = %+v, want failed with boom", final)
		}
	}
	if st := m.Stats(); st.Executions != 2 || st.Failed != 2 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v, want 2 uncached executions", st)
	}
}

// TestRunnerPanicBecomesFailedJob is the crash-containment contract: a
// panicking simulation must surface as a failed job carrying the panic
// message and stack, the worker must survive to run the next job, and the
// result cache must not memoise the wreckage.
func TestRunnerPanicBecomesFailedJob(t *testing.T) {
	m := newManager(t, Config{Workers: 1, Runner: func(ctx context.Context, s Spec) (any, error) {
		if s.Workload == "bfs" {
			panic("simulated cache corruption")
		}
		return s.Workload + "-result", nil
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	info, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if !strings.Contains(final.Error, "simulated cache corruption") {
		t.Errorf("error %q missing panic message", final.Error)
	}
	if !strings.Contains(final.Error, "goroutine") {
		t.Errorf("error %q missing stack trace", final.Error)
	}

	// The typed error is preserved for programmatic inspection.
	var pe *PanicError
	j := func() error { m.mu.Lock(); defer m.mu.Unlock(); return m.jobs[info.ID].err }()
	if !errors.As(j, &pe) || pe.Value != "simulated cache corruption" {
		t.Errorf("job error = %T %v, want *PanicError", j, j)
	}

	// The worker survived: a healthy job on the same manager still runs.
	ok, err := m.Submit(spec("sssp"))
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if final, err = m.Wait(ctx, ok.ID); err != nil || final.State != StateDone {
		t.Fatalf("job after panic = %+v, %v; want done", final, err)
	}

	// A panicked result is never cached; resubmission re-executes (and
	// panics again) rather than replaying a phantom success.
	again, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if final, err = m.Wait(ctx, again.ID); err != nil || final.State != StateFailed {
		t.Fatalf("resubmitted = %+v, %v; want failed again", final, err)
	}
	if st := m.Stats(); st.Panics != 2 || st.Failed != 2 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 2 panics, 2 failed, 1 completed", st)
	}
}

// TestProgressHeartbeat drives ReportProgress from a runner and reads the
// heartbeat off the running job's snapshot.
func TestProgressHeartbeat(t *testing.T) {
	reported := make(chan struct{})
	release := make(chan struct{})
	m := newManager(t, Config{Workers: 1, Runner: func(ctx context.Context, s Spec) (any, error) {
		ReportProgress(ctx, 1000, 250)
		close(reported)
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	info, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-reported
	snap, err := m.Get(info.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	p := snap.Progress
	if p == nil {
		t.Fatal("running job has no progress after a report")
	}
	if p.Cycles != 1000 || p.WarpInsts != 250 {
		t.Fatalf("progress = %+v, want cycles 1000, warp insts 250", p)
	}
	if p.CyclesPerSec <= 0 {
		t.Errorf("cycles/sec = %v, want > 0", p.CyclesPerSec)
	}
	if p.Updated.IsZero() {
		t.Error("progress has no update timestamp")
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, info.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("final = %+v, %v", final, err)
	}
	if final.Progress != nil {
		t.Error("terminal snapshot still carries a progress heartbeat")
	}
	if final.QueuedMillis < 0 || final.WallMillis < 0 {
		t.Errorf("negative phase durations: %+v", final)
	}
}

// TestReportProgressOutsideManagerIsNoop guards the CLI path, where runners
// execute without a manager-injected tracker.
func TestReportProgressOutsideManagerIsNoop(t *testing.T) {
	ReportProgress(context.Background(), 1, 1) // must not panic
}

func TestCancelQueuedJobSkipsRunner(t *testing.T) {
	br := newBlockingRunner()
	m := newManager(t, Config{Workers: 1, Runner: br.run})
	// Occupy the single worker...
	first, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitForState(t, m, first.ID, StateRunning)
	// ...queue a second execution and cancel it before it can start.
	second, err := m.Submit(spec("sssp"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cancelled, err := m.Cancel(second.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", cancelled.State)
	}
	close(br.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, first.ID); err != nil {
		t.Fatalf("Wait(first): %v", err)
	}
	for _, s := range br.executed() {
		if s.Workload == "sssp" {
			t.Fatal("cancelled queued job still reached the runner")
		}
	}
	if st := m.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want 1 cancelled", st)
	}
}

func TestCancelMidRunStopsExecution(t *testing.T) {
	br := newBlockingRunner() // release never closed: only ctx can end it
	m := newManager(t, Config{Workers: 1, Runner: br.run})
	info, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitForState(t, m, info.ID, StateRunning)
	if _, err := m.Cancel(info.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final, err := m.Get(info.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if final.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", final.State)
	}
	// The runner must observe the context cancellation and the worker must
	// come free again (Close in cleanup would hang otherwise).
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Running != 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner did not stop after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	// Cancelling a finished job is an idempotent no-op.
	again, err := m.Cancel(info.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("second Cancel = %+v, %v", again, err)
	}
}

func TestJobDeadline(t *testing.T) {
	br := newBlockingRunner() // only ctx ends it
	m := newManager(t, Config{Workers: 1, Runner: br.run})
	s := spec("bfs")
	s.Timeout = 20 * time.Millisecond
	info, err := m.Submit(s)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("final = %+v, want failed with deadline error", final)
	}
}

func TestSingleflightDedup(t *testing.T) {
	br := newBlockingRunner()
	m := newManager(t, Config{Workers: 4, Runner: br.run})
	const n = 4
	ids := make([]string, n)
	for i := range ids {
		info, err := m.Submit(spec("bfs"))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = info.ID
	}
	close(br.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range ids {
		final, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if final.State != StateDone || final.Result != "bfs-result" {
			t.Fatalf("job %s = %+v, want done with shared result", id, final)
		}
	}
	st := m.Stats()
	if st.Executions != 1 {
		t.Fatalf("executions = %d, want 1 (singleflight)", st.Executions)
	}
	if st.Deduped != n-1 {
		t.Fatalf("deduped = %d, want %d", st.Deduped, n-1)
	}
}

func TestResultCacheHit(t *testing.T) {
	m := newManager(t, Config{Workers: 1, Runner: instantRunner})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	first, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m.Wait(ctx, first.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	second, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if second.State != StateDone || !second.CacheHit || second.Result != "bfs-result" {
		t.Fatalf("second = %+v, want immediate cached completion", second)
	}
	st := m.Stats()
	if st.Executions != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 execution and 1 cache hit", st)
	}
	// A different spec misses.
	third, err := m.Submit(spec("sssp"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if third.CacheHit {
		t.Fatal("distinct spec reported a cache hit")
	}
}

func TestSubmitQueueFull(t *testing.T) {
	br := newBlockingRunner()
	defer close(br.release)
	m := newManager(t, Config{Workers: 1, QueueDepth: 1, Runner: br.run})
	// Distinct specs so no submission dedups into another.
	names := []string{"a", "b", "c", "d", "e"}
	var full bool
	for _, n := range names {
		if _, err := m.Submit(spec(n)); errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("queue never filled")
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	m := newManager(t, Config{Workers: 2, Runner: instantRunner})
	ids := []string{}
	for _, n := range []string{"a", "b", "c", "d"} {
		info, err := m.Submit(spec(n))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, info.ID)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, id := range ids {
		final, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if final.State != StateDone {
			t.Fatalf("job %s = %q after drain, want done", id, final.State)
		}
	}
	if _, err := m.Submit(spec("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestCloseDeadlineCancelsRunningJobs(t *testing.T) {
	br := newBlockingRunner() // only ctx ends it
	m := newManager(t, Config{Workers: 1, Runner: br.run})
	info, err := m.Submit(spec("bfs"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitForState(t, m, info.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want deadline exceeded", err)
	}
	final, err := m.Get(info.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if final.State != StateCancelled {
		t.Fatalf("state after forced close = %q, want cancelled", final.State)
	}
}

func TestManagerConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{Runner: instantRunner}, true},
		{"no runner", Config{}, false},
		{"negative workers", Config{Workers: -1, Runner: instantRunner}, false},
		{"workers beyond limit", Config{Workers: DefaultLimits.MaxWorkers + 1, Runner: instantRunner}, false},
		{"queue beyond limit", Config{QueueDepth: DefaultLimits.MaxQueueDepth + 1, Runner: instantRunner}, false},
		{"cache beyond limit", Config{CacheEntries: DefaultLimits.MaxCacheEntries + 1, Runner: instantRunner}, false},
		{"cache disabled", Config{CacheEntries: -1, Runner: instantRunner}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewManager(tt.cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("NewManager = %v, want ok=%v", err, tt.ok)
			}
			if m != nil {
				m.Close(context.Background())
			}
		})
	}
}

func TestGetUnknownJob(t *testing.T) {
	m := newManager(t, Config{Workers: 1, Runner: instantRunner})
	if _, err := m.Get("j-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("j-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel = %v, want ErrNotFound", err)
	}
	if _, err := m.Wait(context.Background(), "j-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait = %v, want ErrNotFound", err)
	}
}

// waitForState polls until the job reaches the state or the test deadline.
func waitForState(t *testing.T, m *Manager, id string, s State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if info.State == s {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, s)
}
