// Package jobs is the concurrency backbone of the service layer: a bounded
// worker pool, a content-addressed LRU result cache, and a job manager that
// deduplicates identical in-flight simulations. The pool is the template for
// every concurrent sweep in the repository — the experiments suite warms its
// run caches through it, and the critloadd daemon executes API-submitted
// classification and simulation jobs on it.
package jobs

import (
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
)

// Pool errors.
var (
	// ErrPoolClosed is returned by submissions after Close.
	ErrPoolClosed = errors.New("jobs: pool closed")
	// ErrQueueFull is returned by TrySubmit when the task queue is at
	// capacity.
	ErrQueueFull = errors.New("jobs: queue full")
)

// Pool is a fixed-size worker pool draining a FIFO task queue. The zero
// value is not usable; construct with NewPool. Close drains: every task
// already accepted — queued or running — completes before Close returns.
//
// Workers are panic-contained: a panicking task is recovered (reported to
// the handler installed with SetPanicHandler, if any) and the worker moves
// on to the next task, so one bad simulation cannot kill the pool.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu      sync.RWMutex
	closed  bool
	onPanic func(v any, stack []byte)
	once    sync.Once
}

// NewPool starts workers goroutines consuming a queue of the given depth.
// workers <= 0 selects runtime.NumCPU(); queue <= 0 selects an unbuffered
// queue (submissions rendezvous with an idle worker).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// SetPanicHandler installs fn to receive the value and stack of every task
// panic the pool recovers. Without one, recovered panics are dropped
// silently; either way the worker survives.
func (p *Pool) SetPanicHandler(fn func(v any, stack []byte)) {
	p.mu.Lock()
	p.onPanic = fn
	p.mu.Unlock()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.tasks {
		p.protect(fn)
	}
}

// protect runs one task, containing any panic to that task.
func (p *Pool) protect(fn func()) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		p.mu.RLock()
		h := p.onPanic
		p.mu.RUnlock()
		if h != nil {
			h(v, debug.Stack())
		}
	}()
	fn()
}

// Submit enqueues fn, blocking while the queue is full.
func (p *Pool) Submit(fn func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.tasks <- fn
	return nil
}

// TrySubmit enqueues fn without blocking, returning ErrQueueFull when no
// queue slot is free.
func (p *Pool) TrySubmit(fn func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- fn:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops accepting tasks, lets the workers drain everything already
// queued, and waits for them to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.tasks)
	})
	p.wg.Wait()
}
