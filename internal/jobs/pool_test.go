package jobs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(4, 16)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() { n.Add(1) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestPoolSingleWorkerPreservesFIFO(t *testing.T) {
	p := NewPool(1, 32)
	var (
		mu  sync.Mutex
		got []int
	)
	for i := 0; i < 20; i++ {
		i := i
		if err := p.Submit(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Close()
	for i, v := range got {
		if v != i {
			t.Fatalf("task order %v not FIFO", got)
		}
	}
}

// TestPoolShutdownWhileBusy closes the pool while workers are mid-task and
// more tasks wait in the queue: Close must drain everything it accepted.
func TestPoolShutdownWhileBusy(t *testing.T) {
	p := NewPool(2, 16)
	var started, finished atomic.Int64
	release := make(chan struct{})
	for i := 0; i < 10; i++ {
		if err := p.Submit(func() {
			started.Add(1)
			<-release
			finished.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Wait for the two workers to be busy, then close concurrently.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while tasks were still blocked")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	if got := finished.Load(); got != 10 {
		t.Fatalf("drained %d tasks, want 10", got)
	}
}

// TestPoolWorkerSurvivesPanic is the containment contract: a panicking task
// must neither kill its worker nor leak into the caller — subsequent tasks
// still run and the panic reaches the installed handler with a stack.
func TestPoolWorkerSurvivesPanic(t *testing.T) {
	p := NewPool(1, 8)
	var (
		mu      sync.Mutex
		panics  []any
		stackOK bool
	)
	p.SetPanicHandler(func(v any, stack []byte) {
		mu.Lock()
		panics = append(panics, v)
		stackOK = len(stack) > 0
		mu.Unlock()
	})
	var ran atomic.Int64
	if err := p.Submit(func() { panic("task boom") }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := p.Submit(func() { ran.Add(1) }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	p.Close()
	if ran.Load() != 1 {
		t.Fatal("task after a panic never ran: worker died")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(panics) != 1 || panics[0] != "task boom" || !stackOK {
		t.Fatalf("panic handler saw %v (stack ok %v), want [task boom] with stack", panics, stackOK)
	}
}

// TestPoolPanicWithoutHandler checks the worker survives even when no
// handler is installed.
func TestPoolPanicWithoutHandler(t *testing.T) {
	p := NewPool(1, 4)
	var ran atomic.Int64
	p.Submit(func() { panic("silent") })
	p.Submit(func() { ran.Add(1) })
	p.Close()
	if ran.Load() != 1 {
		t.Fatal("worker died on unhandled panic")
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	if err := p.TrySubmit(func() {}); err != ErrPoolClosed {
		t.Fatalf("TrySubmit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // second Close must be a no-op, not a panic
}

func TestPoolTrySubmitQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	release := make(chan struct{})
	defer close(release)
	// Occupy the worker, then fill the single queue slot.
	if err := p.Submit(func() { <-release }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The worker may not have picked up the first task yet; TrySubmit
	// until the queue slot itself is taken.
	deadline := time.Now().Add(time.Second)
	full := false
	for time.Now().Before(deadline) {
		if err := p.TrySubmit(func() { <-release }); err == ErrQueueFull {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("TrySubmit never reported ErrQueueFull")
	}
}
