package jobs

import (
	"context"
	"sync/atomic"
	"time"
)

// Progress is a live heartbeat of one running execution, surfaced on
// GET /v1/jobs/{id} while the job is in the running state: how far the
// simulation has advanced and how fast the simulated clock is moving.
type Progress struct {
	// Cycles is the simulated cycle count so far (0 for functional runs,
	// which have no clock).
	Cycles int64 `json:"cycles"`
	// WarpInsts is the number of warp instructions executed so far.
	WarpInsts uint64 `json:"warp_insts"`
	// CyclesPerSec is the simulation rate: simulated cycles per wall-clock
	// second since the execution started.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// Updated is when the runner last reported.
	Updated time.Time `json:"updated"`
}

// progressTracker is the lock-free backing store a runner reports into; job
// snapshots read it concurrently with the simulation.
type progressTracker struct {
	start     time.Time
	cycles    atomic.Int64
	warpInsts atomic.Uint64
	updated   atomic.Int64 // unix nanos of the last report; 0 = none yet

	// onReport, when set (before the runner starts — it is not guarded),
	// receives every heartbeat; the manager installs a throttled journal
	// hook here so progress survives a crash as progressed records.
	onReport func(cycles int64, warpInsts uint64)
}

func newProgressTracker(start time.Time) *progressTracker {
	return &progressTracker{start: start}
}

func (t *progressTracker) report(cycles int64, warpInsts uint64) {
	t.cycles.Store(cycles)
	t.warpInsts.Store(warpInsts)
	t.updated.Store(time.Now().UnixNano())
	if t.onReport != nil {
		t.onReport(cycles, warpInsts)
	}
}

// snapshot returns the latest heartbeat, or nil before the first report.
func (t *progressTracker) snapshot() *Progress {
	nanos := t.updated.Load()
	if nanos == 0 {
		return nil
	}
	p := &Progress{
		Cycles:    t.cycles.Load(),
		WarpInsts: t.warpInsts.Load(),
		Updated:   time.Unix(0, nanos),
	}
	if elapsed := p.Updated.Sub(t.start).Seconds(); elapsed > 0 && p.Cycles > 0 {
		p.CyclesPerSec = float64(p.Cycles) / elapsed
	}
	return p
}

// progressKey keys the tracker in a runner's context.
type progressKey struct{}

// withProgress attaches a tracker to the context handed to a runner.
func withProgress(ctx context.Context, t *progressTracker) context.Context {
	return context.WithValue(ctx, progressKey{}, t)
}

// ReportProgress records a heartbeat on the job(s) behind ctx. Runners call
// it at convenient boundaries (critloadd's simulation runner reports at
// every kernel launch); outside a manager-run execution it is a no-op, so
// runner code needs no special-casing in tests or CLIs.
func ReportProgress(ctx context.Context, cycles int64, warpInsts uint64) {
	if t, ok := ctx.Value(progressKey{}).(*progressTracker); ok {
		t.report(cycles, warpInsts)
	}
}
