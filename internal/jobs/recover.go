package jobs

import "fmt"

// PanicError is the failure a job carries when its runner panicked: the
// recovered value plus the goroutine stack at the panic site. The manager
// converts runner panics into this error so a crashing simulation becomes a
// failed job — with enough context to debug it — instead of killing the
// daemon for every user.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("jobs: runner panicked: %v\n%s", e.Value, e.Stack)
}
