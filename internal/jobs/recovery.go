package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"critload/internal/journal"
)

// RecoveredError is the failure attached to a journalled job the restarted
// daemon could not carry forward: its spec no longer decodes or validates,
// or the recovery queue was full. The job stays visible (failed) so the
// client that submitted it before the crash learns its fate instead of
// getting a 404.
type RecoveredError struct {
	// State is the job's last journalled state before the crash.
	State State
	// Reason says why the job could not be resumed.
	Reason string
}

func (e *RecoveredError) Error() string {
	return fmt.Sprintf("jobs: not recoverable from state %q: %s", e.State, e.Reason)
}

// RecoveryInfo summarises what the startup journal replay did; the daemon
// surfaces it on /healthz.
type RecoveryInfo struct {
	// Enabled is true when the manager runs with a journal.
	Enabled bool `json:"enabled"`
	// Records is the number of journal records replayed.
	Records uint64 `json:"records_replayed"`
	// TruncatedBytes and DroppedSegments describe the torn tail the replay
	// had to abandon (both zero after a clean shutdown).
	TruncatedBytes  int64 `json:"truncated_bytes"`
	DroppedSegments int   `json:"dropped_segments"`
	// Jobs is the number of jobs rebuilt from the journal.
	Jobs int `json:"jobs"`
	// Requeued counts jobs that were queued or running at the crash and
	// were re-enqueued for (idempotent) re-execution.
	Requeued int `json:"requeued"`
	// CompletedFromStore counts jobs that were live at the crash but whose
	// result was already durable, so they completed without re-running.
	CompletedFromStore int `json:"completed_from_store"`
	// ResultsMissing counts completed jobs whose stored result could not
	// be found (evicted or never durable); they stay done, without a
	// result payload.
	ResultsMissing int `json:"results_missing"`
	// Unrecoverable counts jobs failed with a *RecoveredError.
	Unrecoverable int `json:"unrecoverable"`
}

// replayedJob is one job's state as reconstructed from the journal.
type replayedJob struct {
	id      string
	spec    Spec
	specErr error
	state   State
	errMsg  string
	created time.Time
	started time.Time
	ended   time.Time
}

// replayState folds journal records into per-job state. Transitions are
// monotonic — queued, then running, then exactly one terminal state — and
// records that would violate that (or refer to an unknown job) are
// ignored: the journal is evidence, not authority, and replaying any
// prefix of it must yield a consistent state.
type replayState struct {
	jobs    map[string]*replayedJob
	order   []string // submission order
	maxID   int64
	records uint64
}

func newReplayState() *replayState {
	return &replayState{jobs: map[string]*replayedJob{}}
}

// apply folds one record. It never returns an error: a malformed payload
// degrades the one job it describes, not the whole replay.
func (rs *replayState) apply(r journal.Record) error {
	rs.records++
	switch r.Type {
	case journal.TypeSubmitted:
		if _, ok := rs.jobs[r.ID]; ok {
			return nil // duplicate submission: first one wins
		}
		rj := &replayedJob{id: r.ID, state: StateQueued, created: r.At}
		if err := json.Unmarshal(r.Data, &rj.spec); err != nil {
			rj.specErr = err
		} else if err := rj.spec.Validate(); err != nil {
			rj.specErr = err
		}
		var n int64
		if _, err := fmt.Sscanf(r.ID, "j%d", &n); err == nil && n > rs.maxID {
			rs.maxID = n
		}
		rs.jobs[r.ID] = rj
		rs.order = append(rs.order, r.ID)
	case journal.TypeStarted:
		if rj := rs.jobs[r.ID]; rj != nil && rj.state == StateQueued {
			rj.state, rj.started = StateRunning, r.At
		}
	case journal.TypeProgressed:
		// Heartbeats carry no state; the timestamp alone says the job was
		// still alive, which TypeStarted already established.
	case journal.TypeCompleted:
		rs.terminal(r.ID, StateDone, "", r.At)
	case journal.TypeCancelled:
		rs.terminal(r.ID, StateCancelled, "", r.At)
	case journal.TypeFailed:
		rs.terminal(r.ID, StateFailed, string(r.Data), r.At)
	}
	return nil
}

func (rs *replayState) terminal(id string, s State, msg string, at time.Time) {
	rj := rs.jobs[id]
	if rj == nil || rj.state.Terminal() {
		return
	}
	rj.state, rj.errMsg, rj.ended = s, msg, at
}

// recover rebuilds the manager's registry from a replayed journal, then
// compacts the journal to the resulting state. Terminal jobs come back as
// history (done jobs pull their result from the store); live jobs complete
// from the store when their result is already durable and are re-enqueued
// otherwise — re-execution is safe because results are content-addressed.
// Jobs that cannot be carried forward fail with a *RecoveredError. The
// whole pass holds the manager lock, so re-enqueued executions cannot
// start (or journal) until the final compaction has run.
func (m *Manager) recover(rs *replayState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recovering = true
	defer func() { m.recovering = false }()

	m.nextID = rs.maxID
	info := &m.recovery
	info.Enabled = true
	info.Records = rs.records
	jst := m.journal.Stats()
	info.TruncatedBytes = jst.Replay.TruncatedBytes
	info.DroppedSegments = jst.Replay.DroppedSegments

	for _, id := range rs.order {
		rj := rs.jobs[id]
		j := &job{
			id: id, spec: rj.spec, key: rj.spec.Key(), state: StateQueued,
			created: rj.created, recovered: true, done: make(chan struct{}),
		}
		m.registerLocked(j)
		m.c.recovered.Add(1)
		info.Jobs++
		switch {
		case rj.specErr != nil:
			m.finalizeLocked(j, StateFailed, nil,
				&RecoveredError{State: rj.state, Reason: "journalled spec unusable: " + rj.specErr.Error()})
			info.Unrecoverable++
		case rj.state == StateDone:
			res, ok := m.resultFromStore(j.key)
			if !ok {
				info.ResultsMissing++
			}
			m.finalizeLocked(j, StateDone, res, nil)
		case rj.state == StateFailed:
			m.finalizeLocked(j, StateFailed, nil, errors.New(rj.errMsg))
		case rj.state == StateCancelled:
			m.finalizeLocked(j, StateCancelled, nil, context.Canceled)
		default: // queued or running at the crash
			if res, ok := m.resultFromStore(j.key); ok {
				j.cacheHit = true
				m.c.diskHits.Add(1)
				m.finalizeLocked(j, StateDone, res, nil)
				info.CompletedFromStore++
			} else {
				m.requeueLocked(j, rj, info)
				continue // keep the fresh queue timestamps
			}
		}
		// finalizeLocked stamps wall-clock now; restore the journalled
		// times so queued/wall durations survive the restart.
		j.created = rj.created
		if !rj.started.IsZero() {
			j.started = rj.started
		} else {
			j.started = rj.created
		}
		if !rj.ended.IsZero() {
			j.finished = rj.ended
		}
	}

	if err := m.journal.Compact(m.liveRecordsLocked()); err != nil {
		m.c.journalErrors.Add(1)
	}
}

// requeueLocked re-enqueues a job that was live at the crash, joining an
// execution already re-created for the same key (the singleflight rule
// holds across restarts too). A full queue fails the job rather than the
// startup.
func (m *Manager) requeueLocked(j *job, rj *replayedJob, info *RecoveryInfo) {
	if e, ok := m.inflight[j.key]; ok {
		j.exec = e
		e.jobs = append(e.jobs, j)
		m.c.deduped.Add(1)
		info.Requeued++
		return
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if j.spec.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.spec.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	e := &execution{spec: j.spec, key: j.key, ctx: ctx, cancel: cancel, jobs: []*job{j}}
	if err := m.pool.TrySubmit(func() { m.run(e) }); err != nil {
		cancel()
		m.finalizeLocked(j, StateFailed, nil,
			&RecoveredError{State: rj.state, Reason: "re-enqueue failed: " + err.Error()})
		info.Unrecoverable++
		return
	}
	j.exec = e
	m.inflight[j.key] = e
	info.Requeued++
}
