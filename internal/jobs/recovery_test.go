package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"critload/internal/journal"
)

// durableConfig is a manager configuration with the durable tier enabled
// on dir: a journal under dir/journal and a result store under dir/results.
// NoSync keeps the tests fast; the crash harness exercises real fsyncs.
func durableConfig(t *testing.T, dir string, runner Runner) Config {
	t.Helper()
	rs, err := OpenResultStore(filepath.Join(dir, "results"), 0)
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	return Config{
		Workers: 2, Runner: runner,
		JournalDir: filepath.Join(dir, "journal"), JournalNoSync: true,
		Results: rs,
	}
}

// writeJournal writes records directly to dir's journal, simulating the
// aftermath of a crash (no compaction, arbitrary live state).
func writeJournal(t *testing.T, dir string, recs []journal.Record) {
	t.Helper()
	j, err := journal.Open(dir, journal.Options{NoSync: true}, nil)
	if err != nil {
		t.Fatalf("Open journal: %v", err)
	}
	for _, r := range recs {
		if err := j.Append(r, false); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func submittedRec(t *testing.T, id string, s Spec) journal.Record {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return journal.Record{Type: journal.TypeSubmitted, At: time.Now(), ID: id, Data: b}
}

// TestRecoveryRestoresHistory is the round trip: a durable manager runs
// jobs, shuts down cleanly, and a second manager over the same directory
// reports the same jobs — same ids, same states, byte-identical results —
// and serves repeat submissions from disk without re-simulating.
func TestRecoveryRestoresHistory(t *testing.T) {
	dir := t.TempDir()
	m1 := newManager(t, durableConfig(t, dir, instantRunner))
	a, err := m1.Submit(spec("aes"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m1.Submit(spec("bfs"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range []string{a.ID, b.ID} {
		if info, err := m1.Wait(ctx, id); err != nil || info.State != StateDone {
			t.Fatalf("job %s: %+v, %v", id, info, err)
		}
	}
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := newManager(t, durableConfig(t, dir, instantRunner))
	rec := m2.Recovery()
	if !rec.Enabled || rec.Jobs != 2 || rec.Requeued != 0 || rec.ResultsMissing != 0 || rec.Unrecoverable != 0 {
		t.Fatalf("recovery info = %+v", rec)
	}
	for id, workload := range map[string]string{a.ID: "aes", b.ID: "bfs"} {
		info, err := m2.Get(id)
		if err != nil {
			t.Fatalf("recovered job %s lost: %v", id, err)
		}
		if info.State != StateDone || !info.Recovered || info.Spec.Workload != workload {
			t.Fatalf("recovered job %s = %+v", id, info)
		}
		// The recovered result is the stored raw JSON; it must serialize
		// byte-identically to the original in-memory result.
		raw, ok := info.Result.(json.RawMessage)
		if !ok {
			t.Fatalf("recovered result has type %T", info.Result)
		}
		want, _ := json.Marshal(workload + "-result")
		if !bytes.Equal(raw, want) {
			t.Fatalf("recovered result %s, want %s", raw, want)
		}
	}
	if st := m2.Stats(); st.Recovered != 2 {
		t.Fatalf("stats = %+v, want 2 recovered", st)
	}

	// A repeat submission is a disk-warmed cache hit, not a re-simulation.
	again, err := m2.Submit(spec("aes"))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.State != StateDone {
		t.Fatalf("repeat submission = %+v, want immediate cache hit", again)
	}
	if st := m2.Stats(); st.Executions != 0 {
		t.Fatalf("recovery re-simulated: %+v", st)
	}
	// Ids keep ascending across the restart: no reuse.
	if again.ID == a.ID || again.ID == b.ID || again.ID <= b.ID {
		t.Fatalf("id %s reused or regressed (prior max %s)", again.ID, b.ID)
	}
}

// TestRecoveryRestoresFailedAndCancelled covers the other terminal states:
// the recorded error text and the cancellation both survive the restart.
func TestRecoveryRestoresFailedAndCancelled(t *testing.T) {
	dir := t.TempDir()
	br := newBlockingRunner()
	runner := func(ctx context.Context, s Spec) (any, error) {
		if s.Workload == "bad" {
			return nil, errors.New("simulated failure")
		}
		return br.run(ctx, s)
	}
	cfg := durableConfig(t, dir, runner)
	cfg.Workers = 1
	m1 := newManager(t, cfg)

	failed, err := m1.Submit(spec("bad"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if info, _ := m1.Wait(ctx, failed.ID); info.State != StateFailed {
		t.Fatalf("job = %+v, want failed", info)
	}
	slow, err := m1.Submit(spec("slow"))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m1.Submit(spec("victim"))
	if err != nil {
		t.Fatal(err)
	}
	if info, err := m1.Cancel(victim.ID); err != nil || info.State != StateCancelled {
		t.Fatalf("cancel = %+v, %v", info, err)
	}
	close(br.release)
	if info, _ := m1.Wait(ctx, slow.ID); info.State != StateDone {
		t.Fatalf("job = %+v, want done", info)
	}
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := newManager(t, durableConfig(t, dir, instantRunner))
	checks := map[string]struct {
		state State
		errIs string
	}{
		failed.ID: {StateFailed, "simulated failure"},
		victim.ID: {StateCancelled, ""},
		slow.ID:   {StateDone, ""},
	}
	for id, want := range checks {
		info, err := m2.Get(id)
		if err != nil {
			t.Fatalf("recovered job %s lost: %v", id, err)
		}
		if info.State != want.state || !info.Recovered {
			t.Fatalf("job %s = %+v, want recovered %s", id, info, want.state)
		}
		if want.errIs != "" && !strings.Contains(info.Error, want.errIs) {
			t.Fatalf("job %s error %q, want %q", id, info.Error, want.errIs)
		}
	}
}

// TestRecoveryRequeuesLiveJobs is the heart of crash recovery: jobs that
// were queued or running when the process died are re-enqueued and run to
// completion, with the singleflight rule deduplicating identical specs
// across the restart boundary.
func TestRecoveryRequeuesLiveJobs(t *testing.T) {
	dir := t.TempDir()
	recs := []journal.Record{
		submittedRec(t, "j00000001", spec("lava")),
		{Type: journal.TypeStarted, At: time.Now(), ID: "j00000001"},
		submittedRec(t, "j00000002", spec("srad")),
		submittedRec(t, "j00000003", spec("lava")), // same spec as j1
	}
	writeJournal(t, filepath.Join(dir, "journal"), recs)

	m := newManager(t, durableConfig(t, dir, instantRunner))
	rec := m.Recovery()
	if rec.Jobs != 3 || rec.Requeued != 3 || rec.Unrecoverable != 0 {
		t.Fatalf("recovery info = %+v", rec)
	}
	ctx := context.Background()
	for _, id := range []string{"j00000001", "j00000002", "j00000003"} {
		info, err := m.Wait(ctx, id)
		if err != nil || info.State != StateDone || !info.Recovered {
			t.Fatalf("requeued job %s = %+v, %v", id, info, err)
		}
	}
	// j1 and j3 share a key: one execution covers both.
	if st := m.Stats(); st.Executions != 2 || st.Deduped != 1 {
		t.Fatalf("stats = %+v, want 2 executions, 1 dedup", st)
	}
}

// TestRecoveryCompletesFromStore: a job live at the crash whose result is
// already durable (an identical spec completed before) finishes without
// touching the runner.
func TestRecoveryCompletesFromStore(t *testing.T) {
	dir := t.TempDir()
	s := spec("nw")
	rs, err := OpenResultStore(filepath.Join(dir, "results"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Put(s.Key(), "nw-result"); err != nil {
		t.Fatal(err)
	}
	writeJournal(t, filepath.Join(dir, "journal"), []journal.Record{
		submittedRec(t, "j00000001", s),
		{Type: journal.TypeStarted, At: time.Now(), ID: "j00000001"},
	})

	poisoned := func(context.Context, Spec) (any, error) {
		return nil, errors.New("runner must not be invoked")
	}
	m := newManager(t, durableConfig(t, dir, poisoned))
	info, err := m.Get("j00000001")
	if err != nil || info.State != StateDone {
		t.Fatalf("job = %+v, %v", info, err)
	}
	rec := m.Recovery()
	if rec.CompletedFromStore != 1 || rec.Requeued != 0 {
		t.Fatalf("recovery info = %+v", rec)
	}
	if st := m.Stats(); st.Executions != 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRecoveryResultMissing: a completed job whose stored result vanished
// (evicted, or never durable) stays done — history is not rewritten — but
// the gap is counted and the result payload is absent.
func TestRecoveryResultMissing(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, filepath.Join(dir, "journal"), []journal.Record{
		submittedRec(t, "j00000001", spec("2mm")),
		{Type: journal.TypeCompleted, At: time.Now(), ID: "j00000001"},
	})
	m := newManager(t, durableConfig(t, dir, instantRunner))
	info, err := m.Get("j00000001")
	if err != nil || info.State != StateDone || info.Result != nil {
		t.Fatalf("job = %+v, %v", info, err)
	}
	if rec := m.Recovery(); rec.ResultsMissing != 1 {
		t.Fatalf("recovery info = %+v", rec)
	}
}

// TestRecoveryUnusableSpecFails: a submitted record whose payload no longer
// decodes or validates becomes a visible failed job, not a 404 and not a
// startup error.
func TestRecoveryUnusableSpecFails(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, filepath.Join(dir, "journal"), []journal.Record{
		{Type: journal.TypeSubmitted, At: time.Now(), ID: "j00000001", Data: []byte("not a spec")},
		submittedRec(t, "j00000002", Spec{Workload: "x", Mode: "no-such-mode"}),
	})
	m := newManager(t, durableConfig(t, dir, instantRunner))
	for _, id := range []string{"j00000001", "j00000002"} {
		info, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %s lost: %v", id, err)
		}
		if info.State != StateFailed || !strings.Contains(info.Error, "not recoverable") {
			t.Fatalf("job %s = %+v, want RecoveredError failure", id, info)
		}
	}
	if rec := m.Recovery(); rec.Unrecoverable != 2 {
		t.Fatalf("recovery info = %+v", rec)
	}
	// The sentinel is a typed error usable with errors.As.
	var re *RecoveredError
	err := error(&RecoveredError{State: StateQueued, Reason: "x"})
	if !errors.As(err, &re) || re.State != StateQueued {
		t.Fatalf("RecoveredError does not satisfy errors.As")
	}
}

// TestRecoveryQueueFull: more live jobs than the restarted queue can hold
// fail with RecoveredError instead of wedging or crashing the startup.
func TestRecoveryQueueFull(t *testing.T) {
	dir := t.TempDir()
	var recs []journal.Record
	for i := 1; i <= 6; i++ {
		recs = append(recs, submittedRec(t, fmt.Sprintf("j%08d", i), spec(fmt.Sprintf("wl%d", i))))
	}
	writeJournal(t, filepath.Join(dir, "journal"), recs)

	br := newBlockingRunner()
	cfg := durableConfig(t, dir, br.run)
	cfg.Workers, cfg.QueueDepth = 1, 2
	m := newManager(t, cfg)
	rec := m.Recovery()
	if rec.Requeued+rec.Unrecoverable != 6 || rec.Unrecoverable < 3 {
		t.Fatalf("recovery info = %+v, want 6 jobs with >=3 unrecoverable", rec)
	}
	close(br.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	failed := 0
	for i := 1; i <= 6; i++ {
		info, err := m.Wait(ctx, fmt.Sprintf("j%08d", i))
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		switch info.State {
		case StateDone:
		case StateFailed:
			failed++
			if !strings.Contains(info.Error, "not recoverable") {
				t.Fatalf("unexpected failure: %+v", info)
			}
		default:
			t.Fatalf("job %s stuck in %s", info.ID, info.State)
		}
	}
	if failed != rec.Unrecoverable {
		t.Fatalf("%d failed jobs vs %d unrecoverable", failed, rec.Unrecoverable)
	}
}

// TestCleanShutdownCompacts: Close leaves a single compacted segment whose
// replay is exactly the retained jobs' submitted+terminal record pairs.
func TestCleanShutdownCompacts(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, durableConfig(t, dir, instantRunner))
	ctx := context.Background()
	for _, w := range []string{"aes", "bfs", "gauss"} {
		info, err := m.Submit(spec(w))
		if err != nil {
			t.Fatal(err)
		}
		if info, err = m.Wait(ctx, info.ID); err != nil || info.State != StateDone {
			t.Fatalf("job = %+v, %v", info, err)
		}
	}
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st, err := journal.Replay(filepath.Join(dir, "journal"), nil)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Records != 6 || st.TruncatedBytes != 0 {
		t.Fatalf("compacted journal = %+v, want 6 clean records", st)
	}
}

// TestReplayAnyPrefixConsistent is the property test: for a journal
// produced by a real manager under concurrent submitters, replaying ANY
// record prefix yields a consistent state — every job's transitions are
// monotonic (queued -> running -> exactly one terminal state), specs never
// mutate, and jobs never disappear as the prefix grows. Run under -race
// this also hammers the Submit/run/Cancel journaling paths concurrently.
func TestReplayAnyPrefixConsistent(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, durableConfig(t, dir, instantRunner))
	var wg sync.WaitGroup
	ctx := context.Background()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// Overlapping workloads across goroutines exercise dedup and
				// cache paths; every third job is cancelled immediately.
				info, err := m.Submit(spec(fmt.Sprintf("wl%d", (g+i)%5)))
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if i%3 == 0 {
					m.Cancel(info.ID)
				}
				m.Wait(ctx, info.ID)
			}
		}(g)
	}
	wg.Wait()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen the journal pre-compaction state? Close compacted it; the
	// property must hold for the compacted stream too — and for every
	// prefix of it.
	var recs []journal.Record
	if _, err := journal.Replay(filepath.Join(dir, "journal"), func(r journal.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no records to test")
	}

	rank := func(s State) int {
		switch s {
		case StateQueued:
			return 0
		case StateRunning:
			return 1
		default:
			return 2
		}
	}
	prev := newReplayState()
	for i := 0; i <= len(recs); i++ {
		cur := newReplayState()
		for _, r := range recs[:i] {
			if err := cur.apply(r); err != nil {
				t.Fatalf("apply: %v", err)
			}
		}
		for id, pj := range prev.jobs {
			cj := cur.jobs[id]
			if cj == nil {
				t.Fatalf("prefix %d: job %s disappeared", i, id)
			}
			if rank(cj.state) < rank(pj.state) {
				t.Fatalf("prefix %d: job %s went backwards %s -> %s", i, id, pj.state, cj.state)
			}
			if pj.state.Terminal() && cj.state != pj.state {
				t.Fatalf("prefix %d: job %s changed terminal state %s -> %s", i, id, pj.state, cj.state)
			}
			if cj.spec != pj.spec {
				t.Fatalf("prefix %d: job %s spec mutated", i, id)
			}
		}
		prev = cur
	}
}
