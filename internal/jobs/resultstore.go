package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ResultStoreVersion identifies the on-disk result encoding. Results are
// stored as the job result's canonical JSON, so the version only needs to
// move when the framing itself changes; files from a different version
// are treated as absent and deleted.
const ResultStoreVersion = 1

// resultMagic opens every result file.
const resultMagic = "CRITRES\x00"

// resultExt is the result file suffix.
const resultExt = ".res"

// Result-store sentinel errors; both cause the store to drop the file so
// it is never retried.
var (
	// ErrResultCorrupt marks a truncated or bit-flipped result file.
	ErrResultCorrupt = errors.New("jobs: corrupt result file")
	// ErrResultVersion marks a file written by a different store version.
	ErrResultVersion = errors.New("jobs: result store version mismatch")
)

// ResultStoreStats is a point-in-time snapshot of store effectiveness
// counters, exported on /metrics as critloadd_resultstore_*.
type ResultStoreStats struct {
	Hits      uint64 `json:"hits"`      // Get calls that returned a stored result
	Misses    uint64 `json:"misses"`    // Get calls that found nothing
	Puts      uint64 `json:"puts"`      // results written
	Evictions uint64 `json:"evictions"` // files removed by the byte budget
	Dropped   uint64 `json:"dropped"`   // corrupt/mismatched files deleted on read
	Files     int    `json:"files"`     // result files currently on disk
	Bytes     int64  `json:"bytes"`     // bytes currently on disk
}

// ResultStore is the on-disk, content-addressed half of the result cache:
// one file per completed spec, named by the spec's SHA-256 Key, written
// atomically (temp file + rename) and evicted least-recently-used against
// a byte budget (reads refresh mtime). It mirrors the checkpoint store's
// discipline — every read validates an integrity hash, corrupt files are
// deleted and treated as absent — so a crash mid-write can never poison a
// recovered daemon. Safe for concurrent use; concurrent processes sharing
// a directory are safe too, because writes are atomic renames.
type ResultStore struct {
	dir    string
	budget int64 // bytes; <= 0 disables eviction

	mu                                     sync.Mutex
	hits, misses, puts, evictions, dropped uint64
}

// OpenResultStore creates (if needed) and opens a result store directory.
// budgetBytes bounds the on-disk footprint; <= 0 means unlimited.
func OpenResultStore(dir string, budgetBytes int64) (*ResultStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: empty result store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: open result store: %w", err)
	}
	return &ResultStore{dir: dir, budget: budgetBytes}, nil
}

// Dir returns the store directory.
func (s *ResultStore) Dir() string { return s.dir }

func (s *ResultStore) path(key Key) string {
	return filepath.Join(s.dir, key.String()+resultExt)
}

// encodeResultFile frames a result payload: magic, version, payload, and
// a trailing SHA-256 over everything before it.
func encodeResultFile(payload []byte) []byte {
	buf := make([]byte, 0, len(resultMagic)+4+8+len(payload)+sha256.Size)
	buf = append(buf, resultMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ResultStoreVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decodeResultFile validates a framed result file and returns its payload.
// The integrity hash is checked before anything else is trusted.
func decodeResultFile(b []byte) ([]byte, error) {
	headerLen := len(resultMagic) + 4 + 8
	if len(b) < headerLen+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid file", ErrResultCorrupt, len(b))
	}
	if string(b[:len(resultMagic)]) != resultMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrResultCorrupt)
	}
	body, sum := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if got := sha256.Sum256(body); string(got[:]) != string(sum) {
		return nil, fmt.Errorf("%w: integrity hash mismatch", ErrResultCorrupt)
	}
	off := len(resultMagic)
	if v := binary.LittleEndian.Uint32(b[off:]); v != ResultStoreVersion {
		return nil, fmt.Errorf("%w: file version %d, store version %d", ErrResultVersion, v, ResultStoreVersion)
	}
	off += 4
	payloadLen := binary.LittleEndian.Uint64(b[off:])
	off += 8
	if payloadLen != uint64(len(body)-off) {
		return nil, fmt.Errorf("%w: payload length %d does not match file size", ErrResultCorrupt, payloadLen)
	}
	return body[off:], nil
}

// Put serializes v to its canonical JSON and writes it atomically under
// key. Results are content-addressed — an identical spec produces an
// identical result — so overwriting an existing file is a no-op.
func (s *ResultStore) Put(key Key, v any) error {
	path := s.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*"+resultExt+".partial")
	if err != nil {
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encodeResultFile(payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	// fsync before rename: the completed journal record that follows this
	// write must never refer to a result the filesystem could still lose.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	s.evict(path)
	return nil
}

// Get returns the stored result's JSON for key, or ok == false when the
// store holds nothing usable. Corrupt or version-mismatched files are
// deleted so they are never retried. The raw JSON is returned (not a
// decoded value): it re-serializes byte-identically to the original
// result, which is what the crash-recovery harness asserts.
func (s *ResultStore) Get(key Key) (json.RawMessage, bool) {
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		s.note(&s.misses)
		return nil, false
	}
	payload, err := decodeResultFile(b)
	if err != nil {
		os.Remove(s.path(key))
		s.note(&s.dropped)
		s.note(&s.misses)
		return nil, false
	}
	// Refresh mtime so LRU eviction tracks use, not just creation.
	now := time.Now()
	os.Chtimes(s.path(key), now, now)
	s.note(&s.hits)
	return json.RawMessage(payload), true
}

// Has reports whether a result file exists for key without validating it.
func (s *ResultStore) Has(key Key) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

func (s *ResultStore) note(counter *uint64) {
	s.mu.Lock()
	*counter++
	s.mu.Unlock()
}

// Stats returns current counters plus an on-disk scan.
func (s *ResultStore) Stats() ResultStoreStats {
	s.mu.Lock()
	st := ResultStoreStats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Evictions: s.evictions, Dropped: s.dropped,
	}
	s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return st
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), resultExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st.Files++
		st.Bytes += info.Size()
	}
	return st
}

// evict removes least-recently-used result files until the directory fits
// the byte budget, never removing the just-written file.
func (s *ResultStore) evict(keep string) {
	if s.budget <= 0 {
		return
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var total int64
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), resultExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{
			path: filepath.Join(s.dir, e.Name()), size: info.Size(), mtime: info.ModTime(),
		})
		total += info.Size()
	}
	if total <= s.budget {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.budget {
			return
		}
		if f.path == keep {
			continue
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.note(&s.evictions)
		}
	}
}
