package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testKey(n int) Key {
	return Spec{Workload: fmt.Sprintf("wl%d", n), Mode: ModeFunctional, Seed: int64(n)}.Key()
}

// fakeResult stands in for the server's RunResult: nested structure,
// numeric fields, slices — enough to catch serialization sloppiness.
type fakeResult struct {
	Workload string   `json:"workload"`
	Cycles   int64    `json:"cycles"`
	Counts   []uint64 `json:"counts"`
	Nested   struct {
		Hits uint64 `json:"hits"`
	} `json:"nested"`
}

func sampleResult(n int) *fakeResult {
	r := &fakeResult{Workload: fmt.Sprintf("wl%d", n), Cycles: int64(1000 * n), Counts: []uint64{1, 2, 3}}
	r.Nested.Hits = uint64(n)
	return r
}

func TestResultStoreRoundTrip(t *testing.T) {
	s, err := OpenResultStore(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	key := testKey(1)
	want := sampleResult(1)
	if err := s.Put(key, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	raw, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed a stored result")
	}
	// The stored JSON must be the value's canonical serialization: decoding
	// yields a deep-equal value, and re-marshalling yields identical bytes.
	var got fakeResult
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("stored payload does not decode: %v", err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	canonical, _ := json.Marshal(want)
	if !bytes.Equal(raw, canonical) {
		t.Fatalf("stored bytes differ from canonical JSON:\n got %s\nwant %s", raw, canonical)
	}
	if st := s.Stats(); st.Puts != 1 || st.Hits != 1 || st.Files != 1 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultStorePutIsIdempotent(t *testing.T) {
	s, err := OpenResultStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	for i := 0; i < 3; i++ {
		if err := s.Put(key, sampleResult(1)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.Puts != 1 || st.Files != 1 {
		t.Fatalf("repeated Put not a no-op: %+v", st)
	}
}

func TestResultStoreMiss(t *testing.T) {
	s, err := OpenResultStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(404)); ok {
		t.Fatal("Get hit on an empty store")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

// TestResultStoreCorruptionDropped mirrors the checkpoint-store suite: a
// truncated, bit-flipped or version-bumped file is deleted on read and
// reported as a miss — never an error, never stale data.
func TestResultStoreCorruptionDropped(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":      func(b []byte) []byte { return b[:len(b)/2] },
		"bit flip":       func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"bad magic":      func(b []byte) []byte { b[0] ^= 1; return b },
		"empty file":     func([]byte) []byte { return nil },
		"future version": func(b []byte) []byte { b[len(resultMagic)]++; return b },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s, err := OpenResultStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			key := testKey(7)
			if err := s.Put(key, sampleResult(7)); err != nil {
				t.Fatal(err)
			}
			path := s.path(key)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); ok {
				t.Fatal("Get returned a corrupt result")
			}
			if s.Has(key) {
				t.Fatal("corrupt file not deleted")
			}
			if st := s.Stats(); st.Dropped != 1 {
				t.Fatalf("stats = %+v, want 1 dropped", st)
			}
			// "future version" must specifically be the version sentinel.
			if name == "future version" {
				if _, err := decodeResultFile(corrupt(encodeResultFile([]byte("{}")))); err == nil {
					t.Fatal("decode accepted a foreign version")
				}
			}
		})
	}
}

// TestResultStoreEvictionUnderBudget fills the store past its byte budget
// and checks the least-recently-used results are evicted while the
// freshest (and the just-written) survive.
func TestResultStoreEvictionUnderBudget(t *testing.T) {
	dir := t.TempDir()
	// Size the budget for roughly three files.
	probe := encodeResultFile(mustJSON(t, sampleResult(0)))
	budget := int64(3*len(probe) + len(probe)/2)
	s, err := OpenResultStore(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), sampleResult(0)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		// Space mtimes out so LRU ordering is unambiguous on coarse
		// filesystem timestamps.
		past := time.Now().Add(time.Duration(i-n) * time.Hour)
		os.Chtimes(s.path(testKey(i)), past, past)
	}
	s.evict(s.path(testKey(n - 1)))
	st := s.Stats()
	if st.Bytes > budget {
		t.Fatalf("store %d bytes over budget %d after eviction", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if !s.Has(testKey(n - 1)) {
		t.Fatal("just-written result evicted")
	}
	if s.Has(testKey(0)) {
		t.Fatal("oldest result survived eviction")
	}
}

// TestResultStoreConcurrentAccess hammers Put/Get/eviction from many
// goroutines under -race: no data race, no error, and every Get returns
// either a miss or a fully valid payload.
func TestResultStoreConcurrentAccess(t *testing.T) {
	s, err := OpenResultStore(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := testKey(i % 10)
				if err := s.Put(k, sampleResult(i%10)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if raw, ok := s.Get(k); ok {
					var got fakeResult
					if err := json.Unmarshal(raw, &got); err != nil {
						t.Errorf("concurrent Get returned invalid JSON: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// The store itself must still be coherent.
	if st := s.Stats(); st.Bytes < 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestResultStoreIgnoresForeignFiles keeps the scan and eviction away
// from files the store does not own (e.g. the journal living next door).
func TestResultStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "foreign.dat"), make([]byte, 1<<12), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenResultStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), sampleResult(1)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Files != 1 {
		t.Fatalf("foreign file counted: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "foreign.dat")); err != nil {
		t.Fatal("eviction removed a foreign file")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
