package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"critload/internal/gpu"
)

// Mode selects which engine executes a job.
type Mode string

// Job modes: a functional run on the emulator (whole-application profiler
// statistics) or a timing run on the cycle-level simulator.
const (
	ModeFunctional Mode = "functional"
	ModeTiming     Mode = "timing"
)

// Spec describes one simulation request. Identical specs produce identical
// results — the simulator is deterministic for a fixed (workload, size,
// seed, instruction budget, GPU configuration) tuple — which is what makes
// results content-addressable.
type Spec struct {
	// Workload is the Table I benchmark name.
	Workload string `json:"workload"`
	// Mode selects the functional emulator or the timing simulator.
	Mode Mode `json:"mode"`
	// Size overrides the workload's default problem size (0 = default).
	Size int `json:"size,omitempty"`
	// Seed drives input generation.
	Seed int64 `json:"seed,omitempty"`
	// MaxWarpInsts bounds a timing run's measurement window (0 = complete).
	MaxWarpInsts uint64 `json:"max_warp_insts,omitempty"`
	// MaxCycles bounds a timing run's cycle count (0 = engine default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// GPU overrides the Table II device configuration when non-nil.
	GPU *gpu.Config `json:"gpu,omitempty"`
	// Timeout bounds the job's wall-clock execution (0 = none). It is
	// deliberately excluded from the cache key: it bounds the run but
	// never alters the result a successful run produces.
	Timeout time.Duration `json:"timeout,omitempty"`
	// ReuseCheckpoints lets a timing run warm-start from (and contribute to)
	// the daemon's checkpoint store when one is configured. Like Timeout it
	// is excluded from the cache key: warm starts are byte-identical to cold
	// runs — the difftest fifth oracle enforces it — so the flag changes how
	// fast a result arrives, never the result.
	ReuseCheckpoints bool `json:"reuse_checkpoints,omitempty"`
}

// Validate checks the spec against the registered workloads and modes.
func (s Spec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("jobs: spec has no workload")
	}
	if s.Mode != ModeFunctional && s.Mode != ModeTiming {
		return fmt.Errorf("jobs: unknown mode %q", s.Mode)
	}
	if s.Size < 0 {
		return fmt.Errorf("jobs: negative size %d", s.Size)
	}
	if s.Timeout < 0 {
		return fmt.Errorf("jobs: negative timeout %s", s.Timeout)
	}
	if s.GPU != nil {
		if err := s.GPU.Validate(); err != nil {
			return fmt.Errorf("jobs: gpu config: %w", err)
		}
	}
	return nil
}

// Key is the content address of a spec's result: a SHA-256 digest over every
// result-affecting field.
type Key [sha256.Size]byte

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyMaterial is the canonical serialization hashed into a Key. It is a
// separate struct so that adding result-neutral fields to Spec (Timeout,
// priorities, ...) cannot silently change existing keys.
type keyMaterial struct {
	Workload     string      `json:"workload"`
	Mode         Mode        `json:"mode"`
	Size         int         `json:"size"`
	Seed         int64       `json:"seed"`
	MaxWarpInsts uint64      `json:"max_warp_insts"`
	MaxCycles    int64       `json:"max_cycles"`
	GPU          *gpu.Config `json:"gpu,omitempty"`
}

// Key derives the spec's content address. Functional runs ignore the timing
// machinery, so their keys deliberately exclude the instruction budget and
// GPU configuration: a functional result is reusable across those knobs.
func (s Spec) Key() Key {
	m := keyMaterial{Workload: s.Workload, Mode: s.Mode, Size: s.Size, Seed: s.Seed}
	if s.Mode == ModeTiming {
		m.MaxWarpInsts = s.MaxWarpInsts
		m.MaxCycles = s.MaxCycles
		m.GPU = s.GPU
	}
	b, err := json.Marshal(m)
	if err != nil {
		// keyMaterial is plain data; marshalling cannot fail.
		panic(fmt.Sprintf("jobs: key material: %v", err))
	}
	return sha256.Sum256(b)
}
