package jobs

import (
	"testing"
	"time"

	"critload/internal/gpu"
)

func TestSpecKeyDerivation(t *testing.T) {
	base := Spec{Workload: "bfs", Mode: ModeTiming, Size: 1024, Seed: 7, MaxWarpInsts: 400_000}
	cfg := gpu.DefaultConfig()
	bigger := cfg
	bigger.NumSMs = 28

	tests := []struct {
		name string
		a, b Spec
		same bool
	}{
		{"identical specs", base, base, true},
		{"timeout excluded from key",
			base, with(base, func(s *Spec) { s.Timeout = time.Minute }), true},
		{"different workload",
			base, with(base, func(s *Spec) { s.Workload = "sssp" }), false},
		{"different mode",
			base, with(base, func(s *Spec) { s.Mode = ModeFunctional }), false},
		{"different size",
			base, with(base, func(s *Spec) { s.Size = 2048 }), false},
		{"different seed",
			base, with(base, func(s *Spec) { s.Seed = 8 }), false},
		{"different instruction budget",
			base, with(base, func(s *Spec) { s.MaxWarpInsts = 100 }), false},
		{"different cycle bound",
			base, with(base, func(s *Spec) { s.MaxCycles = 1000 }), false},
		{"explicit default GPU differs from nil",
			base, with(base, func(s *Spec) { s.GPU = &cfg }), false},
		{"different GPU configs",
			with(base, func(s *Spec) { s.GPU = &cfg }),
			with(base, func(s *Spec) { s.GPU = &bigger }), false},
		{"functional runs ignore the timing knobs",
			Spec{Workload: "bfs", Mode: ModeFunctional, Size: 1024, Seed: 7},
			Spec{Workload: "bfs", Mode: ModeFunctional, Size: 1024, Seed: 7,
				MaxWarpInsts: 9, MaxCycles: 9, GPU: &bigger},
			true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ka, kb := tt.a.Key(), tt.b.Key()
			if (ka == kb) != tt.same {
				t.Errorf("keys %s / %s: equal=%v, want %v", ka, kb, ka == kb, tt.same)
			}
		})
	}
}

func with(s Spec, mut func(*Spec)) Spec {
	mut(&s)
	return s
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid functional", Spec{Workload: "bfs", Mode: ModeFunctional}, true},
		{"valid timing", Spec{Workload: "2mm", Mode: ModeTiming, Size: 32}, true},
		{"missing workload", Spec{Mode: ModeTiming}, false},
		{"unknown mode", Spec{Workload: "bfs", Mode: "warp-speed"}, false},
		{"negative size", Spec{Workload: "bfs", Mode: ModeTiming, Size: -1}, false},
		{"negative timeout", Spec{Workload: "bfs", Mode: ModeTiming, Timeout: -time.Second}, false},
		{"bad gpu config", Spec{Workload: "bfs", Mode: ModeTiming, GPU: &gpu.Config{}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}
