package jobs

import (
	"context"
	"reflect"
	"testing"
	"time"

	"critload/internal/gpu"
)

func TestSpecKeyDerivation(t *testing.T) {
	base := Spec{Workload: "bfs", Mode: ModeTiming, Size: 1024, Seed: 7, MaxWarpInsts: 400_000}
	cfg := gpu.DefaultConfig()
	bigger := cfg
	bigger.NumSMs = 28

	tests := []struct {
		name string
		a, b Spec
		same bool
	}{
		{"identical specs", base, base, true},
		{"timeout excluded from key",
			base, with(base, func(s *Spec) { s.Timeout = time.Minute }), true},
		{"reuse_checkpoints excluded from key",
			base, with(base, func(s *Spec) { s.ReuseCheckpoints = true }), true},
		{"different workload",
			base, with(base, func(s *Spec) { s.Workload = "sssp" }), false},
		{"different mode",
			base, with(base, func(s *Spec) { s.Mode = ModeFunctional }), false},
		{"different size",
			base, with(base, func(s *Spec) { s.Size = 2048 }), false},
		{"different seed",
			base, with(base, func(s *Spec) { s.Seed = 8 }), false},
		{"different instruction budget",
			base, with(base, func(s *Spec) { s.MaxWarpInsts = 100 }), false},
		{"different cycle bound",
			base, with(base, func(s *Spec) { s.MaxCycles = 1000 }), false},
		{"explicit default GPU differs from nil",
			base, with(base, func(s *Spec) { s.GPU = &cfg }), false},
		{"different GPU configs",
			with(base, func(s *Spec) { s.GPU = &cfg }),
			with(base, func(s *Spec) { s.GPU = &bigger }), false},
		{"functional runs ignore the timing knobs",
			Spec{Workload: "bfs", Mode: ModeFunctional, Size: 1024, Seed: 7},
			Spec{Workload: "bfs", Mode: ModeFunctional, Size: 1024, Seed: 7,
				MaxWarpInsts: 9, MaxCycles: 9, GPU: &bigger},
			true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ka, kb := tt.a.Key(), tt.b.Key()
			if (ka == kb) != tt.same {
				t.Errorf("keys %s / %s: equal=%v, want %v", ka, kb, ka == kb, tt.same)
			}
		})
	}
}

func with(s Spec, mut func(*Spec)) Spec {
	mut(&s)
	return s
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid functional", Spec{Workload: "bfs", Mode: ModeFunctional}, true},
		{"valid timing", Spec{Workload: "2mm", Mode: ModeTiming, Size: 32}, true},
		{"missing workload", Spec{Mode: ModeTiming}, false},
		{"unknown mode", Spec{Workload: "bfs", Mode: "warp-speed"}, false},
		{"negative size", Spec{Workload: "bfs", Mode: ModeTiming, Size: -1}, false},
		{"negative timeout", Spec{Workload: "bfs", Mode: ModeTiming, Timeout: -time.Second}, false},
		{"bad gpu config", Spec{Workload: "bfs", Mode: ModeTiming, GPU: &gpu.Config{}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

// TestSpecKeyGoldenHashes pins exact digests for canonical specs. Cache
// keys address both the in-memory cache and the on-disk result store, so
// any change to keyMaterial — a renamed JSON tag, a reordered field, a
// newly-included knob — silently orphans every persisted result. This test
// turns that silent invalidation into a loud, deliberate decision.
func TestSpecKeyGoldenHashes(t *testing.T) {
	cfg := gpu.DefaultConfig()
	golden := []struct {
		spec Spec
		want string
	}{
		{Spec{Workload: "bfs", Mode: ModeFunctional, Size: 1024, Seed: 7},
			"42c42b6cdde2bf58fe45c853e44bba973441778f8c1a3d4e0e266cfca59f7591"},
		{Spec{Workload: "srad", Mode: ModeTiming, Size: 32, Seed: 3},
			"3d40d0d7b4fbc7eea13e8f8da834a3d9cf6a4e6b77b7a8401ac4a8cfb7699f38"},
		{Spec{Workload: "2mm", Mode: ModeTiming, Size: 64, Seed: 1, MaxWarpInsts: 400_000, MaxCycles: 1_000_000},
			"123dc40739d550d6ea748f2ab900f7014d2b564b82a4fcf2d77d67149b7e736a"},
		{Spec{Workload: "sssp", Mode: ModeTiming, Size: 512, Seed: 9, GPU: &cfg},
			"7c90f3b02dbbaae591a9c9f07b6bb27b76810e3289ad89f67a5dc5a62a9c6ef8"},
	}
	for _, g := range golden {
		if got := g.spec.Key().String(); got != g.want {
			t.Errorf("key for %s/%s changed:\n got %s\nwant %s\n(changing keyMaterial orphans every durably stored result — bump deliberately)",
				g.spec.Workload, g.spec.Mode, got, g.want)
		}
	}
}

// TestSpecKeyFieldAudit forces every Spec field to be classified: either
// it participates in the cache key (via keyMaterial) or it is explicitly
// excluded as result-neutral. Adding a field to Spec without deciding
// fails here rather than shipping a key that wrongly conflates — or
// wrongly splits — cached results.
func TestSpecKeyFieldAudit(t *testing.T) {
	keyed := map[string]bool{
		"Workload": true, "Mode": true, "Size": true, "Seed": true,
		"MaxWarpInsts": true, "MaxCycles": true, "GPU": true,
	}
	// Result-neutral by design: Timeout bounds a run without changing what
	// a successful run produces; ReuseCheckpoints changes how fast a
	// timing result arrives, never its bytes (difftest's fifth oracle).
	excluded := map[string]bool{
		"Timeout": true, "ReuseCheckpoints": true,
	}

	st := reflect.TypeOf(Spec{})
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if !keyed[name] && !excluded[name] {
			t.Errorf("Spec field %s is not classified: add it to keyMaterial or document why it is result-neutral, then update this audit", name)
		}
		delete(keyed, name)
		delete(excluded, name)
	}
	for name := range keyed {
		t.Errorf("audit lists keyed field %s that Spec no longer has", name)
	}
	for name := range excluded {
		t.Errorf("audit lists excluded field %s that Spec no longer has", name)
	}

	km := reflect.TypeOf(keyMaterial{})
	if got, want := km.NumField(), 7; got != want {
		t.Errorf("keyMaterial has %d fields, audit expects %d — keep the keyed set above in sync", got, want)
	}
	for i := 0; i < km.NumField(); i++ {
		name := km.Field(i).Name
		if _, ok := st.FieldByName(name); !ok {
			t.Errorf("keyMaterial field %s has no Spec counterpart", name)
		}
	}
}

// TestCacheHitAcrossNeutralKnobs is the manager-level regression for the
// exclusions: re-submitting a spec that differs only in Timeout or
// ReuseCheckpoints must be served from the result cache, not re-executed.
func TestCacheHitAcrossNeutralKnobs(t *testing.T) {
	runs := 0
	m := newManager(t, Config{Workers: 1, Runner: func(ctx context.Context, s Spec) (any, error) {
		runs++
		return s.Workload + "-result", nil
	}})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	first, err := m.Submit(Spec{Workload: "bfs", Mode: ModeFunctional, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}

	again, err := m.Submit(Spec{Workload: "bfs", Mode: ModeFunctional,
		Timeout: 2 * time.Minute, ReuseCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Wait(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Fatalf("neutral-knob resubmission missed the cache: %+v", info)
	}
	if runs != 1 {
		t.Fatalf("runner executed %d times, want 1", runs)
	}
}
