package jobs

import "sync/atomic"

// Stats is a point-in-time snapshot of a manager's counters, in the spirit
// of a connection pool's stats block: lifetime counters first, current-state
// gauges after. All fields are plain values; the live counters behind them
// are updated atomically and are safe to read concurrently with job traffic.
type Stats struct {
	// Lifetime counters.
	Submitted   uint64 `json:"submitted"`    // jobs accepted by Submit
	Completed   uint64 `json:"completed"`    // jobs finished successfully
	Failed      uint64 `json:"failed"`       // jobs finished with an error
	Cancelled   uint64 `json:"cancelled"`    // jobs cancelled before completing
	CacheHits   uint64 `json:"cache_hits"`   // submissions answered from the result cache
	CacheMisses uint64 `json:"cache_misses"` // submissions that scheduled or joined an execution
	Deduped     uint64 `json:"deduped"`      // submissions that joined an in-flight execution
	Executions  uint64 `json:"executions"`   // actual runner invocations
	Panics      uint64 `json:"panics"`       // runner panics recovered into failed jobs
	WallNanos   uint64 `json:"wall_nanos"`   // total runner wall time
	DiskHits    uint64 `json:"disk_hits"`    // submissions answered from the on-disk result store
	Recovered   uint64 `json:"recovered"`    // jobs rebuilt from the journal at startup
	// JournalErrors counts durability failures: journal appends or result
	// store writes that did not reach disk. Zero in a healthy daemon.
	JournalErrors uint64 `json:"journal_errors"`

	// Current-state gauges.
	Queued  int64 `json:"queued"`  // jobs waiting for a worker
	Running int64 `json:"running"` // jobs currently executing
}

// counters is the live, atomically updated backing store for Stats.
type counters struct {
	submitted, completed, failed, cancelled atomic.Uint64
	cacheHits, cacheMisses                  atomic.Uint64
	deduped, executions, panics, wallNanos  atomic.Uint64
	diskHits, recovered, journalErrors      atomic.Uint64
	queued, running                         atomic.Int64
}

// snapshot copies the counters into an immutable Stats value.
func (c *counters) snapshot() Stats {
	return Stats{
		Submitted:     c.submitted.Load(),
		Completed:     c.completed.Load(),
		Failed:        c.failed.Load(),
		Cancelled:     c.cancelled.Load(),
		CacheHits:     c.cacheHits.Load(),
		CacheMisses:   c.cacheMisses.Load(),
		Deduped:       c.deduped.Load(),
		Executions:    c.executions.Load(),
		Panics:        c.panics.Load(),
		WallNanos:     c.wallNanos.Load(),
		DiskHits:      c.diskHits.Load(),
		Recovered:     c.recovered.Load(),
		JournalErrors: c.journalErrors.Load(),
		Queued:        c.queued.Load(),
		Running:       c.running.Load(),
	}
}
