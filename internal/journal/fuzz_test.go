package journal

import (
	"bytes"
	"hash/crc32"
	"os"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the replay path as a segment
// image. The invariants under fuzzing are exactly the torn-write suite's:
// replay never panics, never errors on corruption, delivers only records
// that frame-decode with a matching CRC, and its byte accounting adds up.
// The hot loop runs the pure in-memory scanner (replaySegment, the same
// code Replay and Open use per segment); a deterministic sample of inputs
// additionally round-trips through the on-disk Open/repair path, which
// is too I/O-heavy to run per exec without starving the fuzz engine.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a genuine recorded segment and interesting degenerates.
	dir := f.TempDir()
	j, err := Open(dir, Options{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range lifecycle() {
		if err := j.Append(r, false); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)/2])
	f.Add([]byte{})
	f.Add(segmentHeader())
	f.Add([]byte("CRITWAL\x00garbage"))

	f.Fuzz(func(t *testing.T, b []byte) {
		var n uint64
		valid, count, _, err := replaySegment(b, func(r Record) error {
			if !r.Type.valid() {
				t.Fatalf("replay delivered invalid type %d", r.Type)
			}
			// Every delivered record must re-encode to bytes found verbatim
			// in the input: replay can only surface what was truly written.
			enc, err := appendFrame(nil, r)
			if err != nil {
				t.Fatalf("delivered record does not re-encode: %v", err)
			}
			if !bytes.Contains(b, enc) {
				t.Fatalf("delivered record %v re-encodes to bytes absent from the input", r)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("replaySegment errored on arbitrary bytes: %v", err)
		}
		if count != n {
			t.Fatalf("scanner claims %d records, callback saw %d", count, n)
		}
		if valid < 0 || valid > int64(len(b)) {
			t.Fatalf("valid byte count %d outside [0, %d]", valid, len(b))
		}

		// Sampled slow path: full directory replay + Open repair + append.
		if crc32.Checksum(b, crcTable)%64 != 0 {
			return
		}
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), b, 0o644); err != nil {
			t.Skip()
		}
		st, err := Replay(dir, nil)
		if err != nil {
			t.Fatalf("Replay errored on arbitrary bytes: %v", err)
		}
		if st.Records != count || st.Bytes+st.TruncatedBytes != int64(len(b)) {
			t.Fatalf("accounting: %+v vs scanner (%d records) over %d input bytes",
				st, count, len(b))
		}
		j, err := Open(dir, Options{NoSync: true}, nil)
		if err != nil {
			t.Fatalf("Open errored on arbitrary bytes: %v", err)
		}
		if err := j.Append(Record{Type: TypeSubmitted, ID: "jfuzz", Data: []byte("{}")}, true); err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		st2, err := Replay(dir, nil)
		if err != nil {
			t.Fatalf("Replay after repair: %v", err)
		}
		if st2.Records != count+1 || st2.TruncatedBytes != 0 {
			t.Fatalf("post-repair replay %+v, want %d clean records", st2, count+1)
		}
	})
}
