package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Version identifies the segment format; segments written by a different
// version are treated as a corruption boundary (replay stops before them),
// never decoded.
const Version = 1

// segMagic opens every segment file. The trailing NUL pads it to eight
// bytes so the version field that follows is aligned.
const segMagic = "CRITWAL\x00"

// segHeaderLen is the segment header: magic + u32 version.
const segHeaderLen = len(segMagic) + 4

// segExt is the segment file suffix.
const segExt = ".wal"

// DefaultSegmentBytes rotates segments at 4 MiB: small enough that
// compaction and replay touch bounded files, large enough that a busy
// daemon rotates rarely.
const DefaultSegmentBytes = 4 << 20

// Options tunes a journal.
type Options struct {
	// SegmentBytes is the rotation threshold (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync disables fsync on synced appends. Only tests use it: it
	// trades away the durability the journal exists for.
	NoSync bool
}

// ReplayStats summarises one replay pass.
type ReplayStats struct {
	// Records is the number of valid records delivered.
	Records uint64 `json:"records"`
	// Bytes is the number of valid record bytes consumed.
	Bytes int64 `json:"bytes"`
	// TruncatedBytes counts bytes abandoned after the corruption boundary:
	// the torn tail of the boundary segment plus the full size of every
	// later segment.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// DroppedSegments counts segments abandoned wholesale (bad header, or
	// after an earlier segment's corruption boundary).
	DroppedSegments int `json:"dropped_segments"`
}

// Stats is a point-in-time snapshot of journal counters.
type Stats struct {
	Appends       uint64 // records appended this process
	Syncs         uint64 // fsyncs issued by synced appends
	Rotations     uint64 // segment rotations
	Compactions   uint64 // Compact calls
	AppendedBytes uint64 // record bytes appended this process
	Replay        ReplayStats
	Segments      int   // segment files currently on disk
	DiskBytes     int64 // bytes currently on disk
}

// Journal is the append side of the write-ahead log. It is safe for
// concurrent use; appends are serialized internally.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     int   // current segment sequence number
	size    int64 // current segment size including header
	scratch []byte
	closed  bool

	appends, syncs, rotations, compactions, appendedBytes uint64
	replay                                                ReplayStats
}

// segPath names segment seq.
func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", seq, segExt))
}

// parseSeq extracts a segment sequence from a file name; ok is false for
// foreign files.
func parseSeq(name string) (int, bool) {
	if !strings.HasSuffix(name, segExt) {
		return 0, false
	}
	seq, err := strconv.Atoi(strings.TrimSuffix(name, segExt))
	if err != nil || seq < 1 {
		return 0, false
	}
	return seq, true
}

// segments lists the directory's segment sequence numbers, ascending.
func segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// segmentHeader returns an encoded segment header.
func segmentHeader() []byte {
	h := make([]byte, 0, segHeaderLen)
	h = append(h, segMagic...)
	return binary.LittleEndian.AppendUint32(h, Version)
}

// replaySegment scans one segment's bytes, delivering valid records to fn
// and returning the number of valid bytes (header included). tail is true
// when the segment ended at a corruption boundary rather than cleanly.
func replaySegment(b []byte, fn func(Record) error) (valid int64, n uint64, torn bool, err error) {
	if len(b) < segHeaderLen || string(b[:len(segMagic)]) != segMagic ||
		binary.LittleEndian.Uint32(b[len(segMagic):]) != Version {
		return 0, 0, true, nil
	}
	off := segHeaderLen
	for off < len(b) {
		rec, consumed, ok := decodeFrame(b[off:])
		if !ok {
			return int64(off), n, true, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), n, false, err
			}
		}
		off += consumed
		n++
	}
	return int64(off), n, false, nil
}

// Replay reads every valid record in dir, in order, delivering each to fn.
// It stops cleanly at the first invalid byte — a torn tail, a bit flip, a
// foreign segment header — and reports how much it had to abandon; it
// never fails on corruption, only on I/O errors or a non-nil fn error.
// A missing directory replays as empty.
func Replay(dir string, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	seqs, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("journal: replay: %w", err)
	}
	boundary := false
	for _, seq := range seqs {
		path := segPath(dir, seq)
		info, err := os.Stat(path)
		if err != nil {
			continue
		}
		if boundary {
			// A corruption boundary in an earlier segment invalidates
			// everything after it: later records may depend on lost ones.
			st.TruncatedBytes += info.Size()
			st.DroppedSegments++
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return st, fmt.Errorf("journal: replay %s: %w", path, err)
		}
		valid, n, torn, err := replaySegment(b, fn)
		if err != nil {
			return st, err
		}
		st.Records += n
		st.Bytes += valid
		if torn {
			boundary = true
			st.TruncatedBytes += int64(len(b)) - valid
			if valid == 0 {
				st.DroppedSegments++
			}
		}
	}
	return st, nil
}

// Open replays dir's records through fn (may be nil), repairs any torn
// tail — truncating the boundary segment at its last valid record and
// deleting every later segment — and returns a journal positioned to
// append after the last valid record. The directory is created if needed.
func Open(dir string, opts Options, fn func(Record) error) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("journal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	j := &Journal{dir: dir, opts: opts}

	seqs, err := segments(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	boundary := false
	lastSeq, lastValid := 0, int64(0)
	for _, seq := range seqs {
		path := segPath(dir, seq)
		if boundary {
			if info, err := os.Stat(path); err == nil {
				j.replay.TruncatedBytes += info.Size()
			}
			j.replay.DroppedSegments++
			os.Remove(path)
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: open %s: %w", path, err)
		}
		valid, n, torn, err := replaySegment(b, fn)
		if err != nil {
			return nil, err
		}
		j.replay.Records += n
		j.replay.Bytes += valid
		if torn {
			boundary = true
			j.replay.TruncatedBytes += int64(len(b)) - valid
			if valid == 0 {
				// Not even the header survived; drop the file entirely.
				j.replay.DroppedSegments++
				os.Remove(path)
				continue
			}
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("journal: repairing torn tail of %s: %w", path, err)
			}
		}
		lastSeq, lastValid = seq, valid
	}

	if lastSeq == 0 || lastValid >= opts.SegmentBytes {
		return j, j.rotateLocked(lastSeq + 1)
	}
	f, err := os.OpenFile(segPath(dir, lastSeq), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open segment: %w", err)
	}
	j.f, j.w, j.seq, j.size = f, bufio.NewWriter(f), lastSeq, lastValid
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// rotateLocked closes the current segment (if any) and starts segment seq.
func (j *Journal) rotateLocked(seq int) error {
	if j.f != nil {
		if err := j.flushLocked(true); err != nil {
			return err
		}
		j.f.Close()
		j.f = nil
		j.rotations++
	}
	f, err := os.OpenFile(segPath(j.dir, seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(segmentHeader()); err != nil {
		f.Close()
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.f, j.w, j.seq, j.size = f, w, seq, int64(segHeaderLen)
	return nil
}

// flushLocked drains the buffered writer and, when sync is requested and
// enabled, fsyncs the segment.
func (j *Journal) flushLocked(sync bool) error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if sync && !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.syncs++
	}
	return nil
}

// Append writes one record. With sync, the record is flushed and fsync'd
// before Append returns — the caller may acknowledge the transition the
// record describes. Without, the record sits in the write buffer until
// the next synced append, rotation or close; a crash may lose it, which
// is acceptable only for records whose loss merely re-does work
// (progress heartbeats, started markers).
func (j *Journal) Append(rec Record, sync bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	buf, err := appendFrame(j.scratch[:0], rec)
	if err != nil {
		return err
	}
	j.scratch = buf[:0]
	if j.size+int64(len(buf)) > j.opts.SegmentBytes && j.size > int64(segHeaderLen) {
		if err := j.rotateLocked(j.seq + 1); err != nil {
			return err
		}
	}
	if _, err := j.w.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(buf))
	j.appends++
	j.appendedBytes += uint64(len(buf))
	if sync {
		return j.flushLocked(true)
	}
	return nil
}

// Compact replaces the journal's entire contents with recs: they are
// written to a fresh segment, fsync'd, and only then are all older
// segments removed. Called on clean shutdown (with the retained terminal
// jobs) and after recovery (with the replayed live state), it bounds
// replay work to the state that still matters. On failure the old
// segments are untouched and remain authoritative.
func (j *Journal) Compact(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	old, err := segments(j.dir)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := j.flushLocked(true); err != nil {
		return err
	}
	j.f.Close()
	j.f = nil
	if err := j.rotateLocked(j.seq + 1); err != nil {
		return err
	}
	for _, rec := range recs {
		buf, err := appendFrame(j.scratch[:0], rec)
		if err != nil {
			return err
		}
		j.scratch = buf[:0]
		if _, err := j.w.Write(buf); err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
		j.size += int64(len(buf))
		j.appendedBytes += uint64(len(buf))
	}
	if err := j.flushLocked(true); err != nil {
		return err
	}
	for _, seq := range old {
		if seq != j.seq {
			os.Remove(segPath(j.dir, seq))
		}
	}
	j.compactions++
	return nil
}

// Close flushes, fsyncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	err := j.flushLocked(true)
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Stats snapshots the journal's counters plus an on-disk scan.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	st := Stats{
		Appends: j.appends, Syncs: j.syncs, Rotations: j.rotations,
		Compactions: j.compactions, AppendedBytes: j.appendedBytes,
		Replay: j.replay,
	}
	j.mu.Unlock()
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return st
	}
	for _, e := range entries {
		if _, ok := parseSeq(e.Name()); !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st.Segments++
		st.DiskBytes += info.Size()
	}
	return st
}
