package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// rec builds a deterministic test record; the timestamp is truncated to
// whole nanoseconds since that is all the codec preserves.
func rec(t Type, id string, data string) Record {
	r := Record{Type: t, At: time.Unix(1700000000, 123456789), ID: id}
	if data != "" {
		r.Data = []byte(data)
	}
	return r
}

// lifecycle is a realistic record sequence for a few jobs.
func lifecycle() []Record {
	return []Record{
		rec(TypeSubmitted, "j00000001", `{"workload":"bfs","mode":"functional"}`),
		rec(TypeStarted, "j00000001", ""),
		rec(TypeProgressed, "j00000001", "\x10\x00\x00\x00\x00\x00\x00\x00\x20\x00\x00\x00\x00\x00\x00\x00"),
		rec(TypeCompleted, "j00000001", ""),
		rec(TypeSubmitted, "j00000002", `{"workload":"srad","mode":"timing","size":32}`),
		rec(TypeStarted, "j00000002", ""),
		rec(TypeFailed, "j00000002", "simulated failure"),
		rec(TypeSubmitted, "j00000003", `{"workload":"2mm","mode":"timing"}`),
		rec(TypeCancelled, "j00000003", ""),
	}
}

// writeAll opens a journal in dir, appends recs (syncing the last) and
// closes it.
func writeAll(t *testing.T, dir string, recs []Record) {
	t.Helper()
	j, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, r := range recs {
		if err := j.Append(r, i == len(recs)-1); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// replayAll collects every record Replay delivers.
func replayAll(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	st, err := Replay(dir, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := lifecycle()
	writeAll(t, dir, want)
	got, st := replayAll(t, dir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if st.Records != uint64(len(want)) || st.TruncatedBytes != 0 || st.DroppedSegments != 0 {
		t.Fatalf("stats = %+v, want %d clean records", st, len(want))
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	got, st := replayAll(t, filepath.Join(t.TempDir(), "nope"))
	if len(got) != 0 || st.Records != 0 {
		t.Fatalf("missing dir replayed %d records", len(got))
	}
}

func TestOpenResumesAppending(t *testing.T) {
	dir := t.TempDir()
	recs := lifecycle()
	writeAll(t, dir, recs[:4])

	var replayed int
	j, err := Open(dir, Options{}, func(Record) error { replayed++; return nil })
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if replayed != 4 {
		t.Fatalf("reopen replayed %d records, want 4", replayed)
	}
	for _, r := range recs[4:] {
		if err := j.Append(r, true); err != nil {
			t.Fatalf("Append after reopen: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, _ := replayAll(t, dir)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("resumed journal mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment budget forces a rotation every couple of records.
	j, err := Open(dir, Options{SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want []Record
	for i := 0; i < 40; i++ {
		r := rec(TypeSubmitted, fmt.Sprintf("j%08d", i+1), `{"workload":"bfs","mode":"functional"}`)
		want = append(want, r)
		if err := j.Append(r, i%7 == 0); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st.Rotations == 0 {
		t.Fatalf("no rotations under a 128-byte budget: %+v", st)
	}
	seqs, err := segments(dir)
	if err != nil || len(seqs) < 2 {
		t.Fatalf("segments = %v (%v), want several", seqs, err)
	}
	got, _ := replayAll(t, dir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated journal replay mismatch: %d records, want %d", len(got), len(want))
	}
}

func TestCompactReplacesHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, r := range lifecycle() {
		if err := j.Append(r, false); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	compacted := []Record{
		rec(TypeSubmitted, "j00000001", `{"workload":"bfs","mode":"functional"}`),
		rec(TypeCompleted, "j00000001", ""),
	}
	if err := j.Compact(compacted); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := j.Stats(); st.Compactions != 1 || st.Segments != 1 {
		t.Fatalf("stats after compact = %+v, want 1 compaction, 1 segment", st)
	}
	// The journal keeps accepting appends after compaction (the tiny budget
	// may rotate again; replay order is what matters).
	extra := rec(TypeSubmitted, "j00000009", `{"workload":"dwt","mode":"timing"}`)
	if err := j.Append(extra, true); err != nil {
		t.Fatalf("Append after Compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, _ := replayAll(t, dir)
	if want := append(compacted, extra); !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted replay:\n got %+v\nwant %+v", got, want)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Append(rec(TypeStarted, "j1", ""), true); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestUnsyncedAppendsSurviveClose(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := lifecycle()
	for _, r := range want {
		if err := j.Append(r, false); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, _ := replayAll(t, dir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unsynced appends lost across clean Close")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	j, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	big := Record{Type: TypeSubmitted, ID: "j1", Data: make([]byte, MaxRecordBytes)}
	if err := j.Append(big, false); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := j.Append(Record{Type: Type(99), ID: "j1"}, false); err == nil {
		t.Fatal("unknown record type accepted")
	}
}

func TestStatsDiskScan(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, lifecycle())
	// Foreign files in the directory are ignored by the scan.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	j, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	st := j.Stats()
	if st.Segments != 1 || st.DiskBytes <= int64(segHeaderLen) {
		t.Fatalf("stats = %+v, want one real segment", st)
	}
	if st.Replay.Records != uint64(len(lifecycle())) {
		t.Fatalf("replay stats = %+v", st.Replay)
	}
}
