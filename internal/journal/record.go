// Package journal is an append-only, fsync'd write-ahead log of job
// lifecycle records. The jobs manager appends one record per state
// transition (submitted, started, progressed, completed, cancelled,
// failed) and replays the log on startup to rebuild its queue after a
// crash; completed results themselves live in the content-addressed
// result store, so the journal stays small and compacts to the set of
// retained terminal jobs on clean shutdown.
//
// On-disk layout: a directory of numbered segment files
// (00000001.wal, 00000002.wal, ...), each opening with an 12-byte
// header (magic "CRITWAL\x00" + codec version) followed by
// length+CRC32C-framed records:
//
//	[u32 body length][u32 CRC32C(body)][body]
//	body = [u8 type][i64 unix-nano timestamp][u16 id length][id][data]
//
// A torn or bit-flipped record invalidates everything from its offset
// on: replay stops cleanly at the last valid record and Open truncates
// the tail (and discards any later segments) before appending again, so
// a half-written record can never be resurrected.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// Type tags one lifecycle record.
type Type uint8

// Record types, one per job state transition. Submitted carries the spec
// (JSON) in Data; Failed carries the error text; Progressed carries a
// cycles/warp-insts heartbeat; the rest need no payload.
const (
	TypeSubmitted Type = iota + 1
	TypeStarted
	TypeProgressed
	TypeCompleted
	TypeCancelled
	TypeFailed
)

// typeNames maps record types to their wire-stable names (used in tests
// and debug output, never on disk).
var typeNames = map[Type]string{
	TypeSubmitted:  "submitted",
	TypeStarted:    "started",
	TypeProgressed: "progressed",
	TypeCompleted:  "completed",
	TypeCancelled:  "cancelled",
	TypeFailed:     "failed",
}

func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("journal.Type(%d)", uint8(t))
}

// valid reports whether t is a known record type; unknown types make the
// whole record (and everything after it) invalid, exactly like a CRC
// mismatch, because a foreign type's payload semantics are unknowable.
func (t Type) valid() bool { return t >= TypeSubmitted && t <= TypeFailed }

// Record is one framed journal entry.
type Record struct {
	// Type tags the lifecycle transition.
	Type Type
	// At is the transition's wall-clock time; replay restores it onto the
	// recovered job so created/started/finished timestamps survive a crash.
	At time.Time
	// ID is the job id the record belongs to.
	ID string
	// Data is the type-specific payload (may be empty).
	Data []byte
}

// MaxRecordBytes bounds one record's encoded body. Specs are a few
// hundred bytes of JSON; anything near this limit in a file is corruption,
// and bounding it keeps a bit-flipped length field from asking the
// decoder to allocate gigabytes.
const MaxRecordBytes = 1 << 20

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the daemon deploys to.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the per-record framing cost: length + CRC.
const frameOverhead = 4 + 4

// bodyHeader is the fixed prefix of a record body: type, timestamp, id
// length.
const bodyHeader = 1 + 8 + 2

// appendFrame encodes rec as one frame onto buf.
func appendFrame(buf []byte, rec Record) ([]byte, error) {
	if !rec.Type.valid() {
		return buf, fmt.Errorf("journal: cannot encode unknown record type %d", rec.Type)
	}
	if len(rec.ID) > 0xffff {
		return buf, fmt.Errorf("journal: id %d bytes exceeds the 64 KiB field", len(rec.ID))
	}
	bodyLen := bodyHeader + len(rec.ID) + len(rec.Data)
	if bodyLen > MaxRecordBytes {
		return buf, fmt.Errorf("journal: record body %d bytes exceeds MaxRecordBytes", bodyLen)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	bodyAt := len(buf)
	buf = append(buf, byte(rec.Type))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.At.UnixNano()))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.ID)))
	buf = append(buf, rec.ID...)
	buf = append(buf, rec.Data...)
	crc := crc32.Checksum(buf[bodyAt:], crcTable)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf, nil
}

// decodeFrame decodes the frame at the head of b, returning the record
// and the number of bytes consumed. ok is false for anything invalid —
// a short frame, an oversized or undersized length, a CRC mismatch, an
// unknown type — in which case the caller must treat b's entire
// remainder as a torn tail.
func decodeFrame(b []byte) (rec Record, n int, ok bool) {
	if len(b) < frameOverhead {
		return Record{}, 0, false
	}
	bodyLen := int(binary.LittleEndian.Uint32(b))
	if bodyLen < bodyHeader || bodyLen > MaxRecordBytes || len(b) < frameOverhead+bodyLen {
		return Record{}, 0, false
	}
	want := binary.LittleEndian.Uint32(b[4:])
	body := b[frameOverhead : frameOverhead+bodyLen]
	if crc32.Checksum(body, crcTable) != want {
		return Record{}, 0, false
	}
	rec.Type = Type(body[0])
	if !rec.Type.valid() {
		return Record{}, 0, false
	}
	rec.At = time.Unix(0, int64(binary.LittleEndian.Uint64(body[1:])))
	idLen := int(binary.LittleEndian.Uint16(body[9:]))
	if bodyHeader+idLen > bodyLen {
		return Record{}, 0, false
	}
	rec.ID = string(body[bodyHeader : bodyHeader+idLen])
	if data := body[bodyHeader+idLen:]; len(data) > 0 {
		rec.Data = append([]byte(nil), data...)
	}
	return rec, frameOverhead + bodyLen, true
}
