package journal

import (
	"os"
	"reflect"
	"testing"
)

// recordedSegment writes a known journal and returns the single segment's
// raw bytes plus the records it holds.
func recordedSegment(t *testing.T) ([]byte, []Record) {
	t.Helper()
	dir := t.TempDir()
	recs := lifecycle()
	writeAll(t, dir, recs)
	seqs, err := segments(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("segments = %v (%v), want exactly one", seqs, err)
	}
	b, err := os.ReadFile(segPath(dir, seqs[0]))
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	return b, recs
}

// replayBytes writes b as a fresh journal's only segment and replays it,
// returning the delivered records. Any panic fails the test — replay of
// arbitrary bytes must always degrade, never crash.
func replayBytes(t *testing.T, b []byte) ([]Record, ReplayStats) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), b, 0o644); err != nil {
		t.Fatalf("writing segment: %v", err)
	}
	return replayAll(t, dir)
}

// isPrefix reports whether got is a prefix of want.
func isPrefix(got, want []Record) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			return false
		}
	}
	return true
}

// TestReplayTruncatedAtEveryOffset truncates a recorded segment at every
// byte offset: replay must stop cleanly at the last record wholly inside
// the prefix — never an error, never a record that was not in the
// original sequence.
func TestReplayTruncatedAtEveryOffset(t *testing.T) {
	seg, want := recordedSegment(t)
	for cut := 0; cut <= len(seg); cut++ {
		got, st := replayBytes(t, seg[:cut])
		if !isPrefix(got, want) {
			t.Fatalf("truncation at %d replayed non-prefix: %+v", cut, got)
		}
		if cut == len(seg) && len(got) != len(want) {
			t.Fatalf("untruncated replay lost records: %d of %d", len(got), len(want))
		}
		if wantTrunc := int64(cut) - st.Bytes; cut >= segHeaderLen && st.TruncatedBytes != wantTrunc {
			t.Fatalf("truncation at %d: TruncatedBytes = %d, want %d", cut, st.TruncatedBytes, wantTrunc)
		}
	}
}

// TestReplayBitFlipAtEveryOffset flips every bit of every byte of a
// recorded segment: replay must deliver only records from the original
// sequence's prefix (the flip can truncate replay, or — when it lands in
// a record's non-framing bytes and is caught by CRC — stop exactly
// there), and must never panic or resurrect altered data.
func TestReplayBitFlipAtEveryOffset(t *testing.T) {
	seg, want := recordedSegment(t)
	mut := make([]byte, len(seg))
	for off := 0; off < len(seg); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, seg)
			mut[off] ^= 1 << bit
			got, _ := replayBytes(t, mut)
			if !isPrefix(got, want) {
				t.Fatalf("bit flip at %d.%d replayed non-prefix: %+v", off, bit, got)
			}
		}
	}
}

// TestOpenRepairsTornTail ensures Open truncates a torn tail and appends
// after the last valid record: the half-written record is gone for good
// and the journal keeps working on the same segment.
func TestOpenRepairsTornTail(t *testing.T) {
	seg, want := recordedSegment(t)
	dir := t.TempDir()
	// Cut mid-way through the final record.
	cut := len(seg) - 3
	if err := os.WriteFile(segPath(dir, 1), seg[:cut], 0o644); err != nil {
		t.Fatalf("writing torn segment: %v", err)
	}
	var replayed []Record
	j, err := Open(dir, Options{}, func(r Record) error {
		replayed = append(replayed, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open on torn tail: %v", err)
	}
	if len(replayed) != len(want)-1 {
		t.Fatalf("torn tail replayed %d records, want %d", len(replayed), len(want)-1)
	}
	if st := j.Stats(); st.Replay.TruncatedBytes == 0 {
		t.Fatalf("repair did not count truncated bytes: %+v", st.Replay)
	}
	extra := rec(TypeCompleted, "j00000003", "")
	if err := j.Append(extra, true); err != nil {
		t.Fatalf("Append after repair: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, _ := replayAll(t, dir)
	wantAfter := append(append([]Record{}, want[:len(want)-1]...), extra)
	if !reflect.DeepEqual(got, wantAfter) {
		t.Fatalf("post-repair replay:\n got %+v\nwant %+v", got, wantAfter)
	}
}

// TestCorruptionInvalidatesLaterSegments pins the safety rule that a
// corruption boundary abandons every later segment too: records after a
// gap cannot be trusted (they may transition jobs whose submissions were
// lost), so replay stops at the boundary and Open deletes the rest.
func TestCorruptionInvalidatesLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := lifecycle()
	for _, r := range recs {
		if err := j.Append(r, true); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seqs, _ := segments(dir)
	if len(seqs) < 3 {
		t.Fatalf("want ≥3 segments for this test, got %v", seqs)
	}
	// Corrupt the first segment's first record body.
	first := segPath(dir, seqs[0])
	b, _ := os.ReadFile(first)
	b[segHeaderLen+frameOverhead+2] ^= 0xff
	os.WriteFile(first, b, 0o644)

	got, st := replayAll(t, dir)
	if len(got) != 0 {
		t.Fatalf("replay after first-segment corruption delivered %d records", len(got))
	}
	if st.DroppedSegments != len(seqs)-1 {
		t.Fatalf("DroppedSegments = %d, want %d", st.DroppedSegments, len(seqs)-1)
	}

	// Open must repair: later segments deleted, journal reusable.
	j2, err := Open(dir, Options{SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatalf("Open after corruption: %v", err)
	}
	if err := j2.Append(recs[0], true); err != nil {
		t.Fatalf("Append after repair: %v", err)
	}
	j2.Close()
	got, _ = replayAll(t, dir)
	if len(got) != 1 || !reflect.DeepEqual(got[0], recs[0]) {
		t.Fatalf("post-repair journal replay = %+v", got)
	}
}

// TestFullyCorruptTailDegradesToEmpty is the acceptance criterion's
// degenerate case: a journal whose every segment is garbage opens as an
// empty journal, never an error.
func TestFullyCorruptTailDegradesToEmpty(t *testing.T) {
	dir := t.TempDir()
	for seq := 1; seq <= 3; seq++ {
		if err := os.WriteFile(segPath(dir, seq), []byte("not a journal segment"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var replayed int
	j, err := Open(dir, Options{}, func(Record) error { replayed++; return nil })
	if err != nil {
		t.Fatalf("Open on garbage: %v", err)
	}
	defer j.Close()
	if replayed != 0 {
		t.Fatalf("garbage replayed %d records", replayed)
	}
	if st := j.Stats(); st.Replay.DroppedSegments != 3 {
		t.Fatalf("DroppedSegments = %d, want 3", st.Replay.DroppedSegments)
	}
	if err := j.Append(rec(TypeSubmitted, "j1", "{}"), true); err != nil {
		t.Fatalf("Append on recovered-empty journal: %v", err)
	}
}

// TestForeignVersionSegmentDropped treats a segment from a future codec
// as a corruption boundary, not a decode attempt.
func TestForeignVersionSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	h := segmentHeader()
	h[len(segMagic)]++ // bump version
	if err := os.WriteFile(segPath(dir, 1), h, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := replayBytesDir(t, dir)
	if len(got) != 0 || st.DroppedSegments != 1 {
		t.Fatalf("foreign version: records %d, stats %+v", len(got), st)
	}
}

func replayBytesDir(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	return replayAll(t, dir)
}
