package kgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"critload/internal/dataflow"
	"critload/internal/emu"
	"critload/internal/mem"
	"critload/internal/ptx"
)

// Case is one self-contained differential-test case: a kernel, its launch
// geometry, seeded input arrays and the ground-truth classification of every
// global load. A Case can be saved as a .ptx/.json pair and replayed later
// without the generator, so the committed corpus stays valid even when the
// generator evolves.
type Case struct {
	Name      string
	Kernel    *ptx.Kernel
	Prog      *Prog // nil for cases loaded from disk
	GridX     int
	BlockX    int
	DataWords int
	Data0     []uint32
	Data1     []uint32
	Const     []uint32
	// Want maps instruction index → expected class for every global load.
	Want map[int]dataflow.Class
}

// Env is one materialized execution environment for a case: a fresh memory
// with the input arrays and zeroed output/scratch regions, plus the launch.
// Allocation order is fixed, so every Env of a case sees identical addresses
// — a precondition for comparing runs across engines.
type Env struct {
	Mem         *mem.Memory
	Launch      *emu.Launch
	OutBase     uint32
	ScratchBase uint32
	OutWords    int
}

// NewEnv builds a fresh environment.
func (c *Case) NewEnv() *Env {
	m := mem.New()
	d0 := m.AllocU32s(c.Data0)
	d1 := m.AllocU32s(c.Data1)
	cb := m.AllocU32s(c.Const)
	outWords := c.GridX * c.BlockX * OutSlots
	out := m.Alloc(uint32(outWords * 4))
	scratch := m.Alloc(ScratchWords * 4)
	l := &emu.Launch{
		Kernel: c.Kernel,
		Grid:   emu.Dim1(c.GridX),
		Block:  emu.Dim1(c.BlockX),
		Params: []uint32{d0, d1, cb, out, scratch},
	}
	return &Env{Mem: m, Launch: l, OutBase: out, ScratchBase: scratch, OutWords: outWords}
}

// Snapshot reads back every mutable word of the environment: the output
// array followed by the atomic scratch array. Two engines agree on a case
// exactly when their snapshots agree.
func (e *Env) Snapshot() []uint32 {
	s := e.Mem.ReadU32s(e.OutBase, e.OutWords)
	return append(s, e.Mem.ReadU32s(e.ScratchBase, ScratchWords)...)
}

// caseJSON is the on-disk metadata format next to the .ptx file.
type caseJSON struct {
	Name      string            `json:"name"`
	GridX     int               `json:"gridX"`
	BlockX    int               `json:"blockX"`
	DataWords int               `json:"dataWords"`
	Data0     []uint32          `json:"data0"`
	Data1     []uint32          `json:"data1"`
	Const     []uint32          `json:"const"`
	Want      map[string]string `json:"want"`
}

func classString(c dataflow.Class) string {
	if c == dataflow.NonDeterministic {
		return "N"
	}
	return "D"
}

// Save writes the case as <dir>/<name>.ptx plus <dir>/<name>.json.
func (c *Case) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, c.Name+".ptx"),
		[]byte(c.Kernel.Disassemble()), 0o644); err != nil {
		return err
	}
	j := caseJSON{
		Name: c.Name, GridX: c.GridX, BlockX: c.BlockX, DataWords: c.DataWords,
		Data0: c.Data0, Data1: c.Data1, Const: c.Const,
		Want: map[string]string{},
	}
	for idx, cls := range c.Want {
		j.Want[strconv.Itoa(idx)] = classString(cls)
	}
	buf, err := json.MarshalIndent(&j, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, c.Name+".json"), append(buf, '\n'), 0o644)
}

// LoadCase reads a saved case back; path names either the .ptx or the .json
// half of the pair.
func LoadCase(path string) (*Case, error) {
	base := strings.TrimSuffix(strings.TrimSuffix(path, ".json"), ".ptx")
	src, err := os.ReadFile(base + ".ptx")
	if err != nil {
		return nil, err
	}
	prog, err := ptx.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("kgen: %s.ptx: %w", base, err)
	}
	if len(prog.Kernels) != 1 {
		return nil, fmt.Errorf("kgen: %s.ptx: expected exactly one kernel, got %d", base, len(prog.Kernels))
	}
	buf, err := os.ReadFile(base + ".json")
	if err != nil {
		return nil, err
	}
	var j caseJSON
	if err := json.Unmarshal(buf, &j); err != nil {
		return nil, fmt.Errorf("kgen: %s.json: %w", base, err)
	}
	c := &Case{
		Name:      j.Name,
		Kernel:    prog.Kernels[0],
		GridX:     j.GridX,
		BlockX:    j.BlockX,
		DataWords: j.DataWords,
		Data0:     j.Data0,
		Data1:     j.Data1,
		Const:     j.Const,
		Want:      map[int]dataflow.Class{},
	}
	for key, v := range j.Want {
		idx, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("kgen: %s.json: bad want key %q", base, key)
		}
		switch v {
		case "D":
			c.Want[idx] = dataflow.Deterministic
		case "N":
			c.Want[idx] = dataflow.NonDeterministic
		default:
			return nil, fmt.Errorf("kgen: %s.json: bad want class %q", base, v)
		}
	}
	return c, nil
}
