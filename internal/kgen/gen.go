package kgen

import (
	"math/rand"
)

// Config bounds the generated program shape.
type Config struct {
	// MinOps/MaxOps bound the IR op count (excluding the ops Generate
	// appends to guarantee coverage).
	MinOps, MaxOps int
	// SharedProb is the probability of generating a shared-memory phase
	// (stores → barrier → loads).
	SharedProb float64
}

// DefaultConfig returns the fuzzing defaults. The op ceiling keeps every
// kernel inside the SM register budget (≈3 registers per op plus a fixed
// prologue) with room to spare.
func DefaultConfig() Config {
	return Config{MinOps: 8, MaxOps: 40, SharedProb: 0.6}
}

// Generate produces a well-formed random program from the seed. The same
// seed and config always produce the identical program, and therefore —
// through the deterministic lowering — byte-identical PTX.
//
// Every generated program contains at least one deterministic and one
// non-deterministic global load and at least one output store, so a
// differential sweep can assert class coverage per kernel instead of hoping
// for it.
func Generate(seed int64, cfg Config) *Prog {
	if cfg.MaxOps < cfg.MinOps || cfg.MaxOps == 0 {
		cfg = DefaultConfig()
	}
	r := rand.New(rand.NewSource(seed))
	p := &Prog{
		Seed:      seed,
		GridX:     1 + r.Intn(4),
		BlockX:    []int{32, 64, 128}[r.Intn(3)],
		DataWords: []int{256, 512, 1024}[r.Intn(3)],
		AtomOp:    atomOps[r.Intn(len(atomOps))],
	}
	budget := cfg.MinOps + r.Intn(cfg.MaxOps-cfg.MinOps+1)

	var infos []opInfo
	var stack []int // op indices of open structures
	curPath := func() []int { return append([]int(nil), stack...) }
	add := func(op Op) int {
		i := len(p.Ops)
		p.Ops = append(p.Ops, canon(op))
		if op.Kind == KLoop || op.Kind == KIf {
			stack = append(stack, i)
		}
		if op.Kind == KEnd && len(stack) > 0 {
			stack = stack[:len(stack)-1]
		}
		infos = analyze(p)
		return i
	}
	// pick draws a uniformly random in-scope reference with the requested
	// properties, or -1 if none exists.
	pick := func(pred, needCalm, needTaint bool) int {
		path := curPath()
		var cand []int
		for j := range infos {
			inf := &infos[j]
			if inf.dead {
				continue
			}
			if pred && !inf.pred || !pred && !inf.val {
				continue
			}
			if needCalm && inf.vol || needTaint && !inf.taint {
				continue
			}
			if !isPrefix(inf.path, path) {
				continue
			}
			cand = append(cand, j)
		}
		if len(cand) == 0 {
			return -1
		}
		return cand[r.Intn(len(cand))]
	}
	// maybeRef picks a reference most of the time, falling back to the
	// gtid/imm fallback otherwise.
	maybeRef := func(needCalm bool) int {
		if r.Float64() < 0.85 {
			return pick(false, needCalm, false)
		}
		return -1
	}

	// Taint root: every kernel opens with a deterministic global load of
	// Data[gtid & mask], the seed of all data-dependent address chains.
	add(Op{Kind: KLoadG, A: -1, Imm: uint32(r.Uint32())})

	// Optional shared phase: own-slot stores, one barrier; loads come later.
	withShared := r.Float64() < cfg.SharedProb
	if withShared {
		for i := 0; i < 1+r.Intn(2); i++ {
			add(Op{Kind: KShStore, A: maybeRef(true)})
		}
		add(Op{Kind: KBar})
	}

	haveN, haveStore := false, false
	for len(p.Ops) < budget {
		depth := len(stack)
		// Weighted kind choice under the structural constraints.
		type choice struct {
			kind OpKind
			w    int
		}
		choices := []choice{
			{KAlu, 20}, {KImm, 6}, {KSetp, 10}, {KSelp, 6}, {KGuard, 6},
			{KLoadG, 16}, {KLoadC, 4}, {KLoadT, 4}, {KAtom, 5}, {KStore, 8},
		}
		if withShared {
			choices = append(choices, choice{KShLoad, 7})
		}
		if depth < 2 {
			choices = append(choices, choice{KLoop, 5})
			if pick(true, true, false) >= 0 {
				choices = append(choices, choice{KIf, 5})
			}
		}
		if depth > 0 {
			choices = append(choices, choice{KEnd, 12})
		}
		total := 0
		for _, c := range choices {
			total += c.w
		}
		n := r.Intn(total)
		var kind OpKind
		for _, c := range choices {
			if n < c.w {
				kind = c.kind
				break
			}
			n -= c.w
		}

		switch kind {
		case KAlu:
			add(Op{Kind: KAlu, A: maybeRef(false), B: maybeRef(false),
				Alu: r.Intn(len(aluOps)), Imm: uint32(r.Uint32())})
		case KImm:
			add(Op{Kind: KImm, Imm: uint32(r.Uint32())})
		case KSetp:
			add(Op{Kind: KSetp, A: maybeRef(false), B: maybeRef(false),
				Alu: r.Intn(len(cmpOps)), Imm: uint32(r.Uint32())})
		case KSelp:
			add(Op{Kind: KSelp, A: maybeRef(false), B: maybeRef(false),
				P: pick(true, false, false), Imm: uint32(r.Uint32())})
		case KGuard:
			add(Op{Kind: KGuard, A: maybeRef(false), B: maybeRef(false),
				P: pick(true, false, false), Alu: r.Intn(len(aluOps)),
				Imm: uint32(r.Uint32())})
		case KLoadG:
			a := -1
			if r.Float64() < 0.55 {
				a = pick(false, false, true) // chase a tainted chain: N load
			}
			if a < 0 && r.Float64() < 0.5 {
				a = pick(false, false, false)
			}
			add(Op{Kind: KLoadG, A: a, Imm: uint32(r.Uint32())})
			if a >= 0 && infos[a].taint {
				haveN = true
			}
		case KLoadC:
			add(Op{Kind: KLoadC, A: maybeRef(false)})
		case KLoadT:
			add(Op{Kind: KLoadT, A: maybeRef(false), Imm: uint32(r.Uint32())})
		case KAtom:
			add(Op{Kind: KAtom, A: pick(false, true, false),
				B: pick(false, true, false), Imm: uint32(r.Uint32())})
		case KShLoad:
			add(Op{Kind: KShLoad, A: maybeRef(false)})
		case KStore:
			add(Op{Kind: KStore, A: pick(false, true, false), Imm: uint32(r.Uint32())})
			haveStore = true
		case KLoop:
			add(Op{Kind: KLoop, Imm: uint32(r.Intn(MaxTrip))})
		case KIf:
			add(Op{Kind: KIf, P: pick(true, true, false), Imm: uint32(r.Intn(2))})
		case KEnd:
			add(Op{Kind: KEnd})
		}
	}
	for len(stack) > 0 {
		add(Op{Kind: KEnd})
	}

	// Coverage guarantees: one N load (op 0 is always a tainted in-scope
	// value) and one store of a schedule-independent value.
	if !haveN {
		add(Op{Kind: KLoadG, A: pick(false, false, true), Imm: uint32(r.Uint32())})
	}
	if !haveStore {
		add(Op{Kind: KStore, A: pick(false, true, false), Imm: uint32(r.Uint32())})
	}
	return p
}
