// Package kgen is a seeded, deterministic random PTX-kernel generator for
// differential testing. It layers a small dataflow IR (Prog) on top of the
// ptx.Builder: every Op produces at most one fresh register or predicate
// (SSA-like single static definitions), references only earlier ops in an
// enclosing scope, and carries enough structure that the lowering pass can
// compute, by construction, the ground-truth classification of every global
// load it emits — the label dataflow.Classify must reproduce.
//
// The generated kernels are engine-race-free by discipline, so the emulator
// and both timing engines must agree on final memory:
//
//   - data arrays (global + const + tex views) are read-only;
//   - global stores go only to the thread's own output slots;
//   - shared memory is written only at the thread's own word, before a single
//     top-level barrier, and read only after it;
//   - atomics use one commutative u32 operation per kernel on a scratch
//     array, and values derived from an atomic return ("volatile" values,
//     whose concrete bits depend on warp scheduling) never reach stores,
//     shared memory, or branch predicates — they may feed load addresses,
//     which makes them legitimate non-deterministic loads.
//
// Local-space loads are deliberately absent: the functional emulator rejects
// them, so they cannot participate in a differential harness.
package kgen

import (
	"fmt"

	"critload/internal/isa"
)

// OpKind enumerates the IR operations.
type OpKind uint8

// IR operation kinds.
const (
	// KImm materializes the immediate Imm. Clean value.
	KImm OpKind = iota
	// KAlu computes alu[Alu](A, B); B < 0 uses Imm as second operand.
	KAlu
	// KSelp selects P ? A : B (B < 0 uses Imm).
	KSelp
	// KGuard initializes its register to Imm>>1, then conditionally
	// (@P, negated when Imm&1 is set) overwrites it with alu[Alu](A, B).
	KGuard
	// KSetp defines a predicate: cmp[Alu](A, B); B < 0 uses Imm.
	KSetp
	// KLoadG loads data array Imm&1 at index (A & mask). Global load:
	// recorded in the ground-truth Want map.
	KLoadG
	// KLoadC loads the const array at index (A & constMask). The classifier
	// treats ld.const results as parameterized, so the value is clean even
	// when the address is tainted.
	KLoadC
	// KLoadT loads data array Imm&1 through the texture space.
	KLoadT
	// KAtom performs the program-wide AtomOp on Scratch[A & scratchMask]
	// with operand B (B < 0 uses Imm). The returned old value is volatile.
	KAtom
	// KShStore stores A to the thread's own shared word. Only legal at
	// top level before the barrier.
	KShStore
	// KBar is the single top-level bar.sync.
	KBar
	// KShLoad loads shared word (A & (block-1)). Only legal after the
	// barrier.
	KShLoad
	// KStore stores A to the thread's output slot Imm%OutSlots.
	KStore
	// KLoop begins a counted loop of 1+Imm%MaxTrip iterations; KEnd closes.
	KLoop
	// KIf begins a block guarded by predicate P (negated when Imm&1);
	// KEnd closes.
	KIf
	// KEnd closes the innermost open KLoop/KIf.
	KEnd
	numKinds
)

var kindNames = [numKinds]string{
	KImm: "imm", KAlu: "alu", KSelp: "selp", KGuard: "guard", KSetp: "setp",
	KLoadG: "ld.g", KLoadC: "ld.c", KLoadT: "ld.t", KAtom: "atom",
	KShStore: "st.sh", KBar: "bar", KShLoad: "ld.sh", KStore: "st.g",
	KLoop: "loop", KIf: "if", KEnd: "end",
}

func (k OpKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one IR operation. A and B reference earlier value-producing ops by
// index (-1 means "use the global thread id" for A-slots and "use Imm" for
// B-slots); P references an earlier KSetp. Alu selects the ALU or compare
// operation; Imm is an immediate payload whose meaning depends on Kind.
type Op struct {
	Kind OpKind
	A    int
	B    int
	P    int
	Alu  int
	Imm  uint32
}

// aluOps is the pool of binary ALU operations KAlu/KGuard draw from. All are
// total on u32 (shifts mask their count; div-by-zero yields zero and is
// excluded anyway).
var aluOps = []isa.Opcode{
	isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
	isa.OpMin, isa.OpMax, isa.OpShl, isa.OpShr,
}

// cmpOps is the pool of setp comparisons.
var cmpOps = []isa.CmpOp{isa.CmpEQ, isa.CmpNE, isa.CmpLT, isa.CmpLE, isa.CmpGT, isa.CmpGE}

// atomOps is the pool of per-kernel atomic operations: only commutative,
// idempotent-composition ops whose final memory value is independent of
// thread ordering.
var atomOps = []isa.AtomOp{isa.AtomAdd, isa.AtomMin, isa.AtomMax, isa.AtomOr, isa.AtomAnd}

// MaxTrip bounds loop trip counts.
const MaxTrip = 4

// OutSlots is the number of output words each thread owns.
const OutSlots = 8

// ScratchWords is the size of the atomic scratch array.
const ScratchWords = 64

// ConstWords is the size of the constant array.
const ConstWords = 64

// Prog is a generated kernel program: launch geometry, array sizes, the
// kernel-wide atomic operation, and the op list.
type Prog struct {
	Seed      int64
	GridX     int
	BlockX    int // power of two, ≤ 128
	DataWords int // power of two: words per data array
	AtomOp    isa.AtomOp
	Ops       []Op
}

// Clone deep-copies the program.
func (p *Prog) Clone() *Prog {
	q := *p
	q.Ops = append([]Op(nil), p.Ops...)
	return &q
}

// opInfo is the per-op static analysis the generator, Repair and the
// lowering pass all share.
type opInfo struct {
	dead    bool
	val     bool  // defines a general register
	pred    bool  // defines a predicate
	taint   bool  // value transitively depends on a data load / atomic
	vol     bool  // value depends on warp scheduling (atomic returns)
	path    []int // enclosing structure ops, outermost first
	matchOf int   // for KEnd: index of the KLoop/KIf it closes (-1 if none)
}

// definesValue reports whether kind produces a general-register value.
func definesValue(k OpKind) bool {
	switch k {
	case KImm, KAlu, KSelp, KGuard, KLoadG, KLoadC, KLoadT, KAtom, KShLoad:
		return true
	}
	return false
}

// analyze computes per-op scopes, structure matching and taint/volatility.
// It assumes the program is well-formed (as produced by Generate or Repair);
// malformed references are treated as the gtid/imm fallbacks, exactly as the
// lowering pass would.
func analyze(p *Prog) []opInfo {
	infos := make([]opInfo, len(p.Ops))
	var stack []int
	path := func() []int { return append([]int(nil), stack...) }
	for i, op := range p.Ops {
		in := &infos[i]
		in.matchOf = -1
		in.path = path()
		in.val = definesValue(op.Kind)
		in.pred = op.Kind == KSetp

		// References count only when the lowering pass would honor them:
		// an earlier live op of the right kind whose scope encloses this
		// one. Anything else lowers to the clean gtid/imm fallback.
		ref := func(j int, pred bool) (taint, vol bool) {
			if j < 0 || j >= i || infos[j].dead {
				return false, false
			}
			if pred && !infos[j].pred || !pred && !infos[j].val {
				return false, false
			}
			if !isPrefix(infos[j].path, in.path) {
				return false, false
			}
			return infos[j].taint, infos[j].vol
		}
		tA, vA := ref(op.A, false)
		tB, vB := ref(op.B, false)
		tP, vP := ref(op.P, true)
		switch op.Kind {
		case KImm:
		case KAlu:
			in.taint, in.vol = tA || tB, vA || vB
		case KSelp, KGuard:
			in.taint, in.vol = tA || tB || tP, vA || vB || vP
		case KSetp:
			in.taint, in.vol = tA || tB, vA || vB
		case KLoadG, KLoadT, KShLoad:
			// Data-load results are taint roots; the loaded bits vary with
			// scheduling only if the address does.
			in.taint, in.vol = true, vA
		case KLoadC:
			// Const-space loads are parameterized in the classifier's model:
			// the result is clean regardless of the address.
			in.taint, in.vol = false, vA
		case KAtom:
			in.taint, in.vol = true, true
		case KLoop, KIf:
			stack = append(stack, i)
		case KEnd:
			if n := len(stack); n > 0 {
				in.matchOf = stack[n-1]
				stack = stack[:n-1]
			} else {
				in.dead = true
			}
		}
	}
	// Unclosed structures are dead (Repair drops them; Generate closes all).
	for _, i := range stack {
		infos[i].dead = true
	}
	return infos
}

// isPrefix reports whether path a is a prefix of path b — i.e. whether a
// value defined at scope a is in scope at b.
func isPrefix(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Repair rewrites an arbitrarily mutated op list (typically after the
// shrinker deleted a range) back into a well-formed program: structures are
// re-matched, dangling or out-of-scope references are rerouted to the
// gtid/imm fallbacks or to nothing, shared-memory ops are forced back into
// the store→barrier→load discipline, and volatility constraints (stores,
// shared stores, atomics and branch predicates must be schedule-independent)
// are re-established. Repair is total: any op list maps to a valid program.
func Repair(p *Prog) *Prog {
	q := p.Clone()
	if q.GridX < 1 {
		q.GridX = 1
	}
	switch q.BlockX {
	case 32, 64, 128:
	default:
		q.BlockX = 32
	}
	if q.DataWords < 64 || q.DataWords&(q.DataWords-1) != 0 || q.DataWords > 4096 {
		q.DataWords = 256
	}
	ok := false
	for _, a := range atomOps {
		ok = ok || a == q.AtomOp
	}
	if !ok {
		q.AtomOp = isa.AtomAdd
	}

	// Pass 1: match structures and mark orphans dead.
	infos := analyze(q)
	droppedBegin := map[int]bool{}
	for i := range q.Ops {
		if q.Ops[i].Kind >= numKinds {
			infos[i].dead = true
		}
		if infos[i].dead && (q.Ops[i].Kind == KLoop || q.Ops[i].Kind == KIf) {
			droppedBegin[i] = true
		}
	}

	// Pass 2: rebuild against the surviving prefix. Dangling references fall
	// back to -1 (the gtid/imm fallback of the lowering pass) rather than
	// being rerouted, so Repair is the identity on well-formed programs.
	out := make([]Op, 0, len(q.Ops))
	outInfo := make([]opInfo, 0, len(q.Ops))
	oldToNew := make([]int, len(q.Ops))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	var stack []int // new indices of open structures
	barSeen := false

	curPath := func() []int { return append([]int(nil), stack...) }
	// resolve maps an old reference to its surviving, in-scope new index,
	// or -1 for the lowering fallback.
	resolve := func(old int, pred, needCalm bool, path []int) int {
		if old < 0 || old >= len(oldToNew) {
			return -1
		}
		j := oldToNew[old]
		if j < 0 {
			return -1
		}
		oi := &outInfo[j]
		if pred && !oi.pred || !pred && !oi.val {
			return -1
		}
		if needCalm && oi.vol {
			return -1
		}
		if !isPrefix(oi.path, path) {
			return -1
		}
		return j
	}

	for i, op := range q.Ops {
		if infos[i].dead {
			continue
		}
		op = canon(op)
		path := curPath()
		emit := func(o Op) {
			oi := opInfo{val: definesValue(o.Kind), pred: o.Kind == KSetp, path: path}
			ref := func(j int) (bool, bool) {
				if j < 0 || j >= len(outInfo) {
					return false, false
				}
				return outInfo[j].taint, outInfo[j].vol
			}
			tA, vA := ref(o.A)
			tB, vB := ref(o.B)
			tP, vP := ref(o.P)
			switch o.Kind {
			case KAlu, KSetp:
				oi.taint, oi.vol = tA || tB, vA || vB
			case KSelp, KGuard:
				oi.taint, oi.vol = tA || tB || tP, vA || vB || vP
			case KLoadG, KLoadT, KShLoad:
				oi.taint, oi.vol = true, vA
			case KLoadC:
				oi.taint, oi.vol = false, vA
			case KAtom:
				oi.taint, oi.vol = true, true
			}
			oldToNew[i] = len(out)
			out = append(out, o)
			outInfo = append(outInfo, oi)
		}

		switch op.Kind {
		case KImm:
			emit(op)
		case KAlu, KSetp:
			op.A = resolve(op.A, false, false, path)
			op.B = resolve(op.B, false, false, path)
			if op.Kind == KSetp {
				op.Alu = normIdx(op.Alu, len(cmpOps))
			} else {
				op.Alu = normIdx(op.Alu, len(aluOps))
			}
			emit(op)
		case KSelp, KGuard:
			op.A = resolve(op.A, false, false, path)
			op.B = resolve(op.B, false, false, path)
			op.P = resolve(op.P, true, false, path)
			op.Alu = normIdx(op.Alu, len(aluOps))
			emit(op)
		case KLoadG, KLoadC, KLoadT:
			op.A = resolve(op.A, false, false, path)
			emit(op)
		case KAtom:
			op.A = resolve(op.A, false, true, path)
			op.B = resolve(op.B, false, true, path)
			emit(op)
		case KShStore:
			if len(stack) > 0 || barSeen {
				continue
			}
			op.A = resolve(op.A, false, true, path)
			emit(op)
		case KBar:
			if len(stack) > 0 || barSeen {
				continue
			}
			barSeen = true
			emit(op)
		case KShLoad:
			if !barSeen {
				continue
			}
			op.A = resolve(op.A, false, false, path)
			emit(op)
		case KStore:
			op.A = resolve(op.A, false, true, path)
			emit(op)
		case KLoop:
			op.Imm = op.Imm % MaxTrip
			emit(op)
			stack = append(stack, oldToNew[i])
		case KIf:
			op.P = resolve(op.P, true, true, path)
			if op.P < 0 {
				// No usable predicate: unwrap the block, keep its body.
				droppedBegin[i] = true
				continue
			}
			emit(op)
			stack = append(stack, oldToNew[i])
		case KEnd:
			if infos[i].matchOf < 0 || droppedBegin[infos[i].matchOf] {
				continue
			}
			if len(stack) == 0 {
				continue
			}
			stack = stack[:len(stack)-1]
			emit(op)
		}
	}
	q.Ops = out
	return q
}

// canon normalizes the fields a kind does not read to their -1/0 resting
// values, so that structurally identical programs compare equal and stale
// indices in unused slots can never alias a real reference.
func canon(op Op) Op {
	switch op.Kind {
	case KImm:
		op.A, op.B, op.P, op.Alu = -1, -1, -1, 0
	case KAlu, KSetp:
		op.P = -1
	case KSelp, KGuard:
		// every field is live
	case KLoadG, KLoadT:
		op.B, op.P, op.Alu = -1, -1, 0
	case KLoadC:
		op.B, op.P, op.Alu, op.Imm = -1, -1, 0, 0
	case KAtom:
		op.P, op.Alu = -1, 0
	case KShStore:
		op.B, op.P, op.Alu, op.Imm = -1, -1, 0, 0
	case KBar, KEnd:
		op.A, op.B, op.P, op.Alu, op.Imm = -1, -1, -1, 0, 0
	case KShLoad:
		op.B, op.P, op.Alu, op.Imm = -1, -1, 0, 0
	case KStore:
		op.B, op.P, op.Alu = -1, -1, 0
	case KLoop:
		op.A, op.B, op.P, op.Alu = -1, -1, -1, 0
	case KIf:
		op.A, op.B, op.Alu = -1, -1, 0
	}
	return op
}

// AluIndex returns the KAlu/KGuard Alu selector for an ALU opcode, or -1
// when the opcode is outside the generator's pool. It lets callers that
// assemble IR by hand (internal/families) name operations by opcode instead
// of hard-coding pool positions that would silently shift if the pool
// changed.
func AluIndex(op isa.Opcode) int {
	for i, a := range aluOps {
		if a == op {
			return i
		}
	}
	return -1
}

// CmpIndex is AluIndex for the KSetp comparison pool.
func CmpIndex(op isa.CmpOp) int {
	for i, c := range cmpOps {
		if c == op {
			return i
		}
	}
	return -1
}

// normIdx clamps a selector into [0, n).
func normIdx(v, n int) int {
	if v < 0 {
		v = -v
	}
	return v % n
}
