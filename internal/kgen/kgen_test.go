package kgen

import (
	"math/rand"
	"reflect"
	"testing"

	"critload/internal/dataflow"
	"critload/internal/ptx"
)

// TestGenerateDeterministic is the generator's core contract: the same seed
// must produce byte-identical PTX, twice in the same process and across the
// two independent Generate+Build pipelines.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a, err := Build(Generate(seed, DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Build(Generate(seed, DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d second build: %v", seed, err)
		}
		if a.Kernel.Disassemble() != b.Kernel.Disassemble() {
			t.Fatalf("seed %d: PTX differs across identical generations", seed)
		}
		if !reflect.DeepEqual(a.Want, b.Want) {
			t.Fatalf("seed %d: ground truth differs across identical generations", seed)
		}
	}
}

// TestGenerateCoverage asserts — rather than hopes — that every generated
// kernel carries both load classes and at least one observable store.
func TestGenerateCoverage(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		c, err := Build(Generate(seed, DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		det, nondet := 0, 0
		for _, cls := range c.Want {
			if cls == dataflow.Deterministic {
				det++
			} else {
				nondet++
			}
		}
		if det == 0 || nondet == 0 {
			t.Errorf("seed %d: want both classes, got det=%d nondet=%d", seed, det, nondet)
		}
		stores := 0
		for _, in := range c.Kernel.Insts {
			if in.Op.IsMemory() && in.Op.String() == "st" {
				stores++
			}
		}
		if stores == 0 {
			t.Errorf("seed %d: kernel has no stores, functional oracle is vacuous", seed)
		}
	}
}

// TestClassifierMatchesGroundTruth is oracle #1 in miniature: the reference
// analysis inside the lowering pass and dataflow.Classify must agree on
// every global load of every generated kernel.
func TestClassifierMatchesGroundTruth(t *testing.T) {
	for seed := int64(1); seed <= 300; seed++ {
		c, err := Build(Generate(seed, DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := map[int]dataflow.Class{}
		for _, li := range dataflow.Classify(c.Kernel).Loads {
			got[li.InstIndex] = li.Class
		}
		if !reflect.DeepEqual(got, c.Want) {
			t.Errorf("seed %d: classifier disagrees with generator ground truth\n got=%v\nwant=%v\n%s",
				seed, got, c.Want, c.Kernel.Disassemble())
		}
	}
}

// TestRoundTrip: generated kernels must survive Disassemble→Parse with
// stable instruction indices, or the committed corpus format is broken.
func TestRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		c, err := Build(Generate(seed, DefaultConfig()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		src := c.Kernel.Disassemble()
		prog, err := ptx.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, src)
		}
		if len(prog.Kernels) != 1 {
			t.Fatalf("seed %d: got %d kernels", seed, len(prog.Kernels))
		}
		again := prog.Kernels[0].Disassemble()
		if again != src {
			t.Errorf("seed %d: disassembly not stable under reparse", seed)
		}
		for idx := range c.Want {
			if idx < 0 || idx >= len(prog.Kernels[0].Insts) {
				t.Fatalf("seed %d: want index %d out of range", seed, idx)
			}
			if !prog.Kernels[0].Insts[idx].IsGlobalLoad() {
				t.Errorf("seed %d: want index %d is not a global load after reparse", seed, idx)
			}
		}
	}
}

// TestRepairIdentity: Repair must be the identity on well-formed generator
// output — otherwise the shrinker's candidate programs drift away from what
// the generator meant.
func TestRepairIdentity(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := Generate(seed, DefaultConfig())
		q := Repair(p)
		if !reflect.DeepEqual(p.Ops, q.Ops) {
			t.Errorf("seed %d: Repair changed a well-formed program\n was=%v\n now=%v", seed, p.Ops, q.Ops)
		}
	}
}

// TestRepairTotal: Repair of an arbitrarily mutilated op list must always
// yield a program that builds, and repairing twice must be a fixpoint.
func TestRepairTotal(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for seed := int64(1); seed <= 60; seed++ {
		p := Generate(seed, DefaultConfig())
		// Delete a random chunk, the shrinker's only mutation.
		if len(p.Ops) > 1 {
			lo := r.Intn(len(p.Ops))
			hi := lo + 1 + r.Intn(len(p.Ops)-lo)
			p.Ops = append(p.Ops[:lo], p.Ops[hi:]...)
		}
		q := Repair(p)
		if _, err := Build(q); err != nil {
			t.Fatalf("seed %d: repaired program does not build: %v", seed, err)
		}
		q2 := Repair(q)
		if !reflect.DeepEqual(q.Ops, q2.Ops) {
			t.Errorf("seed %d: Repair is not a fixpoint\n q=%v\nq2=%v", seed, q.Ops, q2.Ops)
		}
	}
}

// TestSaveLoadRoundTrip: a saved case replays without the generator and the
// reparsed kernel still carries the recorded ground truth.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Build(Generate(7, DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCase(dir + "/" + c.Name + ".ptx")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel.Disassemble() != c.Kernel.Disassemble() {
		t.Errorf("kernel changed across save/load")
	}
	if !reflect.DeepEqual(got.Want, c.Want) {
		t.Errorf("ground truth changed across save/load: got %v want %v", got.Want, c.Want)
	}
	if !reflect.DeepEqual(got.Data0, c.Data0) || !reflect.DeepEqual(got.Data1, c.Data1) ||
		!reflect.DeepEqual(got.Const, c.Const) {
		t.Errorf("input arrays changed across save/load")
	}
	if got.GridX != c.GridX || got.BlockX != c.BlockX {
		t.Errorf("geometry changed across save/load")
	}
	res := map[int]dataflow.Class{}
	for _, li := range dataflow.Classify(got.Kernel).Loads {
		res[li.InstIndex] = li.Class
	}
	if !reflect.DeepEqual(res, got.Want) {
		t.Errorf("classifier disagrees with reloaded ground truth")
	}
}
