package kgen

import (
	"fmt"

	"critload/internal/dataflow"
	"critload/internal/isa"
	"critload/internal/ptx"
)

// RegisterBudget caps NumRegs × BlockX so every generated kernel fits an
// SM's 32768-register file: a kernel that cannot be scheduled livelocks the
// timing simulator, which is the one failure mode a differential harness
// must never construct on purpose.
const RegisterBudget = 30720

// Build lowers a program to a PTX kernel and packages it as a self-contained
// test case: kernel, launch geometry, seeded input arrays, and the
// ground-truth classification (Want) of every emitted global load. The
// ground truth falls out of the same reference analysis the lowering uses to
// pick operands, so it is correct by construction; dataflow.Classify must
// reproduce it exactly.
//
// Build expects a well-formed program (Generate or Repair output).
func Build(p *Prog) (*Case, error) {
	infos := analyze(p)
	b := ptx.NewBuilder(fmt.Sprintf("kgen_%016x", uint64(p.Seed)))
	for _, name := range paramNames {
		b.Param(name, isa.U32)
	}
	useShared := false
	for _, op := range p.Ops {
		switch op.Kind {
		case KShStore, KShLoad, KBar:
			useShared = true
		}
	}
	if useShared {
		b.Shared(4 * p.BlockX)
	}

	nextReg, nextPred := 0, 0
	nr := func() int { r := nextReg; nextReg++; return r }
	np := func() int { r := nextPred; nextPred++; return r }

	// Prologue: thread coordinates, parameter bases, derived own-slot
	// addresses. Always emitted in full so register numbering is a pure
	// function of the op list.
	rTid, rCta, rNtid := nr(), nr(), nr()
	b.Op(isa.OpMov, isa.U32, isa.Reg(rTid), isa.SReg(isa.SrTidX))
	b.Op(isa.OpMov, isa.U32, isa.Reg(rCta), isa.SReg(isa.SrCtaIdX))
	b.Op(isa.OpMov, isa.U32, isa.Reg(rNtid), isa.SReg(isa.SrNTidX))
	rGtid := nr()
	b.Op(isa.OpMad, isa.U32, isa.Reg(rGtid), isa.Reg(rCta), isa.Reg(rNtid), isa.Reg(rTid))
	bases := make([]int, len(paramNames))
	for i, name := range paramNames {
		bases[i] = nr()
		b.LdParam(isa.Reg(bases[i]), name)
	}
	rData := [2]int{bases[0], bases[1]}
	rCBase, rOut, rScratch := bases[2], bases[3], bases[4]
	rOutSelf := nr()
	b.Op(isa.OpMad, isa.U32, isa.Reg(rOutSelf), isa.Reg(rGtid), isa.Imm(OutSlots*4), isa.Reg(rOut))
	rShSelf := -1
	if useShared {
		rShSelf = nr()
		b.Op(isa.OpShl, isa.U32, isa.Reg(rShSelf), isa.Reg(rTid), isa.Imm(2))
	}

	regOf := make([]int, len(p.Ops))
	predOf := make([]int, len(p.Ops))
	for i := range regOf {
		regOf[i], predOf[i] = -1, -1
	}

	// validRef mirrors analyze's reference rule exactly: earlier live op of
	// the right kind whose scope encloses op i.
	validRef := func(i, j int, pred bool) bool {
		if j < 0 || j >= i || infos[j].dead {
			return false
		}
		if pred && !infos[j].pred || !pred && !infos[j].val {
			return false
		}
		return isPrefix(infos[j].path, infos[i].path)
	}
	aOpnd := func(i, ref int) isa.Operand {
		if validRef(i, ref, false) {
			return isa.Reg(regOf[ref])
		}
		return isa.Reg(rGtid)
	}
	bOpnd := func(i, ref int, imm uint32) isa.Operand {
		if validRef(i, ref, false) {
			return isa.Reg(regOf[ref])
		}
		return isa.Imm(int64(imm))
	}
	// refTaint reports the effective taint of an A-slot reference (the
	// fallback gtid is clean).
	refTaint := func(i, ref int) bool {
		return validRef(i, ref, false) && infos[ref].taint
	}

	want := map[int]dataflow.Class{}
	// emitIndexed lowers a masked, scaled array access:
	//   t1 = idx & mask; t2 = t1*4 + base; dst = ld.space [t2]
	emitIndexed := func(space isa.MemSpace, base int, mask uint32, idx isa.Operand) int {
		t1, t2, dst := nr(), nr(), nr()
		b.Op(isa.OpAnd, isa.U32, isa.Reg(t1), idx, isa.Imm(int64(mask)))
		b.Op(isa.OpMad, isa.U32, isa.Reg(t2), isa.Reg(t1), isa.Imm(4), isa.Reg(base))
		b.Ld(space, isa.U32, isa.Reg(dst), isa.Mem(t2, 0))
		return dst
	}

	type open struct {
		loop *ptx.Loop
		iff  *ptx.If
	}
	var stack []open

	for i, op := range p.Ops {
		if infos[i].dead {
			continue
		}
		switch op.Kind {
		case KImm:
			regOf[i] = nr()
			b.Op(isa.OpMov, isa.U32, isa.Reg(regOf[i]), isa.Imm(int64(op.Imm)))
		case KAlu:
			regOf[i] = nr()
			b.Op(aluOps[normIdx(op.Alu, len(aluOps))], isa.U32, isa.Reg(regOf[i]),
				aOpnd(i, op.A), bOpnd(i, op.B, op.Imm))
		case KSelp:
			regOf[i] = nr()
			if validRef(i, op.P, true) {
				b.Selp(isa.U32, isa.Reg(regOf[i]), aOpnd(i, op.A), bOpnd(i, op.B, op.Imm), predOf[op.P])
			} else {
				b.Op(isa.OpAdd, isa.U32, isa.Reg(regOf[i]), aOpnd(i, op.A), bOpnd(i, op.B, op.Imm))
			}
		case KGuard:
			regOf[i] = nr()
			alu := aluOps[normIdx(op.Alu, len(aluOps))]
			if validRef(i, op.P, true) {
				b.Op(isa.OpMov, isa.U32, isa.Reg(regOf[i]), isa.Imm(int64(op.Imm>>1)))
				b.GuardedOp(predOf[op.P], op.Imm&1 == 1, alu, isa.U32, isa.Reg(regOf[i]),
					aOpnd(i, op.A), bOpnd(i, op.B, op.Imm))
			} else {
				b.Op(alu, isa.U32, isa.Reg(regOf[i]), aOpnd(i, op.A), bOpnd(i, op.B, op.Imm))
			}
		case KSetp:
			predOf[i] = np()
			b.Setp(cmpOps[normIdx(op.Alu, len(cmpOps))], isa.U32, predOf[i],
				aOpnd(i, op.A), bOpnd(i, op.B, op.Imm))
		case KLoadG:
			cls := dataflow.Deterministic
			if refTaint(i, op.A) {
				cls = dataflow.NonDeterministic
			}
			regOf[i] = emitIndexed(isa.SpaceGlobal, rData[op.Imm&1], uint32(p.DataWords-1), aOpnd(i, op.A))
			want[b.Len()-1] = cls
		case KLoadC:
			regOf[i] = emitIndexed(isa.SpaceConst, rCBase, ConstWords-1, aOpnd(i, op.A))
		case KLoadT:
			regOf[i] = emitIndexed(isa.SpaceTex, rData[op.Imm&1], uint32(p.DataWords-1), aOpnd(i, op.A))
		case KAtom:
			addr := isa.Reg(rGtid)
			if validRef(i, op.A, false) && !infos[op.A].vol {
				addr = isa.Reg(regOf[op.A])
			}
			val := isa.Imm(int64(op.Imm | 1))
			if validRef(i, op.B, false) && !infos[op.B].vol {
				val = isa.Reg(regOf[op.B])
			}
			t1, t2 := nr(), nr()
			b.Op(isa.OpAnd, isa.U32, isa.Reg(t1), addr, isa.Imm(ScratchWords-1))
			b.Op(isa.OpMad, isa.U32, isa.Reg(t2), isa.Reg(t1), isa.Imm(4), isa.Reg(rScratch))
			regOf[i] = nr()
			b.Atom(p.AtomOp, isa.U32, isa.Reg(regOf[i]), isa.Mem(t2, 0), val)
		case KShStore:
			val := isa.Reg(rGtid)
			if validRef(i, op.A, false) && !infos[op.A].vol {
				val = isa.Reg(regOf[op.A])
			}
			b.St(isa.SpaceShared, isa.U32, isa.Mem(rShSelf, 0), val)
		case KBar:
			b.Bar()
		case KShLoad:
			t1, t2 := nr(), nr()
			b.Op(isa.OpAnd, isa.U32, isa.Reg(t1), aOpnd(i, op.A), isa.Imm(int64(p.BlockX-1)))
			b.Op(isa.OpShl, isa.U32, isa.Reg(t2), isa.Reg(t1), isa.Imm(2))
			regOf[i] = nr()
			b.Ld(isa.SpaceShared, isa.U32, isa.Reg(regOf[i]), isa.Mem(t2, 0))
		case KStore:
			val := isa.Reg(rGtid)
			if validRef(i, op.A, false) && !infos[op.A].vol {
				val = isa.Reg(regOf[op.A])
			}
			b.St(isa.SpaceGlobal, isa.U32, isa.Mem(rOutSelf, int64(op.Imm%OutSlots)*4), val)
		case KLoop:
			cnt, pred := nr(), np()
			stack = append(stack, open{loop: b.BeginLoop(cnt, pred, int64(1+op.Imm%MaxTrip))})
		case KIf:
			if validRef(i, op.P, true) && !infos[op.P].vol {
				stack = append(stack, open{iff: b.BeginIf(predOf[op.P], op.Imm&1 == 1)})
			} else {
				stack = append(stack, open{})
			}
		case KEnd:
			if n := len(stack); n > 0 {
				o := stack[n-1]
				stack = stack[:n-1]
				switch {
				case o.loop != nil:
					o.loop.End()
				case o.iff != nil:
					o.iff.End()
				}
			}
		}
	}
	for n := len(stack); n > 0; n = len(stack) {
		o := stack[n-1]
		stack = stack[:n-1]
		switch {
		case o.loop != nil:
			o.loop.End()
		case o.iff != nil:
			o.iff.End()
		}
	}
	b.Exit()

	k, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("kgen: lower seed %d: %w", p.Seed, err)
	}
	if k.NumRegs*p.BlockX > RegisterBudget {
		return nil, fmt.Errorf("kgen: seed %d: %d regs × %d threads exceeds the register budget",
			p.Seed, k.NumRegs, p.BlockX)
	}

	c := &Case{
		Name:      k.Name,
		Kernel:    k,
		Prog:      p,
		GridX:     p.GridX,
		BlockX:    p.BlockX,
		DataWords: p.DataWords,
		Data0:     seededWords(p.Seed, 0xd0, p.DataWords),
		Data1:     seededWords(p.Seed, 0xd1, p.DataWords),
		Const:     seededWords(p.Seed, 0xcc, ConstWords),
		Want:      want,
	}
	return c, nil
}

// paramNames is the fixed kernel parameter list: two data-array bases, the
// const-array base, the output base and the atomic scratch base.
var paramNames = []string{"data0", "data1", "cbase", "out", "scratch"}

// seededWords fills an input array deterministically from the program seed
// (splitmix64, truncated to 32 bits).
func seededWords(seed int64, salt uint64, n int) []uint32 {
	out := make([]uint32, n)
	x := uint64(seed) ^ (salt * 0x9e3779b97f4a7c15)
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = uint32(z ^ (z >> 31))
	}
	return out
}
