// Package mem provides the simulated global-memory backing store: a sparse,
// page-granular byte-addressable space with a bump allocator and typed
// accessors. Addresses are 32 bit, matching the ISA's register width.
package mem

import (
	"fmt"
	"math"
)

// PageBits is log2 of the backing-store page size.
const PageBits = 16

// PageSize is the backing-store allocation granularity (64 KiB).
const PageSize = 1 << PageBits

// BlockBytes is the cache-line / coalescing granularity used throughout the
// simulator and the paper's block-level statistics (128 B).
const BlockBytes = 128

// BlockAddr returns the 128-byte-aligned block address containing addr.
func BlockAddr(addr uint32) uint32 { return addr &^ (BlockBytes - 1) }

// Memory is a sparse 32-bit byte-addressable space.
type Memory struct {
	pages map[uint32][]byte
	// brk is the bump-allocation cursor. Address 0 is kept unmapped so that
	// null-pointer style bugs in kernels fault visibly in tests.
	brk uint32
}

// New returns an empty memory with the allocator starting at 64 KiB.
func New() *Memory {
	return &Memory{pages: make(map[uint32][]byte), brk: PageSize}
}

// Alloc reserves size bytes aligned to BlockBytes and returns the base
// address. Alloc panics when the 32-bit space is exhausted, which indicates a
// mis-scaled workload rather than a runtime condition to handle.
func (m *Memory) Alloc(size uint32) uint32 {
	if size == 0 {
		size = 1
	}
	base := (m.brk + BlockBytes - 1) &^ (BlockBytes - 1)
	end := uint64(base) + uint64(size)
	if end > math.MaxUint32 {
		panic(fmt.Sprintf("mem: address space exhausted allocating %d bytes at %#x", size, base))
	}
	m.brk = uint32(end)
	return base
}

// Allocated returns the current top of the allocated region.
func (m *Memory) Allocated() uint32 { return m.brk }

func (m *Memory) page(addr uint32) []byte {
	p, ok := m.pages[addr>>PageBits]
	if !ok {
		p = make([]byte, PageSize)
		m.pages[addr>>PageBits] = p
	}
	return p
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) byte {
	p, ok := m.pages[addr>>PageBits]
	if !ok {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v byte) {
	m.page(addr)[addr&(PageSize-1)] = v
}

// Read32 reads a little-endian 32-bit word. Unaligned access is supported
// (the emulator's kernels always use 4-byte alignment, but tests exercise
// arbitrary addresses).
func (m *Memory) Read32(addr uint32) uint32 {
	off := addr & (PageSize - 1)
	if off <= PageSize-4 {
		p, ok := m.pages[addr>>PageBits]
		if !ok {
			return 0
		}
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	// Page-straddling access.
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write32 writes a little-endian 32-bit word.
func (m *Memory) Write32(addr uint32, v uint32) {
	off := addr & (PageSize - 1)
	if off <= PageSize-4 {
		p := m.page(addr)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	for i := uint32(0); i < 4; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// ReadF32 reads a float32.
func (m *Memory) ReadF32(addr uint32) float32 {
	return math.Float32frombits(m.Read32(addr))
}

// WriteF32 writes a float32.
func (m *Memory) WriteF32(addr uint32, v float32) {
	m.Write32(addr, math.Float32bits(v))
}

// WriteU32s stores a slice of words starting at base.
func (m *Memory) WriteU32s(base uint32, vs []uint32) {
	for i, v := range vs {
		m.Write32(base+uint32(i*4), v)
	}
}

// ReadU32s loads n words starting at base.
func (m *Memory) ReadU32s(base uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = m.Read32(base + uint32(i*4))
	}
	return out
}

// WriteF32s stores a slice of float32 starting at base.
func (m *Memory) WriteF32s(base uint32, vs []float32) {
	for i, v := range vs {
		m.WriteF32(base+uint32(i*4), v)
	}
}

// ReadF32s loads n float32 values starting at base.
func (m *Memory) ReadF32s(base uint32, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = m.ReadF32(base + uint32(i*4))
	}
	return out
}

// AllocU32s allocates and initializes a word array, returning its base.
func (m *Memory) AllocU32s(vs []uint32) uint32 {
	base := m.Alloc(uint32(4 * len(vs)))
	m.WriteU32s(base, vs)
	return base
}

// AllocF32s allocates and initializes a float array, returning its base.
func (m *Memory) AllocF32s(vs []float32) uint32 {
	base := m.Alloc(uint32(4 * len(vs)))
	m.WriteF32s(base, vs)
	return base
}

// AllocZero allocates a zeroed region of size bytes.
func (m *Memory) AllocZero(size uint32) uint32 { return m.Alloc(size) }

// Footprint returns the number of mapped pages, a debugging aid for tests
// that guard against runaway address generation.
func (m *Memory) Footprint() int { return len(m.pages) }
