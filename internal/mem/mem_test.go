package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Write32(1024, 0xdeadbeef)
	if got := m.Read32(1024); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x, want 0xdeadbeef", got)
	}
	m.WriteF32(2048, 3.25)
	if got := m.ReadF32(2048); got != 3.25 {
		t.Errorf("ReadF32 = %v, want 3.25", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	if got := m.Read32(123456); got != 0 {
		t.Errorf("unwritten Read32 = %#x, want 0", got)
	}
	if got := m.Read8(99); got != 0 {
		t.Errorf("unwritten Read8 = %#x, want 0", got)
	}
	if m.Footprint() != 0 {
		t.Errorf("reads must not allocate pages, footprint = %d", m.Footprint())
	}
}

func TestPageStraddlingAccess(t *testing.T) {
	m := New()
	addr := uint32(PageSize - 2) // straddles pages 0 and 1
	m.Write32(addr, 0x11223344)
	if got := m.Read32(addr); got != 0x11223344 {
		t.Errorf("straddling Read32 = %#x, want 0x11223344", got)
	}
	if m.Read8(addr) != 0x44 || m.Read8(addr+3) != 0x11 {
		t.Errorf("little-endian layout broken across pages")
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	m := New()
	a := m.Alloc(100)
	b := m.Alloc(1)
	c := m.Alloc(4096)
	for _, base := range []uint32{a, b, c} {
		if base%BlockBytes != 0 {
			t.Errorf("allocation %#x not %d-byte aligned", base, BlockBytes)
		}
		if base == 0 {
			t.Errorf("allocation at address 0")
		}
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=%#x(+100) b=%#x", a, b)
	}
	if c < b+1 {
		t.Errorf("allocations overlap: b=%#x(+1) c=%#x", b, c)
	}
}

func TestSliceHelpers(t *testing.T) {
	m := New()
	u := []uint32{1, 2, 3, 4, 5}
	base := m.AllocU32s(u)
	got := m.ReadU32s(base, len(u))
	for i := range u {
		if got[i] != u[i] {
			t.Errorf("u32s[%d] = %d, want %d", i, got[i], u[i])
		}
	}
	f := []float32{0.5, -1.25, float32(math.Pi)}
	fb := m.AllocF32s(f)
	gf := m.ReadF32s(fb, len(f))
	for i := range f {
		if gf[i] != f[i] {
			t.Errorf("f32s[%d] = %v, want %v", i, gf[i], f[i])
		}
	}
}

func TestBlockAddr(t *testing.T) {
	cases := []struct{ in, want uint32 }{
		{0, 0}, {1, 0}, {127, 0}, {128, 128}, {129, 128}, {4096, 4096},
	}
	for _, c := range cases {
		if got := BlockAddr(c.in); got != c.want {
			t.Errorf("BlockAddr(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Property: any written word reads back, and neighbours are unaffected.
func TestQuickWordRoundTrip(t *testing.T) {
	m := New()
	f := func(addrSeed uint32, v uint32) bool {
		addr := (addrSeed % (1 << 24)) * 4
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: byte-wise writes compose to the same word as Write32.
func TestQuickByteWordEquivalence(t *testing.T) {
	f := func(addrSeed uint32, v uint32) bool {
		addr := addrSeed % (1 << 26)
		m1, m2 := New(), New()
		m1.Write32(addr, v)
		for i := uint32(0); i < 4; i++ {
			m2.Write8(addr+i, byte(v>>(8*i)))
		}
		return m1.Read32(addr) == m2.Read32(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
