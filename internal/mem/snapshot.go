package mem

import (
	"sort"

	"critload/internal/checkpoint"
)

// snapTag marks the memory section of a checkpoint payload.
const snapTag = 0x4D454D30 // "MEM0"

// Snapshot serializes the full memory contents: the allocator cursor and
// every mapped page in ascending page order (sorted iteration keeps the
// encoding deterministic for content addressing).
func (m *Memory) Snapshot(w *checkpoint.Writer) {
	w.Tag(snapTag)
	w.U32(m.brk)
	ids := make([]uint32, 0, len(m.pages))
	for id := range m.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		w.U32(id)
		w.Blob(m.pages[id])
	}
}

// Restore replaces the memory contents wholesale with a snapshot: pages not
// present in the snapshot are unmapped, so the result is byte-identical to
// the memory at snapshot time regardless of what the instance touched since.
// On error the memory is left unchanged.
func (m *Memory) Restore(r *checkpoint.Reader) error {
	r.Tag(snapTag)
	brk := r.U32()
	n := r.Count(4 + PageSize)
	pages := make(map[uint32][]byte, n)
	for i := 0; i < n; i++ {
		id := r.U32()
		b := r.Blob()
		if r.Err() != nil {
			return r.Err()
		}
		if len(b) != PageSize {
			r.Failf("mem: snapshot page %#x has %d bytes, want %d", id, len(b), PageSize)
			return r.Err()
		}
		pages[id] = b
	}
	if err := r.Err(); err != nil {
		return err
	}
	m.brk = brk
	m.pages = pages
	return nil
}
