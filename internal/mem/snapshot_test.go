package mem

import (
	"bytes"
	"strings"
	"testing"

	"critload/internal/checkpoint"
)

func snapBytes(m *Memory) []byte {
	w := checkpoint.NewWriter()
	m.Snapshot(w)
	return w.Bytes()
}

// TestSnapshotRoundTrip checks that the allocator cursor and every mapped
// page survive a restore into a fresh memory byte for byte, and that restore
// replaces the target's contents wholesale — pages absent from the snapshot
// are unmapped.
func TestSnapshotRoundTrip(t *testing.T) {
	src := New()
	base := src.AllocU32s([]uint32{1, 2, 3, 4})
	far := src.Alloc(3 * PageSize) // spans several pages
	src.Write32(far+2*PageSize, 0xDEADBEEF)

	b1 := snapBytes(src)
	dst := New()
	dst.Write32(dst.Alloc(4), 99) // state the restore must erase
	if err := dst.Restore(checkpoint.NewReader(b1)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b2 := snapBytes(dst); !bytes.Equal(b1, b2) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(b1), len(b2))
	}
	if got := dst.Read32(base + 8); got != 3 {
		t.Errorf("restored word = %d, want 3", got)
	}
	if got := dst.Read32(far + 2*PageSize); got != 0xDEADBEEF {
		t.Errorf("restored far word = %#x", got)
	}
	if dst.Allocated() != src.Allocated() {
		t.Errorf("brk = %d, want %d", dst.Allocated(), src.Allocated())
	}
}

// TestRestoreLeavesMemoryUnchangedOnError checks the all-or-nothing
// contract: a truncated payload and a payload with a short page both leave
// the receiver exactly as it was.
func TestRestoreLeavesMemoryUnchangedOnError(t *testing.T) {
	src := New()
	src.Write32(src.Alloc(4), 7)
	good := snapBytes(src)

	dst := New()
	addr := dst.Alloc(4)
	dst.Write32(addr, 123)
	before := snapBytes(dst)

	if err := dst.Restore(checkpoint.NewReader(good[:len(good)-PageSize/2])); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if !bytes.Equal(before, snapBytes(dst)) || dst.Read32(addr) != 123 {
		t.Fatal("failed restore mutated the memory")
	}

	w := checkpoint.NewWriter()
	w.Tag(snapTag)
	w.U32(PageSize)
	w.Int(1)
	w.U32(0)
	w.Blob(make([]byte, PageSize+8)) // not a full page
	err := dst.Restore(checkpoint.NewReader(w.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "page") {
		t.Fatalf("short page: %v", err)
	}
	if !bytes.Equal(before, snapBytes(dst)) {
		t.Fatal("failed restore mutated the memory")
	}
}
