// Package memreq defines the memory request that flows through the timing
// hierarchy (L1 → interconnect → L2 → DRAM → reply). Requests carry the
// originating load's classification and the timestamps needed for the
// paper's turnaround decomposition (Figures 5-7).
package memreq

import "fmt"

// Kind discriminates request types.
type Kind uint8

// Request kinds.
const (
	Load Kind = iota
	Store
	Atomic
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Atomic:
		return "atomic"
	}
	return "?"
}

// Level records where a request was serviced.
type Level uint8

// Service levels.
const (
	LvlNone Level = iota
	LvlL1
	LvlL2
	LvlDRAM
)

func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlDRAM:
		return "DRAM"
	}
	return "none"
}

// Request is one coalesced 128-byte block access in flight.
type Request struct {
	ID        uint64
	Block     uint32 // 128-byte-aligned address
	Kind      Kind
	SM        int
	Partition int    // destination memory partition
	PC        uint32 // originating instruction PC
	Kernel    string // originating kernel (for per-PC statistics)
	NonDet    bool   // classification of the originating global load
	Lanes     int    // number of lanes merged into this request
	// BypassL1 marks requests routed around the L1 (the Section X.A
	// instruction-specific optimization for non-deterministic loads); their
	// replies complete directly instead of filling an L1 line.
	BypassL1 bool
	// Prefetch marks speculative next-line requests; they are excluded from
	// the demand-access statistics.
	Prefetch bool

	// Timestamps, in core cycles. A zero value means "not reached".
	Issued       int64 // warp op dispatched to the LD/ST unit
	AcceptedL1   int64 // L1 accepted the access (hit or miss reservation)
	InjectedICNT int64 // miss injected into the request network
	ArrivedL2    int64 // arrived at the memory partition
	DoneL2       int64 // response ready at the partition (L2 hit or DRAM fill)
	Returned     int64 // response delivered back at the SM

	Serviced Level

	// pooled guards against double-Put: it is set while the request sits on
	// a free list and cleared when Get hands it out again. A double Put
	// would alias one request under two owners and corrupt timing state in
	// ways that surface far from the bug, so it panics immediately instead.
	pooled bool
}

func (r *Request) String() string {
	return fmt.Sprintf("req#%d %s block %#x sm%d part%d pc=0x%x nondet=%v",
		r.ID, r.Kind, r.Block, r.SM, r.Partition, r.PC, r.NonDet)
}

// Pool is a free list of Requests for the timing simulator's hot path: a
// memory-bound run creates one Request per coalesced access, and recycling
// them at retirement keeps the steady-state allocation rate near zero.
//
// Ownership rules (see docs/PERFORMANCE.md):
//   - A Pool belongs to one GPU instance and is not safe for concurrent use;
//     the simulator is single-threaded per device by design.
//   - Put hands a request back once it is terminal: the last reply for its
//     warp op retired at the SM, the write-through store issued at the DRAM
//     channel, or an ownerless reply (prefetch, dst-less atomic) completed.
//   - Put does not clear the request — Get does — so reads of an
//     already-released request remain valid until the pool reuses it within
//     the same cycle's event processing. No component may *write* to a
//     request after Put.
//
// A nil *Pool is valid and degrades to plain allocation (no recycling).
type Pool struct {
	free []*Request
}

// Get returns a zeroed request, reusing a recycled one when available.
func (p *Pool) Get() *Request {
	if p == nil {
		return &Request{}
	}
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*r = Request{}
		return r
	}
	return &Request{}
}

// Put recycles a terminal request. It tolerates nil receivers and nil
// requests so call sites need no guards, but panics on a double Put — a
// request may only be released by its single terminal owner.
func (p *Pool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	if r.pooled {
		panic("memreq: double Put of request " + r.String())
	}
	r.pooled = true
	p.free = append(p.free, r)
}

// FreeLen reports the number of recycled requests currently pooled (a
// testing aid).
func (p *Pool) FreeLen() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
