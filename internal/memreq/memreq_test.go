package memreq

import (
	"strings"
	"testing"
)

func TestKindAndLevelStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Atomic.String() != "atomic" {
		t.Errorf("kind strings wrong")
	}
	if LvlL1.String() != "L1" || LvlL2.String() != "L2" || LvlDRAM.String() != "DRAM" || LvlNone.String() != "none" {
		t.Errorf("level strings wrong")
	}
}

func TestPoolRecyclesAndZeroes(t *testing.T) {
	var p Pool
	r := p.Get()
	r.ID = 42
	r.NonDet = true
	r.Returned = 99
	p.Put(r)
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d, want 1", p.FreeLen())
	}
	// Put must not clear: late readers of a terminal request stay valid.
	if r.ID != 42 || r.Returned != 99 {
		t.Fatalf("Put cleared the request: %+v", r)
	}
	got := p.Get()
	if got != r {
		t.Fatalf("Get did not reuse the recycled request")
	}
	if got.ID != 0 || got.NonDet || got.Returned != 0 {
		t.Fatalf("Get returned a dirty request: %+v", got)
	}
	if p.FreeLen() != 0 {
		t.Fatalf("FreeLen = %d after reuse, want 0", p.FreeLen())
	}
}

func TestNilPoolDegradesToAllocation(t *testing.T) {
	var p *Pool
	r := p.Get()
	if r == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Put(r) // must not panic
	p.Put(nil)
	if p.FreeLen() != 0 {
		t.Fatal("nil pool reports pooled requests")
	}
}

// TestPoolDoublePutPanics pins down the ownership contract: releasing the
// same request twice would put one object on the free list under two owners,
// and the resulting state corruption surfaces far from the offending call
// site. Put must therefore fail fast.
func TestPoolDoublePutPanics(t *testing.T) {
	var p Pool
	r := p.Get()
	p.Put(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(r)
}

// TestPoolReuseAfterRecycleIsNotDoublePut checks the flip side: once Get
// hands a recycled request back out, releasing it again is a fresh, legal
// Put, not a double one.
func TestPoolReuseAfterRecycleIsNotDoublePut(t *testing.T) {
	var p Pool
	r := p.Get()
	p.Put(r)
	got := p.Get()
	if got != r {
		t.Fatalf("Get did not reuse the recycled request")
	}
	p.Put(got) // must not panic: ownership was re-acquired via Get
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d, want 1", p.FreeLen())
	}
}

// TestPoolUseAfterPutReadsStayValid documents the deliberate laxness in the
// contract: Put does not clear the request, so a late *reader* of a terminal
// request (e.g. a stats sink walking replies at end of cycle) sees intact
// fields until the pool reuses the object.
func TestPoolUseAfterPutReadsStayValid(t *testing.T) {
	var p Pool
	r := p.Get()
	r.ID = 7
	r.Block = 0x80
	r.Serviced = LvlDRAM
	p.Put(r)
	if r.ID != 7 || r.Block != 0x80 || r.Serviced != LvlDRAM {
		t.Fatalf("reads after Put saw cleared fields: %+v", r)
	}
	// ...but after the pool recycles the object, the old handle aliases the
	// new request and all bets are off — which is exactly why only reads
	// before reuse are sanctioned.
	fresh := p.Get()
	if fresh != r {
		t.Fatalf("expected the recycled object back")
	}
	if r.ID != 0 || r.Serviced != LvlNone {
		t.Fatalf("recycled request not zeroed through the stale handle: %+v", r)
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{
		ID: 7, Block: 0x1000, Kind: Load, SM: 3, Partition: 2,
		PC: 0x110, NonDet: true,
	}
	s := r.String()
	for _, want := range []string{"req#7", "load", "0x1000", "sm3", "part2", "pc=0x110", "nondet=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
