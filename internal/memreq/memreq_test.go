package memreq

import (
	"strings"
	"testing"
)

func TestKindAndLevelStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Atomic.String() != "atomic" {
		t.Errorf("kind strings wrong")
	}
	if LvlL1.String() != "L1" || LvlL2.String() != "L2" || LvlDRAM.String() != "DRAM" || LvlNone.String() != "none" {
		t.Errorf("level strings wrong")
	}
}

func TestPoolRecyclesAndZeroes(t *testing.T) {
	var p Pool
	r := p.Get()
	r.ID = 42
	r.NonDet = true
	r.Returned = 99
	p.Put(r)
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d, want 1", p.FreeLen())
	}
	// Put must not clear: late readers of a terminal request stay valid.
	if r.ID != 42 || r.Returned != 99 {
		t.Fatalf("Put cleared the request: %+v", r)
	}
	got := p.Get()
	if got != r {
		t.Fatalf("Get did not reuse the recycled request")
	}
	if got.ID != 0 || got.NonDet || got.Returned != 0 {
		t.Fatalf("Get returned a dirty request: %+v", got)
	}
	if p.FreeLen() != 0 {
		t.Fatalf("FreeLen = %d after reuse, want 0", p.FreeLen())
	}
}

func TestNilPoolDegradesToAllocation(t *testing.T) {
	var p *Pool
	r := p.Get()
	if r == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Put(r) // must not panic
	p.Put(nil)
	if p.FreeLen() != 0 {
		t.Fatal("nil pool reports pooled requests")
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{
		ID: 7, Block: 0x1000, Kind: Load, SM: 3, Partition: 2,
		PC: 0x110, NonDet: true,
	}
	s := r.String()
	for _, want := range []string{"req#7", "load", "0x1000", "sm3", "part2", "pc=0x110", "nondet=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
