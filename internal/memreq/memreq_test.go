package memreq

import (
	"strings"
	"testing"
)

func TestKindAndLevelStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Atomic.String() != "atomic" {
		t.Errorf("kind strings wrong")
	}
	if LvlL1.String() != "L1" || LvlL2.String() != "L2" || LvlDRAM.String() != "DRAM" || LvlNone.String() != "none" {
		t.Errorf("level strings wrong")
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{
		ID: 7, Block: 0x1000, Kind: Load, SM: 3, Partition: 2,
		PC: 0x110, NonDet: true,
	}
	s := r.String()
	for _, want := range []string{"req#7", "load", "0x1000", "sm3", "part2", "pc=0x110", "nondet=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
