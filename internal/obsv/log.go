package obsv

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// NewLogger builds a structured logger in the requested format ("text" or
// "json") at the requested level. Unknown formats fall back to text, the
// shape a human tails; json is the shape a log pipeline ingests.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a flag string to a slog level, defaulting to info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NopLogger discards everything; it is the default for library callers that
// did not wire a logger, so instrumented code can log unconditionally.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// ---------------------------------------------------------------------------
// Request IDs.

// ctxKey keys obsv values in a context.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDHeader is the header request IDs arrive in and are echoed on.
const RequestIDHeader = "X-Request-ID"

// reqSeq breaks ties if the random source ever fails.
var reqSeq atomic.Uint64

// NewRequestID mints a 16-hex-digit random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stores a request ID in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request ID, or "" outside a request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts client-supplied IDs that are safe to echo and log:
// short, printable, no separators that could forge log fields.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}
