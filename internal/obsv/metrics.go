// Package obsv is the service's observability layer: a dependency-free
// metrics registry with Prometheus text exposition, slog-based structured
// logging with per-request IDs, and the HTTP middleware chain (request-ID
// injection, access logging, panic recovery, in-flight and latency
// instrumentation) that wraps the critloadd API.
package obsv

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricName constrains family names to the Prometheus data model.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// labelName constrains label names likewise.
var labelName = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// DefBuckets are the default latency histogram bounds in seconds, matching
// the conventional Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metric is one sample series inside a family; Write emits its exposition
// lines (one for scalars, bucket/sum/count for histograms).
type metric interface {
	write(w io.Writer, name string)
}

// family groups every series sharing a metric name; HELP/TYPE are emitted
// once per family, series in registration order.
type family struct {
	name, help, typ string
	labelSets       map[string]bool // rendered label strings already taken
	metrics         []metric
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; registration
// of a name with a conflicting type, or of a duplicate (name, labels) pair,
// panics — both are programming errors worth failing loudly on.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family registration order, for stable exposition
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register validates and attaches one series to its (possibly new) family.
func (r *Registry) register(name, help, typ string, labels map[string]string, m metric) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", name))
	}
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, labelSets: map[string]bool{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obsv: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if f.labelSets[lbl] {
		panic(fmt.Sprintf("obsv: duplicate metric %s{%s}", name, lbl))
	}
	f.labelSets[lbl] = true
	f.metrics = append(f.metrics, m)
}

// Counter registers a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	c := &Counter{lbl: renderLabels(labels)}
	r.register(name, help, "counter", labels, c)
	return c
}

// Gauge registers a gauge that can move in both directions.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	g := &Gauge{lbl: renderLabels(labels)}
	r.register(name, help, "gauge", labels, g)
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the natural fit for counters that already live elsewhere (the job
// manager's atomic stats block).
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	r.register(name, help, "counter", labels, &funcMetric{lbl: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.register(name, help, "gauge", labels, &funcMetric{lbl: renderLabels(labels), fn: fn})
}

// Histogram registers a cumulative histogram over the given ascending upper
// bounds (the implicit +Inf bucket is added automatically). A nil or empty
// buckets slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, labels map[string]string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obsv: histogram %q buckets not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		lbl:     renderLabels(labels),
		bounds:  append([]float64(nil), buckets...),
		buckets: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(name, help, "histogram", labels, h)
	return h
}

// WritePrometheus renders every family in the text exposition format:
// HELP and TYPE once per family, then its series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range f.metrics {
			m.write(w, f.name)
		}
	}
}

// ---------------------------------------------------------------------------
// Series implementations.

// Counter is a monotonically increasing series.
type Counter struct {
	lbl string
	v   atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(c.lbl), c.v.Load())
}

// Gauge is a series that can move in both directions.
type Gauge struct {
	lbl string
	v   atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(g.lbl), g.v.Load())
}

// funcMetric reads its value from a callback at scrape time.
type funcMetric struct {
	lbl string
	fn  func() float64
}

func (f *funcMetric) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, braced(f.lbl), formatFloat(f.fn()))
}

// Histogram is a cumulative histogram: per-bucket observation counts
// (rendered cumulatively with the conventional le label), a running sum and
// a total count. Observe is lock-free.
type Histogram struct {
	lbl     string
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer, name string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(h.lbl, `le="`+formatFloat(bound)+`"`)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(h.lbl, `le="+Inf"`)), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(h.lbl), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(h.lbl), h.count.Load())
}

// ---------------------------------------------------------------------------
// Rendering helpers.

// renderLabels turns a label map into the canonical inner label string
// (`k1="v1",k2="v2"`, keys sorted), without surrounding braces so that
// histograms can append the le label.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelName.MatchString(k) {
			panic(fmt.Sprintf("obsv: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + escapeLabel(labels[k]) + `"`
	}
	return strings.Join(parts, ",")
}

// braced wraps a non-empty inner label string for exposition.
func braced(lbl string) string {
	if lbl == "" {
		return ""
	}
	return "{" + lbl + "}"
}

// joinLabels appends one rendered pair to an inner label string.
func joinLabels(lbl, pair string) string {
	if lbl == "" {
		return pair
	}
	return lbl + "," + pair
}

// escapeLabel applies the exposition-format label value escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp applies the exposition-format HELP text escapes.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
