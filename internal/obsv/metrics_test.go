package obsv

import (
	"strings"
	"testing"
)

func expose(r *Registry) string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.", nil)
	c.Inc()
	c.Add(2)
	out := expose(r)
	for _, want := range []string{
		"# HELP test_total A test counter.\n",
		"# TYPE test_total counter\n",
		"test_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("Value = %d, want 3", c.Value())
	}
}

func TestGaugeExposition(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.", nil)
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := expose(r); !strings.Contains(got, "depth 3\n") {
		t.Errorf("gauge line missing:\n%s", got)
	}
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lbl_total", "Labelled.", map[string]string{
		"zeta":  "z",
		"alpha": `quo"te` + "\nnl\\bs",
	})
	c.Inc()
	want := `lbl_total{alpha="quo\"te\nnl\\bs",zeta="z"} 1`
	if got := expose(r); !strings.Contains(got, want) {
		t.Errorf("want %q in:\n%s", want, got)
	}
}

func TestSharedFamilyEmitsOneHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("fam_total", "Family.", map[string]string{"k": "a"}).Inc()
	r.Counter("fam_total", "Family.", map[string]string{"k": "b"}).Add(2)
	out := expose(r)
	if n := strings.Count(out, "# HELP fam_total"); n != 1 {
		t.Errorf("HELP emitted %d times, want 1:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE fam_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{`fam_total{k="a"} 1`, `fam_total{k="b"} 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 41.5
	r.CounterFunc("fn_total", "Func counter.", nil, func() float64 { return v })
	r.GaugeFunc("fn_gauge", "Func gauge.", nil, func() float64 { return -2 })
	v++
	out := expose(r)
	if !strings.Contains(out, "fn_total 42.5\n") {
		t.Errorf("func counter not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, "fn_gauge -2\n") {
		t.Errorf("func gauge missing:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", map[string]string{"ep": "/x"}, []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := expose(r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{ep="/x",le="0.1"} 1`,
		`lat_seconds_bucket{ep="/x",le="1"} 3`,
		`lat_seconds_bucket{ep="/x",le="10"} 4`,
		`lat_seconds_bucket{ep="/x",le="+Inf"} 5`,
		`lat_seconds_sum{ep="/x"} 56.05`,
		`lat_seconds_count{ep="/x"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge", "Boundary.", nil, []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	if got := expose(r); !strings.Contains(got, `edge_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in inclusive bucket:\n%s", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x", nil)
	mustPanic("duplicate series", func() { r.Counter("dup_total", "x", nil) })
	mustPanic("type conflict", func() { r.Gauge("dup_total", "x", map[string]string{"a": "b"}) })
	mustPanic("bad name", func() { r.Counter("bad name", "x", nil) })
	mustPanic("bad label", func() { r.Counter("ok_total", "x", map[string]string{"bad-label": "v"}) })
	mustPanic("bad buckets", func() { r.Histogram("h", "x", nil, []float64{2, 1}) })
}
