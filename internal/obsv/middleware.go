package obsv

import (
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

// Middleware wraps an http.Handler with one cross-cutting concern.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares around h with the first argument outermost, so
// Chain(h, a, b, c) serves requests through a → b → c → h.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// statusWriter records the status code and payload size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers keep
// working behind the chain.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap reuses an existing statusWriter from an outer middleware so the whole
// chain shares one status record per request.
func wrap(w http.ResponseWriter) *statusWriter {
	if sw, ok := w.(*statusWriter); ok {
		return sw
	}
	return &statusWriter{ResponseWriter: w}
}

// RequestID assigns every request an ID — a well-formed inbound
// X-Request-ID is honoured, anything else replaced — stores it in the
// context and echoes it on the response, so one ID ties a client retry, the
// access log line and a panic report together.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if !validRequestID(id) {
				id = NewRequestID()
			}
			w.Header().Set(RequestIDHeader, id)
			next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
		})
	}
}

// AccessLog emits one structured line per completed request. A nil logger
// disables the middleware.
func AccessLog(log *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if log == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrap(w)
			t0 := time.Now()
			next.ServeHTTP(sw, r)
			log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", RequestIDFrom(r.Context())),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", time.Since(t0)),
				slog.String("remote", r.RemoteAddr),
			)
		})
	}
}

// Recover converts a handler panic into a 500 response (when no response
// has started) plus a stack-trace log line, and invokes onPanic — typically
// a counter — so a crashing endpoint shows up on a dashboard instead of
// taking the daemon down.
func Recover(log *slog.Logger, onPanic func()) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrap(w)
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if onPanic != nil {
					onPanic()
				}
				if log != nil {
					log.LogAttrs(r.Context(), slog.LevelError, "handler panic",
						slog.String("request_id", RequestIDFrom(r.Context())),
						slog.String("method", r.Method),
						slog.String("path", r.URL.Path),
						slog.Any("panic", v),
						slog.String("stack", string(debug.Stack())),
					)
				}
				if sw.status == 0 {
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					sw.Write([]byte(`{"error":"internal server error"}` + "\n"))
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// Instrument tracks the in-flight request gauge and reports one
// (endpoint, status, duration) observation per request. endpoint maps a
// request to its route label (bounded cardinality — "/v1/jobs/{id}", not the
// raw path); a nil gauge or observer is skipped.
func Instrument(endpoint func(*http.Request) string, inflight *Gauge, observe func(endpoint string, status int, d time.Duration)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if inflight != nil {
				inflight.Inc()
				defer inflight.Dec()
			}
			sw := wrap(w)
			t0 := time.Now()
			next.ServeHTTP(sw, r)
			if observe != nil {
				observe(endpoint(r), sw.status, time.Since(t0))
			}
		})
	}
}
