package obsv

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	var seen string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}), RequestID())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	id := rec.Header().Get(RequestIDHeader)
	if id == "" || id != seen {
		t.Fatalf("header id %q, context id %q; want matching non-empty", id, seen)
	}
}

func TestRequestIDInboundHonouredOrReplaced(t *testing.T) {
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}), RequestID())
	// A well-formed inbound ID is echoed verbatim.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "client-id.01")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-id.01" {
		t.Errorf("well-formed id rewritten to %q", got)
	}
	// An unsafe one (log-forging newline) is replaced.
	req = httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "bad\nid")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got == "bad\nid" || got == "" {
		t.Errorf("unsafe id not replaced: %q", got)
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	var panics int
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}), RequestID(), Recover(log, func() { panics++ }))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("body = %q, want JSON error", rec.Body.String())
	}
	if panics != 1 {
		t.Errorf("panic counter = %d, want 1", panics)
	}
	logged := buf.String()
	if !strings.Contains(logged, "kaboom") || !strings.Contains(logged, "goroutine") {
		t.Errorf("panic log missing value or stack:\n%s", logged)
	}
}

func TestRecoverAfterHeadersLeavesResponse(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late")
	}), Recover(nil, nil))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want the handler's 202 preserved", rec.Code)
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short"))
	}), RequestID(), AccessLog(log))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/thing?x=1", nil))
	var line struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
		Bytes     int64  `json:"bytes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("unparseable access log %q: %v", buf.String(), err)
	}
	if line.Msg != "request" || line.Method != "GET" || line.Path != "/v1/thing" {
		t.Errorf("log line = %+v", line)
	}
	if line.Status != http.StatusTeapot || line.Bytes != 5 {
		t.Errorf("status/bytes = %d/%d, want 418/5", line.Status, line.Bytes)
	}
	if line.RequestID == "" {
		t.Error("access log missing request_id")
	}
}

func TestInstrumentObservesStatusAndInFlight(t *testing.T) {
	reg := NewRegistry()
	inflight := reg.Gauge("inflight", "x", nil)
	var gotEndpoint string
	var gotStatus int
	var during int64
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		during = inflight.Value()
		w.WriteHeader(http.StatusNotFound)
	}), Instrument(func(*http.Request) string { return "/ep" }, inflight,
		func(ep string, status int, d time.Duration) {
			gotEndpoint, gotStatus = ep, status
			if d < 0 {
				t.Errorf("negative duration %v", d)
			}
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/whatever", nil))
	if during != 1 {
		t.Errorf("in-flight during request = %d, want 1", during)
	}
	if inflight.Value() != 0 {
		t.Errorf("in-flight after request = %d, want 0", inflight.Value())
	}
	if gotEndpoint != "/ep" || gotStatus != http.StatusNotFound {
		t.Errorf("observed (%q, %d), want (/ep, 404)", gotEndpoint, gotStatus)
	}
}

func TestInstrumentDefaultStatus200(t *testing.T) {
	var gotStatus int
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("implicit 200"))
	}), Instrument(func(*http.Request) string { return "e" }, nil,
		func(_ string, status int, _ time.Duration) { gotStatus = status }))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if gotStatus != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", gotStatus)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "bogus": slog.LevelInfo,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
