// Package profiler exposes the CUDA-Visual-Profiler counters the paper lists
// in Table III, backed by the simulator's statistics collector. It is the
// stand-in for the hardware profiler runs on the Tesla M2050.
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"critload/internal/stats"
)

// Counter names, exactly as in Table III.
const (
	GldRequest            = "gld_request"
	SharedLoad            = "shared_load"
	L1GlobalLoadHit       = "l1_global_load_hit"
	L1GlobalLoadMiss      = "l1_global_load_miss"
	L2Subp0ReadHitSectors = "l2_subp0_read_hit_sectors"
	L2Subp1ReadHitSectors = "l2_subp1_read_hit_sectors"
	L2Subp0ReadQueries    = "l2_subp0_read_sector_queries"
	L2Subp1ReadQueries    = "l2_subp1_read_sector_queries"
)

// Descriptions reproduces Table III's counter descriptions.
var Descriptions = map[string]string{
	GldRequest:            "Number of executed global load instructions per warp in a SM",
	SharedLoad:            "Number of executed shared load instructions per warp in a SM",
	L1GlobalLoadHit:       "Number of global load hits in L1 cache",
	L1GlobalLoadMiss:      "Number of global load misses in L1 cache",
	L2Subp0ReadHitSectors: "Number of read requests from L1 that hit in slice 0 of L2 cache",
	L2Subp1ReadHitSectors: "Number of read requests from L1 that hit in slice 1 of L2 cache",
	L2Subp0ReadQueries:    "Accumulated read sector queries from L1 to L2 cache for slice 0 of all the L2 cache units",
	L2Subp1ReadQueries:    "Accumulated read sector queries from L1 to L2 cache for slice 1 of all the L2 cache units",
}

// Names returns the counter names in Table III order.
func Names() []string {
	return []string{
		GldRequest, SharedLoad, L1GlobalLoadHit, L1GlobalLoadMiss,
		L2Subp0ReadHitSectors, L2Subp1ReadHitSectors,
		L2Subp0ReadQueries, L2Subp1ReadQueries,
	}
}

// Counters is one profiling session's counter values.
type Counters map[string]uint64

// Read extracts the Table III counters from a collector.
func Read(col *stats.Collector) Counters {
	return Counters{
		GldRequest:            col.GLoadWarps[stats.Det] + col.GLoadWarps[stats.NonDet],
		SharedLoad:            col.SLoadWarps,
		L1GlobalLoadHit:       col.L1Acc[stats.Det] + col.L1Acc[stats.NonDet] - col.L1Miss[stats.Det] - col.L1Miss[stats.NonDet],
		L1GlobalLoadMiss:      col.L1Miss[stats.Det] + col.L1Miss[stats.NonDet],
		L2Subp0ReadHitSectors: col.L2SliceHits[0],
		L2Subp1ReadHitSectors: col.L2SliceHits[1],
		L2Subp0ReadQueries:    col.L2SliceQueries[0],
		L2Subp1ReadQueries:    col.L2SliceQueries[1],
	}
}

// String renders the counters in Table III order.
func (c Counters) String() string {
	var b strings.Builder
	for _, n := range Names() {
		fmt.Fprintf(&b, "%-30s %12d\n", n, c[n])
	}
	return b.String()
}

// Sorted returns (name, value) pairs sorted by name, for deterministic
// serialization in tests and tools.
func (c Counters) Sorted() []struct {
	Name  string
	Value uint64
} {
	out := make([]struct {
		Name  string
		Value uint64
	}, 0, len(c))
	for n, v := range c {
		out = append(out, struct {
			Name  string
			Value uint64
		}{n, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
