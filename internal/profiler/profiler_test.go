package profiler

import (
	"strings"
	"testing"

	"critload/internal/cache"
	"critload/internal/stats"
)

func TestReadMapsCollectorToCounters(t *testing.T) {
	col := stats.New()
	col.GLoadWarps[stats.Det] = 10
	col.GLoadWarps[stats.NonDet] = 5
	col.SLoadWarps = 7
	col.RecordL1Outcome(stats.Det, cache.Hit)
	col.RecordL1Outcome(stats.Det, cache.Miss)
	col.RecordL1Outcome(stats.NonDet, cache.Miss)
	col.RecordL2Outcome(stats.Det, cache.Hit, 0)
	col.RecordL2Outcome(stats.NonDet, cache.Miss, 1)

	c := Read(col)
	if c[GldRequest] != 15 {
		t.Errorf("gld_request = %d, want 15", c[GldRequest])
	}
	if c[SharedLoad] != 7 {
		t.Errorf("shared_load = %d", c[SharedLoad])
	}
	if c[L1GlobalLoadHit] != 1 || c[L1GlobalLoadMiss] != 2 {
		t.Errorf("l1 hit/miss = %d/%d, want 1/2", c[L1GlobalLoadHit], c[L1GlobalLoadMiss])
	}
	if c[L2Subp0ReadHitSectors] != 1 || c[L2Subp0ReadQueries] != 1 {
		t.Errorf("slice0 = %d/%d", c[L2Subp0ReadHitSectors], c[L2Subp0ReadQueries])
	}
	if c[L2Subp1ReadHitSectors] != 0 || c[L2Subp1ReadQueries] != 1 {
		t.Errorf("slice1 = %d/%d", c[L2Subp1ReadHitSectors], c[L2Subp1ReadQueries])
	}
}

func TestNamesMatchTableIII(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("counters = %d, want 8 (Table III)", len(names))
	}
	for _, n := range names {
		if Descriptions[n] == "" {
			t.Errorf("counter %s has no description", n)
		}
	}
}

func TestStringAndSorted(t *testing.T) {
	c := Read(stats.New())
	s := c.String()
	for _, n := range Names() {
		if !strings.Contains(s, n) {
			t.Errorf("String() missing %s", n)
		}
	}
	sorted := c.Sorted()
	if len(sorted) != 8 {
		t.Fatalf("Sorted = %d entries", len(sorted))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name >= sorted[i].Name {
			t.Errorf("Sorted not ordered at %d", i)
		}
	}
}
