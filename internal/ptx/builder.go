package ptx

import (
	"fmt"

	"critload/internal/isa"
)

// Builder constructs kernels programmatically, as an alternative to the
// textual assembler. It is the natural front end for generated kernels
// (tests, fuzzing, tooling); Build resolves labels and validates exactly
// like Parse does.
type Builder struct {
	k       *Kernel
	pending []string
	err     error
}

// NewBuilder starts a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{k: &Kernel{Name: name, Labels: map[string]int{}}}
}

// Param declares the next kernel parameter.
func (b *Builder) Param(name string, t isa.DType) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.k.ParamOffset(name); dup {
		b.err = fmt.Errorf("ptx: duplicate param %q", name)
		return b
	}
	b.k.Params = append(b.k.Params, ParamDecl{
		Name: name, Type: t, Offset: len(b.k.Params) * ParamSize,
	})
	return b
}

// Shared declares the kernel's static shared-memory size.
func (b *Builder) Shared(bytes int) *Builder {
	b.k.SharedBytes = bytes
	return b
}

// Label marks the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.k.Labels[name]; dup {
		b.err = fmt.Errorf("ptx: duplicate label %q", name)
		return b
	}
	for _, p := range b.pending {
		if p == name {
			b.err = fmt.Errorf("ptx: duplicate label %q", name)
			return b
		}
	}
	b.pending = append(b.pending, name)
	return b
}

// emit appends an instruction, binding pending labels.
func (b *Builder) emit(in *isa.Instruction) *Builder {
	if b.err != nil {
		return b
	}
	idx := len(b.k.Insts)
	in.Index = idx
	in.PC = uint32(idx * isa.InstBytes)
	for _, l := range b.pending {
		b.k.Labels[l] = idx
	}
	b.pending = b.pending[:0]
	b.k.Insts = append(b.k.Insts, in)
	return b
}

// inst assembles a generic instruction.
func inst(op isa.Opcode, t isa.DType, dst isa.Operand, srcs ...isa.Operand) *isa.Instruction {
	in := &isa.Instruction{Op: op, Type: t, Dst: dst, Guard: isa.NoGuard, Targ: -1}
	copy(in.Srcs[:], srcs)
	in.NSrc = len(srcs)
	return in
}

// Op emits a typed ALU instruction (mov/add/mul/...; dst first).
func (b *Builder) Op(op isa.Opcode, t isa.DType, dst isa.Operand, srcs ...isa.Operand) *Builder {
	return b.emit(inst(op, t, dst, srcs...))
}

// GuardedOp emits an ALU instruction under a predicate guard.
func (b *Builder) GuardedOp(pred int, negate bool, op isa.Opcode, t isa.DType, dst isa.Operand, srcs ...isa.Operand) *Builder {
	in := inst(op, t, dst, srcs...)
	in.Guard = isa.PredGuard{Reg: pred, Negate: negate}
	return b.emit(in)
}

// Ld emits a load from the given state space.
func (b *Builder) Ld(space isa.MemSpace, t isa.DType, dst isa.Operand, addr isa.Operand) *Builder {
	in := inst(isa.OpLd, t, dst, addr)
	in.Space = space
	return b.emit(in)
}

// LdParam emits an ld.param of a declared parameter.
func (b *Builder) LdParam(dst isa.Operand, param string) *Builder {
	in := inst(isa.OpLd, isa.U32, dst, isa.Param(param, 0))
	in.Space = isa.SpaceParam
	return b.emit(in)
}

// St emits a store to the given state space.
func (b *Builder) St(space isa.MemSpace, t isa.DType, addr, val isa.Operand) *Builder {
	in := inst(isa.OpSt, t, isa.Operand{}, addr, val)
	in.Space = space
	return b.emit(in)
}

// Atom emits a global atomic.
func (b *Builder) Atom(op isa.AtomOp, t isa.DType, dst, addr isa.Operand, srcs ...isa.Operand) *Builder {
	in := inst(isa.OpAtom, t, dst, append([]isa.Operand{addr}, srcs...)...)
	in.Space = isa.SpaceGlobal
	in.Atom = op
	return b.emit(in)
}

// Setp emits a predicate-setting comparison.
func (b *Builder) Setp(cmp isa.CmpOp, t isa.DType, dst int, a, bb isa.Operand) *Builder {
	in := inst(isa.OpSetp, t, isa.PredReg(dst), a, bb)
	in.Cmp = cmp
	return b.emit(in)
}

// Bra emits an unconditional branch to a label.
func (b *Builder) Bra(label string) *Builder {
	in := inst(isa.OpBra, isa.U32, isa.Operand{})
	in.Label = label
	return b.emit(in)
}

// BraIf emits a branch guarded by predicate register pred (negated when
// negate is true).
func (b *Builder) BraIf(pred int, negate bool, label string) *Builder {
	in := inst(isa.OpBra, isa.U32, isa.Operand{})
	in.Label = label
	in.Guard = isa.PredGuard{Reg: pred, Negate: negate}
	return b.emit(in)
}

// Bar emits a bar.sync.
func (b *Builder) Bar() *Builder {
	return b.emit(inst(isa.OpBar, isa.U32, isa.Operand{}))
}

// Exit emits an exit.
func (b *Builder) Exit() *Builder {
	return b.emit(inst(isa.OpExit, isa.U32, isa.Operand{}))
}

// Build resolves branch targets, computes register counts and validates the
// kernel.
func (b *Builder) Build() (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pending) > 0 {
		return nil, fmt.Errorf("ptx: labels %v at end of kernel", b.pending)
	}
	k := b.k
	for i, in := range k.Insts {
		if in.Op == isa.OpBra {
			t, ok := k.Labels[in.Label]
			if !ok {
				return nil, fmt.Errorf("ptx: undefined label %q (inst %d)", in.Label, i)
			}
			in.Targ = t
		}
		bump := func(o isa.Operand) {
			switch o.Kind {
			case isa.OpdReg:
				if o.Reg+1 > k.NumRegs {
					k.NumRegs = o.Reg + 1
				}
			case isa.OpdPred:
				if o.Reg+1 > k.NumPreds {
					k.NumPreds = o.Reg + 1
				}
			case isa.OpdMem:
				if o.Reg >= 0 && o.Reg+1 > k.NumRegs {
					k.NumRegs = o.Reg + 1
				}
			}
		}
		bump(in.Dst)
		for s := 0; s < in.NSrc; s++ {
			bump(in.Srcs[s])
		}
		if in.Guard.Active() && in.Guard.Reg+1 > k.NumPreds {
			k.NumPreds = in.Guard.Reg + 1
		}
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustBuild builds or panics; for compile-time-constant kernels.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
