package ptx

import (
	"fmt"

	"critload/internal/isa"
)

// Builder constructs kernels programmatically, as an alternative to the
// textual assembler. It is the natural front end for generated kernels
// (tests, fuzzing, tooling); Build resolves labels and validates exactly
// like Parse does.
type Builder struct {
	k       *Kernel
	pending []string
	err     error
	auto    int // counter for generated structured-control-flow labels
}

// NewBuilder starts a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{k: &Kernel{Name: name, Labels: map[string]int{}}}
}

// Param declares the next kernel parameter.
func (b *Builder) Param(name string, t isa.DType) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.k.ParamOffset(name); dup {
		b.err = fmt.Errorf("ptx: duplicate param %q", name)
		return b
	}
	b.k.Params = append(b.k.Params, ParamDecl{
		Name: name, Type: t, Offset: len(b.k.Params) * ParamSize,
	})
	return b
}

// Shared declares the kernel's static shared-memory size.
func (b *Builder) Shared(bytes int) *Builder {
	b.k.SharedBytes = bytes
	return b
}

// Label marks the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.k.Labels[name]; dup {
		b.err = fmt.Errorf("ptx: duplicate label %q", name)
		return b
	}
	for _, p := range b.pending {
		if p == name {
			b.err = fmt.Errorf("ptx: duplicate label %q", name)
			return b
		}
	}
	b.pending = append(b.pending, name)
	return b
}

// emit appends an instruction, binding pending labels.
func (b *Builder) emit(in *isa.Instruction) *Builder {
	if b.err != nil {
		return b
	}
	idx := len(b.k.Insts)
	in.Index = idx
	in.PC = uint32(idx * isa.InstBytes)
	for _, l := range b.pending {
		b.k.Labels[l] = idx
	}
	b.pending = b.pending[:0]
	b.k.Insts = append(b.k.Insts, in)
	return b
}

// inst assembles a generic instruction.
func inst(op isa.Opcode, t isa.DType, dst isa.Operand, srcs ...isa.Operand) *isa.Instruction {
	in := &isa.Instruction{Op: op, Type: t, Dst: dst, Guard: isa.NoGuard, Targ: -1}
	copy(in.Srcs[:], srcs)
	in.NSrc = len(srcs)
	return in
}

// Op emits a typed ALU instruction (mov/add/mul/...; dst first).
func (b *Builder) Op(op isa.Opcode, t isa.DType, dst isa.Operand, srcs ...isa.Operand) *Builder {
	return b.emit(inst(op, t, dst, srcs...))
}

// GuardedOp emits an ALU instruction under a predicate guard.
func (b *Builder) GuardedOp(pred int, negate bool, op isa.Opcode, t isa.DType, dst isa.Operand, srcs ...isa.Operand) *Builder {
	in := inst(op, t, dst, srcs...)
	in.Guard = isa.PredGuard{Reg: pred, Negate: negate}
	return b.emit(in)
}

// Ld emits a load from the given state space.
func (b *Builder) Ld(space isa.MemSpace, t isa.DType, dst isa.Operand, addr isa.Operand) *Builder {
	in := inst(isa.OpLd, t, dst, addr)
	in.Space = space
	return b.emit(in)
}

// LdParam emits an ld.param of a declared parameter.
func (b *Builder) LdParam(dst isa.Operand, param string) *Builder {
	in := inst(isa.OpLd, isa.U32, dst, isa.Param(param, 0))
	in.Space = isa.SpaceParam
	return b.emit(in)
}

// St emits a store to the given state space.
func (b *Builder) St(space isa.MemSpace, t isa.DType, addr, val isa.Operand) *Builder {
	in := inst(isa.OpSt, t, isa.Operand{}, addr, val)
	in.Space = space
	return b.emit(in)
}

// Atom emits a global atomic.
func (b *Builder) Atom(op isa.AtomOp, t isa.DType, dst, addr isa.Operand, srcs ...isa.Operand) *Builder {
	in := inst(isa.OpAtom, t, dst, append([]isa.Operand{addr}, srcs...)...)
	in.Space = isa.SpaceGlobal
	in.Atom = op
	return b.emit(in)
}

// Setp emits a predicate-setting comparison.
func (b *Builder) Setp(cmp isa.CmpOp, t isa.DType, dst int, a, bb isa.Operand) *Builder {
	in := inst(isa.OpSetp, t, isa.PredReg(dst), a, bb)
	in.Cmp = cmp
	return b.emit(in)
}

// Bra emits an unconditional branch to a label.
func (b *Builder) Bra(label string) *Builder {
	in := inst(isa.OpBra, isa.U32, isa.Operand{})
	in.Label = label
	return b.emit(in)
}

// BraIf emits a branch guarded by predicate register pred (negated when
// negate is true).
func (b *Builder) BraIf(pred int, negate bool, label string) *Builder {
	in := inst(isa.OpBra, isa.U32, isa.Operand{})
	in.Label = label
	in.Guard = isa.PredGuard{Reg: pred, Negate: negate}
	return b.emit(in)
}

// Selp emits a select-by-predicate: dst = pred ? a : bb.
func (b *Builder) Selp(t isa.DType, dst, a, bb isa.Operand, pred int) *Builder {
	return b.emit(inst(isa.OpSelp, t, dst, a, bb, isa.PredReg(pred)))
}

// Cvt emits a type conversion from src type st to dst type t.
func (b *Builder) Cvt(t, st isa.DType, dst, src isa.Operand) *Builder {
	in := inst(isa.OpCvt, t, dst, src)
	in.SrcType = st
	return b.emit(in)
}

// Bar emits a bar.sync.
func (b *Builder) Bar() *Builder {
	return b.emit(inst(isa.OpBar, isa.U32, isa.Operand{}))
}

// Len returns the number of instructions emitted so far; the next emitted
// instruction gets this index. Generators use it to record per-instruction
// metadata (e.g. expected load classes) while building.
func (b *Builder) Len() int { return len(b.k.Insts) }

// autoLabel returns a fresh label for structured control flow. The "__"
// prefix keeps it a valid identifier (the generated kernel text must survive
// a Disassemble→Parse round trip); colliding user labels are caught by the
// usual duplicate-label check.
func (b *Builder) autoLabel(kind string) string {
	b.auto++
	return fmt.Sprintf("__%s%d", kind, b.auto)
}

// Loop is an open counted loop started by BeginLoop; End closes it.
type Loop struct {
	b    *Builder
	head string
	cnt  int
	pred int
	trip int64
}

// BeginLoop emits the header of a counted loop: counter register cnt is
// zeroed and the loop head label is placed. The loop body follows; End emits
// the increment, the trip-count test into predicate register pred, and the
// backward branch. Trip counts are immediates, so the loop is uniform across
// lanes and always terminates — exactly the reconverging-CFG shape a kernel
// generator needs.
func (b *Builder) BeginLoop(cnt, pred int, trip int64) *Loop {
	l := &Loop{b: b, head: b.autoLabel("loop"), cnt: cnt, pred: pred, trip: trip}
	b.Op(isa.OpMov, isa.U32, isa.Reg(cnt), isa.Imm(0))
	b.Label(l.head)
	return l
}

// End closes the loop: cnt++, compare against the trip count, branch back
// while cnt < trip.
func (l *Loop) End() *Builder {
	b := l.b
	b.Op(isa.OpAdd, isa.U32, isa.Reg(l.cnt), isa.Reg(l.cnt), isa.Imm(1))
	b.Setp(isa.CmpLT, isa.U32, l.pred, isa.Reg(l.cnt), isa.Imm(l.trip))
	return b.BraIf(l.pred, false, l.head)
}

// If is an open guarded block started by BeginIf; End closes it.
type If struct {
	b    *Builder
	skip string
}

// BeginIf emits a branch that skips the following block when the predicate
// does NOT hold (i.e. the block executes when pred==true, or pred==false
// with negate). End places the skip label on the next emitted instruction,
// so at least one instruction must follow End before Build.
func (b *Builder) BeginIf(pred int, negate bool) *If {
	i := &If{b: b, skip: b.autoLabel("endif")}
	// Branch around the body when the condition fails: the guard on the
	// branch is the negation of the block condition.
	b.BraIf(pred, !negate, i.skip)
	return i
}

// End closes the guarded block.
func (i *If) End() *Builder {
	return i.b.Label(i.skip)
}

// Exit emits an exit.
func (b *Builder) Exit() *Builder {
	return b.emit(inst(isa.OpExit, isa.U32, isa.Operand{}))
}

// Build resolves branch targets, computes register counts and validates the
// kernel.
func (b *Builder) Build() (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pending) > 0 {
		return nil, fmt.Errorf("ptx: labels %v at end of kernel", b.pending)
	}
	k := b.k
	for i, in := range k.Insts {
		if in.Op == isa.OpBra {
			t, ok := k.Labels[in.Label]
			if !ok {
				return nil, fmt.Errorf("ptx: undefined label %q (inst %d)", in.Label, i)
			}
			in.Targ = t
		}
		bump := func(o isa.Operand) {
			switch o.Kind {
			case isa.OpdReg:
				if o.Reg+1 > k.NumRegs {
					k.NumRegs = o.Reg + 1
				}
			case isa.OpdPred:
				if o.Reg+1 > k.NumPreds {
					k.NumPreds = o.Reg + 1
				}
			case isa.OpdMem:
				if o.Reg >= 0 && o.Reg+1 > k.NumRegs {
					k.NumRegs = o.Reg + 1
				}
			}
		}
		bump(in.Dst)
		for s := 0; s < in.NSrc; s++ {
			bump(in.Srcs[s])
		}
		if in.Guard.Active() && in.Guard.Reg+1 > k.NumPreds {
			k.NumPreds = in.Guard.Reg + 1
		}
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustBuild builds or panics; for compile-time-constant kernels.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
