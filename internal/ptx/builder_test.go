package ptx

import (
	"testing"

	"critload/internal/isa"
)

// TestBuilderEquivalentToParser constructs the same kernel through both
// front ends and compares the disassembly.
func TestBuilderEquivalentToParser(t *testing.T) {
	parsed, err := Parse(`
.kernel gather
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    ld.param.u32 %r2, [a];
    add.u32      %r3, %r2, %r1;
    ld.global.u32 %r4, [%r3];
    setp.lt.u32  %p0, %r4, 10;
@%p0 bra SKIP;
    st.global.u32 [%r3], %r4;
SKIP:
    exit;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}

	built, err := NewBuilder("gather").
		Param("a", isa.U32).
		Op(isa.OpMov, isa.U32, isa.Reg(0), isa.SReg(isa.SrTidX)).
		Op(isa.OpShl, isa.U32, isa.Reg(1), isa.Reg(0), isa.Imm(2)).
		LdParam(isa.Reg(2), "a").
		Op(isa.OpAdd, isa.U32, isa.Reg(3), isa.Reg(2), isa.Reg(1)).
		Ld(isa.SpaceGlobal, isa.U32, isa.Reg(4), isa.Mem(3, 0)).
		Setp(isa.CmpLT, isa.U32, 0, isa.Reg(4), isa.Imm(10)).
		BraIf(0, false, "SKIP").
		St(isa.SpaceGlobal, isa.U32, isa.Mem(3, 0), isa.Reg(4)).
		Label("SKIP").
		Exit().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	pk := parsed.Kernels[0]
	if len(built.Insts) != len(pk.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(built.Insts), len(pk.Insts))
	}
	for i := range pk.Insts {
		if built.Insts[i].String() != pk.Insts[i].String() {
			t.Errorf("inst %d: %q vs %q", i, built.Insts[i], pk.Insts[i])
		}
	}
	if built.NumRegs != pk.NumRegs || built.NumPreds != pk.NumPreds {
		t.Errorf("register counts differ: %d/%d vs %d/%d",
			built.NumRegs, built.NumPreds, pk.NumRegs, pk.NumPreds)
	}
	if built.Labels["SKIP"] != pk.Labels["SKIP"] {
		t.Errorf("label mismatch")
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	if _, err := NewBuilder("k").Bra("NOWHERE").Exit().Build(); err == nil {
		t.Errorf("undefined label accepted")
	}
	if _, err := NewBuilder("k").Label("A").Label("A").Exit().Build(); err == nil {
		t.Errorf("duplicate label accepted")
	}
	if _, err := NewBuilder("k").Param("p", isa.U32).Param("p", isa.U32).Exit().Build(); err == nil {
		t.Errorf("duplicate param accepted")
	}
	if _, err := NewBuilder("k").Exit().Label("END").Build(); err == nil {
		t.Errorf("trailing label accepted")
	}
}

func TestBuilderBarAndAtomics(t *testing.T) {
	k, err := NewBuilder("sync").
		Param("ctr", isa.U32).
		Shared(256).
		LdParam(isa.Reg(0), "ctr").
		Bar().
		Atom(isa.AtomAdd, isa.U32, isa.Reg(1), isa.Mem(0, 0), isa.Imm(1)).
		GuardedOp(0, true, isa.OpAdd, isa.U32, isa.Reg(2), isa.Reg(1), isa.Imm(1)).
		Exit().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.SharedBytes != 256 {
		t.Errorf("SharedBytes = %d", k.SharedBytes)
	}
	if k.Insts[1].Op != isa.OpBar || k.Insts[2].Op != isa.OpAtom {
		t.Errorf("wrong ops: %v %v", k.Insts[1].Op, k.Insts[2].Op)
	}
	if g := k.Insts[3].Guard; !g.Active() || !g.Negate {
		t.Errorf("guard = %+v", g)
	}
}

// TestBuilderStructuredLoop checks that BeginLoop/End produce a terminating
// uniform loop whose disassembly survives a Parse round trip.
func TestBuilderStructuredLoop(t *testing.T) {
	b := NewBuilder("looped").Param("out", isa.U32)
	b.Op(isa.OpMov, isa.U32, isa.Reg(0), isa.Imm(0))
	l := b.BeginLoop(1, 0, 5)
	b.Op(isa.OpAdd, isa.U32, isa.Reg(0), isa.Reg(0), isa.Reg(1))
	l.End()
	b.LdParam(isa.Reg(2), "out")
	b.St(isa.SpaceGlobal, isa.U32, isa.Mem(2, 0), isa.Reg(0))
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The backward branch must target the loop head (the add in the body is
	// instruction 2: mov 0, mov cnt, body...).
	var bra *isa.Instruction
	for _, in := range k.Insts {
		if in.Op == isa.OpBra {
			bra = in
		}
	}
	if bra == nil || k.Insts[bra.Targ].Index >= bra.Index {
		t.Fatalf("loop should end with a backward branch, got %v", bra)
	}
	prog, err := Parse(k.Disassemble())
	if err != nil {
		t.Fatalf("reparse of generated loop: %v\n%s", err, k.Disassemble())
	}
	if prog.Kernels[0].Disassemble() != k.Disassemble() {
		t.Errorf("loop disassembly not stable under reparse")
	}
}

// TestBuilderStructuredIf checks BeginIf/End emit a forward skip branch with
// the guard negated relative to the block condition.
func TestBuilderStructuredIf(t *testing.T) {
	b := NewBuilder("guarded").Param("out", isa.U32)
	b.Op(isa.OpMov, isa.U32, isa.Reg(0), isa.SReg(isa.SrTidX))
	b.Setp(isa.CmpLT, isa.U32, 0, isa.Reg(0), isa.Imm(16))
	i := b.BeginIf(0, false)
	b.Op(isa.OpAdd, isa.U32, isa.Reg(1), isa.Reg(0), isa.Imm(1))
	i.End()
	b.LdParam(isa.Reg(2), "out")
	b.St(isa.SpaceGlobal, isa.U32, isa.Mem(2, 0), isa.Reg(1))
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var bra *isa.Instruction
	for _, in := range k.Insts {
		if in.Op == isa.OpBra {
			bra = in
		}
	}
	if bra == nil {
		t.Fatal("no branch emitted for if block")
	}
	if !bra.Guard.Active() || !bra.Guard.Negate {
		t.Errorf("if-skip branch should be guarded on !cond, got %v", bra.Guard)
	}
	if bra.Targ <= bra.Index {
		t.Errorf("if-skip branch must be forward: %d -> %d", bra.Index, bra.Targ)
	}
	if _, err := Parse(k.Disassemble()); err != nil {
		t.Fatalf("reparse of generated if: %v", err)
	}
}

// TestBuilderSelpAndCvt covers the remaining typed emitters.
func TestBuilderSelpAndCvt(t *testing.T) {
	b := NewBuilder("sc").Param("out", isa.U32)
	b.Op(isa.OpMov, isa.U32, isa.Reg(0), isa.Imm(3))
	b.Setp(isa.CmpGT, isa.U32, 0, isa.Reg(0), isa.Imm(1))
	b.Selp(isa.U32, isa.Reg(1), isa.Reg(0), isa.Imm(7), 0)
	b.Cvt(isa.F32, isa.S32, isa.Reg(2), isa.Reg(1))
	b.LdParam(isa.Reg(3), "out")
	b.St(isa.SpaceGlobal, isa.F32, isa.Mem(3, 0), isa.Reg(2))
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := k.Insts[2].String(); got != "selp.u32 %r1, %r0, 7, %p0" {
		t.Errorf("selp disassembly = %q", got)
	}
	if got := k.Insts[3].String(); got != "cvt.f32.s32 %r2, %r1" {
		t.Errorf("cvt disassembly = %q", got)
	}
	if b.Len() != len(k.Insts) {
		t.Errorf("Len() = %d, want %d", b.Len(), len(k.Insts))
	}
}
