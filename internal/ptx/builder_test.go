package ptx

import (
	"testing"

	"critload/internal/isa"
)

// TestBuilderEquivalentToParser constructs the same kernel through both
// front ends and compares the disassembly.
func TestBuilderEquivalentToParser(t *testing.T) {
	parsed, err := Parse(`
.kernel gather
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    ld.param.u32 %r2, [a];
    add.u32      %r3, %r2, %r1;
    ld.global.u32 %r4, [%r3];
    setp.lt.u32  %p0, %r4, 10;
@%p0 bra SKIP;
    st.global.u32 [%r3], %r4;
SKIP:
    exit;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}

	built, err := NewBuilder("gather").
		Param("a", isa.U32).
		Op(isa.OpMov, isa.U32, isa.Reg(0), isa.SReg(isa.SrTidX)).
		Op(isa.OpShl, isa.U32, isa.Reg(1), isa.Reg(0), isa.Imm(2)).
		LdParam(isa.Reg(2), "a").
		Op(isa.OpAdd, isa.U32, isa.Reg(3), isa.Reg(2), isa.Reg(1)).
		Ld(isa.SpaceGlobal, isa.U32, isa.Reg(4), isa.Mem(3, 0)).
		Setp(isa.CmpLT, isa.U32, 0, isa.Reg(4), isa.Imm(10)).
		BraIf(0, false, "SKIP").
		St(isa.SpaceGlobal, isa.U32, isa.Mem(3, 0), isa.Reg(4)).
		Label("SKIP").
		Exit().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	pk := parsed.Kernels[0]
	if len(built.Insts) != len(pk.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(built.Insts), len(pk.Insts))
	}
	for i := range pk.Insts {
		if built.Insts[i].String() != pk.Insts[i].String() {
			t.Errorf("inst %d: %q vs %q", i, built.Insts[i], pk.Insts[i])
		}
	}
	if built.NumRegs != pk.NumRegs || built.NumPreds != pk.NumPreds {
		t.Errorf("register counts differ: %d/%d vs %d/%d",
			built.NumRegs, built.NumPreds, pk.NumRegs, pk.NumPreds)
	}
	if built.Labels["SKIP"] != pk.Labels["SKIP"] {
		t.Errorf("label mismatch")
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	if _, err := NewBuilder("k").Bra("NOWHERE").Exit().Build(); err == nil {
		t.Errorf("undefined label accepted")
	}
	if _, err := NewBuilder("k").Label("A").Label("A").Exit().Build(); err == nil {
		t.Errorf("duplicate label accepted")
	}
	if _, err := NewBuilder("k").Param("p", isa.U32).Param("p", isa.U32).Exit().Build(); err == nil {
		t.Errorf("duplicate param accepted")
	}
	if _, err := NewBuilder("k").Exit().Label("END").Build(); err == nil {
		t.Errorf("trailing label accepted")
	}
}

func TestBuilderBarAndAtomics(t *testing.T) {
	k, err := NewBuilder("sync").
		Param("ctr", isa.U32).
		Shared(256).
		LdParam(isa.Reg(0), "ctr").
		Bar().
		Atom(isa.AtomAdd, isa.U32, isa.Reg(1), isa.Mem(0, 0), isa.Imm(1)).
		GuardedOp(0, true, isa.OpAdd, isa.U32, isa.Reg(2), isa.Reg(1), isa.Imm(1)).
		Exit().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.SharedBytes != 256 {
		t.Errorf("SharedBytes = %d", k.SharedBytes)
	}
	if k.Insts[1].Op != isa.OpBar || k.Insts[2].Op != isa.OpAtom {
		t.Errorf("wrong ops: %v %v", k.Insts[1].Op, k.Insts[2].Op)
	}
	if g := k.Insts[3].Guard; !g.Active() || !g.Negate {
		t.Errorf("guard = %+v", g)
	}
}
