package ptx

import (
	"fmt"

	"critload/internal/isa"
)

// BasicBlock is a maximal straight-line instruction sequence [Start, End).
type BasicBlock struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction index
	Succ  []int
	Pred  []int
}

// CFG is the control-flow graph of a kernel, augmented with a virtual exit
// block so postdominators are well defined even with multiple exits.
type CFG struct {
	Kernel *Kernel
	Blocks []*BasicBlock
	// ExitID is the virtual exit block (empty, Start == End == len(insts)).
	ExitID int
	// blockOf maps each instruction index to its block id.
	blockOf []int
	// ipdom[b] is the immediate postdominator block of block b (ExitID's
	// ipdom is itself).
	ipdom []int
}

// BuildCFG constructs the control-flow graph for k.
func BuildCFG(k *Kernel) *CFG {
	n := len(k.Insts)
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	for i, in := range k.Insts {
		switch in.Op {
		case isa.OpBra:
			leader[in.Targ] = true
			if i+1 <= n {
				leader[i+1] = true
			}
		case isa.OpExit, isa.OpRet:
			if i+1 <= n {
				leader[i+1] = true
			}
		case isa.OpBar:
			// Barriers end a block so warps can be re-synchronized cleanly;
			// not required for correctness but keeps blocks small around
			// synchronization points.
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}

	g := &CFG{Kernel: k, blockOf: make([]int, n+1)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &BasicBlock{ID: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			start = i
		}
	}
	// Virtual exit block.
	exit := &BasicBlock{ID: len(g.Blocks), Start: n, End: n}
	g.Blocks = append(g.Blocks, exit)
	g.ExitID = exit.ID

	for _, b := range g.Blocks {
		for i := b.Start; i < b.End; i++ {
			g.blockOf[i] = b.ID
		}
	}
	g.blockOf[n] = g.ExitID

	addEdge := func(from, to int) {
		g.Blocks[from].Succ = append(g.Blocks[from].Succ, to)
		g.Blocks[to].Pred = append(g.Blocks[to].Pred, from)
	}
	for _, b := range g.Blocks {
		if b.ID == g.ExitID {
			continue
		}
		last := k.Insts[b.End-1]
		switch last.Op {
		case isa.OpBra:
			addEdge(b.ID, g.blockOf[last.Targ])
			if last.Guard.Active() { // conditional branch falls through too
				addEdge(b.ID, g.blockOf[b.End])
			}
		case isa.OpExit, isa.OpRet:
			addEdge(b.ID, g.ExitID)
		default:
			addEdge(b.ID, g.blockOf[b.End])
		}
	}
	g.computePostdominators()
	return g
}

// BlockOf returns the block id containing instruction index i.
func (g *CFG) BlockOf(i int) int { return g.blockOf[i] }

// IPdom returns the immediate postdominator block id of block b.
func (g *CFG) IPdom(b int) int { return g.ipdom[b] }

// ReconvergeIdx returns the instruction index where control reconverges after
// a (possibly divergent) branch at instruction index i: the start of the
// immediate postdominator block of i's block. len(insts) denotes kernel exit.
func (g *CFG) ReconvergeIdx(i int) int {
	b := g.blockOf[i]
	ip := g.ipdom[b]
	return g.Blocks[ip].Start
}

// computePostdominators runs the standard Cooper–Harvey–Kennedy algorithm on
// the reverse CFG rooted at the virtual exit block.
func (g *CFG) computePostdominators() {
	n := len(g.Blocks)
	// Reverse postorder of the *reverse* graph starting from exit.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, p := range g.Blocks[b].Pred {
			if !seen[p] {
				dfs(p)
			}
		}
		order = append(order, b) // postorder of reverse graph
	}
	dfs(g.ExitID)
	// rpo index per block (higher = closer to exit in our ordering).
	rpoNum := make([]int, n)
	for i, b := range order {
		rpoNum[b] = i
	}

	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[g.ExitID] = g.ExitID

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] < rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] < rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		// Process in reverse postorder of the reverse graph (exit first).
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == g.ExitID {
				continue
			}
			newIdom := -1
			for _, s := range g.Blocks[b].Succ {
				if ipdom[s] == -1 && s != g.ExitID {
					continue
				}
				if !seen[s] {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom == -1 {
				continue
			}
			if ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	// Unreachable-from-exit blocks (infinite loops) reconverge at exit.
	for i := range ipdom {
		if ipdom[i] == -1 {
			ipdom[i] = g.ExitID
		}
	}
	g.ipdom = ipdom
}

// PostDominates reports whether block a postdominates block b (every path
// from b to exit passes through a).
func (g *CFG) PostDominates(a, b int) bool {
	for x := b; ; x = g.ipdom[x] {
		if x == a {
			return true
		}
		if x == g.ExitID {
			return a == g.ExitID
		}
	}
}

// String renders the CFG for debugging.
func (g *CFG) String() string {
	s := ""
	for _, b := range g.Blocks {
		s += fmt.Sprintf("B%d [%d,%d) succ=%v ipdom=B%d\n", b.ID, b.Start, b.End, b.Succ, g.ipdom[b.ID])
	}
	return s
}
