package ptx

import (
	"testing"
)

// ifElseSrc has a classic diamond: entry -> then/else -> join.
const ifElseSrc = `
.kernel diamond
    mov.u32     %r0, %tid.x;
    setp.lt.u32 %p0, %r0, 16;
@%p0 bra THEN;
    mov.u32     %r1, 2;       // else side
    bra JOIN;
THEN:
    mov.u32     %r1, 1;
JOIN:
    add.u32     %r2, %r1, 0;
    exit;
`

func TestCFGDiamond(t *testing.T) {
	prog, err := Parse(ifElseSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	g := k.CFG()

	// The conditional branch is instruction 2; its reconvergence point must
	// be the JOIN label's instruction.
	join := k.Labels["JOIN"]
	if got := k.ReconvergencePC(2); got != join {
		t.Errorf("reconvergence of diamond branch = %d, want %d (JOIN)\n%s", got, join, g)
	}

	// The entry block must have two successors.
	entry := g.Blocks[g.BlockOf(0)]
	if len(entry.Succ) != 2 {
		t.Errorf("entry successors = %v, want 2", entry.Succ)
	}

	// Exit block postdominates everything.
	for _, b := range g.Blocks {
		if !g.PostDominates(g.ExitID, b.ID) {
			t.Errorf("exit does not postdominate B%d", b.ID)
		}
	}
}

const loopSrc = `
.kernel looper
    mov.u32     %r0, 0;
LOOP:
    add.u32     %r0, %r0, 1;
    setp.lt.u32 %p0, %r0, 10;
@%p0 bra LOOP;
    exit;
`

func TestCFGLoop(t *testing.T) {
	prog, err := Parse(loopSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	// The backedge branch is instruction 3; divergent lanes reconverge at the
	// loop exit (instruction 4, the exit).
	if got := k.ReconvergencePC(3); got != 4 {
		t.Errorf("loop branch reconvergence = %d, want 4\n%s", got, k.CFG())
	}
}

const nestedSrc = `
.kernel nested
    mov.u32     %r0, %tid.x;
    setp.lt.u32 %p0, %r0, 16;
@%p0 bra OUTER_THEN;
    bra OUTER_JOIN;
OUTER_THEN:
    setp.lt.u32 %p1, %r0, 8;
@%p1 bra INNER_THEN;
    bra INNER_JOIN;
INNER_THEN:
    mov.u32     %r1, 1;
INNER_JOIN:
    mov.u32     %r2, 2;
OUTER_JOIN:
    exit;
`

func TestCFGNestedReconvergence(t *testing.T) {
	prog, err := Parse(nestedSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	outerBr := 2
	innerBr := 5
	if got, want := k.ReconvergencePC(outerBr), k.Labels["OUTER_JOIN"]; got != want {
		t.Errorf("outer reconvergence = %d, want %d", got, want)
	}
	if got, want := k.ReconvergencePC(innerBr), k.Labels["INNER_JOIN"]; got != want {
		t.Errorf("inner reconvergence = %d, want %d", got, want)
	}
	// Inner join must be strictly before outer join (proper nesting).
	if k.Labels["INNER_JOIN"] >= k.Labels["OUTER_JOIN"] {
		t.Fatalf("test kernel mis-specified")
	}
}

func TestCFGStraightLine(t *testing.T) {
	prog, err := Parse(".kernel s\n mov.u32 %r0, 1;\n add.u32 %r0, %r0, 1;\n exit;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := prog.Kernels[0].CFG()
	// One real block plus the virtual exit.
	if len(g.Blocks) != 2 {
		t.Errorf("blocks = %d, want 2\n%s", len(g.Blocks), g)
	}
	if g.IPdom(0) != g.ExitID {
		t.Errorf("ipdom(entry) = %d, want exit %d", g.IPdom(0), g.ExitID)
	}
}

// TestCFGInfiniteLoop ensures postdominator computation terminates and gives
// a sane answer when a block cannot reach exit.
func TestCFGInfiniteLoop(t *testing.T) {
	prog, err := Parse(`
.kernel inf
    mov.u32 %r0, 0;
SPIN:
    bra SPIN;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := prog.Kernels[0].CFG()
	for _, b := range g.Blocks {
		if g.IPdom(b.ID) < 0 || g.IPdom(b.ID) >= len(g.Blocks) {
			t.Errorf("ipdom(B%d) = %d out of range", b.ID, g.IPdom(b.ID))
		}
	}
}

func TestBlockPartitionCoversAllInstructions(t *testing.T) {
	for _, src := range []string{bfsLikeSrc, ifElseSrc, loopSrc, nestedSrc} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		k := prog.Kernels[0]
		g := k.CFG()
		covered := make([]bool, len(k.Insts))
		for _, b := range g.Blocks {
			for i := b.Start; i < b.End; i++ {
				if covered[i] {
					t.Errorf("%s: instruction %d in two blocks", k.Name, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Errorf("%s: instruction %d not in any block", k.Name, i)
			}
		}
	}
}
