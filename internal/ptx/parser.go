package ptx

import (
	"fmt"
	"strconv"
	"strings"

	"critload/internal/isa"
)

// ParseError reports a syntax or semantic error with source position.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ptx: line %d: %s", e.Line, e.Msg)
}

// Parse assembles a source unit into a Program. Every kernel is validated and
// control-flow targets are resolved before returning.
func Parse(src string) (*Program, error) {
	p := &parser{}
	if err := p.run(src); err != nil {
		return nil, err
	}
	prog := &Program{Kernels: p.kernels}
	for _, k := range prog.Kernels {
		if err := k.Validate(); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// MustParse assembles src or panics. Workload kernel sources are compile-time
// constants, so a parse failure is a programming error.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	kernels []*Kernel
	cur     *Kernel
	pending []string // labels waiting for the next instruction
	line    int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := stripComment(raw)
		// A line may hold several ';'-separated statements.
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := p.statement(stmt); err != nil {
				return err
			}
		}
	}
	return p.finishKernel()
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return line
}

func (p *parser) statement(stmt string) error {
	// Labels: "NAME:" possibly followed by an instruction on the same stmt.
	for {
		colon := strings.Index(stmt, ":")
		if colon < 0 {
			break
		}
		head := strings.TrimSpace(stmt[:colon])
		if !isIdent(head) {
			break
		}
		if p.cur == nil {
			return p.errf("label %q outside kernel", head)
		}
		if _, dup := p.cur.Labels[head]; dup {
			return p.errf("duplicate label %q", head)
		}
		p.pending = append(p.pending, head)
		stmt = strings.TrimSpace(stmt[colon+1:])
	}
	if stmt == "" {
		return nil
	}
	if strings.HasPrefix(stmt, ".") {
		return p.directive(stmt)
	}
	if p.cur == nil {
		return p.errf("instruction outside kernel: %q", stmt)
	}
	in, err := p.instruction(stmt)
	if err != nil {
		return err
	}
	idx := len(p.cur.Insts)
	in.Index = idx
	in.PC = uint32(idx * isa.InstBytes)
	for _, l := range p.pending {
		p.cur.Labels[l] = idx
	}
	p.pending = p.pending[:0]
	p.cur.Insts = append(p.cur.Insts, in)
	return nil
}

func (p *parser) directive(stmt string) error {
	fields := strings.Fields(stmt)
	switch fields[0] {
	case ".kernel", ".entry":
		if err := p.finishKernel(); err != nil {
			return err
		}
		if len(fields) != 2 || !isIdent(fields[1]) {
			return p.errf("usage: .kernel <name>")
		}
		p.cur = &Kernel{Name: fields[1], Labels: map[string]int{}}
		return nil
	case ".param":
		if p.cur == nil {
			return p.errf(".param outside kernel")
		}
		// ".param .u32 name" or ".param u32 name"
		if len(fields) != 3 {
			return p.errf("usage: .param .<type> <name>")
		}
		t, ok := parseDType(strings.TrimPrefix(fields[1], "."))
		if !ok {
			return p.errf("bad param type %q", fields[1])
		}
		name := fields[2]
		if !isIdent(name) {
			return p.errf("bad param name %q", name)
		}
		if _, dup := p.cur.ParamOffset(name); dup {
			return p.errf("duplicate param %q", name)
		}
		p.cur.Params = append(p.cur.Params, ParamDecl{
			Name: name, Type: t, Offset: len(p.cur.Params) * ParamSize,
		})
		return nil
	case ".shared":
		if p.cur == nil {
			return p.errf(".shared outside kernel")
		}
		if len(fields) != 2 {
			return p.errf("usage: .shared <bytes>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return p.errf("bad shared size %q", fields[1])
		}
		p.cur.SharedBytes = n
		return nil
	default:
		return p.errf("unknown directive %q", fields[0])
	}
}

func (p *parser) finishKernel() error {
	if p.cur == nil {
		return nil
	}
	if len(p.pending) > 0 {
		return p.errf("labels %v at end of kernel without instruction", p.pending)
	}
	k := p.cur
	p.cur = nil
	// Resolve branch targets and register counts.
	for i, in := range k.Insts {
		if in.Op == isa.OpBra {
			t, ok := k.Labels[in.Label]
			if !ok {
				return p.errf("kernel %s: undefined label %q (inst %d)", k.Name, in.Label, i)
			}
			in.Targ = t
		}
		bump := func(o isa.Operand) {
			switch o.Kind {
			case isa.OpdReg:
				if o.Reg+1 > k.NumRegs {
					k.NumRegs = o.Reg + 1
				}
			case isa.OpdPred:
				if o.Reg+1 > k.NumPreds {
					k.NumPreds = o.Reg + 1
				}
			case isa.OpdMem:
				if o.Reg >= 0 && o.Reg+1 > k.NumRegs {
					k.NumRegs = o.Reg + 1
				}
			}
		}
		bump(in.Dst)
		for s := 0; s < in.NSrc; s++ {
			bump(in.Srcs[s])
		}
		if in.Guard.Active() && in.Guard.Reg+1 > k.NumPreds {
			k.NumPreds = in.Guard.Reg + 1
		}
	}
	p.kernels = append(p.kernels, k)
	return nil
}

// instruction parses one instruction statement (guard, mnemonic, operands).
func (p *parser) instruction(stmt string) (*isa.Instruction, error) {
	in := &isa.Instruction{Guard: isa.NoGuard, Targ: -1}

	// Optional guard "@%p1" or "@!%p1".
	if strings.HasPrefix(stmt, "@") {
		sp := strings.IndexAny(stmt, " \t")
		if sp < 0 {
			return nil, p.errf("guard without instruction: %q", stmt)
		}
		g := stmt[1:sp]
		neg := false
		if strings.HasPrefix(g, "!") {
			neg = true
			g = g[1:]
		}
		reg, ok := parsePredName(g)
		if !ok {
			return nil, p.errf("bad guard %q", stmt[:sp])
		}
		in.Guard = isa.PredGuard{Reg: reg, Negate: neg}
		stmt = strings.TrimSpace(stmt[sp:])
	}

	sp := strings.IndexAny(stmt, " \t")
	mnemonic := stmt
	rest := ""
	if sp >= 0 {
		mnemonic = stmt[:sp]
		rest = strings.TrimSpace(stmt[sp:])
	}
	if err := p.decodeMnemonic(in, mnemonic); err != nil {
		return nil, err
	}

	// Branch operand is a label, not a normal operand.
	if in.Op == isa.OpBra {
		if !isIdent(rest) {
			return nil, p.errf("bra needs a label, got %q", rest)
		}
		in.Label = rest
		return in, nil
	}
	if in.Op == isa.OpExit || in.Op == isa.OpRet || in.Op == isa.OpBar || in.Op == isa.OpNop {
		if rest != "" {
			return nil, p.errf("%s takes no operands", in.Op)
		}
		return in, nil
	}

	opds, err := p.operands(rest)
	if err != nil {
		return nil, err
	}
	return in, p.assignOperands(in, opds)
}

// decodeMnemonic splits "ld.global.u32" style mnemonics into opcode, state
// space, comparison, atomic op and data type.
func (p *parser) decodeMnemonic(in *isa.Instruction, m string) error {
	parts := strings.Split(m, ".")
	head := parts[0]
	mods := parts[1:]

	// Multi-token opcodes first.
	switch m {
	case "bar.sync":
		in.Op = isa.OpBar
		return nil
	}
	op, ok := opcodeByName(head)
	if !ok {
		return p.errf("unknown opcode %q", m)
	}
	in.Op = op
	in.Type = isa.U32 // default

	switch op {
	case isa.OpLd, isa.OpSt, isa.OpAtom:
		if len(mods) < 2 {
			return p.errf("%s needs .<space>.<type>", head)
		}
		space, ok := spaceByName(mods[0])
		if !ok {
			return p.errf("unknown state space %q in %q", mods[0], m)
		}
		in.Space = space
		mods = mods[1:]
		if op == isa.OpAtom {
			a, ok := atomByName(mods[0])
			if !ok {
				return p.errf("unknown atomic op %q in %q", mods[0], m)
			}
			in.Atom = a
			mods = mods[1:]
		}
	case isa.OpSetp:
		if len(mods) < 2 {
			return p.errf("setp needs .<cmp>.<type>")
		}
		c, ok := cmpByName(mods[0])
		if !ok {
			return p.errf("unknown comparison %q", mods[0])
		}
		in.Cmp = c
		mods = mods[1:]
	case isa.OpMul, isa.OpMad:
		// Accept and fold the PTX ".lo"/".hi" width modifiers.
		if len(mods) > 0 && mods[0] == "lo" {
			mods = mods[1:]
		} else if len(mods) > 0 && mods[0] == "hi" {
			in.Op = isa.OpMulHi
			mods = mods[1:]
		}
	case isa.OpDiv, isa.OpSqrt, isa.OpRcp, isa.OpRsqrt, isa.OpSin, isa.OpCos, isa.OpEx2, isa.OpLg2:
		// Accept ".approx"/".rn"/".full" rounding modifiers.
		if len(mods) > 0 && (mods[0] == "approx" || mods[0] == "rn" || mods[0] == "full") {
			mods = mods[1:]
		}
	}

	// Remaining modifiers must be types. cvt takes dst then src type.
	switch len(mods) {
	case 0:
		// keep default
	case 1:
		t, ok := parseDType(mods[0])
		if !ok {
			return p.errf("unknown type %q in %q", mods[0], m)
		}
		in.Type = t
	case 2:
		if in.Op != isa.OpCvt {
			return p.errf("too many type modifiers in %q", m)
		}
		dt, ok1 := parseDType(mods[0])
		st, ok2 := parseDType(mods[1])
		if !ok1 || !ok2 {
			return p.errf("bad cvt types in %q", m)
		}
		in.Type = dt
		in.SrcType = st
	default:
		return p.errf("too many modifiers in %q", m)
	}
	return nil
}

// operands splits an operand list, respecting [...] brackets.
func (p *parser) operands(rest string) ([]isa.Operand, error) {
	var out []isa.Operand
	depth := 0
	start := 0
	flush := func(end int) error {
		tok := strings.TrimSpace(rest[start:end])
		if tok == "" {
			return p.errf("empty operand in %q", rest)
		}
		o, err := p.operand(tok)
		if err != nil {
			return err
		}
		out = append(out, o)
		return nil
	}
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, p.errf("unbalanced ']' in %q", rest)
			}
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, p.errf("unbalanced '[' in %q", rest)
	}
	if err := flush(len(rest)); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) operand(tok string) (isa.Operand, error) {
	switch {
	case strings.HasPrefix(tok, "["):
		if !strings.HasSuffix(tok, "]") {
			return isa.Operand{}, p.errf("bad memory operand %q", tok)
		}
		return p.memOperand(strings.TrimSpace(tok[1 : len(tok)-1]))
	case strings.HasPrefix(tok, "%"):
		if r, ok := isa.SpecialRegByName(tok); ok {
			return isa.SReg(r), nil
		}
		if r, ok := parseRegName(tok); ok {
			return isa.Reg(r), nil
		}
		if r, ok := parsePredName(strings.TrimPrefix(tok, "%")); ok && strings.HasPrefix(tok, "%p") {
			return isa.PredReg(r), nil
		}
		return isa.Operand{}, p.errf("unknown register %q", tok)
	default:
		if strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "0x") && !strings.HasPrefix(tok, "-0x") {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return isa.Operand{}, p.errf("bad float immediate %q", tok)
			}
			return isa.FImm(f), nil
		}
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return isa.Operand{}, p.errf("bad immediate %q", tok)
		}
		return isa.Imm(v), nil
	}
}

// memOperand parses the inside of [...]: "%r3", "%r3+8", "%r3-4", "name",
// "name+8", or an absolute integer address.
func (p *parser) memOperand(body string) (isa.Operand, error) {
	base := body
	var off int64
	// Find a +/- separating base from offset (not at position 0).
	for i := 1; i < len(body); i++ {
		if body[i] == '+' || body[i] == '-' {
			base = strings.TrimSpace(body[:i])
			o, err := strconv.ParseInt(strings.TrimSpace(body[i:]), 0, 64)
			if err != nil {
				return isa.Operand{}, p.errf("bad offset in [%s]", body)
			}
			off = o
			break
		}
	}
	switch {
	case strings.HasPrefix(base, "%"):
		r, ok := parseRegName(base)
		if !ok {
			return isa.Operand{}, p.errf("bad base register in [%s]", body)
		}
		return isa.Mem(r, off), nil
	case isIdent(base):
		return isa.Param(base, off), nil
	default:
		v, err := strconv.ParseInt(base, 0, 64)
		if err != nil {
			return isa.Operand{}, p.errf("bad memory operand [%s]", body)
		}
		return isa.Mem(-1, v+off), nil
	}
}

// assignOperands distributes parsed operands into dst/src slots per opcode.
func (p *parser) assignOperands(in *isa.Instruction, opds []isa.Operand) error {
	need := func(n int) error {
		if len(opds) != n {
			return p.errf("%s expects %d operands, got %d", in.Op, n, len(opds))
		}
		return nil
	}
	setSrcs := func(srcs ...isa.Operand) {
		copy(in.Srcs[:], srcs)
		in.NSrc = len(srcs)
	}
	switch in.Op {
	case isa.OpSt:
		if err := need(2); err != nil {
			return err
		}
		if opds[0].Kind != isa.OpdMem {
			return p.errf("st expects [addr] first")
		}
		setSrcs(opds[0], opds[1])
	case isa.OpLd:
		if err := need(2); err != nil {
			return err
		}
		in.Dst = opds[0]
		if in.Space == isa.SpaceParam {
			if opds[1].Kind != isa.OpdParam {
				return p.errf("ld.param expects [name]")
			}
		} else if opds[1].Kind != isa.OpdMem && opds[1].Kind != isa.OpdParam {
			return p.errf("ld expects a memory operand")
		}
		setSrcs(opds[1])
	case isa.OpAtom:
		// atom.space.op.type d, [a], b  (CAS: d, [a], b, c)
		if in.Atom == isa.AtomCAS {
			if err := need(4); err != nil {
				return err
			}
			in.Dst = opds[0]
			setSrcs(opds[1], opds[2], opds[3])
		} else {
			if err := need(3); err != nil {
				return err
			}
			in.Dst = opds[0]
			setSrcs(opds[1], opds[2])
		}
		if in.Srcs[0].Kind != isa.OpdMem {
			return p.errf("atom expects [addr]")
		}
	case isa.OpSetp:
		if err := need(3); err != nil {
			return err
		}
		if opds[0].Kind != isa.OpdPred {
			return p.errf("setp destination must be a predicate register")
		}
		in.Dst = opds[0]
		setSrcs(opds[1], opds[2])
	case isa.OpSelp:
		if err := need(4); err != nil {
			return err
		}
		in.Dst = opds[0]
		setSrcs(opds[1], opds[2], opds[3])
	case isa.OpMad:
		if err := need(4); err != nil {
			return err
		}
		in.Dst = opds[0]
		setSrcs(opds[1], opds[2], opds[3])
	case isa.OpMov, isa.OpNot, isa.OpAbs, isa.OpNeg, isa.OpCvt,
		isa.OpSqrt, isa.OpRsqrt, isa.OpRcp, isa.OpSin, isa.OpCos, isa.OpEx2, isa.OpLg2:
		if err := need(2); err != nil {
			return err
		}
		in.Dst = opds[0]
		setSrcs(opds[1])
	default: // two-source arithmetic
		if err := need(3); err != nil {
			return err
		}
		in.Dst = opds[0]
		setSrcs(opds[1], opds[2])
	}
	return nil
}

func opcodeByName(name string) (isa.Opcode, bool) {
	switch name {
	case "nop":
		return isa.OpNop, true
	case "mov":
		return isa.OpMov, true
	case "add":
		return isa.OpAdd, true
	case "sub":
		return isa.OpSub, true
	case "mul":
		return isa.OpMul, true
	case "mad", "fma":
		return isa.OpMad, true
	case "div":
		return isa.OpDiv, true
	case "rem":
		return isa.OpRem, true
	case "min":
		return isa.OpMin, true
	case "max":
		return isa.OpMax, true
	case "abs":
		return isa.OpAbs, true
	case "neg":
		return isa.OpNeg, true
	case "and":
		return isa.OpAnd, true
	case "or":
		return isa.OpOr, true
	case "xor":
		return isa.OpXor, true
	case "not":
		return isa.OpNot, true
	case "shl":
		return isa.OpShl, true
	case "shr":
		return isa.OpShr, true
	case "setp":
		return isa.OpSetp, true
	case "selp":
		return isa.OpSelp, true
	case "cvt":
		return isa.OpCvt, true
	case "sqrt":
		return isa.OpSqrt, true
	case "rsqrt":
		return isa.OpRsqrt, true
	case "rcp":
		return isa.OpRcp, true
	case "sin":
		return isa.OpSin, true
	case "cos":
		return isa.OpCos, true
	case "ex2":
		return isa.OpEx2, true
	case "lg2":
		return isa.OpLg2, true
	case "ld":
		return isa.OpLd, true
	case "st":
		return isa.OpSt, true
	case "atom":
		return isa.OpAtom, true
	case "bra":
		return isa.OpBra, true
	case "exit":
		return isa.OpExit, true
	case "ret":
		return isa.OpRet, true
	}
	return 0, false
}

func spaceByName(name string) (isa.MemSpace, bool) {
	switch name {
	case "global":
		return isa.SpaceGlobal, true
	case "shared":
		return isa.SpaceShared, true
	case "local":
		return isa.SpaceLocal, true
	case "const":
		return isa.SpaceConst, true
	case "param":
		return isa.SpaceParam, true
	case "tex":
		return isa.SpaceTex, true
	}
	return 0, false
}

func cmpByName(name string) (isa.CmpOp, bool) {
	switch name {
	case "eq":
		return isa.CmpEQ, true
	case "ne":
		return isa.CmpNE, true
	case "lt":
		return isa.CmpLT, true
	case "le":
		return isa.CmpLE, true
	case "gt":
		return isa.CmpGT, true
	case "ge":
		return isa.CmpGE, true
	}
	return 0, false
}

func atomByName(name string) (isa.AtomOp, bool) {
	switch name {
	case "add":
		return isa.AtomAdd, true
	case "min":
		return isa.AtomMin, true
	case "max":
		return isa.AtomMax, true
	case "exch":
		return isa.AtomExch, true
	case "cas":
		return isa.AtomCAS, true
	case "or":
		return isa.AtomOr, true
	case "and":
		return isa.AtomAnd, true
	}
	return 0, false
}

func parseDType(s string) (isa.DType, bool) {
	switch s {
	case "u32":
		return isa.U32, true
	case "s32":
		return isa.S32, true
	case "f32":
		return isa.F32, true
	case "b32":
		return isa.B32, true
	case "pred":
		return isa.Pred, true
	}
	return 0, false
}

func parseRegName(s string) (int, bool) {
	if !strings.HasPrefix(s, "%r") {
		return 0, false
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func parsePredName(s string) (int, bool) {
	s = strings.TrimPrefix(s, "%")
	if !strings.HasPrefix(s, "p") {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
