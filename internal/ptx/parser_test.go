package ptx

import (
	"strings"
	"testing"

	"critload/internal/isa"
)

const bfsLikeSrc = `
// Simplified Rodinia BFS step kernel (Code 1 in the paper).
.kernel bfs_step
.param .u32 g_graph_mask
.param .u32 g_graph_nodes
.param .u32 g_graph_edges
.param .u32 g_graph_visited
.param .u32 no_of_nodes

    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.lo.u32   %r2, %r0, %r1, %tid.x;     // tid
    ld.param.u32 %r3, [no_of_nodes];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [g_graph_mask];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];               // mask[tid] (deterministic)
    setp.eq.u32  %p1, %r7, 0;
@%p1 bra EXIT;
    st.global.u32 [%r6], 0;
    ld.param.u32 %r8, [g_graph_nodes];
    add.u32      %r9, %r8, %r5;
    ld.global.u32 %r10, [%r9];              // nodes[tid].start (deterministic)
    ld.global.u32 %r11, [%r9+4];            // nodes[tid].count (deterministic)
    add.u32      %r12, %r10, %r11;          // end
LOOP:
    setp.ge.u32  %p2, %r10, %r12;
@%p2 bra EXIT;
    ld.param.u32 %r13, [g_graph_edges];
    shl.u32      %r14, %r10, 2;
    add.u32      %r15, %r13, %r14;
    ld.global.u32 %r16, [%r15];             // id = edges[i] (non-deterministic)
    ld.param.u32 %r17, [g_graph_visited];
    shl.u32      %r18, %r16, 2;
    add.u32      %r19, %r17, %r18;
    ld.global.u32 %r20, [%r19];             // visited[id] (non-deterministic)
    add.u32      %r10, %r10, 1;
    bra LOOP;
EXIT:
    exit;
`

func parseBFS(t *testing.T) *Kernel {
	t.Helper()
	prog, err := Parse(bfsLikeSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k, ok := prog.Kernel("bfs_step")
	if !ok {
		t.Fatalf("kernel bfs_step not found")
	}
	return k
}

func TestParseBFSKernel(t *testing.T) {
	k := parseBFS(t)
	if got, want := len(k.Params), 5; got != want {
		t.Errorf("params = %d, want %d", got, want)
	}
	if off, ok := k.ParamOffset("g_graph_edges"); !ok || off != 8 {
		t.Errorf("g_graph_edges offset = %d,%v, want 8,true", off, ok)
	}
	if k.NumRegs != 21 {
		t.Errorf("NumRegs = %d, want 21", k.NumRegs)
	}
	if k.NumPreds != 3 {
		t.Errorf("NumPreds = %d, want 3", k.NumPreds)
	}
	loads := k.GlobalLoads()
	if len(loads) != 5 {
		t.Fatalf("global loads = %d, want 5", len(loads))
	}
	// Branch targets resolved.
	for _, in := range k.Insts {
		if in.Op == isa.OpBra && in.Targ < 0 {
			t.Errorf("unresolved branch %v", in)
		}
	}
	// Labels point at the right instructions.
	exitIdx := k.Labels["EXIT"]
	if k.Insts[exitIdx].Op != isa.OpExit {
		t.Errorf("EXIT label resolves to %v", k.Insts[exitIdx])
	}
}

func TestParseGuards(t *testing.T) {
	prog, err := Parse(`
.kernel g
    setp.lt.u32 %p0, 1, 2;
@%p0 add.u32 %r0, %r0, 1;
@!%p0 add.u32 %r0, %r0, 2;
    exit;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	if g := k.Insts[1].Guard; !g.Active() || g.Reg != 0 || g.Negate {
		t.Errorf("inst1 guard = %+v", g)
	}
	if g := k.Insts[2].Guard; !g.Active() || g.Reg != 0 || !g.Negate {
		t.Errorf("inst2 guard = %+v", g)
	}
}

func TestParseOperandForms(t *testing.T) {
	prog, err := Parse(`
.kernel ops
.param .u32 base
    mov.u32 %r0, %tid.x;
    mov.f32 %r1, 1.5;
    mov.u32 %r2, 0x10;
    mov.u32 %r3, -7;
    ld.param.u32 %r4, [base];
    ld.global.u32 %r5, [%r4+12];
    ld.global.u32 %r6, [%r4-4];
    ld.global.u32 %r7, [4096];
    st.global.u32 [%r4], %r5;
    atom.global.add.u32 %r8, [%r4], 1;
    atom.global.cas.u32 %r9, [%r4], 0, 1;
    cvt.f32.u32 %r10, %r0;
    selp.u32 %r11, %r5, %r6, %p0;
    mul.hi.u32 %r12, %r0, %r2;
    bar.sync;
    exit;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	in := k.Insts
	if in[1].Srcs[0].Kind != isa.OpdFImm || in[1].Srcs[0].FImm != 1.5 {
		t.Errorf("float imm: %v", in[1])
	}
	if in[2].Srcs[0].Imm != 16 {
		t.Errorf("hex imm: %v", in[2])
	}
	if in[3].Srcs[0].Imm != -7 {
		t.Errorf("neg imm: %v", in[3])
	}
	if in[5].Srcs[0].Imm != 12 || in[6].Srcs[0].Imm != -4 {
		t.Errorf("mem offsets: %v / %v", in[5], in[6])
	}
	if in[7].Srcs[0].Reg != -1 || in[7].Srcs[0].Imm != 4096 {
		t.Errorf("absolute mem operand: %v", in[7])
	}
	if in[9].Op != isa.OpAtom || in[9].Atom != isa.AtomAdd {
		t.Errorf("atom add: %v", in[9])
	}
	if in[10].Atom != isa.AtomCAS || in[10].NSrc != 3 {
		t.Errorf("atom cas: %v", in[10])
	}
	if in[11].Op != isa.OpCvt || in[11].Type != isa.F32 || in[11].SrcType != isa.U32 {
		t.Errorf("cvt: %v", in[11])
	}
	if in[13].Op != isa.OpMulHi {
		t.Errorf("mul.hi: %v", in[13])
	}
	if in[14].Op != isa.OpBar {
		t.Errorf("bar.sync: %v", in[14])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"inst outside kernel", "add.u32 %r0, %r1, %r2;", "outside kernel"},
		{"unknown opcode", ".kernel k\n frob.u32 %r0, %r1, %r2; exit;", "unknown opcode"},
		{"undefined label", ".kernel k\n bra NOWHERE; exit;", "undefined label"},
		{"dup label", ".kernel k\nA: exit;\nA: exit;", "duplicate label"},
		{"bad operand count", ".kernel k\n add.u32 %r0, %r1; exit;", "expects 3 operands"},
		{"unknown param", ".kernel k\n ld.param.u32 %r0, [nope]; exit;", "unknown parameter"},
		{"bad space", ".kernel k\n ld.weird.u32 %r0, [%r1]; exit;", "unknown state space"},
		{"setp dest", ".kernel k\n setp.lt.u32 %r0, %r1, %r2; exit;", "predicate register"},
		{"unbalanced bracket", ".kernel k\n ld.global.u32 %r0, [%r1; exit;", "unbalanced"},
		{"dup param", ".kernel k\n.param .u32 a\n.param .u32 a\n exit;", "duplicate param"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseDirectiveErrors exercises every malformed-directive path: wrong
// arity, bad names and types, directives outside a kernel, and unknown
// directives. The assertions are on the message text, so a reworded or
// dropped diagnostic fails loudly.
func TestParseDirectiveErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"kernel missing name", ".kernel", "usage: .kernel <name>"},
		{"kernel bad name", ".kernel 9lives", "usage: .kernel <name>"},
		{"kernel extra field", ".kernel a b", "usage: .kernel <name>"},
		{"param outside kernel", ".param .u32 n", ".param outside kernel"},
		{"param missing name", ".kernel k\n.param .u32\n exit;", "usage: .param .<type> <name>"},
		{"param bad type", ".kernel k\n.param .q13 n\n exit;", "bad param type"},
		{"param bad name", ".kernel k\n.param .u32 7up\n exit;", "bad param name"},
		{"shared outside kernel", ".shared 128", ".shared outside kernel"},
		{"shared missing size", ".kernel k\n.shared\n exit;", "usage: .shared <bytes>"},
		{"shared non-numeric size", ".kernel k\n.shared lots\n exit;", "bad shared size"},
		{"shared negative size", ".kernel k\n.shared -16\n exit;", "bad shared size"},
		{"unknown directive", ".frobnicate 3", "unknown directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseTruncatedAndOperandErrors covers truncated kernel bodies (dangling
// labels, bare guards) and the operand-level diagnostics: modifier overflow,
// malformed immediates and offsets, and address-shape requirements for
// st/atom/ld.
func TestParseTruncatedAndOperandErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"label at end of kernel", ".kernel k\n exit;\nTAIL:", "without instruction"},
		{"label at end before next kernel", ".kernel k\n exit;\nTAIL:\n.kernel j\n exit;", "without instruction"},
		{"guard without instruction", ".kernel k\n@%p0;\n exit;", "guard without instruction"},
		{"bad guard register", ".kernel k\n@%r0 add.u32 %r0, %r1, %r2; exit;", "bad guard"},
		{"too many modifiers", ".kernel k\n add.u32.u32.u32 %r0, %r1, %r2; exit;", "too many modifiers"},
		{"two types on non-cvt", ".kernel k\n add.u32.s32 %r0, %r1, %r2; exit;", "too many type modifiers"},
		{"unknown type modifier", ".kernel k\n add.q96 %r0, %r1, %r2; exit;", "unknown type"},
		{"bad cvt types", ".kernel k\n cvt.q1.q2 %r0, %r1; exit;", "bad cvt types"},
		{"unknown comparison", ".kernel k\n setp.zz.u32 %p0, %r1, %r2; exit;", "unknown comparison"},
		{"empty operand", ".kernel k\n add.u32 %r0, , %r2; exit;", "empty operand"},
		{"unbalanced close bracket", ".kernel k\n add.u32 %r0, %r1], %r2; exit;", "unbalanced ']'"},
		{"bad float immediate", ".kernel k\n mov.f32 %r0, 1.2.3; exit;", "bad float immediate"},
		{"bad integer immediate", ".kernel k\n mov.u32 %r0, 12abc; exit;", "bad immediate"},
		{"unknown register", ".kernel k\n add.u32 %r0, %zz9, %r2; exit;", "unknown register"},
		{"bad offset", ".kernel k\n ld.global.u32 %r0, [%r1+zz]; exit;", "bad offset in"},
		{"bad base register", ".kernel k\n ld.global.u32 %r0, [%rq]; exit;", "bad base register"},
		{"st without address", ".kernel k\n st.global.u32 %r0, %r1; exit;", "st expects [addr] first"},
		{"atom without address", ".kernel k\n atom.global.add.u32 %r0, %r1, %r2; exit;", "atom expects [addr]"},
		{"ld without memory operand", ".kernel k\n ld.global.u32 %r0, %r1; exit;", "ld expects a memory operand"},
		{"ld.param non-param operand", ".kernel k\n.param .u32 n\n ld.param.u32 %r0, [%r1]; exit;", "ld.param expects [name]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	k := parseBFS(t)
	text := k.Disassemble()
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of disassembly failed: %v\n%s", err, text)
	}
	k2 := prog2.Kernels[0]
	if len(k2.Insts) != len(k.Insts) {
		t.Fatalf("roundtrip length %d != %d", len(k2.Insts), len(k.Insts))
	}
	for i := range k.Insts {
		if k.Insts[i].String() != k2.Insts[i].String() {
			t.Errorf("inst %d: %q != %q", i, k.Insts[i], k2.Insts[i])
		}
	}
}

func TestMultipleKernels(t *testing.T) {
	prog, err := Parse(`
.kernel a
    exit;
.kernel b
    mov.u32 %r0, 1;
    exit;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2", len(prog.Kernels))
	}
	if _, ok := prog.Kernel("b"); !ok {
		t.Errorf("kernel b missing")
	}
	if prog.MustKernel("a").Name != "a" {
		t.Errorf("MustKernel(a) wrong kernel")
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	k := &Kernel{Name: "bad", Labels: map[string]int{}}
	in := &isa.Instruction{Op: isa.OpMov, Dst: isa.Reg(5), Guard: isa.NoGuard}
	in.Srcs[0] = isa.Imm(0)
	in.NSrc = 1
	k.Insts = append(k.Insts, in)
	k.NumRegs = 2 // %r5 out of range
	if err := k.Validate(); err == nil {
		t.Errorf("Validate accepted out-of-range register")
	}
}
