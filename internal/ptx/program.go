// Package ptx provides the textual assembler, program representation, and
// control-flow analyses (CFG, postdominators) for the PTX-subset ISA.
//
// Kernels are written in a PTX-like assembly dialect:
//
//	.kernel bfs_step
//	.param .u32 g_graph_mask
//	.param .u32 no_of_nodes
//	.shared 2048
//
//	    mov.u32      %r0, %ctaid.x;
//	    mov.u32      %r1, %ntid.x;
//	    mad.u32      %r2, %r0, %r1, %tid.x;
//	    ld.param.u32 %r3, [no_of_nodes];
//	    setp.ge.u32  %p0, %r2, %r3;
//	@%p0 bra EXIT;
//	    ...
//	EXIT:
//	    exit;
//
// The control-flow analyses feed two consumers: the SIMT divergence stack in
// the emulator (reconvergence at immediate postdominators) and the backward
// dataflow load classifier.
package ptx

import (
	"fmt"
	"sort"

	"critload/internal/isa"
)

// ParamDecl describes one kernel parameter. All parameters occupy 4 bytes in
// the parameter space, mirroring the 32-bit machine model.
type ParamDecl struct {
	Name   string
	Type   isa.DType
	Offset int // byte offset within the parameter space
}

// ParamSize is the byte size of every kernel parameter.
const ParamSize = 4

// Kernel is one assembled kernel function.
type Kernel struct {
	Name        string
	Params      []ParamDecl
	SharedBytes int // statically declared shared memory per CTA
	NumRegs     int // general-purpose registers used (max index + 1)
	NumPreds    int // predicate registers used
	Insts       []*isa.Instruction
	Labels      map[string]int

	cfg *CFG // lazily built
}

// ParamOffset returns the byte offset of a named parameter.
func (k *Kernel) ParamOffset(name string) (int, bool) {
	for _, p := range k.Params {
		if p.Name == name {
			return p.Offset, true
		}
	}
	return 0, false
}

// ParamSpaceBytes returns the total size of the kernel's parameter space.
func (k *Kernel) ParamSpaceBytes() int { return len(k.Params) * ParamSize }

// CFG returns the kernel's control-flow graph, building it on first use.
func (k *Kernel) CFG() *CFG {
	if k.cfg == nil {
		k.cfg = BuildCFG(k)
	}
	return k.cfg
}

// ReconvergencePC returns the immediate-postdominator reconvergence
// instruction index for the branch at instruction index i. A return of
// len(k.Insts) denotes reconvergence at kernel exit.
func (k *Kernel) ReconvergencePC(i int) int {
	return k.CFG().ReconvergeIdx(i)
}

// GlobalLoads returns the instruction indices of all ld.global instructions,
// in program order.
func (k *Kernel) GlobalLoads() []int {
	var out []int
	for i, in := range k.Insts {
		if in.IsGlobalLoad() {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural invariants of the kernel: resolved branch
// targets, declared parameters, register indices within bounds, and operand
// shapes appropriate for each opcode.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernel has no name")
	}
	if len(k.Insts) == 0 {
		return fmt.Errorf("kernel %s has no instructions", k.Name)
	}
	checkReg := func(o isa.Operand, at int) error {
		switch o.Kind {
		case isa.OpdReg:
			if o.Reg < 0 || o.Reg >= k.NumRegs {
				return fmt.Errorf("%s:%d: register %%r%d out of range [0,%d)", k.Name, at, o.Reg, k.NumRegs)
			}
		case isa.OpdPred:
			if o.Reg < 0 || o.Reg >= k.NumPreds {
				return fmt.Errorf("%s:%d: predicate %%p%d out of range [0,%d)", k.Name, at, o.Reg, k.NumPreds)
			}
		case isa.OpdMem:
			if o.Reg >= k.NumRegs {
				return fmt.Errorf("%s:%d: mem base %%r%d out of range", k.Name, at, o.Reg)
			}
		case isa.OpdParam:
			if _, ok := k.ParamOffset(o.Param); !ok {
				return fmt.Errorf("%s:%d: unknown parameter %q", k.Name, at, o.Param)
			}
		}
		return nil
	}
	for i, in := range k.Insts {
		if in.Index != i {
			return fmt.Errorf("%s:%d: bad instruction index %d", k.Name, i, in.Index)
		}
		if in.Guard.Active() && in.Guard.Reg >= k.NumPreds {
			return fmt.Errorf("%s:%d: guard %%p%d out of range", k.Name, i, in.Guard.Reg)
		}
		if in.Op == isa.OpBra {
			if in.Targ < 0 || in.Targ >= len(k.Insts) {
				return fmt.Errorf("%s:%d: unresolved branch target %q", k.Name, i, in.Label)
			}
		}
		if in.Op == isa.OpLd && in.Space == isa.SpaceParam {
			if in.Srcs[0].Kind != isa.OpdParam {
				return fmt.Errorf("%s:%d: ld.param requires a [name] operand", k.Name, i)
			}
		}
		if (in.Op == isa.OpLd || in.Op == isa.OpSt || in.Op == isa.OpAtom) && in.Space == isa.SpaceNone {
			return fmt.Errorf("%s:%d: memory op without state space", k.Name, i)
		}
		if err := checkReg(in.Dst, i); err != nil {
			return err
		}
		for s := 0; s < in.NSrc; s++ {
			if err := checkReg(in.Srcs[s], i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Disassemble renders the kernel body as assembly text.
func (k *Kernel) Disassemble() string {
	// Invert the label map for printing.
	byIdx := map[int][]string{}
	for name, idx := range k.Labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	for _, names := range byIdx {
		sort.Strings(names)
	}
	out := fmt.Sprintf(".kernel %s\n", k.Name)
	for _, p := range k.Params {
		out += fmt.Sprintf(".param .%s %s\n", p.Type, p.Name)
	}
	if k.SharedBytes > 0 {
		out += fmt.Sprintf(".shared %d\n", k.SharedBytes)
	}
	for i, in := range k.Insts {
		for _, l := range byIdx[i] {
			out += l + ":\n"
		}
		out += "    " + in.String() + ";\n"
	}
	return out
}

// Program is a collection of kernels assembled from one source unit.
type Program struct {
	Kernels []*Kernel
}

// Kernel returns the kernel with the given name.
func (p *Program) Kernel(name string) (*Kernel, bool) {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return nil, false
}

// MustKernel returns the named kernel or panics; intended for workload
// registration where a missing kernel is a programming error.
func (p *Program) MustKernel(name string) *Kernel {
	k, ok := p.Kernel(name)
	if !ok {
		panic(fmt.Sprintf("ptx: kernel %q not found", name))
	}
	return k
}
