// Package report renders experiment results as aligned text tables and CSV,
// used by the command-line tools and the EXPERIMENTS.md generator.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no escaping beyond
// replacing commas; experiment values never contain quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	hs := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		hs[i] = clean(h)
	}
	b.WriteString(strings.Join(hs, ",") + "\n")
	for _, r := range t.Rows {
		cs := make([]string, len(r))
		for i, c := range r {
			cs[i] = clean(c)
		}
		b.WriteString(strings.Join(cs, ",") + "\n")
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
