package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("demo", "name", "value", "ratio")
	t.Add("alpha", 42, 0.12345)
	t.Add("beta", uint64(7), 1234.5)
	return t
}

func TestTextRendering(t *testing.T) {
	s := sample().String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows → 5? title+header+sep+2
		if len(lines) != 5 {
			t.Fatalf("lines = %d:\n%s", len(lines), s)
		}
	}
	if !strings.Contains(s, "demo") || !strings.Contains(s, "alpha") {
		t.Errorf("missing content:\n%s", s)
	}
	// Columns aligned: header and row share the position of column 2.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "42") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.Add(0.0)
	tb.Add(0.5)
	tb.Add(42.0)
	tb.Add(9999.9)
	want := []string{"0", "0.500", "42.0", "10000"}
	for i, r := range tb.Rows {
		if r[0] != want[i] {
			t.Errorf("row %d = %q, want %q", i, r[0], want[i])
		}
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	if !strings.Contains(md, "| name | value | ratio |") {
		t.Errorf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- | --- |") {
		t.Errorf("markdown separator wrong:\n%s", md)
	}
	if !strings.Contains(md, "**demo**") {
		t.Errorf("markdown title wrong:\n%s", md)
	}
}

func TestCSV(t *testing.T) {
	csv := sample().CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "name,value,ratio" {
		t.Errorf("csv header = %q", lines[0])
	}
	// Commas in cells are sanitized.
	tb := New("", "a")
	tb.Add("x,y")
	if !strings.Contains(tb.CSV(), "x;y") {
		t.Errorf("comma not sanitized: %q", tb.CSV())
	}
}

func TestPct(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
}
