// Package ring provides a growable FIFO ring buffer used on the simulator's
// hot paths (partition input/reply queues, interconnect input buffers). It
// replaces the `q = q[1:]` slicing idiom, which keeps the whole backing array
// reachable for as long as the queue lives and re-allocates it on every
// wrap-around of append: a Buffer reuses one power-of-two backing array in
// place, so steady-state Push/Pop cycles allocate nothing and capacity stays
// bounded by the high-water mark of the queue.
package ring

// Buffer is a FIFO queue over a power-of-two circular backing array. The zero
// value is an empty, ready-to-use buffer.
type Buffer[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of live elements
}

// Len returns the number of queued elements.
func (b *Buffer[T]) Len() int { return b.n }

// Cap returns the current backing-array capacity (0 until the first Push).
func (b *Buffer[T]) Cap() int { return len(b.buf) }

// grow doubles the backing array (minimum 8) and linearizes the content.
func (b *Buffer[T]) grow() {
	newCap := len(b.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]T, newCap)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)&(len(b.buf)-1)]
	}
	b.buf = nb
	b.head = 0
}

// Push appends v at the tail.
func (b *Buffer[T]) Push(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)&(len(b.buf)-1)] = v
	b.n++
}

// Pop removes and returns the head element; it panics on an empty buffer.
func (b *Buffer[T]) Pop() T {
	if b.n == 0 {
		panic("ring: Pop on empty buffer")
	}
	v := b.buf[b.head]
	var zero T
	b.buf[b.head] = zero // release the reference for GC
	b.head = (b.head + 1) & (len(b.buf) - 1)
	b.n--
	return v
}

// Peek returns the head element without removing it; it panics on an empty
// buffer.
func (b *Buffer[T]) Peek() T {
	if b.n == 0 {
		panic("ring: Peek on empty buffer")
	}
	return b.buf[b.head]
}

// At returns the i-th element from the head (At(0) == Peek()); it panics when
// i is out of range.
func (b *Buffer[T]) At(i int) T {
	if i < 0 || i >= b.n {
		panic("ring: At out of range")
	}
	return b.buf[(b.head+i)&(len(b.buf)-1)]
}
