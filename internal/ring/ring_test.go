package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 100; i++ {
		b.Push(i)
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	if b.Peek() != 0 {
		t.Fatalf("Peek = %d, want 0", b.Peek())
	}
	for i := 0; i < 100; i++ {
		if b.At(0) != i {
			t.Fatalf("At(0) = %d, want %d", b.At(0), i)
		}
		if got := b.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", b.Len())
	}
}

func TestAtIndexesFromHead(t *testing.T) {
	var b Buffer[string]
	b.Push("a")
	b.Push("b")
	b.Push("c")
	b.Pop() // head wraps relative to the array start
	b.Push("d")
	want := []string{"b", "c", "d"}
	for i, w := range want {
		if got := b.At(i); got != w {
			t.Errorf("At(%d) = %q, want %q", i, got, w)
		}
	}
}

// TestCapacityStaysBounded is the regression test for the head-of-line
// slice-retention leak this package replaces: a queue cycled through
// steady-state Push/Pop traffic must keep a capacity bounded by its
// high-water mark, not grow with total throughput.
func TestCapacityStaysBounded(t *testing.T) {
	var b Buffer[*int]
	const depth = 5 // steady-state queue depth
	for i := 0; i < 1_000_000; i++ {
		v := i
		b.Push(&v)
		if b.Len() > depth {
			b.Pop()
		}
	}
	if b.Cap() > 4*depth {
		t.Fatalf("capacity %d after 1M ops at depth %d; backing array grew with throughput", b.Cap(), depth)
	}
}

func TestPopReleasesReferences(t *testing.T) {
	var b Buffer[*int]
	v := new(int)
	b.Push(v)
	b.Pop()
	// The slot must be zeroed so the GC can collect popped elements.
	for i := range b.buf {
		if b.buf[i] != nil {
			t.Fatalf("slot %d still holds a reference after Pop", i)
		}
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty buffer did not panic")
		}
	}()
	var b Buffer[int]
	b.Pop()
}
