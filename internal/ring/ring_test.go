package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 100; i++ {
		b.Push(i)
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	if b.Peek() != 0 {
		t.Fatalf("Peek = %d, want 0", b.Peek())
	}
	for i := 0; i < 100; i++ {
		if b.At(0) != i {
			t.Fatalf("At(0) = %d, want %d", b.At(0), i)
		}
		if got := b.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", b.Len())
	}
}

func TestAtIndexesFromHead(t *testing.T) {
	var b Buffer[string]
	b.Push("a")
	b.Push("b")
	b.Push("c")
	b.Pop() // head wraps relative to the array start
	b.Push("d")
	want := []string{"b", "c", "d"}
	for i, w := range want {
		if got := b.At(i); got != w {
			t.Errorf("At(%d) = %q, want %q", i, got, w)
		}
	}
}

// TestCapacityStaysBounded is the regression test for the head-of-line
// slice-retention leak this package replaces: a queue cycled through
// steady-state Push/Pop traffic must keep a capacity bounded by its
// high-water mark, not grow with total throughput.
func TestCapacityStaysBounded(t *testing.T) {
	var b Buffer[*int]
	const depth = 5 // steady-state queue depth
	for i := 0; i < 1_000_000; i++ {
		v := i
		b.Push(&v)
		if b.Len() > depth {
			b.Pop()
		}
	}
	if b.Cap() > 4*depth {
		t.Fatalf("capacity %d after 1M ops at depth %d; backing array grew with throughput", b.Cap(), depth)
	}
}

func TestPopReleasesReferences(t *testing.T) {
	var b Buffer[*int]
	v := new(int)
	b.Push(v)
	b.Pop()
	// The slot must be zeroed so the GC can collect popped elements.
	for i := range b.buf {
		if b.buf[i] != nil {
			t.Fatalf("slot %d still holds a reference after Pop", i)
		}
	}
}

// TestWraparoundAtCapacityBoundary drives the queue through the exact
// boundary where the tail index wraps past the end of the backing array
// while the buffer is at full capacity, without triggering growth: after the
// first 8 pushes Cap is 8, and popping then refilling must reuse the same
// array with correct FIFO order.
func TestWraparoundAtCapacityBoundary(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 8; i++ {
		b.Push(i)
	}
	if b.Cap() != 8 {
		t.Fatalf("Cap = %d after 8 pushes, want 8", b.Cap())
	}
	for i := 0; i < 5; i++ {
		if got := b.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	// head is now at index 5; these pushes wrap the tail to indexes 5+3..7,0,1.
	for i := 8; i < 13; i++ {
		b.Push(i)
	}
	if b.Cap() != 8 {
		t.Fatalf("Cap = %d after wrapped refill, want 8 (no growth at boundary)", b.Cap())
	}
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want 8", b.Len())
	}
	for i := 5; i < 13; i++ {
		if got := b.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
}

// TestGrowLinearizesWrappedContent forces growth at the moment the content
// is split across the wrap point: grow must copy the two halves back into
// FIFO order, not memcpy the raw array.
func TestGrowLinearizesWrappedContent(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 8; i++ {
		b.Push(i)
	}
	for i := 0; i < 6; i++ {
		b.Pop()
	}
	for i := 8; i < 14; i++ {
		b.Push(i) // content now wraps: indexes 6,7 then 0..3
	}
	b.Push(14) // 8th element: buffer full again
	b.Push(15) // forces grow with wrapped content
	if b.Cap() != 16 {
		t.Fatalf("Cap = %d after growth, want 16", b.Cap())
	}
	for i := 6; i < 16; i++ {
		if got := b.Pop(); got != i {
			t.Fatalf("Pop = %d after growth, want %d", got, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", b.Len())
	}
}

// TestAtAcrossWrap reads every element through At while the content spans
// the wrap point, where a naive head+i (without masking) would run off the
// end of the backing array.
func TestAtAcrossWrap(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 8; i++ {
		b.Push(i)
	}
	for i := 0; i < 7; i++ {
		b.Pop()
	}
	for i := 8; i < 15; i++ {
		b.Push(i)
	}
	for i := 0; i < b.Len(); i++ {
		if got := b.At(i); got != 7+i {
			t.Errorf("At(%d) = %d, want %d", i, got, 7+i)
		}
	}
}

func TestPeekEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Peek on empty buffer did not panic")
		}
	}()
	var b Buffer[int]
	b.Peek()
}

func TestAtOutOfRangePanics(t *testing.T) {
	var b Buffer[int]
	b.Push(1)
	for _, i := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			b.At(i)
		}()
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty buffer did not panic")
		}
	}()
	var b Buffer[int]
	b.Pop()
}
