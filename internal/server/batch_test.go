package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
)

// TestClassifyBatch is the happy path: N valid kernels in, N per-item 200s
// out, in request order, with IDs echoed.
func TestClassifyBatch(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	req := map[string]any{"items": []map[string]string{
		{"id": "first", "ptx": classifySrc},
		{"id": "second", "ptx": classifySrc},
		{"ptx": classifySrc}, // anonymous: correlated by position
	}}
	var resp server.BatchClassifyResponse
	if code := postJSON(t, ts.URL+"/v1/classify/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d, want 200", code)
	}
	if resp.Succeeded != 3 || resp.Failed != 0 || len(resp.Items) != 3 {
		t.Fatalf("batch outcome = %+v, want 3 succeeded", resp)
	}
	if resp.Items[0].ID != "first" || resp.Items[1].ID != "second" || resp.Items[2].ID != "" {
		t.Errorf("ids not echoed in order: %+v", resp.Items)
	}
	for i, it := range resp.Items {
		if it.Status != http.StatusOK || it.Result == nil {
			t.Fatalf("item %d = %+v, want status 200 with result", i, it)
		}
		if len(it.Result.Kernels) != 1 || it.Result.Kernels[0].Deterministic != 1 {
			t.Errorf("item %d classification = %+v", i, it.Result.Kernels)
		}
	}
}

// TestClassifyBatchPartialFailure is the per-item-status contract: one bad
// kernel fails its slot (with the same status the single endpoint would
// give) while the rest of the batch succeeds.
func TestClassifyBatchPartialFailure(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	req := map[string]any{"items": []map[string]string{
		{"id": "good", "ptx": classifySrc},
		{"id": "junk", "ptx": "not ptx at all ;"},
		{"id": "empty", "ptx": ""},
	}}
	var resp server.BatchClassifyResponse
	if code := postJSON(t, ts.URL+"/v1/classify/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d, want 200 despite bad items", code)
	}
	if resp.Succeeded != 1 || resp.Failed != 2 {
		t.Fatalf("outcome = %d/%d, want 1 succeeded / 2 failed", resp.Succeeded, resp.Failed)
	}
	if it := resp.Items[0]; it.Status != http.StatusOK || it.Result == nil {
		t.Errorf("good item = %+v", it)
	}
	if it := resp.Items[1]; it.Status != http.StatusUnprocessableEntity || it.Error == "" || it.Result != nil {
		t.Errorf("junk item = %+v, want 422 with error", it)
	}
	if it := resp.Items[2]; it.Status != http.StatusBadRequest || it.Error == "" {
		t.Errorf("empty item = %+v, want 400 with error", it)
	}
}

// TestClassifyBatchEnvelopeErrors covers whole-request rejections: empty
// batches, oversized batches, duplicate IDs and malformed JSON are 400s.
func TestClassifyBatchEnvelopeErrors(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	if code := postJSON(t, ts.URL+"/v1/classify/batch",
		map[string]any{"items": []map[string]string{}}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", code)
	}
	big := make([]map[string]string, jobs.MaxBatchItems+1)
	for i := range big {
		big[i] = map[string]string{"ptx": classifySrc}
	}
	if code := postJSON(t, ts.URL+"/v1/classify/batch",
		map[string]any{"items": big}, nil); code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/classify/batch", map[string]any{"items": []map[string]string{
		{"id": "dup", "ptx": classifySrc}, {"id": "dup", "ptx": classifySrc},
	}}, nil); code != http.StatusBadRequest {
		t.Errorf("duplicate ids = %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/classify/batch", "application/json",
		strings.NewReader(`{"items": [`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want 400", resp.StatusCode)
	}
}

// TestBatchMetrics checks the critloadd_http_batch_* family counts items
// and per-item failures, and that the batch endpoint has its own route
// label.
func TestBatchMetrics(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	req := map[string]any{"items": []map[string]string{
		{"ptx": classifySrc}, {"ptx": "junk ;"}, {"ptx": classifySrc},
	}}
	if code := postJSON(t, ts.URL+"/v1/classify/batch", req, nil); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	body := scrapeMetrics(t, ts.URL)
	validatePrometheus(t, body)
	for _, want := range []string{
		"critloadd_http_batch_items_total 3",
		"critloadd_http_batch_item_errors_total 1",
		`critloadd_http_batch_size_count 1`,
		`critloadd_http_requests_total{code="200",endpoint="/v1/classify/batch"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q; related lines:\n%s", want, grepMetrics(body, "batch"))
		}
	}
}

// TestClassifyNoContentType is the regression test for the Content-Type
// sniffing bug: a JSON body sent with no Content-Type header used to be fed
// to the PTX parser raw and die with a misleading parse error. It must be
// detected (leading '{') and classified.
func TestClassifyNoContentType(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	body := fmt.Sprintf(`{"ptx": %q}`, classifySrc)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Del("Content-Type")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("headerless JSON classify = %d, want 200", resp.StatusCode)
	}

	// Headerless raw PTX (no leading brace) still goes down the raw path.
	resp2, err := http.Post(ts.URL+"/v1/classify", "", strings.NewReader(classifySrc))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("headerless raw classify = %d, want 200", resp2.StatusCode)
	}
}

// TestClassifyContentTypeVariants pins the media-type parsing: parameters
// and +json suffixes are honoured, and an explicit non-JSON type is trusted
// even when the body happens to look like JSON.
func TestClassifyContentTypeVariants(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	jsonBody := fmt.Sprintf(`{"ptx": %q}`, classifySrc)
	for _, ct := range []string{
		"application/json",
		"application/json; charset=utf-8",
		"application/vnd.critload+json",
		"text/json",
	} {
		resp, err := http.Post(ts.URL+"/v1/classify", ct, strings.NewReader(jsonBody))
		if err != nil {
			t.Fatalf("POST (%s): %v", ct, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("classify with %q = %d, want 200", ct, resp.StatusCode)
		}
	}
	// An explicit text type means raw PTX: a JSON body under it is a parse
	// error (422), not silently re-sniffed.
	resp, err := http.Post(ts.URL+"/v1/classify", "text/plain", strings.NewReader(jsonBody))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("JSON body declared text/plain = %d, want 422", resp.StatusCode)
	}
}

// TestQueueFullRetryAfter is the regression test for push-back without
// guidance: a queue-full 429 must carry a Retry-After header so clients can
// back off correctly instead of guessing.
func TestQueueFullRetryAfter(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	runner := func(ctx context.Context, spec jobs.Spec) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	mgr, err := jobs.NewManager(jobs.Config{Workers: 1, QueueDepth: 1, Runner: runner})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})

	// Occupy the single worker, then keep submitting distinct specs until
	// the 1-deep pool queue overflows into a 429. The first submission may
	// still be queued when the second arrives, so allow a couple of rounds.
	var overflow *http.Response
	for i := 0; i < 10 && overflow == nil; i++ {
		body, _ := json.Marshal(map[string]any{"workload": "bfs", "mode": "functional", "seed": i})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			overflow = resp
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202 or 429", i, resp.StatusCode)
		}
	}
	if overflow == nil {
		t.Fatal("never saw a queue-full 429")
	}
	if ra := overflow.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 0 {
		t.Fatalf("Retry-After %q is not a non-negative integer", ra)
	}
}
