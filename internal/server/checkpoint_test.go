package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"critload/internal/checkpoint"
	"critload/internal/jobs"
	"critload/internal/server"
)

// newCheckpointedService is newService with a checkpoint store behind the
// runner and on /metrics.
func newCheckpointedService(t *testing.T, workers int) (*httptest.Server, *checkpoint.Store) {
	t.Helper()
	store, err := checkpoint.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := jobs.NewManager(jobs.Config{Workers: workers, Runner: server.SimRunnerWith(store)})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(mgr, server.WithCheckpoints(store)))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return ts, store
}

// runJob submits one job and polls it to a done state, returning the result.
func runJob(t *testing.T, ts *httptest.Server, body map[string]any) server.RunResult {
	t.Helper()
	var submitted jobs.JobInfo
	if code := postJSON(t, ts.URL+"/v1/jobs", body, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	var final struct {
		jobs.JobInfo
		Result server.RunResult `json:"result"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?wait_ms=2000", ts.URL, submitted.ID), &final)
		if code != http.StatusOK {
			t.Fatalf("poll = %d, want 200", code)
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", final.State)
		}
	}
	if final.State != jobs.StateDone {
		t.Fatalf("final state = %q (error %q), want done", final.State, final.Error)
	}
	return final.Result
}

// TestJobsReuseCheckpoints drives the reuse_checkpoints path over HTTP: a
// first timing job populates the store, a second job with a different
// result-cache key (larger cycle limit) warm-starts from it and must report
// identical simulated work. The checkpoint counters then surface on /metrics.
func TestJobsReuseCheckpoints(t *testing.T) {
	ts, store := newCheckpointedService(t, 2)

	cold := runJob(t, ts, map[string]any{
		"workload": "srad", "mode": "timing", "size": 32, "seed": 3,
		"reuse_checkpoints": true,
	})
	if st := store.Stats(); st.Saves == 0 {
		t.Fatalf("no checkpoints saved by the first job: %+v", st)
	}

	warm := runJob(t, ts, map[string]any{
		"workload": "srad", "mode": "timing", "size": 32, "seed": 3,
		"max_cycles": 400_000_000, "reuse_checkpoints": true,
	})
	st := store.Stats()
	if st.Hits == 0 || st.CyclesSkipped == 0 {
		t.Fatalf("second job did not warm-start: %+v", st)
	}
	if cold.Cycles != warm.Cycles || cold.Summary.WarpInsts != warm.Summary.WarpInsts {
		t.Fatalf("warm result diverges: cold %d cycles / %d insts, warm %d / %d",
			cold.Cycles, cold.Summary.WarpInsts, warm.Cycles, warm.Summary.WarpInsts)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for metric, wantPositive := range map[string]bool{
		"critloadd_checkpoint_hits_total":           true,
		"critloadd_checkpoint_misses_total":         false,
		"critloadd_checkpoint_saves_total":          true,
		"critloadd_checkpoint_evictions_total":      false,
		"critloadd_checkpoint_dropped_total":        false,
		"critloadd_checkpoint_cycles_skipped_total": true,
		"critloadd_checkpoint_files":                true,
		"critloadd_checkpoint_disk_bytes":           true,
	} {
		m := regexp.MustCompile(`(?m)^` + metric + ` (\S+)$`).FindStringSubmatch(text)
		if m == nil {
			t.Errorf("metrics output missing %s:\n%s", metric, text)
			continue
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Errorf("%s = %q: %v", metric, m[1], err)
			continue
		}
		if wantPositive && v <= 0 {
			t.Errorf("%s = %v, want > 0", metric, v)
		}
	}
}

// TestJobsWithoutStoreIgnoreReuseFlag proves reuse_checkpoints is harmless on
// a daemon running without a store (the default deployment).
func TestJobsWithoutStoreIgnoreReuseFlag(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	r := runJob(t, ts, map[string]any{
		"workload": "dwt", "mode": "timing", "size": 64, "seed": 2,
		"reuse_checkpoints": true,
	})
	if r.Cycles <= 0 {
		t.Fatalf("cycles = %d, want > 0", r.Cycles)
	}
}
