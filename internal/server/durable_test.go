package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
	"critload/internal/workloads"
)

// startDurableService is newService with the durable job tier enabled on
// dir: a fsync'd write-ahead journal under dir/journal and the on-disk
// result store under dir/results. The returned shutdown is idempotent and
// also registered as a cleanup, so restart tests can stop the first
// incarnation explicitly and start a second one over the same dir.
func startDurableService(t *testing.T, dir string, workers int) (*httptest.Server, *jobs.Manager, func()) {
	t.Helper()
	results, err := jobs.OpenResultStore(filepath.Join(dir, "results"), 0)
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	mgr, err := jobs.NewManager(jobs.Config{
		Workers:    workers,
		Runner:     server.SimRunner(),
		JournalDir: filepath.Join(dir, "journal"),
		Results:    results,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(mgr))
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			mgr.Close(ctx)
		})
	}
	t.Cleanup(shutdown)
	return ts, mgr, shutdown
}

// TestHealthzRecoveryBlock pins the /healthz contract for both tiers: a
// plain in-memory service reports status only (no recovery key, so old
// scrapers see the same shape they always did), while a durable service
// attaches the journal replay summary.
func TestHealthzRecoveryBlock(t *testing.T) {
	plain, _ := newService(t, server.SimRunner(), 1)
	var loose map[string]json.RawMessage
	if code := getJSON(t, plain.URL+"/healthz", &loose); code != http.StatusOK {
		t.Fatalf("plain healthz = %d, want 200", code)
	}
	if _, ok := loose["recovery"]; ok {
		t.Fatalf("in-memory service leaked a recovery block: %v", loose)
	}

	durable, _, _ := startDurableService(t, t.TempDir(), 1)
	var health struct {
		Status   string             `json:"status"`
		Recovery *jobs.RecoveryInfo `json:"recovery"`
	}
	if code := getJSON(t, durable.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("durable healthz = %d, want 200", code)
	}
	if health.Status != "ok" {
		t.Fatalf("status = %q, want ok", health.Status)
	}
	if health.Recovery == nil || !health.Recovery.Enabled {
		t.Fatalf("durable service healthz missing recovery block: %+v", health)
	}
	if health.Recovery.Jobs != 0 || health.Recovery.Unrecoverable != 0 {
		t.Fatalf("fresh data dir replayed jobs: %+v", *health.Recovery)
	}
}

// TestDurableMetricsFamilies proves the journal and result-store counters
// reach /metrics with real fsyncs behind them: one executed job must have
// appended and synced journal records and persisted one result.
func TestDurableMetricsFamilies(t *testing.T) {
	ts, _, _ := startDurableService(t, t.TempDir(), 2)
	runJob(t, ts, map[string]any{"workload": "bfs", "mode": "functional", "size": 64, "seed": 1})

	text := scrapeMetrics(t, ts.URL)
	for metric, wantPositive := range map[string]bool{
		"critloadd_journal_appends_total":   true,
		"critloadd_journal_syncs_total":     true,
		"critloadd_journal_rotations_total": false,
		// Startup replay always ends in a compaction, even over an empty
		// journal, so a fresh durable service reports exactly one.
		"critloadd_journal_compactions_total":            true,
		"critloadd_journal_replay_truncated_bytes_total": false,
		"critloadd_journal_errors_total":                 false,
		"critloadd_journal_segments":                     true,
		"critloadd_journal_disk_bytes":                   true,
		"critloadd_jobs_recovered_total":                 false,
		"critloadd_resultstore_puts_total":               true,
		"critloadd_resultstore_hits_total":               false,
		"critloadd_resultstore_disk_hits_total":          false,
		// A never-seen spec probes the disk store before executing, so the
		// one submission records one miss.
		"critloadd_resultstore_misses_total":    true,
		"critloadd_resultstore_evictions_total": false,
		"critloadd_resultstore_dropped_total":   false,
		"critloadd_resultstore_files":           true,
		"critloadd_resultstore_disk_bytes":      true,
	} {
		v, ok := metricValue(text, metric)
		if !ok {
			t.Errorf("metrics output missing %s:\n%s", metric, grepMetrics(text, "critloadd_"))
			continue
		}
		if wantPositive && v <= 0 {
			t.Errorf("%s = %v, want > 0", metric, v)
		}
		if !wantPositive && v != 0 {
			t.Errorf("%s = %v, want 0 on a fresh durable service", metric, v)
		}
	}
}

// TestDurableRestartServesHistory is the HTTP-level recovery smoke: a job
// run before a clean shutdown must still be retrievable — same ID, done
// state, identical result bytes, and flagged recovered — from a second
// daemon incarnation on the same data dir, without re-executing anything.
func TestDurableRestartServesHistory(t *testing.T) {
	dir := t.TempDir()
	ts1, _, shutdown := startDurableService(t, dir, 1)

	body := map[string]any{"workload": "mis", "mode": "functional", "size": 64, "seed": 9}
	var submitted jobs.JobInfo
	if code := postJSON(t, ts1.URL+"/v1/jobs", body, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	first := pollDone(t, ts1, submitted.ID)
	shutdown()

	ts2, mgr2, _ := startDurableService(t, dir, 1)
	rec := mgr2.Recovery()
	if rec.Jobs != 1 || rec.Unrecoverable != 0 {
		t.Fatalf("recovery = %+v, want 1 job, 0 unrecoverable", rec)
	}
	second := pollDone(t, ts2, submitted.ID)
	if !second.Recovered {
		t.Fatalf("replayed job not flagged recovered: %+v", second.JobInfo)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("recovered result diverges:\n pre-restart: %s\npost-restart: %s",
			first.Result, second.Result)
	}
	if st := mgr2.Stats(); st.Executions != 0 {
		t.Fatalf("restart re-executed %d jobs serving history", st.Executions)
	}

	// A fresh submission of the same spec must be served from the disk
	// store (the in-memory cache died with the first process).
	var resub jobs.JobInfo
	if code := postJSON(t, ts2.URL+"/v1/jobs", body, &resub); code != http.StatusAccepted {
		t.Fatalf("resubmit = %d, want 202", code)
	}
	re := pollDone(t, ts2, resub.ID)
	if !re.CacheHit {
		t.Fatalf("resubmitted spec missed the durable result store: %+v", re.JobInfo)
	}
	if !bytes.Equal(first.Result, re.Result) {
		t.Fatalf("disk-served result diverges from original")
	}
}

// metricValue extracts one metric's value from a /metrics scrape.
func metricValue(text, metric string) (float64, bool) {
	m := regexp.MustCompile(`(?m)^` + metric + ` (\S+)$`).FindStringSubmatch(text)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// pollDone long-polls a job to the done state and returns its final
// snapshot with the result left as raw JSON for byte-level comparison.
func pollDone(t *testing.T, ts *httptest.Server, id string) (final struct {
	jobs.JobInfo
	Result json.RawMessage `json:"result"`
}) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"?wait_ms=2000", &final); code != http.StatusOK {
			t.Fatalf("poll = %d, want 200", code)
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", final.State)
		}
	}
	if final.State != jobs.StateDone {
		t.Fatalf("final state = %q (error %q), want done", final.State, final.Error)
	}
	return final
}

// durableSmokeSizes shrinks every Table I workload to a problem that
// functionally emulates in well under a second, mirroring the difftest
// checkpoint smoke sizes.
var durableSmokeSizes = map[string]int{
	"2mm": 32, "gaus": 24, "grm": 24, "lu": 24, "spmv": 1024,
	"htw": 32, "mriq": 256, "dwt": 64, "bpr": 512, "srad": 32,
	"bfs": 1024, "sssp": 512, "ccl": 512, "mst": 256, "mis": 512,
}

// TestAllWorkloadsResultPersistence runs every Table I workload through the
// durable tier and holds the persistence oracle: the bytes in the on-disk
// result store must decode to exactly the result the API served
// (reflect.DeepEqual after decoding, and byte-identical re-serialisation).
func TestAllWorkloadsResultPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep; skipped in -short mode")
	}
	ts, mgr, _ := startDurableService(t, t.TempDir(), 4)
	for _, name := range workloads.Names() {
		size, ok := durableSmokeSizes[name]
		if !ok {
			t.Fatalf("no smoke size for workload %q", name)
		}
		t.Run(name, func(t *testing.T) {
			served := runJob(t, ts, map[string]any{
				"workload": name, "mode": "functional", "size": size, "seed": 7,
			})
			spec := jobs.Spec{Workload: name, Mode: jobs.ModeFunctional, Size: size, Seed: 7}
			raw, ok := mgr.Results().Get(spec.Key())
			if !ok {
				t.Fatalf("result store has no entry for %s after a done job", name)
			}
			var stored server.RunResult
			if err := json.Unmarshal(raw, &stored); err != nil {
				t.Fatalf("stored result does not decode: %v", err)
			}
			if !reflect.DeepEqual(served, stored) {
				t.Fatalf("stored result diverges from served result:\nserved: %+v\nstored: %+v",
					served, stored)
			}
			reser, err := json.Marshal(&served)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reser, raw) {
				t.Fatalf("stored bytes are not the canonical serialisation:\nstored: %s\nwant:   %s",
					raw, reser)
			}
		})
	}
}
