package server_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"critload/internal/server"
)

// TestClassifyFamilySpec classifies a family spec and checks the result
// against the family's by-construction ground truth.
func TestClassifyFamilySpec(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	var resp server.ClassifyResponse
	body := map[string]any{
		"family": map[string]any{
			"name":  "indirect-chase",
			"knobs": map[string]int{"depth": 3, "width": 2, "size": 128},
		},
	}
	if code := postJSON(t, ts.URL+"/v1/classify", body, &resp); code != http.StatusOK {
		t.Fatalf("classify family = %d, want 200", code)
	}
	if len(resp.Kernels) != 1 {
		t.Fatalf("kernels = %d, want 1", len(resp.Kernels))
	}
	k := resp.Kernels[0]
	// Ground truth for indirect-chase: 1 D root, width×depth N chase loads.
	if k.Deterministic != 1 || k.NonDeterministic != 6 {
		t.Errorf("D=%d N=%d, ground truth D=1 N=6", k.Deterministic, k.NonDeterministic)
	}
	if !strings.HasPrefix(k.Name, "fam_indirect_chase_") {
		t.Errorf("kernel name %q, want fam_indirect_chase_*", k.Name)
	}
}

// TestClassifyFamilyErrors pins the 400s for bad family specs and the
// ptx/family exclusivity rule.
func TestClassifyFamilyErrors(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	cases := []struct {
		name string
		body map[string]any
		want string
	}{
		{"unknown family", map[string]any{"family": map[string]any{"name": "nope"}}, "unknown family"},
		{"bad knob", map[string]any{"family": map[string]any{
			"name": "stream", "knobs": map[string]int{"loads": 99}}}, "out of range"},
		{"both ptx and family", map[string]any{
			"ptx":    ".kernel k\n    exit;\n",
			"family": map[string]any{"name": "stream"}}, "mutually exclusive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e struct {
				Error string `json:"error"`
			}
			if code := postJSON(t, ts.URL+"/v1/classify", c.body, &e); code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400", code)
			}
			if !strings.Contains(e.Error, c.want) {
				t.Errorf("error %q, want substring %q", e.Error, c.want)
			}
		})
	}
}

// TestSubmitFamilyJob submits a family job and checks it resolves to the
// canonical workload name, runs, and dedupes against an equivalent spec.
func TestSubmitFamilyJob(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	submit := func(body map[string]any) (int, map[string]any) {
		var info map[string]any
		code := postJSON(t, ts.URL+"/v1/jobs", body, &info)
		return code, info
	}
	code, info := submit(map[string]any{
		"family": map[string]any{
			"name":  "stream",
			"knobs": map[string]int{"size": 128, "ctas": 2, "block": 32},
		},
		"mode": "functional",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%v), want 202", code, info)
	}
	spec, _ := info["spec"].(map[string]any)
	wl, _ := spec["workload"].(string)
	want := "family:stream?block=32&ctas=2&loads=4&seed=1&size=128&stride=1&trips=1"
	if wl != want {
		t.Fatalf("job workload = %q, want canonical %q", wl, want)
	}
	id, _ := info["id"].(string)
	var done map[string]any
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"?wait_ms=30000", &done); code != http.StatusOK {
		t.Fatalf("wait = %d", code)
	}
	if state, _ := done["state"].(string); state != "done" {
		t.Fatalf("job state = %q (%v), want done", state, done)
	}
	result, _ := done["result"].(map[string]any)
	summary, _ := result["summary"].(map[string]any)
	glw, _ := summary["global_load_warps"].(map[string]any)
	// stream at loads=4 is all-deterministic by construction: 4 loads ×
	// 2 warps (2 CTAs × 32 threads) = 8 D warps, 0 N.
	if det, _ := glw["deterministic"].(float64); det != 8 {
		t.Errorf("deterministic load warps = %v, want 8", glw["deterministic"])
	}
	if nondet, _ := glw["non_deterministic"].(float64); nondet != 0 {
		t.Errorf("non-deterministic load warps = %v, want 0", glw["non_deterministic"])
	}

	// The same instance written differently (knob order, explicit defaults)
	// must canonicalize to the same workload and hit the result cache.
	code, info2 := submit(map[string]any{
		"family": map[string]any{
			"name":  "stream",
			"knobs": map[string]int{"block": 32, "loads": 4, "ctas": 2, "size": 128},
		},
		"mode": "functional",
	})
	if code != http.StatusAccepted {
		t.Fatalf("resubmit = %d, want 202", code)
	}
	spec2, _ := info2["spec"].(map[string]any)
	if wl2, _ := spec2["workload"].(string); wl2 != want {
		t.Errorf("equivalent spec resolved to %q, want %q", wl2, want)
	}

	// Exclusivity and validation errors.
	if code, _ := submit(map[string]any{
		"workload": "2mm",
		"family":   map[string]any{"name": "stream"},
		"mode":     "functional",
	}); code != http.StatusBadRequest {
		t.Errorf("workload+family = %d, want 400", code)
	}
	if code, _ := submit(map[string]any{
		"family": map[string]any{"name": "stream", "knobs": map[string]int{"size": 100}},
		"mode":   "functional",
	}); code != http.StatusBadRequest {
		t.Errorf("bad knob = %d, want 400", code)
	}
}

const validPTX = `
.kernel probe
.param .u32 in
.param .u32 idx
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [idx];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    ld.param.u32 %r7, [in];
    shl.u32      %r8, %r6, 2;
    add.u32      %r9, %r7, %r8;
    ld.global.u32 %r10, [%r9];
    exit;
`

// TestPTXSubmit drives POST /v1/ptx: a valid kernel is accepted with its
// classification and digest; a malformed one answers 422 with a
// line-attributed diagnostic; both outcomes are counted on /metrics.
func TestPTXSubmit(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)

	var resp server.PTXResponse
	if code := postJSON(t, ts.URL+"/v1/ptx", map[string]string{"ptx": validPTX}, &resp); code != http.StatusOK {
		t.Fatalf("ptx submit = %d, want 200", code)
	}
	if len(resp.SHA256) != 64 {
		t.Errorf("sha256 = %q, want 64 hex chars", resp.SHA256)
	}
	if len(resp.Kernels) != 1 {
		t.Fatalf("kernels = %d, want 1", len(resp.Kernels))
	}
	k := resp.Kernels[0]
	if k.Name != "probe" || k.Registers != 11 || k.Instructions != 12 {
		t.Errorf("kernel = %+v, want probe with 11 regs / 12 insts", k)
	}
	// The gtid-indexed load is D; the load through the loaded index is N.
	if k.Deterministic != 1 || k.NonDeterministic != 1 {
		t.Errorf("D=%d N=%d, want D=1 N=1", k.Deterministic, k.NonDeterministic)
	}

	// Raw text body, no JSON envelope.
	r, err := http.Post(ts.URL+"/v1/ptx", "text/plain", strings.NewReader(validPTX))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("raw text submit = %d, want 200", r.StatusCode)
	}

	// Malformed source: 422 with a line-attributed diagnostic.
	var fail struct {
		Error       string                  `json:"error"`
		Diagnostics []server.DiagnosticJSON `json:"diagnostics"`
	}
	bad := ".kernel broken\n    mov.u32 %r0, %r1, %r2;\n    exit;\n"
	if code := postJSON(t, ts.URL+"/v1/ptx", map[string]string{"ptx": bad}, &fail); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad ptx = %d, want 422", code)
	}
	if len(fail.Diagnostics) == 0 {
		t.Fatal("422 carried no diagnostics")
	}
	if fail.Diagnostics[0].Line != 2 {
		t.Errorf("diagnostic line = %d, want 2", fail.Diagnostics[0].Line)
	}
	if fail.Diagnostics[0].Message == "" {
		t.Error("diagnostic has no message")
	}

	// Empty body: 400, not 422.
	var e struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/v1/ptx", map[string]string{"ptx": "  "}, &e); code != http.StatusBadRequest {
		t.Errorf("empty ptx = %d, want 400", code)
	}

	// Outcome counters and the derived endpoint label on /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	b, _ := io.ReadAll(mr.Body)
	text := string(b)
	for _, want := range []string{
		`critloadd_ptx_submissions_total{outcome="accepted"} 2`,
		`critloadd_ptx_submissions_total{outcome="rejected"} 2`,
		`endpoint="/v1/ptx"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
