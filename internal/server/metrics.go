package server

import (
	"strconv"
	"sync"
	"time"

	"critload/internal/checkpoint"
	"critload/internal/jobs"
	"critload/internal/journal"
	"critload/internal/obsv"
)

// jobWallBuckets covers simulation wall times, which run far longer than
// HTTP requests: from sub-10ms cache-adjacent runs to multi-minute sweeps.
var jobWallBuckets = []float64{.01, .05, .1, .5, 1, 5, 10, 30, 60, 120, 300}

// batchSizeBuckets covers batch classify request sizes, from singletons up
// to the jobs.MaxBatchItems ceiling.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metricsSet owns the server's registry: the job manager's counters exported
// as scrape-time functions, HTTP request instrumentation (in-flight gauge,
// per-endpoint latency histograms, per-endpoint/status counters) and
// per-mode job wall-time histograms.
type metricsSet struct {
	reg *obsv.Registry

	httpInFlight *obsv.Gauge
	httpPanics   *obsv.Counter
	latency      map[string]*obsv.Histogram // per endpoint
	jobWall      map[jobs.Mode]*obsv.Histogram

	batchItems      *obsv.Counter
	batchItemErrors *obsv.Counter
	batchSize       *obsv.Histogram

	ptxAccepted *obsv.Counter
	ptxRejected *obsv.Counter

	mu       sync.Mutex
	requests map[string]*obsv.Counter // endpoint + status → counter
}

// newMetricsSet builds the registry. endpoints is the bounded route-label
// set, derived from the mux registrations (routeTable.labels); raw request
// paths never become label values, so cardinality stays fixed.
func newMetricsSet(mgr *jobs.Manager, ckpts *checkpoint.Store, start time.Time, endpoints []string) *metricsSet {
	reg := obsv.NewRegistry()
	m := &metricsSet{
		reg:      reg,
		latency:  map[string]*obsv.Histogram{},
		jobWall:  map[jobs.Mode]*obsv.Histogram{},
		requests: map[string]*obsv.Counter{},
	}

	// Job-manager counters, read from the atomic stats block at scrape time.
	stat := func(read func(jobs.Stats) float64) func() float64 {
		return func() float64 { return read(mgr.Stats()) }
	}
	reg.CounterFunc("critloadd_jobs_submitted_total",
		"Jobs accepted by the manager.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Submitted) }))
	reg.CounterFunc("critloadd_jobs_completed_total",
		"Jobs finished successfully.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Completed) }))
	reg.CounterFunc("critloadd_jobs_failed_total",
		"Jobs finished with an error.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Failed) }))
	reg.CounterFunc("critloadd_jobs_cancelled_total",
		"Jobs cancelled before completing.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Cancelled) }))
	reg.CounterFunc("critloadd_cache_hits_total",
		"Submissions answered from the result cache.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.CacheHits) }))
	reg.CounterFunc("critloadd_cache_misses_total",
		"Submissions that scheduled or joined an execution.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.CacheMisses) }))
	reg.CounterFunc("critloadd_jobs_deduped_total",
		"Submissions that joined an in-flight execution (singleflight).", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Deduped) }))
	reg.CounterFunc("critloadd_executions_total",
		"Actual simulation runner invocations.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Executions) }))
	reg.CounterFunc("critloadd_job_panics_total",
		"Runner panics recovered into failed jobs.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Panics) }))
	reg.CounterFunc("critloadd_job_wall_seconds_total",
		"Total runner wall-clock time.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.WallNanos) / 1e9 }))
	reg.GaugeFunc("critloadd_queue_depth",
		"Jobs waiting for a worker.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Queued) }))
	reg.GaugeFunc("critloadd_jobs_running",
		"Jobs currently executing.", nil,
		stat(func(s jobs.Stats) float64 { return float64(s.Running) }))
	reg.GaugeFunc("critloadd_uptime_seconds",
		"Seconds since the server started.", nil,
		func() float64 { return time.Since(start).Seconds() })

	// Checkpoint-store effectiveness, read from the store at scrape time
	// (Stats includes a directory walk; the store stays small by budget, so
	// scraping it per family is cheap).
	if ckpts != nil {
		snap := func(read func(checkpoint.Stats) float64) func() float64 {
			return func() float64 { return read(ckpts.Stats()) }
		}
		reg.CounterFunc("critloadd_checkpoint_hits_total",
			"Timing runs that warm-started from a stored checkpoint.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.Hits) }))
		reg.CounterFunc("critloadd_checkpoint_misses_total",
			"Timing runs that found no usable checkpoint and ran cold.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.Misses) }))
		reg.CounterFunc("critloadd_checkpoint_saves_total",
			"Kernel-launch boundaries serialized into the store.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.Saves) }))
		reg.CounterFunc("critloadd_checkpoint_evictions_total",
			"Checkpoint files evicted to stay under the disk budget.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.Evictions) }))
		reg.CounterFunc("critloadd_checkpoint_dropped_total",
			"Corrupt or version-mismatched checkpoint files deleted on read.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.Dropped) }))
		reg.CounterFunc("critloadd_checkpoint_cycles_skipped_total",
			"Simulated cycles inherited from checkpoints instead of re-simulated.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.CyclesSkipped) }))
		reg.GaugeFunc("critloadd_checkpoint_files",
			"Checkpoint files currently on disk.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.Files) }))
		reg.GaugeFunc("critloadd_checkpoint_disk_bytes",
			"Bytes of checkpoint data currently on disk.", nil,
			snap(func(s checkpoint.Stats) float64 { return float64(s.Bytes) }))
	}

	// Durable-tier families: write-ahead journal and on-disk result store,
	// present only when the daemon runs with -data-dir. Like the
	// checkpoint families these are read at scrape time; the stats calls
	// include a directory scan over a budget-bounded directory.
	if jnl := mgr.Journal(); jnl != nil {
		reg.CounterFunc("critloadd_jobs_recovered_total",
			"Jobs rebuilt from the journal at startup.", nil,
			stat(func(s jobs.Stats) float64 { return float64(s.Recovered) }))
		reg.CounterFunc("critloadd_journal_errors_total",
			"Durability failures: journal appends or result writes that did not reach disk.", nil,
			stat(func(s jobs.Stats) float64 { return float64(s.JournalErrors) }))
		jsnap := func(read func(journal.Stats) float64) func() float64 {
			return func() float64 { return read(jnl.Stats()) }
		}
		reg.CounterFunc("critloadd_journal_appends_total",
			"Records appended to the write-ahead journal.", nil,
			jsnap(func(s journal.Stats) float64 { return float64(s.Appends) }))
		reg.CounterFunc("critloadd_journal_syncs_total",
			"fsyncs issued by synced journal appends.", nil,
			jsnap(func(s journal.Stats) float64 { return float64(s.Syncs) }))
		reg.CounterFunc("critloadd_journal_rotations_total",
			"Journal segment rotations.", nil,
			jsnap(func(s journal.Stats) float64 { return float64(s.Rotations) }))
		reg.CounterFunc("critloadd_journal_compactions_total",
			"Journal compactions (startup recovery and clean shutdown).", nil,
			jsnap(func(s journal.Stats) float64 { return float64(s.Compactions) }))
		reg.CounterFunc("critloadd_journal_replay_truncated_bytes_total",
			"Bytes abandoned past the last replay's corruption boundary.", nil,
			jsnap(func(s journal.Stats) float64 { return float64(s.Replay.TruncatedBytes) }))
		reg.GaugeFunc("critloadd_journal_segments",
			"Journal segment files currently on disk.", nil,
			jsnap(func(s journal.Stats) float64 { return float64(s.Segments) }))
		reg.GaugeFunc("critloadd_journal_disk_bytes",
			"Bytes of journal data currently on disk.", nil,
			jsnap(func(s journal.Stats) float64 { return float64(s.DiskBytes) }))
	}
	if results := mgr.Results(); results != nil {
		rsnap := func(read func(jobs.ResultStoreStats) float64) func() float64 {
			return func() float64 { return read(results.Stats()) }
		}
		reg.CounterFunc("critloadd_resultstore_hits_total",
			"Result reads served from the on-disk store.", nil,
			rsnap(func(s jobs.ResultStoreStats) float64 { return float64(s.Hits) }))
		reg.CounterFunc("critloadd_resultstore_disk_hits_total",
			"Submissions answered from the on-disk result store.", nil,
			stat(func(s jobs.Stats) float64 { return float64(s.DiskHits) }))
		reg.CounterFunc("critloadd_resultstore_misses_total",
			"Result reads that found nothing on disk.", nil,
			rsnap(func(s jobs.ResultStoreStats) float64 { return float64(s.Misses) }))
		reg.CounterFunc("critloadd_resultstore_puts_total",
			"Results persisted to the on-disk store.", nil,
			rsnap(func(s jobs.ResultStoreStats) float64 { return float64(s.Puts) }))
		reg.CounterFunc("critloadd_resultstore_evictions_total",
			"Result files evicted to stay under the disk budget.", nil,
			rsnap(func(s jobs.ResultStoreStats) float64 { return float64(s.Evictions) }))
		reg.CounterFunc("critloadd_resultstore_dropped_total",
			"Corrupt or version-mismatched result files deleted on read.", nil,
			rsnap(func(s jobs.ResultStoreStats) float64 { return float64(s.Dropped) }))
		reg.GaugeFunc("critloadd_resultstore_files",
			"Result files currently on disk.", nil,
			rsnap(func(s jobs.ResultStoreStats) float64 { return float64(s.Files) }))
		reg.GaugeFunc("critloadd_resultstore_disk_bytes",
			"Bytes of result data currently on disk.", nil,
			rsnap(func(s jobs.ResultStoreStats) float64 { return float64(s.Bytes) }))
	}

	// HTTP instrumentation.
	m.httpInFlight = reg.Gauge("critloadd_http_in_flight",
		"HTTP requests currently being served.", nil)
	m.httpPanics = reg.Counter("critloadd_http_panics_total",
		"Handler panics recovered into 500 responses.", nil)
	for _, ep := range endpoints {
		m.latency[ep] = reg.Histogram("critloadd_http_request_seconds",
			"HTTP request latency by endpoint.",
			map[string]string{"endpoint": ep}, nil)
	}
	m.batchItems = reg.Counter("critloadd_http_batch_items_total",
		"Kernel sources received across batch classify requests.", nil)
	m.batchItemErrors = reg.Counter("critloadd_http_batch_item_errors_total",
		"Batch classify items that failed (per-item 4xx).", nil)
	m.batchSize = reg.Histogram("critloadd_http_batch_size",
		"Items per batch classify request.", nil, batchSizeBuckets)
	m.ptxAccepted = reg.Counter("critloadd_ptx_submissions_total",
		"Raw PTX submissions by outcome.",
		map[string]string{"outcome": "accepted"})
	m.ptxRejected = reg.Counter("critloadd_ptx_submissions_total",
		"Raw PTX submissions by outcome.",
		map[string]string{"outcome": "rejected"})

	// Per-mode job wall-time histograms, fed by the manager's execution
	// observer.
	for _, mode := range []jobs.Mode{jobs.ModeFunctional, jobs.ModeTiming} {
		m.jobWall[mode] = reg.Histogram("critloadd_job_wall_seconds",
			"Runner wall-clock time per execution by mode.",
			map[string]string{"mode": string(mode)}, jobWallBuckets)
	}
	mgr.SetExecutionObserver(m.observeExecution)
	return m
}

// observePTX records one /v1/ptx submission outcome.
func (m *metricsSet) observePTX(accepted bool) {
	if accepted {
		m.ptxAccepted.Inc()
	} else {
		m.ptxRejected.Inc()
	}
}

// observeBatch records one batch classify request's size and per-item
// failure count.
func (m *metricsSet) observeBatch(items, failed int) {
	m.batchItems.Add(uint64(items))
	m.batchItemErrors.Add(uint64(failed))
	m.batchSize.Observe(float64(items))
}

// observeRequest is the Instrument middleware's sink.
func (m *metricsSet) observeRequest(endpoint string, status int, d time.Duration) {
	if h, ok := m.latency[endpoint]; ok {
		h.Observe(d.Seconds())
	}
	m.requestCounter(endpoint, status).Inc()
}

// requestCounter returns (registering on first use) the per-endpoint,
// per-status request counter. Lazy registration keeps the family to the
// status codes actually seen.
func (m *metricsSet) requestCounter(endpoint string, status int) *obsv.Counter {
	code := strconv.Itoa(status)
	key := endpoint + " " + code
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[key]
	if !ok {
		c = m.reg.Counter("critloadd_http_requests_total",
			"HTTP requests by endpoint and status code.",
			map[string]string{"endpoint": endpoint, "code": code})
		m.requests[key] = c
	}
	return c
}

// observeExecution is the manager's execution observer.
func (m *metricsSet) observeExecution(spec jobs.Spec, wall time.Duration, _ error) {
	if h, ok := m.jobWall[spec.Mode]; ok {
		h.Observe(wall.Seconds())
	}
}
