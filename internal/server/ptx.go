package server

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"critload/internal/ptx"
)

// ptxMaxBytes caps a /v1/ptx submission. Tighter than the transport-level
// maxRequestBytes: the largest hand-written kernels in the corpus are a few
// kilobytes, so a megabyte of PTX is a runaway generator, not a workload.
const ptxMaxBytes = 1 << 20

// ptxRequest is the JSON envelope; raw text/* bodies carry the source
// directly, exactly like /v1/classify.
type ptxRequest struct {
	PTX string `json:"ptx"`
}

// DiagnosticJSON is one validation failure, with a 1-based source line when
// the parser can attribute one (0 = whole-program diagnostic).
type DiagnosticJSON struct {
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// PTXKernelJSON is one accepted kernel: static shape plus the load
// classification the daemon computed for it.
type PTXKernelJSON struct {
	Name             string     `json:"name"`
	Instructions     int        `json:"instructions"`
	Registers        int        `json:"registers"`
	SharedBytes      int        `json:"shared_bytes,omitempty"`
	Deterministic    int        `json:"deterministic"`
	NonDeterministic int        `json:"non_deterministic"`
	Loads            []LoadJSON `json:"loads"`
}

// PTXResponse is the accepted-program body: a content digest (stable handle
// for caching or later cross-referencing) plus per-kernel results.
type PTXResponse struct {
	SHA256  string          `json:"sha256"`
	Kernels []PTXKernelJSON `json:"kernels"`
}

// handlePTX implements POST /v1/ptx: validate a raw .ptx program against the
// PTX-subset grammar and the kernel structural invariants, then classify
// every global load. Malformed programs answer 422 with per-diagnostic
// line/message pairs; empty bodies 400; oversized ones 413. Outcomes feed
// the critloadd_ptx_submissions_total{outcome} counters.
func (s *Server) handlePTX(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.metrics.observePTX(false)
		writeError(w, bodyErrorStatus(err), "reading body: %v", err)
		return
	}
	src := string(body)
	if isJSONBody(r.Header.Get("Content-Type"), body) {
		var req ptxRequest
		if err := json.Unmarshal(body, &req); err != nil {
			s.metrics.observePTX(false)
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		src = req.PTX
	}
	if strings.TrimSpace(src) == "" {
		s.metrics.observePTX(false)
		writeError(w, http.StatusBadRequest, "empty PTX source")
		return
	}
	if len(src) > ptxMaxBytes {
		s.metrics.observePTX(false)
		writeError(w, http.StatusRequestEntityTooLarge,
			"PTX source is %d bytes; limit is %d", len(src), ptxMaxBytes)
		return
	}

	prog, err := ptx.Parse(src)
	if err != nil {
		s.metrics.observePTX(false)
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":       "invalid PTX",
			"diagnostics": diagnostics(err),
		})
		return
	}

	resp := PTXResponse{
		SHA256:  fmt.Sprintf("%x", sha256.Sum256([]byte(src))),
		Kernels: []PTXKernelJSON{},
	}
	for _, k := range prog.Kernels {
		kj := classifyKernel(k)
		resp.Kernels = append(resp.Kernels, PTXKernelJSON{
			Name:             k.Name,
			Instructions:     len(k.Insts),
			Registers:        k.NumRegs,
			SharedBytes:      k.SharedBytes,
			Deterministic:    kj.Deterministic,
			NonDeterministic: kj.NonDeterministic,
			Loads:            kj.Loads,
		})
	}
	s.metrics.observePTX(true)
	writeJSON(w, http.StatusOK, resp)
}

// diagnostics maps a parse/validation error to the response diagnostic list.
// Parser errors carry a source line; structural validation errors (which the
// parser raises after assembly) attribute to the whole program.
func diagnostics(err error) []DiagnosticJSON {
	var pe *ptx.ParseError
	if errors.As(err, &pe) {
		return []DiagnosticJSON{{Line: pe.Line, Message: pe.Msg}}
	}
	return []DiagnosticJSON{{Line: 0, Message: err.Error()}}
}
