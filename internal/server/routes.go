package server

import (
	"net/http"
	"sort"
	"strings"
)

// routeTable derives the bounded endpoint-label set the HTTP metrics
// aggregate under from the mux registrations themselves, so adding a route
// through Server.route can never silently bucket it as "other" — the failure
// mode the old hand-maintained endpoint list had. Raw request paths never
// become label values; cardinality stays fixed at the registered set.
type routeTable struct {
	exact    map[string]string // path → label, for wildcard-free patterns
	prefixes []prefixRoute     // longest-prefix fallbacks from {wildcard} patterns
}

type prefixRoute struct {
	prefix, label string
}

func newRouteTable() *routeTable {
	return &routeTable{exact: map[string]string{}}
}

// add records the endpoint label of one mux pattern ("METHOD /path"). A
// pattern with a {wildcard} segment labels every request under the prefix
// before the wildcard (e.g. "GET /v1/jobs/{id}" → every /v1/jobs/... path),
// matching how ServeMux routes it.
func (t *routeTable) add(pattern string) {
	_, path, found := strings.Cut(pattern, " ")
	if !found {
		path = pattern
	}
	if i := strings.IndexByte(path, '{'); i >= 0 {
		for _, p := range t.prefixes {
			if p.label == path {
				return
			}
		}
		t.prefixes = append(t.prefixes, prefixRoute{prefix: path[:i], label: path})
		// Longest prefix wins, so nested wildcard routes label correctly.
		sort.Slice(t.prefixes, func(a, b int) bool {
			return len(t.prefixes[a].prefix) > len(t.prefixes[b].prefix)
		})
		return
	}
	t.exact[path] = path
}

// label maps a request to its route label; unregistered paths share "other".
func (t *routeTable) label(r *http.Request) string {
	p := r.URL.Path
	if l, ok := t.exact[p]; ok {
		return l
	}
	for _, pr := range t.prefixes {
		if strings.HasPrefix(p, pr.prefix) {
			return pr.label
		}
	}
	return "other"
}

// labels returns every label the table can produce, sorted, "other" last —
// the set the metrics layer pre-registers latency histograms for.
func (t *routeTable) labels() []string {
	out := make([]string, 0, len(t.exact)+len(t.prefixes)+1)
	for _, l := range t.exact {
		out = append(out, l)
	}
	for _, p := range t.prefixes {
		out = append(out, p.label)
	}
	sort.Strings(out)
	return append(out, "other")
}
