package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"critload/internal/jobs"
)

// TestRouteTableLabels is the regression test for the old hand-maintained
// endpoint table, which silently bucketed any newly added route as "other":
// the label set must now follow the mux registrations, and every registered
// route — /v1/ptx included — must label as itself.
func TestRouteTableLabels(t *testing.T) {
	mgr, err := jobs.NewManager(jobs.Config{Workers: 1, Runner: SimRunner()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	}()
	s := New(mgr)

	wantLabels := map[string]bool{
		"/v1/classify": true, "/v1/classify/batch": true, "/v1/ptx": true,
		"/v1/jobs": true, "/v1/jobs/{id}": true, "/v1/workloads": true,
		"/healthz": true, "/metrics": true, "other": true,
	}
	got := s.routes.labels()
	if len(got) != len(wantLabels) {
		t.Errorf("labels() = %v, want the %d registered routes plus other", got, len(wantLabels))
	}
	for _, l := range got {
		if !wantLabels[l] {
			t.Errorf("unexpected label %q", l)
		}
		delete(wantLabels, l)
	}
	for l := range wantLabels {
		t.Errorf("missing label %q", l)
	}

	cases := map[string]string{
		"/v1/ptx":           "/v1/ptx",
		"/v1/classify":      "/v1/classify",
		"/v1/jobs":          "/v1/jobs",
		"/v1/jobs/abc-123":  "/v1/jobs/{id}",
		"/v1/jobs/x/y":      "/v1/jobs/{id}",
		"/v1/workloads":     "/v1/workloads",
		"/healthz":          "/healthz",
		"/metrics":          "/metrics",
		"/v1/unknown":       "other",
		"/":                 "other",
		"/v1/classifyextra": "other",
	}
	for path, want := range cases {
		r := httptest.NewRequest("GET", path, nil)
		if got := s.routes.label(r); got != want {
			t.Errorf("label(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestRouteTablePrefixOrder pins longest-prefix-wins for nested wildcards.
func TestRouteTablePrefixOrder(t *testing.T) {
	rt := newRouteTable()
	rt.add("GET /v1/jobs/{id}")
	rt.add("GET /v1/jobs/deep/{id}")
	r := httptest.NewRequest("GET", "/v1/jobs/deep/7", nil)
	if got := rt.label(r); got != "/v1/jobs/deep/{id}" {
		t.Errorf("label = %q, want the longer prefix to win", got)
	}
	r = httptest.NewRequest("GET", "/v1/jobs/7", nil)
	if got := rt.label(r); got != "/v1/jobs/{id}" {
		t.Errorf("label = %q, want /v1/jobs/{id}", got)
	}
	// Duplicate registration (second HTTP method, same path shape) must not
	// duplicate the label.
	rt.add("DELETE /v1/jobs/{id}")
	n := 0
	for _, l := range rt.labels() {
		if l == "/v1/jobs/{id}" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("label /v1/jobs/{id} appears %d times, want 1", n)
	}
}
