// Package server exposes the paper's pipeline — PTX load classification and
// functional/timing simulation — as an HTTP service backed by the jobs
// manager: classification is synchronous, simulations are submitted as jobs
// and polled, and results arrive as the Table III profiler counters plus a
// statistics summary.
package server

import (
	"context"
	"fmt"

	"critload/internal/checkpoint"
	"critload/internal/experiments"
	"critload/internal/jobs"
	"critload/internal/profiler"
	"critload/internal/stats"
)

// CategoryCounts splits a counter over the paper's two load classes.
type CategoryCounts struct {
	Deterministic    uint64 `json:"deterministic"`
	NonDeterministic uint64 `json:"non_deterministic"`
}

func splitCats(v [stats.NumCats]uint64) CategoryCounts {
	return CategoryCounts{Deterministic: v[stats.Det], NonDeterministic: v[stats.NonDet]}
}

// Summary condenses a run's stats.Collector into the whole-application
// numbers clients typically chart: instruction and load volumes, coalesced
// request counts, and cache behaviour per load class.
type Summary struct {
	WarpInsts        uint64         `json:"warp_insts"`
	ThreadInsts      uint64         `json:"thread_insts"`
	GlobalLoadWarps  CategoryCounts `json:"global_load_warps"`
	GlobalStoreWarps uint64         `json:"global_store_warps"`
	SharedLoadWarps  uint64         `json:"shared_load_warps"`
	Requests         CategoryCounts `json:"requests"`
	L1Accesses       CategoryCounts `json:"l1_accesses"`
	L1Misses         CategoryCounts `json:"l1_misses"`
	L2Accesses       CategoryCounts `json:"l2_accesses"`
	L2Misses         CategoryCounts `json:"l2_misses"`
}

// RunResult is the JSON payload of one completed simulation job.
type RunResult struct {
	Workload string    `json:"workload"`
	Mode     jobs.Mode `json:"mode"`
	// Cycles is the timing run's wall-clock cycle count (0 for
	// functional runs, which have no clock).
	Cycles int64 `json:"cycles,omitempty"`
	// Counters are the Table III profiler counters.
	Counters profiler.Counters `json:"counters"`
	Summary  Summary           `json:"summary"`
}

func resultFromRun(spec jobs.Spec, r *experiments.Run) *RunResult {
	col := r.Col
	return &RunResult{
		Workload: spec.Workload,
		Mode:     spec.Mode,
		Cycles:   r.Cycles,
		Counters: profiler.Read(col),
		Summary: Summary{
			WarpInsts:        col.WarpInsts,
			ThreadInsts:      col.ThreadInsts,
			GlobalLoadWarps:  splitCats(col.GLoadWarps),
			GlobalStoreWarps: col.GStoreWarps,
			SharedLoadWarps:  col.SLoadWarps,
			Requests:         splitCats(col.Requests),
			L1Accesses:       splitCats(col.L1Acc),
			L1Misses:         splitCats(col.L1Miss),
			L2Accesses:       splitCats(col.L2Acc),
			L2Misses:         splitCats(col.L2Miss),
		},
	}
}

// SimRunner adapts the experiments engines to the jobs.Runner contract:
// functional specs run on the emulator, timing specs on the cycle-level
// simulator, both stopping at the next kernel-launch boundary once ctx is
// cancelled. Kernel-launch boundaries also emit a progress heartbeat
// (cycles, warp instructions) onto the job's API snapshot.
func SimRunner() jobs.Runner {
	return SimRunnerWith(nil)
}

// SimRunnerWith is SimRunner backed by an optional checkpoint store: timing
// specs submitted with ReuseCheckpoints warm-start from the store and save
// new boundaries into it. A nil store disables checkpoint reuse entirely.
func SimRunnerWith(ckpts *checkpoint.Store) jobs.Runner {
	return func(ctx context.Context, spec jobs.Spec) (any, error) {
		opts := experiments.Options{
			Size:         spec.Size,
			Seed:         spec.Seed,
			MaxWarpInsts: spec.MaxWarpInsts,
			MaxCycles:    spec.MaxCycles,
			GPU:          spec.GPU,
			Progress: func(cycles int64, warpInsts uint64) {
				jobs.ReportProgress(ctx, cycles, warpInsts)
			},
		}
		if spec.ReuseCheckpoints && spec.Mode == jobs.ModeTiming {
			opts.Checkpoints = ckpts
		}
		var (
			r   *experiments.Run
			err error
		)
		switch spec.Mode {
		case jobs.ModeFunctional:
			r, err = experiments.RunFunctionalCtx(ctx, spec.Workload, opts)
		case jobs.ModeTiming:
			r, err = experiments.RunTimingCtx(ctx, spec.Workload, opts)
		default:
			return nil, fmt.Errorf("server: unknown mode %q", spec.Mode)
		}
		if err != nil {
			return nil, err
		}
		return resultFromRun(spec, r), nil
	}
}
