package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"critload/internal/checkpoint"
	"critload/internal/dataflow"
	"critload/internal/jobs"
	"critload/internal/obsv"
	"critload/internal/ptx"
	"critload/internal/workloads"
)

// maxRequestBytes bounds every request body; PTX sources and job specs are
// small, so anything larger is a client error, not a workload.
const maxRequestBytes = 4 << 20

// Server is the critloadd HTTP API.
//
//	POST   /v1/classify      classify a PTX source's global loads (synchronous)
//	POST   /v1/jobs          submit a functional or timing simulation job
//	GET    /v1/jobs/{id}     poll a job (optionally ?wait_ms=N)
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/workloads     list the built-in Table I workloads
//	GET    /healthz          liveness
//	GET    /metrics          Prometheus text exposition
//
// Every request flows through the observability chain: request-ID
// injection (echoed on X-Request-ID), in-flight and per-endpoint latency
// instrumentation, structured access logging, and panic recovery — a
// crashing handler answers 500 and the daemon keeps serving.
type Server struct {
	mgr     *jobs.Manager
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	metrics *metricsSet
	ckpts   *checkpoint.Store
	start   time.Time
}

// Option customises a Server at construction.
type Option func(*Server)

// WithLogger routes access logs and panic reports to l; the default logger
// discards them, keeping library users (and tests) quiet.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithCheckpoints exposes a checkpoint store's effectiveness counters on
// /metrics (critloadd_checkpoint_*). Pass the same store the runner uses.
func WithCheckpoints(st *checkpoint.Store) Option {
	return func(s *Server) { s.ckpts = st }
}

// New wires the API around a job manager. It installs itself as the
// manager's execution observer to feed the job wall-time histograms.
func New(mgr *jobs.Manager, opts ...Option) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), log: obsv.NopLogger(), start: time.Now()}
	for _, opt := range opts {
		opt(s)
	}
	s.metrics = newMetricsSet(mgr, s.ckpts, s.start)
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = obsv.Chain(s.mux,
		obsv.RequestID(),
		obsv.Instrument(endpointLabel, s.metrics.httpInFlight, s.metrics.observeRequest),
		obsv.AccessLog(s.log),
		obsv.Recover(s.log, s.metrics.httpPanics.Inc),
	)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	s.handler.ServeHTTP(w, r)
}

// writeJSON emits one JSON response; encoding errors at this point can only
// be I/O failures on a hung client, so they are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// bodyErrorStatus distinguishes an oversized body — MaxBytesReader's error,
// owed a 413 — from every other read/decode failure, which is a 400.
func bodyErrorStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// ---------------------------------------------------------------------------
// POST /v1/classify

// classifyRequest carries a PTX-subset source. Clients may also send the
// raw source directly with a text/* content type.
type classifyRequest struct {
	PTX string `json:"ptx"`
}

// RootJSON is one primitive contributor to a load address.
type RootJSON struct {
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"`
}

// LoadJSON is the classification of one global load instruction.
type LoadJSON struct {
	PC    string     `json:"pc"`
	Inst  string     `json:"inst"`
	Class string     `json:"class"`
	Roots []RootJSON `json:"roots"`
}

// KernelJSON is one kernel's classification result.
type KernelJSON struct {
	Name             string     `json:"name"`
	Deterministic    int        `json:"deterministic"`
	NonDeterministic int        `json:"non_deterministic"`
	Loads            []LoadJSON `json:"loads"`
}

// ClassifyResponse is the full program classification.
type ClassifyResponse struct {
	Kernels []KernelJSON `json:"kernels"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, bodyErrorStatus(err), "reading body: %v", err)
		return
	}
	src := string(body)
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "json") {
		var req classifyRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		src = req.PTX
	}
	if strings.TrimSpace(src) == "" {
		writeError(w, http.StatusBadRequest, "empty PTX source")
		return
	}
	prog, err := ptx.Parse(src)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "parsing PTX: %v", err)
		return
	}
	resp := ClassifyResponse{Kernels: []KernelJSON{}}
	for _, k := range prog.Kernels {
		res := dataflow.Classify(k)
		det, nondet := res.Counts()
		kj := KernelJSON{
			Name: k.Name, Deterministic: det, NonDeterministic: nondet,
			Loads: []LoadJSON{},
		}
		for _, l := range res.Loads {
			lj := LoadJSON{
				PC:    fmt.Sprintf("0x%03x", l.PC),
				Inst:  k.Insts[l.InstIndex].String(),
				Class: l.Class.String(),
				Roots: []RootJSON{},
			}
			for _, root := range l.Roots {
				lj.Roots = append(lj.Roots, RootJSON{Kind: root.Kind.String(), Name: root.Name})
			}
			kj.Loads = append(kj.Loads, lj)
		}
		resp.Kernels = append(resp.Kernels, kj)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// POST /v1/jobs, GET/DELETE /v1/jobs/{id}

// jobRequest is the submission payload; it mirrors jobs.Spec with a
// millisecond timeout for JSON ergonomics.
type jobRequest struct {
	Workload      string `json:"workload"`
	Mode          string `json:"mode"`
	Size          int    `json:"size"`
	Seed          int64  `json:"seed"`
	MaxWarpInsts  uint64 `json:"max_warp_insts"`
	MaxCycles     int64  `json:"max_cycles"`
	TimeoutMillis int64  `json:"timeout_ms"`
	// ReuseCheckpoints opts a timing job into the daemon's checkpoint store
	// (ignored when critloadd runs without one). Results are byte-identical
	// either way; only wall time changes.
	ReuseCheckpoints bool `json:"reuse_checkpoints"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), "decoding request: %v", err)
		return
	}
	if _, ok := workloads.Get(req.Workload); !ok {
		writeError(w, http.StatusBadRequest, "unknown workload %q", req.Workload)
		return
	}
	spec := jobs.Spec{
		Workload:         req.Workload,
		Mode:             jobs.Mode(req.Mode),
		Size:             req.Size,
		Seed:             req.Seed,
		MaxWarpInsts:     req.MaxWarpInsts,
		MaxCycles:        req.MaxCycles,
		Timeout:          time.Duration(req.TimeoutMillis) * time.Millisecond,
		ReuseCheckpoints: req.ReuseCheckpoints,
	}
	info, err := s.mgr.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, info)
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "queue full")
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if waitMS := r.URL.Query().Get("wait_ms"); waitMS != "" {
		ms, err := strconv.ParseInt(waitMS, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad wait_ms %q", waitMS)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		defer cancel()
		// A wait that times out is not an error: the client gets the
		// job's current (non-terminal) snapshot and polls again.
		info, err := s.mgr.Wait(ctx, id)
		if errors.Is(err, jobs.ErrNotFound) {
			writeError(w, http.StatusNotFound, "no job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	info, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// ---------------------------------------------------------------------------
// GET /v1/workloads, /healthz, /metrics

// workloadJSON is one built-in benchmark listing.
type workloadJSON struct {
	Name        string `json:"name"`
	Category    string `json:"category"`
	Description string `json:"description"`
	DataSet     string `json:"data_set"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	out := []workloadJSON{}
	for _, wl := range workloads.All() {
		out = append(out, workloadJSON{
			Name: wl.Name, Category: wl.Category.String(),
			Description: wl.Description, DataSet: wl.DataSet,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}
